#!/bin/sh
# Trace/metrics smoke test.
#
# Runs one experiment with --metrics and --trace at --jobs 1 and
# --jobs 4 and asserts the observability invariants the design
# promises:
#
#   1. stdout (tables, scorecard, metrics counters) is byte-identical
#      across worker counts;
#   2. the trace JSONL files are identical modulo the "wall" field
#      (timestamps are annotations, event coordinates are structural);
#   3. every "ev" value in the trace belongs to the documented event
#      vocabulary (DESIGN.md section 7).
#
# Usage: scripts/trace_smoke.sh [EXPERIMENT] (default E1)
set -eu

exp="${1:-E1}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run() {
  jobs="$1"
  dune exec bin/dyngraph_cli.exe -- run "$exp" --seed 42 --jobs "$jobs" \
    --metrics --trace "$tmp/trace_j$jobs.jsonl" >"$tmp/out_j$jobs.txt" 2>/dev/null
}

run 1
run 4

if ! diff -q "$tmp/out_j1.txt" "$tmp/out_j4.txt" >/dev/null; then
  echo "FAIL: stdout (including --metrics counters) differs between --jobs 1 and --jobs 4" >&2
  diff "$tmp/out_j1.txt" "$tmp/out_j4.txt" >&2 || true
  exit 1
fi
echo "ok: stdout byte-identical across --jobs 1/4"

strip_wall() { sed 's/"wall":[^,}]*//' "$1"; }
strip_wall "$tmp/trace_j1.jsonl" >"$tmp/t1"
strip_wall "$tmp/trace_j4.jsonl" >"$tmp/t4"
if ! diff -q "$tmp/t1" "$tmp/t4" >/dev/null; then
  echo "FAIL: traces differ beyond the wall field between --jobs 1 and --jobs 4" >&2
  diff "$tmp/t1" "$tmp/t4" >&2 || true
  exit 1
fi
echo "ok: traces identical modulo wall across --jobs 1/4"

[ -s "$tmp/trace_j1.jsonl" ] || { echo "FAIL: empty trace" >&2; exit 1; }

# The event vocabulary of DESIGN.md section 7. Anything outside it in a
# trace means an undocumented emitter crept in.
vocab='exec.claim exec.finish exec.fail exp.start exp.end flood.start flood.milestone flood.cap flood.end gossip.start gossip.end walk.start walk.end trace.dropped'
bad=0
for ev in $(sed -n 's/^{"ev":"\([^"]*\)".*/\1/p' "$tmp/trace_j1.jsonl" | sort -u); do
  known=0
  for v in $vocab; do
    [ "$ev" = "$v" ] && known=1
  done
  if [ "$known" = 0 ]; then
    echo "FAIL: event \"$ev\" is not in the documented vocabulary" >&2
    bad=1
  fi
done
[ "$bad" = 0 ] || exit 1
echo "ok: all events in the documented vocabulary"
echo "trace smoke passed ($exp, $(wc -l <"$tmp/trace_j1.jsonl") events)"
