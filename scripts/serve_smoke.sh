#!/bin/sh
# Serve smoke test.
#
# Exercises the long-lived daemon end to end and asserts the contracts
# DESIGN.md section 12 promises:
#
#   1. a daemon serving 4 concurrent clients returns results
#      byte-identical to the batch CLI (`dyngraph run <id> --seed S`)
#      for every request;
#   2. repeated (id, seed, scale, render) requests are answered from
#      the warm result cache;
#   3. progress frames stream to clients while requests execute;
#   4. SIGTERM shuts the daemon down cleanly: exit 0, socket unlinked;
#   5. a 2-executor daemon (concurrent request execution) still returns
#      results byte-identical to the batch CLI.
#
# Usage: scripts/serve_smoke.sh
set -eu

cli="_build/default/bin/dyngraph_cli.exe"
if [ ! -x "$cli" ]; then
  dune build bin/dyngraph_cli.exe
fi

tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

sock="$tmp/dyngraph.sock"

# --- 0. bring the daemon up ------------------------------------------

"$cli" serve --socket "$sock" --jobs 2 2>"$tmp/serve.err" &
pid=$!
tries=0
until [ -S "$sock" ]; do
  kill -0 "$pid" 2>/dev/null || { echo "FAIL: daemon died on startup" >&2; cat "$tmp/serve.err" >&2; exit 1; }
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || { echo "FAIL: daemon never bound $sock" >&2; exit 1; }
  sleep 0.1
done
echo "ok: daemon listening on $sock"

# --- 1. batch references ---------------------------------------------

for id in E1 E2; do
  "$cli" run "$id" --seed 42 >"$tmp/ref_$id.txt" 2>/dev/null
done

# --- 2. concurrent load, byte identity, cache, progress --------------

# 4 clients x 3 requests over 2 ids at one seed: 12 requests, 2
# distinct cache keys, so at most 2 requests execute and the rest must
# come from the warm cache. Every dumped result must equal the batch
# CLI's stdout byte for byte.
"$cli" load --socket "$sock" --clients 4 --requests 3 --ids E1,E2 \
  --seed 42 --dump "$tmp/dump" >"$tmp/load.out" 2>/dev/null \
  || { echo "FAIL: load reported errors" >&2; cat "$tmp/load.out" >&2; exit 1; }
cat "$tmp/load.out"

found=0
for f in "$tmp"/dump/*.out; do
  [ -e "$f" ] || { echo "FAIL: no dump files written" >&2; exit 1; }
  id="${f##*_}"
  id="${id%.out}"
  if ! cmp -s "$tmp/ref_$id.txt" "$f"; then
    echo "FAIL: $f differs from batch 'run $id --seed 42' stdout" >&2
    diff "$tmp/ref_$id.txt" "$f" >&2 || true
    exit 1
  fi
  found=$((found + 1))
done
[ "$found" -eq 12 ] || { echo "FAIL: expected 12 results, got $found" >&2; exit 1; }
echo "ok: 12 results from 4 concurrent clients byte-identical to the batch CLI"

cached="$(sed -n 's/.*cached: \([0-9]*\).*/\1/p' "$tmp/load.out")"
[ "${cached:-0}" -ge 1 ] || { echo "FAIL: no cache hits on repeated requests" >&2; exit 1; }
echo "ok: $cached repeats answered from the warm result cache"

frames="$(sed -n 's/.*progress_frames: \([0-9]*\).*/\1/p' "$tmp/load.out")"
[ "${frames:-0}" -ge 1 ] || { echo "FAIL: no progress frames streamed" >&2; exit 1; }
echo "ok: $frames progress frames streamed during execution"

# --- 3. clean SIGTERM shutdown ---------------------------------------

kill -TERM "$pid"
tries=0
while kill -0 "$pid" 2>/dev/null; do
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || { echo "FAIL: daemon still running after SIGTERM" >&2; exit 1; }
  sleep 0.1
done
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "FAIL: daemon exited $status after SIGTERM" >&2; cat "$tmp/serve.err" >&2; exit 1; }
[ ! -e "$sock" ] || { echo "FAIL: socket file not unlinked on shutdown" >&2; exit 1; }
echo "ok: SIGTERM shutdown clean (exit 0, socket unlinked)"

# --- 4. multi-executor byte identity ---------------------------------

# A daemon draining its queue with 2 executor threads runs requests
# concurrently; every result must still match the batch CLI byte for
# byte. --vary-seed defeats the result cache so both executors really
# execute, and the fresh seeds need fresh batch references.
sock2="$tmp/dyngraph2.sock"
"$cli" serve --socket "$sock2" --executors 2 --jobs 1 2>"$tmp/serve2.err" &
pid=$!
tries=0
until [ -S "$sock2" ]; do
  kill -0 "$pid" 2>/dev/null || { echo "FAIL: 2-executor daemon died on startup" >&2; cat "$tmp/serve2.err" >&2; exit 1; }
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || { echo "FAIL: 2-executor daemon never bound $sock2" >&2; exit 1; }
  sleep 0.1
done

"$cli" load --socket "$sock2" --clients 2 --requests 2 --ids E2,E3 \
  --seed 100 --vary-seed --dump "$tmp/dump2" >"$tmp/load2.out" 2>/dev/null \
  || { echo "FAIL: load against 2-executor daemon reported errors" >&2; cat "$tmp/load2.out" >&2; exit 1; }
cat "$tmp/load2.out"

found=0
for f in "$tmp"/dump2/*.out; do
  [ -e "$f" ] || { echo "FAIL: no dump files from the 2-executor daemon" >&2; exit 1; }
  base="${f##*/}"
  id="${base##*_}"
  id="${id%.out}"
  # --vary-seed gives request k of client c seed 100 + global index;
  # recover it from the dump name (c<client>_r<k>_<id>.out, 2 per client).
  c="${base#c}"; c="${c%%_*}"
  k="${base#*_r}"; k="${k%%_*}"
  seed=$((100 + c * 2 + k))
  "$cli" run "$id" --seed "$seed" >"$tmp/ref2.txt" 2>/dev/null
  if ! cmp -s "$tmp/ref2.txt" "$f"; then
    echo "FAIL: $f differs from batch 'run $id --seed $seed' stdout" >&2
    diff "$tmp/ref2.txt" "$f" >&2 || true
    exit 1
  fi
  found=$((found + 1))
done
[ "$found" -eq 4 ] || { echo "FAIL: expected 4 results from the 2-executor daemon, got $found" >&2; exit 1; }
echo "ok: 2-executor daemon results byte-identical to the batch CLI"

kill -TERM "$pid"
tries=0
while kill -0 "$pid" 2>/dev/null; do
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || { echo "FAIL: 2-executor daemon still running after SIGTERM" >&2; exit 1; }
  sleep 0.1
done
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "FAIL: 2-executor daemon exited $status" >&2; cat "$tmp/serve2.err" >&2; exit 1; }
echo "ok: 2-executor daemon shutdown clean"

echo "serve smoke passed"
