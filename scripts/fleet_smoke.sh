#!/bin/sh
# Fleet smoke test.
#
# Exercises the cross-process execution path end to end and asserts
# the contracts DESIGN.md section 10 promises:
#
#   1. `run all` stdout is byte-identical across --jobs 1, --jobs 4,
#      and --procs 1/2/4, at two seeds;
#   2. verify with --metrics and --trace on a fleet matches the
#      in-process run byte-for-byte on stdout, and the traces are
#      identical modulo the "wall" field;
#   3. killing one worker mid-run loses nothing: its shard is re-run
#      on a fresh worker and the output still matches;
#   4. a run interrupted by SIGKILL of the parent resumes from its
#      checkpoint journal and reproduces the uninterrupted output.
#
# Usage: scripts/fleet_smoke.sh
set -eu

cli="_build/default/bin/dyngraph_cli.exe"
if [ ! -x "$cli" ]; then
  dune build bin/dyngraph_cli.exe
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# --- 1. byte identity across topologies, two seeds -------------------

for seed in 42 7; do
  "$cli" run all --seed "$seed" --jobs 1 >"$tmp/base_$seed.txt" 2>/dev/null
  for variant in "--jobs 4" "--procs 1" "--procs 2" "--procs 4"; do
    # shellcheck disable=SC2086
    "$cli" run all --seed "$seed" $variant >"$tmp/got.txt" 2>/dev/null
    if ! cmp -s "$tmp/base_$seed.txt" "$tmp/got.txt"; then
      echo "FAIL: run all --seed $seed $variant differs from --jobs 1" >&2
      diff "$tmp/base_$seed.txt" "$tmp/got.txt" >&2 || true
      exit 1
    fi
  done
  echo "ok: run all byte-identical across --jobs 1/4 and --procs 1/2/4 (seed $seed)"
done

# --- 2. observability across the process boundary --------------------

"$cli" verify --jobs 1 --metrics --trace "$tmp/trace_inproc.jsonl" \
  >"$tmp/verify_inproc.txt" 2>/dev/null
"$cli" verify --procs 2 --metrics --trace "$tmp/trace_fleet.jsonl" \
  >"$tmp/verify_fleet.txt" 2>/dev/null
if ! cmp -s "$tmp/verify_inproc.txt" "$tmp/verify_fleet.txt"; then
  echo "FAIL: verify --metrics stdout differs between --jobs 1 and --procs 2" >&2
  diff "$tmp/verify_inproc.txt" "$tmp/verify_fleet.txt" >&2 || true
  exit 1
fi
strip_wall() { sed 's/"wall":[^,}]*//' "$1"; }
strip_wall "$tmp/trace_inproc.jsonl" >"$tmp/t_inproc"
strip_wall "$tmp/trace_fleet.jsonl" >"$tmp/t_fleet"
if ! cmp -s "$tmp/t_inproc" "$tmp/t_fleet"; then
  echo "FAIL: traces differ beyond the wall field between --jobs 1 and --procs 2" >&2
  diff "$tmp/t_inproc" "$tmp/t_fleet" >&2 || true
  exit 1
fi
[ -s "$tmp/trace_fleet.jsonl" ] || { echo "FAIL: empty fleet trace" >&2; exit 1; }
echo "ok: verify metrics + trace identical (modulo wall) across the process boundary"

# --- 3. crash isolation ----------------------------------------------

# The worker assigned E5 exits hard (exit 70) before computing; the
# marker file proves the crash actually fired and the scheduler must
# re-run only that shard.
marker="$tmp/crash.marker"
DYNGRAPH_FLEET_CRASH="E5:$marker" \
  "$cli" run all --seed 42 --procs 3 >"$tmp/crashed.txt" 2>/dev/null
[ -f "$marker" ] || { echo "FAIL: crash hook never fired" >&2; exit 1; }
if ! cmp -s "$tmp/base_42.txt" "$tmp/crashed.txt"; then
  echo "FAIL: output differs after a worker crash + re-run" >&2
  diff "$tmp/base_42.txt" "$tmp/crashed.txt" >&2 || true
  exit 1
fi
echo "ok: killed worker's shard re-ran, output unchanged"

# --- 4. checkpoint / resume ------------------------------------------

# Start a fleet run with a journal, SIGKILL the parent once at least
# one shard is checkpointed, then re-run the same command: it must
# replay finished shards from the journal and produce the base output.
journal="$tmp/run.journal"
"$cli" run all --seed 42 --procs 2 --journal "$journal" \
  >"$tmp/interrupted.txt" 2>/dev/null &
pid=$!
tries=0
until [ -f "$journal" ] && [ "$(wc -c <"$journal")" -gt 64 ]; do
  if ! kill -0 "$pid" 2>/dev/null; then
    # Finished before we could interrupt it — rare but fine; the
    # resume below then replays the whole run from the journal.
    break
  fi
  tries=$((tries + 1))
  [ "$tries" -lt 600 ] || { echo "FAIL: journal never grew" >&2; exit 1; }
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
"$cli" run all --seed 42 --procs 2 --journal "$journal" \
  >"$tmp/resumed.txt" 2>/dev/null
if ! cmp -s "$tmp/base_42.txt" "$tmp/resumed.txt"; then
  echo "FAIL: resumed run differs from uninterrupted output" >&2
  diff "$tmp/base_42.txt" "$tmp/resumed.txt" >&2 || true
  exit 1
fi
echo "ok: journal resume after SIGKILL reproduces the uninterrupted output"

# --- 5. intra-run parallelism: large flood byte-identity --------------

# The off-heap flood tier (DESIGN.md section 11) fans its tiles and
# edge-MEG partitions over the domain pool; the claim JSON it writes
# must be byte-identical at --jobs 1 and --jobs 4 modulo wall-clock
# facts (seconds, date, topology/workers, provenance) and the gc.*
# gauges (memory facts of one process run, not deterministic results).
# n = 2^18 keeps the run in smoke territory while still crossing the
# off-heap threshold where the parallel kernels engage.
bench="_build/default/bench/main.exe"
if [ ! -x "$bench" ]; then
  dune build bench/main.exe
fi
for j in 1 4; do
  BENCH_LARGE_N=262144 "$bench" --scale large --only-large --no-micro \
    --jobs "$j" --json "$tmp/large_j$j.json" >/dev/null 2>&1
done
normalize_bench() {
  sed -e 's/"seconds": [^,}]*/"seconds": _/g' \
      -e 's/"date": "[^"]*"/"date": _/' \
      -e 's/"git_rev": "[^"]*"/"git_rev": _/' \
      -e 's/"hostname": "[^"]*"/"hostname": _/' \
      -e 's/"topology": {[^}]*}/"topology": _/' \
      -e 's/"workers": [0-9]*/"workers": _/' \
      -e 's/"gc\.[a-z_]*": -\{0,1\}[0-9]*\(, \)\{0,1\}//g' \
      "$1"
}
normalize_bench "$tmp/large_j1.json" >"$tmp/large_j1.norm"
normalize_bench "$tmp/large_j4.json" >"$tmp/large_j4.norm"
if ! cmp -s "$tmp/large_j1.norm" "$tmp/large_j4.norm"; then
  echo "FAIL: large.flood_e2e claim JSON differs between --jobs 1 and --jobs 4" >&2
  diff "$tmp/large_j1.norm" "$tmp/large_j4.norm" >&2 || true
  exit 1
fi
grep -q '"large.flood_e2e"' "$tmp/large_j1.json" \
  || { echo "FAIL: large.flood_e2e row missing from bench JSON" >&2; exit 1; }
echo "ok: large flood claim JSON byte-identical at --jobs 1 vs 4 (modulo wall facts)"

# --- 6. single-experiment trial sharding ------------------------------

# A planned experiment (DESIGN.md section 13) shards its own trial bag
# over the fleet: `run E6 --procs 4` must match `--procs 1` byte for
# byte on stdout AND on --metrics work totals, and the degradation
# counter must stay silent — the single-experiment path no longer
# falls back to the domain pool.
for id in E6 E1; do
  "$cli" run "$id" --seed 42 --procs 1 --metrics >"$tmp/one_p1.txt" 2>/dev/null
  "$cli" run "$id" --seed 42 --procs 4 --metrics >"$tmp/one_p4.txt" 2>/dev/null
  if ! cmp -s "$tmp/one_p1.txt" "$tmp/one_p4.txt"; then
    echo "FAIL: run $id stdout+metrics differ between --procs 1 and --procs 4" >&2
    diff "$tmp/one_p1.txt" "$tmp/one_p4.txt" >&2 || true
    exit 1
  fi
  if grep "exec\.procs_degraded" "$tmp/one_p4.txt" | grep -qv " 0$"; then
    echo "FAIL: run $id --procs 4 degraded instead of sharding trials" >&2
    grep "exec\.procs_degraded" "$tmp/one_p4.txt" >&2
    exit 1
  fi
  grep -q "exec\.plans" "$tmp/one_p4.txt" \
    || { echo "FAIL: no exec metrics in run $id --metrics output" >&2; exit 1; }
  echo "ok: run $id trial-shards across --procs 4, byte-identical to --procs 1, no degradation"
done

echo "fleet smoke passed"
