lib/random_path/rp_model.ml: Array Core Family Graph Lazy List Prng
