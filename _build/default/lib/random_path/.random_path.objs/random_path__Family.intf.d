lib/random_path/family.mli: Graph Prng
