lib/random_path/rp_model.mli: Core Family Graph
