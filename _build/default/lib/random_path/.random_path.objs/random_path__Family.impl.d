lib/random_path/family.ml: Array Graph Hashtbl List Printf Prng Queue
