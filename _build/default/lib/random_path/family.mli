(** Families of feasible paths over a mobility graph — the 𝒫 of the
    random-path model RP = (H, 𝒫) (paper, Section 4.1, "Graph Mobility
    Models").

    A family is represented implicitly (paths addressed by integer id,
    points computed on demand), which keeps the canonical families on
    large grids cheap: the shortest-path family on an s-point grid has
    Θ(s²) paths and is never materialised. *)

type t

val graph : t -> Graph.Static.t
(** The mobility graph H. Its vertices are the "points". *)

val n_paths : t -> int

val length : t -> int -> int
(** ℓ(h): number of points of path [h] (>= 2). *)

val point_at : t -> int -> int -> int
(** [point_at t h i] is the [i]-th point of path [h], 0-based
    ([0 .. length - 1]). *)

val start_point : t -> int -> int
val end_point : t -> int -> int

val paths_from : t -> int -> int array
(** 𝒫(u): ids of the paths starting at point [u]. Never empty (the
    family property: every endpoint continues). Freshly allocated. *)

val sample_path_from : t -> Prng.Rng.t -> int -> int
(** Uniform element of 𝒫(u) without materialising it. *)

val of_explicit : Graph.Static.t -> int array array -> t
(** Explicit family: [paths.(h)] is the point sequence of path [h].
    Checks: every path has >= 2 points, consecutive points adjacent in
    H, and every path's end point starts some path. *)

val edges_family : Graph.Static.t -> t
(** 𝒫 = both orientations of every edge of H: the random-path model of
    this family is exactly the random walk on H (paper: "if 𝒫 is the
    set of edges of H then the mobility model is equivalent to the
    random walk over H"). Requires min degree >= 1. *)

val shortest_paths : Graph.Static.t -> t
(** A simple, reversible shortest-path family on an arbitrary connected
    graph H: for every unordered pair {u, v} one canonical BFS shortest
    path is chosen (computed from the smaller endpoint, deterministic
    tie-breaking by neighbour order), and the family contains both its
    orientations. O(|V|²) memory for the BFS parent trees; intended for
    mobility graphs up to a few thousand points. Raises on disconnected
    or single-vertex graphs. *)

val grid_shortest : rows:int -> cols:int -> t
(** The paper's basic instance: H is a grid and the feasible paths are
    shortest ones. For every ordered pair (u, w), u ≠ w, the family
    contains the two monotone L-shaped shortest paths (column-first and
    row-first). Simple and reversible by construction; δ-regular with
    small δ. *)

val is_simple : t -> bool
(** No path visits a point twice, except possibly start = end. For
    implicit families this enumerates all paths — O(Σ ℓ(h)). *)

val is_reversible : t -> bool
(** Every path's reverse is in the family. O(Σ ℓ(h)) time and memory —
    use on small instances. *)

val congestion : t -> int array
(** #𝒫(u): number of paths passing through [u], i.e. having [u] at one
    of positions 1 .. ℓ-1 (0-based) — every position but the start, as
    in the paper. O(Σ ℓ(h)). *)

val delta_regularity : t -> float
(** The δ-regularity of the family: max_u #𝒫(u) / (Σ_v #𝒫(v) / |V|). *)
