type t = {
  graph : Graph.Static.t;
  n_paths : int;
  length : int -> int;
  point_at : int -> int -> int;
  paths_from : int -> int array;
  sample_path_from : Prng.Rng.t -> int -> int;
}

let graph t = t.graph

let n_paths t = t.n_paths

let length t h =
  if h < 0 || h >= t.n_paths then invalid_arg "Family.length: bad path id";
  t.length h

let point_at t h i =
  if i < 0 || i >= length t h then invalid_arg "Family.point_at: position out of range";
  t.point_at h i

let start_point t h = point_at t h 0

let end_point t h = point_at t h (length t h - 1)

let paths_from t u = t.paths_from u

let sample_path_from t rng u = t.sample_path_from rng u

let of_explicit g paths =
  let n_points = Graph.Static.n g in
  Array.iteri
    (fun h path ->
      if Array.length path < 2 then
        invalid_arg (Printf.sprintf "Family.of_explicit: path %d has < 2 points" h);
      Array.iteri
        (fun i p ->
          if p < 0 || p >= n_points then invalid_arg "Family.of_explicit: point out of range";
          if i > 0 && not (Graph.Static.mem_edge g path.(i - 1) p) then
            invalid_arg
              (Printf.sprintf "Family.of_explicit: path %d uses a non-edge %d-%d" h path.(i - 1) p))
        path)
    paths;
  let from = Array.make n_points [] in
  Array.iteri (fun h path -> from.(path.(0)) <- h :: from.(path.(0))) paths;
  let from = Array.map (fun l -> Array.of_list (List.rev l)) from in
  Array.iteri
    (fun h path ->
      let last = path.(Array.length path - 1) in
      if Array.length from.(last) = 0 then
        invalid_arg
          (Printf.sprintf "Family.of_explicit: path %d ends at %d where no path starts" h last))
    paths;
  {
    graph = g;
    n_paths = Array.length paths;
    length = (fun h -> Array.length paths.(h));
    point_at = (fun h i -> paths.(h).(i));
    paths_from = (fun u -> Array.copy from.(u));
    sample_path_from =
      (fun rng u ->
        let options = from.(u) in
        if Array.length options = 0 then
          invalid_arg (Printf.sprintf "Family: no path starts at point %d" u);
        options.(Prng.Rng.int rng (Array.length options)));
  }

let edges_family g =
  if Graph.Static.n g = 0 then invalid_arg "Family.edges_family: empty graph";
  if Graph.Static.min_degree g = 0 then invalid_arg "Family.edges_family: isolated vertex";
  (* Directed edge h identified by (u, k): the k-th neighbour of u.
     Ids are offsets.(u) + k where offsets mirror the CSR layout. *)
  let n_points = Graph.Static.n g in
  let offsets = Array.make (n_points + 1) 0 in
  for u = 0 to n_points - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.Static.degree g u
  done;
  let source_of h =
    (* Binary search for the u whose range contains h. *)
    let lo = ref 0 and hi = ref (n_points - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if offsets.(mid) <= h then lo := mid else hi := mid - 1
    done;
    !lo
  in
  {
    graph = g;
    n_paths = offsets.(n_points);
    length = (fun _ -> 2);
    point_at =
      (fun h i ->
        let u = source_of h in
        if i = 0 then u else (Graph.Static.neighbors g u).(h - offsets.(u)));
    paths_from =
      (fun u -> Array.init (Graph.Static.degree g u) (fun k -> offsets.(u) + k));
    sample_path_from =
      (fun rng u -> offsets.(u) + Prng.Rng.int rng (Graph.Static.degree g u));
  }

let shortest_paths g =
  let s = Graph.Static.n g in
  if s < 2 then invalid_arg "Family.shortest_paths: need >= 2 points";
  if not (Graph.Traverse.is_connected g) then
    invalid_arg "Family.shortest_paths: graph must be connected";
  (* BFS parent tree from every source; parent.(src).(v) is v's
     predecessor on the canonical shortest src -> v path. *)
  let parents =
    Array.init s (fun src ->
        let parent = Array.make s (-1) in
        let dist = Array.make s (-1) in
        let queue = Queue.create () in
        dist.(src) <- 0;
        Queue.add src queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          Graph.Static.iter_neighbors g u (fun v ->
              if dist.(v) < 0 then begin
                dist.(v) <- dist.(u) + 1;
                parent.(v) <- u;
                Queue.add v queue
              end)
        done;
        parent)
  in
  (* The canonical path for {u, v} is the BFS path from min u v; path
     ids: ((min * s + max) * 2 + orientation), valid only for min < max.
     To give every id a dense range we enumerate unordered pairs via
     Graph.Pairs. *)
  let n_pairs = Graph.Pairs.total s in
  let n_paths = 2 * n_pairs in
  let pair_points idx =
    let u, v = Graph.Pairs.decode s idx in
    (* Reconstruct the canonical u -> v point list (u < v). *)
    let rec walk acc node = if node = u then u :: acc else walk (node :: acc) parents.(u).(node) in
    walk [] v
  in
  (* Cache the most recently used pair: the mobility process asks for
     point_at repeatedly along one path. *)
  let cache_idx = ref (-1) in
  let cache_pts = ref [||] in
  let points_of idx =
    if !cache_idx <> idx then begin
      cache_idx := idx;
      cache_pts := Array.of_list (pair_points idx)
    end;
    !cache_pts
  in
  let decode h = (h lsr 1, h land 1) in
  let length h =
    let idx, _ = decode h in
    Array.length (points_of idx)
  in
  let point_at h i =
    let idx, orient = decode h in
    let pts = points_of idx in
    if orient = 0 then pts.(i) else pts.(Array.length pts - 1 - i)
  in
  let paths_from u =
    (* Paths starting at u: for every other point w, the orientation of
       pair {u, w} that starts at u. *)
    Array.init (s - 1) (fun k ->
        let w = if k >= u then k + 1 else k in
        let idx = Graph.Pairs.encode s u w in
        let orient = if u < w then 0 else 1 in
        (idx lsl 1) lor orient)
  in
  {
    graph = g;
    n_paths;
    length;
    point_at;
    paths_from;
    sample_path_from =
      (fun rng u ->
        let k = Prng.Rng.int rng (s - 1) in
        let w = if k >= u then k + 1 else k in
        let idx = Graph.Pairs.encode s u w in
        let orient = if u < w then 0 else 1 in
        (idx lsl 1) lor orient);
  }

let grid_shortest ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Family.grid_shortest: grid must be >= 2x2";
  let g = Graph.Builders.grid ~rows ~cols in
  let s = rows * cols in
  (* Path id encodes (src, dst, order) with dst enumerated over the s-1
     points != src: id = (src * (s-1) + dst') * 2 + order, where dst' is
     dst skipping src. order 0 = column-first, 1 = row-first. *)
  let n_paths = s * (s - 1) * 2 in
  let decode h =
    let order = h land 1 in
    let rest = h lsr 1 in
    let src = rest / (s - 1) in
    let dst' = rest mod (s - 1) in
    let dst = if dst' >= src then dst' + 1 else dst' in
    (src, dst, order)
  in
  let coords v = Graph.Builders.grid_coords ~cols v in
  let index r c = Graph.Builders.grid_index ~cols r c in
  let length h =
    let src, dst, _ = decode h in
    let r1, c1 = coords src and r2, c2 = coords dst in
    abs (r1 - r2) + abs (c1 - c2) + 1
  in
  let point_at h i =
    let src, dst, order = decode h in
    let r1, c1 = coords src and r2, c2 = coords dst in
    let step_toward a b k = if b >= a then a + k else a - k in
    let dc = abs (c1 - c2) and dr = abs (r1 - r2) in
    if order = 0 then
      (* Column-first: walk columns, then rows. *)
      if i <= dc then index r1 (step_toward c1 c2 i)
      else index (step_toward r1 r2 (i - dc)) c2
    else if i <= dr then index (step_toward r1 r2 i) c1
    else index r2 (step_toward c1 c2 (i - dr))
  in
  {
    graph = g;
    n_paths;
    length;
    point_at;
    paths_from =
      (fun u ->
        Array.init (2 * (s - 1)) (fun k ->
            let dst' = k / 2 and order = k land 1 in
            (((u * (s - 1)) + dst') * 2) + order));
    sample_path_from =
      (fun rng u ->
        let dst' = Prng.Rng.int rng (s - 1) and order = Prng.Rng.int rng 2 in
        (((u * (s - 1)) + dst') * 2) + order);
  }

let is_simple t =
  let seen = Hashtbl.create 64 in
  let simple_path h =
    Hashtbl.reset seen;
    let len = t.length h in
    let ok = ref true in
    for i = 0 to len - 1 do
      let p = t.point_at h i in
      (* start = end is allowed (closed trips); any other repeat is not. *)
      if Hashtbl.mem seen p && not (i = len - 1 && p = t.point_at h 0) then ok := false
      else Hashtbl.replace seen p ()
    done;
    !ok
  in
  let rec go h = h >= t.n_paths || (simple_path h && go (h + 1)) in
  go 0

let path_points t h = Array.init (t.length h) (t.point_at h)

let is_reversible t =
  let table = Hashtbl.create (2 * t.n_paths) in
  for h = 0 to t.n_paths - 1 do
    Hashtbl.replace table (path_points t h) ()
  done;
  let reversed h =
    let pts = path_points t h in
    let len = Array.length pts in
    Array.init len (fun i -> pts.(len - 1 - i))
  in
  let rec go h = h >= t.n_paths || (Hashtbl.mem table (reversed h) && go (h + 1)) in
  go 0

let congestion t =
  let counts = Array.make (Graph.Static.n t.graph) 0 in
  for h = 0 to t.n_paths - 1 do
    for i = 1 to t.length h - 1 do
      let p = t.point_at h i in
      counts.(p) <- counts.(p) + 1
    done
  done;
  counts

let delta_regularity t =
  let counts = congestion t in
  let total = Array.fold_left ( + ) 0 counts in
  let avg = float_of_int total /. float_of_int (Array.length counts) in
  let worst = Array.fold_left max 0 counts in
  float_of_int worst /. avg
