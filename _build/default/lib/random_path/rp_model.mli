(** The random-path mobility process over a path family: each node
    travels along its current path one edge per step; on arriving at
    the end point it picks a uniformly random feasible continuation.
    Two nodes are connected exactly when they occupy the same point
    (the paper's r = 0 connection rule).

    The hidden node chain M_RP has states (h, i) for 2 ≤ i ≤ ℓ(h); for
    simple reversible families its stationary distribution is uniform
    over these states (Theorem 11 of [14], used in the proof of
    Corollary 5), which is how [Stationary] initialisation samples. *)

type init =
  | Stationary
      (** (path, position) uniform over the chain's state space:
          path h weighted by ℓ(h) - 1, position uniform in 1..ℓ-1. *)
  | Point of int
      (** every node enters a fresh uniformly-chosen path from the given
          point — an adversarial clustered start. *)

val make :
  ?init:init -> ?hold:float -> n:int -> family:Family.t -> unit -> Core.Dynamic.t
(** [hold] (default 0) is a per-node per-step pause probability: with
    probability [hold] a node does not advance along its path this
    step. [hold = 0] is the paper's literal model, but on bipartite
    mobility graphs (e.g. grids) the literal model is periodic: every
    node changes bipartition class every step, so nodes starting in
    different classes never co-locate and flooding cannot complete.
    The paper's own random-walk citation uses the "within ρ hops" move
    (which includes staying put); [hold > 0] is the corresponding
    laziness for path families. Experiments use [hold = 0.5]. *)

val make_observable :
  ?init:init -> ?hold:float -> n:int -> family:Family.t -> unit ->
  Core.Dynamic.t * (unit -> int array)
(** Also returns an observer of the nodes' current points. *)

val random_walk : ?init:init -> ?hold:float -> n:int -> Graph.Static.t -> Core.Dynamic.t
(** The random walk mobility model on H: the random-path process of
    {!Family.edges_family}. The special case studied by Corollary 6 and
    by the baseline [15]. [hold] defaults to 1/2 (the standard lazy
    walk, matching {!Markov.Walk.lazy_chain}). *)
