type init = Stationary | Point of int

let stationary_sampler family =
  (* Path h carries ℓ(h) - 1 states. *)
  lazy
    (Prng.Discrete.of_weights
       (Array.init (Family.n_paths family) (fun h ->
            float_of_int (Family.length family h - 1))))

let make_observable ?(init = Stationary) ?(hold = 0.) ~n ~family () =
  if not (hold >= 0. && hold < 1.) then invalid_arg "Rp_model: hold outside [0, 1)";
  let n_points = Graph.Static.n (Family.graph family) in
  let path = Array.make n 0 in
  let pos = Array.make n 1 in
  let rng = ref (Prng.Rng.of_seed 0) in
  let sampler = stationary_sampler family in
  let reset r =
    rng := r;
    for i = 0 to n - 1 do
      match init with
      | Point p ->
          path.(i) <- Family.sample_path_from family !rng p;
          pos.(i) <- 1
      | Stationary ->
          let h = Prng.Discrete.draw (Lazy.force sampler) !rng in
          path.(i) <- h;
          pos.(i) <- 1 + Prng.Rng.int !rng (Family.length family h - 1)
    done
  in
  let step () =
    for i = 0 to n - 1 do
      if hold = 0. || not (Prng.Rng.bernoulli !rng hold) then
        if pos.(i) < Family.length family path.(i) - 1 then pos.(i) <- pos.(i) + 1
        else begin
          let endpoint = Family.point_at family path.(i) pos.(i) in
          path.(i) <- Family.sample_path_from family !rng endpoint;
          pos.(i) <- 1
        end
    done
  in
  let current_point i = Family.point_at family path.(i) pos.(i) in
  let iter_edges f =
    (* Co-located nodes form a clique. *)
    let buckets = Array.make n_points [] in
    for i = n - 1 downto 0 do
      let p = current_point i in
      buckets.(p) <- i :: buckets.(p)
    done;
    Array.iter
      (fun members ->
        let rec within = function
          | [] -> ()
          | u :: rest ->
              List.iter (fun v -> f u v) rest;
              within rest
        in
        within members)
      buckets
  in
  let dyn = Core.Dynamic.make ~n ~reset ~step ~iter_edges in
  (dyn, fun () -> Array.init n current_point)

let make ?init ?hold ~n ~family () = fst (make_observable ?init ?hold ~n ~family ())

let random_walk ?init ?(hold = 0.5) ~n g =
  make ?init ~hold ~n ~family:(Family.edges_family g) ()
