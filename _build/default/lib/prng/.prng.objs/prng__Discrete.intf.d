lib/prng/discrete.mli: Rng
