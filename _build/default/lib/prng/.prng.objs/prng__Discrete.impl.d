lib/prng/discrete.ml: Array Queue Rng
