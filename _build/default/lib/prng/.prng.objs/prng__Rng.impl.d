lib/prng/rng.ml: Array Float Hashtbl Int64
