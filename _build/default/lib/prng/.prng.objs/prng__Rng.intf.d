lib/prng/rng.mli:
