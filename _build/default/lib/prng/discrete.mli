(** Sampling from a fixed discrete distribution in O(1) per draw
    (Walker's alias method). *)

type t
(** A prepared sampler over outcomes [0 .. n-1]. *)

val of_weights : float array -> t
(** [of_weights w] builds a sampler with P(i) proportional to [w.(i)].
    Weights must be non-negative with a positive sum. O(n) setup. *)

val n_outcomes : t -> int
(** Number of outcomes. *)

val prob : t -> int -> float
(** [prob t i] is the normalised probability of outcome [i]. *)

val draw : t -> Rng.t -> int
(** Sample one outcome. O(1). *)

val cumulative_of_weights : float array -> float array
(** [cumulative_of_weights w] is the normalised CDF of [w]; mostly useful
    for testing inversion-based sampling against the alias method. *)

val draw_cumulative : float array -> Rng.t -> int
(** Inversion sampling (binary search) from a CDF produced by
    {!cumulative_of_weights}. O(log n). *)
