type t = {
  probs : float array;          (* normalised probabilities *)
  alias_prob : float array;     (* alias-table acceptance thresholds *)
  alias : int array;            (* alias-table redirect targets *)
}

let n_outcomes t = Array.length t.probs

let prob t i = t.probs.(i)

let of_weights w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Discrete.of_weights: empty";
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Discrete.of_weights: weights must sum to > 0";
  Array.iter (fun x -> if x < 0. then invalid_arg "Discrete.of_weights: negative weight") w;
  let probs = Array.map (fun x -> x /. total) w in
  (* Walker's alias construction: scale to mean 1, then pair underfull
     buckets with overfull ones. *)
  let scaled = Array.map (fun p -> p *. float_of_int n) probs in
  let alias_prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri (fun i s -> if s < 1. then Queue.add i small else Queue.add i large) scaled;
  while not (Queue.is_empty small) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    alias_prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Queue.add l small else Queue.add l large
  done;
  (* Remaining buckets are full up to floating-point error. *)
  Queue.iter (fun i -> alias_prob.(i) <- 1.) small;
  Queue.iter (fun i -> alias_prob.(i) <- 1.) large;
  { probs; alias_prob; alias }

let draw t rng =
  let n = Array.length t.probs in
  let i = Rng.int rng n in
  if Rng.unit_float rng < t.alias_prob.(i) then i else t.alias.(i)

let cumulative_of_weights w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Discrete.cumulative_of_weights: empty";
  let total = Array.fold_left ( +. ) 0. w in
  if not (total > 0.) then invalid_arg "Discrete.cumulative_of_weights: zero total";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (w.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.;
  cdf

let draw_cumulative cdf rng =
  let u = Rng.unit_float rng in
  (* Smallest index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
