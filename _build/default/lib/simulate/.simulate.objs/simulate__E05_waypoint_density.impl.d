lib/simulate/e05_waypoint_density.ml: Array Assess Mobility Prng Runner Stats
