lib/simulate/e18_discrete_waypoint.mli: Assess Prng Runner Stats
