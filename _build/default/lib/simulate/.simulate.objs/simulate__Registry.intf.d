lib/simulate/registry.mli: Assess Prng Runner Stats
