lib/simulate/export.ml: Buffer Char Filename List Printf Prng Registry Stats String Sys
