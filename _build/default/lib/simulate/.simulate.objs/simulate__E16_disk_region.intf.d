lib/simulate/e16_disk_region.mli: Assess Prng Runner Stats
