lib/simulate/e07_waypoint_mixing.ml: Assess List Mobility Prng Runner Stats
