lib/simulate/e02_edge_meg_crossover.mli: Assess Prng Runner Stats
