lib/simulate/e13_gossip.ml: Array Assess Core Edge_meg Float List Mobility Printf Prng Runner Stats
