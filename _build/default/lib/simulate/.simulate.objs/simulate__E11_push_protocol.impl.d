lib/simulate/e11_push_protocol.ml: Array Assess Core Edge_meg Float List Mobility Printf Prng Runner Stats
