lib/simulate/e08_random_paths.ml: Array Assess List Printf Prng Random_path Runner Stats
