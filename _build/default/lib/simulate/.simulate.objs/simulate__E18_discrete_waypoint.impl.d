lib/simulate/e18_discrete_waypoint.ml: Array Assess List Markov Mobility Printf Prng Runner Stats Theory
