lib/simulate/e14_dynamic_walk.ml: Array Assess Core Edge_meg Graph List Printf Prng Runner Stats
