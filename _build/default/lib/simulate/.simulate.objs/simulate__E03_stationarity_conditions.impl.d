lib/simulate/e03_stationarity_conditions.ml: Assess Core Edge_meg Float List Markov Mobility Prng Runner Stats Theory
