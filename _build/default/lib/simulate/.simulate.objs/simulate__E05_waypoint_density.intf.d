lib/simulate/e05_waypoint_density.mli: Assess Prng Runner Stats
