lib/simulate/e04_node_meg.ml: Array Assess List Markov Node_meg Prng Runner Stats Theory
