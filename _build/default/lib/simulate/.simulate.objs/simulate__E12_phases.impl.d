lib/simulate/e12_phases.ml: Assess Core Edge_meg Float List Mobility Option Prng Random_path Runner Stats
