lib/simulate/e01_edge_meg_scaling.ml: Array Assess Edge_meg List Prng Runner Stats Theory
