lib/simulate/e16_disk_region.ml: Array Assess Float Mobility Prng Runner Stats
