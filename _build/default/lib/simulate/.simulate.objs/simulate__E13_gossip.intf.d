lib/simulate/e13_gossip.mli: Assess Prng Runner Stats
