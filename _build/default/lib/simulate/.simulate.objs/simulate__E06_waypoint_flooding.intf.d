lib/simulate/e06_waypoint_flooding.mli: Assess Prng Runner Stats
