lib/simulate/runner.ml: Core Float Stats
