lib/simulate/e07_waypoint_mixing.mli: Assess Prng Runner Stats
