lib/simulate/e14_dynamic_walk.mli: Assess Prng Runner Stats
