lib/simulate/e10_random_walk_geometric.mli: Assess Prng Runner Stats
