lib/simulate/e03_stationarity_conditions.mli: Assess Prng Runner Stats
