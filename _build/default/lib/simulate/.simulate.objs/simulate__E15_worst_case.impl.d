lib/simulate/e15_worst_case.ml: Adversarial Array Assess Edge_meg Graph List Printf Prng Runner Stats
