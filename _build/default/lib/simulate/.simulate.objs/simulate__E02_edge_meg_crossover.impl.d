lib/simulate/e02_edge_meg_crossover.ml: Array Assess Edge_meg List Markov Printf Prng Runner Stats Theory
