lib/simulate/e10_random_walk_geometric.ml: Array Assess Core Graph List Mobility Printf Prng Runner Stats
