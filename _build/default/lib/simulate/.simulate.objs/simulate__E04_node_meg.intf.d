lib/simulate/e04_node_meg.mli: Assess Prng Runner Stats
