lib/simulate/assess.mli: Stats
