lib/simulate/e01_edge_meg_scaling.mli: Assess Prng Runner Stats
