lib/simulate/e08_random_paths.mli: Assess Prng Runner Stats
