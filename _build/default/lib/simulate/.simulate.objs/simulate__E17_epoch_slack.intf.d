lib/simulate/e17_epoch_slack.mli: Assess Prng Runner Stats
