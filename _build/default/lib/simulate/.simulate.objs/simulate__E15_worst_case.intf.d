lib/simulate/e15_worst_case.mli: Assess Prng Runner Stats
