lib/simulate/e12_phases.mli: Assess Prng Runner Stats
