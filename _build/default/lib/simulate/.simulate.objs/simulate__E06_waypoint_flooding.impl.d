lib/simulate/e06_waypoint_flooding.ml: Array Assess List Mobility Printf Prng Runner Stats Theory
