lib/simulate/e17_epoch_slack.ml: Array Assess Core Edge_meg List Markov Printf Prng Runner Stats
