lib/simulate/assess.ml: Array Float List Printf Stats String
