lib/simulate/e09_augmented_grid.mli: Assess Prng Runner Stats
