lib/simulate/export.mli: Prng Registry Runner
