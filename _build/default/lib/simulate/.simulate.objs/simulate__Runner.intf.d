lib/simulate/runner.mli: Core Prng Stats
