lib/simulate/e09_augmented_grid.ml: Array Assess Graph List Markov Printf Prng Random_path Runner Stats Theory
