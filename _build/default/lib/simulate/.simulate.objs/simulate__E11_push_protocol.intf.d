lib/simulate/e11_push_protocol.mli: Assess Prng Runner Stats
