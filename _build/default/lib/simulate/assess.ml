type check = { label : string; passed : bool; detail : string }

let check ~label ?(detail = "") passed = { label; passed; detail }

let all_column table ~column ~label predicate =
  match Stats.Table.column_floats table column with
  | exception Not_found ->
      { label; passed = false; detail = Printf.sprintf "column %S not found" column }
  | [||] -> { label; passed = false; detail = Printf.sprintf "column %S empty" column }
  | values ->
      let mn = Array.fold_left Float.min infinity values in
      let mx = Array.fold_left Float.max neg_infinity values in
      {
        label;
        passed = Array.for_all predicate values;
        detail = Printf.sprintf "range [%.4g, %.4g]" mn mx;
      }

let column_range table ~column ~label ~lo ~hi =
  all_column table ~column ~label (fun v -> v >= lo && v <= hi)

let value_in ~label ~lo ~hi v =
  {
    label;
    passed = Float.is_finite v && v >= lo && v <= hi;
    detail = Printf.sprintf "value %.4g, band [%.4g, %.4g]" v lo hi;
  }

let ordered ~label ?(strict = false) values =
  let rec ok = function
    | a :: (b :: _ as rest) -> (if strict then a > b else a >= b) && ok rest
    | [ _ ] | [] -> true
  in
  {
    label;
    passed = ok values;
    detail =
      Printf.sprintf "sequence %s"
        (String.concat " -> " (List.map (Printf.sprintf "%.4g") values));
  }

let render ~title checks =
  let table = Stats.Table.create ~title ~columns:[ "check"; "verdict"; "detail" ] in
  List.iter
    (fun c ->
      Stats.Table.add_row table
        [ Text c.label; Text (if c.passed then "PASS" else "FAIL"); Text c.detail ])
    checks;
  table

let all_passed checks = List.for_all (fun c -> c.passed) checks
