(** The experiment registry: every claim-reproduction experiment of
    DESIGN.md, addressable by id, runnable from the CLI and from the
    benchmark harness, each with machine-checkable assessments. *)

type experiment = {
  id : string;           (** "E1" .. "E18" *)
  title : string;
  claim : string;        (** the paper claim being reproduced *)
  run : rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list;
  assess : Stats.Table.t list -> Assess.check list;
      (** shape checks over the tables produced by [run] *)
}

val all : experiment list
(** In id order. *)

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

val run_one :
  ?out:out_channel -> rng:Prng.Rng.t -> scale:Runner.scale -> experiment -> bool
(** Run one experiment, print claim, tables and scorecard to [out]
    (default stdout); returns whether all checks passed. *)

val run_all :
  ?out:out_channel -> rng:Prng.Rng.t -> scale:Runner.scale -> unit -> bool
(** Run every experiment, then print an overall reproduction summary;
    returns whether every check of every experiment passed. *)
