type experiment = {
  id : string;
  title : string;
  claim : string;
  run : rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list;
  assess : Stats.Table.t list -> Assess.check list;
}

module type EXPERIMENT = sig
  val id : string
  val title : string
  val claim : string
  val run : rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list
  val assess : Stats.Table.t list -> Assess.check list
end

let wrap (module E : EXPERIMENT) =
  { id = E.id; title = E.title; claim = E.claim; run = E.run; assess = E.assess }

let all =
  [
    wrap (module E01_edge_meg_scaling);
    wrap (module E02_edge_meg_crossover);
    wrap (module E03_stationarity_conditions);
    wrap (module E04_node_meg);
    wrap (module E05_waypoint_density);
    wrap (module E06_waypoint_flooding);
    wrap (module E07_waypoint_mixing);
    wrap (module E08_random_paths);
    wrap (module E09_augmented_grid);
    wrap (module E10_random_walk_geometric);
    wrap (module E11_push_protocol);
    wrap (module E12_phases);
    wrap (module E13_gossip);
    wrap (module E14_dynamic_walk);
    wrap (module E15_worst_case);
    wrap (module E16_disk_region);
    wrap (module E17_epoch_slack);
    wrap (module E18_discrete_waypoint);
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all

let run_one ?(out = stdout) ~rng ~scale e =
  Printf.fprintf out "---- %s: %s ----\n" e.id e.title;
  Printf.fprintf out "claim: %s\n\n" e.claim;
  let tables = e.run ~rng ~scale in
  List.iter (fun t -> Printf.fprintf out "%s\n" (Stats.Table.render t)) tables;
  let checks = e.assess tables in
  Printf.fprintf out "%s\n"
    (Stats.Table.render (Assess.render ~title:(e.id ^ " scorecard") checks));
  flush out;
  Assess.all_passed checks

let run_all ?(out = stdout) ~rng ~scale () =
  let verdicts =
    List.mapi
      (fun i e -> (e, run_one ~out ~rng:(Prng.Rng.substream rng (1000 + i)) ~scale e))
      all
  in
  let summary =
    Stats.Table.create ~title:"Reproduction summary"
      ~columns:[ "experiment"; "verdict"; "claim" ]
  in
  List.iter
    (fun ((e : experiment), ok) ->
      Stats.Table.add_row summary
        [ Text e.id; Text (if ok then "PASS" else "FAIL"); Text e.title ])
    verdicts;
  Printf.fprintf out "%s\n" (Stats.Table.render summary);
  flush out;
  List.for_all snd verdicts
