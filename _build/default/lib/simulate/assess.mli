(** Machine-checkable assessments of experiment outcomes.

    Each experiment declares a list of named checks over the tables it
    produced; the harness renders them as a reproduction scorecard.
    Checks are written against *shapes* (ratios bounded, slopes in a
    band, orderings), not absolute values, so they hold across seeds
    and scales — the same robustness the paper's O(·) statements have. *)

type check = { label : string; passed : bool; detail : string }

val check : label:string -> ?detail:string -> bool -> check

val all_column :
  Stats.Table.t -> column:string -> label:string -> (float -> bool) -> check
(** Passes when the predicate holds for every numeric cell of the
    column; the detail reports the min/max seen. Fails when the column
    is empty. *)

val column_range : Stats.Table.t -> column:string -> label:string -> lo:float -> hi:float -> check
(** All values of the column within [lo, hi]. *)

val value_in : label:string -> lo:float -> hi:float -> float -> check
(** A single scalar within a band. *)

val ordered :
  label:string -> ?strict:bool -> float list -> check
(** The values are non-increasing (or strictly decreasing). *)

val render : title:string -> check list -> Stats.Table.t
(** Scorecard table with one row per check. *)

val all_passed : check list -> bool
