type init = Stationary | All_in of int | Uniform_states

let connection_table chain connect =
  let s = Markov.Chain.n_states chain in
  let table = Array.make (s * s) false in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      let c = connect x y in
      if c <> connect y x then invalid_arg "Node_meg.make: connection map is not symmetric";
      table.((x * s) + y) <- c
    done
  done;
  table

let make_observable ?(init = Stationary) ~n ~chain ~connect () =
  let s = Markov.Chain.n_states chain in
  let table = connection_table chain connect in
  let states = Array.make n 0 in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler = lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain)) in
  let reset r =
    rng := r;
    match init with
    | All_in x ->
        if x < 0 || x >= s then invalid_arg "Node_meg.make: initial state out of range";
        Array.fill states 0 n x
    | Uniform_states ->
        for i = 0 to n - 1 do
          states.(i) <- Prng.Rng.int !rng s
        done
    | Stationary ->
        let sampler = Lazy.force stationary_sampler in
        for i = 0 to n - 1 do
          states.(i) <- Prng.Discrete.draw sampler !rng
        done
  in
  let step () =
    for i = 0 to n - 1 do
      states.(i) <- Markov.Chain.step chain !rng states.(i)
    done
  in
  let iter_edges f =
    (* Bucket nodes by state, then emit cross products for connected
       state pairs (and within-bucket pairs for self-connected states). *)
    let buckets = Array.make s [] in
    for i = n - 1 downto 0 do
      buckets.(states.(i)) <- i :: buckets.(states.(i))
    done;
    for x = 0 to s - 1 do
      match buckets.(x) with
      | [] -> ()
      | bx ->
          if table.((x * s) + x) then begin
            let rec within = function
              | [] -> ()
              | u :: rest ->
                  List.iter (fun v -> f u v) rest;
                  within rest
            in
            within bx
          end;
          for y = x + 1 to s - 1 do
            if table.((x * s) + y) then
              List.iter (fun u -> List.iter (fun v -> f u v) buckets.(y)) bx
          done
    done
  in
  let dyn = Core.Dynamic.make ~n ~reset ~step ~iter_edges in
  (dyn, fun () -> Array.copy states)

let make ?init ~n ~chain ~connect () = fst (make_observable ?init ~n ~chain ~connect ())

let q_of_state ~chain ~connect =
  let s = Markov.Chain.n_states chain in
  let pi = Markov.Chain.stationary chain in
  Array.init s (fun x ->
      let acc = ref 0. in
      for y = 0 to s - 1 do
        if connect x y then acc := !acc +. pi.(y)
      done;
      !acc)

let p_nm ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x))) pi;
  !acc

let p_nm2 ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x) *. q.(x))) pi;
  !acc

let eta ~chain ~connect =
  let p = p_nm ~chain ~connect in
  if p <= 0. then invalid_arg "Node_meg.eta: P_NM is zero";
  p_nm2 ~chain ~connect /. (p *. p)

let theorem3_bound ~chain ~connect ~n ?t_mix () =
  let t_mix =
    match t_mix with
    | Some t -> t
    | None -> (
        match Markov.Chain.mixing_time chain with
        | Some 0 | None -> 1.
        | Some t -> float_of_int t)
  in
  Theory.Bounds.theorem3 ~t_mix ~p_nm:(p_nm ~chain ~connect) ~eta:(eta ~chain ~connect) ~n
