(** Node-Markovian evolving graphs NM(n, M, C) (paper, Section 4).

    Every node runs an independent copy of a finite Markov chain [M];
    a symmetric connection map [C] over chain states decides, at every
    step, which pairs of nodes are joined by an edge.

    Because nodes are exchangeable (Fact 2), the quantities P_NM (two
    fixed nodes connected) and P_NM2 (two fixed nodes both connected to
    a third) are functions of the stationary distribution π and [C]
    alone; they are computed exactly here and feed Theorem 3. *)

type init =
  | Stationary            (** states i.i.d. from π *)
  | All_in of int         (** every node starts in the given state *)
  | Uniform_states        (** states i.i.d. uniform over S *)

val make :
  ?init:init -> n:int -> chain:Markov.Chain.t -> connect:(int -> int -> bool) -> unit ->
  Core.Dynamic.t
(** Build the process. [connect] must be symmetric; it is evaluated once
    per ordered state pair at construction time into a |S|×|S| table
    (|S|² memory), which makes edge enumeration output-sensitive:
    nodes are bucketed by state and only state pairs with C = 1 produce
    work. *)

val make_observable :
  ?init:init -> n:int -> chain:Markov.Chain.t -> connect:(int -> int -> bool) -> unit ->
  Core.Dynamic.t * (unit -> int array)
(** Like {!make} but also returns an observer of the current per-node
    chain states (a copy, safe to keep). *)

val q_of_state : chain:Markov.Chain.t -> connect:(int -> int -> bool) -> float array
(** [q_of_state ~chain ~connect] gives q(x) = π(Γ(x)): the stationary
    probability that a fixed node is connected to another fixed node
    known to be in state [x]. *)

val p_nm : chain:Markov.Chain.t -> connect:(int -> int -> bool) -> float
(** P_NM = Σ_x π(x) q(x): stationary probability that two fixed nodes
    are connected. *)

val p_nm2 : chain:Markov.Chain.t -> connect:(int -> int -> bool) -> float
(** P_NM2 = Σ_x π(x) q(x)²: stationary probability that two fixed nodes
    are both connected to a third fixed node. *)

val eta : chain:Markov.Chain.t -> connect:(int -> int -> bool) -> float
(** The η of Theorem 3: P_NM2 / P_NM². *)

val theorem3_bound :
  chain:Markov.Chain.t -> connect:(int -> int -> bool) -> n:int -> ?t_mix:float -> unit -> float
(** Theorem 3's expression with exact P_NM and η. [t_mix] defaults to
    the chain's exact mixing time (1 if it mixes instantly or the exact
    computation does not converge). *)
