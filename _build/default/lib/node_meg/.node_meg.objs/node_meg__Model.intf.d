lib/node_meg/model.mli: Core Markov
