lib/node_meg/model.ml: Array Core Lazy List Markov Prng Theory
