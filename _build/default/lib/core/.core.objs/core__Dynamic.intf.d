lib/core/dynamic.mli: Graph Prng
