lib/core/dyn_walk.mli: Dynamic Prng
