lib/core/dyn_walk.ml: Array Dynamic List Prng
