lib/core/flooding.ml: Array Dynamic List Prng Stats
