lib/core/stationarity.ml: Array Dynamic Float List Prng
