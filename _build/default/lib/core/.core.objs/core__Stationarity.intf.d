lib/core/stationarity.mli: Dynamic Prng
