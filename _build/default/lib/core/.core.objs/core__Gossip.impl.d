lib/core/gossip.ml: Array Dynamic List Prng Stats
