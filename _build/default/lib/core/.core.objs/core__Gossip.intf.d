lib/core/gossip.mli: Dynamic Prng Stats
