lib/core/phases.mli:
