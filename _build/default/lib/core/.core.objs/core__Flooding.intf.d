lib/core/flooding.mli: Dynamic Prng Stats
