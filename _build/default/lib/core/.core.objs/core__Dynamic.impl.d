lib/core/dynamic.ml: Array Graph Hashtbl List Prng
