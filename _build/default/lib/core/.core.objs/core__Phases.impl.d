lib/core/phases.ml: Array List
