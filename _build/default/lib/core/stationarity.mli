(** Empirical estimation of the paper's (M, α, β)-stationarity
    parameters (Section 3).

    The Density Condition asks that every edge appear with probability
    at least α at every epoch boundary; the β-Independence Condition
    bounds the positive correlation of two incident-edge events
    e(i, A), e(j, A). Both are defined against the (near-)stationary
    regime, so the estimator burns the process in first, then samples
    snapshots spaced far enough apart to be nearly independent. *)

type estimate = {
  alpha_hat : float;
      (** Minimum, over the sampled node pairs, of the empirical edge
          probability. *)
  alpha_mean : float;
      (** Mean empirical edge probability over sampled pairs (the
          density of the stationary graph). *)
  beta_hat : float;
      (** Maximum, over sampled (i, j, A) triples, of
          P(e(i,A) and e(j,A)) / (P(e(i,A)) P(e(j,A))); triples whose
          denominator cannot be resolved from the sample are skipped. *)
  isolated_mean : float;
      (** Mean fraction of isolated nodes per snapshot — the paper's
          sparseness indicator. *)
  snapshots : int;  (** Number of snapshots the estimates are based on. *)
}

val estimate :
  rng:Prng.Rng.t ->
  ?burn_in:int ->
  ?snapshots:int ->
  ?gap:int ->
  ?pairs:int ->
  ?triples:int ->
  ?set_size:int ->
  Dynamic.t ->
  estimate
(** [estimate ~rng g] resets [g], advances [burn_in] steps (default
    [10 * n]), then observes [snapshots] snapshots (default 300) spaced
    [gap] steps apart (default [max 1 (n / 10)]). It tracks [pairs]
    random node pairs (default 50) for α and [triples] random (i, j, A)
    triples with |A| = [set_size] (default [max 2 (n / 10)]) for β. *)

val check_theorem1_bound :
  measured:float -> m:int -> alpha:float -> beta:float -> n:int -> float
(** [check_theorem1_bound ~measured ~m ~alpha ~beta ~n] is the ratio of
    the measured flooding time to the Theorem 1 expression
    [m * (1/(n*alpha) + beta)^2 * (log n)^2]; values O(1) mean the bound
    holds with a small constant. *)
