type analysis = {
  spreading_time : int option;
  saturation_time : int option;
  doubling_times : (int * int) list;
  max_doubling_gap : int option;
}

let time_to_reach trajectory k =
  let n = Array.length trajectory in
  let rec go t = if t >= n then None else if trajectory.(t) >= k then Some t else go (t + 1) in
  go 0

let analyze ~n trajectory =
  if n < 1 then invalid_arg "Phases.analyze: n must be >= 1";
  let half = (n + 1) / 2 in
  let spreading_time = time_to_reach trajectory half in
  let full_time = time_to_reach trajectory n in
  let saturation_time =
    match (spreading_time, full_time) with
    | Some s, Some f -> Some (f - s)
    | _ -> None
  in
  let rec targets k acc =
    let target = 1 lsl k in
    if target >= n then List.rev ((n, k) :: acc) else targets (k + 1) ((target, k) :: acc)
  in
  let doubling_times =
    targets 0 []
    |> List.filter_map (fun (target, _) ->
           match time_to_reach trajectory target with
           | Some t -> Some (target, t)
           | None -> None)
  in
  let max_doubling_gap =
    let spreading =
      List.filter (fun (target, _) -> target <= half) doubling_times |> List.map snd
    in
    let rec gaps = function
      | a :: (b :: _ as rest) -> (b - a) :: gaps rest
      | [ _ ] | [] -> []
    in
    match gaps spreading with [] -> None | gs -> Some (List.fold_left max 0 gs)
  in
  { spreading_time; saturation_time; doubling_times; max_doubling_gap }
