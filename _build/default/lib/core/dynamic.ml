type t = {
  n : int;
  reset : Prng.Rng.t -> unit;
  step : unit -> unit;
  iter_edges : (int -> int -> unit) -> unit;
}

let make ~n ~reset ~step ~iter_edges =
  if n < 1 then invalid_arg "Dynamic.make: n must be >= 1";
  { n; reset; step; iter_edges }

let n t = t.n

let reset t rng = t.reset rng

let step t = t.step ()

let iter_edges t f = t.iter_edges f

let snapshot_edges t =
  let acc = ref [] in
  t.iter_edges (fun u v -> acc := (min u v, max u v) :: !acc);
  List.sort_uniq compare !acc

let snapshot_graph t = Graph.Static.of_edges ~n:t.n (snapshot_edges t)

let adjacency t =
  let adj = Array.make t.n [] in
  t.iter_edges (fun u v ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v));
  adj

let edge_count t =
  let c = ref 0 in
  t.iter_edges (fun _ _ -> incr c);
  !c

let isolated_fraction t =
  let touched = Array.make t.n false in
  t.iter_edges (fun u v ->
      touched.(u) <- true;
      touched.(v) <- true);
  let isolated = ref 0 in
  Array.iter (fun b -> if not b then incr isolated) touched;
  float_of_int !isolated /. float_of_int t.n

let of_static g =
  {
    n = Graph.Static.n g;
    reset = (fun _ -> ());
    step = (fun () -> ());
    iter_edges = (fun f -> Graph.Static.iter_edges g f);
  }

let of_snapshots ~n snapshots =
  if Array.length snapshots = 0 then invalid_arg "Dynamic.of_snapshots: empty sequence";
  let idx = ref 0 in
  {
    n;
    reset = (fun _ -> idx := 0);
    step = (fun () -> idx := (!idx + 1) mod Array.length snapshots);
    iter_edges = (fun f -> List.iter (fun (u, v) -> f u v) snapshots.(!idx));
  }

let filter_edges ~p_keep inner =
  if not (p_keep >= 0. && p_keep <= 1.) then
    invalid_arg "Dynamic.filter_edges: p_keep outside [0, 1]";
  let rng = ref (Prng.Rng.of_seed 0) in
  (* The filter decision for an edge must be stable within one snapshot
     (iter_edges may be called several times between steps), so decisions
     are cached per step and invalidated on step/reset. *)
  let cache = Hashtbl.create 256 in
  let invalidate () = Hashtbl.reset cache in
  let keep u v =
    let key = (min u v, max u v) in
    match Hashtbl.find_opt cache key with
    | Some b -> b
    | None ->
        let b = Prng.Rng.bernoulli !rng p_keep in
        Hashtbl.add cache key b;
        b
  in
  {
    n = inner.n;
    reset =
      (fun r ->
        inner.reset (Prng.Rng.split r);
        rng := Prng.Rng.split r;
        invalidate ());
    step =
      (fun () ->
        inner.step ();
        invalidate ());
    iter_edges = (fun f -> inner.iter_edges (fun u v -> if keep u v then f u v));
  }

let subsample ~every inner =
  if every < 1 then invalid_arg "Dynamic.subsample: every must be >= 1";
  {
    n = inner.n;
    reset = inner.reset;
    step =
      (fun () ->
        for _ = 1 to every do
          inner.step ()
        done);
    iter_edges = inner.iter_edges;
  }

let union a b =
  if a.n <> b.n then invalid_arg "Dynamic.union: node-count mismatch";
  {
    n = a.n;
    reset =
      (fun r ->
        a.reset (Prng.Rng.split r);
        b.reset (Prng.Rng.split r));
    step =
      (fun () ->
        a.step ();
        b.step ());
    iter_edges =
      (fun f ->
        a.iter_edges f;
        b.iter_edges f);
  }
