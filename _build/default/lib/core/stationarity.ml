type estimate = {
  alpha_hat : float;
  alpha_mean : float;
  beta_hat : float;
  isolated_mean : float;
  snapshots : int;
}

type triple = { i : int; j : int; a : int array }

let sample_triple rng n set_size =
  let chosen = Prng.Rng.sample_without_replacement rng (set_size + 2) n in
  { i = chosen.(0); j = chosen.(1); a = Array.sub chosen 2 set_size }

let estimate ~rng ?burn_in ?(snapshots = 300) ?gap ?(pairs = 50) ?(triples = 30) ?set_size g =
  let n = Dynamic.n g in
  let burn_in = match burn_in with Some b -> b | None -> 10 * n in
  let gap = match gap with Some g -> g | None -> max 1 (n / 10) in
  let set_size = match set_size with Some s -> s | None -> max 2 (n / 10) in
  if set_size + 2 > n then invalid_arg "Stationarity.estimate: set_size too large for n";
  Dynamic.reset g (Prng.Rng.split rng);
  for _ = 1 to burn_in do
    Dynamic.step g
  done;
  let sampled_pairs =
    Array.init pairs (fun _ ->
        let c = Prng.Rng.sample_without_replacement rng 2 n in
        (c.(0), c.(1)))
  in
  let sampled_triples = Array.init triples (fun _ -> sample_triple rng n set_size) in
  let pair_hits = Array.make pairs 0 in
  let hit_i = Array.make triples 0 in
  let hit_j = Array.make triples 0 in
  let hit_both = Array.make triples 0 in
  let isolated_acc = ref 0. in
  let in_set = Array.make n (-1) in
  for snap = 0 to snapshots - 1 do
    let adj = Dynamic.adjacency g in
    let connected u set_id =
      List.exists (fun v -> in_set.(v) = set_id) adj.(u)
    in
    Array.iteri
      (fun k (u, v) -> if List.mem v adj.(u) then pair_hits.(k) <- pair_hits.(k) + 1)
      sampled_pairs;
    Array.iteri
      (fun k tr ->
        Array.iter (fun v -> in_set.(v) <- k) tr.a;
        let ei = connected tr.i k and ej = connected tr.j k in
        if ei then hit_i.(k) <- hit_i.(k) + 1;
        if ej then hit_j.(k) <- hit_j.(k) + 1;
        if ei && ej then hit_both.(k) <- hit_both.(k) + 1;
        Array.iter (fun v -> in_set.(v) <- -1) tr.a)
      sampled_triples;
    isolated_acc := !isolated_acc +. Dynamic.isolated_fraction g;
    if snap < snapshots - 1 then
      for _ = 1 to gap do
        Dynamic.step g
      done
  done;
  let fs = float_of_int snapshots in
  let pair_probs = Array.map (fun h -> float_of_int h /. fs) pair_hits in
  let alpha_hat = Array.fold_left Float.min infinity pair_probs in
  let alpha_mean = Array.fold_left ( +. ) 0. pair_probs /. float_of_int pairs in
  let beta_hat = ref 0. in
  for k = 0 to triples - 1 do
    let pi = float_of_int hit_i.(k) /. fs in
    let pj = float_of_int hit_j.(k) /. fs in
    let pb = float_of_int hit_both.(k) /. fs in
    (* Triples whose marginals were never observed give no information
       about the ratio; skip them rather than divide by zero. *)
    if pi > 0. && pj > 0. && pb > 0. then begin
      let ratio = pb /. (pi *. pj) in
      if ratio > !beta_hat then beta_hat := ratio
    end
  done;
  {
    alpha_hat;
    alpha_mean;
    beta_hat = !beta_hat;
    isolated_mean = !isolated_acc /. fs;
    snapshots;
  }

let check_theorem1_bound ~measured ~m ~alpha ~beta ~n =
  let fn = float_of_int n in
  let logn = log fn in
  let bound = float_of_int m *. ((1. /. (fn *. alpha)) +. beta) ** 2. *. logn *. logn in
  measured /. bound
