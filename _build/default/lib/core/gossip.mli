(** Gossip-style dissemination on dynamic graphs — the "more refined
    communication protocols than flooding" of the paper's conclusions.

    Where flooding transmits on every incident edge, gossip protocols
    bound per-node communication: each round every node contacts a
    single uniformly random current neighbour and pushes (sender-side),
    pulls (receiver-side), or both. On a dynamic graph the neighbour
    sets are those of the current snapshot, so all three reduce — in
    the paper's sense — to flooding on a sparser virtual dynamic graph
    whose edges are the chosen contact pairs. *)

type variant =
  | Push       (** informed nodes send to one random neighbour *)
  | Pull       (** uninformed nodes fetch from one random neighbour *)
  | Push_pull  (** both; the classic rumour-spreading protocol *)

type result = {
  time : int option;      (** rounds until everyone is informed *)
  trajectory : int array; (** |I_t| per round *)
  contacts : int;         (** total contacts made (message cost) *)
}

val run :
  ?cap:int -> variant:variant -> rng:Prng.Rng.t -> source:int -> Dynamic.t -> result
(** Run one gossip execution. Semantics per round t: every node draws
    one uniform neighbour in E_t (isolated nodes skip the round); a
    push delivers if the caller is informed, a pull delivers if the
    callee is informed; all deliveries of a round take effect together
    at t+1. [cap] defaults to the flooding default. *)

val mean_time :
  ?cap:int ->
  variant:variant ->
  rng:Prng.Rng.t ->
  trials:int ->
  ?source:int ->
  Dynamic.t ->
  Stats.Summary.t
(** Round-count summary over independent trials (capped runs recorded
    at the cap, as in {!Flooding.mean_time}). *)
