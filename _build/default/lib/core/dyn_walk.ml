let default_cap n = 10_000 + (500 * n)

let step_walk ~hold rng adj u =
  if hold > 0. && Prng.Rng.bernoulli rng hold then u
  else
    match adj.(u) with
    | [] -> u
    | neighbours -> List.nth neighbours (Prng.Rng.int rng (List.length neighbours))

let walk_until ?cap ?(hold = 0.5) ~rng ~start ~stop g =
  let n = Dynamic.n g in
  if start < 0 || start >= n then invalid_arg "Dyn_walk: start out of range";
  if not (hold >= 0. && hold < 1.) then invalid_arg "Dyn_walk: hold outside [0, 1)";
  let cap = match cap with Some c -> c | None -> default_cap n in
  Dynamic.reset g (Prng.Rng.split rng);
  let position = ref start in
  let t = ref 0 in
  let finished = ref (stop ~position:!position ~time:0) in
  while (not !finished) && !t < cap do
    let adj = Dynamic.adjacency g in
    position := step_walk ~hold rng adj !position;
    Dynamic.step g;
    incr t;
    finished := stop ~position:!position ~time:!t
  done;
  if !finished then Some !t else None

let hitting_time ?cap ?hold ~rng ~start ~target g =
  let n = Dynamic.n g in
  if target < 0 || target >= n then invalid_arg "Dyn_walk.hitting_time: target out of range";
  walk_until ?cap ?hold ~rng ~start ~stop:(fun ~position ~time:_ -> position = target) g

let cover_time ?cap ?hold ~rng ~start g =
  let n = Dynamic.n g in
  let visited = Array.make n false in
  let n_visited = ref 0 in
  let note u =
    if not visited.(u) then begin
      visited.(u) <- true;
      incr n_visited
    end
  in
  walk_until ?cap ?hold ~rng ~start
    ~stop:(fun ~position ~time:_ ->
      note position;
      !n_visited = n)
    g

let averaged ?cap ?hold ~rng ~trials g one =
  if trials < 1 then invalid_arg "Dyn_walk: trials must be >= 1";
  let n = Dynamic.n g in
  let cap_value = match cap with Some c -> c | None -> default_cap n in
  let acc = ref 0. in
  for i = 0 to trials - 1 do
    let trial_rng = Prng.Rng.substream rng i in
    let t =
      match one ~cap:cap_value ?hold ~rng:trial_rng g with
      | Some t -> t
      | None -> cap_value
    in
    acc := !acc +. float_of_int t
  done;
  !acc /. float_of_int trials

let mean_hitting_time ?cap ?hold ~rng ~trials g =
  let n = Dynamic.n g in
  averaged ?cap ?hold ~rng ~trials g (fun ~cap ?hold ~rng g ->
      let start = Prng.Rng.int rng n and target = Prng.Rng.int rng n in
      hitting_time ~cap ?hold ~rng ~start ~target g)

let mean_cover_time ?cap ?hold ~rng ~trials g =
  let n = Dynamic.n g in
  averaged ?cap ?hold ~rng ~trials g (fun ~cap ?hold ~rng g ->
      cover_time ~cap ?hold ~rng ~start:(Prng.Rng.int rng n) g)
