(** Phase analysis of a flooding trajectory, mirroring the proof
    structure of Theorem 1: a spreading phase in which |I| doubles every
    O(T) epochs until n/2 (Lemma 13), then a saturation phase informing
    the remaining nodes in O((1/(nα) + β) log n) epochs (Lemma 14). *)

type analysis = {
  spreading_time : int option;
      (** First t with |I_t| >= n/2, or [None] if never reached. *)
  saturation_time : int option;
      (** Steps from n/2 informed to all informed, when both happened. *)
  doubling_times : (int * int) list;
      (** [(target, t)] pairs: first time |I_t| reached
          min(2^k, n) for k = 0, 1, 2, ... *)
  max_doubling_gap : int option;
      (** Largest gap between consecutive doubling times during the
          spreading phase — Lemma 13 predicts it stays O(T). *)
}

val analyze : n:int -> int array -> analysis
(** [analyze ~n trajectory] where [trajectory.(t) = |I_t|]. *)

val time_to_reach : int array -> int -> int option
(** [time_to_reach trajectory k] is the first index with value >= k. *)
