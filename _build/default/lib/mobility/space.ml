let clamp l x = if x < 0. then 0. else if x > l then l else x

let dist2 x1 y1 x2 y2 =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  (dx *. dx) +. (dy *. dy)

let iter_close_pairs ~l ~r ~xs ~ys f =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Space.iter_close_pairs: length mismatch";
  if r < 0. then invalid_arg "Space.iter_close_pairs: negative radius";
  let cell = Float.max r (Float.max (l /. 1024.) 1e-9) in
  let side = max 1 (int_of_float (ceil (l /. cell))) in
  let cell_of i =
    let cx = min (side - 1) (int_of_float (xs.(i) /. cell)) in
    let cy = min (side - 1) (int_of_float (ys.(i) /. cell)) in
    (cx * side) + cy
  in
  let buckets = Hashtbl.create (2 * n) in
  for i = n - 1 downto 0 do
    let key = cell_of i in
    Hashtbl.replace buckets key (i :: (Option.value ~default:[] (Hashtbl.find_opt buckets key)))
  done;
  let r2 = r *. r in
  let close i j = dist2 xs.(i) ys.(i) xs.(j) ys.(j) <= r2 in
  Hashtbl.iter
    (fun key members ->
      let cx = key / side and cy = key mod side in
      (* Within-cell pairs. *)
      let rec within = function
        | [] -> ()
        | i :: rest ->
            List.iter (fun j -> if close i j then f (min i j) (max i j)) rest;
            within rest
      in
      within members;
      (* Cross-cell pairs: scan half the neighbourhood so each unordered
         cell pair is visited once. *)
      let half_neighbours = [ (1, -1); (1, 0); (1, 1); (0, 1) ] in
      List.iter
        (fun (dx, dy) ->
          let cx' = cx + dx and cy' = cy + dy in
          if cx' >= 0 && cx' < side && cy' >= 0 && cy' < side then
            match Hashtbl.find_opt buckets ((cx' * side) + cy') with
            | None -> ()
            | Some others ->
                List.iter
                  (fun i -> List.iter (fun j -> if close i j then f (min i j) (max i j)) others)
                  members)
        half_neighbours)
    buckets

let cell_index ~l ~bins x y =
  let at v =
    let i = int_of_float (float_of_int bins *. v /. l) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i
  in
  (at x * bins) + at y
