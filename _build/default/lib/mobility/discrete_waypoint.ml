type t = {
  m : int;
  r : float;
  chain : Markov.Chain.t;
  connect : int -> int -> bool;
}

(* State encoding: (current point, destination point) with points
   row-major p = x * m + y; state = current * m^2 + dest. *)

let point_coords m p = (p / m, p mod m)

let state_position t s =
  let current = s / (t.m * t.m) in
  point_coords t.m current

let sign v = compare v 0

let build ~m ~r =
  if m < 2 || m > 10 then invalid_arg "Discrete_waypoint.build: m must be in [2, 10]";
  if r < 0. then invalid_arg "Discrete_waypoint.build: negative radius";
  let points = m * m in
  let n_states = points * points in
  let encode current dest = (current * points) + dest in
  let rows =
    Array.init n_states (fun s ->
        let current = s / points and dest = s mod points in
        if current = dest then
          (* Arrived: fresh uniform destination, position unchanged.
             (Destination may equal the current point, giving a one-step
             rest — harmless and it keeps the chain aperiodic.) *)
          Array.init points (fun d -> (encode current d, 1.))
        else begin
          (* King-move one step toward the destination: the discrete
             straight line. *)
          let cx, cy = point_coords m current and dx, dy = point_coords m dest in
          let nx = cx + sign (dx - cx) and ny = cy + sign (dy - cy) in
          [| (encode ((nx * m) + ny) dest, 1.) |]
        end)
  in
  let chain = Markov.Chain.of_rows rows in
  let r2 = r *. r in
  let connect s1 s2 =
    let c1 = s1 / points and c2 = s2 / points in
    let x1, y1 = point_coords m c1 and x2, y2 = point_coords m c2 in
    let fx = float_of_int (x1 - x2) and fy = float_of_int (y1 - y2) in
    (fx *. fx) +. (fy *. fy) <= r2
  in
  { m; r; chain; connect }

let m t = t.m

let n_states t = Markov.Chain.n_states t.chain

let chain t = t.chain

let connect t = t.connect

let stationary_position_distribution t =
  let points = t.m * t.m in
  let pi = Markov.Chain.stationary t.chain in
  let positional = Array.make points 0. in
  Array.iteri
    (fun s mass ->
      let current = s / points in
      positional.(current) <- positional.(current) +. mass)
    pi;
  positional

let p_nm t = Node_meg.Model.p_nm ~chain:t.chain ~connect:t.connect

let eta t = Node_meg.Model.eta ~chain:t.chain ~connect:t.connect

let corollary4_eta_bound t =
  (* Extract delta and lambda exactly from the positional distribution:
     vol(R) = m^2 grid cells of unit area; F(point) = P(point).
     delta = max F * vol; B = points with F >= 1/(delta*vol);
     lambda = |B| / vol. (The B_r shrinkage is immaterial at these
     radii and grid sizes; documented in DESIGN.) *)
  let positional = stationary_position_distribution t in
  let vol = float_of_int (Array.length positional) in
  let max_f = Array.fold_left Float.max 0. positional in
  let delta = max_f *. vol in
  let threshold = 1. /. (delta *. vol) in
  let good =
    Array.fold_left (fun acc f -> if f >= threshold then acc + 1 else acc) 0 positional
  in
  let lambda = float_of_int good /. vol in
  (delta ** 6.) /. (lambda ** 2.)

let dynamic ?init ~n t = Node_meg.Model.make ?init ~n ~chain:t.chain ~connect:t.connect ()
