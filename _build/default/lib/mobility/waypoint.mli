(** The random waypoint model (paper, Section 4.1): every node picks a
    uniform destination in the L×L square and a speed uniform in
    [v_min, v_max], travels in a straight line to the destination, then
    repeats. Two nodes are connected when within the transmission
    radius r.

    Discrete time: a node moves exactly [speed] per step (landing on
    the destination when closer than one step). The paper's node-MEG
    discretisation replaces the continuum by an m×m grid; simulating
    continuous positions under discrete time is the resolution-limit of
    that construction (footnote 3: the resolution does not affect the
    bounds). *)

type init =
  | Uniform   (** positions uniform in the square (fresh trip begins) *)
  | Corner    (** all nodes at the origin — an adversarial start *)
  | Steady
      (** steady-state initialisation (Camp–Navidi–Bauer [8], Le
          Boudec–Vojnović [24]): the trip (P1, P2) is drawn with
          density proportional to |P1P2| (long trips are
          over-represented at a random time instant), the position
          uniform along the trip, and the speed with density ∝ 1/v on
          [v_min, v_max] (slow trips last longer). Sampling starts the
          process (near) its stationary regime, removing the burn-in
          that [Uniform] needs. *)

type region =
  | Square  (** the full [0, L]² square *)
  | Disk
      (** the disk inscribed in the square (centre (L/2, L/2), radius
          L/2). Corollary 4 covers any bounded connected region; the
          disk exercises that generality — trips between points of a
          convex region stay inside it, so the straight-line dynamics
          need no changes. *)

val region_contains : region -> l:float -> float -> float -> bool
(** Membership test for a region of scale [l] (also the mask to pass to
    {!Density.uniformity}). *)

val create :
  ?init:init -> ?region:region -> ?pause:int ->
  n:int -> l:float -> r:float -> v_min:float -> v_max:float -> unit -> Geo.t
(** Requires [0 < v_min <= v_max] and [l > 0]. [region] defaults to
    [Square]. For [Disk], [Corner] starts all nodes at the boundary
    point (0, L/2). [pause] (default 0) is the classic think-time of
    the waypoint literature: on reaching its destination a node rests
    for a uniform number of steps in [\[0, pause\]] before starting the
    next trip — one of the random-trip generalisations Corollary 4
    covers (it scales the mixing time by (1 + E[pause]·v/L̄) and mixes
    extra destination-point mass into the stationary density). The
    paper assumes [v_max = Θ(v_min)]; nothing here enforces it, but the
    mixing-time formula Θ(L/v_max) quoted in the experiments does. *)

val dynamic :
  ?init:init -> ?region:region -> ?pause:int ->
  n:int -> l:float -> r:float -> v_min:float -> v_max:float -> unit -> Core.Dynamic.t
(** Convenience: [Geo.dynamic (create ...)]. *)

val marginal_density : l:float -> float -> float
(** The classic one-dimensional waypoint stationary density
    f(x) = 6 x (L - x) / L³ on [\[0, L\]] (Bettstetter et al. [6]);
    integrates to 1. *)

val product_density : l:float -> float -> float -> float
(** Separable approximation F(x, y) ≈ f(x) f(y) to the 2-D stationary
    positional density. Exact enough to exhibit the center bias and the
    δ / λ constants of Corollary 4; the experiments compare it against
    the measured occupancy. *)

val exact_density : ?angular_steps:int -> ?region:region -> l:float -> float -> float -> float
(** The exact (up to numeric quadrature) stationary positional density
    of the waypoint process with uniform destinations, via the
    line-integral formula of Bettstetter–Resta–Santi [6]: the
    unnormalised density at p is

      ∫₀^π a₁(θ) a₂(θ) (a₁(θ) + a₂(θ)) dθ

    where a₁, a₂ are the distances from p to the region boundary in
    directions θ and θ+π (a chord through p is travelled with
    probability proportional to the measure of endpoint pairs whose
    segment covers p). Normalised numerically so that it integrates to
    1 over the region. Valid for constant speed (speed mixing changes
    only the time scale, not the positional density). Default 180
    angular steps; points outside the region return 0. Works for both
    regions — for [Disk] the boundary distances use the circle. *)

val mixing_time_formula : l:float -> v_max:float -> float
(** The Θ(L/v_max) mixing-time scale quoted by the paper ([1, 29]),
    with constant 1. *)
