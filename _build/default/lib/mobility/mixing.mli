(** Empirical positional mixing time of a mobility model — the
    measurement behind claim E7 (waypoint mixing is Θ(L/v_max)).

    The hidden node chain of a geometric node-MEG projects onto the
    node's position; TV convergence of the positional distribution
    lower-bounds chain convergence and is the quantity the paper's
    mixing citation [1, 29] refers to. We start replicas from the
    worst-case corner configuration and track the TV distance between
    their empirical cell occupancy and a long-run reference. *)

type curve = {
  checkpoints : (int * float) list;  (** (t, TV distance at t) *)
  t_mix : int option;                (** first checkpoint within eps + slack *)
  slack : float;                     (** sampling-noise allowance *)
}

val measure :
  make:(unit -> Geo.t) ->
  rng:Prng.Rng.t ->
  ?bins:int ->
  ?replicas:int ->
  ?eps:float ->
  checkpoints:int list ->
  unit ->
  curve
(** [make ()] must build a fresh model whose [reset] realises the
    worst-case initial configuration (e.g. [Waypoint.create
    ~init:Corner]). Defaults: 8×8 cells, 2000 replicas, eps = 1/4. The
    reference distribution is estimated from the same model via
    {!Density.estimate} with default burn-in. *)
