type init = Uniform | Corner

let create ?(init = Uniform) ~n ~l ~r ~v_min ~v_max () =
  if not (v_min > 0. && v_min <= v_max) then
    invalid_arg "Manhattan.create: need 0 < v_min <= v_max";
  let xs = Array.make n 0. and ys = Array.make n 0. in
  let dest_x = Array.make n 0. and dest_y = Array.make n 0. in
  let speed = Array.make n v_min in
  let new_trip rng i =
    dest_x.(i) <- Prng.Rng.float rng l;
    dest_y.(i) <- Prng.Rng.float rng l;
    speed.(i) <- Prng.Rng.float_range rng v_min v_max
  in
  let reset_node rng i =
    (match init with
    | Corner ->
        xs.(i) <- 0.;
        ys.(i) <- 0.
    | Uniform ->
        xs.(i) <- Prng.Rng.float rng l;
        ys.(i) <- Prng.Rng.float rng l);
    new_trip rng i
  in
  let move_node rng i =
    (* Spend the step's speed budget along x first, then along y. *)
    let budget = ref speed.(i) in
    let dx = dest_x.(i) -. xs.(i) in
    let step_x = Float.min !budget (abs_float dx) in
    xs.(i) <- xs.(i) +. (if dx >= 0. then step_x else -.step_x);
    budget := !budget -. step_x;
    if !budget > 0. then begin
      let dy = dest_y.(i) -. ys.(i) in
      let step_y = Float.min !budget (abs_float dy) in
      ys.(i) <- ys.(i) +. (if dy >= 0. then step_y else -.step_y)
    end;
    if xs.(i) = dest_x.(i) && ys.(i) = dest_y.(i) then new_trip rng i
  in
  Geo.make ~n ~l ~r ~xs ~ys ~reset_node ~move_node

let dynamic ?init ~n ~l ~r ~v_min ~v_max () =
  Geo.dynamic (create ?init ~n ~l ~r ~v_min ~v_max ())
