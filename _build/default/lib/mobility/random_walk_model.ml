type init = Uniform | Corner

let create ?(init = Uniform) ?(hold = 0.) ~n ~m ~r () =
  if m < 2 then invalid_arg "Random_walk_model.create: m must be >= 2";
  if not (hold >= 0. && hold < 1.) then
    invalid_arg "Random_walk_model.create: hold outside [0, 1)";
  let l = float_of_int (m - 1) in
  let xs = Array.make n 0. and ys = Array.make n 0. in
  let reset_node rng i =
    match init with
    | Corner ->
        xs.(i) <- 0.;
        ys.(i) <- 0.
    | Uniform ->
        xs.(i) <- float_of_int (Prng.Rng.int rng m);
        ys.(i) <- float_of_int (Prng.Rng.int rng m)
  in
  let move_node rng i =
    if hold = 0. || not (Prng.Rng.bernoulli rng hold) then begin
      let x = int_of_float xs.(i) and y = int_of_float ys.(i) in
      (* Neighbours inside the grid; corner nodes have 2, edges 3, interior 4. *)
      let candidates = ref [] in
      if x > 0 then candidates := (x - 1, y) :: !candidates;
      if x < m - 1 then candidates := (x + 1, y) :: !candidates;
      if y > 0 then candidates := (x, y - 1) :: !candidates;
      if y < m - 1 then candidates := (x, y + 1) :: !candidates;
      let nx, ny = Prng.Rng.choice rng (Array.of_list !candidates) in
      xs.(i) <- float_of_int nx;
      ys.(i) <- float_of_int ny
    end
  in
  Geo.make ~n ~l ~r ~xs ~ys ~reset_node ~move_node

let dynamic ?init ?hold ~n ~m ~r () = Geo.dynamic (create ?init ?hold ~n ~m ~r ())

let grid_point geo i =
  let x, y = Geo.position geo i in
  (int_of_float x, int_of_float y)
