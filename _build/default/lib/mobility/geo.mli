(** Shared chassis for geometric mobility models: owns the step/edge
    bookkeeping (per-snapshot edge caching, per-node substreams) while
    the concrete model supplies only "how a node initialises" and "how
    a node moves". Two nodes are connected whenever their Euclidean
    distance is at most the transmission radius — the standard
    connection map of Section 4.1. *)

type t

val make :
  n:int ->
  l:float ->
  r:float ->
  xs:float array ->
  ys:float array ->
  reset_node:(Prng.Rng.t -> int -> unit) ->
  move_node:(Prng.Rng.t -> int -> unit) ->
  t
(** The model owns [xs]/[ys] (positions in [\[0, l\]²]) and mutates them
    through [reset_node] / [move_node]; the chassis calls [reset_node]
    once per node on reset and [move_node] once per node per step, each
    time passing that node's private substream. *)

val n : t -> int
val l : t -> float
val r : t -> float
val position : t -> int -> float * float
val positions : t -> (float * float) array
val reset : t -> Prng.Rng.t -> unit
val step : t -> unit

val dynamic : t -> Core.Dynamic.t
(** View as a dynamic graph. The view shares state with [t]: resetting
    or stepping one affects the other. *)
