lib/mobility/random_walk_model.ml: Array Geo Prng
