lib/mobility/manhattan.ml: Array Float Geo Prng
