lib/mobility/density.ml: Array Buffer Float Geo Space Stats String
