lib/mobility/mixing.mli: Geo Prng
