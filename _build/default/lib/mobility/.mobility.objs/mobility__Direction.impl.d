lib/mobility/direction.ml: Array Float Geo Prng
