lib/mobility/random_walk_model.mli: Core Geo
