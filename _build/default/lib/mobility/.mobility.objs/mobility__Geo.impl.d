lib/mobility/geo.ml: Array Core List Prng Space
