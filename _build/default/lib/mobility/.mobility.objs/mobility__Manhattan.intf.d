lib/mobility/manhattan.mli: Core Geo
