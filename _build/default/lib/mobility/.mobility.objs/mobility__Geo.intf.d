lib/mobility/geo.mli: Core Prng
