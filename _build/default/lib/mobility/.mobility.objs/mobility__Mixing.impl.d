lib/mobility/mixing.ml: Array Density Geo List Option Prng Space Stats
