lib/mobility/space.mli:
