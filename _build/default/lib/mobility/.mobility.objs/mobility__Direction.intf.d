lib/mobility/direction.mli: Core Geo
