lib/mobility/waypoint.ml: Array Float Geo Hashtbl Prng Space
