lib/mobility/discrete_waypoint.mli: Core Markov Node_meg
