lib/mobility/waypoint.mli: Core Geo
