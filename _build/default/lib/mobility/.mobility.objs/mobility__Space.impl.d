lib/mobility/space.ml: Array Float Hashtbl List Option
