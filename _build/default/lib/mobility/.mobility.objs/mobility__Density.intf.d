lib/mobility/density.mli: Geo Prng
