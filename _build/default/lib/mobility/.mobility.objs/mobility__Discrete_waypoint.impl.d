lib/mobility/discrete_waypoint.ml: Array Float Markov Node_meg
