(** The random walk mobility model (paper, Section 1): n nodes on an
    m×m grid; at every step each node moves to a uniformly random grid
    point adjacent to its current one (optionally holding in place with
    probability [hold], which removes parity effects); nodes within
    Euclidean distance r (in grid units) are connected. *)

type init =
  | Uniform   (** positions uniform over grid points *)
  | Corner    (** all nodes at grid point (0, 0) *)

val create :
  ?init:init -> ?hold:float -> n:int -> m:int -> r:float -> unit -> Geo.t
(** [m] is the grid side (m×m points at integer coordinates
    [0 .. m-1]); the region side is [l = m - 1]. [hold] defaults to 0
    (the paper's pure adjacent move). *)

val dynamic :
  ?init:init -> ?hold:float -> n:int -> m:int -> r:float -> unit -> Core.Dynamic.t

val grid_point : Geo.t -> int -> int * int
(** Current integer grid coordinates of a node (positions of this model
    are always integral). *)
