(** Geometry of the mobility region: an L×L square with a uniform-cell
    spatial index for enumerating all node pairs within the
    transmission radius in expected O(n + #pairs) time. *)

val clamp : float -> float -> float
(** [clamp l x] clips [x] into [\[0, l\]]. *)

val dist2 : float -> float -> float -> float -> float
(** Squared Euclidean distance between (x1, y1) and (x2, y2). *)

val iter_close_pairs :
  l:float -> r:float -> xs:float array -> ys:float array -> (int -> int -> unit) -> unit
(** Call [f i j] (with [i < j]) for every pair of points at Euclidean
    distance at most [r]. Positions must lie in [\[0, l\]²]. Correct for
    any [r >= 0] (cells are at least [r] wide, neighbours ±1 cell are
    scanned, and the exact distance test filters candidates). *)

val cell_index : l:float -> bins:int -> float -> float -> int
(** Index of the [bins]×[bins] coarse cell containing a point; used for
    occupancy histograms. Row-major, in [\[0, bins²)]. *)
