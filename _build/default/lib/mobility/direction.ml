type init = Uniform | Corner

let create ?(init = Uniform) ~n ~l ~r ~v ~turn_every () =
  if v <= 0. then invalid_arg "Direction.create: speed must be positive";
  if turn_every < 1. then invalid_arg "Direction.create: turn_every must be >= 1";
  let xs = Array.make n 0. and ys = Array.make n 0. in
  let angle = Array.make n 0. in
  let new_heading rng i = angle.(i) <- Prng.Rng.float rng (2. *. Float.pi) in
  let reset_node rng i =
    (match init with
    | Corner ->
        xs.(i) <- 0.;
        ys.(i) <- 0.
    | Uniform ->
        xs.(i) <- Prng.Rng.float rng l;
        ys.(i) <- Prng.Rng.float rng l);
    new_heading rng i
  in
  (* Reflect a coordinate into [0, l], flipping the matching velocity
     component; at most a few bounces per step since v << l. *)
  let rec reflect x = if x < 0. then reflect (-.x) else if x > l then reflect ((2. *. l) -. x) else x in
  let move_node rng i =
    if Prng.Rng.bernoulli rng (1. /. turn_every) then new_heading rng i;
    let nx = xs.(i) +. (v *. cos angle.(i)) in
    let ny = ys.(i) +. (v *. sin angle.(i)) in
    (* A reflected x means the horizontal velocity flipped sign. *)
    if nx < 0. || nx > l then angle.(i) <- Float.pi -. angle.(i);
    if ny < 0. || ny > l then angle.(i) <- -.angle.(i);
    xs.(i) <- reflect nx;
    ys.(i) <- reflect ny
  in
  Geo.make ~n ~l ~r ~xs ~ys ~reset_node ~move_node

let dynamic ?init ~n ~l ~r ~v ~turn_every () =
  Geo.dynamic (create ?init ~n ~l ~r ~v ~turn_every ())
