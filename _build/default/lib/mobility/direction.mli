(** The random direction model: each node travels at constant speed
    along a uniformly random heading, reflecting off the square's
    borders, and redraws its heading with probability [1/turn_every]
    per step (geometric leg durations). Unlike the waypoint model its
    stationary positional distribution is (near-)uniform, which makes
    it the "uniform positional density" control for the Corollary 4
    experiments. *)

type init = Uniform | Corner

val create :
  ?init:init ->
  n:int -> l:float -> r:float -> v:float -> turn_every:float -> unit -> Geo.t
(** [turn_every] is the mean leg duration in steps (must be >= 1). *)

val dynamic :
  ?init:init ->
  n:int -> l:float -> r:float -> v:float -> turn_every:float -> unit -> Core.Dynamic.t
