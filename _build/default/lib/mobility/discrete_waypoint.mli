(** The paper's §4.1 construction, literally: the random waypoint
    discretised into an explicit finite node-MEG.

    "The generic state of the Markov chain M must encode the
    destination point, the current point in the straight point-path the
    node lies, and the node speed."

    Here the mobility space is an m×m grid of points; a state is a pair
    (current point, destination point); speed is one grid hop per step
    (the paper allows any constant; footnote 3 says resolution does not
    affect the bounds). Motion: while current ≠ destination, the node
    makes the deterministic king-move (one step in x and/or y) toward
    the destination — the discrete straight line; on arrival it picks a
    fresh uniform destination.

    Because the state space is finite (m⁴ states) everything the
    theory needs is computed *exactly*: the stationary distribution,
    the positional density, q(x), P_NM, P_NM2 and η — this is the
    model on which Theorem 3's premises can be verified with no
    sampling error at all, and its exact positional distribution
    cross-validates the continuous Palm density. Practical for
    m ≤ ~10 (10⁴ states). *)

type t

val build : m:int -> r:float -> t
(** [build ~m ~r] constructs the chain and connection structure for an
    m×m grid with transmission radius [r] (Euclidean, in grid units).
    Requires [2 <= m <= 10]: the state count is m⁴ and the exact
    computations are quadratic in it ({!dynamic} additionally
    materialises an m⁴ × m⁴ connection table). *)

val m : t -> int
val n_states : t -> int

val chain : t -> Markov.Chain.t
(** The hidden node chain M. *)

val connect : t -> int -> int -> bool
(** The connection map C over states: within distance [r]. *)

val state_position : t -> int -> int * int
(** Grid coordinates of the current point of a state. *)

val stationary_position_distribution : t -> float array
(** Exact stationary probability of occupying each grid point
    (length m²; row-major (x * m + y)). *)

val p_nm : t -> float
(** Exact P_NM (via {!Node_meg.Model.p_nm}). *)

val eta : t -> float
(** Exact η = P_NM2 / P_NM². *)

val corollary4_eta_bound : t -> float
(** The η Corollary 4 would infer from the exact positional
    distribution's uniformity constants: δ⁶/λ², computed with δ and λ
    extracted exactly from {!stationary_position_distribution}. The
    comparison of this with {!eta} measures how much Corollary 4's
    route loses over the direct Theorem 3 computation. *)

val dynamic : ?init:Node_meg.Model.init -> n:int -> t -> Core.Dynamic.t
(** The resulting dynamic graph on [n] nodes. *)
