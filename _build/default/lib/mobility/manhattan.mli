(** The Manhattan-waypoint variant analysed in [13] ("Flooding over
    Manhattan"): like the random waypoint, but a node travels to its
    destination along an axis-aligned L¹ path — first horizontally,
    then vertically. The paper cites this model as the one previous
    waypoint-style analysis; it serves as a trajectory-shape ablation
    against {!Waypoint}. *)

type init = Uniform | Corner

val create :
  ?init:init -> n:int -> l:float -> r:float -> v_min:float -> v_max:float -> unit -> Geo.t

val dynamic :
  ?init:init -> n:int -> l:float -> r:float -> v_min:float -> v_max:float -> unit ->
  Core.Dynamic.t
