(** Estimation of the stationary positional distribution of a mobility
    model, and extraction of the uniformity constants δ and λ consumed
    by Corollary 4.

    The corollary needs: (a) F(u) ≤ δ / vol(R) everywhere, and (b) a
    region B with vol(B_r) ≥ λ vol(R) on which F(u) ≥ 1/(δ vol(R)).
    From an occupancy histogram we report the smallest δ satisfying
    both and the corresponding λ. *)

type profile = {
  bins : int;             (** grid is bins×bins cells *)
  occupancy : float array;(** probability mass per cell, row-major *)
  density : float array;  (** per-cell density, mass / cell-area *)
  l : float;
}

val estimate :
  geo:Geo.t ->
  rng:Prng.Rng.t ->
  ?bins:int ->
  ?burn_in:int ->
  ?samples:int ->
  ?gap:int ->
  unit ->
  profile
(** Reset the model, burn in (default [20 * l] steps, enough trips to
    forget the start), then record all node positions every [gap]
    steps (default 7, coprime with typical trip lengths) for [samples]
    snapshots (default 500). [bins] defaults to 16. *)

val of_function : l:float -> bins:int -> (float -> float -> float) -> profile
(** Discretise an analytic density (e.g. {!Waypoint.product_density})
    onto the same grid, by midpoint evaluation, renormalised. *)

type uniformity = {
  delta : float;  (** sup-density ratio: max(F) · vol(R) *)
  lambda : float; (** fraction of cells with F ≥ 1/(δ vol(R)) *)
  center_to_corner : float;
      (** density at the central cell / density at the first in-region
          cell in row-major order (the square's corner, a disk's
          boundary); > 1 exhibits the waypoint center bias. *)
}

val uniformity : ?mask:(float -> float -> bool) -> profile -> uniformity
(** [mask] restricts the analysed region: cells whose centre it rejects
    contribute neither to vol(R) nor to the extrema (defaults to the
    whole square). Pass [Waypoint.region_contains Disk ~l] to analyse a
    disk profile — without the mask the zero-density cells outside the
    disk would drive λ down artificially. *)

val render : ?shades:string -> profile -> string
(** ASCII heatmap of the occupancy (row 0 at the top = high y),
    one character per cell scaled to the maximum cell mass. *)

val tv_between : profile -> profile -> float
(** Total-variation distance between the cell-occupancy distributions
    (profiles must share [bins]). *)
