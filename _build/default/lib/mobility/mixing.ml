type curve = {
  checkpoints : (int * float) list;
  t_mix : int option;
  slack : float;
}

let measure ~make ~rng ?(bins = 8) ?(replicas = 2000) ?(eps = 0.25) ~checkpoints () =
  let reference_geo = make () in
  let reference =
    (Density.estimate ~geo:reference_geo ~rng:(Prng.Rng.split rng) ~bins ()).Density.occupancy
  in
  let sorted = List.sort_uniq compare checkpoints in
  (* Advance each replica once through all checkpoints rather than
     restarting per checkpoint: O(replicas * max_t) total. *)
  let geos = Array.init replicas (fun i ->
      let g = make () in
      Geo.reset g (Prng.Rng.substream rng i);
      g)
  in
  let n_cells = bins * bins in
  let slack = 0.5 *. sqrt (float_of_int n_cells /. float_of_int replicas) in
  let now = ref 0 in
  let curve =
    List.map
      (fun t ->
        while !now < t do
          Array.iter Geo.step geos;
          incr now
        done;
        let counts = Array.make n_cells 0. in
        Array.iter
          (fun g ->
            for i = 0 to Geo.n g - 1 do
              let x, y = Geo.position g i in
              let c = Space.cell_index ~l:(Geo.l g) ~bins x y in
              counts.(c) <- counts.(c) +. 1.
            done)
          geos;
        let total = Array.fold_left ( +. ) 0. counts in
        let dist = Array.map (fun c -> c /. total) counts in
        (t, Stats.Distance.total_variation dist reference))
      sorted
  in
  let t_mix = List.find_opt (fun (_, tv) -> tv <= eps +. slack) curve |> Option.map fst in
  { checkpoints = curve; t_mix; slack }
