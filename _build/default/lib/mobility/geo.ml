type t = {
  n : int;
  l : float;
  r : float;
  xs : float array;
  ys : float array;
  reset_node : Prng.Rng.t -> int -> unit;
  move_node : Prng.Rng.t -> int -> unit;
  mutable node_rngs : Prng.Rng.t array;
  mutable edges : (int * int) list;
  mutable edges_valid : bool;
}

let make ~n ~l ~r ~xs ~ys ~reset_node ~move_node =
  if n < 1 then invalid_arg "Geo.make: n must be >= 1";
  if Array.length xs <> n || Array.length ys <> n then
    invalid_arg "Geo.make: position array length mismatch";
  if l <= 0. || r < 0. then invalid_arg "Geo.make: bad dimensions";
  {
    n;
    l;
    r;
    xs;
    ys;
    reset_node;
    move_node;
    node_rngs = Array.init n (fun i -> Prng.Rng.of_seed i);
    edges = [];
    edges_valid = false;
  }

let n t = t.n

let l t = t.l

let r t = t.r

let position t i = (t.xs.(i), t.ys.(i))

let positions t = Array.init t.n (fun i -> (t.xs.(i), t.ys.(i)))

let reset t rng =
  t.node_rngs <- Array.init t.n (fun i -> Prng.Rng.substream rng i);
  for i = 0 to t.n - 1 do
    t.reset_node t.node_rngs.(i) i
  done;
  t.edges_valid <- false

let step t =
  for i = 0 to t.n - 1 do
    t.move_node t.node_rngs.(i) i
  done;
  t.edges_valid <- false

let current_edges t =
  if not t.edges_valid then begin
    let acc = ref [] in
    Space.iter_close_pairs ~l:t.l ~r:t.r ~xs:t.xs ~ys:t.ys (fun i j -> acc := (i, j) :: !acc);
    t.edges <- !acc;
    t.edges_valid <- true
  end;
  t.edges

let dynamic t =
  Core.Dynamic.make ~n:t.n
    ~reset:(fun rng -> reset t rng)
    ~step:(fun () -> step t)
    ~iter_edges:(fun f -> List.iter (fun (u, v) -> f u v) (current_edges t))
