type profile = {
  bins : int;
  occupancy : float array;
  density : float array;
  l : float;
}

let profile_of_mass ~l ~bins mass =
  let total = Array.fold_left ( +. ) 0. mass in
  if not (total > 0.) then invalid_arg "Density: zero total mass";
  let occupancy = Array.map (fun m -> m /. total) mass in
  let cell_area = (l /. float_of_int bins) ** 2. in
  let density = Array.map (fun p -> p /. cell_area) occupancy in
  { bins; occupancy; density; l }

let estimate ~geo ~rng ?(bins = 16) ?burn_in ?(samples = 500) ?(gap = 7) () =
  let l = Geo.l geo in
  let burn_in =
    match burn_in with Some b -> b | None -> int_of_float (20. *. l) + 1
  in
  Geo.reset geo rng;
  for _ = 1 to burn_in do
    Geo.step geo
  done;
  let mass = Array.make (bins * bins) 0. in
  for s = 0 to samples - 1 do
    for i = 0 to Geo.n geo - 1 do
      let x, y = Geo.position geo i in
      let c = Space.cell_index ~l ~bins x y in
      mass.(c) <- mass.(c) +. 1.
    done;
    if s < samples - 1 then
      for _ = 1 to gap do
        Geo.step geo
      done
  done;
  profile_of_mass ~l ~bins mass

let of_function ~l ~bins f =
  let cell = l /. float_of_int bins in
  let mass = Array.make (bins * bins) 0. in
  for ix = 0 to bins - 1 do
    for iy = 0 to bins - 1 do
      let x = (float_of_int ix +. 0.5) *. cell in
      let y = (float_of_int iy +. 0.5) *. cell in
      mass.((ix * bins) + iy) <- Float.max 0. (f x y)
    done
  done;
  profile_of_mass ~l ~bins mass

type uniformity = { delta : float; lambda : float; center_to_corner : float }

let cell_center p ix iy =
  let cell = p.l /. float_of_int p.bins in
  ((float_of_int ix +. 0.5) *. cell, (float_of_int iy +. 0.5) *. cell)

let uniformity ?(mask = fun _ _ -> true) p =
  let cell_area = (p.l /. float_of_int p.bins) ** 2. in
  let in_region = Array.make (p.bins * p.bins) false in
  let masked_cells = ref 0 in
  for ix = 0 to p.bins - 1 do
    for iy = 0 to p.bins - 1 do
      let x, y = cell_center p ix iy in
      if mask x y then begin
        in_region.((ix * p.bins) + iy) <- true;
        incr masked_cells
      end
    done
  done;
  if !masked_cells = 0 then invalid_arg "Density.uniformity: mask rejects every cell";
  let vol = float_of_int !masked_cells *. cell_area in
  let max_density = ref 0. in
  Array.iteri (fun i d -> if in_region.(i) && d > !max_density then max_density := d) p.density;
  let delta = !max_density *. vol in
  let threshold = 1. /. (delta *. vol) in
  let good = ref 0 in
  Array.iteri (fun i d -> if in_region.(i) && d >= threshold then incr good) p.density;
  let lambda = float_of_int !good /. float_of_int !masked_cells in
  let mid = p.bins / 2 in
  let center = p.density.((mid * p.bins) + mid) in
  let first_masked =
    let rec find i = if in_region.(i) then i else find (i + 1) in
    find 0
  in
  let corner = p.density.(first_masked) in
  let center_to_corner = if corner > 0. then center /. corner else infinity in
  { delta; lambda; center_to_corner }

let render ?(shades = " .:-=+*#%@") p =
  let n_shades = String.length shades in
  let max_mass = Array.fold_left Float.max 0. p.occupancy in
  let buf = Buffer.create (p.bins * (p.bins + 1)) in
  for iy = p.bins - 1 downto 0 do
    for ix = 0 to p.bins - 1 do
      let mass = p.occupancy.((ix * p.bins) + iy) in
      let level =
        if max_mass <= 0. then 0
        else min (n_shades - 1) (int_of_float (mass /. max_mass *. float_of_int (n_shades - 1)))
      in
      Buffer.add_char buf shades.[level]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let tv_between a b =
  if a.bins <> b.bins then invalid_arg "Density.tv_between: bin mismatch";
  Stats.Distance.total_variation a.occupancy b.occupancy
