(** A four-state per-edge contact model in the spirit of Becchetti et
    al. [5] ("a more refined model with four states", as the paper's
    appendix describes it) and of the measured inter-contact statistics
    of Karagiannis et al. [19]: contact (on) and inter-contact (off)
    durations are each hyperexponential — a mixture of a short and a
    long geometric phase — which is the standard phase-type
    approximation of the heavy-tailed inter-contact times observed in
    real opportunistic networks.

    States: 0 = short off, 1 = long off, 2 = short contact,
    3 = long contact; the edge exists in states 2 and 3. All of
    Appendix A's machinery applies: edges are independent, so β = 1 and
    Theorem 1 gives O(T_mix (1/(nα) + 1)² log² n). *)

type params = {
  off_short : float;  (** mean duration of a short inter-contact (>= 1) *)
  off_long : float;   (** mean duration of a long inter-contact (>= 1) *)
  off_mix : float;    (** probability a new inter-contact is short *)
  on_short : float;   (** mean duration of a short contact (>= 1) *)
  on_long : float;    (** mean duration of a long contact (>= 1) *)
  on_mix : float;     (** probability a new contact is short *)
}

val chain : params -> Markov.Chain.t
(** The four-state hidden chain. *)

val chi : int -> bool
(** Edge-existence map: on in states 2 and 3. *)

val make : ?init:[ `Stationary | `State of int ] -> n:int -> params -> Core.Dynamic.t
(** The dynamic graph: every potential edge runs an independent copy of
    {!chain}. *)

val stationary_alpha : params -> float
(** Stationary edge probability: mean contact duration over mean cycle
    duration. *)

val mean_off : params -> float
(** Mean inter-contact duration, [off_mix * off_short + (1 - off_mix) * off_long]. *)

val mean_on : params -> float
(** Mean contact duration. *)
