type params = {
  off_short : float;
  off_long : float;
  off_mix : float;
  on_short : float;
  on_long : float;
  on_mix : float;
}

let validate p =
  let mean_ok m = m >= 1. in
  let prob_ok x = x >= 0. && x <= 1. in
  if
    not
      (mean_ok p.off_short && mean_ok p.off_long && mean_ok p.on_short && mean_ok p.on_long
      && prob_ok p.off_mix && prob_ok p.on_mix)
  then invalid_arg "Opportunistic: means must be >= 1 and mixes in [0, 1]"

let mean_off p = (p.off_mix *. p.off_short) +. ((1. -. p.off_mix) *. p.off_long)

let mean_on p = (p.on_mix *. p.on_short) +. ((1. -. p.on_mix) *. p.on_long)

(* A phase with mean duration m ends each step with probability 1/m.
   On ending, an off phase enters a contact phase (short with
   probability on_mix), and vice versa. *)
let chain p =
  validate p;
  let leave m = 1. /. m in
  let transition ~state ~mean ~mix_next ~short_next ~long_next =
    let e = leave mean in
    Array.of_list
      (List.filter
         (fun (_, w) -> w > 0.)
         [
           (state, 1. -. e);
           (short_next, e *. mix_next);
           (long_next, e *. (1. -. mix_next));
         ])
  in
  Markov.Chain.of_rows
    [|
      transition ~state:0 ~mean:p.off_short ~mix_next:p.on_mix ~short_next:2 ~long_next:3;
      transition ~state:1 ~mean:p.off_long ~mix_next:p.on_mix ~short_next:2 ~long_next:3;
      transition ~state:2 ~mean:p.on_short ~mix_next:p.off_mix ~short_next:0 ~long_next:1;
      transition ~state:3 ~mean:p.on_long ~mix_next:p.off_mix ~short_next:0 ~long_next:1;
    |]

let chi s = s >= 2

let stationary_alpha p =
  validate p;
  mean_on p /. (mean_on p +. mean_off p)

let make ?init ~n p = General.make ?init ~n ~chain:(chain p) ~chi ()
