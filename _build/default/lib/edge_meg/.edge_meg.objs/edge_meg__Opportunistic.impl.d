lib/edge_meg/opportunistic.ml: Array General List Markov
