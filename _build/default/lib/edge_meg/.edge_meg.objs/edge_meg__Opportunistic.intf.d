lib/edge_meg/opportunistic.mli: Core Markov
