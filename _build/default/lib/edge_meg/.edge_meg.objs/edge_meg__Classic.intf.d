lib/edge_meg/classic.mli: Core Markov
