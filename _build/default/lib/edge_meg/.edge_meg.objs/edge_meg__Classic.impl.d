lib/edge_meg/classic.ml: Core Graph Hashtbl List Markov Prng
