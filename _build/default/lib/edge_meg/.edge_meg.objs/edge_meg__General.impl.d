lib/edge_meg/general.ml: Array Core Graph Lazy Markov Prng
