lib/edge_meg/general.mli: Core Markov
