(** Two-sample comparisons for simulation outputs (flooding-time
    samples under different protocols or models). Welch's unequal-
    variance t-test with a normal-approximation threshold — adequate at
    the trial counts used here (n >= 10), and the experiments only ever
    consume the coarse verdict. *)

type verdict =
  | Indistinguishable  (** no evidence of a difference at the level *)
  | A_smaller          (** sample a has the smaller mean *)
  | B_smaller

type result = {
  t_statistic : float;
  dof : float;          (** Welch–Satterthwaite degrees of freedom *)
  mean_difference : float;  (** mean(a) - mean(b) *)
  verdict : verdict;
}

val welch : ?threshold:float -> float array -> float array -> result
(** [welch a b] compares the two samples' means. [threshold] is the
    |t| above which the difference counts as real (default 2.0,
    roughly a 5% two-sided level for the dof at play). Requires both
    samples to have >= 2 elements. Degenerate zero-variance samples
    compare by exact equality of means. *)

val equivalent : ?threshold:float -> float array -> float array -> bool
(** [equivalent a b] is [welch a b = Indistinguishable]. *)
