type t = {
  lo : float;
  hi : float;
  n_bins : int;
  weights : float array;
  mutable n_obs : int;
  mutable total : float;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  { lo; hi; n_bins = bins; weights = Array.make bins 0.; n_obs = 0; total = 0. }

let bin_of t x =
  let w = (t.hi -. t.lo) /. float_of_int t.n_bins in
  let i = int_of_float (floor ((x -. t.lo) /. w)) in
  if i < 0 then 0 else if i >= t.n_bins then t.n_bins - 1 else i

let add_weighted t x w =
  let i = bin_of t x in
  t.weights.(i) <- t.weights.(i) +. w;
  t.n_obs <- t.n_obs + 1;
  t.total <- t.total +. w

let add t x = add_weighted t x 1.

let count t = t.n_obs

let total_weight t = t.total

let bins t = t.n_bins

let bin_center t i =
  let w = (t.hi -. t.lo) /. float_of_int t.n_bins in
  t.lo +. ((float_of_int i +. 0.5) *. w)

let weight t i = t.weights.(i)

let probability t =
  if t.total <= 0. then Array.make t.n_bins 0.
  else Array.map (fun w -> w /. t.total) t.weights

let density t =
  let bin_width = (t.hi -. t.lo) /. float_of_int t.n_bins in
  Array.map (fun p -> p /. bin_width) (probability t)

let render ?(width = 50) t =
  let p = probability t in
  let pmax = Array.fold_left Float.max 0. p in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i pi ->
      let bar_len =
        if pmax <= 0. then 0
        else int_of_float (Float.round (pi /. pmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%10.4g | %s %.4f\n" (bin_center t i) (String.make bar_len '#') pi))
    p;
  Buffer.contents buf
