type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;   (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_many t xs = Array.iter (add t) xs

let of_array xs =
  let t = create () in
  add_many t xs;
  t

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int (a.n + b.n) in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. fn) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn) in
    { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = if t.n = 0 then nan else t.min

let max t = if t.n = 0 then nan else t.max

let std_error t = if t.n < 2 then nan else stddev t /. sqrt (float_of_int t.n)

let ci95_half_width t = 1.96 *. std_error t

let to_string t =
  Printf.sprintf "mean=%.4g sd=%.4g min=%.4g max=%.4g n=%d"
    (mean t) (stddev t) (min t) (max t) t.n
