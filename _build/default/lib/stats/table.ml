type cell = Int of int | Float of float | Fixed of float * int | Text of string | Missing

type t = {
  title : string;
  columns : string list;
  mutable rev_rows : cell list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let title t = t.title

let columns t = t.columns

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.columns) (List.length row));
  t.rev_rows <- row :: t.rev_rows

let rows t = List.rev t.rev_rows

let n_rows t = List.length t.rev_rows

let cell_to_string = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_nan f then "nan"
      else if Float.is_integer f && abs_float f < 1e9 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.4g" f
  | Fixed (f, digits) -> Printf.sprintf "%.*f" digits f
  | Text s -> s
  | Missing -> "-"

let is_numeric = function Int _ | Float _ | Fixed _ -> true | Text _ | Missing -> false

let render t =
  let header = t.columns in
  let body = List.map (List.map cell_to_string) (rows t) in
  let n_cols = List.length header in
  let widths = Array.make n_cols 0 in
  let note_row cells =
    List.iteri (fun i s -> if String.length s > widths.(i) then widths.(i) <- String.length s) cells
  in
  note_row header;
  List.iter note_row body;
  (* Right-align a column if every cell in it is numeric. *)
  let numeric_col = Array.make n_cols true in
  List.iter
    (fun row -> List.iteri (fun i c -> if not (is_numeric c) then numeric_col.(i) <- false) row)
    (rows t);
  let pad i s =
    let w = widths.(i) in
    if numeric_col.(i) then Printf.sprintf "%*s" w s else Printf.sprintf "%-*s" w s
  in
  let line cells = "  " ^ String.concat "  " (List.mapi pad cells) in
  let rule =
    "  " ^ String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) body;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns) ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (fun c -> csv_escape (cell_to_string c)) row) ^ "\n"))
    (rows t);
  Buffer.contents buf

let column_floats t name =
  let idx =
    match List.find_index (String.equal name) t.columns with
    | Some i -> i
    | None -> raise Not_found
  in
  rows t
  |> List.filter_map (fun row ->
         match List.nth row idx with
         | Int i -> Some (float_of_int i)
         | Float f | Fixed (f, _) -> Some f
         | Text _ | Missing -> None)
  |> Array.of_list
