type verdict = Indistinguishable | A_smaller | B_smaller

type result = {
  t_statistic : float;
  dof : float;
  mean_difference : float;
  verdict : verdict;
}

let welch ?(threshold = 2.0) a b =
  if Array.length a < 2 || Array.length b < 2 then
    invalid_arg "Compare.welch: need >= 2 observations per sample";
  let sa = Summary.of_array a and sb = Summary.of_array b in
  let na = float_of_int (Summary.count sa) and nb = float_of_int (Summary.count sb) in
  let va = Summary.variance sa /. na and vb = Summary.variance sb /. nb in
  let diff = Summary.mean sa -. Summary.mean sb in
  if va +. vb <= 0. then
    (* Both samples constant: compare means exactly. *)
    {
      t_statistic = (if diff = 0. then 0. else infinity);
      dof = na +. nb -. 2.;
      mean_difference = diff;
      verdict =
        (if diff = 0. then Indistinguishable else if diff < 0. then A_smaller else B_smaller);
    }
  else begin
    let t = diff /. sqrt (va +. vb) in
    let dof =
      ((va +. vb) ** 2.)
      /. ((va ** 2. /. (na -. 1.)) +. (vb ** 2. /. (nb -. 1.)))
    in
    let verdict =
      if abs_float t <= threshold then Indistinguishable
      else if t < 0. then A_smaller
      else B_smaller
    in
    { t_statistic = t; dof; mean_difference = diff; verdict }
  end

let equivalent ?threshold a b = (welch ?threshold a b).verdict = Indistinguishable
