(** Streaming descriptive statistics (Welford's online algorithm).

    Numerically stable single-pass mean / variance, plus min / max and
    count. Summaries can be merged, so per-trial statistics computed in
    any order combine deterministically. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh empty accumulator. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_many : t -> float array -> unit
(** Record a batch of observations. *)

val of_array : float array -> t
(** Accumulator over a whole array. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen all of
    [a]'s and [b]'s observations (Chan's parallel combination). *)

val count : t -> int
val mean : t -> float
(** Mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val std_error : t -> float
(** Standard error of the mean. *)

val ci95_half_width : t -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * std_error]). *)

val to_string : t -> string
(** One-line rendering ["mean=... sd=... min=... max=... n=..."]. *)
