(** Fixed-bin histograms over a closed interval.

    Used both for positional-distribution estimation of mobility models
    (occupancy over space) and for visualising flooding-time spreads. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi\]] with [bins] equal cells.
    Requires [lo < hi] and [bins >= 1]. *)

val add : t -> float -> unit
(** Record an observation. Values outside [\[lo, hi\]] are clamped into
    the first / last bin. *)

val add_weighted : t -> float -> float -> unit
(** [add_weighted t x w] records [x] with weight [w]. *)

val count : t -> int
(** Number of [add] calls (weighted adds count once). *)

val total_weight : t -> float
val bins : t -> int
val bin_of : t -> float -> int
(** Index of the bin an observation falls into (after clamping). *)

val bin_center : t -> int -> float
val weight : t -> int -> float
(** Raw accumulated weight of a bin. *)

val density : t -> float array
(** Normalised probability density: weights divided by
    [total_weight * bin_width], so it integrates to 1. *)

val probability : t -> float array
(** Normalised probability mass per bin (sums to 1). *)

val render : ?width:int -> t -> string
(** Crude ASCII bar rendering for logs and examples. *)
