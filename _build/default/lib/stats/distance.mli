(** Distances between probability distributions on finite supports. *)

val total_variation : float array -> float array -> float
(** [total_variation p q] is [1/2 * sum_i |p_i - q_i|]. The arrays must
    have equal length; they are used as given (no re-normalisation). *)

val kolmogorov : float array -> float array -> float
(** Maximum absolute difference between the two CDFs. *)

val l2 : float array -> float array -> float
(** Euclidean distance. *)

val chi_square : float array -> float array -> float
(** [chi_square p q] is [sum_i (p_i - q_i)^2 / q_i] over bins with
    [q_i > 0]. *)

val normalize : float array -> float array
(** Scale a non-negative array to sum to 1. Raises on zero total. *)
