lib/stats/distance.mli:
