lib/stats/distance.ml: Array Printf
