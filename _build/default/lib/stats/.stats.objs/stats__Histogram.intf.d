lib/stats/histogram.mli:
