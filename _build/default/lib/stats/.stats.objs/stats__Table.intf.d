lib/stats/table.mli:
