lib/stats/compare.ml: Array Summary
