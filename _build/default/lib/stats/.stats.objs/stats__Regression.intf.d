lib/stats/regression.mli:
