lib/stats/quantile.mli:
