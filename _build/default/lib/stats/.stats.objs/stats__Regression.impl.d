lib/stats/regression.ml: Array List
