lib/stats/compare.mli:
