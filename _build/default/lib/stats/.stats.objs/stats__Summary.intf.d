lib/stats/summary.mli:
