(** ASCII tables: the output format of every experiment and benchmark.

    A table is a titled grid of typed cells. Rendering right-aligns
    numbers, left-aligns text, and sizes columns to content, so the
    benchmark harness can print paper-style result tables to stdout. *)

type cell =
  | Int of int
  | Float of float          (** rendered with 4 significant digits *)
  | Fixed of float * int    (** [Fixed (v, digits)]: fixed-point rendering *)
  | Text of string
  | Missing

type t

val create : title:string -> columns:string list -> t
(** A table with the given column headers and no rows. *)

val title : t -> string
val columns : t -> string list
val add_row : t -> cell list -> unit
(** Append a row. Raises [Invalid_argument] if the arity differs from the
    number of columns. *)

val rows : t -> cell list list
(** Rows in insertion order. *)

val n_rows : t -> int

val cell_to_string : cell -> string

val render : t -> string
(** Render with a title line, a header, a rule and the rows. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows), for offline plotting. *)

val column_floats : t -> string -> float array
(** Numeric values of a named column ([Int], [Float], [Fixed] cells);
    other cells are skipped. Raises [Not_found] on an unknown column. *)
