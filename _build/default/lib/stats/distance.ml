let check_lengths p q name =
  if Array.length p <> Array.length q then
    invalid_arg (Printf.sprintf "Distance.%s: length mismatch" name)

let total_variation p q =
  check_lengths p q "total_variation";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  0.5 *. !acc

let kolmogorov p q =
  check_lengths p q "kolmogorov";
  let acc_p = ref 0. and acc_q = ref 0. and best = ref 0. in
  Array.iteri
    (fun i pi ->
      acc_p := !acc_p +. pi;
      acc_q := !acc_q +. q.(i);
      let d = abs_float (!acc_p -. !acc_q) in
      if d > !best then best := d)
    p;
  !best

let l2 p q =
  check_lengths p q "l2";
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      let d = pi -. q.(i) in
      acc := !acc +. (d *. d))
    p;
  sqrt !acc

let chi_square p q =
  check_lengths p q "chi_square";
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      if q.(i) > 0. then begin
        let d = pi -. q.(i) in
        acc := !acc +. (d *. d /. q.(i))
      end)
    p;
  !acc

let normalize p =
  let total = Array.fold_left ( +. ) 0. p in
  if not (total > 0.) then invalid_arg "Distance.normalize: zero total";
  Array.map (fun x -> x /. total) p
