let ln n = log (float_of_int n)

let log2n n = ln n ** 2.

let log3n n = ln n ** 3.

let theorem1 ~m ~alpha ~beta ~n =
  let fn = float_of_int n in
  m *. (((1. /. (fn *. alpha)) +. beta) ** 2.) *. log2n n

let theorem3 ~t_mix ~p_nm ~eta ~n =
  let fn = float_of_int n in
  t_mix *. (((1. /. (fn *. p_nm)) +. eta) ** 2.) *. log3n n

let corollary4 ~t_mix ~delta ~lambda ~vol ~r ~d ~n =
  let fn = float_of_int n in
  let term1 = delta ** 2. *. vol /. (lambda *. fn *. (r ** float_of_int d)) in
  let term2 = (delta ** 6.) /. (lambda ** 2.) in
  t_mix *. ((term1 +. term2) ** 2.) *. log3n n

let corollary5 ~t_mix ~n_points ~delta ~n =
  let fn = float_of_int n in
  t_mix *. (((float_of_int n_points /. fn) +. (delta ** 3.)) ** 2.) *. log3n n

let corollary6 ~t_mix ~n_points ~delta ~n =
  let fn = float_of_int n in
  t_mix
  *. (((delta ** 2. *. float_of_int n_points /. fn) +. (delta ** 7.)) ** 2.)
  *. log3n n

let waypoint ~l ~v_max ~r ~n =
  let fn = float_of_int n in
  (l /. v_max) *. ((((l *. l) /. (fn *. r *. r)) +. 1.) ** 2.) *. log3n n

let edge_meg_eq2 ~n ~p =
  let fn = float_of_int n in
  ln n /. log (1. +. (fn *. p))

let edge_meg_general ~n ~p ~q =
  let fn = float_of_int n in
  1. /. (p +. q) *. ((((p +. q) /. (fn *. p)) +. 1.) ** 2.) *. log2n n

let dimitriou_baseline ~meeting_time ~n = meeting_time *. ln n

let lower_bound_diameter d = float_of_int d

let lower_bound_speed ~l ~v = l /. v

let lower_bound_propagation ~l ~r ~v = l /. (r +. v)
