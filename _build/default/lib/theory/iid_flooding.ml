let join_probability ~alpha ~informed =
  if not (alpha >= 0. && alpha <= 1.) then invalid_arg "Iid_flooding: alpha outside [0, 1]";
  if informed < 0 then invalid_arg "Iid_flooding: negative informed count";
  1. -. ((1. -. alpha) ** float_of_int informed)

(* Binomial pmf computed via log-gamma for numeric stability at large n.
   Lanczos approximation (g = 7), valid for the x >= 1 arguments used
   here (factorials). *)
let log_gamma x =
  if x < 0.5 then invalid_arg "Iid_flooding.log_gamma: argument < 0.5";
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
      -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
      1.5056327351493116e-7;
    |]
  in
  let x = x -. 1. in
  let a = ref coefficients.(0) in
  let t = x +. 7.5 in
  for i = 1 to 8 do
    a := !a +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_choose n k =
  log_gamma (float_of_int (n + 1))
  -. log_gamma (float_of_int (k + 1))
  -. log_gamma (float_of_int (n - k + 1))

let binomial_pmf ~trials ~p k =
  if k < 0 || k > trials then 0.
  else if p <= 0. then if k = 0 then 1. else 0.
  else if p >= 1. then if k = trials then 1. else 0.
  else
    exp
      (log_choose trials k
      +. (float_of_int k *. log p)
      +. (float_of_int (trials - k) *. log (1. -. p)))

let step_distribution ~n ~alpha ~informed =
  if informed < 1 || informed > n then invalid_arg "Iid_flooding: informed outside [1, n]";
  let dist = Array.make (n + 1) 0. in
  let join = join_probability ~alpha ~informed in
  let others = n - informed in
  for new_count = 0 to others do
    dist.(informed + new_count) <- binomial_pmf ~trials:others ~p:join new_count
  done;
  dist

let expected_time_from ~n ~alpha ~informed =
  if n < 1 then invalid_arg "Iid_flooding: n must be >= 1";
  if informed < 1 || informed > n then invalid_arg "Iid_flooding: informed outside [1, n]";
  if alpha <= 0. then if informed = n then 0. else infinity
  else begin
    (* E[T_n] = 0; E[T_k] = (1 + sum_{j>k} P(k -> j) E[T_j]) / (1 - P(k -> k)),
       computed backwards. *)
    let expect = Array.make (n + 1) 0. in
    for k = n - 1 downto 1 do
      let dist = step_distribution ~n ~alpha ~informed:k in
      let forward = ref 0. in
      for j = k + 1 to n do
        forward := !forward +. (dist.(j) *. expect.(j))
      done;
      let stay = dist.(k) in
      expect.(k) <- (1. +. !forward) /. Float.max 1e-300 (1. -. stay)
    done;
    expect.(informed)
  end

let expected_time ~n ~alpha = expected_time_from ~n ~alpha ~informed:1
