lib/theory/iid_flooding.ml: Array Float
