lib/theory/iid_flooding.mli:
