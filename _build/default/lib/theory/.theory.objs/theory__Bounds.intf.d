lib/theory/bounds.mli:
