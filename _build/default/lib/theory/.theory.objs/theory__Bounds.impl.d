lib/theory/bounds.ml:
