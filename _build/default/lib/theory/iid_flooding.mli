(** Exact flooding-time analysis for the one edge-MEG instance that
    admits it: p + q = 1, where every snapshot is an independent
    G(n, α) with α = p.

    With i.i.d. snapshots the informed-set *size* is itself a Markov
    chain: from k informed nodes, each of the n−k others independently
    joins with probability 1 − (1−α)^k, so the increment is binomial.
    Absorbing-chain analysis then yields the exact expected flooding
    time — no sampling, no bounds. The test-suite and E1 use it as a
    zero-error anchor for the simulator: measured means on
    edge-MEG(p, 1−p) must converge to these values. *)

val join_probability : alpha:float -> informed:int -> float
(** Probability that a fixed uninformed node is informed this step:
    1 − (1−α)^k. *)

val step_distribution : n:int -> alpha:float -> informed:int -> float array
(** [step_distribution ~n ~alpha ~informed:k] is the distribution of
    the *next* informed-set size: index j (k <= j <= n) holds
    P(|I_{t+1}| = j); entries below k are 0. Binomial(n−k, join). *)

val expected_time : n:int -> alpha:float -> float
(** Exact expected flooding time from a single source. [infinity] when
    [alpha] = 0 (and n > 1). O(n²). *)

val expected_time_from : n:int -> alpha:float -> informed:int -> float
(** Expected remaining time from [informed] nodes already informed. *)
