(** The paper's flooding-time bounds as closed-form functions.

    All bounds are stated up to a universal constant; the functions
    below return the expression with constant 1, so experiment tables
    report the ratio measured / bound, which Theorem X predicts to be
    bounded by a constant (possibly < 1). Logarithms are natural. *)

val theorem1 : m:float -> alpha:float -> beta:float -> n:int -> float
(** Theorem 1: flooding of an (M, α, β)-stationary dynamic graph is
    O(M (1/(nα) + β)² log² n). *)

val theorem3 : t_mix:float -> p_nm:float -> eta:float -> n:int -> float
(** Theorem 3 (node-MEGs): O(T_mix (1/(n·P_NM) + η)² log³ n). *)

val corollary4 :
  t_mix:float -> delta:float -> lambda:float -> vol:float -> r:float -> d:int -> n:int -> float
(** Corollary 4 (geometric random-trip models):
    O(T_mix (δ²vol(R)/(λ n r^d) + δ⁶/λ²)² log³ n). *)

val corollary5 : t_mix:float -> n_points:int -> delta:float -> n:int -> float
(** Corollary 5 (random-path models): O(T_mix (|V|/n + δ³)² log³ n). *)

val corollary6 : t_mix:float -> n_points:int -> delta:float -> n:int -> float
(** Corollary 6 (random walk on a δ-regular mobility graph):
    O(T_mix (δ²|V|/n + δ⁷)² log³ n). *)

val waypoint : l:float -> v_max:float -> r:float -> n:int -> float
(** The paper's instantiation for the random waypoint on an L×L square:
    O((L/v_max) (L²/(n r²) + 1)² log³ n). *)

val edge_meg_eq2 : n:int -> p:float -> float
(** The almost-tight edge-MEG(p, q) bound of [10] (Eq. 2):
    O(log n / log(1 + n p)). Independent of q. *)

val edge_meg_general : n:int -> p:float -> q:float -> float
(** Appendix A's instantiation of Theorem 1 for edge-MEG(p, q):
    O(1/(p+q) · ((p+q)/(np) + 1)² log² n). Almost tight iff q ≳ np. *)

val dimitriou_baseline : meeting_time:float -> n:int -> float
(** The baseline of [15] for random-walk mobility: O(T* log n) with T*
    the two-walk meeting time. *)

val lower_bound_diameter : int -> float
(** Trivial Ω(D) lower bound when movement is path-constrained. *)

val lower_bound_speed : l:float -> v:float -> float
(** Trivial Ω(L/v) lower bound for geometric mobility (the paper's
    form, valid when r = O(v)). *)

val lower_bound_propagation : l:float -> r:float -> v:float -> float
(** Sharper trivial lower bound L/(r + v): information travels at most
    one transmission radius plus one node-move per step, so crossing
    the square from a corner source to the opposite corner takes at
    least (√2·L)/(r+v) ≥ L/(r+v) steps. *)

val log2n : int -> float
(** log² n, convenience for table columns. *)

val log3n : int -> float
(** log³ n. *)
