(** Breadth-first traversal and the derived structural quantities
    (components, distances, diameter) used by the theory bounds. *)

val bfs_distances : Static.t -> int -> int array
(** [bfs_distances g s] gives hop distances from [s]; unreachable
    vertices get [-1]. *)

val eccentricity : Static.t -> int -> int
(** Maximum finite BFS distance from a vertex. Raises [Invalid_argument]
    if some vertex is unreachable. *)

val connected_components : Static.t -> int array
(** Component label per vertex, labels in [0 .. k-1] by first occurrence. *)

val n_components : Static.t -> int

val is_connected : Static.t -> bool

val largest_component_size : Static.t -> int

val n_isolated : Static.t -> int
(** Number of degree-0 vertices — the paper's measure of snapshot
    sparseness ("a large subset of all nodes that are isolated"). *)

val diameter : Static.t -> int
(** Exact diameter via all-sources BFS. O(n·m); intended for the modest
    mobility graphs of the experiments. Raises if disconnected. *)

val diameter_lower_bound : Static.t -> int
(** Two-sweep BFS lower bound on the diameter; cheap and usually tight
    on grids. Requires a connected graph. *)
