(** Constructors for the graph families used throughout the paper:
    grids (mobility spaces), k-augmented grids (Corollary 6's example),
    and the standard random / deterministic families used in tests. *)

val grid : rows:int -> cols:int -> Static.t
(** 4-neighbour grid; vertex [(r, c)] has index [r * cols + c]. *)

val torus : rows:int -> cols:int -> Static.t
(** Grid with wrap-around edges. Requires [rows, cols >= 3] so that wrap
    edges are distinct from interior edges. *)

val augmented_grid : rows:int -> cols:int -> k:int -> Static.t
(** The k-augmented grid of the paper: a grid plus an edge between every
    pair of points at grid hop-distance (Manhattan distance) at most [k].
    [k = 1] is the plain grid. *)

val cycle : int -> Static.t
(** Cycle on [n >= 3] vertices. *)

val path_graph : int -> Static.t
(** Path on [n >= 2] vertices. *)

val complete : int -> Static.t
(** Complete graph K_n. *)

val star : int -> Static.t
(** Star with centre [0] and [n - 1] leaves; the extreme irregular case
    for δ-regularity tests. *)

val hypercube : int -> Static.t
(** The [d]-dimensional hypercube on 2^d vertices (vertex = bit
    pattern): d-regular with diameter d — the fast-mixing δ = 1 case of
    Corollary 6. Requires [1 <= d <= 20]. *)

val complete_bipartite : int -> int -> Static.t
(** K_{a,b}: left vertices [0 .. a-1], right vertices [a .. a+b-1]. *)

val binary_tree : int -> Static.t
(** Complete binary tree with [n >= 1] vertices, heap-indexed (children
    of [i] are [2i+1], [2i+2]). Maximally hierarchical: diameter
    ~2 log n but poor expansion. *)

val random_regular : rng:Prng.Rng.t -> n:int -> d:int -> Static.t
(** A random [d]-regular simple graph by the configuration model with
    restarts (retry on self-loops / parallel edges). Requires
    [n * d] even, [0 < d < n]. Expected O(1) restarts for modest d;
    used as the expander-like δ = 1 mobility graph. *)

val erdos_renyi : rng:Prng.Rng.t -> n:int -> p:float -> Static.t
(** G(n, p): each pair independently an edge with probability [p].
    Sampled with geometric jumps, O(n + m) expected time. *)

val random_geometric : rng:Prng.Rng.t -> n:int -> radius:float -> Static.t
(** [n] points uniform in the unit square, edge iff Euclidean distance
    at most [radius]. Uses a cell index; O(n + m) expected time. *)

val grid_coords : cols:int -> int -> int * int
(** Inverse of grid indexing: [grid_coords ~cols v] is [(row, col)]. *)

val grid_index : cols:int -> int -> int -> int
(** [grid_index ~cols r c] is the vertex index of [(r, c)]. *)
