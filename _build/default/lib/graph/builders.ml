let grid_index ~cols r c = (r * cols) + c

let grid_coords ~cols v = (v / cols, v mod cols)

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid: dimensions must be >= 1";
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = grid_index ~cols r c in
      if c + 1 < cols then edges := (v, grid_index ~cols r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (v, grid_index ~cols (r + 1) c) :: !edges
    done
  done;
  Static.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus: dimensions must be >= 3";
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = grid_index ~cols r c in
      edges := (v, grid_index ~cols r ((c + 1) mod cols)) :: !edges;
      edges := (v, grid_index ~cols ((r + 1) mod rows) c) :: !edges
    done
  done;
  Static.of_edges ~n:(rows * cols) !edges

let augmented_grid ~rows ~cols ~k =
  if k < 1 then invalid_arg "Builders.augmented_grid: k must be >= 1";
  if rows < 1 || cols < 1 then invalid_arg "Builders.augmented_grid: dimensions must be >= 1";
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = grid_index ~cols r c in
      (* Enumerate each pair once: targets strictly after v in row-major
         order within Manhattan distance k. *)
      for dr = 0 to min k (rows - 1 - r) do
        let dc_lo = if dr = 0 then 1 else -(k - dr) in
        for dc = dc_lo to k - dr do
          let r' = r + dr and c' = c + dc in
          if c' >= 0 && c' < cols then edges := (v, grid_index ~cols r' c') :: !edges
        done
      done
    done
  done;
  Static.of_edges ~n:(rows * cols) !edges

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: n must be >= 3";
  Static.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path_graph n =
  if n < 2 then invalid_arg "Builders.path_graph: n must be >= 2";
  Static.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Static.of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Builders.star: n must be >= 2";
  Static.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let hypercube d =
  if d < 1 || d > 20 then invalid_arg "Builders.hypercube: d must be in [1, 20]";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Static.of_edges ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Builders.complete_bipartite: sides must be >= 1";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Static.of_edges ~n:(a + b) !edges

let binary_tree n =
  if n < 1 then invalid_arg "Builders.binary_tree: n must be >= 1";
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := ((i - 1) / 2, i) :: !edges
  done;
  Static.of_edges ~n !edges

let random_regular ~rng ~n ~d =
  if d <= 0 || d >= n then invalid_arg "Builders.random_regular: need 0 < d < n";
  if n * d mod 2 <> 0 then invalid_arg "Builders.random_regular: n * d must be even";
  (* Configuration model: pair up n*d half-edge stubs uniformly; restart
     on self-loops or duplicates. Acceptance probability is bounded away
     from 0 for fixed d, so the expected number of restarts is O(1). *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let rec attempt remaining =
    if remaining = 0 then
      invalid_arg "Builders.random_regular: too many rejections (d too close to n?)";
    Prng.Rng.shuffle_in_place rng stubs;
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i + 1 < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        edges := key :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Static.of_edges ~n !edges else attempt (remaining - 1)
  in
  attempt 10_000

(* Pair index <-> (u, v) with u < v, enumerating pairs in lexicographic
   order of (u, v). Used to sample G(n, p) with geometric jumps. *)
let decode_pair n idx =
  (* Find u such that pairs starting at u cover idx. Pairs with first
     endpoint < u number: u*n - u*(u+1)/2. Solve by scanning from a good
     initial guess; n is small enough that a simple loop is fine. *)
  let rec find u base =
    let row = n - 1 - u in
    if idx < base + row then (u, u + 1 + (idx - base)) else find (u + 1) (base + row)
  in
  find 0 0

let erdos_renyi ~rng ~n ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Builders.erdos_renyi: p outside [0, 1]";
  let total = n * (n - 1) / 2 in
  let edges = ref [] in
  if p > 0. then begin
    let idx = ref (Prng.Rng.geometric rng p) in
    while !idx < total do
      edges := decode_pair n !idx :: !edges;
      idx := !idx + 1 + Prng.Rng.geometric rng p
    done
  end;
  Static.of_edges ~n !edges

let random_geometric ~rng ~n ~radius =
  if radius < 0. then invalid_arg "Builders.random_geometric: negative radius";
  let xs = Array.init n (fun _ -> Prng.Rng.unit_float rng) in
  let ys = Array.init n (fun _ -> Prng.Rng.unit_float rng) in
  let cell = Float.max radius 1e-9 in
  let cells_per_side = max 1 (int_of_float (1. /. cell)) in
  let cell_of i =
    let cx = min (cells_per_side - 1) (int_of_float (xs.(i) /. cell)) in
    let cy = min (cells_per_side - 1) (int_of_float (ys.(i) /. cell)) in
    (cx, cy)
  in
  let buckets = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    let key = cell_of i in
    Hashtbl.replace buckets key (i :: (try Hashtbl.find buckets key with Not_found -> []))
  done;
  let r2 = radius *. radius in
  let edges = ref [] in
  let close i j =
    let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
    (dx *. dx) +. (dy *. dy) <= r2
  in
  for i = 0 to n - 1 do
    let cx, cy = cell_of i in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt buckets (cx + dx, cy + dy) with
        | None -> ()
        | Some members ->
            List.iter (fun j -> if j > i && close i j then edges := (i, j) :: !edges) members
      done
    done
  done;
  Static.of_edges ~n !edges
