lib/graph/static.mli:
