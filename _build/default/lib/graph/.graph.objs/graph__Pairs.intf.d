lib/graph/pairs.mli:
