lib/graph/builders.ml: Array Float Hashtbl List Prng Static
