lib/graph/static.ml: Array List
