lib/graph/traverse.ml: Array Queue Static
