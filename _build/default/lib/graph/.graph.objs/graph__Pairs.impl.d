lib/graph/pairs.ml:
