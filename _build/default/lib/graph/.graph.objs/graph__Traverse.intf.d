lib/graph/traverse.mli: Static
