lib/graph/builders.mli: Prng Static
