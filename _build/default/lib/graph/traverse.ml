let bfs_distances g s =
  let n = Static.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Static.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let eccentricity g s =
  let dist = bfs_distances g s in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Traverse.eccentricity: graph is disconnected"
      else max acc d)
    0 dist

let connected_components g =
  let n = Static.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      let queue = Queue.create () in
      label.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Static.iter_neighbors g u (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.add v queue
            end)
      done
    end
  done;
  label

let n_components g =
  let label = connected_components g in
  1 + Array.fold_left max (-1) label

let is_connected g = Static.n g = 0 || n_components g = 1

let largest_component_size g =
  let label = connected_components g in
  let k = 1 + Array.fold_left max (-1) label in
  if k = 0 then 0
  else begin
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    Array.fold_left max 0 sizes
  end

let n_isolated g =
  let count = ref 0 in
  for u = 0 to Static.n g - 1 do
    if Static.degree g u = 0 then incr count
  done;
  !count

let diameter g =
  let n = Static.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for s = 0 to n - 1 do
      let e = eccentricity g s in
      if e > !best then best := e
    done;
    !best
  end

let diameter_lower_bound g =
  if Static.n g = 0 then 0
  else begin
    (* Double sweep: BFS from 0, then from a farthest vertex. *)
    let d0 = bfs_distances g 0 in
    let far = ref 0 in
    Array.iteri
      (fun v d ->
        if d < 0 then invalid_arg "Traverse.diameter_lower_bound: graph is disconnected";
        if d > d0.(!far) then far := v)
      d0;
    eccentricity g !far
  end
