module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let normalise edges =
  List.fold_left (fun acc (u, v) -> Edge_set.add (min u v, max u v) acc) Edge_set.empty edges

let connected ~n edge_set =
  let graph = Graph.Static.of_edges ~n (Edge_set.elements edge_set) in
  Graph.Traverse.is_connected graph

let windows_connected ~n snapshots ~t =
  let len = List.length snapshots in
  if t < 1 then invalid_arg "Interval.windows_connected: t must be >= 1";
  if t > len then invalid_arg "Interval.windows_connected: t exceeds sequence length";
  let sets = Array.of_list (List.map normalise snapshots) in
  let ok = ref true in
  for start = 0 to len - t do
    let inter = ref sets.(start) in
    for i = start + 1 to start + t - 1 do
      inter := Edge_set.inter !inter sets.(i)
    done;
    if not (connected ~n !inter) then ok := false
  done;
  !ok

let record g ~rng ~steps =
  Core.Dynamic.reset g rng;
  let acc = ref [] in
  for i = 0 to steps - 1 do
    if i > 0 then Core.Dynamic.step g;
    acc := Core.Dynamic.snapshot_edges g :: !acc
  done;
  List.rev !acc

let max_interval ~n snapshots =
  let len = List.length snapshots in
  let rec search t = if t > len then len else if windows_connected ~n snapshots ~t then search (t + 1) else t - 1 in
  search 1
