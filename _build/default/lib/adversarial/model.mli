(** Worst-case (non-random) dynamic graphs, after Kuhn–Lynch–Oshman
    [21] — the adversarial counterpoint to the paper's Markovian
    models. The paper's bounds need stationarity; these models show
    what they are protecting against: an always-connected,
    constant-diameter dynamic graph on which flooding still needs
    Ω(n) rounds.

    All models here are deterministic (the adversary ignores the seed),
    so they double as precise fixtures for the flooding machinery. *)

val rotating_star : n:int -> Core.Dynamic.t
(** At time t the snapshot is a star centred on node [(t + 1) mod n].
    Every snapshot is connected with diameter 2, yet flooding from
    source 0 takes exactly n - 1 steps: at each step the only new
    informed node is the current centre (an uninformed centre relays
    nothing to its leaves in the same round). The oblivious version of
    [21]'s lower-bound construction, worst for source 0. *)

val rotating_matching : n:int -> Core.Dynamic.t
(** At time t the snapshot is the perfect matching pairing u with
    u XOR (a rotating one-bit mask): the hypercube dimensions taken
    round-robin. Requires [n] a power of two (>= 2). Every node has
    degree exactly 1 per snapshot, and flooding from any source
    completes in exactly log2 n steps — the fastest any degree-1
    dynamic graph can go (|I| at most doubles per step). *)

val random_matching : rng_hint:unit -> n:int -> Core.Dynamic.t
(** At each step a fresh uniformly random (near-)perfect matching: the
    memoryless Markovian cousin of {!rotating_matching} (odd [n] leaves
    one node unmatched). Randomness comes from the generator passed at
    [reset]; the [rng_hint] argument only documents that this model,
    unlike the others in this module, is stochastic. *)
