(** T-interval connectivity [21]: a dynamic graph is T-interval
    connected if for every window of T consecutive snapshots there is a
    single connected spanning subgraph present in all of them. T = 1 is
    "every snapshot connected"; larger T is the stability assumption
    under which [21] prove their dissemination bounds. The paper under
    reproduction needs no such stability — its Markovian models are
    typically not even 1-interval connected — and this checker makes
    that contrast measurable. *)

val windows_connected : n:int -> (int * int) list list -> t:int -> bool
(** [windows_connected ~n snapshots ~t] checks T-interval connectivity
    of the given finite snapshot sequence: for every [t] consecutive
    snapshots, the intersection of their edge sets is connected on
    [n] nodes. Requires [t >= 1] and [t <= length snapshots]. *)

val record : Core.Dynamic.t -> rng:Prng.Rng.t -> steps:int -> (int * int) list list
(** Reset the process and record [steps] consecutive snapshots as
    normalised edge lists, for feeding {!windows_connected}. *)

val max_interval : n:int -> (int * int) list list -> int
(** The largest [t] for which the sequence is t-interval connected
    (0 if even single snapshots are disconnected). *)
