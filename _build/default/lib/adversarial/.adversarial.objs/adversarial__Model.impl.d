lib/adversarial/model.ml: Array Core Prng
