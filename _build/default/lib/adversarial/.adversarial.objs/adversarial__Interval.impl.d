lib/adversarial/interval.ml: Array Core Graph List Set
