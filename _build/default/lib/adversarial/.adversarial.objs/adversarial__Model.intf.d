lib/adversarial/model.mli: Core
