lib/adversarial/interval.mli: Core Prng
