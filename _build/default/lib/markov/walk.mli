(** Random walks on a static graph, as explicit chains and as direct
    samplers. The walk chain is the hidden node chain of the random-walk
    mobility model (Corollary 6) when states are grid points. *)

val chain : Graph.Static.t -> Chain.t
(** Simple random walk: uniform over neighbours. Requires minimum
    degree >= 1. Periodic on bipartite graphs — combine with
    {!Chain.uniformize} when a unique limit is needed. *)

val lazy_chain : ?hold:float -> Graph.Static.t -> Chain.t
(** Lazy walk: hold in place with probability [hold] (default 1/2),
    otherwise move to a uniform neighbour. Aperiodic for [hold > 0]. *)

val stationary : Graph.Static.t -> float array
(** Closed-form stationary distribution of the (lazy) walk:
    [deg(v) / 2m]. *)

val step : Graph.Static.t -> Prng.Rng.t -> int -> int
(** One step of the simple walk without building a chain. *)

val meeting_time :
  rng:Prng.Rng.t -> ?cap:int -> Graph.Static.t -> int -> int -> int option
(** [meeting_time ~rng g u v] runs two independent lazy walks (hold 1/2)
    from [u] and [v] until they occupy the same vertex, returning the
    number of steps, or [None] if [cap] (default 1_000_000) is exceeded.
    This is the T* of the baseline bound of Dimitriou et al. [15]. *)

val mean_meeting_time :
  rng:Prng.Rng.t -> ?cap:int -> trials:int -> Graph.Static.t -> float
(** Average meeting time over [trials] uniform random starting pairs;
    capped trials count as [cap] (an underestimate, flagged by the
    caller if it matters). *)
