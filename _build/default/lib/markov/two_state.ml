type t = { p : float; q : float }

let make ~p ~q =
  if not (p >= 0. && p <= 1. && q >= 0. && q <= 1.) then
    invalid_arg "Two_state.make: probabilities outside [0, 1]";
  if not (p +. q > 0.) then invalid_arg "Two_state.make: p + q must be positive";
  { p; q }

let chain t =
  Chain.of_rows
    [|
      [| (0, 1. -. t.p); (1, t.p) |];   (* off: born with prob p *)
      [| (0, t.q); (1, 1. -. t.q) |];   (* on: dies with prob q *)
    |]

let stationary_on t = t.p /. (t.p +. t.q)

let second_eigenvalue t = 1. -. t.p -. t.q

let tv_after t ~start_on k =
  (* The on-probability after k steps from a point start is
     pi_on + (start_on - pi_on) * lambda^k; TV is its distance to pi_on. *)
  let pi_on = stationary_on t in
  let lambda = second_eigenvalue t in
  let start = if start_on then 1. else 0. in
  abs_float ((start -. pi_on) *. (lambda ** float_of_int k))

let mixing_time ?(eps = 0.25) t =
  let lambda = abs_float (second_eigenvalue t) in
  let worst = Float.max (stationary_on t) (1. -. stationary_on t) in
  if worst <= eps || lambda = 0. then 0
  else if lambda >= 1. then max_int
  else int_of_float (ceil (log (eps /. worst) /. log lambda))
