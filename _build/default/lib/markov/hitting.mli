(** Exact expected hitting times for finite chains, and exact two-walk
    meeting times via the product chain — closed-form anchors for the
    sampled estimators ({!Walk.meeting_time}) that drive the
    baseline-of-[15] comparisons.

    Expected hitting times h satisfy h(s) = 0 on targets and
    h(s) = 1 + Σ_t P(s,t) h(t) elsewhere; the system is solved by
    Gauss–Seidel sweeps (monotone convergence from 0 for absorbing
    systems). States that cannot reach a target diverge — detected and
    reported as [infinity]. *)

val expected_hitting :
  ?tol:float -> ?max_sweeps:int -> Chain.t -> target:(int -> bool) -> float array
(** [expected_hitting chain ~target] gives, for every state, the
    expected number of steps to first reach a target state ([0.] on
    targets, [infinity] where unreachable). Defaults: [tol] 1e-10
    (max change per sweep), [max_sweeps] 1_000_000. *)

val product_walk_chain : ?hold:float -> Graph.Static.t -> Chain.t
(** The chain of two independent lazy walks (default hold 1/2) on the
    graph: state (u, v) encoded as [u * n + v]. Requires min degree
    >= 1. *)

val expected_meeting : ?hold:float -> Graph.Static.t -> float array
(** Exact expected meeting time of two independent lazy walks from
    every ordered start pair (u, v) (index [u * n + v]); 0 on the
    diagonal. O(n²) states — intended for graphs up to a few hundred
    vertices. *)

val mean_meeting : ?hold:float -> Graph.Static.t -> float
(** Expected meeting time from a uniformly random ordered start pair —
    the exact counterpart of {!Walk.mean_meeting_time}. *)
