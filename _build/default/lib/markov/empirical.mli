(** Empirical distribution estimation for processes too large to
    materialise as an explicit {!Chain.t} (e.g. the waypoint hidden
    chain). The mixing-time estimator here is the measurement used for
    claim E7 (waypoint mixing is Θ(L/v)). *)

val distribution : n_outcomes:int -> int array -> float array
(** Empirical probability vector from a sample of outcomes in
    [\[0, n_outcomes)]. *)

val estimate_mixing_time :
  rng:Prng.Rng.t ->
  replicas:int ->
  checkpoints:int list ->
  n_outcomes:int ->
  observe:(Prng.Rng.t -> int -> int) ->
  reference:float array ->
  eps:float ->
  (int * float) list * int option
(** [estimate_mixing_time ~rng ~replicas ~checkpoints ~n_outcomes
    ~observe ~reference ~eps] runs [replicas] independent copies of a
    process, each on its own substream of [rng];
    [observe rng t] must return the observed state of a fresh replica
    after [t] steps. For each checkpoint [t] it computes the TV distance
    between the empirical distribution of the [replicas] observations
    and [reference]. Returns the (checkpoint, tv) curve and the first
    checkpoint at which tv <= [eps] + sampling slack, if any.

    The sampling slack is [0.5 * sqrt (n_outcomes / replicas)], a crude
    bound on the expected TV distance between the empirical measure of
    [replicas] samples and its own source distribution; without it the
    estimator can never report mixing. *)
