type t = {
  rows : (int * float) array array;        (* normalised *)
  samplers : Prng.Discrete.t array;
}

let of_rows raw =
  let n = Array.length raw in
  if n = 0 then invalid_arg "Chain.of_rows: no states";
  let rows =
    Array.mapi
      (fun s entries ->
        if Array.length entries = 0 then
          invalid_arg (Printf.sprintf "Chain.of_rows: state %d has no transitions" s);
        let total =
          Array.fold_left
            (fun acc (tgt, w) ->
              if tgt < 0 || tgt >= n then
                invalid_arg (Printf.sprintf "Chain.of_rows: state %d targets %d" s tgt);
              if w < 0. then invalid_arg "Chain.of_rows: negative weight";
              acc +. w)
            0. entries
        in
        if not (total > 0.) then
          invalid_arg (Printf.sprintf "Chain.of_rows: state %d has zero total weight" s);
        Array.map (fun (tgt, w) -> (tgt, w /. total)) entries)
      raw
  in
  let samplers = Array.map (fun entries -> Prng.Discrete.of_weights (Array.map snd entries)) rows in
  { rows; samplers }

let of_dense matrix =
  of_rows
    (Array.map
       (fun dense_row ->
         let entries = ref [] in
         Array.iteri (fun tgt w -> if w > 0. then entries := (tgt, w) :: !entries) dense_row;
         Array.of_list (List.rev !entries))
       matrix)

let n_states t = Array.length t.rows

let row t s = t.rows.(s)

let prob t s s' =
  Array.fold_left (fun acc (tgt, w) -> if tgt = s' then acc +. w else acc) 0. t.rows.(s)

let step t rng s =
  let k = Prng.Discrete.draw t.samplers.(s) rng in
  fst t.rows.(s).(k)

let walk t rng s k =
  let state = ref s in
  for _ = 1 to k do
    state := step t rng !state
  done;
  !state

let push t mu =
  let n = n_states t in
  if Array.length mu <> n then invalid_arg "Chain.push: distribution length mismatch";
  let out = Array.make n 0. in
  Array.iteri
    (fun s mass ->
      if mass > 0. then
        Array.iter (fun (tgt, w) -> out.(tgt) <- out.(tgt) +. (mass *. w)) t.rows.(s))
    mu;
  out

let push_n t mu k =
  let cur = ref mu in
  for _ = 1 to k do
    cur := push t !cur
  done;
  !cur

let tv p q = Stats.Distance.total_variation p q

let stationary ?(tol = 1e-12) ?(max_iter = 100_000) t =
  let n = n_states t in
  let cur = ref (Array.make n (1. /. float_of_int n)) in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let next = push t !cur in
    (* Average consecutive iterates: converges even on 2-periodic chains. *)
    let avg = Array.mapi (fun i x -> 0.5 *. (x +. next.(i))) !cur in
    if tv avg !cur <= tol && tv next avg <= tol then result := Some avg;
    cur := avg
  done;
  match !result with Some pi -> pi | None -> !cur

let tv_from_start t ~pi s k =
  let n = n_states t in
  let delta = Array.make n 0. in
  delta.(s) <- 1.;
  tv (push_n t delta k) pi

let mixing_time ?(eps = 0.25) ?(max_t = 10_000) t =
  let n = n_states t in
  let pi = stationary t in
  (* Advance all point-mass starts in lock-step until all are eps-close. *)
  let dists = Array.init n (fun s ->
      let d = Array.make n 0. in
      d.(s) <- 1.;
      d)
  in
  let k = ref 0 and answer = ref None in
  let all_close () = Array.for_all (fun d -> tv d pi <= eps) dists in
  if all_close () then answer := Some 0;
  while !answer = None && !k < max_t do
    incr k;
    Array.iteri (fun s d -> dists.(s) <- push t d) dists;
    if all_close () then answer := Some !k
  done;
  !answer

let is_stochastic t =
  Array.for_all
    (fun entries ->
      let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. entries in
      abs_float (total -. 1.) <= 1e-9)
    t.rows

let uniformize t h =
  if not (h >= 0. && h < 1.) then invalid_arg "Chain.uniformize: h outside [0, 1)";
  of_rows
    (Array.mapi
       (fun s entries ->
         let scaled = Array.map (fun (tgt, w) -> (tgt, (1. -. h) *. w)) entries in
         Array.append [| (s, h) |] scaled)
       t.rows)
