lib/markov/empirical.mli: Prng
