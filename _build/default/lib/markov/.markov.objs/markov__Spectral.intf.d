lib/markov/spectral.mli: Chain
