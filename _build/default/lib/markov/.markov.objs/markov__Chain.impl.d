lib/markov/chain.ml: Array List Printf Prng Stats
