lib/markov/hitting.mli: Chain Graph
