lib/markov/spectral.ml: Array Chain Float
