lib/markov/two_state.ml: Chain Float
