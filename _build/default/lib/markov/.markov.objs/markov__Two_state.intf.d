lib/markov/two_state.mli: Chain
