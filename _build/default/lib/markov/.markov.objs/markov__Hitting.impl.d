lib/markov/hitting.ml: Array Chain Graph List
