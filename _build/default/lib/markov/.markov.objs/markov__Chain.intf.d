lib/markov/chain.mli: Prng
