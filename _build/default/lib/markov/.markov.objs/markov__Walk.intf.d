lib/markov/walk.mli: Chain Graph Prng
