lib/markov/walk.ml: Array Chain Graph Prng
