lib/markov/empirical.ml: Array List Option Prng Stats
