(* Power iteration on the right action of the transition matrix,
   (P f)(s) = sum_t P(s, t) f(t), with the constant eigenfunction
   deflated against pi: the growth rate of the deflated iterates is
   |lambda_2|. *)
let second_eigenvalue_magnitude ?(tol = 1e-10) ?(max_iter = 100_000) chain =
  let n = Chain.n_states chain in
  if n = 1 then 0.
  else begin
    let pi = Chain.stationary chain in
    let apply f =
      Array.init n (fun s ->
          Array.fold_left (fun acc (t, w) -> acc +. (w *. f.(t))) 0. (Chain.row chain s))
    in
    let deflate f =
      let mean = ref 0. in
      Array.iteri (fun s fs -> mean := !mean +. (pi.(s) *. fs)) f;
      Array.map (fun fs -> fs -. !mean) f
    in
    let norm f = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. f) in
    (* A fixed, generic start vector (index ramp) deflated against pi. *)
    let f = ref (deflate (Array.init n (fun i -> float_of_int (i + 1)))) in
    let estimate = ref 0. in
    let converged = ref false in
    let iter = ref 0 in
    (if norm !f <= 1e-300 then converged := true);
    while (not !converged) && !iter < max_iter do
      incr iter;
      let before = norm !f in
      if before <= 1e-300 then begin
        estimate := 0.;
        converged := true
      end
      else begin
        let scaled = Array.map (fun x -> x /. before) !f in
        let next = deflate (apply scaled) in
        let rate = norm next in
        if abs_float (rate -. !estimate) <= tol then converged := true;
        estimate := rate;
        f := next
      end
    done;
    Float.min 1. !estimate
  end

let spectral_gap ?tol ?max_iter chain =
  1. -. second_eigenvalue_magnitude ?tol ?max_iter chain

let relaxation_time ?tol ?max_iter chain =
  let gap = spectral_gap ?tol ?max_iter chain in
  if gap <= 0. then infinity else 1. /. gap

let mixing_time_upper ?(eps = 0.25) chain =
  let pi = Chain.stationary chain in
  let pi_min = Array.fold_left Float.min infinity pi in
  let t_relax = relaxation_time chain in
  t_relax *. log (1. /. (eps *. pi_min))
