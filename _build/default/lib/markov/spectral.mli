(** Spectral estimates for finite chains. The mixing time the paper
    consumes (as the epoch length M) is controlled by the spectral gap:
    for reversible chains, t_mix(ε) ≤ t_relax · ln(1/(ε π_min)) and
    t_mix(ε) ≥ (t_relax − 1) · ln(1/2ε). These estimators give the gap
    without the O(|S|²)-per-step exact mixing computation. *)

val second_eigenvalue_magnitude : ?tol:float -> ?max_iter:int -> Chain.t -> float
(** Magnitude of the second-largest eigenvalue |λ₂|, estimated by power
    iteration on functions deflated against the stationary
    distribution (f ← f − E_π f). Exact in the limit for chains with a
    real dominant second eigenvalue (all reversible chains); for
    complex spectra it returns the dominant non-unit magnitude.
    Defaults: [tol] 1e-10 on successive Rayleigh estimates, [max_iter]
    100_000. *)

val spectral_gap : ?tol:float -> ?max_iter:int -> Chain.t -> float
(** 1 − |λ₂|. *)

val relaxation_time : ?tol:float -> ?max_iter:int -> Chain.t -> float
(** 1 / gap; [infinity] when the gap is numerically zero. *)

val mixing_time_upper : ?eps:float -> Chain.t -> float
(** The reversible-chain bound t_relax · ln(1/(ε π_min)) with ε = 1/4
    by default. An *upper* bound only for reversible chains; the test
    suite checks it against exact mixing times. *)
