(** Finite Markov chains over states [0 .. n-1], stored in sparse row
    form. This is the "hidden chain" substrate of the paper: edge-MEGs
    attach one chain per edge, node-MEGs one chain per node.

    Rows are normalised at construction; each row also carries an alias
    sampler, so stepping is O(1). Distribution-level operations (power
    iteration, mixing time) are exact and intended for chains with up to
    a few thousand states; larger processes (mobility models) implement
    their dynamics directly and never materialise a chain. *)

type t

val of_rows : (int * float) array array -> t
(** [of_rows rows] where [rows.(s)] lists [(target, weight)] pairs with
    non-negative weights summing to a positive value (normalised
    internally). Raises on empty rows or out-of-range targets. *)

val of_dense : float array array -> t
(** Build from a dense stochastic matrix. *)

val n_states : t -> int

val row : t -> int -> (int * float) array
(** Normalised transition row of a state. Do not mutate. *)

val prob : t -> int -> int -> float
(** [prob t s s'] is P(s -> s'). O(row length). *)

val step : t -> Prng.Rng.t -> int -> int
(** Sample one transition. O(1). *)

val walk : t -> Prng.Rng.t -> int -> int -> int
(** [walk t rng s k] takes [k] steps from [s]. *)

val push : t -> float array -> float array
(** [push t mu] is the distribution after one step: [mu P]. *)

val push_n : t -> float array -> int -> float array
(** [push_n t mu k] is [mu P^k]. *)

val stationary : ?tol:float -> ?max_iter:int -> t -> float array
(** Stationary distribution by power iteration from uniform, iterating
    until successive distributions are within [tol] in total variation
    (default [1e-12], at most [max_iter] = 100_000 steps). For periodic
    chains this averages two consecutive iterates, which converges for
    the lazy-style chains used here. *)

val mixing_time : ?eps:float -> ?max_t:int -> t -> int option
(** [mixing_time t] is the smallest [k] such that from every
    deterministic start, TV(delta_s P^k, pi) <= [eps] (default 1/4).
    Exact but O(n^2) per step; [None] if not reached within [max_t]
    (default 10_000). *)

val tv_from_start : t -> pi:float array -> int -> int -> float
(** [tv_from_start t ~pi s k] is TV(delta_s P^k, pi). *)

val is_stochastic : t -> bool
(** Rows sum to 1 within 1e-9 (always true post-construction; exposed
    for property tests). *)

val uniformize : t -> float -> t
(** [uniformize t h] is the lazy chain [h I + (1 - h) P] — holds in
    place with probability [h]. Removes periodicity for [h > 0]. *)
