let chain g =
  let n = Graph.Static.n g in
  Chain.of_rows
    (Array.init n (fun u ->
         let deg = Graph.Static.degree g u in
         if deg = 0 then invalid_arg "Walk.chain: isolated vertex";
         Array.map (fun v -> (v, 1.)) (Graph.Static.neighbors g u)))

let lazy_chain ?(hold = 0.5) g = Chain.uniformize (chain g) hold

let stationary g =
  let two_m = float_of_int (2 * Graph.Static.m g) in
  Array.init (Graph.Static.n g) (fun v -> float_of_int (Graph.Static.degree g v) /. two_m)

let step g rng u =
  let deg = Graph.Static.degree g u in
  if deg = 0 then u
  else Graph.Static.neighbors g u |> fun nbrs -> nbrs.(Prng.Rng.int rng deg)

let lazy_step g rng u = if Prng.Rng.bool rng then u else step g rng u

let meeting_time ~rng ?(cap = 1_000_000) g u v =
  let a = ref u and b = ref v in
  let t = ref 0 in
  while !a <> !b && !t < cap do
    a := lazy_step g rng !a;
    b := lazy_step g rng !b;
    incr t
  done;
  if !a = !b then Some !t else None

let mean_meeting_time ~rng ?(cap = 1_000_000) ~trials g =
  if trials < 1 then invalid_arg "Walk.mean_meeting_time: trials must be >= 1";
  let n = Graph.Static.n g in
  let acc = ref 0. in
  for _ = 1 to trials do
    let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
    let t = match meeting_time ~rng ~cap g u v with Some t -> t | None -> cap in
    acc := !acc +. float_of_int t
  done;
  !acc /. float_of_int trials
