let distribution ~n_outcomes samples =
  if n_outcomes <= 0 then invalid_arg "Empirical.distribution: n_outcomes must be positive";
  let counts = Array.make n_outcomes 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= n_outcomes then invalid_arg "Empirical.distribution: outcome out of range";
      counts.(s) <- counts.(s) + 1)
    samples;
  let total = float_of_int (Array.length samples) in
  Array.map (fun c -> float_of_int c /. total) counts

let estimate_mixing_time ~rng ~replicas ~checkpoints ~n_outcomes ~observe ~reference ~eps =
  if replicas < 1 then invalid_arg "Empirical.estimate_mixing_time: replicas must be >= 1";
  let slack = 0.5 *. sqrt (float_of_int n_outcomes /. float_of_int replicas) in
  let curve =
    List.map
      (fun t ->
        let samples =
          Array.init replicas (fun i ->
              observe (Prng.Rng.substream rng ((t * 1_000_003) + i)) t)
        in
        let dist = distribution ~n_outcomes samples in
        (t, Stats.Distance.total_variation dist reference))
      checkpoints
  in
  let hit = List.find_opt (fun (_, tv) -> tv <= eps +. slack) curve in
  (curve, Option.map fst hit)
