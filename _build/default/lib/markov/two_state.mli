(** The two-state on/off chain that drives each edge of the classic
    edge-MEG of [10]: an absent edge is born with probability [p], a
    present edge dies with probability [q]. Everything about this chain
    is closed-form; these formulas calibrate the generalised machinery. *)

type t = private { p : float; q : float }

val make : p:float -> q:float -> t
(** Requires [p, q] in [\[0, 1\]] with [p + q > 0]. *)

val chain : t -> Chain.t
(** The chain as a generic {!Chain.t}: state 0 = off, state 1 = on. *)

val stationary_on : t -> float
(** P(edge exists) in the stationary regime: [p / (p + q)] — the α of
    Theorem 1 applied to edge-MEGs. *)

val second_eigenvalue : t -> float
(** [1 - p - q]; TV distance from stationarity contracts by its absolute
    value each step. *)

val mixing_time : ?eps:float -> t -> int
(** Smallest [k] with [|1 - p - q|^k * max(pi_on, pi_off) <= eps]
    (default eps = 1/4). [0] when the chain mixes instantly. *)

val tv_after : t -> start_on:bool -> int -> float
(** Exact TV distance to stationarity after [k] steps from a
    deterministic start. *)
