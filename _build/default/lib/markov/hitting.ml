let expected_hitting ?(tol = 1e-10) ?(max_sweeps = 1_000_000) chain ~target =
  let n = Chain.n_states chain in
  let h = Array.make n 0. in
  let is_target = Array.init n target in
  (* Gauss-Seidel from 0: iterates increase monotonically toward the
     minimal non-negative solution, which is the hitting time (finite
     exactly where a target is reachable). *)
  let sweep () =
    let worst = ref 0. in
    for s = 0 to n - 1 do
      if not is_target.(s) then begin
        let acc = ref 1. in
        let self = ref 0. in
        Array.iter
          (fun (t, w) ->
            if t = s then self := !self +. w
            else if not is_target.(t) then acc := !acc +. (w *. h.(t)))
          (Chain.row chain s);
        let updated = if !self >= 1. then infinity else !acc /. (1. -. !self) in
        let change = abs_float (updated -. h.(s)) in
        if change > !worst then worst := change;
        h.(s) <- updated
      end
    done;
    !worst
  in
  (* Iterate until converged; iterates that blow past any plausible
     scale signal unreachable targets (the minimal solution is +inf
     there), so the sweep loop also stops on divergence. *)
  let rec run k =
    if k < max_sweeps then begin
      let change = sweep () in
      if change > tol && Array.for_all (fun x -> x < 1e15) h then run (k + 1)
    end
  in
  run 0;
  Array.mapi (fun s v -> if is_target.(s) then 0. else if v >= 1e15 then infinity else v) h

let product_walk_chain ?(hold = 0.5) g =
  let n = Graph.Static.n g in
  if Graph.Static.min_degree g = 0 then invalid_arg "Hitting.product_walk_chain: isolated vertex";
  let single u =
    (* Lazy walk distribution from u as (state, weight) list. *)
    let deg = float_of_int (Graph.Static.degree g u) in
    (u, hold)
    :: List.map
         (fun v -> (v, (1. -. hold) /. deg))
         (Array.to_list (Graph.Static.neighbors g u))
  in
  Chain.of_rows
    (Array.init (n * n) (fun s ->
         let u = s / n and v = s mod n in
         let moves_u = single u and moves_v = single v in
         Array.of_list
           (List.concat_map
              (fun (u', wu) -> List.map (fun (v', wv) -> ((u' * n) + v', wu *. wv)) moves_v)
              moves_u)))

let expected_meeting ?hold g =
  let n = Graph.Static.n g in
  let chain = product_walk_chain ?hold g in
  expected_hitting chain ~target:(fun s -> s / n = s mod n)

let mean_meeting ?hold g =
  let n = Graph.Static.n g in
  let h = expected_meeting ?hold g in
  Array.fold_left ( +. ) 0. h /. float_of_int (n * n)
