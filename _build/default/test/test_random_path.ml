open Helpers

let path_of family h =
  Array.init (Random_path.Family.length family h) (Random_path.Family.point_at family h)

(* --- Explicit families --- *)

let triangle = Graph.Builders.cycle 3

let triangle_family () =
  (* Both orientations of each edge of a triangle. *)
  Random_path.Family.of_explicit triangle
    [| [| 0; 1 |]; [| 1; 0 |]; [| 1; 2 |]; [| 2; 1 |]; [| 2; 0 |]; [| 0; 2 |] |]

let test_explicit_basics () =
  let f = triangle_family () in
  Alcotest.(check int) "n_paths" 6 (Random_path.Family.n_paths f);
  Alcotest.(check int) "length" 2 (Random_path.Family.length f 0);
  Alcotest.(check int) "start" 0 (Random_path.Family.start_point f 0);
  Alcotest.(check int) "end" 1 (Random_path.Family.end_point f 0);
  Alcotest.(check (array int)) "paths from 0" [| 0; 5 |] (Random_path.Family.paths_from f 0)

let test_explicit_validation () =
  check_true "short path rejected"
    (try
       ignore (Random_path.Family.of_explicit triangle [| [| 0 |] |]);
       false
     with Invalid_argument _ -> true);
  check_true "non-edge rejected"
    (try
       ignore
         (Random_path.Family.of_explicit (Graph.Builders.path_graph 3) [| [| 0; 2 |]; [| 2; 0 |] |]);
       false
     with Invalid_argument _ -> true);
  check_true "dead end rejected"
    (try
       ignore (Random_path.Family.of_explicit triangle [| [| 0; 1 |] |]);
       false
     with Invalid_argument _ -> true)

let test_explicit_checks () =
  let f = triangle_family () in
  check_true "simple" (Random_path.Family.is_simple f);
  check_true "reversible" (Random_path.Family.is_reversible f)

let test_not_reversible () =
  (* One-way circulation around the triangle. *)
  let f = Random_path.Family.of_explicit triangle [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] |] in
  check_true "one-way is not reversible" (not (Random_path.Family.is_reversible f))

let test_not_simple () =
  let f =
    Random_path.Family.of_explicit triangle
      [| [| 0; 1; 0; 1 |]; [| 1; 0 |]; [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |]; [| 0; 2 |]; [| 2; 1 |] |]
  in
  check_true "repeat interior point is not simple" (not (Random_path.Family.is_simple f))

let test_closed_trip_is_simple () =
  (* start = end is allowed by the definition. *)
  let f =
    Random_path.Family.of_explicit triangle
      [| [| 0; 1; 2; 0 |]; [| 0; 2; 1; 0 |]; [| 1; 0 |]; [| 0; 1 |]; [| 2; 0 |]; [| 0; 2 |]; [| 1; 2 |]; [| 2; 1 |] |]
  in
  check_true "closed trip counts as simple" (Random_path.Family.is_simple f)

let test_congestion_triangle () =
  let f = triangle_family () in
  (* Each point is the endpoint of exactly 2 paths; positions 1..len-1
     only cover endpoints here. *)
  Alcotest.(check (array int)) "congestion" [| 2; 2; 2 |] (Random_path.Family.congestion f);
  check_close ~eps:1e-12 "delta 1" 1. (Random_path.Family.delta_regularity f)

(* --- Edges family --- *)

let test_edges_family_structure () =
  let g = Graph.Builders.star 4 in
  let f = Random_path.Family.edges_family g in
  Alcotest.(check int) "n_paths = 2m" 6 (Random_path.Family.n_paths f);
  Alcotest.(check int) "lengths" 2 (Random_path.Family.length f 0);
  (* Centre (0) starts 3 paths, each leaf starts 1. *)
  Alcotest.(check int) "paths from centre" 3 (Array.length (Random_path.Family.paths_from f 0));
  Alcotest.(check int) "paths from leaf" 1 (Array.length (Random_path.Family.paths_from f 1))

let q_edges_family_consistent =
  qtest ~count:50 "edges family paths are the graph's directed edges"
    (random_graph_gen ~max_n:15 ())
    (fun g ->
      Graph.Static.min_degree g = 0
      ||
      let f = Random_path.Family.edges_family g in
      Random_path.Family.n_paths f = 2 * Graph.Static.m g
      &&
      let ok = ref true in
      for h = 0 to Random_path.Family.n_paths f - 1 do
        let u = Random_path.Family.point_at f h 0 in
        let v = Random_path.Family.point_at f h 1 in
        if not (Graph.Static.mem_edge g u v) then ok := false
      done;
      !ok)

let test_edges_family_congestion_is_degree () =
  let g = Graph.Builders.star 5 in
  let f = Random_path.Family.edges_family g in
  (* #P(u) counts directed edges ending at u = deg(u) (paper: if P is
     the edge set then #P(u) = deg(u)). *)
  Alcotest.(check (array int)) "congestion = degree" [| 4; 1; 1; 1; 1 |]
    (Random_path.Family.congestion f)

let test_edges_family_sampler_starts_at_u () =
  let g = Graph.Builders.cycle 5 in
  let f = Random_path.Family.edges_family g in
  let rng = rng_of_seed 1 in
  for _ = 1 to 50 do
    let h = Random_path.Family.sample_path_from f rng 3 in
    Alcotest.(check int) "starts at 3" 3 (Random_path.Family.start_point f h)
  done

(* --- Grid shortest paths --- *)

let q_grid_paths_valid =
  qtest ~count:100 "grid shortest paths are valid shortest paths"
    QCheck2.Gen.(triple seed_gen (int_range 2 6) (int_range 2 6))
    (fun (seed, rows, cols) ->
      let f = Random_path.Family.grid_shortest ~rows ~cols in
      let g = Random_path.Family.graph f in
      let rng = Prng.Rng.of_seed seed in
      let h = Prng.Rng.int rng (Random_path.Family.n_paths f) in
      let pts = path_of f h in
      let len = Array.length pts in
      (* Consecutive points adjacent. *)
      let adjacent = ref true in
      for i = 1 to len - 1 do
        if not (Graph.Static.mem_edge g pts.(i - 1) pts.(i)) then adjacent := false
      done;
      (* Length equals Manhattan distance + 1 (shortest). *)
      let r1, c1 = Graph.Builders.grid_coords ~cols pts.(0) in
      let r2, c2 = Graph.Builders.grid_coords ~cols pts.(len - 1) in
      !adjacent
      && len = abs (r1 - r2) + abs (c1 - c2) + 1
      && pts.(0) <> pts.(len - 1))

let test_grid_family_counts () =
  let f = Random_path.Family.grid_shortest ~rows:3 ~cols:3 in
  Alcotest.(check int) "n_paths = 2 s(s-1)" (2 * 9 * 8) (Random_path.Family.n_paths f);
  Alcotest.(check int) "paths from a point" 16 (Array.length (Random_path.Family.paths_from f 4));
  Array.iter
    (fun h -> Alcotest.(check int) "paths_from start correct" 4 (Random_path.Family.start_point f h))
    (Random_path.Family.paths_from f 4)

let test_grid_family_simple_reversible () =
  let f = Random_path.Family.grid_shortest ~rows:3 ~cols:3 in
  check_true "simple" (Random_path.Family.is_simple f);
  check_true "reversible" (Random_path.Family.is_reversible f)

let test_grid_family_delta_small () =
  let f = Random_path.Family.grid_shortest ~rows:5 ~cols:5 in
  let delta = Random_path.Family.delta_regularity f in
  check_true "delta is a small constant" (delta >= 1. && delta < 2.)

let test_grid_sampler_uniform_destination () =
  (* sample_path_from must agree with uniform choice over paths_from. *)
  let f = Random_path.Family.grid_shortest ~rows:3 ~cols:3 in
  let rng = rng_of_seed 2 in
  let counts = Hashtbl.create 32 in
  let trials = 16_000 in
  for _ = 1 to trials do
    let h = Random_path.Family.sample_path_from f rng 0 in
    Hashtbl.replace counts h (1 + Option.value ~default:0 (Hashtbl.find_opt counts h))
  done;
  let options = Random_path.Family.paths_from f 0 in
  Alcotest.(check int) "all options seen" (Array.length options) (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      check_close_rel ~rel:0.25 "near uniform" (float_of_int trials /. 16.) (float_of_int c))
    counts

(* --- BFS shortest-path family on arbitrary graphs --- *)

let q_shortest_paths_valid =
  qtest ~count:40 "BFS family paths are valid shortest paths"
    QCheck2.Gen.(pair seed_gen (int_range 4 16))
    (fun (seed, n) ->
      let rng = Prng.Rng.of_seed seed in
      (* Connected-ish random graph: retry until connected. *)
      let rec graph () =
        let g = Graph.Builders.erdos_renyi ~rng ~n ~p:0.4 in
        if Graph.Traverse.is_connected g then g else graph ()
      in
      let g = graph () in
      let f = Random_path.Family.shortest_paths g in
      let h = Prng.Rng.int rng (Random_path.Family.n_paths f) in
      let pts = path_of f h in
      let len = Array.length pts in
      let adjacent = ref true in
      for i = 1 to len - 1 do
        if not (Graph.Static.mem_edge g pts.(i - 1) pts.(i)) then adjacent := false
      done;
      let dist = Graph.Traverse.bfs_distances g pts.(0) in
      !adjacent && len = dist.(pts.(len - 1)) + 1)

let test_shortest_paths_reversible () =
  let g = Graph.Builders.cycle 7 in
  let f = Random_path.Family.shortest_paths g in
  check_true "simple" (Random_path.Family.is_simple f);
  check_true "reversible" (Random_path.Family.is_reversible f);
  Alcotest.(check int) "n_paths = 2 * pairs" (7 * 6) (Random_path.Family.n_paths f)

let test_shortest_paths_on_grid_matches_length () =
  (* On a grid, canonical BFS paths are still shortest: lengths agree
     with the monotone family's. *)
  let f_bfs = Random_path.Family.shortest_paths (Graph.Builders.grid ~rows:4 ~cols:4) in
  let f_grid = Random_path.Family.grid_shortest ~rows:4 ~cols:4 in
  (* sum_u #P(u) = sum_h (len h - 1): with one shortest path per
     ordered pair in the BFS family and two (column-first/row-first) in
     the monotone grid family, and all shortest paths between a pair
     having equal length, the grid total is exactly double. *)
  let sum a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "grid total pass-throughs doubles the BFS family's"
    (2 * sum (Random_path.Family.congestion f_bfs))
    (sum (Random_path.Family.congestion f_grid))

let test_shortest_paths_hypercube_regular () =
  let f = Random_path.Family.shortest_paths (Graph.Builders.hypercube 3) in
  (* The hypercube is vertex-transitive but canonical tie-breaking by
     neighbour order introduces mild congestion skew; delta stays small. *)
  check_true "delta modest" (Random_path.Family.delta_regularity f < 2.)

let test_shortest_paths_validation () =
  check_true "disconnected rejected"
    (try
       ignore (Random_path.Family.shortest_paths (Graph.Static.of_edges ~n:4 [ (0, 1) ]));
       false
     with Invalid_argument _ -> true)

let test_shortest_paths_flooding () =
  let g = Graph.Builders.hypercube 4 in
  let f = Random_path.Family.shortest_paths g in
  let dyn = Random_path.Rp_model.make ~hold:0.5 ~n:16 ~family:f () in
  match Core.Flooding.time ~cap:5000 ~rng:(rng_of_seed 9) ~source:0 dyn with
  | Some _ -> ()
  | None -> Alcotest.fail "BFS-family flooding on the hypercube did not complete"

(* --- Rp_model --- *)

let test_rp_points_in_range () =
  let f = Random_path.Family.grid_shortest ~rows:4 ~cols:4 in
  let dyn, observe = Random_path.Rp_model.make_observable ~n:10 ~family:f () in
  Core.Dynamic.reset dyn (rng_of_seed 3);
  for _ = 1 to 30 do
    Core.Dynamic.step dyn;
    Array.iter (fun p -> check_true "point in range" (p >= 0 && p < 16)) (observe ())
  done

let q_rp_edges_are_colocations =
  qtest ~count:30 "snapshot edges = co-located pairs"
    QCheck2.Gen.(pair seed_gen (int_range 2 12))
    (fun (seed, n) ->
      let f = Random_path.Family.grid_shortest ~rows:3 ~cols:4 in
      let dyn, observe = Random_path.Rp_model.make_observable ~n ~family:f () in
      Core.Dynamic.reset dyn (Prng.Rng.of_seed seed);
      Core.Dynamic.step dyn;
      let pts = observe () in
      let expected = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if pts.(i) = pts.(j) then expected := (i, j) :: !expected
        done
      done;
      Core.Dynamic.snapshot_edges dyn = List.sort compare !expected)

let test_rp_point_init () =
  let f = Random_path.Family.grid_shortest ~rows:4 ~cols:4 in
  let dyn, observe =
    Random_path.Rp_model.make_observable ~init:(Point 5) ~n:8 ~family:f ()
  in
  Core.Dynamic.reset dyn (rng_of_seed 4);
  (* Fresh paths from point 5: after reset every node sits at position 1
     of a path starting at 5, i.e. one hop from 5. *)
  let g = Random_path.Family.graph f in
  Array.iter
    (fun p -> check_true "one hop from start point" (Graph.Static.mem_edge g 5 p))
    (observe ())

let test_rp_hold_validation () =
  let f = Random_path.Family.grid_shortest ~rows:3 ~cols:3 in
  check_true "hold >= 1 rejected"
    (try
       ignore (Random_path.Rp_model.make ~hold:1. ~n:4 ~family:f ());
       false
     with Invalid_argument _ -> true)

let test_rp_parity_freeze_without_hold () =
  (* The documented phenomenon that motivates ~hold: with hold = 0 on a
     bipartite grid, two nodes whose initial points have different
     colours never meet, so flooding cannot complete. *)
  let f = Random_path.Family.grid_shortest ~rows:4 ~cols:4 in
  let dyn, observe = Random_path.Rp_model.make_observable ~hold:0. ~n:12 ~family:f () in
  Core.Dynamic.reset dyn (rng_of_seed 5);
  let colour p =
    let r, c = Graph.Builders.grid_coords ~cols:4 p in
    (r + c) land 1
  in
  let parities0 = Array.map colour (observe ()) in
  for t = 1 to 20 do
    Core.Dynamic.step dyn;
    let parities = Array.map colour (observe ()) in
    Array.iteri
      (fun i p ->
        Alcotest.(check int)
          (Printf.sprintf "parity alternates (node %d, t %d)" i t)
          ((parities0.(i) + t) land 1)
          p)
      parities
  done

let test_rp_flooding_completes_with_hold () =
  let f = Random_path.Family.grid_shortest ~rows:4 ~cols:4 in
  let dyn = Random_path.Rp_model.make ~hold:0.5 ~n:16 ~family:f () in
  match Core.Flooding.time ~cap:5000 ~rng:(rng_of_seed 6) ~source:0 dyn with
  | Some t -> check_true "completes reasonably fast" (t < 5000)
  | None -> Alcotest.fail "lazy random-path flooding did not complete"

let test_rp_stationary_init_spreads () =
  (* Under the uniform stationary initialisation, points should cover a
     decent part of the grid rather than cluster. *)
  let f = Random_path.Family.grid_shortest ~rows:5 ~cols:5 in
  let dyn, observe = Random_path.Rp_model.make_observable ~n:200 ~family:f () in
  Core.Dynamic.reset dyn (rng_of_seed 7);
  let distinct = List.length (List.sort_uniq compare (Array.to_list (observe ()))) in
  check_true "covers most points" (distinct > 15)

let test_random_walk_wrapper () =
  let g = Graph.Builders.complete 8 in
  let dyn = Random_path.Rp_model.random_walk ~n:8 g in
  match Core.Flooding.time ~cap:5000 ~rng:(rng_of_seed 8) ~source:0 dyn with
  | Some _ -> ()
  | None -> Alcotest.fail "random walk flooding on K8 did not complete"

let suites =
  [
    ( "random_path.family.explicit",
      [
        Alcotest.test_case "basics" `Quick test_explicit_basics;
        Alcotest.test_case "validation" `Quick test_explicit_validation;
        Alcotest.test_case "simple+reversible" `Quick test_explicit_checks;
        Alcotest.test_case "not reversible" `Quick test_not_reversible;
        Alcotest.test_case "not simple" `Quick test_not_simple;
        Alcotest.test_case "closed trip simple" `Quick test_closed_trip_is_simple;
        Alcotest.test_case "congestion" `Quick test_congestion_triangle;
      ] );
    ( "random_path.family.edges",
      [
        Alcotest.test_case "structure" `Quick test_edges_family_structure;
        Alcotest.test_case "congestion = degree" `Quick test_edges_family_congestion_is_degree;
        Alcotest.test_case "sampler start point" `Quick test_edges_family_sampler_starts_at_u;
        q_edges_family_consistent;
      ] );
    ( "random_path.family.grid",
      [
        Alcotest.test_case "counts" `Quick test_grid_family_counts;
        Alcotest.test_case "simple+reversible" `Quick test_grid_family_simple_reversible;
        Alcotest.test_case "delta small" `Quick test_grid_family_delta_small;
        Alcotest.test_case "sampler uniform" `Quick test_grid_sampler_uniform_destination;
        q_grid_paths_valid;
      ] );
    ( "random_path.family.bfs",
      [
        Alcotest.test_case "reversible on cycle" `Quick test_shortest_paths_reversible;
        Alcotest.test_case "grid pass-through parity" `Quick
          test_shortest_paths_on_grid_matches_length;
        Alcotest.test_case "hypercube regularity" `Quick test_shortest_paths_hypercube_regular;
        Alcotest.test_case "validation" `Quick test_shortest_paths_validation;
        Alcotest.test_case "flooding completes" `Quick test_shortest_paths_flooding;
        q_shortest_paths_valid;
      ] );
    ( "random_path.model",
      [
        Alcotest.test_case "points in range" `Quick test_rp_points_in_range;
        Alcotest.test_case "point init" `Quick test_rp_point_init;
        Alcotest.test_case "hold validation" `Quick test_rp_hold_validation;
        Alcotest.test_case "parity freeze without hold" `Quick
          test_rp_parity_freeze_without_hold;
        Alcotest.test_case "flooding completes with hold" `Quick
          test_rp_flooding_completes_with_hold;
        Alcotest.test_case "stationary init spreads" `Quick test_rp_stationary_init_spreads;
        Alcotest.test_case "random walk wrapper" `Quick test_random_walk_wrapper;
        q_rp_edges_are_colocations;
      ] );
  ]
