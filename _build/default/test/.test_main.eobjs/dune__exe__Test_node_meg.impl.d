test/test_node_meg.ml: Alcotest Array Core Float Helpers List Markov Node_meg Prng QCheck2
