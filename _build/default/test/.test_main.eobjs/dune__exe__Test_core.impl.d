test/test_core.ml: Alcotest Array Core Edge_meg Float Graph Helpers List Option Printf Prng QCheck2 Stats
