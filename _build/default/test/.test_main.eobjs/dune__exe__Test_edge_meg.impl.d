test/test_edge_meg.ml: Alcotest Array Core Edge_meg Float Graph Helpers List Markov Prng QCheck2 Stats
