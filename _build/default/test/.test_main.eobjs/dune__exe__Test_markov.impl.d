test/test_markov.ml: Alcotest Array Float Graph Helpers List Markov Printf Prng QCheck2 Stats
