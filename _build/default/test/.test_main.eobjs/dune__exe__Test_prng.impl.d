test/test_prng.ml: Alcotest Array Helpers Int64 Printf Prng QCheck2 QCheck_alcotest Stats
