test/test_gossip.ml: Alcotest Array Core Edge_meg Float Graph Helpers Prng QCheck2 Stats
