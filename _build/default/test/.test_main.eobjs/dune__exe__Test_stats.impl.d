test/test_stats.ml: Alcotest Array Float Helpers List Prng QCheck2 Stats String
