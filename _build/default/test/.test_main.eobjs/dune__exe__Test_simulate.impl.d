test/test_simulate.ml: Alcotest Array Core Filename Graph Helpers List Simulate Stats String Sys
