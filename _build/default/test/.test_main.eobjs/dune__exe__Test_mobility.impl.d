test/test_mobility.ml: Alcotest Array Core Helpers List Markov Mobility Printf Prng QCheck2 Stats String
