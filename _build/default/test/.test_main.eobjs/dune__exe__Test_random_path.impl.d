test/test_random_path.ml: Alcotest Array Core Graph Hashtbl Helpers List Option Printf Prng QCheck2 Random_path
