test/test_dyn_walk.ml: Alcotest Core Edge_meg Graph Helpers Prng QCheck2
