test/test_theory.ml: Alcotest Array Core Edge_meg Helpers QCheck2 Stats Theory
