test/test_integration.ml: Adversarial Alcotest Array Core Edge_meg Graph Helpers List Markov Mobility Node_meg Random_path
