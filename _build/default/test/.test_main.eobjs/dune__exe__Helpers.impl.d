test/helpers.ml: Alcotest Array Float Graph Prng QCheck2 QCheck_alcotest Stats
