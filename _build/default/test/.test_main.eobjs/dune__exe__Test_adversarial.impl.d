test/test_adversarial.ml: Adversarial Alcotest Array Core Edge_meg Graph Helpers List Stats
