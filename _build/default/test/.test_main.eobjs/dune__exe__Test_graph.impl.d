test/test_graph.ml: Alcotest Array Graph Helpers List Prng QCheck2 Stats
