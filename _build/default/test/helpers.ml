(* Shared test utilities: approximate float assertions and common QCheck
   generators. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Float.is_finite actual) || abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %.3g)" msg expected actual eps

let check_close_rel ?(rel = 0.05) msg expected actual =
  let denom = Float.max (abs_float expected) 1e-12 in
  if not (Float.is_finite actual) || abs_float (expected -. actual) /. denom > rel then
    Alcotest.failf "%s: expected %.6g within %.1f%%, got %.6g" msg expected (100. *. rel) actual

let check_true msg b = Alcotest.(check bool) msg true b

let qtest ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let rng_of_seed = Prng.Rng.of_seed

(* A generator of (seed, n) pairs for randomised structures. *)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let small_n_gen = QCheck2.Gen.int_range 1 40

(* Random undirected graph on up to [max_n] vertices built through the
   library's own G(n, p) sampler, driven by a generated seed. *)
let random_graph_gen ?(max_n = 30) () =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let rng = Prng.Rng.of_seed seed in
        let p = 0.2 +. Prng.Rng.float rng 0.5 in
        Graph.Builders.erdos_renyi ~rng ~n ~p)
      seed_gen (int_range 2 max_n))

let float_array_gen =
  QCheck2.Gen.(array_size (int_range 1 50) (float_range (-100.) 100.))

(* A probability vector of the given length derived from a seed. *)
let prob_vector seed len =
  let rng = Prng.Rng.of_seed seed in
  let raw = Array.init len (fun _ -> 0.01 +. Prng.Rng.unit_float rng) in
  Stats.Distance.normalize raw
