open Helpers

(* --- Space --- *)

let brute_force_pairs ~r xs ys =
  let n = Array.length xs in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Mobility.Space.dist2 xs.(i) ys.(i) xs.(j) ys.(j) <= r *. r then acc := (i, j) :: !acc
    done
  done;
  List.sort compare !acc

let q_close_pairs_bruteforce =
  qtest ~count:100 "iter_close_pairs = brute force"
    QCheck2.Gen.(triple seed_gen (int_range 1 40) (float_range 0. 3.))
    (fun (seed, n, r) ->
      let rng = Prng.Rng.of_seed seed in
      let l = 10. in
      let xs = Array.init n (fun _ -> Prng.Rng.float rng l) in
      let ys = Array.init n (fun _ -> Prng.Rng.float rng l) in
      let found = ref [] in
      Mobility.Space.iter_close_pairs ~l ~r ~xs ~ys (fun i j -> found := (i, j) :: !found);
      List.sort compare !found = brute_force_pairs ~r xs ys)

let test_close_pairs_r0 () =
  let xs = [| 1.; 1.; 2. |] and ys = [| 3.; 3.; 3. |] in
  let found = ref [] in
  Mobility.Space.iter_close_pairs ~l:5. ~r:0. ~xs ~ys (fun i j -> found := (i, j) :: !found);
  Alcotest.(check (list (pair int int))) "coincident points only" [ (0, 1) ] !found

let test_cell_index_bounds () =
  let l = 8. and bins = 4 in
  Alcotest.(check int) "origin" 0 (Mobility.Space.cell_index ~l ~bins 0. 0.);
  Alcotest.(check int) "far corner clamps" 15 (Mobility.Space.cell_index ~l ~bins 8. 8.);
  Alcotest.(check int) "interior" 5 (Mobility.Space.cell_index ~l ~bins 2.5 2.5)

let test_clamp () =
  check_close "below" 0. (Mobility.Space.clamp 5. (-1.));
  check_close "above" 5. (Mobility.Space.clamp 5. 7.);
  check_close "inside" 3. (Mobility.Space.clamp 5. 3.)

(* --- Waypoint --- *)

let q_waypoint_in_bounds =
  qtest ~count:30 "waypoint positions stay in the square"
    QCheck2.Gen.(pair seed_gen (int_range 1 10))
    (fun (seed, n) ->
      let l = 7. in
      let geo = Mobility.Waypoint.create ~n ~l ~r:1. ~v_min:0.5 ~v_max:2. () in
      Mobility.Geo.reset geo (Prng.Rng.of_seed seed);
      let ok = ref true in
      for _ = 1 to 60 do
        Mobility.Geo.step geo;
        for i = 0 to n - 1 do
          let x, y = Mobility.Geo.position geo i in
          if not (x >= 0. && x <= l && y >= 0. && y <= l) then ok := false
        done
      done;
      !ok)

let q_waypoint_speed_respected =
  qtest ~count:30 "waypoint step displacement <= v_max"
    QCheck2.Gen.(pair seed_gen (int_range 1 6))
    (fun (seed, n) ->
      let v_max = 1.5 in
      let geo = Mobility.Waypoint.create ~n ~l:9. ~r:1. ~v_min:0.5 ~v_max () in
      Mobility.Geo.reset geo (Prng.Rng.of_seed seed);
      let ok = ref true in
      let prev = Array.init n (Mobility.Geo.position geo) in
      for _ = 1 to 50 do
        Mobility.Geo.step geo;
        for i = 0 to n - 1 do
          let x, y = Mobility.Geo.position geo i in
          let px, py = prev.(i) in
          if Mobility.Space.dist2 x y px py > (v_max ** 2.) +. 1e-9 then ok := false;
          prev.(i) <- (x, y)
        done
      done;
      !ok)

let test_waypoint_corner_init () =
  let geo = Mobility.Waypoint.create ~init:Corner ~n:4 ~l:5. ~r:1. ~v_min:1. ~v_max:1. () in
  Mobility.Geo.reset geo (rng_of_seed 1);
  for i = 0 to 3 do
    let x, y = Mobility.Geo.position geo i in
    check_close "corner x" 0. x;
    check_close "corner y" 0. y
  done

let test_waypoint_moves () =
  let geo = Mobility.Waypoint.create ~n:3 ~l:10. ~r:1. ~v_min:1. ~v_max:1. () in
  Mobility.Geo.reset geo (rng_of_seed 2);
  let before = Mobility.Geo.positions geo in
  for _ = 1 to 5 do
    Mobility.Geo.step geo
  done;
  let after = Mobility.Geo.positions geo in
  check_true "nodes moved" (before <> after)

let test_waypoint_validation () =
  check_true "v_min > v_max rejected"
    (try
       ignore (Mobility.Waypoint.create ~n:2 ~l:5. ~r:1. ~v_min:2. ~v_max:1. ());
       false
     with Invalid_argument _ -> true)

let test_marginal_density_properties () =
  let l = 4. in
  check_close ~eps:1e-12 "zero at borders" 0. (Mobility.Waypoint.marginal_density ~l 0.);
  check_close ~eps:1e-12 "zero outside" 0. (Mobility.Waypoint.marginal_density ~l 5.);
  (* Max at center: 6*(L/2)^2/L^3 = 3/(2L). *)
  check_close ~eps:1e-12 "peak at center" (1.5 /. l)
    (Mobility.Waypoint.marginal_density ~l (l /. 2.));
  (* Numeric integral over [0, L] is 1. *)
  let steps = 10_000 in
  let dx = l /. float_of_int steps in
  let integral = ref 0. in
  for i = 0 to steps - 1 do
    integral :=
      !integral +. (Mobility.Waypoint.marginal_density ~l ((float_of_int i +. 0.5) *. dx) *. dx)
  done;
  check_close ~eps:1e-6 "integrates to 1" 1. !integral

let test_product_density_center_bias () =
  let l = 6. in
  check_true "center denser than quarter point"
    (Mobility.Waypoint.product_density ~l 3. 3.
    > Mobility.Waypoint.product_density ~l 1. 1.)

let numeric_integral ~l ~grid f =
  let cell = l /. float_of_int grid in
  let acc = ref 0. in
  for ix = 0 to grid - 1 do
    for iy = 0 to grid - 1 do
      let x = (float_of_int ix +. 0.5) *. cell in
      let y = (float_of_int iy +. 0.5) *. cell in
      acc := !acc +. (f x y *. cell *. cell)
    done
  done;
  !acc

let test_exact_density_normalised () =
  let l = 7. in
  check_close ~eps:0.02 "square integrates to 1" 1.
    (numeric_integral ~l ~grid:64 (Mobility.Waypoint.exact_density ~l));
  check_close ~eps:0.02 "disk integrates to 1" 1.
    (numeric_integral ~l ~grid:64
       (Mobility.Waypoint.exact_density ~region:Mobility.Waypoint.Disk ~l))

let test_exact_density_support () =
  let l = 7. in
  check_close "zero outside the square" 0. (Mobility.Waypoint.exact_density ~l 8. 3.);
  check_close "zero at the corner" 0. (Mobility.Waypoint.exact_density ~l 0. 0.);
  check_close "zero outside the disk" 0.
    (Mobility.Waypoint.exact_density ~region:Mobility.Waypoint.Disk ~l 0.5 0.5);
  check_true "positive at the center" (Mobility.Waypoint.exact_density ~l 3.5 3.5 > 0.)

let test_exact_density_symmetry () =
  let l = 8. in
  let f = Mobility.Waypoint.exact_density ~l in
  check_close_rel ~rel:1e-6 "square mirror symmetry" (f 2. 3.) (f 6. 3.);
  check_close_rel ~rel:1e-6 "square transpose symmetry" (f 2. 3.) (f 3. 2.);
  let g = Mobility.Waypoint.exact_density ~region:Mobility.Waypoint.Disk ~l in
  (* Points at equal radius from the disk center have equal density. *)
  let r = 1.5 in
  check_close_rel ~rel:1e-3 "disk radial symmetry"
    (g (4. +. r) 4.)
    (g (4. +. (r /. sqrt 2.)) (4. +. (r /. sqrt 2.)))

let test_exact_beats_product () =
  (* Against a long-run empirical profile, the exact Palm density must
     have smaller TV than the product approximation. *)
  let l = 10. and bins = 5 in
  let geo = Mobility.Waypoint.create ~n:80 ~l ~r:1. ~v_min:1. ~v_max:1.25 () in
  let measured = Mobility.Density.estimate ~geo ~rng:(rng_of_seed 31) ~bins ~samples:400 () in
  let exact = Mobility.Density.of_function ~l ~bins (Mobility.Waypoint.exact_density ~l) in
  let product = Mobility.Density.of_function ~l ~bins (Mobility.Waypoint.product_density ~l) in
  let tv_exact = Mobility.Density.tv_between exact measured in
  let tv_product = Mobility.Density.tv_between product measured in
  check_true
    (Printf.sprintf "exact (%.4f) < product (%.4f)" tv_exact tv_product)
    (tv_exact < tv_product)

let test_exact_density_validation () =
  check_true "too few angular steps rejected"
    (try
       ignore (Mobility.Waypoint.exact_density ~angular_steps:2 ~l:5. 1. 1.);
       false
     with Invalid_argument _ -> true)

let test_waypoint_steady_in_bounds () =
  let l = 9. in
  let geo = Mobility.Waypoint.create ~init:Steady ~n:50 ~l ~r:1. ~v_min:0.5 ~v_max:2. () in
  Mobility.Geo.reset geo (rng_of_seed 20);
  for i = 0 to 49 do
    let x, y = Mobility.Geo.position geo i in
    check_true "steady positions in square" (x >= 0. && x <= l && y >= 0. && y <= l)
  done

let test_waypoint_steady_matches_long_run () =
  (* Occupancy sampled right after a Steady reset (no burn-in, fresh
     reset each sample) should match the long-run occupancy of a
     burned-in Uniform-start run. *)
  let l = 10. and bins = 4 in
  let n = 80 in
  let steady = Mobility.Waypoint.create ~init:Steady ~n ~l ~r:1. ~v_min:1. ~v_max:2. () in
  let mass = Array.make (bins * bins) 0. in
  let rng = rng_of_seed 21 in
  for s = 0 to 199 do
    Mobility.Geo.reset steady (Prng.Rng.substream rng s);
    for i = 0 to n - 1 do
      let x, y = Mobility.Geo.position steady i in
      let c = Mobility.Space.cell_index ~l ~bins x y in
      mass.(c) <- mass.(c) +. 1.
    done
  done;
  let total = Array.fold_left ( +. ) 0. mass in
  let steady_occ = Array.map (fun m -> m /. total) mass in
  let long_run =
    let geo = Mobility.Waypoint.create ~n ~l ~r:1. ~v_min:1. ~v_max:2. () in
    (Mobility.Density.estimate ~geo ~rng:(rng_of_seed 22) ~bins ~samples:400 ()).occupancy
  in
  check_true "steady init matches long-run occupancy"
    (Stats.Distance.total_variation steady_occ long_run < 0.05)

let test_waypoint_steady_speed_bias () =
  (* Steady-state speeds have density ~ 1/v: mean ln-speed is the
     midpoint of [ln v_min, ln v_max]. *)
  (* A huge square makes mid-step arrivals (which displace less than
     one full speed) negligible, so displacements sample the speeds. *)
  let v_min = 1. and v_max = 4. in
  let geo =
    Mobility.Waypoint.create ~init:Steady ~n:4000 ~l:1000. ~r:1. ~v_min ~v_max ()
  in
  Mobility.Geo.reset geo (rng_of_seed 23);
  (* Advance one step and measure displacements = current speeds for
     nodes not arriving this step. *)
  let before = Mobility.Geo.positions geo in
  Mobility.Geo.step geo;
  let s = Stats.Summary.create () in
  Array.iteri
    (fun i (x, y) ->
      let px, py = before.(i) in
      let d = sqrt (Mobility.Space.dist2 x y px py) in
      if d > 0.99 *. v_min then Stats.Summary.add s (log d))
    (Mobility.Geo.positions geo);
  check_close ~eps:0.05 "mean log speed is log-midpoint"
    ((log v_min +. log v_max) /. 2.)
    (Stats.Summary.mean s)

let test_waypoint_pause_slows_nodes () =
  (* With a large pause, many nodes should be stationary on a given
     step; with pause = 0 (same seed), all nodes move every step. *)
  let count_movers pause =
    let geo = Mobility.Waypoint.create ~pause ~n:200 ~l:6. ~r:1. ~v_min:1. ~v_max:1. () in
    Mobility.Geo.reset geo (rng_of_seed 40);
    (* Let trips end so pauses engage. *)
    for _ = 1 to 30 do
      Mobility.Geo.step geo
    done;
    let before = Mobility.Geo.positions geo in
    Mobility.Geo.step geo;
    let moved = ref 0 in
    Array.iteri (fun i p -> if p <> before.(i) then incr moved) (Mobility.Geo.positions geo);
    !moved
  in
  Alcotest.(check int) "pause 0: everyone moves" 200 (count_movers 0);
  check_true "pause 20: many rest" (count_movers 20 < 150)

let test_waypoint_pause_validation () =
  check_true "negative pause rejected"
    (try
       ignore (Mobility.Waypoint.create ~pause:(-1) ~n:2 ~l:5. ~r:1. ~v_min:1. ~v_max:1. ());
       false
     with Invalid_argument _ -> true)

let test_geo_dynamic_connection_rule () =
  (* Two nodes in a tiny square with huge radius must be connected. *)
  let dyn = Mobility.Waypoint.dynamic ~n:2 ~l:2. ~r:5. ~v_min:0.1 ~v_max:0.1 () in
  Core.Dynamic.reset dyn (rng_of_seed 3);
  Alcotest.(check int) "connected" 1 (Core.Dynamic.edge_count dyn)

let test_geo_edges_cached_per_step () =
  let dyn = Mobility.Waypoint.dynamic ~n:20 ~l:5. ~r:1.5 ~v_min:1. ~v_max:1. () in
  Core.Dynamic.reset dyn (rng_of_seed 4);
  let a = Core.Dynamic.snapshot_edges dyn in
  let b = Core.Dynamic.snapshot_edges dyn in
  Alcotest.(check (list (pair int int))) "stable within a step" a b

(* --- Random walk model --- *)

let test_rw_positions_integral_and_adjacent () =
  let m = 6 in
  let geo = Mobility.Random_walk_model.create ~n:5 ~m ~r:1. () in
  Mobility.Geo.reset geo (rng_of_seed 5);
  let prev = Array.init 5 (Mobility.Random_walk_model.grid_point geo) in
  for _ = 1 to 40 do
    Mobility.Geo.step geo;
    for i = 0 to 4 do
      let x, y = Mobility.Random_walk_model.grid_point geo i in
      check_true "in grid" (x >= 0 && x < m && y >= 0 && y < m);
      let px, py = prev.(i) in
      Alcotest.(check int) "one hop" 1 (abs (x - px) + abs (y - py));
      prev.(i) <- (x, y)
    done
  done

let test_rw_hold () =
  let geo = Mobility.Random_walk_model.create ~hold:0.99 ~n:3 ~m:5 ~r:1. () in
  Mobility.Geo.reset geo (rng_of_seed 6);
  let before = Mobility.Geo.positions geo in
  Mobility.Geo.step geo;
  (* With hold = 0.99 most nodes should not move in one step. *)
  let moved = ref 0 in
  Array.iteri (fun i p -> if p <> before.(i) then incr moved) (Mobility.Geo.positions geo);
  check_true "mostly held" (!moved <= 1)

let test_rw_corner_init () =
  let geo = Mobility.Random_walk_model.create ~init:Corner ~n:3 ~m:5 ~r:1. () in
  Mobility.Geo.reset geo (rng_of_seed 7);
  Array.iter
    (fun (x, y) ->
      check_close "corner x" 0. x;
      check_close "corner y" 0. y)
    (Mobility.Geo.positions geo)

(* --- Manhattan --- *)

let q_manhattan_axis_aligned =
  qtest ~count:30 "manhattan moves are L1 and in bounds"
    QCheck2.Gen.(pair seed_gen (int_range 1 6))
    (fun (seed, n) ->
      let l = 8. and v = 1.2 in
      let geo = Mobility.Manhattan.create ~n ~l ~r:1. ~v_min:v ~v_max:v () in
      Mobility.Geo.reset geo (Prng.Rng.of_seed seed);
      let ok = ref true in
      let prev = Array.init n (Mobility.Geo.position geo) in
      for _ = 1 to 50 do
        Mobility.Geo.step geo;
        for i = 0 to n - 1 do
          let x, y = Mobility.Geo.position geo i in
          let px, py = prev.(i) in
          (* L1 displacement bounded by the speed budget. *)
          if abs_float (x -. px) +. abs_float (y -. py) > v +. 1e-9 then ok := false;
          if not (x >= 0. && x <= l && y >= 0. && y <= l) then ok := false;
          prev.(i) <- (x, y)
        done
      done;
      !ok)

(* --- Direction --- *)

let q_direction_in_bounds =
  qtest ~count:30 "random direction stays in bounds"
    QCheck2.Gen.(pair seed_gen (int_range 1 6))
    (fun (seed, n) ->
      let l = 8. in
      let geo = Mobility.Direction.create ~n ~l ~r:1. ~v:0.9 ~turn_every:5. () in
      Mobility.Geo.reset geo (Prng.Rng.of_seed seed);
      let ok = ref true in
      for _ = 1 to 100 do
        Mobility.Geo.step geo;
        for i = 0 to n - 1 do
          let x, y = Mobility.Geo.position geo i in
          if not (x >= 0. && x <= l && y >= 0. && y <= l) then ok := false
        done
      done;
      !ok)

let test_direction_displacement () =
  let v = 0.7 in
  let geo = Mobility.Direction.create ~n:4 ~l:20. ~r:1. ~v ~turn_every:6. () in
  Mobility.Geo.reset geo (rng_of_seed 8);
  let prev = ref (Mobility.Geo.positions geo) in
  for _ = 1 to 30 do
    Mobility.Geo.step geo;
    let now = Mobility.Geo.positions geo in
    Array.iteri
      (fun i (x, y) ->
        let px, py = !prev.(i) in
        check_true "displacement <= v"
          (Mobility.Space.dist2 x y px py <= (v *. v) +. 1e-9))
      now;
    prev := now
  done

(* --- Density --- *)

let test_density_of_function_uniform () =
  let p = Mobility.Density.of_function ~l:4. ~bins:8 (fun _ _ -> 1.) in
  let u = Mobility.Density.uniformity p in
  check_close ~eps:1e-9 "delta 1" 1. u.delta;
  check_close ~eps:1e-9 "lambda 1" 1. u.lambda;
  check_close ~eps:1e-9 "no bias" 1. u.center_to_corner;
  check_close ~eps:1e-9 "occupancy sums to 1" 1.
    (Array.fold_left ( +. ) 0. p.occupancy)

let test_density_estimate_waypoint () =
  let geo = Mobility.Waypoint.create ~n:60 ~l:8. ~r:1. ~v_min:1. ~v_max:1.25 () in
  let p =
    Mobility.Density.estimate ~geo ~rng:(rng_of_seed 9) ~bins:4 ~samples:300 ~gap:5 ()
  in
  check_close ~eps:1e-9 "occupancy normalised" 1. (Array.fold_left ( +. ) 0. p.occupancy);
  let u = Mobility.Density.uniformity p in
  check_true "center bias present" (u.center_to_corner > 1.5);
  check_true "delta moderate" (u.delta > 1. && u.delta < 4.)

let test_density_tv_between () =
  let a = Mobility.Density.of_function ~l:4. ~bins:4 (fun _ _ -> 1.) in
  let b = Mobility.Density.of_function ~l:4. ~bins:4 (Mobility.Waypoint.product_density ~l:4.) in
  let d = Mobility.Density.tv_between a b in
  check_true "tv in (0,1)" (d > 0. && d < 1.);
  check_close ~eps:1e-12 "tv self" 0. (Mobility.Density.tv_between a a)

let test_density_bins_mismatch () =
  let a = Mobility.Density.of_function ~l:4. ~bins:4 (fun _ _ -> 1.) in
  let b = Mobility.Density.of_function ~l:4. ~bins:8 (fun _ _ -> 1.) in
  check_true "bin mismatch raises"
    (try
       ignore (Mobility.Density.tv_between a b);
       false
     with Invalid_argument _ -> true)

(* --- Disk region --- *)

let q_disk_positions_inside =
  qtest ~count:20 "disk waypoint stays in the disk"
    QCheck2.Gen.(pair seed_gen (int_range 1 8))
    (fun (seed, n) ->
      let l = 10. in
      let geo =
        Mobility.Waypoint.create ~region:Mobility.Waypoint.Disk ~n ~l ~r:1. ~v_min:1.
          ~v_max:1.5 ()
      in
      Mobility.Geo.reset geo (Prng.Rng.of_seed seed);
      let ok = ref true in
      for _ = 1 to 60 do
        Mobility.Geo.step geo;
        for i = 0 to n - 1 do
          let x, y = Mobility.Geo.position geo i in
          (* Allow a whisker of floating-point slack on the boundary. *)
          if Mobility.Space.dist2 x y 5. 5. > 25. +. 1e-9 then ok := false
        done
      done;
      !ok)

let test_region_contains () =
  let l = 10. in
  check_true "centre in disk" (Mobility.Waypoint.region_contains Disk ~l 5. 5.);
  check_true "corner not in disk" (not (Mobility.Waypoint.region_contains Disk ~l 0.5 0.5));
  check_true "boundary point in disk" (Mobility.Waypoint.region_contains Disk ~l 0. 5.);
  check_true "corner in square" (Mobility.Waypoint.region_contains Square ~l 0. 0.);
  check_true "outside square" (not (Mobility.Waypoint.region_contains Square ~l 11. 5.))

let test_disk_corner_init () =
  let geo =
    Mobility.Waypoint.create ~init:Corner ~region:Mobility.Waypoint.Disk ~n:3 ~l:10. ~r:1.
      ~v_min:1. ~v_max:1. ()
  in
  Mobility.Geo.reset geo (rng_of_seed 30);
  Array.iter
    (fun (x, y) ->
      check_close "boundary x" 0. x;
      check_close "boundary y" 5. y)
    (Mobility.Geo.positions geo)

let test_uniformity_mask () =
  let l = 10. in
  let p = Mobility.Density.of_function ~l ~bins:10 (fun x y ->
      if Mobility.Waypoint.region_contains Disk ~l x y then 1. else 0.)
  in
  (* Unmasked, the zero cells outside the disk wreck lambda; masked,
     the profile is perfectly uniform on the disk. *)
  let unmasked = Mobility.Density.uniformity p in
  let masked =
    Mobility.Density.uniformity ~mask:(Mobility.Waypoint.region_contains Disk ~l) p
  in
  check_true "unmasked lambda depressed" (unmasked.lambda < 0.9);
  check_close ~eps:1e-9 "masked delta 1" 1. masked.delta;
  check_close ~eps:1e-9 "masked lambda 1" 1. masked.lambda

let test_uniformity_mask_rejects_all () =
  let p = Mobility.Density.of_function ~l:4. ~bins:4 (fun _ _ -> 1.) in
  check_true "empty mask raises"
    (try
       ignore (Mobility.Density.uniformity ~mask:(fun _ _ -> false) p);
       false
     with Invalid_argument _ -> true)

let test_density_render () =
  let p = Mobility.Density.of_function ~l:4. ~bins:4 (fun x _ -> x) in
  let s = Mobility.Density.render p in
  Alcotest.(check int) "4 lines of 5 chars" (4 * 5) (String.length s);
  (* Mass grows left to right: the right edge carries the darkest
     shade ('@'), the left edge something strictly lighter. *)
  check_true "dense right edge" (s.[3] = '@');
  check_true "left edge lighter" (s.[0] = '.' )

(* --- Discrete waypoint (exact node-MEG) --- *)

let test_dw_build_validation () =
  check_true "m too small rejected"
    (try
       ignore (Mobility.Discrete_waypoint.build ~m:1 ~r:1.);
       false
     with Invalid_argument _ -> true);
  check_true "m too large rejected"
    (try
       ignore (Mobility.Discrete_waypoint.build ~m:11 ~r:1.);
       false
     with Invalid_argument _ -> true)

let test_dw_chain_stochastic () =
  let dw = Mobility.Discrete_waypoint.build ~m:4 ~r:1. in
  Alcotest.(check int) "m^4 states" 256 (Mobility.Discrete_waypoint.n_states dw);
  check_true "stochastic" (Markov.Chain.is_stochastic (Mobility.Discrete_waypoint.chain dw))

let test_dw_positional_distribution () =
  let dw = Mobility.Discrete_waypoint.build ~m:5 ~r:1. in
  let pos = Mobility.Discrete_waypoint.stationary_position_distribution dw in
  check_close ~eps:1e-8 "positional sums to 1" 1. (Array.fold_left ( +. ) 0. pos);
  (* Center bias and the grid's 4-fold symmetry. *)
  let at x y = pos.((x * 5) + y) in
  check_true "center heavier than corner" (at 2 2 > at 0 0);
  check_close ~eps:1e-6 "corner symmetry" (at 0 0) (at 4 4);
  check_close ~eps:1e-6 "corner symmetry 2" (at 0 4) (at 4 0);
  check_close ~eps:1e-6 "edge symmetry" (at 0 2) (at 2 0)

let test_dw_trajectory_is_straight () =
  (* From any non-arrived state the chain deterministically reduces the
     Chebyshev distance to the destination by exactly 1. *)
  let m = 5 in
  let dw = Mobility.Discrete_waypoint.build ~m ~r:1. in
  let chain = Mobility.Discrete_waypoint.chain dw in
  let points = m * m in
  for s = 0 to Mobility.Discrete_waypoint.n_states dw - 1 do
    let current = s / points and dest = s mod points in
    if current <> dest then begin
      let row = Markov.Chain.row chain s in
      Alcotest.(check int) "deterministic move" 1 (Array.length row);
      let s', _ = row.(0) in
      let cheb a b =
        let ax, ay = (a / m, a mod m) and bx, by = (b / m, b mod m) in
        max (abs (ax - bx)) (abs (ay - by))
      in
      Alcotest.(check int) "one king-step closer"
        (cheb current dest - 1)
        (cheb (s' / points) dest);
      Alcotest.(check int) "destination unchanged" dest (s' mod points)
    end
  done

let test_dw_eta_at_least_one () =
  (* eta = E[q^2]/E[q]^2 >= 1 by Cauchy-Schwarz; also small here. *)
  let dw = Mobility.Discrete_waypoint.build ~m:4 ~r:1.5 in
  let eta = Mobility.Discrete_waypoint.eta dw in
  check_true "eta >= 1" (eta >= 1. -. 1e-9);
  check_true "eta small" (eta < 3.);
  let p = Mobility.Discrete_waypoint.p_nm dw in
  check_true "P_NM is a probability" (p > 0. && p < 1.)

let test_dw_connect_symmetric () =
  let dw = Mobility.Discrete_waypoint.build ~m:3 ~r:1. in
  let n = Mobility.Discrete_waypoint.n_states dw in
  let connect = Mobility.Discrete_waypoint.connect dw in
  for _ = 1 to 200 do
    let rng = rng_of_seed 50 in
    let a = Prng.Rng.int rng n and b = Prng.Rng.int rng n in
    Alcotest.(check bool) "symmetric" (connect a b) (connect b a)
  done;
  (* States sharing a position are always connected (distance 0). *)
  check_true "co-located states connect" (connect 0 1)

let test_dw_positional_matches_simulation () =
  (* The exact positional distribution must agree with a long empirical
     run of the same chain. *)
  let m = 4 in
  let dw = Mobility.Discrete_waypoint.build ~m ~r:1. in
  let chain = Mobility.Discrete_waypoint.chain dw in
  let exact = Mobility.Discrete_waypoint.stationary_position_distribution dw in
  let counts = Array.make (m * m) 0. in
  let rng = rng_of_seed 51 in
  let state = ref 0 in
  let steps = 200_000 in
  for _ = 1 to steps do
    state := Markov.Chain.step chain rng !state;
    let x, y = Mobility.Discrete_waypoint.state_position dw !state in
    counts.((x * m) + y) <- counts.((x * m) + y) +. 1.
  done;
  let empirical = Array.map (fun c -> c /. float_of_int steps) counts in
  check_true "TV(exact, empirical) small"
    (Stats.Distance.total_variation exact empirical < 0.02)

(* --- Mixing --- *)

let test_mixing_curve_decreases () =
  let make () =
    Mobility.Waypoint.create ~init:Corner ~n:1 ~l:6. ~r:1. ~v_min:1. ~v_max:1.25 ()
  in
  let curve =
    Mobility.Mixing.measure ~make ~rng:(rng_of_seed 10) ~bins:4 ~replicas:400
      ~checkpoints:[ 0; 3; 12; 30 ] ()
  in
  let tv0 = List.assoc 0 curve.checkpoints in
  let tv30 = List.assoc 30 curve.checkpoints in
  check_true "tv decreases from corner start" (tv30 < tv0);
  check_true "tv at 0 is large" (tv0 > 0.5);
  match curve.t_mix with
  | Some t -> check_true "mixing detected within window" (t <= 30)
  | None -> Alcotest.fail "expected mixing within 30 steps on a 6x6 square"

let suites =
  [
    ( "mobility.space",
      [
        Alcotest.test_case "r=0 coincident" `Quick test_close_pairs_r0;
        Alcotest.test_case "cell index bounds" `Quick test_cell_index_bounds;
        Alcotest.test_case "clamp" `Quick test_clamp;
        q_close_pairs_bruteforce;
      ] );
    ( "mobility.waypoint",
      [
        Alcotest.test_case "corner init" `Quick test_waypoint_corner_init;
        Alcotest.test_case "movement" `Quick test_waypoint_moves;
        Alcotest.test_case "validation" `Quick test_waypoint_validation;
        Alcotest.test_case "marginal density" `Quick test_marginal_density_properties;
        Alcotest.test_case "center bias" `Quick test_product_density_center_bias;
        Alcotest.test_case "exact density normalised" `Quick test_exact_density_normalised;
        Alcotest.test_case "exact density support" `Quick test_exact_density_support;
        Alcotest.test_case "exact density symmetry" `Quick test_exact_density_symmetry;
        Alcotest.test_case "exact beats product" `Quick test_exact_beats_product;
        Alcotest.test_case "exact density validation" `Quick test_exact_density_validation;
        Alcotest.test_case "connection rule" `Quick test_geo_dynamic_connection_rule;
        Alcotest.test_case "edge cache per step" `Quick test_geo_edges_cached_per_step;
        Alcotest.test_case "steady init in bounds" `Quick test_waypoint_steady_in_bounds;
        Alcotest.test_case "steady init matches long run" `Quick
          test_waypoint_steady_matches_long_run;
        Alcotest.test_case "steady init speed bias" `Quick test_waypoint_steady_speed_bias;
        Alcotest.test_case "pause slows nodes" `Quick test_waypoint_pause_slows_nodes;
        Alcotest.test_case "pause validation" `Quick test_waypoint_pause_validation;
        q_waypoint_in_bounds;
        q_waypoint_speed_respected;
      ] );
    ( "mobility.random_walk",
      [
        Alcotest.test_case "one-hop integral moves" `Quick test_rw_positions_integral_and_adjacent;
        Alcotest.test_case "hold probability" `Quick test_rw_hold;
        Alcotest.test_case "corner init" `Quick test_rw_corner_init;
      ] );
    ( "mobility.manhattan", [ q_manhattan_axis_aligned ] );
    ( "mobility.direction",
      [
        Alcotest.test_case "displacement bound" `Quick test_direction_displacement;
        q_direction_in_bounds;
      ] );
    ( "mobility.density",
      [
        Alcotest.test_case "uniform function" `Quick test_density_of_function_uniform;
        Alcotest.test_case "waypoint estimate" `Quick test_density_estimate_waypoint;
        Alcotest.test_case "tv between" `Quick test_density_tv_between;
        Alcotest.test_case "bins mismatch" `Quick test_density_bins_mismatch;
        Alcotest.test_case "uniformity mask" `Quick test_uniformity_mask;
        Alcotest.test_case "mask rejects all" `Quick test_uniformity_mask_rejects_all;
        Alcotest.test_case "ascii render" `Quick test_density_render;
      ] );
    ( "mobility.disk",
      [
        Alcotest.test_case "region_contains" `Quick test_region_contains;
        Alcotest.test_case "disk corner init" `Quick test_disk_corner_init;
        q_disk_positions_inside;
      ] );
    ( "mobility.discrete_waypoint",
      [
        Alcotest.test_case "build validation" `Quick test_dw_build_validation;
        Alcotest.test_case "chain stochastic" `Quick test_dw_chain_stochastic;
        Alcotest.test_case "positional distribution" `Quick test_dw_positional_distribution;
        Alcotest.test_case "straight trajectories" `Quick test_dw_trajectory_is_straight;
        Alcotest.test_case "eta >= 1 and small" `Quick test_dw_eta_at_least_one;
        Alcotest.test_case "connect symmetric" `Quick test_dw_connect_symmetric;
        Alcotest.test_case "exact matches simulation" `Quick
          test_dw_positional_matches_simulation;
      ] );
    ( "mobility.mixing",
      [ Alcotest.test_case "curve decreases" `Quick test_mixing_curve_decreases ] );
  ]
