open Helpers

(* Cross-model integration matrix: every dynamic-graph model in the
   library must satisfy the same contract — valid snapshots, seed
   determinism, and complete flooding within a generous cap. Running the
   whole matrix catches regressions in any one model's wiring. *)

let models : (string * int * (unit -> Core.Dynamic.t)) list =
  let channel_chain k =
    let eps = 0.2 in
    let jump = eps /. float_of_int k in
    Markov.Chain.of_rows
      (Array.init k (fun s ->
           Array.append
             [| ((s + 1) mod k, 1. -. eps) |]
             (Array.init k (fun t -> (t, jump)))))
  in
  [
    ("edge-MEG classic", 48, fun () -> Edge_meg.Classic.make ~n:48 ~p:(3. /. 48.) ~q:0.4 ());
    ( "edge-MEG general 4-state",
      32,
      fun () ->
        let chain =
          Markov.Chain.of_rows
            (Array.init 4 (fun s -> [| (s, 0.7); ((s + 1) mod 4, 0.3) |]))
        in
        Edge_meg.General.make ~n:32 ~chain ~chi:(fun s -> s >= 2) () );
    ( "edge-MEG opportunistic",
      32,
      fun () ->
        Edge_meg.Opportunistic.make ~n:32
          {
            Edge_meg.Opportunistic.off_short = 2.;
            off_long = 10.;
            off_mix = 0.6;
            on_short = 1.;
            on_long = 4.;
            on_mix = 0.5;
          } );
    ( "node-MEG channels",
      40,
      fun () ->
        Node_meg.Model.make ~n:40 ~chain:(channel_chain 8)
          ~connect:(fun x y ->
            let d = abs (x - y) in
            min d (8 - d) <= 1)
          () );
    ( "waypoint square",
      40,
      fun () -> Mobility.Waypoint.dynamic ~n:40 ~l:6. ~r:1.5 ~v_min:1. ~v_max:1.25 () );
    ( "waypoint disk",
      40,
      fun () ->
        Mobility.Waypoint.dynamic ~region:Mobility.Waypoint.Disk ~n:40 ~l:7. ~r:1.5
          ~v_min:1. ~v_max:1.25 () );
    ( "waypoint steady+pause",
      40,
      fun () ->
        Mobility.Waypoint.dynamic ~init:Mobility.Waypoint.Steady ~pause:3 ~n:40 ~l:6.
          ~r:1.5 ~v_min:1. ~v_max:1.25 () );
    ( "manhattan",
      40,
      fun () -> Mobility.Manhattan.dynamic ~n:40 ~l:6. ~r:1.5 ~v_min:1. ~v_max:1.25 () );
    ( "random direction",
      40,
      fun () -> Mobility.Direction.dynamic ~n:40 ~l:6. ~r:1.5 ~v:1. ~turn_every:6. () );
    ( "random walk on grid (geometric)",
      40,
      fun () -> Mobility.Random_walk_model.dynamic ~n:40 ~m:8 ~r:1.5 () );
    ( "random paths, grid family",
      36,
      fun () ->
        Random_path.Rp_model.make ~hold:0.5 ~n:36
          ~family:(Random_path.Family.grid_shortest ~rows:6 ~cols:6)
          () );
    ( "random paths, BFS family on hypercube",
      32,
      fun () ->
        Random_path.Rp_model.make ~hold:0.5 ~n:32
          ~family:(Random_path.Family.shortest_paths (Graph.Builders.hypercube 4))
          () );
    ( "random walk on augmented grid",
      36,
      fun () ->
        Random_path.Rp_model.random_walk ~n:36
          (Graph.Builders.augmented_grid ~rows:6 ~cols:6 ~k:2) );
    ("random matching", 32, fun () -> Adversarial.Model.random_matching ~rng_hint:() ~n:32);
    ("rotating star", 24, fun () -> Adversarial.Model.rotating_star ~n:24);
    ("rotating matching", 32, fun () -> Adversarial.Model.rotating_matching ~n:32);
    ( "discrete waypoint node-MEG",
      24,
      fun () -> Mobility.Discrete_waypoint.(dynamic ~n:24 (build ~m:4 ~r:1.5)) );
    ( "filtered waypoint (virtual graph)",
      40,
      fun () ->
        Core.Dynamic.filter_edges ~p_keep:0.7
          (Mobility.Waypoint.dynamic ~n:40 ~l:6. ~r:1.5 ~v_min:1. ~v_max:1.25 ()) );
    ( "union of MEG and backbone",
      32,
      fun () ->
        Core.Dynamic.union
          (Edge_meg.Classic.make ~n:32 ~p:(2. /. 32.) ~q:0.4 ())
          (Core.Dynamic.of_static (Graph.Builders.cycle 32)) );
  ]

let snapshots_valid name n make () =
  let dyn = make () in
  Alcotest.(check int) (name ^ " node count") n (Core.Dynamic.n dyn);
  Core.Dynamic.reset dyn (rng_of_seed 1);
  for _ = 1 to 15 do
    Core.Dynamic.iter_edges dyn (fun u v ->
        check_true (name ^ " endpoints in range") (u >= 0 && u < n && v >= 0 && v < n);
        check_true (name ^ " no self loop") (u <> v));
    Core.Dynamic.step dyn
  done

let deterministic name make () =
  let run () =
    let dyn = make () in
    Core.Dynamic.reset dyn (rng_of_seed 2);
    let acc = ref [] in
    for _ = 1 to 10 do
      acc := Core.Dynamic.snapshot_edges dyn :: !acc;
      Core.Dynamic.step dyn
    done;
    !acc
  in
  check_true (name ^ " bit-reproducible") (run () = run ())

let floods name n make () =
  let cap = 5_000 + (400 * n) in
  match Core.Flooding.time ~cap ~rng:(rng_of_seed 3) ~source:0 (make ()) with
  | Some t -> check_true (name ^ " floods within cap") (t <= cap)
  | None -> Alcotest.failf "%s did not flood within %d steps" name cap

let suites =
  [
    ( "integration.snapshots",
      List.map
        (fun (name, n, make) -> Alcotest.test_case name `Quick (snapshots_valid name n make))
        models );
    ( "integration.determinism",
      List.map
        (fun (name, _, make) -> Alcotest.test_case name `Quick (deterministic name make))
        models );
    ( "integration.flooding",
      List.map (fun (name, n, make) -> Alcotest.test_case name `Quick (floods name n make)) models
    );
  ]
