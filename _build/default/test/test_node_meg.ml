open Helpers

let uniform_cycle k eps =
  let jump = eps /. float_of_int k in
  Markov.Chain.of_rows
    (Array.init k (fun s ->
         Array.append
           [| ((s + 1) mod k, 1. -. eps) |]
           (Array.init k (fun t -> (t, jump)))))

let test_symmetry_enforced () =
  let chain = uniform_cycle 4 0.2 in
  check_true "asymmetric map rejected"
    (try
       ignore (Node_meg.Model.make ~n:5 ~chain ~connect:(fun x y -> x < y) ());
       false
     with Invalid_argument _ -> true)

let test_q_of_state_complete () =
  let chain = uniform_cycle 4 0.2 in
  let q = Node_meg.Model.q_of_state ~chain ~connect:(fun _ _ -> true) in
  Array.iter (fun v -> check_close ~eps:1e-9 "q(x)=1 for complete connect" 1. v) q

let test_p_nm_same_state () =
  (* Uniform stationary over k states, connect iff same state:
     P_NM = 1/k, P_NM2 = 1/k^2 => eta = 1. *)
  let k = 8 in
  let chain = uniform_cycle k 0.2 in
  let connect x y = x = y in
  check_close ~eps:1e-6 "P_NM = 1/k" (1. /. float_of_int k)
    (Node_meg.Model.p_nm ~chain ~connect);
  check_close ~eps:1e-6 "P_NM2 = 1/k^2"
    (1. /. float_of_int (k * k))
    (Node_meg.Model.p_nm2 ~chain ~connect);
  check_close ~eps:1e-5 "eta = 1" 1. (Node_meg.Model.eta ~chain ~connect)

let test_eta_skewed () =
  (* A chain strongly biased to state 0, connect iff both in state 0:
     q(x) = pi(0) if x = 0 else 0; P = pi0^2, P2 = pi0^3,
     eta = pi0^3 / pi0^4 = 1/pi0 > 1. *)
  let chain =
    Markov.Chain.of_rows [| [| (0, 0.9); (1, 0.1) |]; [| (0, 0.9); (1, 0.1) |] |]
  in
  let connect x y = x = 0 && y = 0 in
  let pi0 = 0.9 in
  check_close ~eps:1e-6 "P_NM" (pi0 ** 2.) (Node_meg.Model.p_nm ~chain ~connect);
  check_close ~eps:1e-5 "eta = 1/pi0" (1. /. pi0) (Node_meg.Model.eta ~chain ~connect)

let test_eta_zero_p_rejected () =
  let chain = uniform_cycle 3 0.2 in
  check_true "eta with P=0 raises"
    (try
       ignore (Node_meg.Model.eta ~chain ~connect:(fun _ _ -> false));
       false
     with Invalid_argument _ -> true)

let brute_force_edges states connect =
  let n = Array.length states in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if connect states.(u) states.(v) then acc := (u, v) :: !acc
    done
  done;
  List.sort compare !acc

let q_iter_edges_matches_bruteforce =
  qtest ~count:50 "bucketed edges = brute force"
    QCheck2.Gen.(triple seed_gen (int_range 2 25) (int_range 2 6))
    (fun (seed, n, k) ->
      let chain = uniform_cycle k 0.3 in
      let connect x y =
        let d = abs (x - y) in
        min d (k - d) <= 1
      in
      let dyn, observe = Node_meg.Model.make_observable ~n ~chain ~connect () in
      Core.Dynamic.reset dyn (Prng.Rng.of_seed seed);
      Core.Dynamic.step dyn;
      let states = observe () in
      Core.Dynamic.snapshot_edges dyn = brute_force_edges states connect)

let test_states_in_range () =
  let k = 5 in
  let chain = uniform_cycle k 0.3 in
  let dyn, observe =
    Node_meg.Model.make_observable ~n:10 ~chain ~connect:(fun x y -> x = y) ()
  in
  Core.Dynamic.reset dyn (rng_of_seed 1);
  for _ = 1 to 20 do
    Core.Dynamic.step dyn;
    Array.iter (fun s -> check_true "state in range" (s >= 0 && s < k)) (observe ())
  done

let test_all_in_init () =
  let chain = uniform_cycle 6 0.3 in
  let dyn, observe =
    Node_meg.Model.make_observable ~init:(All_in 2) ~n:8 ~chain ~connect:(fun x y -> x = y) ()
  in
  Core.Dynamic.reset dyn (rng_of_seed 2);
  Array.iter (fun s -> Alcotest.(check int) "all in state 2" 2 s) (observe ());
  (* Same state + same-state connect = complete snapshot. *)
  Alcotest.(check int) "complete clique" 28 (Core.Dynamic.edge_count dyn)

let test_exchangeability () =
  (* Fact 2: the empirical edge probability is the same for any fixed
     pair. Compare two disjoint pairs over many snapshots. *)
  let k = 6 in
  let chain = uniform_cycle k 0.3 in
  let connect x y =
    let d = abs (x - y) in
    min d (k - d) <= 1
  in
  let dyn = Node_meg.Model.make ~n:12 ~chain ~connect () in
  Core.Dynamic.reset dyn (rng_of_seed 3);
  let hits01 = ref 0 and hits89 = ref 0 in
  let snaps = 4000 in
  for _ = 1 to snaps do
    Core.Dynamic.step dyn;
    let adj = Core.Dynamic.adjacency dyn in
    if List.mem 1 adj.(0) then incr hits01;
    if List.mem 9 adj.(8) then incr hits89
  done;
  let p01 = float_of_int !hits01 /. float_of_int snaps in
  let p89 = float_of_int !hits89 /. float_of_int snaps in
  let exact = Node_meg.Model.p_nm ~chain ~connect in
  check_close_rel ~rel:0.15 "pair (0,1) matches exact P_NM" exact p01;
  check_close_rel ~rel:0.15 "pair (8,9) matches exact P_NM" exact p89

let test_theorem3_bound_positive () =
  let chain = uniform_cycle 8 0.25 in
  let connect x y = x = y in
  let b = Node_meg.Model.theorem3_bound ~chain ~connect ~n:64 () in
  check_true "bound finite positive" (Float.is_finite b && b > 0.);
  let b2 = Node_meg.Model.theorem3_bound ~chain ~connect ~n:64 ~t_mix:10. () in
  check_true "explicit t_mix scales" (b2 > 0.)

let suites =
  [
    ( "node_meg",
      [
        Alcotest.test_case "symmetry enforced" `Quick test_symmetry_enforced;
        Alcotest.test_case "q_of_state complete" `Quick test_q_of_state_complete;
        Alcotest.test_case "P_NM same-state" `Quick test_p_nm_same_state;
        Alcotest.test_case "eta skewed chain" `Quick test_eta_skewed;
        Alcotest.test_case "eta validation" `Quick test_eta_zero_p_rejected;
        Alcotest.test_case "states in range" `Quick test_states_in_range;
        Alcotest.test_case "All_in init" `Quick test_all_in_init;
        Alcotest.test_case "exchangeability (Fact 2)" `Quick test_exchangeability;
        Alcotest.test_case "theorem 3 bound" `Quick test_theorem3_bound_positive;
        q_iter_edges_matches_bruteforce;
      ] );
  ]
