open Helpers

(* A random stochastic chain over [len] states derived from a seed. *)
let random_chain seed len =
  let rng = Prng.Rng.of_seed seed in
  Markov.Chain.of_rows
    (Array.init len (fun _ ->
         Array.init len (fun t -> (t, 0.05 +. Prng.Rng.unit_float rng))))

(* --- Chain --- *)

let test_of_dense () =
  let c = Markov.Chain.of_dense [| [| 0.5; 0.5 |]; [| 0.25; 0.75 |] |] in
  Alcotest.(check int) "states" 2 (Markov.Chain.n_states c);
  check_close ~eps:1e-12 "prob" 0.25 (Markov.Chain.prob c 1 0);
  check_true "stochastic" (Markov.Chain.is_stochastic c)

let test_of_rows_normalises () =
  let c = Markov.Chain.of_rows [| [| (0, 2.); (1, 6.) |]; [| (0, 1.) |] |] in
  check_close ~eps:1e-12 "normalised" 0.25 (Markov.Chain.prob c 0 0);
  check_true "stochastic" (Markov.Chain.is_stochastic c)

let test_of_rows_errors () =
  check_true "empty row rejected"
    (try
       ignore (Markov.Chain.of_rows [| [||] |]);
       false
     with Invalid_argument _ -> true);
  check_true "bad target rejected"
    (try
       ignore (Markov.Chain.of_rows [| [| (5, 1.) |] |]);
       false
     with Invalid_argument _ -> true);
  check_true "negative weight rejected"
    (try
       ignore (Markov.Chain.of_rows [| [| (0, -1.); (0, 2.) |] |]);
       false
     with Invalid_argument _ -> true)

let test_push_preserves_mass () =
  let c = random_chain 1 5 in
  let mu = prob_vector 2 5 in
  let nu = Markov.Chain.push c mu in
  check_close ~eps:1e-9 "mass preserved" 1. (Array.fold_left ( +. ) 0. nu)

let q_stationary_is_fixpoint =
  qtest ~count:50 "stationary is a fixpoint of push"
    QCheck2.Gen.(pair seed_gen (int_range 2 10))
    (fun (seed, len) ->
      let c = random_chain seed len in
      let pi = Markov.Chain.stationary c in
      Stats.Distance.total_variation (Markov.Chain.push c pi) pi < 1e-8)

let test_stationary_two_state () =
  let p = 0.3 and q = 0.1 in
  let c = Markov.Chain.of_dense [| [| 1. -. p; p |]; [| q; 1. -. q |] |] in
  let pi = Markov.Chain.stationary c in
  check_close ~eps:1e-9 "pi_on = p/(p+q)" (p /. (p +. q)) pi.(1)

let test_stationary_periodic () =
  (* Pure 2-cycle: the averaged power iteration still converges to the
     uniform stationary distribution. *)
  let c = Markov.Chain.of_dense [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let pi = Markov.Chain.stationary c in
  check_close ~eps:1e-6 "uniform on 2-cycle" 0.5 pi.(0)

let test_walk_reaches_states () =
  let c = random_chain 3 4 in
  let rng = rng_of_seed 4 in
  for _ = 1 to 50 do
    let s = Markov.Chain.walk c rng 0 10 in
    check_true "state in range" (s >= 0 && s < 4)
  done

let test_step_respects_support () =
  let c = Markov.Chain.of_rows [| [| (1, 1.) |]; [| (0, 1.) |] |] in
  let rng = rng_of_seed 5 in
  Alcotest.(check int) "deterministic step" 1 (Markov.Chain.step c rng 0);
  Alcotest.(check int) "two steps return" 0 (Markov.Chain.walk c rng 0 2)

let test_push_n () =
  let c = Markov.Chain.of_rows [| [| (1, 1.) |]; [| (0, 1.) |] |] in
  let mu = [| 1.; 0. |] in
  let nu = Markov.Chain.push_n c mu 3 in
  check_close "odd power flips" 1. nu.(1)

let test_mixing_time_instant () =
  (* Rows identical: mixes in one step from any start. *)
  let c = Markov.Chain.of_dense [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  Alcotest.(check (option int)) "mixes in <= 1" (Some 1) (Markov.Chain.mixing_time c)

let test_mixing_time_matches_two_state () =
  let p = 0.05 and q = 0.15 in
  let ts = Markov.Two_state.make ~p ~q in
  let exact = Markov.Chain.mixing_time (Markov.Two_state.chain ts) in
  let closed = Markov.Two_state.mixing_time ts in
  match exact with
  | None -> Alcotest.fail "exact mixing did not converge"
  | Some t -> check_true "within 1 step of closed form" (abs (t - closed) <= 1)

let test_mixing_time_none_when_capped () =
  let c = Markov.Chain.of_dense [| [| 0.999999; 0.000001 |]; [| 0.000001; 0.999999 |] |] in
  Alcotest.(check (option int)) "cap reached" None (Markov.Chain.mixing_time ~max_t:3 c)

let test_uniformize_keeps_stationary () =
  let c = random_chain 6 5 in
  let pi = Markov.Chain.stationary c in
  let lazy_pi = Markov.Chain.stationary (Markov.Chain.uniformize c 0.5) in
  check_true "same stationary" (Stats.Distance.total_variation pi lazy_pi < 1e-8)

let test_tv_from_start () =
  let c = Markov.Chain.of_dense [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  let pi = Markov.Chain.stationary c in
  check_close ~eps:1e-9 "tv at 0 from state 0" 0.5 (Markov.Chain.tv_from_start c ~pi 0 0);
  check_close ~eps:1e-9 "tv at 1" 0. (Markov.Chain.tv_from_start c ~pi 0 1)

(* --- Two_state --- *)

let test_two_state_validation () =
  check_true "p+q=0 rejected"
    (try
       ignore (Markov.Two_state.make ~p:0. ~q:0.);
       false
     with Invalid_argument _ -> true)

let test_two_state_formulas () =
  let t = Markov.Two_state.make ~p:0.2 ~q:0.3 in
  check_close ~eps:1e-12 "stationary" 0.4 (Markov.Two_state.stationary_on t);
  check_close ~eps:1e-12 "lambda" 0.5 (Markov.Two_state.second_eigenvalue t)

let test_two_state_tv_decay () =
  let t = Markov.Two_state.make ~p:0.2 ~q:0.3 in
  (* From off: |0 - 0.4| * 0.5^k. *)
  check_close ~eps:1e-12 "tv at 0" 0.4 (Markov.Two_state.tv_after t ~start_on:false 0);
  check_close ~eps:1e-12 "tv at 2" 0.1 (Markov.Two_state.tv_after t ~start_on:false 2)

let test_two_state_mixing_definition () =
  let t = Markov.Two_state.make ~p:0.02 ~q:0.03 in
  let k = Markov.Two_state.mixing_time t in
  check_true "tv at t_mix below eps"
    (Markov.Two_state.tv_after t ~start_on:false k <= 0.25 +. 1e-9
    && Markov.Two_state.tv_after t ~start_on:true k <= 0.25 +. 1e-9);
  check_true "tv just before above eps (for slow chain)"
    (k = 0
    || Float.max
         (Markov.Two_state.tv_after t ~start_on:false (k - 1))
         (Markov.Two_state.tv_after t ~start_on:true (k - 1))
       > 0.25 -. 1e-9)

let test_two_state_instant_mix () =
  let t = Markov.Two_state.make ~p:0.5 ~q:0.5 in
  Alcotest.(check int) "p+q=1 mixes instantly" 0 (Markov.Two_state.mixing_time t)

(* --- Walk --- *)

let test_walk_chain_stationary_is_degree () =
  let g = Graph.Builders.star 5 in
  let pi = Markov.Chain.stationary (Markov.Walk.lazy_chain g) in
  let expected = Markov.Walk.stationary g in
  check_true "degree-proportional" (Stats.Distance.total_variation pi expected < 1e-8)

let test_walk_chain_isolated_rejected () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  check_true "isolated vertex rejected"
    (try
       ignore (Markov.Walk.chain g);
       false
     with Invalid_argument _ -> true)

let test_walk_step_stays_adjacent () =
  let g = Graph.Builders.cycle 8 in
  let rng = rng_of_seed 7 in
  for _ = 1 to 100 do
    let v = Markov.Walk.step g rng 3 in
    check_true "adjacent" (Graph.Static.mem_edge g 3 v)
  done

let test_meeting_time_same_start () =
  let g = Graph.Builders.cycle 8 in
  let rng = rng_of_seed 8 in
  Alcotest.(check (option int)) "already met" (Some 0) (Markov.Walk.meeting_time ~rng g 2 2)

let test_meeting_time_completes () =
  let g = Graph.Builders.complete 6 in
  let rng = rng_of_seed 9 in
  match Markov.Walk.meeting_time ~rng g 0 5 with
  | Some t -> check_true "meets quickly on K6" (t < 1000)
  | None -> Alcotest.fail "no meeting on complete graph"

let test_meeting_time_cap () =
  let g = Graph.Builders.cycle 100 in
  let rng = rng_of_seed 10 in
  Alcotest.(check (option int)) "cap returns None" None
    (Markov.Walk.meeting_time ~rng ~cap:1 g 0 50)

let test_mean_meeting_time_scale () =
  let small = Graph.Builders.grid ~rows:4 ~cols:4 in
  let large = Graph.Builders.grid ~rows:8 ~cols:8 in
  let rng = rng_of_seed 11 in
  let ms = Markov.Walk.mean_meeting_time ~rng ~trials:30 small in
  let ml = Markov.Walk.mean_meeting_time ~rng ~trials:30 large in
  check_true "meeting grows with grid" (ml > ms)

(* --- Spectral --- *)

let test_spectral_two_state_exact () =
  (* Eigenvalues of the two-state chain are 1 and 1 - p - q. *)
  let check_pq p q =
    let chain = Markov.Two_state.chain (Markov.Two_state.make ~p ~q) in
    check_close ~eps:1e-6
      (Printf.sprintf "lambda2 for p=%.2f q=%.2f" p q)
      (abs_float (1. -. p -. q))
      (Markov.Spectral.second_eigenvalue_magnitude chain)
  in
  check_pq 0.3 0.2;
  check_pq 0.05 0.1;
  check_pq 0.7 0.6

let test_spectral_instant_chain () =
  (* Identical rows: rank one, lambda2 = 0, gap = 1. *)
  let chain = Markov.Chain.of_dense [| [| 0.3; 0.7 |]; [| 0.3; 0.7 |] |] in
  check_close ~eps:1e-6 "lambda2 zero" 0. (Markov.Spectral.second_eigenvalue_magnitude chain);
  check_close ~eps:1e-6 "gap one" 1. (Markov.Spectral.spectral_gap chain);
  check_close ~eps:1e-6 "relaxation one" 1. (Markov.Spectral.relaxation_time chain)

let test_spectral_lazy_cycle_ordering () =
  (* Lazier and larger cycles mix slower: gap decreases. *)
  let gap n = Markov.Spectral.spectral_gap (Markov.Walk.lazy_chain (Graph.Builders.cycle n)) in
  check_true "gap shrinks with cycle size" (gap 12 < gap 6);
  (* Exact value for the lazy cycle: gap = (1 - cos(2 pi / n)) / 2. *)
  let n = 8 in
  check_close ~eps:1e-5 "lazy cycle gap closed form"
    ((1. -. cos (2. *. Float.pi /. float_of_int n)) /. 2.)
    (gap n)

let test_spectral_mixing_upper_bound () =
  (* For reversible chains the relaxation bound dominates the exact
     mixing time. *)
  let check_chain name chain =
    match Markov.Chain.mixing_time chain with
    | None -> Alcotest.fail (name ^ ": exact mixing did not converge")
    | Some exact ->
        let upper = Markov.Spectral.mixing_time_upper chain in
        check_true
          (Printf.sprintf "%s: exact %d <= upper %.1f" name exact upper)
          (float_of_int exact <= upper +. 1.)
  in
  check_chain "two-state" (Markov.Two_state.chain (Markov.Two_state.make ~p:0.1 ~q:0.2));
  check_chain "lazy cycle 10" (Markov.Walk.lazy_chain (Graph.Builders.cycle 10));
  check_chain "lazy star 8" (Markov.Walk.lazy_chain (Graph.Builders.star 8))

let test_spectral_single_state () =
  let chain = Markov.Chain.of_rows [| [| (0, 1.) |] |] in
  check_close "single state lambda2" 0.
    (Markov.Spectral.second_eigenvalue_magnitude chain)

(* --- Hitting --- *)

let test_hitting_two_state () =
  (* From off, hitting "on" is geometric with success probability p:
     expectation 1/p. *)
  let p = 0.2 in
  let chain = Markov.Two_state.chain (Markov.Two_state.make ~p ~q:0.3) in
  let h = Markov.Hitting.expected_hitting chain ~target:(fun s -> s = 1) in
  check_close ~eps:1e-6 "1/p from off" (1. /. p) h.(0);
  check_close "0 on target" 0. h.(1)

let test_hitting_cycle_closed_form () =
  (* Simple walk on an n-cycle: expected hitting from distance d is
     d (n - d); the lazy walk (hold 1/2) doubles it. *)
  let n = 9 in
  let chain = Markov.Walk.lazy_chain (Graph.Builders.cycle n) in
  let h = Markov.Hitting.expected_hitting chain ~target:(fun s -> s = 0) in
  for d = 1 to n - 1 do
    check_close_rel ~rel:1e-6
      (Printf.sprintf "lazy cycle from %d" d)
      (2. *. float_of_int (d * (n - d)))
      h.(d)
  done

let test_hitting_unreachable () =
  let chain =
    Markov.Chain.of_rows [| [| (0, 1.) |]; [| (0, 0.5); (1, 0.5) |]; [| (2, 1.) |] |]
  in
  let h = Markov.Hitting.expected_hitting chain ~target:(fun s -> s = 0) in
  check_true "reachable finite" (Float.is_finite h.(1));
  check_true "absorbing elsewhere is infinite" (h.(2) = infinity)

let test_meeting_exact_matches_sampled () =
  (* The sampled estimator must agree with the exact linear solve. *)
  let g = Graph.Builders.grid ~rows:4 ~cols:4 in
  let exact = Markov.Hitting.mean_meeting g in
  let sampled = Markov.Walk.mean_meeting_time ~rng:(rng_of_seed 70) ~trials:400 g in
  check_close_rel ~rel:0.12 "sampled meeting matches exact" exact sampled

let test_meeting_diagonal_zero () =
  let g = Graph.Builders.cycle 5 in
  let h = Markov.Hitting.expected_meeting g in
  for u = 0 to 4 do
    check_close "diagonal zero" 0. h.((u * 5) + u)
  done;
  (* Symmetry of the product chain: h(u,v) = h(v,u). *)
  check_close_rel ~rel:1e-6 "symmetric" h.((0 * 5) + 2) h.((2 * 5) + 0)

let test_product_chain_stochastic () =
  let g = Graph.Builders.star 4 in
  check_true "product chain stochastic"
    (Markov.Chain.is_stochastic (Markov.Hitting.product_walk_chain g))

(* --- Empirical --- *)

let test_empirical_distribution () =
  let d = Markov.Empirical.distribution ~n_outcomes:3 [| 0; 0; 1; 2; 0 |] in
  check_close ~eps:1e-12 "freq 0" 0.6 d.(0);
  check_close ~eps:1e-12 "freq 2" 0.2 d.(2)

let test_empirical_errors () =
  check_true "out of range rejected"
    (try
       ignore (Markov.Empirical.distribution ~n_outcomes:2 [| 3 |]);
       false
     with Invalid_argument _ -> true)

let test_estimate_mixing_time_two_state () =
  let p = 0.2 and q = 0.2 in
  let chain = Markov.Two_state.chain (Markov.Two_state.make ~p ~q) in
  let rng = rng_of_seed 12 in
  let observe r t = Markov.Chain.walk chain r 0 t in
  let reference = [| 0.5; 0.5 |] in
  let curve, hit =
    Markov.Empirical.estimate_mixing_time ~rng ~replicas:2000 ~checkpoints:[ 0; 2; 5; 10 ]
      ~n_outcomes:2 ~observe ~reference ~eps:0.25
  in
  Alcotest.(check int) "curve length" 4 (List.length curve);
  check_close ~eps:1e-9 "tv at 0 is 1/2" 0.5 (List.assoc 0 curve);
  (match hit with
  | Some t -> check_true "detected mixing by t=5" (t <= 5)
  | None -> Alcotest.fail "mixing not detected");
  (* TV is (1-p-q)^t / 2 from a point start; check decay at t=2. *)
  check_close ~eps:0.05 "tv decay at 2" (0.5 *. (0.6 ** 2.)) (List.assoc 2 curve)

let suites =
  [
    ( "markov.chain",
      [
        Alcotest.test_case "of_dense" `Quick test_of_dense;
        Alcotest.test_case "of_rows normalises" `Quick test_of_rows_normalises;
        Alcotest.test_case "construction errors" `Quick test_of_rows_errors;
        Alcotest.test_case "push preserves mass" `Quick test_push_preserves_mass;
        Alcotest.test_case "stationary two-state" `Quick test_stationary_two_state;
        Alcotest.test_case "stationary periodic" `Quick test_stationary_periodic;
        Alcotest.test_case "walk in range" `Quick test_walk_reaches_states;
        Alcotest.test_case "deterministic chain" `Quick test_step_respects_support;
        Alcotest.test_case "push_n" `Quick test_push_n;
        Alcotest.test_case "instant mixing" `Quick test_mixing_time_instant;
        Alcotest.test_case "mixing matches closed form" `Quick test_mixing_time_matches_two_state;
        Alcotest.test_case "mixing cap" `Quick test_mixing_time_none_when_capped;
        Alcotest.test_case "uniformize stationary" `Quick test_uniformize_keeps_stationary;
        Alcotest.test_case "tv from start" `Quick test_tv_from_start;
        q_stationary_is_fixpoint;
      ] );
    ( "markov.two_state",
      [
        Alcotest.test_case "validation" `Quick test_two_state_validation;
        Alcotest.test_case "closed forms" `Quick test_two_state_formulas;
        Alcotest.test_case "tv decay" `Quick test_two_state_tv_decay;
        Alcotest.test_case "mixing definition" `Quick test_two_state_mixing_definition;
        Alcotest.test_case "instant mix" `Quick test_two_state_instant_mix;
      ] );
    ( "markov.walk",
      [
        Alcotest.test_case "stationary degree-proportional" `Quick
          test_walk_chain_stationary_is_degree;
        Alcotest.test_case "isolated rejected" `Quick test_walk_chain_isolated_rejected;
        Alcotest.test_case "step adjacency" `Quick test_walk_step_stays_adjacent;
        Alcotest.test_case "meeting same start" `Quick test_meeting_time_same_start;
        Alcotest.test_case "meeting on K6" `Quick test_meeting_time_completes;
        Alcotest.test_case "meeting cap" `Quick test_meeting_time_cap;
        Alcotest.test_case "meeting grows with size" `Quick test_mean_meeting_time_scale;
      ] );
    ( "markov.spectral",
      [
        Alcotest.test_case "two-state exact" `Quick test_spectral_two_state_exact;
        Alcotest.test_case "rank-one chain" `Quick test_spectral_instant_chain;
        Alcotest.test_case "lazy cycle closed form" `Quick test_spectral_lazy_cycle_ordering;
        Alcotest.test_case "mixing upper bound" `Quick test_spectral_mixing_upper_bound;
        Alcotest.test_case "single state" `Quick test_spectral_single_state;
      ] );
    ( "markov.hitting",
      [
        Alcotest.test_case "two-state geometric" `Quick test_hitting_two_state;
        Alcotest.test_case "cycle closed form" `Quick test_hitting_cycle_closed_form;
        Alcotest.test_case "unreachable" `Quick test_hitting_unreachable;
        Alcotest.test_case "meeting exact vs sampled" `Quick test_meeting_exact_matches_sampled;
        Alcotest.test_case "meeting diagonal and symmetry" `Quick test_meeting_diagonal_zero;
        Alcotest.test_case "product chain stochastic" `Quick test_product_chain_stochastic;
      ] );
    ( "markov.empirical",
      [
        Alcotest.test_case "distribution" `Quick test_empirical_distribution;
        Alcotest.test_case "errors" `Quick test_empirical_errors;
        Alcotest.test_case "mixing estimation" `Quick test_estimate_mixing_time_two_state;
      ] );
  ]
