examples/quickstart.mli:
