examples/epidemic_waypoint.ml: Array Core List Mobility Printf Prng Stats String
