examples/density_map.ml: Mobility Printf Prng
