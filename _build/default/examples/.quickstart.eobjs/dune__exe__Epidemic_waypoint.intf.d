examples/epidemic_waypoint.mli:
