examples/density_map.mli:
