examples/p2p_churn.ml: Array Core Edge_meg List Markov Printf Prng Stats Theory
