examples/hybrid_network.ml: Array Core Edge_meg Graph List Mobility Printf Prng Stats
