examples/augmented_grid.ml: Core Graph List Markov Printf Prng Random_path Stats
