examples/manet_sparse.ml: Core Graph List Mobility Printf Prng Stats Theory
