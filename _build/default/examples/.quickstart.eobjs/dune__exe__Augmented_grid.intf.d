examples/augmented_grid.mli:
