examples/hybrid_network.mli:
