examples/manet_sparse.mli:
