examples/quickstart.ml: Array Core Edge_meg Markov Mobility Printf Prng Stats String Theory
