(* Where do mobile nodes actually spend their time?

     dune exec examples/density_map.exe

   Renders the stationary positional distribution of three mobility
   models as ASCII heatmaps and extracts the (delta, lambda) uniformity
   constants that Corollary 4 consumes. The waypoint's center bias —
   the reason its analysis resisted random-walk techniques — is visible
   at a glance; the random-direction control is flat; the disk-region
   waypoint shows the same bias inside a round boundary. *)

let profile_of geo rng = Mobility.Density.estimate ~geo ~rng ~bins:24 ~samples:400 ()

let show name ?mask profile =
  let u = Mobility.Density.uniformity ?mask profile in
  Printf.printf "%s\n%s" name (Mobility.Density.render profile);
  Printf.printf "  delta = %.2f   lambda = %.2f   center/edge density ratio = %.1f\n\n"
    u.delta u.lambda u.center_to_corner

let () =
  let rng = Prng.Rng.of_seed 11 in
  let n = 250 and l = 24. in
  Printf.printf "Stationary occupancy heatmaps (%d nodes, %.0fx%.0f region, 24x24 cells)\n\n" n l l;

  let waypoint = Mobility.Waypoint.create ~n ~l ~r:1. ~v_min:1. ~v_max:1.25 () in
  show "random waypoint (square):" (profile_of waypoint (Prng.Rng.split rng));

  let direction = Mobility.Direction.create ~n ~l ~r:1. ~v:1. ~turn_every:8. () in
  show "random direction (square, control):" (profile_of direction (Prng.Rng.split rng));

  let disk =
    Mobility.Waypoint.create ~region:Mobility.Waypoint.Disk ~n ~l ~r:1. ~v_min:1.
      ~v_max:1.25 ()
  in
  show "random waypoint (disk region):"
    ~mask:(Mobility.Waypoint.region_contains Mobility.Waypoint.Disk ~l)
    (profile_of disk (Prng.Rng.split rng));

  Printf.printf
    "The waypoint mass piles up in the middle (Corollary 4's delta stays a small\n\
     constant anyway — that is the point of conditions (a) and (b)); the\n\
     random-direction model is near-uniform; the disk shows the same physics\n\
     inside a curved boundary, which the paper's general region statement covers.\n"
