(* Benchmark harness.

   Part 1 regenerates every claim table of the reproduction (E1..E18,
   the "tables and figures" of this theory paper — see DESIGN.md and
   EXPERIMENTS.md). Pass --full (or set BENCH_SCALE=full) for the
   paper-scale sweeps recorded in EXPERIMENTS.md; the default quick
   scale finishes in a few minutes.

   Part 2 is a Bechamel micro-benchmark suite for the hot primitives
   (one Test.make per primitive, grouped in one run): model stepping,
   snapshot enumeration (closure and edge-buffer paths), flooding
   end-to-end, chain stepping, pair decoding and spatial hashing. Skip
   with --no-micro.

   Pass --json PATH (or --json auto for BENCH_<date>.json in the
   current directory) to also write a machine-readable baseline: the
   wall-clock seconds of every claim table plus the Bechamel OLS
   ns/run estimate of every micro-benchmark. Subsequent PRs regress
   against the recorded file. *)

open Bechamel

let scale () =
  let env = try Sys.getenv "BENCH_SCALE" with Not_found -> "" in
  let full = Array.exists (( = ) "--full") Sys.argv || String.lowercase_ascii env = "full" in
  if full then Simulate.Runner.Full else Simulate.Runner.Quick

(* --jobs N on the command line, falling back to DYNGRAPH_JOBS. *)
let sched () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with Some w -> Exec.of_int w | None -> Exec.default ()

let json_path () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with
  | Some "auto" ->
      let tm = Unix.localtime (Unix.gettimeofday ()) in
      Some
        (Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900)
           (tm.Unix.tm_mon + 1) tm.Unix.tm_mday)
  | p -> p

let claim_tables () =
  let rng = Prng.Rng.of_seed 42 in
  let sched = sched () in
  Printf.printf "==== Claim-reproduction tables (%s scale, seed 42, %d worker(s)) ====\n\n"
    (match scale () with Simulate.Runner.Full -> "full" | Quick -> "quick")
    (Exec.workers sched);
  (* Counters on for the claim phase: each outcome carries its work
     totals (rounds, snapshots, edges...) into the JSON baseline. The
     caller turns metrics back off before the micro phase so the
     ns/run numbers measure the disabled (production) path. *)
  Obs.Metrics.enable ();
  let all_passed, outcomes =
    Simulate.Registry.run_all_timed ~sched ~clock:Unix.gettimeofday ~rng ~scale:(scale ()) ()
  in
  Obs.Metrics.disable ();
  if not all_passed then print_endline "WARNING: some reproduction checks failed";
  outcomes

(* --- micro-benchmarks --- *)

let prepared_edge_meg n =
  let dyn = Edge_meg.Classic.make ~n ~p:(4. /. float_of_int n) ~q:0.5 () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 1);
  dyn

let prepared_waypoint n =
  let geo =
    Mobility.Waypoint.create ~n ~l:(sqrt (float_of_int n)) ~r:1.5 ~v_min:1. ~v_max:1.25 ()
  in
  Mobility.Geo.reset geo (Prng.Rng.of_seed 2);
  geo

let prepared_node_meg n =
  let k = 16 in
  let jump = 0.1 /. float_of_int k in
  let chain =
    Markov.Chain.of_rows
      (Array.init k (fun s ->
           Array.append [| ((s + 1) mod k, 0.9) |] (Array.init k (fun t -> (t, jump)))))
  in
  let connect x y =
    let d = abs (x - y) in
    min d (k - d) <= 1
  in
  let dyn = Node_meg.Model.make ~n ~chain ~connect () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 3);
  dyn

let prepared_rp n =
  let family = Random_path.Family.grid_shortest ~rows:12 ~cols:12 in
  let dyn = Random_path.Rp_model.make ~hold:0.5 ~n ~family () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 4);
  dyn

let micro_tests () =
  let n = 256 in
  let edge_meg = prepared_edge_meg n in
  let waypoint = prepared_waypoint n in
  let waypoint_dyn = Mobility.Geo.dynamic waypoint in
  let node_meg = prepared_node_meg n in
  let rp = prepared_rp 144 in
  let fill_buf = Graph.Edge_buffer.create ~capacity:(8 * n) () in
  let chain =
    Markov.Chain.of_rows
      (Array.init 64 (fun s -> Array.init 8 (fun j -> ((s + j + 1) mod 64, 1.))))
  in
  let chain_rng = Prng.Rng.of_seed 5 in
  let chain_state = ref 0 in
  let flood_rng = Prng.Rng.of_seed 6 in
  let flood_model = Edge_meg.Classic.make ~n:128 ~p:(4. /. 128.) ~q:0.5 () in
  (* Delta-step: one model step plus the O(Δ) adjacency maintenance a
     delta-driven kernel does per round — the incremental counterpart
     of step + fill_edges + rebuild. *)
  let delta_meg = prepared_edge_meg n in
  let delta_sync = Core.Adj_sync.create delta_meg in
  Core.Adj_sync.ensure delta_sync;
  (* Frontier-scan flooding in a stickier regime (lower churn, sparser
     graph) than end_to_end: longer runs whose later rounds are
     dominated by the Σ deg(active) row scans rather than by model
     steps. *)
  let frontier_rng = Prng.Rng.of_seed 9 in
  let frontier_model = Edge_meg.Classic.make ~n:128 ~p:(1. /. 256.) ~q:0.25 () in
  let pair_rng = Prng.Rng.of_seed 7 in
  let space_rng = Prng.Rng.of_seed 8 in
  let xs = Array.init 512 (fun _ -> Prng.Rng.float space_rng 16.) in
  let ys = Array.init 512 (fun _ -> Prng.Rng.float space_rng 16.) in
  let space_scratch = Mobility.Space.scratch () in
  [
    Test.make ~name:"edge_meg.step n=256"
      (Staged.stage (fun () -> Core.Dynamic.step edge_meg));
    Test.make ~name:"edge_meg.snapshot n=256"
      (Staged.stage (fun () -> ignore (Core.Dynamic.edge_count edge_meg)));
    Test.make ~name:"edge_meg.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges edge_meg fill_buf));
    Test.make ~name:"edge_meg.delta_step n=256"
      (Staged.stage (fun () ->
           Core.Dynamic.step delta_meg;
           Core.Adj_sync.advance delta_sync));
    Test.make ~name:"waypoint.step n=256" (Staged.stage (fun () -> Mobility.Geo.step waypoint));
    Test.make ~name:"waypoint.step+edges n=256"
      (Staged.stage (fun () ->
           Mobility.Geo.step waypoint;
           ignore (Core.Dynamic.edge_count waypoint_dyn)));
    Test.make ~name:"waypoint.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges waypoint_dyn fill_buf));
    Test.make ~name:"node_meg.step n=256 k=16"
      (Staged.stage (fun () -> Core.Dynamic.step node_meg));
    Test.make ~name:"node_meg.snapshot n=256"
      (Staged.stage (fun () -> ignore (Core.Dynamic.edge_count node_meg)));
    Test.make ~name:"node_meg.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges node_meg fill_buf));
    Test.make ~name:"rp_model.step n=144 grid 12x12"
      (Staged.stage (fun () -> Core.Dynamic.step rp));
    Test.make ~name:"flooding.end_to_end edge-MEG n=128"
      (Staged.stage (fun () ->
           ignore (Core.Flooding.time ~rng:flood_rng ~source:0 flood_model)));
    Test.make ~name:"flooding.frontier_scan n=128"
      (Staged.stage (fun () ->
           ignore (Core.Flooding.time ~rng:frontier_rng ~source:0 frontier_model)));
    Test.make ~name:"chain.step 64 states"
      (Staged.stage (fun () -> chain_state := Markov.Chain.step chain chain_rng !chain_state));
    Test.make ~name:"pairs.decode n=1024"
      (Staged.stage (fun () ->
           ignore (Graph.Pairs.decode 1024 (Prng.Rng.int pair_rng (Graph.Pairs.total 1024)))));
    Test.make ~name:"space.close_pairs n=512 r=1.5"
      (Staged.stage (fun () ->
           Mobility.Space.iter_close_pairs ~scratch:space_scratch ~l:16. ~r:1.5 ~xs ~ys
             (fun _ _ -> ())));
  ]

let run_micro () =
  Printf.printf "\n==== Micro-benchmarks (Bechamel, OLS time per call) ====\n\n";
  let tests = Test.make_grouped ~name:"dyngraph" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Stats.Table.create ~title:"time per call" ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let numeric =
    List.map
      (fun (name, result) ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
        Stats.Table.add_row table [ Text name; Fixed (ns, 1); Fixed (r2, 4) ];
        (name, ns, r2))
      rows
  in
  print_string (Stats.Table.render table);
  numeric

(* --- machine-readable baseline --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

(* Provenance for the dyngraph-bench/3 schema: which commit and which
   machine produced the numbers, so baselines are attributable across
   PRs. Both fields degrade to "unknown" rather than fail. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, line) with Unix.WEXITED 0, rev when rev <> "" -> rev | _ -> "unknown"
  with _ -> "unknown"

let hostname () = try Unix.gethostname () with _ -> "unknown"

let metrics_json (ms : (string * int) list) =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) ms)
  ^ "}"

let write_json path ~claims ~micro =
  let oc = open_out path in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.fprintf oc "{\n  \"schema\": \"dyngraph-bench/3\",\n";
  Printf.fprintf oc "  \"date\": \"%04d-%02d-%02dT%02d:%02d:%02d\",\n" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
  Printf.fprintf oc "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
  Printf.fprintf oc "  \"hostname\": \"%s\",\n" (json_escape (hostname ()));
  Printf.fprintf oc "  \"scale\": \"%s\",\n"
    (match scale () with Simulate.Runner.Full -> "full" | Quick -> "quick");
  Printf.fprintf oc "  \"seed\": 42,\n";
  Printf.fprintf oc "  \"workers\": %d,\n" (Exec.workers (sched ()));
  Printf.fprintf oc "  \"claims\": [\n";
  List.iteri
    (fun i (o : Simulate.Registry.outcome) ->
      let e = o.experiment in
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"title\": \"%s\", \"passed\": %b, \"seconds\": %s, \"metrics\": %s}%s\n"
        (json_escape e.id) (json_escape e.title) o.ok (json_float o.seconds)
        (metrics_json o.metrics)
        (if i = List.length claims - 1 then "" else ","))
    claims;
  Printf.fprintf oc "  ],\n  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  let claims = claim_tables () in
  let micro =
    if Array.exists (( = ) "--no-micro") Sys.argv then [] else run_micro ()
  in
  match json_path () with
  | None -> ()
  | Some path ->
      write_json path ~claims ~micro;
      Printf.printf "\nwrote %s\n" path
