(* Benchmark harness.

   Part 1 regenerates every claim table of the reproduction (E1..E18,
   the "tables and figures" of this theory paper — see DESIGN.md and
   EXPERIMENTS.md). --scale selects the tier: "quick" (default,
   CI-sized), "full" (the paper-scale sweeps recorded in
   EXPERIMENTS.md; --full is the legacy spelling), or "large"
   (quick-sized sweeps plus the off-heap million-node tier below).
   BENCH_SCALE is the environment fallback for all three.

   The large tier runs an end-to-end flood on an off-heap edge-MEG at
   n = 2^20 nodes (BENCH_LARGE_N overrides — CI smokes it at 2^18) and
   records GC gauges (major words allocated, top-heap words,
   compactions) through Obs.Metrics into the JSON baseline: the
   off-heap storage claim is precisely that these stay n-independent.

   Part 2 is a Bechamel micro-benchmark suite for the hot primitives
   (one Test.make per primitive, grouped in one run): model stepping,
   snapshot enumeration (closure and edge-buffer paths), flooding
   end-to-end, chain stepping, pair decoding and spatial hashing. Skip
   with --no-micro. At --scale large one extra micro joins the suite:
   flooding.frontier_scan_large, a full flood on the off-heap backing
   at a fixed n = 2^18 (never scaled by BENCH_LARGE_N, so baselines
   and CI gate like-for-like).

   Pass --json PATH (or --json auto for BENCH_<date>.json in the
   current directory) to also write a machine-readable baseline: the
   wall-clock seconds of every claim table plus the Bechamel OLS
   ns/run estimate of every micro-benchmark. Subsequent PRs regress
   against the recorded file.

   Part 3 (opt-in with --serve) is the service tier: an in-process
   Serve.Server on a private Unix socket, driven by Serve.Load at
   1, 2 and 4 concurrent clients. Every request carries a distinct
   seed (vary_seed) so the daemon's result cache never answers and
   the rows measure execution throughput — requests/sec and p50/p99
   latency land in the JSON baseline's "service" array (schema /7).

   --only-large (with --scale large) skips the registry claim phase
   and runs just the large tier — the cheap shape for smoke scripts
   that compare the large.flood_e2e row across --jobs counts. *)

open Bechamel

let scale () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--scale" then Some Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  let named =
    match from_argv 1 with
    | Some s -> Some s
    | None ->
        if Array.exists (( = ) "--full") Sys.argv then Some "full"
        else ( match Sys.getenv_opt "BENCH_SCALE" with Some "" | None -> None | s -> s )
  in
  match Option.map String.lowercase_ascii named with
  | None | Some "quick" -> Simulate.Runner.Quick
  | Some "full" -> Simulate.Runner.Full
  | Some "large" -> Simulate.Runner.Large
  | Some other ->
      Printf.eprintf "bench: unknown scale %S (expected quick|full|large)\n" other;
      exit 2

let scale_name = function
  | Simulate.Runner.Quick -> "quick"
  | Simulate.Runner.Full -> "full"
  | Simulate.Runner.Large -> "large"

(* The large tier's end-to-end size. Only the e2e claim scales with
   this; the frontier_scan_large micro stays at its fixed n. *)
let large_n () =
  match Sys.getenv_opt "BENCH_LARGE_N" with
  | None | Some "" -> 1 lsl 20
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 1 -> n
      | _ ->
          Printf.eprintf "bench: BENCH_LARGE_N must be an integer > 1, got %S\n" s;
          exit 2)

(* --jobs N on the command line, falling back to DYNGRAPH_JOBS. *)
let sched () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with Some w -> Exec.of_int w | None -> Exec.default ()

(* --procs N on the command line, falling back to DYNGRAPH_PROCS; 0
   keeps the claim phase in-process. *)
let procs () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--procs" then int_of_string_opt Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with Some p when p >= 0 -> p | Some _ | None -> Exec.default_procs ()

let json_path () =
  let rec from_argv i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else from_argv (i + 1)
  in
  match from_argv 1 with
  | Some "auto" ->
      let tm = Unix.localtime (Unix.gettimeofday ()) in
      let date =
        Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
          tm.Unix.tm_mday
      in
      (* Never clobber a committed baseline from earlier the same day:
         probe BENCH_<date>.json, then b..z suffixes. *)
      let rec fresh k =
        let suffix =
          if k = 0 then "" else String.make 1 (Char.chr (Char.code 'a' + k))
        in
        let path = Printf.sprintf "BENCH_%s%s.json" date suffix in
        if Sys.file_exists path && k < 25 then fresh (k + 1) else path
      in
      Some (fresh 0)
  | p -> p

let claim_tables () =
  let rng = Prng.Rng.of_seed 42 in
  let jobs = Exec.workers (sched ()) in
  let p = procs () in
  let sched, spec =
    if p > 0 then begin
      (* Shard whole experiments over a fleet of this very binary
         re-exec'd in --worker mode; the tables (and the counter totals
         each outcome carries) are byte-identical to the in-process
         run, only the seconds differ. *)
      Exec.set_worker_command (Some [| Sys.executable_name; "--worker" |]);
      ( Exec.procs p,
        Some
          (Simulate.Fleet.specs ~render:Simulate.Registry.Full ~seed:42 ~scale:(scale ())
             ~jobs) )
    end
    else (sched (), None)
  in
  Printf.printf
    "==== Claim-reproduction tables (%s scale, seed 42, %d worker(s), %d proc(s)) ====\n\n"
    (scale_name (scale ()))
    jobs p;
  (* Counters on for the claim phase: each outcome carries its work
     totals (rounds, snapshots, edges...) into the JSON baseline. The
     caller turns metrics back off before the micro phase so the
     ns/run numbers measure the disabled (production) path. *)
  Obs.Metrics.enable ();
  let all_passed, outcomes =
    Simulate.Registry.run_all_timed ~sched ~clock:Unix.gettimeofday ?spec ~rng
      ~scale:(scale ()) ()
  in
  Obs.Metrics.disable ();
  if not all_passed then print_endline "WARNING: some reproduction checks failed";
  outcomes

(* --- large tier: the million-node off-heap run --- *)

(* One row of the JSON "claims" array, whether it came from the
   registry or from the large tier. *)
type claim_row = {
  row_id : string;
  row_title : string;
  row_ok : bool;
  row_seconds : float;
  row_metrics : (string * int) list;
}

let row_of_outcome (o : Simulate.Registry.outcome) =
  let e = o.experiment in
  {
    row_id = e.id;
    row_title = e.title;
    row_ok = o.ok;
    row_seconds = o.seconds;
    row_metrics = o.metrics;
  }

(* GC gauges for the large tier. Gauges (not counters) because their
   values are wall-clock-ish facts about one run of one process — the
   off-heap storage claim is that major words and top-heap words stay
   n-independent, which the JSON baseline lets a reader (and a future
   PR) check. *)
let g_gc_major = Obs.Metrics.gauge "gc.major_words"

let g_gc_top_heap = Obs.Metrics.gauge "gc.top_heap_words"

let g_gc_compactions = Obs.Metrics.gauge "gc.compactions"

let large_tier () =
  let n = large_n () in
  let p = 4. /. float_of_int n and q = 0.5 in
  Printf.printf "\n==== Large tier (off-heap edge-MEG flood, n = %d, seed 42) ====\n\n" n;
  Obs.Metrics.enable ();
  Gc.full_major ();
  let before = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  (* Model construction is inside the measured window on purpose: the
     stationary init draws the ~alpha*n^2/2 initial edges, and its
     allocation behaviour is part of what the gauges certify. *)
  let model = Edge_meg.Classic.make ~n ~p ~q () in
  let time = Core.Flooding.time ~rng:(Prng.Rng.of_seed 42) ~source:0 model in
  let seconds = Unix.gettimeofday () -. t0 in
  let after = Gc.quick_stat () in
  let major_words = after.Gc.major_words -. before.Gc.major_words in
  let top_heap_words = after.Gc.top_heap_words in
  let compactions = after.Gc.compactions - before.Gc.compactions in
  Obs.Metrics.set_gauge g_gc_major major_words;
  Obs.Metrics.set_gauge g_gc_top_heap (float_of_int top_heap_words);
  Obs.Metrics.set_gauge g_gc_compactions (float_of_int compactions);
  Obs.Metrics.disable ();
  Printf.printf "flood time: %s in %.3f s\n"
    (match time with Some t -> Printf.sprintf "%d rounds" t | None -> "CAPPED")
    seconds;
  Printf.printf "gc: %.3g major words allocated, top heap %d words, %d compaction(s)\n"
    major_words top_heap_words compactions;
  [
    {
      row_id = "large.flood_e2e";
      row_title = Printf.sprintf "end-to-end flood, off-heap edge-MEG n=%d p=4/n q=0.5" n;
      row_ok = time <> None;
      row_seconds = seconds;
      row_metrics =
        [
          ("flood.time", (match time with Some t -> t | None -> -1));
          ("gc.major_words", int_of_float major_words);
          ("gc.top_heap_words", top_heap_words);
          ("gc.compactions", compactions);
        ];
    };
  ]

(* --- service tier: the serve daemon under concurrent load --- *)

(* One row of the JSON "service" array (schema 7): the serve daemon's
   throughput and latency quantiles at one executor-count ×
   client-concurrency level. *)
type service_row = {
  svc_executors : int;
  svc_clients : int;
  svc_per_client : int;
  svc_completed : int;
  svc_errors : int;
  svc_rps : float;
  svc_p50_ms : float;
  svc_p99_ms : float;
}

(* Each level brings up an in-process Serve.Server on a private socket,
   drives it with Serve.Load, and tears it down — the same code path as
   the `dyngraph serve` / `dyngraph load` pair, minus the fork. The id
   mix spans the protocol families (edge-MEG flood, push, gossip);
   vary_seed defeats the result cache (the claim is execution
   throughput, not cache hits) and the per-level seed bases are
   disjoint so no level warms another's alias tables into a cache
   hit. *)
let service_tier () =
  Printf.printf "\n==== Service tier (serve daemon, concurrent NDJSON clients) ====\n\n";
  let ids = [ "E1"; "E11"; "E13" ] in
  let per_client = 6 in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dyngraph-bench-%d.sock" (Unix.getpid ()))
  in
  Obs.Clock.set Unix.gettimeofday;
  Obs.Metrics.enable ();
  let level ~executors ~clients =
    let server =
      Serve.Server.create
        {
          Serve.Server.socket_path;
          tcp_port = None;
          jobs = Exec.workers (sched ());
          executors;
          procs = 0;
          cache_capacity = 64;
        }
    in
    let connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    in
    let s =
      Serve.Load.run ~connect ~clients ~per_client ~ids
        ~seed:(42 + (executors * 1_000_000) + (clients * 100_000))
        ~scale:Simulate.Runner.Quick ~render:Simulate.Registry.Full ~vary_seed:true ()
    in
    Serve.Server.stop server;
    Printf.printf "executors=%d clients=%d: %d/%d ok, %.1f req/s, p50 %.1f ms, p99 %s%s\n"
      executors clients s.Serve.Load.completed (clients * per_client) s.Serve.Load.rps
      s.Serve.Load.p50_ms (Serve.Load.p99_to_string s)
      (if s.Serve.Load.errors > 0 then Printf.sprintf "  (%d ERRORS)" s.Serve.Load.errors
       else "");
    {
      svc_executors = executors;
      svc_clients = clients;
      svc_per_client = per_client;
      svc_completed = s.Serve.Load.completed;
      svc_errors = s.Serve.Load.errors;
      svc_rps = s.Serve.Load.rps;
      svc_p50_ms = s.Serve.Load.p50_ms;
      svc_p99_ms = s.Serve.Load.p99_ms;
    }
  in
  let rows =
    List.concat_map
      (fun executors -> List.map (fun clients -> level ~executors ~clients) [ 1; 2; 4 ])
      [ 1; 2; 4 ]
  in
  Obs.Metrics.disable ();
  rows

(* --- micro-benchmarks --- *)

let prepared_edge_meg n =
  let dyn = Edge_meg.Classic.make ~n ~p:(4. /. float_of_int n) ~q:0.5 () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 1);
  dyn

let prepared_waypoint n =
  let geo =
    Mobility.Waypoint.create ~n ~l:(sqrt (float_of_int n)) ~r:1.5 ~v_min:1. ~v_max:1.25 ()
  in
  Mobility.Geo.reset geo (Prng.Rng.of_seed 2);
  geo

let prepared_node_meg n =
  let k = 16 in
  let jump = 0.1 /. float_of_int k in
  let chain =
    Markov.Chain.of_rows
      (Array.init k (fun s ->
           Array.append [| ((s + 1) mod k, 0.9) |] (Array.init k (fun t -> (t, jump)))))
  in
  let connect x y =
    let d = abs (x - y) in
    min d (k - d) <= 1
  in
  let dyn = Node_meg.Model.make ~n ~chain ~connect () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 3);
  dyn

let prepared_rp n =
  let family = Random_path.Family.grid_shortest ~rows:12 ~cols:12 in
  let dyn = Random_path.Rp_model.make ~hold:0.5 ~n ~family () in
  Core.Dynamic.reset dyn (Prng.Rng.of_seed 4);
  dyn

let micro_tests () =
  let n = 256 in
  let edge_meg = prepared_edge_meg n in
  let waypoint = prepared_waypoint n in
  let waypoint_dyn = Mobility.Geo.dynamic waypoint in
  let node_meg = prepared_node_meg n in
  let rp = prepared_rp 144 in
  let fill_buf = Graph.Edge_buffer.create ~capacity:(8 * n) () in
  let chain =
    Markov.Chain.of_rows
      (Array.init 64 (fun s -> Array.init 8 (fun j -> ((s + j + 1) mod 64, 1.))))
  in
  let chain_rng = Prng.Rng.of_seed 5 in
  let chain_state = ref 0 in
  let flood_rng = Prng.Rng.of_seed 6 in
  let flood_model = Edge_meg.Classic.make ~n:128 ~p:(4. /. 128.) ~q:0.5 () in
  (* Delta-step: one model step plus the O(Δ) adjacency maintenance a
     delta-driven kernel does per round — the incremental counterpart
     of step + fill_edges + rebuild. *)
  let delta_meg = prepared_edge_meg n in
  let delta_sync = Core.Adj_sync.create delta_meg in
  Core.Adj_sync.ensure delta_sync;
  (* Frontier-scan flooding in a stickier regime (lower churn, sparser
     graph) than end_to_end: longer runs whose later rounds are
     dominated by the Σ deg(active) row scans rather than by model
     steps. *)
  let frontier_rng = Prng.Rng.of_seed 9 in
  let frontier_model = Edge_meg.Classic.make ~n:128 ~p:(1. /. 256.) ~q:0.25 () in
  let pair_rng = Prng.Rng.of_seed 7 in
  let space_rng = Prng.Rng.of_seed 8 in
  let xs = Array.init 512 (fun _ -> Prng.Rng.float space_rng 16.) in
  let ys = Array.init 512 (fun _ -> Prng.Rng.float space_rng 16.) in
  let space_scratch = Mobility.Space.scratch () in
  [
    Test.make ~name:"edge_meg.step n=256"
      (Staged.stage (fun () -> Core.Dynamic.step edge_meg));
    Test.make ~name:"edge_meg.snapshot n=256"
      (Staged.stage (fun () -> ignore (Core.Dynamic.edge_count edge_meg)));
    Test.make ~name:"edge_meg.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges edge_meg fill_buf));
    Test.make ~name:"edge_meg.delta_step n=256"
      (Staged.stage (fun () ->
           Core.Dynamic.step delta_meg;
           Core.Adj_sync.advance delta_sync));
    Test.make ~name:"waypoint.step n=256" (Staged.stage (fun () -> Mobility.Geo.step waypoint));
    Test.make ~name:"waypoint.step+edges n=256"
      (Staged.stage (fun () ->
           Mobility.Geo.step waypoint;
           ignore (Core.Dynamic.edge_count waypoint_dyn)));
    Test.make ~name:"waypoint.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges waypoint_dyn fill_buf));
    Test.make ~name:"node_meg.step n=256 k=16"
      (Staged.stage (fun () -> Core.Dynamic.step node_meg));
    Test.make ~name:"node_meg.snapshot n=256"
      (Staged.stage (fun () -> ignore (Core.Dynamic.edge_count node_meg)));
    Test.make ~name:"node_meg.fill_edges n=256"
      (Staged.stage (fun () -> Core.Dynamic.fill_edges node_meg fill_buf));
    Test.make ~name:"rp_model.step n=144 grid 12x12"
      (Staged.stage (fun () -> Core.Dynamic.step rp));
    Test.make ~name:"flooding.end_to_end edge-MEG n=128"
      (Staged.stage (fun () ->
           ignore (Core.Flooding.time ~rng:flood_rng ~source:0 flood_model)));
    Test.make ~name:"flooding.frontier_scan n=128"
      (Staged.stage (fun () ->
           ignore (Core.Flooding.time ~rng:frontier_rng ~source:0 frontier_model)));
    (* Batched: a single Chain.step is a handful of ns, below Bechamel's
       resolution floor — the old one-step micro fit with r² ≈ 0.15,
       pure noise. 100 steps per run lifts the signal ~two orders of
       magnitude; divide ns_per_run by 100 for the per-step figure. *)
    Test.make ~name:"chain.step 64 states x100"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             chain_state := Markov.Chain.step chain chain_rng !chain_state
           done));
    Test.make ~name:"pairs.decode n=1024"
      (Staged.stage (fun () ->
           ignore (Graph.Pairs.decode 1024 (Prng.Rng.int pair_rng (Graph.Pairs.total 1024)))));
    Test.make ~name:"space.close_pairs n=512 r=1.5"
      (Staged.stage (fun () ->
           Mobility.Space.iter_close_pairs ~scratch:space_scratch ~l:16. ~r:1.5 ~xs ~ys
             (fun _ _ -> ())));
  ]

(* The large-tier micro: a full flood per call on the off-heap backing
   at a fixed n = 2^18 (deliberately NOT BENCH_LARGE_N: the gated
   baseline and the CI smoke run must measure the same thing). The
   sticky sparse regime mirrors flooding.frontier_scan — later rounds
   are dominated by the tiled Sigma deg(informed) frontier scans. *)
let large_micro_tests () =
  let n = 1 lsl 18 in
  let rng = Prng.Rng.of_seed 11 in
  (* alpha ~ 2/n: expected degree ~2 keeps a single call in the
     hundreds of milliseconds, and the low churn (edges persist ~1/q
     steps) makes the informed-side frontier scans the dominant term. *)
  let model = Edge_meg.Classic.make ~n ~p:(0.25 /. float_of_int n) ~q:0.125 () in
  [
    Test.make
      ~name:(Printf.sprintf "flooding.frontier_scan_large n=%d" n)
      (Staged.stage (fun () -> ignore (Core.Flooding.time ~rng ~source:0 model)));
  ]

let run_group ~cfg tests =
  let tests = Test.make_grouped ~name:"dyngraph" tests in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (name, result) ->
         let ns =
           match Analyze.OLS.estimates result with
           | Some (e :: _) -> e
           | Some [] | None -> nan
         in
         let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
         (name, ns, r2))

let run_micro sc =
  Printf.printf "\n==== Micro-benchmarks (Bechamel, OLS time per call) ====\n\n";
  let base =
    run_group ~cfg:(Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()) (micro_tests ())
  in
  let numeric =
    if sc <> Simulate.Runner.Large then base
    else
      (* A call is a whole off-heap flood (~1.5 s at n=2^18, floored
         by the stationary init's ~m geometric draws): its own group
         with a quota wide enough for several samples, so the OLS
         estimate is stable enough to gate at 10%. *)
      base
      @ run_group
          ~cfg:(Benchmark.cfg ~limit:8 ~quota:(Time.second 8.0) ~kde:None ())
          (large_micro_tests ())
  in
  let table =
    Stats.Table.create ~title:"time per call" ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun (name, ns, r2) -> Stats.Table.add_row table [ Text name; Fixed (ns, 1); Fixed (r2, 4) ])
    numeric;
  print_string (Stats.Table.render table);
  numeric

(* --- machine-readable baseline --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

(* Provenance for the dyngraph-bench/7 schema: which commit and which
   machine produced the numbers, so baselines are attributable across
   PRs. Both fields degrade to "unknown" rather than fail. *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, line) with Unix.WEXITED 0, rev when rev <> "" -> rev | _ -> "unknown"
  with _ -> "unknown"

let hostname () = try Unix.gethostname () with _ -> "unknown"

let metrics_json (ms : (string * int) list) =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v) ms)
  ^ "}"

let write_json path ~claims ~micro ~service =
  let oc = open_out path in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.fprintf oc "{\n  \"schema\": \"dyngraph-bench/7\",\n";
  Printf.fprintf oc "  \"date\": \"%04d-%02d-%02dT%02d:%02d:%02d\",\n" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
  Printf.fprintf oc "  \"git_rev\": \"%s\",\n" (json_escape (git_rev ()));
  Printf.fprintf oc "  \"hostname\": \"%s\",\n" (json_escape (hostname ()));
  (* Fleet topology of the claim phase (schema 5): worker domains per
     process and worker processes (0 = in-process). Deterministic rows
     never depend on either; the seconds column does. *)
  Printf.fprintf oc "  \"topology\": {\"jobs\": %d, \"procs\": %d},\n"
    (Exec.workers (sched ()))
    (procs ());
  Printf.fprintf oc "  \"scale\": \"%s\",\n" (scale_name (scale ()));
  Printf.fprintf oc "  \"seed\": 42,\n";
  Printf.fprintf oc "  \"workers\": %d,\n" (Exec.workers (sched ()));
  Printf.fprintf oc "  \"claims\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"title\": \"%s\", \"passed\": %b, \"seconds\": %s, \"metrics\": %s}%s\n"
        (json_escape r.row_id) (json_escape r.row_title) r.row_ok (json_float r.row_seconds)
        (metrics_json r.row_metrics)
        (if i = List.length claims - 1 then "" else ","))
    claims;
  Printf.fprintf oc "  ],\n  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (json_float ns) (json_float r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  (* Schema 7: the service tier's throughput/latency claims, one row
     per executor-count × client-concurrency level. Empty (not absent)
     when the run skipped --serve, so readers can tell "not measured"
     from "older schema". *)
  Printf.fprintf oc "  ],\n  \"service\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"executors\": %d, \"clients\": %d, \"per_client\": %d, \"completed\": %d, \
         \"errors\": %d, \"rps\": %s, \"p50_ms\": %s, \"p99_ms\": %s}%s\n"
        r.svc_executors r.svc_clients r.svc_per_client r.svc_completed r.svc_errors
        (json_float r.svc_rps) (json_float r.svc_p50_ms) (json_float r.svc_p99_ms)
        (if i = List.length service - 1 then "" else ","))
    service;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  (* Fleet worker mode: spawned by a parent bench running with --procs.
     Serve experiment shards over stdin/stdout and exit — no banner, no
     micro phase. Metrics are always on (the parent's claim phase runs
     with them on and absorbs the deltas we ship back). *)
  if Array.exists (( = ) "--worker") Sys.argv then begin
    Obs.Clock.set Unix.gettimeofday;
    Obs.Metrics.enable ();
    Simulate.Fleet.serve ();
    exit 0
  end;
  (* --jobs also powers intra-run tile parallelism: the large-tier
     flood and the partitioned edge-MEG step fan their tiles over
     Exec.Pool, so a single large run accelerates, not just the
     many-trials phases. Results are identical at every jobs count. *)
  Exec.Pool.set_workers (Exec.workers (sched ()));
  let sc = scale () in
  (* --only-large skips the registry claim phase: the smoke scripts
     compare the large-tier row across --jobs counts and should not
     pay for the full table twice. *)
  let rows =
    if Array.exists (( = ) "--only-large") Sys.argv then []
    else List.map row_of_outcome (claim_tables ())
  in
  let rows = if sc = Simulate.Runner.Large then rows @ large_tier () else rows in
  let micro =
    if Array.exists (( = ) "--no-micro") Sys.argv then [] else run_micro sc
  in
  let service =
    if Array.exists (( = ) "--serve") Sys.argv then service_tier () else []
  in
  match json_path () with
  | None -> ()
  | Some path ->
      write_json path ~claims:rows ~micro ~service;
      Printf.printf "\nwrote %s\n" path
