(* Delay-tolerant MANET in the paper's headline regime.

     dune exec examples/manet_sparse.exe

   The setting the paper singles out as "the model setting that best
   fits opportunistic delay-tolerant Mobile Ad-hoc Networks": a square
   of side L ~ sqrt(n) with constant transmission radius and constant
   node speed. Every snapshot is sparse and highly disconnected —
   messages move because nodes move — yet flooding completes in
   ~sqrt(n) polylog steps.

   This example quantifies "highly disconnected": per-snapshot isolated
   fraction, component count, largest component, then shows flooding
   succeeding anyway and compares with the Omega(L/(r+v)) floor. *)

let () =
  let rng = Prng.Rng.of_seed 31 in
  let r = 1.0 and v = 1.0 in

  Printf.printf "Sparse delay-tolerant MANET: L = sqrt(n), r = %.1f, v = %.1f\n\n" r v;
  let table =
    Stats.Table.create ~title:"snapshot structure vs flooding"
      ~columns:
        [
          "n";
          "L";
          "isolated %";
          "components";
          "largest comp %";
          "flood mean";
          "flood / (L/(r+v))";
        ]
  in
  List.iter
    (fun n ->
      let l = sqrt (float_of_int n) in
      let manet = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
      (* Snapshot statistics in steady state, averaged over snapshots. *)
      Core.Dynamic.reset manet (Prng.Rng.split rng);
      let warmup = int_of_float (3. *. l) in
      for _ = 1 to warmup do
        Core.Dynamic.step manet
      done;
      let snaps = 30 in
      let iso = Stats.Summary.create () in
      let comps = Stats.Summary.create () in
      let largest = Stats.Summary.create () in
      for _ = 1 to snaps do
        let g = Core.Dynamic.snapshot_graph manet in
        Stats.Summary.add iso (100. *. Core.Dynamic.isolated_fraction manet);
        Stats.Summary.add comps (float_of_int (Graph.Traverse.n_components g));
        Stats.Summary.add largest
          (100. *. float_of_int (Graph.Traverse.largest_component_size g) /. float_of_int n);
        for _ = 1 to 5 do
          Core.Dynamic.step manet
        done
      done;
      let flood = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials:10 (fun () -> manet) in
      let floor = Theory.Bounds.lower_bound_propagation ~l ~r ~v:(1.25 *. v) in
      Stats.Table.add_row table
        [
          Int n;
          Fixed (l, 1);
          Fixed (Stats.Summary.mean iso, 1);
          Fixed (Stats.Summary.mean comps, 1);
          Fixed (Stats.Summary.mean largest, 1);
          Fixed (Stats.Summary.mean flood, 1);
          Fixed (Stats.Summary.mean flood /. floor, 2);
        ])
    [ 64; 144; 256; 400 ];
  print_string (Stats.Table.render table);
  Printf.printf
    "\nEvery snapshot is shattered into many components (most nodes see nobody),\n\
     yet flooding finishes within a small factor of the mobility floor L/(r+v):\n\
     store-carry-forward emerges from plain flooding on the dynamic graph.\n"
