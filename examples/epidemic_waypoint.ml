(* Epidemic spread in a mobile population — the introduction's "spread
   of disease" scenario.

     dune exec examples/epidemic_waypoint.exe

   n agents move through an L x L park following the random waypoint
   model; an infection transmits whenever an infected and a susceptible
   agent come within the contact radius during a time step (= flooding
   on the waypoint dynamic graph). We measure how the infection curve
   |I_t| and the time-to-full-outbreak respond to agent speed, and show
   the phase structure the paper proves: exponential growth to n/2,
   then a short saturation tail. *)

let infection_curve ~rng ~n ~l ~r ~v =
  let park = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
  Core.Flooding.run ~rng ~source:0 park

let sparkline trajectory n =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  String.init
    (Array.length trajectory)
    (fun i ->
      let level = trajectory.(i) * (Array.length glyphs - 1) / n in
      glyphs.(level))

let () =
  let n = 150 in
  let l = 14. and r = 1.2 in
  let rng = Prng.Rng.of_seed 7 in

  Printf.printf "Epidemic in a %.0fx%.0f park, %d agents, contact radius %.1f\n\n" l l n r;
  let table =
    Stats.Table.create ~title:"outbreak vs agent speed"
      ~columns:
        [ "speed"; "time to n/2"; "time to all"; "saturation"; "max doubling gap" ]
  in
  List.iter
    (fun v ->
      let result = infection_curve ~rng:(Prng.Rng.split rng) ~n ~l ~r ~v in
      let a = Core.Phases.analyze ~n result.trajectory in
      let opt = function Some t -> Stats.Table.Int t | None -> Stats.Table.Missing in
      Stats.Table.add_row table
        [
          Float v;
          opt a.spreading_time;
          opt result.time;
          opt a.saturation_time;
          opt a.max_doubling_gap;
        ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  print_string (Stats.Table.render table);

  Printf.printf "\ninfection curve at speed 1.0 (one run, each column is a step):\n";
  let result = infection_curve ~rng:(Prng.Rng.split rng) ~n ~l ~r ~v:1.0 in
  Printf.printf "  [%s]\n" (sparkline result.trajectory n);
  Printf.printf "  infected: start 1, end %d\n\n"
    result.trajectory.(Array.length result.trajectory - 1);

  (* Containment question: if infected agents only transmit during
     their first k steps (acute phase), does the outbreak still reach
     everyone? This is the parsimonious flooding of [4]. *)
  let park () = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:1. ~v_max:1.25 () in
  Printf.printf "acute-phase-only transmission (parsimonious flooding):\n";
  let cap = 2_000 in
  List.iter
    (fun k ->
      let s =
        Core.Flooding.mean_time ~cap
          ~protocol:(Core.Flooding.Parsimonious k)
          ~rng:(Prng.Rng.split rng) ~trials:10 park
      in
      if Stats.Summary.max s >= float_of_int cap then
        Printf.printf
          "  acute window %2d steps: outbreak stalled — some runs never reached \
           everyone within %d steps (containment works)\n"
          k cap
      else
        Printf.printf "  acute window %2d steps: mean outbreak time %s\n" k
          (Stats.Summary.to_string s))
    [ 2; 5; 20 ]
