(* Quickstart: build a dynamic graph, run flooding, compare against the
   paper's bound.

     dune exec examples/quickstart.exe

   The model here is the classic edge-MEG(p, q) of the paper's Appendix
   A: every potential edge of a 256-node graph flips on with probability
   p and off with probability q, independently. *)

let () =
  let n = 256 in
  let p = 4. /. float_of_int n and q = 0.5 in
  let rng = Prng.Rng.of_seed 2024 in

  (* 1. A dynamic-graph process. Every model in the library exposes the
     same Core.Dynamic.t interface. *)
  let network = Edge_meg.Classic.make ~n ~p ~q () in

  (* 2. Flood from node 0 and inspect the result. *)
  let result = Core.Flooding.run ~rng ~source:0 network in
  (match result.time with
  | Some t -> Printf.printf "flooding completed in %d steps\n" t
  | None -> Printf.printf "flooding hit the step cap\n");
  Printf.printf "informed nodes per step: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int result.trajectory)));

  (* 3. Average over independent trials. The builder makes a fresh
     model per trial, so trials are independent jobs — pass
     [~sched:(Exec.pool 4)] to run them on worker domains. *)
  let summary = Core.Flooding.mean_time ~rng ~trials:20 (fun () -> network) in
  Printf.printf "over 20 trials: %s\n" (Stats.Summary.to_string summary);

  (* 4. Compare with the almost-tight bound of [10] (paper Eq. 2) and
     the per-edge chain's closed forms. *)
  let chain = Edge_meg.Classic.params ~p ~q in
  Printf.printf "stationary edge probability alpha = %.4f, chain mixing time = %d\n"
    (Markov.Two_state.stationary_on chain)
    (Markov.Two_state.mixing_time chain);
  Printf.printf "Eq. 2 bound log n / log(1+np) = %.2f  (measured mean %.2f)\n"
    (Theory.Bounds.edge_meg_eq2 ~n ~p)
    (Stats.Summary.mean summary);

  (* 5. The same flooding run works on any model — e.g. a random
     waypoint MANET — without changing a line of the protocol. *)
  let manet = Mobility.Waypoint.dynamic ~n:64 ~l:8. ~r:1.5 ~v_min:1. ~v_max:1.25 () in
  match Core.Flooding.time ~rng ~source:0 manet with
  | Some t -> Printf.printf "same protocol on a waypoint MANET: %d steps\n" t
  | None -> Printf.printf "waypoint flooding hit the cap\n"
