(* File broadcast in a peer-to-peer overlay under churn.

     dune exec examples/p2p_churn.exe

   The paper's edge-MEG is the natural model of a P2P overlay where
   links come and go independently: a missing link appears with
   probability p per round (peer discovery), an existing link drops
   with probability q (disconnects, NAT timeouts). One seeder starts
   with the file; every peer forwards to current neighbours each round.

   We compare three scenarios the generalised edge-MEG machinery
   distinguishes:
     - memoryless churn (two-state chain),
     - sticky sessions (4-state hidden chain: links persist in bursts),
     - bandwidth-limited forwarding (randomised push, Section 5). *)

(* A k-state cycle advanced with probability [move]. With the link up
   in the last [on] states (decided by the chi below), the stationary
   density is on/k — same as a matching two-state chain — but sessions
   persist in bursts of ~on/move steps and the chain mixes in ~k/move
   steps instead of instantly. *)
let sticky_chain ~k ~move =
  Markov.Chain.of_rows
    (Array.init k (fun s -> [| (s, 1. -. move); ((s + 1) mod k, move) |]))

let () =
  let n = 200 in
  let rng = Prng.Rng.of_seed 99 in
  let trials = 15 in

  Printf.printf "P2P broadcast, %d peers, one seeder\n\n" n;

  (* Scenario 1: memoryless churn at three link densities. *)
  let table1 =
    Stats.Table.create ~title:"memoryless churn (edge-MEG p,q)"
      ~columns:[ "avg degree"; "p"; "q"; "rounds mean"; "rounds max"; "Eq.2 bound" ]
  in
  List.iter
    (fun avg_degree ->
      let q = 0.3 in
      (* Stationary degree = alpha (n-1); alpha = p/(p+q). *)
      let alpha = avg_degree /. float_of_int (n - 1) in
      let p = q *. alpha /. (1. -. alpha) in
      let overlay () = Edge_meg.Classic.make ~n ~p ~q () in
      let s = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials overlay in
      Stats.Table.add_row table1
        [
          Float avg_degree;
          Float p;
          Float q;
          Float (Stats.Summary.mean s);
          Float (Stats.Summary.max s);
          Float (Theory.Bounds.edge_meg_eq2 ~n ~p);
        ])
    [ 1.0; 2.0; 8.0 ];
  print_string (Stats.Table.render table1);

  (* Scenario 2: sticky sessions vs memoryless at equal, sparse density
     (alpha = 1/16 on 48 peers: snapshots are too thin for one-shot
     flooding, so link turnover — the mixing time — sets the pace). *)
  Printf.printf "\n";
  let table2 =
    Stats.Table.create ~title:"sticky sessions vs memoryless (equal density 1/16, 48 peers)"
      ~columns:[ "link model"; "T_mix"; "rounds mean"; "rounds sd" ]
  in
  let add_general name chain chi =
    let overlay () = Edge_meg.General.make ~n:48 ~chain ~chi () in
    let s = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials overlay in
    let t_mix =
      match Markov.Chain.mixing_time chain with Some t -> t | None -> -1
    in
    Stats.Table.add_row table2
      [ Text name; Int t_mix; Float (Stats.Summary.mean s); Float (Stats.Summary.stddev s) ]
  in
  let k = 16 in
  (* Two-state chain with the same stationary density 1/16. *)
  add_general "memoryless (p=.02, q=.3)"
    (Markov.Two_state.chain (Markov.Two_state.make ~p:0.02 ~q:0.3))
    (fun s -> s = 1);
  add_general "sticky (16-state, move=.5)" (sticky_chain ~k ~move:0.5) (fun s -> s = k - 1);
  add_general "very sticky (move=.1)" (sticky_chain ~k ~move:0.1) (fun s -> s = k - 1);
  print_string (Stats.Table.render table2);
  Printf.printf
    "  (equal link density; mild stickiness is harmless — a live session even gets\n\
    \   several forwarding chances — but once sessions outlive the epoch scale the\n\
    \   mixing-time factor of Theorem 1 shows up as slower, more variable spread)\n\n";

  (* Scenario 3: bandwidth caps via randomised push. *)
  let table3 =
    Stats.Table.create ~title:"bandwidth-limited forwarding (push-p, Sec. 5)"
      ~columns:[ "forward prob"; "rounds mean"; "slowdown" ]
  in
  let overlay () = Edge_meg.Classic.make ~n ~p:(2. /. float_of_int n) ~q:0.3 () in
  let full =
    Stats.Summary.mean (Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials overlay)
  in
  List.iter
    (fun p_fwd ->
      let s =
        Core.Flooding.mean_time
          ~protocol:(Core.Flooding.Push p_fwd)
          ~rng:(Prng.Rng.split rng) ~trials overlay
      in
      Stats.Table.add_row table3
        [ Float p_fwd; Float (Stats.Summary.mean s); Fixed (Stats.Summary.mean s /. full, 2) ])
    [ 1.0; 0.5; 0.2; 0.1 ];
  print_string (Stats.Table.render table3)
