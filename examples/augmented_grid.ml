(* Random walkers on k-augmented grids: when does extra local
   connectivity help information spread?

     dune exec examples/augmented_grid.exe

   The paper's Corollary 6 example: take an s-point grid, add an edge
   between every pair of points within Manhattan distance k, and let n
   walkers do lazy random walks, infecting co-located walkers. The
   meeting-time baseline of [15] predicts no improvement with k (two
   walks still need ~s log s steps to meet); the paper's mixing-time
   bound improves by k^2 — and the measurement follows the mixing
   time. *)

let () =
  let rng = Prng.Rng.of_seed 5 in
  let side = 14 in
  let s = side * side in
  let n = s in
  Printf.printf "%dx%d grid (%d points), %d lazy walkers, infect on co-location\n\n" side side
    s n;
  let table =
    Stats.Table.create ~title:"augmentation radius k"
      ~columns:
        [ "k"; "degree"; "diameter"; "walk T_mix"; "meeting T*"; "flood mean"; "flood sd" ]
  in
  List.iter
    (fun k ->
      let h = Graph.Builders.augmented_grid ~rows:side ~cols:side ~k in
      let t_mix =
        match Markov.Chain.mixing_time ~max_t:3000 (Markov.Walk.lazy_chain h) with
        | Some t -> Stats.Table.Int t
        | None -> Stats.Table.Text ">3000"
      in
      let meeting =
        Markov.Walk.mean_meeting_time ~rng:(Prng.Rng.split rng) ~trials:30 h
      in
      let walkers () = Random_path.Rp_model.random_walk ~n h in
      let flood = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials:10 walkers in
      Stats.Table.add_row table
        [
          Int k;
          Fixed (2. *. float_of_int (Graph.Static.m h) /. float_of_int s, 1);
          Int (Graph.Traverse.diameter h);
          t_mix;
          Fixed (meeting, 0);
          Fixed (Stats.Summary.mean flood, 1);
          Fixed (Stats.Summary.stddev flood, 1);
        ])
    [ 1; 2; 3; 4 ];
  print_string (Stats.Table.render table);
  Printf.printf
    "\nMeeting time barely moves with k (the [15] baseline bound is stuck), while\n\
     mixing time and measured flooding both collapse — the paper's Corollary 6\n\
     captures the real mechanism.\n"
