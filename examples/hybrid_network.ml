(* Hybrid network: a mobile MANET with a thin fixed backbone.

     dune exec examples/hybrid_network.exe

   Real deployments are rarely pure: a sparse waypoint MANET might be
   helped by a few static relay links (mesh routers), or by an
   unreliable infrastructure overlay (an edge-MEG). Because every model
   exposes the same Core.Dynamic interface, composing them is a single
   Dynamic.union — the superposed process is again a MEG, so the
   paper's framework still applies, and flooding runs unchanged.

   We measure how much a backbone of k random static links accelerates
   flooding in the sparse regime, and compare with an equally-sized
   flaky overlay. *)

let () =
  let rng = Prng.Rng.of_seed 77 in
  let n = 200 in
  (* Sparser than the E6 regime (half a node per unit area): plenty of
     room for an overlay to matter. *)
  let l = 1.5 *. sqrt (float_of_int n) in
  let trials = 12 in
  let manet () = Mobility.Waypoint.dynamic ~n ~l ~r:1.0 ~v_min:1. ~v_max:1.25 () in

  let backbone k seed =
    (* k uniformly random long-range relay links, fixed for the run. *)
    let rng = Prng.Rng.of_seed seed in
    let edges =
      List.init k (fun _ ->
          let pair = Prng.Rng.sample_without_replacement rng 2 n in
          (pair.(0), pair.(1)))
    in
    Core.Dynamic.of_static (Graph.Static.of_edges ~n edges)
  in
  let flaky_overlay k =
    (* Same expected number of extra links, but each link flickers with
       p = q = 1/2 over the k chosen pairs... approximated here by an
       edge-MEG over all pairs with matching expected edge count. *)
    let alpha = float_of_int k /. float_of_int (Graph.Pairs.total n) in
    let q = 0.5 in
    let p = q *. alpha /. (1. -. alpha) in
    Edge_meg.Classic.make ~n ~p ~q ()
  in

  Printf.printf "Sparse MANET (n = %d, L = %.1f, r = 1) with an auxiliary overlay\n\n" n l;
  let table =
    Stats.Table.create ~title:"flooding with hybrid overlays"
      ~columns:[ "overlay"; "flood mean"; "flood sd"; "speedup vs none" ]
  in
  let base = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials manet in
  let base_mean = Stats.Summary.mean base in
  let add name dyn =
    let s = Core.Flooding.mean_time ~rng:(Prng.Rng.split rng) ~trials dyn in
    Stats.Table.add_row table
      [
        Text name;
        Float (Stats.Summary.mean s);
        Float (Stats.Summary.stddev s);
        Fixed (base_mean /. Stats.Summary.mean s, 2);
      ]
  in
  Stats.Table.add_row table
    [ Text "none (pure MANET)"; Float base_mean; Float (Stats.Summary.stddev base); Fixed (1., 2) ];
  List.iter
    (fun k ->
      add
        (Printf.sprintf "%d static relay links" k)
        (fun () -> Core.Dynamic.union (manet ()) (backbone k (1000 + k)));
      add
        (Printf.sprintf "flaky overlay, ~%d links" k)
        (fun () -> Core.Dynamic.union (manet ()) (flaky_overlay k)))
    [ 5; 20 ];
  print_string (Stats.Table.render table);
  Printf.printf
    "\nLong-range links cut through the spatial bottleneck (the MANET moves\n\
     information at r + v per step; a relay link teleports it). Note the flaky\n\
     overlay beating the same number of *fixed* relays: links that re-randomise\n\
     every step reach more node pairs over time — dynamics help, exactly the\n\
     paper's point. Either way the composition is just another MEG.\n"
