(** The generalised edge-MEG of the paper's Appendix A: every potential
    edge evolves according to an arbitrary (hidden) finite Markov chain
    [M], and a map [chi : state -> bool] decides whether the edge is
    present. Edges are independent, so the β-independence condition
    holds with β = 1 and Theorem 1 applies with
    α = Σ_{s : chi(s)} π(s).

    The per-edge chain state is stored densely (one int per pair), so a
    step costs O(n²); intended for moderate n (≤ ~1000). The chi-on
    pairs are additionally mirrored in a {!Graph.Sparse_set}, so
    snapshot enumeration costs O(m), not O(n²). *)

val make :
  ?init:[ `Stationary | `State of int ] ->
  ?storage:[ `Auto | `Heap | `Offheap ] ->
  ?parts:int ->
  n:int ->
  chain:Markov.Chain.t ->
  chi:(int -> bool) ->
  unit ->
  Core.Dynamic.t
(** [make ~n ~chain ~chi ()] builds the process. [`Stationary] (default)
    draws each edge's initial state from the chain's stationary
    distribution; [`State s] starts every edge in state [s].

    [`Offheap] keeps the per-pair chain states, present set and delta
    buffers in the {!Graph.Storage} layer (int32 cells — about half
    the resident footprint, none of it GC-scanned) and requires the
    pair universe n(n-1)/2 to fit the int32 range (n <= 65536); draw
    streams are identical to [`Heap]'s. [`Auto] (default) stays on the
    heap at every n this O(n²)-per-step model can realistically
    reach.

    [?parts] opts into the partitioned off-heap engine (DESIGN.md
    section 11): the pair universe is cut into 64 fixed strips, each
    with its own RNG substream indexed by strip (never by domain), and
    strips step in parallel on {!Exec.Pool} grouped into [parts] tasks
    (clamped to 1..64). Results depend only on the reset seed — not on
    [parts] or the worker count — but the draw stream deliberately
    differs from the sequential engines'. Rejected with [`Heap]; still
    subject to the int32 pair-universe bound. *)

val stationary_alpha : chain:Markov.Chain.t -> chi:(int -> bool) -> float
(** Probability that an edge exists in the stationary regime — the α
    fed to Theorem 1. *)

val bound : chain:Markov.Chain.t -> chi:(int -> bool) -> n:int -> float
(** The Appendix-A instantiation of Theorem 1:
    T_mix · (1/(nα) + 1)² · log² n, with T_mix computed exactly from
    the chain. Uses T_mix = 1 when the chain mixes instantly. *)
