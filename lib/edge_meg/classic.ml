type init = Stationary | Empty | Full

let sample_pairs_bernoulli rng n prob f =
  (* Visit each pair index independently with probability [prob], via
     geometric jumps: O(total * prob) expected. *)
  if prob > 0. then begin
    let total = Graph.Pairs.total n in
    let idx = ref (Prng.Rng.geometric rng prob) in
    while !idx < total do
      f !idx;
      idx := !idx + 1 + Prng.Rng.geometric rng prob
    done
  end

let make ?(init = Stationary) ~n ~p ~q () =
  let chain = Markov.Two_state.make ~p ~q in
  (* Present edges live in a sparse set over the pair indices: the
     birth scan's membership check is two array reads, the death scan
     subsamples the dense array geometrically, and enumeration is a
     linear walk — no hashing anywhere in the step. *)
  let present = Graph.Sparse_set.create (Graph.Pairs.total n) in
  let rng = ref (Prng.Rng.of_seed 0) in
  (* Birth hits of the current step, reused across steps. *)
  let births = ref (Array.make 64 0) in
  let n_births = ref 0 in
  let push_birth idx =
    if !n_births = Array.length !births then begin
      let bigger = Array.make (2 * !n_births) 0 in
      Array.blit !births 0 bigger 0 !n_births;
      births := bigger
    end;
    !births.(!n_births) <- idx;
    incr n_births
  in
  let reset r =
    rng := r;
    Graph.Sparse_set.clear present;
    match init with
    | Empty -> ()
    | Full -> Graph.Sparse_set.fill_all present
    | Stationary ->
        let alpha = Markov.Two_state.stationary_on chain in
        if alpha >= 1. then Graph.Sparse_set.fill_all present
        else sample_pairs_bernoulli !rng n alpha (Graph.Sparse_set.add present)
  in
  (* A step applies, to every edge simultaneously, one transition of its
     two-state chain: absent edges are born with probability p, present
     edges die with probability q. Birth hits are collected against the
     pre-step edge set *before* deaths are applied, so an edge that dies
     this step cannot also be resurrected by the birth scan. *)
  let step () =
    n_births := 0;
    sample_pairs_bernoulli !rng n p (fun idx ->
        if not (Graph.Sparse_set.mem present idx) then push_birth idx);
    Graph.Sparse_set.remove_bernoulli present !rng ~p:q (fun _ -> ());
    for i = 0 to !n_births - 1 do
      Graph.Sparse_set.add present !births.(i)
    done
  in
  let iter_edges f = Graph.Sparse_set.iter present (fun idx -> Graph.Pairs.decode_with n idx f) in
  (* Same dense walk as [iter_edges] (the enumeration orders must
     agree), pushing straight into the buffer. *)
  let fill_edges buf =
    let push u v = Graph.Edge_buffer.push buf u v in
    Graph.Sparse_set.iter present (fun idx -> Graph.Pairs.decode_with n idx push)
  in
  Core.Dynamic.make ~fill_edges ~n ~reset ~step ~iter_edges ()

let params ~p ~q = Markov.Two_state.make ~p ~q

let expected_stationary_edges ~n ~p ~q =
  let chain = Markov.Two_state.make ~p ~q in
  Markov.Two_state.stationary_on chain *. float_of_int (Graph.Pairs.total n)
