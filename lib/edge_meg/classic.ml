type init = Stationary | Empty | Full

let make_heap ~init ~n ~p ~q () =
  let chain = Markov.Two_state.make ~p ~q in
  let total = Graph.Pairs.total n in
  (* Present edges live in a sparse set over the pair indices: the
     birth scan's membership check is two array reads, the death scan
     subsamples the dense array geometrically, and enumeration is a
     linear walk — no hashing anywhere in the step. *)
  let present = Graph.Sparse_set.create total in
  let rng = ref (Prng.Rng.of_seed 0) in
  (* Tabulated geometric samplers (one per scan probability), built
     once per model: every skip draw of the birth, death and
     stationary-init scans becomes two table reads instead of a
     logarithm — the scans' dominant per-draw cost. [None] disables
     the scan (prob = 0) or routes prob = 1 through the exact
     exhaustive branches. *)
  let geo prob = if prob > 0. && prob < 1. then Some (Prng.Rng.Geo.make ~p:prob) else None in
  let geo_p = geo p in
  let geo_q = geo q in
  let alpha = Markov.Two_state.stationary_on chain in
  let geo_alpha = geo alpha in
  (* Endpoint mirror: eu.(i) / ev.(i) are the decoded endpoints of the
     pair index at dense slot [i] of [present], maintained through
     every add and swap-remove. Enumeration reads them back instead of
     decoding (no sqrt per edge); only births decode, and those arrive
     in ascending index order, so an incremental row cursor decodes
     each in O(1). Grown on demand to the peak live-edge count. *)
  let eu = ref (Array.make 64 0) in
  let ev = ref (Array.make 64 0) in
  let ensure_ends needed =
    if needed > Array.length !eu then begin
      let cap = max needed (2 * Array.length !eu) in
      let bu = Array.make cap 0 and bv = Array.make cap 0 in
      Array.blit !eu 0 bu 0 (Array.length !eu);
      Array.blit !ev 0 bv 0 (Array.length !ev);
      eu := bu;
      ev := bv
    end
  in
  (* Visit each pair index independently with probability [prob] via
     geometric jumps (O(total · prob) expected draws), handing the
     callback the decoded endpoints from the monotone cursor. Only the
     prob = 1 paths land here (the tabulated samplers cover (0, 1) and
     the hot scans are written out at their call sites); [geometric]
     then returns 0 every draw, an exhaustive walk. *)
  let scan_pairs r prob f =
    if prob > 0. then begin
      let idx = ref (Prng.Rng.geometric r prob) in
      if !idx < total then begin
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        while !idx < total do
          while !idx >= !next do
            incr u;
            base := !next;
            next := !next + (n - 1 - !u)
          done;
          f !idx !u (!u + 1 + (!idx - !base));
          idx := !idx + 1 + Prng.Rng.geometric r prob
        done
      end
    end
  in
  let add_present idx u v =
    (* Both call sites (reset's stationary scan, step's birth apply)
       only ever pass absent indices, so skip [add]'s membership
       re-check. *)
    let pos = Graph.Sparse_set.length present in
    ensure_ends (pos + 1);
    Graph.Sparse_set.add_unchecked present idx;
    Array.unsafe_set !eu pos u;
    Array.unsafe_set !ev pos v
  in
  (* Birth hits of the current step (index + endpoints), reused across
     steps; deaths are collected into a reused edge buffer. Together
     they are the step's delta report. *)
  let b_idx = ref (Array.make 64 0) in
  let b_u = ref (Array.make 64 0) in
  let b_v = ref (Array.make 64 0) in
  let n_births = ref 0 in
  let push_birth idx u v =
    let k = !n_births in
    if k = Array.length !b_idx then begin
      let cap = 2 * k in
      let grow a = let b = Array.make cap 0 in Array.blit !a 0 b 0 k; a := b in
      grow b_idx;
      grow b_u;
      grow b_v
    end;
    Array.unsafe_set !b_idx k idx;
    Array.unsafe_set !b_u k u;
    Array.unsafe_set !b_v k v;
    n_births := k + 1
  in
  let deaths = Graph.Edge_buffer.create ~capacity:64 () in
  let deltas_valid = ref false in
  (* Saturated initialisation: the whole universe, mirror decoded by
     one monotone walk (dense slot i holds pair index i after
     fill_all). *)
  let reset_full () =
    ensure_ends total;
    Graph.Sparse_set.fill_all present;
    let u = ref 0 and base = ref 0 and next = ref (n - 1) in
    for idx = 0 to total - 1 do
      while idx >= !next do
        incr u;
        base := !next;
        next := !next + (n - 1 - !u)
      done;
      Array.unsafe_set !eu idx !u;
      Array.unsafe_set !ev idx (!u + 1 + (idx - !base))
    done
  in
  let reset r =
    rng := r;
    Graph.Sparse_set.clear present;
    deltas_valid := false;
    match init with
    | Empty -> ()
    | Full -> reset_full ()
    | Stationary ->
        if alpha >= 1. then reset_full ()
        else (
          match geo_alpha with
          | Some geo ->
              (* [scan_pairs]'s loop with the insert call written
                 directly — reset is once per trial but still
                 ~alpha·total events of the run's budget. *)
              let r = !rng in
              let idx = ref (Prng.Rng.Geo.draw geo r) in
              if !idx < total then begin
                let u = ref 0 and base = ref 0 and next = ref (n - 1) in
                while !idx < total do
                  while !idx >= !next do
                    incr u;
                    base := !next;
                    next := !next + (n - 1 - !u)
                  done;
                  let i = !idx in
                  add_present i !u (!u + 1 + (i - !base));
                  idx := i + 1 + Prng.Rng.Geo.draw geo r
                done
              end
          | None -> scan_pairs !rng alpha (fun idx u v -> add_present idx u v))
  in
  (* A step applies, to every edge simultaneously, one transition of its
     two-state chain: absent edges are born with probability p, present
     edges die with probability q. Birth hits are collected against the
     pre-step edge set *before* deaths are applied, so an edge that dies
     this step cannot also be resurrected by the birth scan. *)
  let step () =
    n_births := 0;
    Graph.Edge_buffer.clear deaths;
    (* Birth scan, written out instead of going through [scan_pairs]:
       this is the hottest loop in the model and the closure per event
       (callback + capture reads) costs as much as the membership test
       itself. Same cursor walk, same draw sequence. *)
    (match geo_p with
    | Some geo ->
        let r = !rng in
        let idx = ref (Prng.Rng.Geo.draw geo r) in
        if !idx < total then begin
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          while !idx < total do
            while !idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            let i = !idx in
            if not (Graph.Sparse_set.mem present i) then
              push_birth i !u (!u + 1 + (i - !base));
            idx := i + 1 + Prng.Rng.Geo.draw geo r
          done
        end
    | None ->
        scan_pairs !rng p (fun idx u v ->
            if not (Graph.Sparse_set.mem present idx) then push_birth idx u v));
    (* The death scan never grows the mirror, so its arrays can be
       hoisted out of the callback. *)
    let us = !eu and vs = !ev in
    let on_death _ i =
      (* The dying edge's endpoints still sit at mirror slot [i]; the
         survivor swapped into [i] has its payload at the old last
         slot, [length present]. *)
      Graph.Edge_buffer.push deaths (Array.unsafe_get us i) (Array.unsafe_get vs i);
      let last = Graph.Sparse_set.length present in
      Array.unsafe_set us i (Array.unsafe_get us last);
      Array.unsafe_set vs i (Array.unsafe_get vs last)
    in
    (match geo_q with
    | Some geo -> Graph.Sparse_set.remove_geo_pos present geo !rng on_death
    | None -> Graph.Sparse_set.remove_bernoulli_pos present !rng ~p:q on_death);
    (* Apply the buffered births in one batch: a single capacity check
       for the whole block, then straight unsafe stores. *)
    let nb = !n_births in
    if nb > 0 then begin
      let pos0 = Graph.Sparse_set.length present in
      ensure_ends (pos0 + nb);
      let us = !eu and vs = !ev in
      let bi = !b_idx and bu = !b_u and bv = !b_v in
      for k = 0 to nb - 1 do
        let pos = pos0 + k in
        Graph.Sparse_set.add_unchecked present (Array.unsafe_get bi k);
        Array.unsafe_set us pos (Array.unsafe_get bu k);
        Array.unsafe_set vs pos (Array.unsafe_get bv k)
      done
    end;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      f (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  (* Same dense walk as [iter_edges] (the enumeration orders must
     agree), pushing straight into the buffer. *)
  let fill_edges buf =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         let us = !b_u and vs = !b_v in
         for k = 0 to !n_births - 1 do
           birth (Array.unsafe_get us k) (Array.unsafe_get vs k)
         done;
         Graph.Edge_buffer.iter deaths (fun u v -> death u v);
         true
       end
  in
  let expected_edges =
    match init with
    | Full -> total
    | Empty | Stationary -> int_of_float (ceil (alpha *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then !n_births + Graph.Edge_buffer.length deaths else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

(* The same model with every size-scaling structure in the
   {!Graph.Storage} layer: the present set is a {!Graph.Sparse_set.Big}
   (growable off-heap dense array + hash position index — the pair
   universe n(n-1)/2 is ~2^39 at n = 2^20, far beyond what the
   array-indexed set can address), the endpoint mirror and birth
   buffers are int32 / native-int Bigarray vectors, and the death
   buffer is an off-heap {!Graph.Edge_buffer.I32}. Memory is O(peak
   live-edge count), independent of the universe, and the major heap
   carries only control records.

   Every scan is the same cursor walk drawing the same geometric
   stream as the heap implementation, and [Sparse_set.Big] mirrors the
   array-indexed set operation for operation, so for a given seed the
   two backings produce identical trajectories (asserted by
   test/test_edge_meg.ml). [Full] initialisation — and [Stationary]
   when alpha >= 1 — would saturate the universe and is rejected;
   [`Auto] routing falls back to the heap implementation there. *)
let make_offheap ~init ~n ~p ~q () =
  let module St = Graph.Storage in
  let module Big = Graph.Sparse_set.Big in
  if n > St.max_nodes then invalid_arg "Classic.make: n exceeds the int32 id range";
  let chain = Markov.Two_state.make ~p ~q in
  let total = Graph.Pairs.total n in
  let alpha = Markov.Two_state.stationary_on chain in
  (match init with
  | Full -> invalid_arg "Classic.make: Full initialisation needs heap storage"
  | Stationary when alpha >= 1. ->
      invalid_arg "Classic.make: saturated stationary initialisation needs heap storage"
  | Stationary | Empty -> ());
  let expected_edges = int_of_float (ceil (alpha *. float_of_int total)) in
  let present = Big.create ~capacity:(max 64 expected_edges) total in
  let rng = ref (Prng.Rng.of_seed 0) in
  let geo prob = if prob > 0. && prob < 1. then Some (Prng.Rng.Geo.make ~p:prob) else None in
  let geo_p = geo p in
  let geo_q = geo q in
  let geo_alpha = geo alpha in
  (* Endpoint mirror, as in the heap implementation, but in int32
     storage (endpoints are node ids). *)
  let eu = St.I32.create 64 in
  let ev = St.I32.create 64 in
  let ensure_ends needed =
    St.I32.ensure eu needed;
    St.I32.ensure ev needed
  in
  let scan_pairs r prob f =
    if prob > 0. then begin
      let idx = ref (Prng.Rng.geometric r prob) in
      if !idx < total then begin
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        while !idx < total do
          while !idx >= !next do
            incr u;
            base := !next;
            next := !next + (n - 1 - !u)
          done;
          f !idx !u (!u + 1 + (!idx - !base));
          idx := !idx + 1 + Prng.Rng.geometric r prob
        done
      end
    end
  in
  let add_present idx u v =
    let pos = Big.length present in
    ensure_ends (pos + 1);
    Big.add_unchecked present idx;
    St.I32.unsafe_set eu pos u;
    St.I32.unsafe_set ev pos v
  in
  (* Birth buffer: pair indices exceed the int32 range, so they ride in
     a native-int vector; the endpoints fit int32. *)
  let b_idx = St.Ix.create 64 in
  let b_u = St.I32.create 64 in
  let b_v = St.I32.create 64 in
  let n_births = ref 0 in
  let push_birth idx u v =
    let k = !n_births in
    St.Ix.ensure b_idx (k + 1);
    St.I32.ensure b_u (k + 1);
    St.I32.ensure b_v (k + 1);
    St.Ix.unsafe_set b_idx k idx;
    St.I32.unsafe_set b_u k u;
    St.I32.unsafe_set b_v k v;
    n_births := k + 1
  in
  let deaths = Graph.Edge_buffer.I32.create ~capacity:64 () in
  let deltas_valid = ref false in
  let reset r =
    rng := r;
    Big.clear present;
    deltas_valid := false;
    match init with
    | Empty -> ()
    | Full -> assert false
    | Stationary -> (
        match geo_alpha with
        | Some geo ->
            let r = !rng in
            let idx = ref (Prng.Rng.Geo.draw geo r) in
            if !idx < total then begin
              let u = ref 0 and base = ref 0 and next = ref (n - 1) in
              while !idx < total do
                while !idx >= !next do
                  incr u;
                  base := !next;
                  next := !next + (n - 1 - !u)
                done;
                let i = !idx in
                add_present i !u (!u + 1 + (i - !base));
                idx := i + 1 + Prng.Rng.Geo.draw geo r
              done
            end
        | None -> scan_pairs !rng alpha (fun idx u v -> add_present idx u v))
  in
  let step () =
    n_births := 0;
    Graph.Edge_buffer.I32.clear deaths;
    (* Same written-out birth scan as the heap implementation: same
       cursor walk, same draw sequence, membership now one hash
       probe. *)
    (match geo_p with
    | Some geo ->
        let r = !rng in
        let idx = ref (Prng.Rng.Geo.draw geo r) in
        if !idx < total then begin
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          while !idx < total do
            while !idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            let i = !idx in
            if not (Big.mem present i) then push_birth i !u (!u + 1 + (i - !base));
            idx := i + 1 + Prng.Rng.Geo.draw geo r
          done
        end
    | None ->
        scan_pairs !rng p (fun idx u v ->
            if not (Big.mem present idx) then push_birth idx u v));
    let on_death _ i =
      Graph.Edge_buffer.I32.push deaths (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i);
      let last = Big.length present in
      St.I32.unsafe_set eu i (St.I32.unsafe_get eu last);
      St.I32.unsafe_set ev i (St.I32.unsafe_get ev last)
    in
    (match geo_q with
    | Some geo -> Big.remove_geo_pos present geo !rng on_death
    | None -> Big.remove_bernoulli_pos present !rng ~p:q on_death);
    let nb = !n_births in
    if nb > 0 then begin
      let pos0 = Big.length present in
      ensure_ends (pos0 + nb);
      for k = 0 to nb - 1 do
        let pos = pos0 + k in
        Big.add_unchecked present (St.Ix.unsafe_get b_idx k);
        St.I32.unsafe_set eu pos (St.I32.unsafe_get b_u k);
        St.I32.unsafe_set ev pos (St.I32.unsafe_get b_v k)
      done
    end;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Big.length present in
    for i = 0 to len - 1 do
      f (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let fill_edges buf =
    let len = Big.length present in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         for k = 0 to !n_births - 1 do
           birth (St.I32.unsafe_get b_u k) (St.I32.unsafe_get b_v k)
         done;
         Graph.Edge_buffer.I32.iter deaths (fun u v -> death u v);
         true
       end
  in
  let delta_size () =
    if !deltas_valid then !n_births + Graph.Edge_buffer.I32.length deaths else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

(* Partition-parallel off-heap engine (DESIGN.md section 11). The pair
   universe is cut into [strips_default] fixed contiguous strips — a
   function of nothing but the strip count, never of worker count or
   [parts] — and each strip owns the complete per-range state: its own
   present set, endpoint mirror, birth/death buffers, decode-cursor
   seed, and an RNG substream derived from the reset seed by {e strip
   index}. A step runs every strip's birth scan / death subsample /
   birth apply independently (fanned over {!Exec.Pool.run_tiles} in
   groups of [strips / parts]); delta reports and enumeration
   concatenate strips in index order. Results are therefore a function
   of the reset seed alone: identical at any [parts] and any pool
   worker count (test/test_parallel.ml pins both).

   This is a deliberate draw-stream change relative to [make_offheap]'s
   single sequential stream — confined to [`Auto] routing at
   n >= offheap_nodes (plus explicit [?parts] opt-ins), so every
   golden-sized run (n < 2^17) executes the exact pre-existing code.
   Explicit [`Offheap] without [?parts] keeps the legacy single-stream
   engine, whose draw-for-draw equality with the heap layout the
   storage-equivalence tests pin. *)
let strips_default = 64

type strip = {
  lo : int;  (* pair range [lo, hi) *)
  hi : int;
  u0 : int;  (* decode cursor seeded at [lo]: row, row base, next row base *)
  base0 : int;
  next0 : int;
  present : Graph.Sparse_set.Big.t;
  eu : Graph.Storage.I32.t;  (* endpoint mirror of the strip's dense slots *)
  ev : Graph.Storage.I32.t;
  b_idx : Graph.Storage.Ix.t;  (* buffered births of the current step *)
  b_u : Graph.Storage.I32.t;
  b_v : Graph.Storage.I32.t;
  mutable n_births : int;
  deaths : Graph.Edge_buffer.I32.t;
  mutable rng : Prng.Rng.t;  (* substream [strip index] of the reset seed *)
}

let make_offheap_partitioned ~init ~n ~p ~q ~parts () =
  let module St = Graph.Storage in
  let module Big = Graph.Sparse_set.Big in
  if n > St.max_nodes then invalid_arg "Classic.make: n exceeds the int32 id range";
  let chain = Markov.Two_state.make ~p ~q in
  let total = Graph.Pairs.total n in
  let alpha = Markov.Two_state.stationary_on chain in
  (match init with
  | Full -> invalid_arg "Classic.make: Full initialisation needs heap storage"
  | Stationary when alpha >= 1. ->
      invalid_arg "Classic.make: saturated stationary initialisation needs heap storage"
  | Stationary | Empty -> ());
  let expected_edges = int_of_float (ceil (alpha *. float_of_int total)) in
  let geo prob = if prob > 0. && prob < 1. then Some (Prng.Rng.Geo.make ~p:prob) else None in
  let geo_p = geo p in
  let geo_q = geo q in
  let geo_alpha = geo alpha in
  let strips = strips_default in
  let parts = max 1 (min parts strips) in
  (* floor (s * total / strips) without overflowing s * total (the pair
     universe alone can exceed 2^60). *)
  let bound s = (total / strips * s) + (total mod strips * s / strips) in
  let mk_strip s =
    let lo = bound s and hi = bound (s + 1) in
    let u0, base0, next0 =
      if lo >= hi then (0, 0, n - 1)
      else
        let u, v = Graph.Pairs.decode n lo in
        let base = lo - (v - u - 1) in
        (u, base, base + (n - 1 - u))
    in
    let cap = max 64 (int_of_float (ceil (alpha *. float_of_int (hi - lo)))) in
    {
      lo;
      hi;
      u0;
      base0;
      next0;
      present = Big.create ~capacity:cap total;
      eu = St.I32.create 64;
      ev = St.I32.create 64;
      b_idx = St.Ix.create 64;
      b_u = St.I32.create 64;
      b_v = St.I32.create 64;
      n_births = 0;
      deaths = Graph.Edge_buffer.I32.create ~capacity:64 ();
      rng = Prng.Rng.of_seed 0;
    }
  in
  let ss = Array.init strips mk_strip in
  let pbound j = j * strips / parts in
  let add_present st idx u v =
    let pos = Big.length st.present in
    St.I32.ensure st.eu (pos + 1);
    St.I32.ensure st.ev (pos + 1);
    Big.add_unchecked st.present idx;
    St.I32.unsafe_set st.eu pos u;
    St.I32.unsafe_set st.ev pos v
  in
  let push_birth st idx u v =
    let k = st.n_births in
    St.Ix.ensure st.b_idx (k + 1);
    St.I32.ensure st.b_u (k + 1);
    St.I32.ensure st.b_v (k + 1);
    St.Ix.unsafe_set st.b_idx k idx;
    St.I32.unsafe_set st.b_u k u;
    St.I32.unsafe_set st.b_v k v;
    st.n_births <- k + 1
  in
  (* Strip-local variant of [scan_pairs]: visit each pair of [lo, hi)
     independently with probability [prob], cursor seeded at [lo]. Only
     the prob = 1 exhaustive paths land here; the hot scans below are
     written out with the tabulated samplers. *)
  let scan_strip st r prob f =
    if prob > 0. then begin
      let idx = ref (st.lo + Prng.Rng.geometric r prob) in
      if !idx < st.hi then begin
        let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
        while !idx < st.hi do
          while !idx >= !next do
            incr u;
            base := !next;
            next := !next + (n - 1 - !u)
          done;
          f !idx !u (!u + 1 + (!idx - !base));
          idx := !idx + 1 + Prng.Rng.geometric r prob
        done
      end
    end
  in
  let deltas_valid = ref false in
  let strip_reset st =
    Big.clear st.present;
    st.n_births <- 0;
    Graph.Edge_buffer.I32.clear st.deaths;
    match init with
    | Empty -> ()
    | Full -> assert false
    | Stationary -> (
        match geo_alpha with
        | Some geo ->
            let r = st.rng in
            let idx = ref (st.lo + Prng.Rng.Geo.draw geo r) in
            if !idx < st.hi then begin
              let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
              while !idx < st.hi do
                while !idx >= !next do
                  incr u;
                  base := !next;
                  next := !next + (n - 1 - !u)
                done;
                let i = !idx in
                add_present st i !u (!u + 1 + (i - !base));
                idx := i + 1 + Prng.Rng.Geo.draw geo r
              done
            end
        | None -> scan_strip st st.rng alpha (fun idx u v -> add_present st idx u v))
  in
  let strip_step st =
    st.n_births <- 0;
    Graph.Edge_buffer.I32.clear st.deaths;
    (match geo_p with
    | Some geo ->
        let r = st.rng in
        let idx = ref (st.lo + Prng.Rng.Geo.draw geo r) in
        if !idx < st.hi then begin
          let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
          while !idx < st.hi do
            while !idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            let i = !idx in
            if not (Big.mem st.present i) then push_birth st i !u (!u + 1 + (i - !base));
            idx := i + 1 + Prng.Rng.Geo.draw geo r
          done
        end
    | None ->
        scan_strip st st.rng p (fun idx u v ->
            if not (Big.mem st.present idx) then push_birth st idx u v));
    let on_death _ i =
      Graph.Edge_buffer.I32.push st.deaths
        (St.I32.unsafe_get st.eu i)
        (St.I32.unsafe_get st.ev i);
      let last = Big.length st.present in
      St.I32.unsafe_set st.eu i (St.I32.unsafe_get st.eu last);
      St.I32.unsafe_set st.ev i (St.I32.unsafe_get st.ev last)
    in
    (match geo_q with
    | Some geo -> Big.remove_geo_pos st.present geo st.rng on_death
    | None -> Big.remove_bernoulli_pos st.present st.rng ~p:q on_death);
    let nb = st.n_births in
    if nb > 0 then begin
      let pos0 = Big.length st.present in
      St.I32.ensure st.eu (pos0 + nb);
      St.I32.ensure st.ev (pos0 + nb);
      for k = 0 to nb - 1 do
        let pos = pos0 + k in
        Big.add_unchecked st.present (St.Ix.unsafe_get st.b_idx k);
        St.I32.unsafe_set st.eu pos (St.I32.unsafe_get st.b_u k);
        St.I32.unsafe_set st.ev pos (St.I32.unsafe_get st.b_v k)
      done
    end
  in
  let reset r =
    deltas_valid := false;
    (* Substreams are indexed by strip, not by domain or part: derived
       sequentially here, before any fan-out, so the strip streams are
       a pure function of the reset seed. *)
    for s = 0 to strips - 1 do
      ss.(s).rng <- Prng.Rng.substream r s
    done;
    Exec.Pool.run_tiles parts (fun j ->
        for s = pbound j to pbound (j + 1) - 1 do
          strip_reset ss.(s)
        done)
  in
  let step () =
    Exec.Pool.run_tiles parts (fun j ->
        for s = pbound j to pbound (j + 1) - 1 do
          strip_step ss.(s)
        done);
    deltas_valid := true
  in
  let iter_edges f =
    for s = 0 to strips - 1 do
      let st = ss.(s) in
      let len = Big.length st.present in
      for i = 0 to len - 1 do
        f (St.I32.unsafe_get st.eu i) (St.I32.unsafe_get st.ev i)
      done
    done
  in
  let fill_edges buf =
    for s = 0 to strips - 1 do
      let st = ss.(s) in
      let len = Big.length st.present in
      for i = 0 to len - 1 do
        Graph.Edge_buffer.push buf (St.I32.unsafe_get st.eu i) (St.I32.unsafe_get st.ev i)
      done
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         for s = 0 to strips - 1 do
           let st = ss.(s) in
           for k = 0 to st.n_births - 1 do
             birth (St.I32.unsafe_get st.b_u k) (St.I32.unsafe_get st.b_v k)
           done;
           Graph.Edge_buffer.I32.iter st.deaths (fun u v -> death u v)
         done;
         true
       end
  in
  let delta_size () =
    if !deltas_valid then
      Array.fold_left
        (fun acc st -> acc + st.n_births + Graph.Edge_buffer.I32.length st.deaths)
        0 ss
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

let make ?(init = Stationary) ?(storage = `Auto) ?parts ~n ~p ~q () =
  match (storage, parts) with
  | `Heap, Some _ -> invalid_arg "Classic.make: parts requires off-heap storage"
  | `Heap, None -> make_heap ~init ~n ~p ~q ()
  | (`Offheap | `Auto), Some k ->
      if k < 1 then invalid_arg "Classic.make: parts must be >= 1";
      make_offheap_partitioned ~init ~n ~p ~q ~parts:k ()
  | `Offheap, None ->
      (* Explicit off-heap without [?parts] is the stream-compatibility
         mode: draw-for-draw identical to the heap layout. *)
      make_offheap ~init ~n ~p ~q ()
  | `Auto, None ->
      (* Big graphs go off-heap (partitioned) unless the run needs a
         saturated start, which only the universe-sized heap layout can
         hold. *)
      if
        n >= Graph.Storage.offheap_nodes
        && init <> Full
        && Markov.Two_state.stationary_on (Markov.Two_state.make ~p ~q) < 1.
      then make_offheap_partitioned ~init ~n ~p ~q ~parts:strips_default ()
      else make_heap ~init ~n ~p ~q ()

let params ~p ~q = Markov.Two_state.make ~p ~q

let expected_stationary_edges ~n ~p ~q =
  let chain = Markov.Two_state.make ~p ~q in
  Markov.Two_state.stationary_on chain *. float_of_int (Graph.Pairs.total n)
