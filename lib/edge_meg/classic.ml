type init = Stationary | Empty | Full

type state = {
  mutable rng : Prng.Rng.t;
  present : (int, unit) Hashtbl.t;   (* pair index -> () *)
}

let sample_pairs_bernoulli rng n prob f =
  (* Visit each pair index independently with probability [prob], via
     geometric jumps: O(total * prob) expected. *)
  if prob > 0. then begin
    let total = Graph.Pairs.total n in
    let idx = ref (Prng.Rng.geometric rng prob) in
    while !idx < total do
      f !idx;
      idx := !idx + 1 + Prng.Rng.geometric rng prob
    done
  end

let make ?(init = Stationary) ~n ~p ~q () =
  let chain = Markov.Two_state.make ~p ~q in
  let st = { rng = Prng.Rng.of_seed 0; present = Hashtbl.create 1024 } in
  let reset rng =
    st.rng <- rng;
    Hashtbl.reset st.present;
    match init with
    | Empty -> ()
    | Full ->
        for idx = 0 to Graph.Pairs.total n - 1 do
          Hashtbl.replace st.present idx ()
        done
    | Stationary ->
        let alpha = Markov.Two_state.stationary_on chain in
        if alpha >= 1. then
          for idx = 0 to Graph.Pairs.total n - 1 do
            Hashtbl.replace st.present idx ()
          done
        else sample_pairs_bernoulli st.rng n alpha (fun idx -> Hashtbl.replace st.present idx ())
  in
  (* A step applies, to every edge simultaneously, one transition of its
     two-state chain: absent edges are born with probability p, present
     edges die with probability q. Birth hits are collected against the
     pre-step edge set *before* deaths are applied, so an edge that dies
     this step cannot also be resurrected by the birth scan. *)
  let step () =
    let births = ref [] in
    sample_pairs_bernoulli st.rng n p (fun idx ->
        if not (Hashtbl.mem st.present idx) then births := idx :: !births);
    if q > 0. then begin
      let deaths = ref [] in
      Hashtbl.iter
        (fun idx () -> if Prng.Rng.bernoulli st.rng q then deaths := idx :: !deaths)
        st.present;
      List.iter (Hashtbl.remove st.present) !deaths
    end;
    List.iter (fun idx -> Hashtbl.replace st.present idx ()) !births
  in
  let iter_edges f =
    Hashtbl.iter
      (fun idx () ->
        let u, v = Graph.Pairs.decode n idx in
        f u v)
      st.present
  in
  (* Same Hashtbl.iter as [iter_edges] (the enumeration orders must
     agree), pushing straight into the buffer. *)
  let fill_edges buf =
    Hashtbl.iter
      (fun idx () ->
        let u, v = Graph.Pairs.decode n idx in
        Graph.Edge_buffer.push buf u v)
      st.present
  in
  Core.Dynamic.make ~fill_edges ~n ~reset ~step ~iter_edges ()

let params ~p ~q = Markov.Two_state.make ~p ~q

let expected_stationary_edges ~n ~p ~q =
  let chain = Markov.Two_state.make ~p ~q in
  Markov.Two_state.stationary_on chain *. float_of_int (Graph.Pairs.total n)
