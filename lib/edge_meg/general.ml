let stationary_alpha ~chain ~chi =
  let pi = Markov.Chain.stationary chain in
  let acc = ref 0. in
  Array.iteri (fun s mass -> if chi s then acc := !acc +. mass) pi;
  !acc

let make ?(init = `Stationary) ~n ~chain ~chi () =
  let total = Graph.Pairs.total n in
  let states = Array.make total 0 in
  (* The chi-on pairs are mirrored into a sparse set as the hidden
     chains move, so snapshot enumeration walks m dense slots instead
     of testing chi on all n(n-1)/2 cells. *)
  let present = Graph.Sparse_set.create total in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  let reset r =
    rng := r;
    Graph.Sparse_set.clear present;
    match init with
    | `State s ->
        if s < 0 || s >= Markov.Chain.n_states chain then
          invalid_arg "General.make: initial state out of range";
        Array.fill states 0 total s;
        if chi s then Graph.Sparse_set.fill_all present
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        for idx = 0 to total - 1 do
          let s = Prng.Discrete.draw sampler !rng in
          states.(idx) <- s;
          if chi s then Graph.Sparse_set.add present idx
        done
  in
  let step () =
    for idx = 0 to total - 1 do
      let s = Markov.Chain.step chain !rng states.(idx) in
      states.(idx) <- s;
      if chi s then Graph.Sparse_set.add present idx
      else Graph.Sparse_set.remove present idx
    done
  in
  let iter_edges f = Graph.Sparse_set.iter present (fun idx -> Graph.Pairs.decode_with n idx f) in
  let fill_edges buf =
    let push u v = Graph.Edge_buffer.push buf u v in
    Graph.Sparse_set.iter present (fun idx -> Graph.Pairs.decode_with n idx push)
  in
  Core.Dynamic.make ~fill_edges ~n ~reset ~step ~iter_edges ()

let bound ~chain ~chi ~n =
  let alpha = stationary_alpha ~chain ~chi in
  let t_mix =
    match Markov.Chain.mixing_time chain with
    | Some 0 | None -> 1.
    | Some t -> float_of_int t
  in
  let fn = float_of_int n in
  let logn = log fn in
  t_mix *. (((1. /. (fn *. alpha)) +. 1.) ** 2.) *. logn *. logn
