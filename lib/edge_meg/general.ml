let stationary_alpha ~chain ~chi =
  let pi = Markov.Chain.stationary chain in
  let acc = ref 0. in
  Array.iteri (fun s mass -> if chi s then acc := !acc +. mass) pi;
  !acc

let make_heap ~init ~n ~chain ~chi () =
  let total = Graph.Pairs.total n in
  let states = Array.make total 0 in
  (* The chi-on pairs are mirrored into a sparse set as the hidden
     chains move, so snapshot enumeration walks m dense slots instead
     of testing chi on all n(n-1)/2 cells. A parallel endpoint mirror
     (eu/ev, as in {!Classic}) keeps the decoded endpoints alongside
     the dense slots: every scan that flips presence visits indices in
     ascending order, so a monotone cursor decodes each flip in O(1)
     and enumeration never decodes at all. *)
  let present = Graph.Sparse_set.create total in
  let eu = ref (Array.make 64 0) in
  let ev = ref (Array.make 64 0) in
  let ensure_ends needed =
    if needed > Array.length !eu then begin
      let cap = max needed (2 * Array.length !eu) in
      let bu = Array.make cap 0 and bv = Array.make cap 0 in
      Array.blit !eu 0 bu 0 (Array.length !eu);
      Array.blit !ev 0 bv 0 (Array.length !ev);
      eu := bu;
      ev := bv
    end
  in
  let add_present idx u v =
    let pos = Graph.Sparse_set.length present in
    ensure_ends (pos + 1);
    Graph.Sparse_set.add present idx;
    Array.unsafe_set !eu pos u;
    Array.unsafe_set !ev pos v
  in
  let remove_present idx =
    let i = Graph.Sparse_set.find present idx in
    Graph.Sparse_set.remove present idx;
    let last = Graph.Sparse_set.length present in
    Array.unsafe_set !eu i (Array.unsafe_get !eu last);
    Array.unsafe_set !ev i (Array.unsafe_get !ev last)
  in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  (* Presence flips of the current step, reused across steps — the
     step's delta report. *)
  let births = Graph.Edge_buffer.create ~capacity:64 () in
  let deaths = Graph.Edge_buffer.create ~capacity:64 () in
  let deltas_valid = ref false in
  let reset r =
    rng := r;
    Graph.Sparse_set.clear present;
    deltas_valid := false;
    match init with
    | `State s ->
        if s < 0 || s >= Markov.Chain.n_states chain then
          invalid_arg "General.make: initial state out of range";
        Array.fill states 0 total s;
        if chi s then begin
          ensure_ends total;
          Graph.Sparse_set.fill_all present;
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          for idx = 0 to total - 1 do
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            Array.unsafe_set !eu idx !u;
            Array.unsafe_set !ev idx (!u + 1 + (idx - !base))
          done
        end
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        for idx = 0 to total - 1 do
          let s = Prng.Discrete.draw sampler !rng in
          states.(idx) <- s;
          if chi s then begin
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present idx !u (!u + 1 + (idx - !base))
          end
        done
  in
  let step () =
    Graph.Edge_buffer.clear births;
    Graph.Edge_buffer.clear deaths;
    let u = ref 0 and base = ref 0 and next = ref (n - 1) in
    for idx = 0 to total - 1 do
      let s = Markov.Chain.step chain !rng states.(idx) in
      states.(idx) <- s;
      let now = chi s in
      let was = Graph.Sparse_set.mem present idx in
      if now <> was then begin
        while idx >= !next do
          incr u;
          base := !next;
          next := !next + (n - 1 - !u)
        done;
        let eu_ = !u and ev_ = !u + 1 + (idx - !base) in
        if now then begin
          add_present idx eu_ ev_;
          Graph.Edge_buffer.push births eu_ ev_
        end
        else begin
          remove_present idx;
          Graph.Edge_buffer.push deaths eu_ ev_
        end
      end
    done;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      f (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  let fill_edges buf =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         Graph.Edge_buffer.iter births (fun u v -> birth u v);
         Graph.Edge_buffer.iter deaths (fun u v -> death u v);
         true
       end
  in
  let expected_edges =
    match init with
    | `State s -> if chi s then total else n
    | `Stationary -> int_of_float (ceil (stationary_alpha ~chain ~chi *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then Graph.Edge_buffer.length births + Graph.Edge_buffer.length deaths
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

(* The same process with every size-scaling structure in the
   {!Graph.Storage} layer: the per-pair chain states and the endpoint
   mirror in int32 Bigarray vectors, the present set in
   {!Graph.Sparse_set.I32} (which mirrors the heap set operation for
   operation) and the delta buffers off-heap — halving the resident
   footprint and leaving the major heap size-independent. The pair
   universe is indexed by int32 here, so this layout requires
   n(n-1)/2 <= [Graph.Storage.max_nodes] (n <= 65536); the step is an
   O(n²) chain sweep either way, which is what actually bounds this
   model's reach. Draw streams are identical to the heap layout's. *)
let make_offheap ~init ~n ~chain ~chi () =
  let module St = Graph.Storage in
  let module Set = Graph.Sparse_set.I32 in
  let total = Graph.Pairs.total n in
  if total > St.max_nodes then
    invalid_arg "General.make: pair universe exceeds the int32 range (use heap storage)";
  let states = St.I32.create (max 1 total) in
  let present = Set.create total in
  let eu = St.I32.create 64 in
  let ev = St.I32.create 64 in
  let ensure_ends needed =
    St.I32.ensure eu needed;
    St.I32.ensure ev needed
  in
  let add_present idx u v =
    let pos = Set.length present in
    ensure_ends (pos + 1);
    Set.add present idx;
    St.I32.unsafe_set eu pos u;
    St.I32.unsafe_set ev pos v
  in
  let remove_present idx =
    let i = Set.find present idx in
    Set.remove present idx;
    let last = Set.length present in
    St.I32.unsafe_set eu i (St.I32.unsafe_get eu last);
    St.I32.unsafe_set ev i (St.I32.unsafe_get ev last)
  in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  let births = Graph.Edge_buffer.I32.create ~capacity:64 () in
  let deaths = Graph.Edge_buffer.I32.create ~capacity:64 () in
  let deltas_valid = ref false in
  let reset r =
    rng := r;
    Set.clear present;
    deltas_valid := false;
    match init with
    | `State s ->
        if s < 0 || s >= Markov.Chain.n_states chain then
          invalid_arg "General.make: initial state out of range";
        St.I32.fill states 0 total s;
        if chi s then begin
          ensure_ends total;
          Set.fill_all present;
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          for idx = 0 to total - 1 do
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            St.I32.unsafe_set eu idx !u;
            St.I32.unsafe_set ev idx (!u + 1 + (idx - !base))
          done
        end
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        for idx = 0 to total - 1 do
          let s = Prng.Discrete.draw sampler !rng in
          St.I32.unsafe_set states idx s;
          if chi s then begin
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present idx !u (!u + 1 + (idx - !base))
          end
        done
  in
  let step () =
    Graph.Edge_buffer.I32.clear births;
    Graph.Edge_buffer.I32.clear deaths;
    let u = ref 0 and base = ref 0 and next = ref (n - 1) in
    for idx = 0 to total - 1 do
      let s = Markov.Chain.step chain !rng (St.I32.unsafe_get states idx) in
      St.I32.unsafe_set states idx s;
      let now = chi s in
      let was = Set.mem present idx in
      if now <> was then begin
        while idx >= !next do
          incr u;
          base := !next;
          next := !next + (n - 1 - !u)
        done;
        let eu_ = !u and ev_ = !u + 1 + (idx - !base) in
        if now then begin
          add_present idx eu_ ev_;
          Graph.Edge_buffer.I32.push births eu_ ev_
        end
        else begin
          remove_present idx;
          Graph.Edge_buffer.I32.push deaths eu_ ev_
        end
      end
    done;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Set.length present in
    for i = 0 to len - 1 do
      f (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let fill_edges buf =
    let len = Set.length present in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         Graph.Edge_buffer.I32.iter births (fun u v -> birth u v);
         Graph.Edge_buffer.I32.iter deaths (fun u v -> death u v);
         true
       end
  in
  let expected_edges =
    match init with
    | `State s -> if chi s then total else n
    | `Stationary -> int_of_float (ceil (stationary_alpha ~chain ~chi *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then
      Graph.Edge_buffer.I32.length births + Graph.Edge_buffer.I32.length deaths
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

let make ?(init = `Stationary) ?(storage = `Auto) ~n ~chain ~chi () =
  let offheap =
    match storage with
    | `Heap -> false
    | `Offheap -> true
    | `Auto ->
        (* The O(n²) chain sweep keeps this model at moderate n, where
           the heap layout is never a GC burden — and the int32 pair
           index cannot reach the n where it would be. Auto therefore
           only goes off-heap when both thresholds are satisfiable,
           i.e. effectively never; [`Offheap] is an explicit opt-in
           for halving the resident footprint at moderate n. *)
        n >= Graph.Storage.offheap_nodes
        && Graph.Pairs.total n <= Graph.Storage.max_nodes
  in
  if offheap then make_offheap ~init ~n ~chain ~chi ()
  else make_heap ~init ~n ~chain ~chi ()

let bound ~chain ~chi ~n =
  let alpha = stationary_alpha ~chain ~chi in
  let t_mix =
    match Markov.Chain.mixing_time chain with
    | Some 0 | None -> 1.
    | Some t -> float_of_int t
  in
  let fn = float_of_int n in
  let logn = log fn in
  t_mix *. (((1. /. (fn *. alpha)) +. 1.) ** 2.) *. logn *. logn
