let stationary_alpha ~chain ~chi =
  let pi = Markov.Chain.stationary chain in
  let acc = ref 0. in
  Array.iteri (fun s mass -> if chi s then acc := !acc +. mass) pi;
  !acc

let make_heap ~init ~n ~chain ~chi () =
  let total = Graph.Pairs.total n in
  let states = Array.make total 0 in
  (* The chi-on pairs are mirrored into a sparse set as the hidden
     chains move, so snapshot enumeration walks m dense slots instead
     of testing chi on all n(n-1)/2 cells. A parallel endpoint mirror
     (eu/ev, as in {!Classic}) keeps the decoded endpoints alongside
     the dense slots: every scan that flips presence visits indices in
     ascending order, so a monotone cursor decodes each flip in O(1)
     and enumeration never decodes at all. *)
  let present = Graph.Sparse_set.create total in
  let eu = ref (Array.make 64 0) in
  let ev = ref (Array.make 64 0) in
  let ensure_ends needed =
    if needed > Array.length !eu then begin
      let cap = max needed (2 * Array.length !eu) in
      let bu = Array.make cap 0 and bv = Array.make cap 0 in
      Array.blit !eu 0 bu 0 (Array.length !eu);
      Array.blit !ev 0 bv 0 (Array.length !ev);
      eu := bu;
      ev := bv
    end
  in
  let add_present idx u v =
    let pos = Graph.Sparse_set.length present in
    ensure_ends (pos + 1);
    Graph.Sparse_set.add present idx;
    Array.unsafe_set !eu pos u;
    Array.unsafe_set !ev pos v
  in
  let remove_present idx =
    let i = Graph.Sparse_set.find present idx in
    Graph.Sparse_set.remove present idx;
    let last = Graph.Sparse_set.length present in
    Array.unsafe_set !eu i (Array.unsafe_get !eu last);
    Array.unsafe_set !ev i (Array.unsafe_get !ev last)
  in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  (* Presence flips of the current step, reused across steps — the
     step's delta report. *)
  let births = Graph.Edge_buffer.create ~capacity:64 () in
  let deaths = Graph.Edge_buffer.create ~capacity:64 () in
  let deltas_valid = ref false in
  let reset r =
    rng := r;
    Graph.Sparse_set.clear present;
    deltas_valid := false;
    match init with
    | `State s ->
        if s < 0 || s >= Markov.Chain.n_states chain then
          invalid_arg "General.make: initial state out of range";
        Array.fill states 0 total s;
        if chi s then begin
          ensure_ends total;
          Graph.Sparse_set.fill_all present;
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          for idx = 0 to total - 1 do
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            Array.unsafe_set !eu idx !u;
            Array.unsafe_set !ev idx (!u + 1 + (idx - !base))
          done
        end
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        for idx = 0 to total - 1 do
          let s = Prng.Discrete.draw sampler !rng in
          states.(idx) <- s;
          if chi s then begin
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present idx !u (!u + 1 + (idx - !base))
          end
        done
  in
  let step () =
    Graph.Edge_buffer.clear births;
    Graph.Edge_buffer.clear deaths;
    let u = ref 0 and base = ref 0 and next = ref (n - 1) in
    for idx = 0 to total - 1 do
      let s = Markov.Chain.step chain !rng states.(idx) in
      states.(idx) <- s;
      let now = chi s in
      let was = Graph.Sparse_set.mem present idx in
      if now <> was then begin
        while idx >= !next do
          incr u;
          base := !next;
          next := !next + (n - 1 - !u)
        done;
        let eu_ = !u and ev_ = !u + 1 + (idx - !base) in
        if now then begin
          add_present idx eu_ ev_;
          Graph.Edge_buffer.push births eu_ ev_
        end
        else begin
          remove_present idx;
          Graph.Edge_buffer.push deaths eu_ ev_
        end
      end
    done;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      f (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  let fill_edges buf =
    let len = Graph.Sparse_set.length present in
    let us = !eu and vs = !ev in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (Array.unsafe_get us i) (Array.unsafe_get vs i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         Graph.Edge_buffer.iter births (fun u v -> birth u v);
         Graph.Edge_buffer.iter deaths (fun u v -> death u v);
         true
       end
  in
  let expected_edges =
    match init with
    | `State s -> if chi s then total else n
    | `Stationary -> int_of_float (ceil (stationary_alpha ~chain ~chi *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then Graph.Edge_buffer.length births + Graph.Edge_buffer.length deaths
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

(* The same process with every size-scaling structure in the
   {!Graph.Storage} layer: the per-pair chain states and the endpoint
   mirror in int32 Bigarray vectors, the present set in
   {!Graph.Sparse_set.I32} (which mirrors the heap set operation for
   operation) and the delta buffers off-heap — halving the resident
   footprint and leaving the major heap size-independent. The pair
   universe is indexed by int32 here, so this layout requires
   n(n-1)/2 <= [Graph.Storage.max_nodes] (n <= 65536); the step is an
   O(n²) chain sweep either way, which is what actually bounds this
   model's reach. Draw streams are identical to the heap layout's. *)
let make_offheap ~init ~n ~chain ~chi () =
  let module St = Graph.Storage in
  let module Set = Graph.Sparse_set.I32 in
  let total = Graph.Pairs.total n in
  if total > St.max_nodes then
    invalid_arg "General.make: pair universe exceeds the int32 range (use heap storage)";
  let states = St.I32.create (max 1 total) in
  let present = Set.create total in
  let eu = St.I32.create 64 in
  let ev = St.I32.create 64 in
  let ensure_ends needed =
    St.I32.ensure eu needed;
    St.I32.ensure ev needed
  in
  let add_present idx u v =
    let pos = Set.length present in
    ensure_ends (pos + 1);
    Set.add present idx;
    St.I32.unsafe_set eu pos u;
    St.I32.unsafe_set ev pos v
  in
  let remove_present idx =
    let i = Set.find present idx in
    Set.remove present idx;
    let last = Set.length present in
    St.I32.unsafe_set eu i (St.I32.unsafe_get eu last);
    St.I32.unsafe_set ev i (St.I32.unsafe_get ev last)
  in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  let births = Graph.Edge_buffer.I32.create ~capacity:64 () in
  let deaths = Graph.Edge_buffer.I32.create ~capacity:64 () in
  let deltas_valid = ref false in
  let reset r =
    rng := r;
    Set.clear present;
    deltas_valid := false;
    match init with
    | `State s ->
        if s < 0 || s >= Markov.Chain.n_states chain then
          invalid_arg "General.make: initial state out of range";
        St.I32.fill states 0 total s;
        if chi s then begin
          ensure_ends total;
          Set.fill_all present;
          let u = ref 0 and base = ref 0 and next = ref (n - 1) in
          for idx = 0 to total - 1 do
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            St.I32.unsafe_set eu idx !u;
            St.I32.unsafe_set ev idx (!u + 1 + (idx - !base))
          done
        end
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        let u = ref 0 and base = ref 0 and next = ref (n - 1) in
        for idx = 0 to total - 1 do
          let s = Prng.Discrete.draw sampler !rng in
          St.I32.unsafe_set states idx s;
          if chi s then begin
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present idx !u (!u + 1 + (idx - !base))
          end
        done
  in
  let step () =
    Graph.Edge_buffer.I32.clear births;
    Graph.Edge_buffer.I32.clear deaths;
    let u = ref 0 and base = ref 0 and next = ref (n - 1) in
    for idx = 0 to total - 1 do
      let s = Markov.Chain.step chain !rng (St.I32.unsafe_get states idx) in
      St.I32.unsafe_set states idx s;
      let now = chi s in
      let was = Set.mem present idx in
      if now <> was then begin
        while idx >= !next do
          incr u;
          base := !next;
          next := !next + (n - 1 - !u)
        done;
        let eu_ = !u and ev_ = !u + 1 + (idx - !base) in
        if now then begin
          add_present idx eu_ ev_;
          Graph.Edge_buffer.I32.push births eu_ ev_
        end
        else begin
          remove_present idx;
          Graph.Edge_buffer.I32.push deaths eu_ ev_
        end
      end
    done;
    deltas_valid := true
  in
  let iter_edges f =
    let len = Set.length present in
    for i = 0 to len - 1 do
      f (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let fill_edges buf =
    let len = Set.length present in
    for i = 0 to len - 1 do
      Graph.Edge_buffer.push buf (St.I32.unsafe_get eu i) (St.I32.unsafe_get ev i)
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         Graph.Edge_buffer.I32.iter births (fun u v -> birth u v);
         Graph.Edge_buffer.I32.iter deaths (fun u v -> death u v);
         true
       end
  in
  let expected_edges =
    match init with
    | `State s -> if chi s then total else n
    | `Stationary -> int_of_float (ceil (stationary_alpha ~chain ~chi *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then
      Graph.Edge_buffer.I32.length births + Graph.Edge_buffer.I32.length deaths
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

(* Partition-parallel off-heap engine, the {!Classic} treatment applied
   to the hidden-chain sweep (DESIGN.md section 11): the pair universe
   is cut into 64 fixed strips, each with its own present set
   ({!Graph.Sparse_set.Big} — a per-strip int32-indexed set would cost
   a universe-sized array per strip), endpoint mirror, flip buffers and
   an RNG substream indexed by strip; the shared per-pair state vector
   is written in disjoint [lo, hi) ranges only. Strips step in parallel
   on {!Exec.Pool.run_tiles}; deltas and enumeration concatenate strips
   in index order, so results are a function of the reset seed alone —
   independent of [parts] and worker count, but a different draw stream
   from the sequential engines. Opt-in via [?parts] only. *)
let strips_default = 64

type strip = {
  lo : int;
  hi : int;
  u0 : int;  (* decode cursor seeded at [lo] *)
  base0 : int;
  next0 : int;
  present : Graph.Sparse_set.Big.t;
  eu : Graph.Storage.I32.t;
  ev : Graph.Storage.I32.t;
  births : Graph.Edge_buffer.I32.t;
  deaths : Graph.Edge_buffer.I32.t;
  mutable rng : Prng.Rng.t;
}

let make_offheap_partitioned ~init ~n ~chain ~chi ~parts () =
  let module St = Graph.Storage in
  let module Big = Graph.Sparse_set.Big in
  let total = Graph.Pairs.total n in
  if total > St.max_nodes then
    invalid_arg "General.make: pair universe exceeds the int32 range (use heap storage)";
  let states = St.I32.create (max 1 total) in
  let alpha = stationary_alpha ~chain ~chi in
  let strips = strips_default in
  let parts = max 1 (min parts strips) in
  let bound s = (total / strips * s) + (total mod strips * s / strips) in
  let mk_strip s =
    let lo = bound s and hi = bound (s + 1) in
    let u0, base0, next0 =
      if lo >= hi then (0, 0, n - 1)
      else
        let u, v = Graph.Pairs.decode n lo in
        let base = lo - (v - u - 1) in
        (u, base, base + (n - 1 - u))
    in
    let cap = max 64 (int_of_float (ceil (alpha *. float_of_int (hi - lo)))) in
    {
      lo;
      hi;
      u0;
      base0;
      next0;
      present = Big.create ~capacity:cap total;
      eu = St.I32.create 64;
      ev = St.I32.create 64;
      births = Graph.Edge_buffer.I32.create ~capacity:64 ();
      deaths = Graph.Edge_buffer.I32.create ~capacity:64 ();
      rng = Prng.Rng.of_seed 0;
    }
  in
  let ss = Array.init strips mk_strip in
  let pbound j = j * strips / parts in
  let add_present st idx u v =
    let pos = Big.length st.present in
    St.I32.ensure st.eu (pos + 1);
    St.I32.ensure st.ev (pos + 1);
    Big.add_unchecked st.present idx;
    St.I32.unsafe_set st.eu pos u;
    St.I32.unsafe_set st.ev pos v
  in
  let remove_present st idx =
    let i = Big.find st.present idx in
    Big.remove st.present idx;
    let last = Big.length st.present in
    St.I32.unsafe_set st.eu i (St.I32.unsafe_get st.eu last);
    St.I32.unsafe_set st.ev i (St.I32.unsafe_get st.ev last)
  in
  let stationary_sampler =
    lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain))
  in
  let deltas_valid = ref false in
  let strip_reset st =
    Big.clear st.present;
    Graph.Edge_buffer.I32.clear st.births;
    Graph.Edge_buffer.I32.clear st.deaths;
    match init with
    | `State s ->
        St.I32.fill states st.lo (st.hi - st.lo) s;
        if chi s then begin
          let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
          for idx = st.lo to st.hi - 1 do
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present st idx !u (!u + 1 + (idx - !base))
          done
        end
    | `Stationary ->
        let sampler = Lazy.force stationary_sampler in
        let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
        for idx = st.lo to st.hi - 1 do
          let s = Prng.Discrete.draw sampler st.rng in
          St.I32.unsafe_set states idx s;
          if chi s then begin
            while idx >= !next do
              incr u;
              base := !next;
              next := !next + (n - 1 - !u)
            done;
            add_present st idx !u (!u + 1 + (idx - !base))
          end
        done
  in
  let strip_step st =
    Graph.Edge_buffer.I32.clear st.births;
    Graph.Edge_buffer.I32.clear st.deaths;
    let u = ref st.u0 and base = ref st.base0 and next = ref st.next0 in
    for idx = st.lo to st.hi - 1 do
      let s = Markov.Chain.step chain st.rng (St.I32.unsafe_get states idx) in
      St.I32.unsafe_set states idx s;
      let now = chi s in
      let was = Big.mem st.present idx in
      if now <> was then begin
        while idx >= !next do
          incr u;
          base := !next;
          next := !next + (n - 1 - !u)
        done;
        let eu_ = !u and ev_ = !u + 1 + (idx - !base) in
        if now then begin
          add_present st idx eu_ ev_;
          Graph.Edge_buffer.I32.push st.births eu_ ev_
        end
        else begin
          remove_present st idx;
          Graph.Edge_buffer.I32.push st.deaths eu_ ev_
        end
      end
    done
  in
  let reset r =
    (match init with
    | `State s when s < 0 || s >= Markov.Chain.n_states chain ->
        invalid_arg "General.make: initial state out of range"
    | `State _ | `Stationary -> ());
    deltas_valid := false;
    for s = 0 to strips - 1 do
      ss.(s).rng <- Prng.Rng.substream r s
    done;
    Exec.Pool.run_tiles parts (fun j ->
        for s = pbound j to pbound (j + 1) - 1 do
          strip_reset ss.(s)
        done)
  in
  let step () =
    Exec.Pool.run_tiles parts (fun j ->
        for s = pbound j to pbound (j + 1) - 1 do
          strip_step ss.(s)
        done);
    deltas_valid := true
  in
  let iter_edges f =
    for s = 0 to strips - 1 do
      let st = ss.(s) in
      let len = Big.length st.present in
      for i = 0 to len - 1 do
        f (St.I32.unsafe_get st.eu i) (St.I32.unsafe_get st.ev i)
      done
    done
  in
  let fill_edges buf =
    for s = 0 to strips - 1 do
      let st = ss.(s) in
      let len = Big.length st.present in
      for i = 0 to len - 1 do
        Graph.Edge_buffer.push buf (St.I32.unsafe_get st.eu i) (St.I32.unsafe_get st.ev i)
      done
    done
  in
  let deltas ~birth ~death =
    !deltas_valid
    && begin
         for s = 0 to strips - 1 do
           let st = ss.(s) in
           Graph.Edge_buffer.I32.iter st.births (fun u v -> birth u v);
           Graph.Edge_buffer.I32.iter st.deaths (fun u v -> death u v)
         done;
         true
       end
  in
  let expected_edges =
    match init with
    | `State s -> if chi s then total else n
    | `Stationary -> int_of_float (ceil (alpha *. float_of_int total))
  in
  let delta_size () =
    if !deltas_valid then
      Array.fold_left
        (fun acc st ->
          acc + Graph.Edge_buffer.I32.length st.births
          + Graph.Edge_buffer.I32.length st.deaths)
        0 ss
    else 0
  in
  Core.Dynamic.make ~fill_edges ~deltas ~delta_size ~expected_edges ~n ~reset ~step
    ~iter_edges ()

let make ?(init = `Stationary) ?(storage = `Auto) ?parts ~n ~chain ~chi () =
  match (storage, parts) with
  | `Heap, Some _ -> invalid_arg "General.make: parts requires off-heap storage"
  | (`Offheap | `Auto), Some k ->
      if k < 1 then invalid_arg "General.make: parts must be >= 1";
      make_offheap_partitioned ~init ~n ~chain ~chi ~parts:k ()
  | (`Heap | `Offheap | `Auto), None ->
      let offheap =
        match storage with
        | `Heap -> false
        | `Offheap -> true
        | `Auto ->
            (* The O(n²) chain sweep keeps this model at moderate n, where
               the heap layout is never a GC burden — and the int32 pair
               index cannot reach the n where it would be. Auto therefore
               only goes off-heap when both thresholds are satisfiable,
               i.e. effectively never; [`Offheap] is an explicit opt-in
               for halving the resident footprint at moderate n. *)
            n >= Graph.Storage.offheap_nodes
            && Graph.Pairs.total n <= Graph.Storage.max_nodes
      in
      if offheap then make_offheap ~init ~n ~chain ~chi ()
      else make_heap ~init ~n ~chain ~chi ()

let bound ~chain ~chi ~n =
  let alpha = stationary_alpha ~chain ~chi in
  let t_mix =
    match Markov.Chain.mixing_time chain with
    | Some 0 | None -> 1.
    | Some t -> float_of_int t
  in
  let fn = float_of_int n in
  let logn = log fn in
  t_mix *. (((1. /. (fn *. alpha)) +. 1.) ** 2.) *. logn *. logn
