(** The classic edge-Markovian evolving graph of [10] (paper, Appendix
    A): every potential edge runs an independent two-state chain — an
    absent edge is born with probability [p] per step, a present edge
    dies with probability [q].

    The implementation is sparse: the current edge set lives in a
    {!Graph.Sparse_set} over pair indices, births are sampled with
    geometric jumps over the n(n-1)/2 pair indices (membership check
    per hit is O(1)) and deaths with geometric skips over the dense
    present array, so a step costs O(n² p + m q) expected draws instead
    of O(n²) — or of m Bernoullis. This is what makes the E1 sweep
    (n up to a few thousand with p = Θ(1/n)) cheap. *)

type init =
  | Stationary  (** each edge present with probability p/(p+q) *)
  | Empty       (** E_0 = ∅ — worst start for the density condition *)
  | Full        (** E_0 = complete graph *)

val make :
  ?init:init ->
  ?storage:[ `Auto | `Heap | `Offheap ] ->
  ?parts:int ->
  n:int ->
  p:float ->
  q:float ->
  unit ->
  Core.Dynamic.t
(** Requires [p, q] in [\[0, 1\]], [p + q > 0]. Default init
    [Stationary].

    [storage] selects the state backing. [`Heap] is the original
    implementation: a {!Graph.Sparse_set} indexed by the full pair
    universe — O(n²) memory, mandatory for [Full] (and saturated
    stationary) initialisation. [`Offheap] keeps every size-scaling
    structure in the {!Graph.Storage} layer with memory O(peak edge
    count) instead of O(n²) — the only way to reach n ≈ 10⁶ — and
    rejects [Full] / saturated starts; draw streams and trajectories
    are identical to [`Heap]'s for the same seed. [`Auto] (default)
    picks the {e partitioned} off-heap engine from
    [Graph.Storage.offheap_nodes] nodes up whenever the initialisation
    allows it, [`Heap] otherwise.

    The partitioned engine (DESIGN.md section 11) cuts the pair
    universe into 64 fixed strips, each owning its state and an RNG
    substream indexed by strip (never by domain), and steps them in
    parallel on {!Exec.Pool} — results depend only on the seed, not on
    [parts] or the worker count, but its draw stream deliberately
    differs from the heap engine's single stream. [?parts] forces the
    partitioned engine at any [n] (grouping strips into that many step
    tasks; clamped to 1..64) and is rejected with [`Heap]. Explicit
    [`Offheap] without [?parts] keeps the legacy single-stream off-heap
    engine, draw-for-draw identical to [`Heap]. *)

val params : p:float -> q:float -> Markov.Two_state.t
(** The per-edge chain, for closed-form α and mixing time. *)

val expected_stationary_edges : n:int -> p:float -> q:float -> float
(** α · n(n-1)/2. *)
