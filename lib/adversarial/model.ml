let rotating_star ~n =
  if n < 2 then invalid_arg "Adversarial.rotating_star: n must be >= 2";
  let time = ref 0 in
  Core.Dynamic.make ~n
    ~reset:(fun _ -> time := 0)
    ~step:(fun () -> incr time)
    ~iter_edges:(fun f ->
      let centre = (!time + 1) mod n in
      for u = 0 to n - 1 do
        if u <> centre then f centre u
      done)
    ~fill_edges:(fun buf ->
      let centre = (!time + 1) mod n in
      for u = 0 to n - 1 do
        if u <> centre then Graph.Edge_buffer.push buf centre u
      done)
    ()

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let rotating_matching ~n =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Adversarial.rotating_matching: n must be a power of two >= 2";
  let dims =
    let rec count k = if 1 lsl k = n then k else count (k + 1) in
    count 1
  in
  let time = ref 0 in
  Core.Dynamic.make ~n
    ~reset:(fun _ -> time := 0)
    ~step:(fun () -> incr time)
    ~iter_edges:(fun f ->
      let mask = 1 lsl (!time mod dims) in
      for u = 0 to n - 1 do
        let v = u lxor mask in
        if u < v then f u v
      done)
    ~fill_edges:(fun buf ->
      let mask = 1 lsl (!time mod dims) in
      for u = 0 to n - 1 do
        let v = u lxor mask in
        if u < v then Graph.Edge_buffer.push buf u v
      done)
    ()

let random_matching ~rng_hint:() ~n =
  if n < 2 then invalid_arg "Adversarial.random_matching: n must be >= 2";
  let rng = ref (Prng.Rng.of_seed 0) in
  let matching = Array.make n (-1) in
  let rematch () =
    let order = Prng.Rng.perm !rng n in
    Array.fill matching 0 n (-1);
    let i = ref 0 in
    while !i + 1 < n do
      matching.(order.(!i)) <- order.(!i + 1);
      matching.(order.(!i + 1)) <- order.(!i);
      i := !i + 2
    done
  in
  Core.Dynamic.make ~n
    ~reset:(fun r ->
      rng := r;
      rematch ())
    ~step:(fun () -> rematch ())
    ~iter_edges:(fun f -> Array.iteri (fun u v -> if v > u then f u v) matching)
    ~fill_edges:(fun buf ->
      Array.iteri (fun u v -> if v > u then Graph.Edge_buffer.push buf u v) matching)
    ()
