type fit = { slope : float; intercept : float; r2 : float; n : int; dropped : int }

let ols pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Regression.ols: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. pts in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0. pts in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. pts in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0. pts in
  if sxx <= 0. then invalid_arg "Regression.ols: x values are all equal";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy <= 0. then 1. else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2; n; dropped = 0 }

let ols_arrays xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Regression.ols_arrays: length mismatch";
  ols (Array.to_list (Array.map2 (fun x y -> (x, y)) xs ys))

let loglog pts =
  let total = List.length pts in
  let usable =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
      pts
  in
  let dropped = total - List.length usable in
  (* The filter is invisible to the caller, so a generic "need at least
     two points" out of [ols] used to blame the wrong thing when the
     drop emptied the sample. Name the real cause. *)
  if List.length usable < 2 then
    invalid_arg
      (Printf.sprintf
         "Regression.loglog: need at least two positive points (dropped %d non-positive of %d)"
         dropped total);
  { (ols usable) with dropped }

let predict f x = f.intercept +. (f.slope *. x)

let predict_loglog f x = exp (predict f (log x))
