type t = {
  lo : float;
  hi : float;
  n_bins : int;
  weights : float array;
  mutable n_obs : int;
  mutable total : float;
  mutable underflow : float;
  mutable overflow : float;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  {
    lo;
    hi;
    n_bins = bins;
    weights = Array.make bins 0.;
    n_obs = 0;
    total = 0.;
    underflow = 0.;
    overflow = 0.;
  }

(* The closed interval [lo, hi]: x = hi belongs to the last bin rather
   than a phantom bin n_bins. Anything strictly outside is not data for
   any bin — clamping it in used to inflate edge-bin mass. *)
let bin_of t x =
  if x < t.lo || x > t.hi || Float.is_nan x then
    invalid_arg "Histogram.bin_of: sample outside [lo, hi]";
  let w = (t.hi -. t.lo) /. float_of_int t.n_bins in
  let i = int_of_float (floor ((x -. t.lo) /. w)) in
  if i >= t.n_bins then t.n_bins - 1 else if i < 0 then 0 else i

let add_weighted t x w =
  if Float.is_nan x then invalid_arg "Histogram.add: NaN sample";
  t.n_obs <- t.n_obs + 1;
  if x < t.lo then t.underflow <- t.underflow +. w
  else if x > t.hi then t.overflow <- t.overflow +. w
  else begin
    let i = bin_of t x in
    t.weights.(i) <- t.weights.(i) +. w;
    t.total <- t.total +. w
  end

let add t x = add_weighted t x 1.

let count t = t.n_obs

let total_weight t = t.total

let underflow t = t.underflow

let overflow t = t.overflow

let bins t = t.n_bins

let bin_center t i =
  let w = (t.hi -. t.lo) /. float_of_int t.n_bins in
  t.lo +. ((float_of_int i +. 0.5) *. w)

let weight t i = t.weights.(i)

let probability t =
  if t.total <= 0. then Array.make t.n_bins 0.
  else Array.map (fun w -> w /. t.total) t.weights

let density t =
  let bin_width = (t.hi -. t.lo) /. float_of_int t.n_bins in
  Array.map (fun p -> p /. bin_width) (probability t)

let render ?(width = 50) t =
  let p = probability t in
  let pmax = Array.fold_left Float.max 0. p in
  let buf = Buffer.create 256 in
  if t.underflow > 0. then
    Buffer.add_string buf (Printf.sprintf "%10s | %.4g below range\n" "under" t.underflow);
  Array.iteri
    (fun i pi ->
      let bar_len =
        if pmax <= 0. then 0
        else int_of_float (Float.round (pi /. pmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%10.4g | %s %.4f\n" (bin_center t i) (String.make bar_len '#') pi))
    p;
  if t.overflow > 0. then
    Buffer.add_string buf (Printf.sprintf "%10s | %.4g above range\n" "over" t.overflow);
  Buffer.contents buf
