(* NaN poisons order statistics silently: polymorphic [compare] gives
   NaN an arbitrary total-order position, so a single NaN sample used to
   shift every quantile by one rank with no error. Reject it up front
   instead. *)
let check_no_nan ~who xs =
  for i = 0 to Array.length xs - 1 do
    if Float.is_nan xs.(i) then invalid_arg (who ^ ": NaN in sample")
  done

let of_sorted xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Quantile: q outside [0, 1]";
  check_no_nan ~who:"Quantile.of_sorted" xs;
  if n = 1 then xs.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let sorted_copy xs =
  check_no_nan ~who:"Quantile" xs;
  let c = Array.copy xs in
  Array.sort Float.compare c;
  c

let quantile xs q = of_sorted (sorted_copy xs) q

let quantiles xs qs =
  let c = sorted_copy xs in
  Array.map (of_sorted c) qs

let median xs = quantile xs 0.5

let iqr xs =
  let c = sorted_copy xs in
  of_sorted c 0.75 -. of_sorted c 0.25
