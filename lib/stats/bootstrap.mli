(** Bootstrap confidence intervals for statistics of small samples
    (flooding times are heavy-tailed, so normal approximations are used
    only as a convenience; the bootstrap is the reference). *)

type interval = { lo : float; hi : float; point : float }

val ci :
  ?resamples:int ->
  ?confidence:float ->
  rng:Prng.Rng.t ->
  stat:(float array -> float) ->
  float array ->
  interval
(** [ci ~rng ~stat xs] is a percentile-bootstrap interval for [stat xs].
    Defaults: 1000 resamples, 95% confidence. Raises [Invalid_argument]
    on an empty sample or a NaN in it. *)

val ci_mean :
  ?resamples:int -> ?confidence:float -> rng:Prng.Rng.t -> float array -> interval
(** {!ci} specialised to the mean. *)
