type interval = { lo : float; hi : float; point : float }

let resample rng xs out =
  let n = Array.length xs in
  for i = 0 to n - 1 do
    out.(i) <- xs.(Prng.Rng.int rng n)
  done

let ci ?(resamples = 1000) ?(confidence = 0.95) ~rng ~stat xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if resamples < 1 then invalid_arg "Bootstrap.ci: resamples must be >= 1";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.ci: confidence outside (0, 1)";
  (* A NaN sample would propagate into every resample statistic and then
     sort to an arbitrary rank, corrupting both interval endpoints. *)
  Array.iter (fun x -> if Float.is_nan x then invalid_arg "Bootstrap.ci: NaN in sample") xs;
  let point = stat xs in
  let scratch = Array.make n 0. in
  let stats =
    Array.init resamples (fun _ ->
        resample rng xs scratch;
        stat scratch)
  in
  Array.sort Float.compare stats;
  let alpha = (1. -. confidence) /. 2. in
  {
    lo = Quantile.of_sorted stats alpha;
    hi = Quantile.of_sorted stats (1. -. alpha);
    point;
  }

let mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let ci_mean ?resamples ?confidence ~rng xs = ci ?resamples ?confidence ~rng ~stat:mean xs
