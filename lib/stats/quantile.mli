(** Quantiles of finite samples (linear interpolation between order
    statistics, the "type 7" estimator used by R and NumPy). *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0, 1\]]. The input need not be sorted;
    it is copied and sorted internally. Raises [Invalid_argument] on an
    empty array, [q] outside [\[0, 1\]], or a NaN in the sample (NaN has
    no rank, so any answer would be silently wrong). *)

val quantiles : float array -> float array -> float array
(** Batch version sharing one sort. *)

val median : float array -> float
val iqr : float array -> float
(** Interquartile range, [q75 - q25]. *)

val of_sorted : float array -> float -> float
(** Like {!quantile} but assumes the input is already sorted ascending
    and does not copy. Still scans for (and rejects) NaN. *)
