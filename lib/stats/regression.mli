(** Ordinary least squares on (x, y) pairs, plus the log-log variant used
    to extract empirical scaling exponents from parameter sweeps. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;         (** coefficient of determination *)
  n : int;            (** number of points used *)
  dropped : int;      (** points discarded before fitting (0 for {!ols}) *)
}

val ols : (float * float) list -> fit
(** Least-squares line through the points. Requires at least two points
    with distinct x values. *)

val ols_arrays : float array -> float array -> fit
(** Same, from parallel arrays of equal length. *)

val loglog : (float * float) list -> fit
(** [loglog pts] fits [log y = slope * log x + intercept]; [slope] is the
    empirical scaling exponent. Points with non-positive coordinates are
    dropped, and their count is reported in the fit's [dropped] field.
    If fewer than two points survive, raises [Invalid_argument] with a
    message naming how many were dropped (rather than the generic
    "need at least two points"). *)

val predict : fit -> float -> float
(** [predict f x] evaluates the fitted line at [x]. *)

val predict_loglog : fit -> float -> float
(** Evaluates a {!loglog} fit back in linear space. *)
