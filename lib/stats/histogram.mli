(** Fixed-bin histograms over a closed interval.

    Used both for positional-distribution estimation of mobility models
    (occupancy over space) and for visualising flooding-time spreads.

    Samples strictly outside [\[lo, hi\]] are not forced into the edge
    bins (which silently inflated edge-bin mass); they accumulate in
    dedicated {!underflow} / {!overflow} tallies that are excluded from
    {!probability} and {!density}. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi\]] with [bins] equal cells.
    Requires [lo < hi] and [bins >= 1]. *)

val add : t -> float -> unit
(** Record an observation. Values below [lo] (resp. above [hi]) are
    counted as underflow (resp. overflow) rather than clamped into the
    first / last bin; [x = hi] falls in the last bin. Raises
    [Invalid_argument] on NaN. *)

val add_weighted : t -> float -> float -> unit
(** [add_weighted t x w] records [x] with weight [w]. *)

val count : t -> int
(** Number of [add] calls, including out-of-range ones (weighted adds
    count once). *)

val total_weight : t -> float
(** In-range weight only — the normaliser of {!probability}. *)

val underflow : t -> float
(** Accumulated weight of samples strictly below [lo]. *)

val overflow : t -> float
(** Accumulated weight of samples strictly above [hi]. *)

val bins : t -> int

val bin_of : t -> float -> int
(** Index of the bin an observation falls into. Raises
    [Invalid_argument] when the sample lies outside [\[lo, hi\]] or is
    NaN — out-of-range samples have no bin. *)

val bin_center : t -> int -> float

val weight : t -> int -> float
(** Raw accumulated weight of a bin. *)

val density : t -> float array
(** Normalised probability density: weights divided by
    [total_weight * bin_width], so it integrates to 1 over the in-range
    mass. *)

val probability : t -> float array
(** Normalised probability mass per bin (sums to 1 over in-range mass;
    underflow/overflow excluded). *)

val render : ?width:int -> t -> string
(** Crude ASCII bar rendering for logs and examples; prints [under] /
    [over] outlier lines when those tallies are nonzero. *)
