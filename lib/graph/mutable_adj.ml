type t = {
  n : int;
  deg : int array;
  rows : int array array;  (* rows.(u) has capacity >= deg.(u); spare slots are garbage *)
  mutable entries : int;
}

let create ~n () =
  if n < 0 then invalid_arg "Mutable_adj.create: negative n";
  { n; deg = Array.make (max 1 n) 0; rows = Array.make (max 1 n) [||]; entries = 0 }

let n t = t.n

let degree t u = t.deg.(u)

let entries t = t.entries

let edge_count t = t.entries / 2

let clear t =
  Array.fill t.deg 0 t.n 0;
  t.entries <- 0

let push_row t u v =
  let d = Array.unsafe_get t.deg u in
  let row = Array.unsafe_get t.rows u in
  let row =
    if d = Array.length row then begin
      let bigger = Array.make (max 8 (2 * d)) 0 in
      Array.blit row 0 bigger 0 d;
      Array.unsafe_set t.rows u bigger;
      bigger
    end
    else row
  in
  Array.unsafe_set row d v;
  Array.unsafe_set t.deg u (d + 1)

let add t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n || u = v then invalid_arg "Mutable_adj.add";
  push_row t u v;
  push_row t v u;
  t.entries <- t.entries + 2

(* Swap-remove of one copy of [v] from [u]'s row. A linear scan, not a
   position index: positions of the same (u, v) entry in the two
   endpoint rows differ and edges may occur with multiplicity (union
   double-reports), so an O(1) index would need per-copy bookkeeping
   that costs more than scanning rows whose expected degree is small in
   every hot model. See DESIGN.md section 8. *)
let remove_row t u v =
  let d = Array.unsafe_get t.deg u in
  let row = Array.unsafe_get t.rows u in
  let i = ref 0 in
  while !i < d && Array.unsafe_get row !i <> v do
    incr i
  done;
  if !i >= d then invalid_arg "Mutable_adj.remove: edge not present";
  Array.unsafe_set row !i (Array.unsafe_get row (d - 1));
  Array.unsafe_set t.deg u (d - 1)

let remove t u v =
  if u < 0 || v < 0 || u >= t.n || v >= t.n then invalid_arg "Mutable_adj.remove";
  remove_row t u v;
  remove_row t v u;
  t.entries <- t.entries - 2

let row t u = t.rows.(u)

let neighbor t u i =
  if i < 0 || i >= t.deg.(u) then invalid_arg "Mutable_adj.neighbor: index out of range";
  t.rows.(u).(i)

let iter_neighbors t u f =
  let d = t.deg.(u) in
  let row = t.rows.(u) in
  for i = 0 to d - 1 do
    f (Array.unsafe_get row i)
  done

let iter_edges t f =
  for u = 0 to t.n - 1 do
    let d = Array.unsafe_get t.deg u in
    let row = Array.unsafe_get t.rows u in
    for i = 0 to d - 1 do
      let v = Array.unsafe_get row i in
      if u < v then f u v
    done
  done
