(* Two physical layouts behind one interface:

   - [Heap]: the original per-node [int array] rows. Zero-indirection
     reads ([row] hands the physical array to hot scan loops); the
     layout every small-n kernel and golden was built on.
   - [Arena]: all rows packed into one int32 Bigarray bump arena, with
     per-node offset/capacity/degree in int32 storage. At 10^6 nodes
     the heap layout would be 10^6 separate arrays — a major-heap scan
     burden on every GC — while the arena keeps the whole adjacency in
     three flat off-heap blocks. A row that outgrows its capacity
     relocates to the end of the arena with doubled capacity; because
     capacities double, total arena use is bounded by ~4x the peak
     entry count. [clear] keeps offsets and capacities, so rebuild
     cycles reuse the storage just like the heap rows do.

   Append/swap-remove semantics are identical in both layouts: neighbor
   order for a given operation sequence never depends on the backing. *)

type arena = {
  a_deg : Storage.I32.t;
  a_off : Storage.I32.t;
  a_cap : Storage.I32.t;
  data : Storage.I32.t;
  mutable used : int;
}

type t =
  | Heap of { n : int; deg : int array; rows : int array array; mutable entries : int }
  | Arena of { n : int; a : arena; mutable entries : int }

type view = { v_deg : Storage.I32.raw; v_off : Storage.I32.raw; v_data : Storage.I32.raw }

let create ~n ?(storage = `Heap) () =
  if n < 0 then invalid_arg "Mutable_adj.create: negative n";
  match storage with
  | `Heap ->
      Heap { n; deg = Array.make (max 1 n) 0; rows = Array.make (max 1 n) [||]; entries = 0 }
  | `Offheap ->
      if n > Storage.max_nodes then
        invalid_arg "Mutable_adj.create: n exceeds the int32 id range";
      Arena
        {
          n;
          a =
            {
              a_deg = Storage.I32.create (max 1 n);
              a_off = Storage.I32.create (max 1 n);
              a_cap = Storage.I32.create (max 1 n);
              data = Storage.I32.create 1024;
              used = 0;
            };
          entries = 0;
        }

let n = function Heap h -> h.n | Arena a -> a.n

let offheap = function Heap _ -> false | Arena _ -> true

let[@inline] degree t u =
  match t with Heap h -> h.deg.(u) | Arena { a; _ } -> Storage.I32.get a.a_deg u

let entries = function Heap h -> h.entries | Arena a -> a.entries

let edge_count t = entries t / 2

let clear t =
  match t with
  | Heap h ->
      Array.fill h.deg 0 h.n 0;
      h.entries <- 0
  | Arena ({ a; _ } as r) ->
      Storage.I32.fill a.a_deg 0 (Storage.I32.length a.a_deg) 0;
      r.entries <- 0

let heap_push deg rows u v =
  let d = Array.unsafe_get deg u in
  let row = Array.unsafe_get rows u in
  let row =
    if d = Array.length row then begin
      let bigger = Array.make (max 8 (2 * d)) 0 in
      Array.blit row 0 bigger 0 d;
      Array.unsafe_set rows u bigger;
      bigger
    end
    else row
  in
  Array.unsafe_set row d v;
  Array.unsafe_set deg u (d + 1)

let arena_push a u v =
  let d = Storage.I32.unsafe_get a.a_deg u in
  let cap = Storage.I32.unsafe_get a.a_cap u in
  if d = cap then begin
    (* Relocate to the end of the arena with doubled capacity; the old
       slots become a permanent (bounded, see header) hole. *)
    let ncap = max 8 (2 * cap) in
    Storage.I32.ensure a.data (a.used + ncap);
    let off = Storage.I32.unsafe_get a.a_off u in
    Storage.I32.blit a.data off a.data a.used d;
    Storage.I32.unsafe_set a.a_off u a.used;
    Storage.I32.unsafe_set a.a_cap u ncap;
    a.used <- a.used + ncap
  end;
  let off = Storage.I32.unsafe_get a.a_off u in
  Storage.I32.unsafe_set a.data (off + d) v;
  Storage.I32.unsafe_set a.a_deg u (d + 1)

let add t u v =
  match t with
  | Heap h ->
      if u < 0 || v < 0 || u >= h.n || v >= h.n || u = v then invalid_arg "Mutable_adj.add";
      heap_push h.deg h.rows u v;
      heap_push h.deg h.rows v u;
      h.entries <- h.entries + 2
  | Arena ({ a; _ } as r) ->
      if u < 0 || v < 0 || u >= r.n || v >= r.n || u = v then invalid_arg "Mutable_adj.add";
      arena_push a u v;
      arena_push a v u;
      r.entries <- r.entries + 2

(* Swap-remove of one copy of [v] from [u]'s row. A linear scan, not a
   position index: positions of the same (u, v) entry in the two
   endpoint rows differ and edges may occur with multiplicity (union
   double-reports), so an O(1) index would need per-copy bookkeeping
   that costs more than scanning rows whose expected degree is small in
   every hot model. See DESIGN.md section 8. *)
let heap_remove_row deg rows u v =
  let d = Array.unsafe_get deg u in
  let row = Array.unsafe_get rows u in
  let i = ref 0 in
  while !i < d && Array.unsafe_get row !i <> v do
    incr i
  done;
  if !i >= d then invalid_arg "Mutable_adj.remove: edge not present";
  Array.unsafe_set row !i (Array.unsafe_get row (d - 1));
  Array.unsafe_set deg u (d - 1)

let arena_remove_row a u v =
  let d = Storage.I32.unsafe_get a.a_deg u in
  let off = Storage.I32.unsafe_get a.a_off u in
  let i = ref 0 in
  while !i < d && Storage.I32.unsafe_get a.data (off + !i) <> v do
    incr i
  done;
  if !i >= d then invalid_arg "Mutable_adj.remove: edge not present";
  Storage.I32.unsafe_set a.data (off + !i) (Storage.I32.unsafe_get a.data (off + d - 1));
  Storage.I32.unsafe_set a.a_deg u (d - 1)

let remove t u v =
  match t with
  | Heap h ->
      if u < 0 || v < 0 || u >= h.n || v >= h.n then invalid_arg "Mutable_adj.remove";
      heap_remove_row h.deg h.rows u v;
      heap_remove_row h.deg h.rows v u;
      h.entries <- h.entries - 2
  | Arena ({ a; _ } as r) ->
      if u < 0 || v < 0 || u >= r.n || v >= r.n then invalid_arg "Mutable_adj.remove";
      arena_remove_row a u v;
      arena_remove_row a v u;
      r.entries <- r.entries - 2

let row t u =
  match t with
  | Heap h -> h.rows.(u)
  | Arena _ ->
      invalid_arg "Mutable_adj.row: arena-backed rows have no physical int array; use view"

let view t =
  match t with
  | Heap _ -> invalid_arg "Mutable_adj.view: heap-backed rows; use row"
  | Arena { a; _ } ->
      { v_deg = Storage.I32.raw a.a_deg; v_off = Storage.I32.raw a.a_off;
        v_data = Storage.I32.raw a.data }

let[@inline] unsafe_nth t u i =
  match t with
  | Heap h -> Array.unsafe_get (Array.unsafe_get h.rows u) i
  | Arena { a; _ } -> Storage.I32.unsafe_get a.data (Storage.I32.unsafe_get a.a_off u + i)

let neighbor t u i =
  if i < 0 || i >= degree t u then invalid_arg "Mutable_adj.neighbor: index out of range";
  unsafe_nth t u i

let iter_neighbors t u f =
  match t with
  | Heap h ->
      let d = h.deg.(u) in
      let row = h.rows.(u) in
      for i = 0 to d - 1 do
        f (Array.unsafe_get row i)
      done
  | Arena { a; _ } ->
      let d = Storage.I32.get a.a_deg u in
      let off = Storage.I32.get a.a_off u in
      for i = 0 to d - 1 do
        f (Storage.I32.unsafe_get a.data (off + i))
      done

let iter_edges t f =
  match t with
  | Heap h ->
      for u = 0 to h.n - 1 do
        let d = Array.unsafe_get h.deg u in
        let row = Array.unsafe_get h.rows u in
        for i = 0 to d - 1 do
          let v = Array.unsafe_get row i in
          if u < v then f u v
        done
      done
  | Arena { n; a; _ } ->
      for u = 0 to n - 1 do
        let d = Storage.I32.unsafe_get a.a_deg u in
        let off = Storage.I32.unsafe_get a.a_off u in
        for i = 0 to d - 1 do
          let v = Storage.I32.unsafe_get a.data (off + i) in
          if u < v then f u v
        done
      done
