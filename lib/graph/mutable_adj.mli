(** Incremental adjacency: per-node dense neighbor rows maintained
    under edge insertions and removals, the mutable counterpart of a
    CSR snapshot.

    This is the structure the delta-driven spreading kernels scan: a
    dynamic-graph model reports births and deaths after each step
    ({!Core.Dynamic} delta hook) and the kernel applies them here in
    O(Δ), then reads only the neighborhoods it needs — instead of
    re-enumerating the full snapshot every round.

    Rows are {e multisets}: [add] appends unconditionally and [remove]
    deletes one copy, so models that double-report an edge (e.g.
    [Dynamic.union] when both operands carry it) stay consistent — each
    operand's birth/death stream adds/removes its own copy. Removal is
    a swap-remove after a linear scan of the two endpoint rows, not an
    O(1) position index: per-copy positions differ between the two rows
    and under multiplicity, and the expected degree is small in every
    hot model, so the index's bookkeeping would cost more than the scan
    (DESIGN.md section 8 quantifies this).

    Insertion appends, removal swaps the last entry into the hole:
    neighbor order is deterministic for a deterministic operation
    sequence but otherwise unspecified.

    Two physical layouts exist behind this one interface. The default
    [`Heap] layout keeps the original per-node [int array] rows; the
    [`Offheap] layout packs every row into a single int32 Bigarray
    bump arena ({!Storage.I32}) with per-node offset/capacity/degree
    vectors, so a million-node adjacency is three flat off-heap blocks
    instead of a million heap arrays. Append/swap-remove semantics are
    identical in both layouts: the neighbor order produced by a given
    operation sequence never depends on the backing. *)

type t

val create : n:int -> ?storage:[ `Heap | `Offheap ] -> unit -> t
(** Empty adjacency over nodes [0 .. n-1]. Rows grow by doubling on
    demand; a cleared structure reuses their storage. [`Offheap]
    requires [n <= Storage.max_nodes] (ids must fit int32 cells). *)

val offheap : t -> bool
(** Whether this adjacency uses the arena layout. *)

val n : t -> int
(** Number of nodes. *)

val degree : t -> int -> int
(** Number of row entries of a node (counts multiplicity). O(1). *)

val entries : t -> int
(** Total row entries, i.e. the sum of all degrees. *)

val edge_count : t -> int
(** Number of edges counted with multiplicity ([entries t / 2]). *)

val clear : t -> unit
(** Forget all edges, keep row storage. O(n). *)

val add : t -> int -> int -> unit
(** Append edge (u, v) to both endpoint rows. Amortised O(1). Raises
    on self-loops or out-of-range endpoints. *)

val remove : t -> int -> int -> unit
(** Remove one copy of edge (u, v) from both endpoint rows.
    O(deg u + deg v). Raises [Invalid_argument] if absent — a delta
    stream inconsistent with the maintained state is a bug worth
    failing loudly on. *)

val row : t -> int -> int array
(** The physical row of a node: entries [0 .. degree t u - 1] are its
    current neighbors, later slots are garbage. Borrowed, not a copy —
    valid until the next mutation; callers must not write it. The
    zero-overhead read path for hot scan loops. Heap layout only:
    raises [Invalid_argument] on an arena-backed structure (whose rows
    have no physical [int array]) — branch on {!offheap} and use
    {!view} there. *)

type view = { v_deg : Storage.I32.raw; v_off : Storage.I32.raw; v_data : Storage.I32.raw }
(** Borrowed raw windows into an arena-backed adjacency: node [u]'s
    neighbors are [v_data.{v_off.{u} .. v_off.{u} + v_deg.{u} - 1}].
    The zero-overhead read path for hot kernels over the arena layout,
    mirroring what {!row} is for heap rows. Valid until the next
    mutation (a row append may relocate the arena). *)

val view : t -> view
(** Arena layout only; raises [Invalid_argument] on heap-backed rows. *)

val unsafe_nth : t -> int -> int -> int
(** [unsafe_nth t u i] is the [i]-th row entry of [u] in either
    layout, unchecked. For warm (not hot) loops that want layout
    polymorphism without the branch-per-row of {!row}/{!view}
    dispatch being visible at the call site. *)

val neighbor : t -> int -> int -> int
(** [neighbor t u i] is the [i]-th row entry of [u],
    [0 <= i < degree t u] (checked). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Visit the current neighbors of a node, in row order. [f] must not
    mutate the structure. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Visit every edge once per copy, as [f u v] with [u < v], in
    ascending order of [u] (order within a row unspecified). O(n +
    entries). *)
