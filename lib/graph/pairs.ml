let total n = n * (n - 1) / 2

let encode n u v =
  if u = v then invalid_arg "Pairs.encode: u = v";
  if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Pairs.encode: out of range";
  let u, v = if u < v then (u, v) else (v, u) in
  (* Pairs with first coordinate < u number u*n - u*(u+1)/2. *)
  (u * n) - (u * (u + 1) / 2) + (v - u - 1)

let decode_with n idx k =
  if idx < 0 || idx >= total n then invalid_arg "Pairs.decode: index out of range";
  (* Invert base(u) = u*n - u*(u+1)/2 <= idx via the quadratic formula,
     then correct for floating-point rounding. *)
  let s = float_of_int ((2 * n) - 1) in
  let guess = int_of_float (floor ((s -. sqrt ((s *. s) -. (8. *. float_of_int idx))) /. 2.)) in
  let base u = (u * n) - (u * (u + 1) / 2) in
  let u = ref (max 0 (min (n - 2) guess)) in
  while base !u > idx do
    decr u
  done;
  while base (!u + 1) <= idx && !u + 1 <= n - 2 do
    incr u
  done;
  let u = !u in
  k u (u + 1 + (idx - base u))

let decode n idx = decode_with n idx (fun u v -> (u, v))
