(** Growable, reusable edge arena: the zero-allocation counterpart of an
    [(int * int) list] snapshot.

    A buffer owns two parallel [int] arrays of sources and destinations
    plus a length; [push] appends in amortised O(1) without boxing,
    [clear] resets the length without releasing storage. Dynamic-graph
    models fill one buffer per snapshot and the flooding kernel reuses a
    single buffer across rounds, so steady-state edge enumeration
    allocates nothing. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer. [capacity] (default 16, minimum 1) is the
    initial storage; the buffer grows by doubling as needed. *)

val length : t -> int
(** Number of edges currently stored. *)

val capacity : t -> int
(** Edges storable before the next reallocation. *)

val clear : t -> unit
(** Forget the contents, keep the storage. O(1). *)

val push : t -> int -> int -> unit
(** [push b u v] appends the edge (u, v), preserving orientation. *)

val src : t -> int -> int
(** Source endpoint of the [i]-th edge (unchecked beyond array bounds). *)

val dst : t -> int -> int
(** Destination endpoint of the [i]-th edge. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter b f] calls [f u v] on each stored edge, in buffer order. *)

val append : t -> into:t -> unit
(** [append b ~into] appends all of [b]'s edges to [into] with one
    blit. [b] is unchanged; [b == into] is not allowed. *)

val reverse_in_place : t -> unit
(** Reverse the edge order (endpoint orientation unchanged). Lets a
    producer that enumerates pairs in one order expose the opposite
    one without materialising a list. *)

val sort_dedup : t -> unit
(** Normalise every edge to [src < dst], sort lexicographically and
    drop duplicates, all in place (no allocation beyond O(log n) stack).
    Self-loops are kept (as [u = v]) and sorted with the rest; reject
    them before or after if the consumer forbids them. *)

val to_list : t -> (int * int) list
(** Materialise as a list in buffer order (test/debug convenience). *)

(** The same arena on int32 Bigarray storage ({!Storage.I32}):
    endpoints are node ids (bounded by [Storage.max_nodes]), so a
    delta buffer carrying millions of edges lives entirely off the
    OCaml heap. Mirrors the subset of operations the steady-state
    delta paths use; the construction-time sort/dedup machinery is
    deliberately not duplicated here. *)
module I32 : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val capacity : t -> int

  val clear : t -> unit

  val push : t -> int -> int -> unit

  val src : t -> int -> int

  val dst : t -> int -> int

  val iter : t -> (int -> int -> unit) -> unit
end
