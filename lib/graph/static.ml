type t = {
  n : int;
  offsets : int array;   (* length n+1 *)
  targets : int array;   (* concatenated sorted neighbour lists *)
}

let of_buffer ~n buf =
  if n < 0 then invalid_arg "Static.of_buffer: negative n";
  Edge_buffer.iter buf (fun u v ->
      if u = v then invalid_arg "Static.of_buffer: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Static.of_buffer: endpoint out of range");
  Edge_buffer.sort_dedup buf;
  let e = Edge_buffer.length buf in
  let deg = Array.make n 0 in
  for i = 0 to e - 1 do
    deg.(Edge_buffer.src buf i) <- deg.(Edge_buffer.src buf i) + 1;
    deg.(Edge_buffer.dst buf i) <- deg.(Edge_buffer.dst buf i) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + deg.(i)
  done;
  let targets = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  for i = 0 to e - 1 do
    let u = Edge_buffer.src buf i and v = Edge_buffer.dst buf i in
    targets.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    targets.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  (* Rows come out sorted without a per-row pass: row w first receives
     its partners u < w, from edges (u, w) in ascending u, then its
     partners v > w, from edges (w, v) in ascending v — the buffer's
     lexicographic order sorts every adjacency slice. *)
  { n; offsets; targets }

let of_edge_array ~n edges =
  if n < 0 then invalid_arg "Static.of_edge_array: negative n";
  Array.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Static.of_edge_array: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Static.of_edge_array: endpoint out of range")
    edges;
  let buf = Edge_buffer.create ~capacity:(max 1 (Array.length edges)) () in
  Array.iter (fun (u, v) -> Edge_buffer.push buf u v) edges;
  of_buffer ~n buf

let of_edges ~n edges = of_edge_array ~n (Array.of_list edges)

let to_buffer g buf =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.targets.(i) in
      if u < v then Edge_buffer.push buf u v
    done
  done

let n g = g.n

let m g = Array.length g.targets / 2

let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let neighbors g u = Array.sub g.targets g.offsets.(u) (degree g u)

let mem_edge g u v =
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.targets.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_neighbors g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.targets.(i)
  done

let fold_neighbors g u ~init ~f =
  let acc = ref init in
  iter_neighbors g u (fun v -> acc := f !acc v);
  !acc

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    if degree g u > !best then best := degree g u
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      if degree g u < !best then best := degree g u
    done;
    !best
  end

let degree_regularity g =
  if g.n = 0 then nan
  else begin
    let mn = min_degree g in
    if mn = 0 then infinity else float_of_int (max_degree g) /. float_of_int mn
  end

let is_symmetric g =
  let ok = ref true in
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if not (mem_edge g v u) then ok := false)
  done;
  !ok

(* CSR with off-heap row storage: offsets in a native-int Bigarray
   (entry counts, not node ids), targets in int32. Construction reuses
   the heap buffer's in-place sort/dedup — build cost is transient; the
   retained snapshot is two flat Bigarrays the GC never scans. *)
module I32 = struct
  type csr = {
    n : int;
    offsets : Storage.Ix.t;  (* length n+1 *)
    targets : Storage.I32.t; (* concatenated sorted neighbour lists *)
  }

  type t = csr

  let of_buffer ~n:nn buf =
    if nn < 0 then invalid_arg "Static.I32.of_buffer: negative n";
    if nn > Storage.max_nodes then
      invalid_arg "Static.I32.of_buffer: n exceeds the int32 id range";
    Edge_buffer.iter buf (fun u v ->
        if u = v then invalid_arg "Static.I32.of_buffer: self-loop";
        if u < 0 || u >= nn || v < 0 || v >= nn then
          invalid_arg "Static.I32.of_buffer: endpoint out of range");
    Edge_buffer.sort_dedup buf;
    let e = Edge_buffer.length buf in
    let offsets = Storage.Ix.create (nn + 1) in
    for i = 0 to e - 1 do
      let u = Edge_buffer.src buf i and v = Edge_buffer.dst buf i in
      Storage.Ix.unsafe_set offsets (u + 1) (Storage.Ix.unsafe_get offsets (u + 1) + 1);
      Storage.Ix.unsafe_set offsets (v + 1) (Storage.Ix.unsafe_get offsets (v + 1) + 1)
    done;
    for i = 1 to nn do
      Storage.Ix.unsafe_set offsets i (Storage.Ix.unsafe_get offsets i + Storage.Ix.unsafe_get offsets (i - 1))
    done;
    let targets = Storage.I32.create (max 1 (Storage.Ix.get offsets nn)) in
    let cursor = Storage.Ix.create (nn + 1) in
    for i = 0 to nn do
      Storage.Ix.unsafe_set cursor i (Storage.Ix.unsafe_get offsets i)
    done;
    for i = 0 to e - 1 do
      let u = Edge_buffer.src buf i and v = Edge_buffer.dst buf i in
      Storage.I32.unsafe_set targets (Storage.Ix.unsafe_get cursor u) v;
      Storage.Ix.unsafe_set cursor u (Storage.Ix.unsafe_get cursor u + 1);
      Storage.I32.unsafe_set targets (Storage.Ix.unsafe_get cursor v) u;
      Storage.Ix.unsafe_set cursor v (Storage.Ix.unsafe_get cursor v + 1)
    done;
    (* Rows come out sorted for the same reason as the heap build: the
       buffer's lexicographic order sorts every adjacency slice. *)
    { n = nn; offsets; targets }

  let n g = g.n

  let m g = Storage.Ix.get g.offsets g.n / 2

  let degree g u = Storage.Ix.get g.offsets (u + 1) - Storage.Ix.get g.offsets u

  let iter_neighbors g u f =
    for i = Storage.Ix.get g.offsets u to Storage.Ix.get g.offsets (u + 1) - 1 do
      f (Storage.I32.unsafe_get g.targets i)
    done

  let iter_edges g f =
    for u = 0 to g.n - 1 do
      iter_neighbors g u (fun v -> if u < v then f u v)
    done

  let mem_edge g u v =
    let lo = ref (Storage.Ix.get g.offsets u)
    and hi = ref (Storage.Ix.get g.offsets (u + 1) - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = Storage.I32.unsafe_get g.targets mid in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
    done;
    !found
end
