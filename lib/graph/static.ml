type t = {
  n : int;
  offsets : int array;   (* length n+1 *)
  targets : int array;   (* concatenated sorted neighbour lists *)
}

let of_buffer ~n buf =
  if n < 0 then invalid_arg "Static.of_buffer: negative n";
  Edge_buffer.iter buf (fun u v ->
      if u = v then invalid_arg "Static.of_buffer: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Static.of_buffer: endpoint out of range");
  Edge_buffer.sort_dedup buf;
  let e = Edge_buffer.length buf in
  let deg = Array.make n 0 in
  for i = 0 to e - 1 do
    deg.(Edge_buffer.src buf i) <- deg.(Edge_buffer.src buf i) + 1;
    deg.(Edge_buffer.dst buf i) <- deg.(Edge_buffer.dst buf i) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + deg.(i)
  done;
  let targets = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  for i = 0 to e - 1 do
    let u = Edge_buffer.src buf i and v = Edge_buffer.dst buf i in
    targets.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    targets.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  (* Rows come out sorted without a per-row pass: row w first receives
     its partners u < w, from edges (u, w) in ascending u, then its
     partners v > w, from edges (w, v) in ascending v — the buffer's
     lexicographic order sorts every adjacency slice. *)
  { n; offsets; targets }

let of_edge_array ~n edges =
  if n < 0 then invalid_arg "Static.of_edge_array: negative n";
  Array.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Static.of_edge_array: self-loop";
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Static.of_edge_array: endpoint out of range")
    edges;
  let buf = Edge_buffer.create ~capacity:(max 1 (Array.length edges)) () in
  Array.iter (fun (u, v) -> Edge_buffer.push buf u v) edges;
  of_buffer ~n buf

let of_edges ~n edges = of_edge_array ~n (Array.of_list edges)

let to_buffer g buf =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.targets.(i) in
      if u < v then Edge_buffer.push buf u v
    done
  done

let n g = g.n

let m g = Array.length g.targets / 2

let degree g u = g.offsets.(u + 1) - g.offsets.(u)

let neighbors g u = Array.sub g.targets g.offsets.(u) (degree g u)

let mem_edge g u v =
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.targets.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_neighbors g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.targets.(i)
  done

let fold_neighbors g u ~init ~f =
  let acc = ref init in
  iter_neighbors g u (fun v -> acc := f !acc v);
  !acc

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    if degree g u > !best then best := degree g u
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      if degree g u < !best then best := degree g u
    done;
    !best
  end

let degree_regularity g =
  if g.n = 0 then nan
  else begin
    let mn = min_degree g in
    if mn = 0 then infinity else float_of_int (max_degree g) /. float_of_int mn
  end

let is_symmetric g =
  let ok = ref true in
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if not (mem_edge g v u) then ok := false)
  done;
  !ok
