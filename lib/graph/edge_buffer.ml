type t = {
  mutable srcs : int array;
  mutable dsts : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { srcs = Array.make capacity 0; dsts = Array.make capacity 0; len = 0 }

let length b = b.len

let capacity b = Array.length b.srcs

let clear b = b.len <- 0

let grow b =
  let cap = Array.length b.srcs in
  let srcs = Array.make (2 * cap) 0 and dsts = Array.make (2 * cap) 0 in
  Array.blit b.srcs 0 srcs 0 b.len;
  Array.blit b.dsts 0 dsts 0 b.len;
  b.srcs <- srcs;
  b.dsts <- dsts

let ensure b extra =
  while b.len + extra > Array.length b.srcs do
    grow b
  done

let push b u v =
  if b.len = Array.length b.srcs then grow b;
  Array.unsafe_set b.srcs b.len u;
  Array.unsafe_set b.dsts b.len v;
  b.len <- b.len + 1

let src b i = Array.unsafe_get b.srcs i

let dst b i = Array.unsafe_get b.dsts i

let iter b f =
  for i = 0 to b.len - 1 do
    f (Array.unsafe_get b.srcs i) (Array.unsafe_get b.dsts i)
  done

let append b ~into =
  if b == into then invalid_arg "Edge_buffer.append: source and target alias";
  ensure into b.len;
  Array.blit b.srcs 0 into.srcs into.len b.len;
  Array.blit b.dsts 0 into.dsts into.len b.len;
  into.len <- into.len + b.len

let swap b i j =
  let su = b.srcs.(i) and du = b.dsts.(i) in
  b.srcs.(i) <- b.srcs.(j);
  b.dsts.(i) <- b.dsts.(j);
  b.srcs.(j) <- su;
  b.dsts.(j) <- du

let reverse_in_place b =
  let i = ref 0 and j = ref (b.len - 1) in
  while !i < !j do
    swap b !i !j;
    incr i;
    decr j
  done

(* In-place quicksort over the parallel arrays, lexicographic on
   (src, dst): median-of-three pivot, Hoare partition, insertion sort
   below a cutoff. No index permutation or pair boxing is ever built. *)

let less b i j =
  let si = b.srcs.(i) and sj = b.srcs.(j) in
  si < sj || (si = sj && b.dsts.(i) < b.dsts.(j))

let insertion_sort b lo hi =
  for i = lo + 1 to hi do
    let s = b.srcs.(i) and d = b.dsts.(i) in
    let j = ref (i - 1) in
    while !j >= lo && (b.srcs.(!j) > s || (b.srcs.(!j) = s && b.dsts.(!j) > d)) do
      b.srcs.(!j + 1) <- b.srcs.(!j);
      b.dsts.(!j + 1) <- b.dsts.(!j);
      decr j
    done;
    b.srcs.(!j + 1) <- s;
    b.dsts.(!j + 1) <- d
  done

let rec quicksort b lo hi =
  if hi - lo < 16 then insertion_sort b lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    if less b mid lo then swap b mid lo;
    if less b hi lo then swap b hi lo;
    if less b hi mid then swap b hi mid;
    let ps = b.srcs.(mid) and pd = b.dsts.(mid) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while
        (let s = b.srcs.(!i) in
         s < ps || (s = ps && b.dsts.(!i) < pd))
      do
        incr i
      done;
      while
        (let s = b.srcs.(!j) in
         s > ps || (s = ps && b.dsts.(!j) > pd))
      do
        decr j
      done;
      if !i <= !j then begin
        swap b !i !j;
        incr i;
        decr j
      end
    done;
    quicksort b lo !j;
    quicksort b !i hi
  end

let sort_dedup b =
  for i = 0 to b.len - 1 do
    let u = b.srcs.(i) and v = b.dsts.(i) in
    if v < u then begin
      b.srcs.(i) <- v;
      b.dsts.(i) <- u
    end
  done;
  quicksort b 0 (b.len - 1);
  if b.len > 1 then begin
    let w = ref 1 in
    for i = 1 to b.len - 1 do
      if b.srcs.(i) <> b.srcs.(!w - 1) || b.dsts.(i) <> b.dsts.(!w - 1) then begin
        b.srcs.(!w) <- b.srcs.(i);
        b.dsts.(!w) <- b.dsts.(i);
        incr w
      end
    done;
    b.len <- !w
  end

let to_list b =
  let acc = ref [] in
  for i = b.len - 1 downto 0 do
    acc := (b.srcs.(i), b.dsts.(i)) :: !acc
  done;
  !acc

(* The same arena on int32 Bigarray storage: endpoints are node ids, so
   they fit int32 cells, and a delta buffer carrying millions of edges
   stays off the OCaml heap entirely. Only the operations the delta
   paths use are mirrored; the sort/dedup machinery stays heap-only
   (it is a construction-time tool, not a steady-state one). *)
module I32 = struct
  type t = {
    srcs : Storage.I32.t;
    dsts : Storage.I32.t;
    mutable len : int;
  }

  let create ?(capacity = 16) () =
    let capacity = max 1 capacity in
    { srcs = Storage.I32.create capacity; dsts = Storage.I32.create capacity; len = 0 }

  let length b = b.len

  let capacity b = Storage.I32.length b.srcs

  let clear b = b.len <- 0

  let push b u v =
    Storage.I32.ensure b.srcs (b.len + 1);
    Storage.I32.ensure b.dsts (b.len + 1);
    Storage.I32.unsafe_set b.srcs b.len u;
    Storage.I32.unsafe_set b.dsts b.len v;
    b.len <- b.len + 1

  let src b i = Storage.I32.unsafe_get b.srcs i

  let dst b i = Storage.I32.unsafe_get b.dsts i

  let iter b f =
    for i = 0 to b.len - 1 do
      f (Storage.I32.unsafe_get b.srcs i) (Storage.I32.unsafe_get b.dsts i)
    done
end
