(** Fixed-universe sparse set: a dense [int array] of members plus a
    position index, the classic trick giving O(1) [add] / [remove] /
    [mem] with no hashing, no boxing and no per-operation allocation.

    Members are ints in [\[0, universe)]. The dense array is kept
    compact by swap-remove, so iteration is a linear walk over exactly
    [length] slots; the iteration order is the insertion order as
    perturbed by past swap-removes — deterministic for a deterministic
    operation sequence, but not sorted.

    This is the state representation behind the edge-Markovian models:
    the pair index of every present edge lives in the set, membership
    checks during the birth scan are two array reads, and the death
    scan subsamples the dense array with geometric skips
    ({!remove_bernoulli}) so a step draws O(m·q) variates instead of m
    Bernoullis. *)

type t

val create : int -> t
(** [create universe] is the empty set over [\[0, universe)].
    Allocates two [universe]-sized int arrays once; nothing afterwards. *)

val universe : t -> int

val length : t -> int

val mem : t -> int -> bool
(** O(1). The element must lie in [\[0, universe)]. *)

val add : t -> int -> unit
(** O(1); no-op if already present. *)

val add_unchecked : t -> int -> unit
(** [add] without the membership pre-check. The caller must guarantee
    [not (mem t x)] — inserting a present element corrupts the set.
    For bulk insertion paths that have just tested membership anyway
    (e.g. a birth scan over reported-absent elements). *)

val remove : t -> int -> unit
(** O(1) swap-remove (the last dense element takes the removed one's
    slot); no-op if absent. *)

val clear : t -> unit
(** O(1) — just forgets the length; stale index entries are disarmed by
    the [mem] validity check. *)

val fill_all : t -> unit
(** Make the set the whole universe, as one linear identity fill of the
    two arrays — the bulk path for [Full] / saturated-stationary
    initialisation, replacing a hash insert per element. *)

val get : t -> int -> int
(** [get t i] is the [i]-th element in dense order, [0 <= i < length]. *)

val find : t -> int -> int
(** [find t x] is the dense position of member [x] (so
    [get t (find t x) = x]); raises [Invalid_argument] if [x] is not a
    member. Lets callers that mirror per-member payload in a parallel
    array locate the slot a swap-remove will touch. *)

val iter : t -> (int -> unit) -> unit
(** Linear walk of the dense array in its current order. [f] must not
    mutate the set. *)

val iter_bernoulli : ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> unit) -> unit
(** Visit each element independently with probability [p], via
    geometric jumps over the dense array: O(length·p) expected draws.
    Requires [p] in [\[0, 1\]]. [f] must not mutate the set.

    [log1mp], when given, must equal [log (1. -. p)]: the scan then
    skips recomputing the logarithm per draw (the stream is unchanged
    bit-for-bit — see {!Prng.Rng.geometric_log1mp}). *)

val remove_bernoulli : ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> unit) -> unit
(** Remove each element independently with probability [p], calling [f]
    on every removed element, in O(length·p) expected draws. The scan
    runs over the dense array from the top down so that swap-remove
    only moves already-decided survivors into visited slots. Requires
    [p] in [\[0, 1\]]. [log1mp] as in {!iter_bernoulli}. *)

val remove_bernoulli_pos :
  ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> int -> unit) -> unit
(** {!remove_bernoulli} with positions: [f x i] receives each removed
    element [x] together with the dense slot [i] it was removed from,
    after the swap-remove has compacted the set. A caller mirroring
    per-member payload in a parallel array reads its slot [i] (the
    dying member's payload, untouched on the payload side) and then
    copies slot [length t] — the survivor just swapped into [i] — over
    it; when [i = length t] the copy is a harmless self-copy. *)

val remove_geo_pos : t -> Prng.Rng.Geo.sampler -> Prng.Rng.t -> (int -> int -> unit) -> unit
(** {!remove_bernoulli_pos} with the geometric skips drawn from a
    tabulated {!Prng.Rng.Geo} sampler (built for the same removal
    probability) instead of inversion — about half the cost per draw
    on hot death scans. The stream differs from the inversion scan's,
    so switching a model between the two regenerates goldens. *)

(** The same set, with the dense array and position index in int32
    Bigarray storage ({!Storage.I32}): half the memory, nothing on the
    OCaml heap but the control record. Every operation mirrors the
    heap implementation above exactly — same dense order, same swap
    moves, same draw streams — verified by the equivalence property
    suite in test/test_sparse_set.ml. Members must fit an int32 cell:
    [universe <= Storage.max_nodes]. *)
module I32 : sig
  type t

  val create : int -> t

  val universe : t -> int

  val length : t -> int

  val mem : t -> int -> bool

  val add : t -> int -> unit

  val add_unchecked : t -> int -> unit

  val remove : t -> int -> unit

  val clear : t -> unit

  val fill_all : t -> unit

  val get : t -> int -> int

  val find : t -> int -> int

  val iter : t -> (int -> unit) -> unit

  val iter_bernoulli : ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> unit) -> unit

  val remove_bernoulli : ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> unit) -> unit

  val remove_bernoulli_pos :
    ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> int -> unit) -> unit

  val remove_geo_pos : t -> Prng.Rng.Geo.sampler -> Prng.Rng.t -> (int -> int -> unit) -> unit
end

(** Sparse set for universes far beyond addressable memory (the pair
    index space of a 10⁶-node graph is ~2³⁹): a growable native-int
    dense array plus an off-heap open-addressing position index
    ({!Storage.Hash}), so memory is O(peak membership) instead of
    O(universe). The dense array evolves exactly as in the
    array-indexed implementations (append + swap-remove), so identical
    operation sequences yield identical dense orders and draw streams.
    [fill_all] is deliberately absent — saturating such a universe is
    never meaningful. *)
module Big : sig
  type t

  val create : ?capacity:int -> int -> t
  (** [create ?capacity universe]: [capacity] presizes the dense array
      and index (both still grow on demand). *)

  val universe : t -> int

  val length : t -> int

  val mem : t -> int -> bool

  val add : t -> int -> unit

  val add_unchecked : t -> int -> unit

  val remove : t -> int -> unit

  val clear : t -> unit

  val get : t -> int -> int

  val find : t -> int -> int

  val iter : t -> (int -> unit) -> unit

  val remove_bernoulli : ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> unit) -> unit

  val remove_bernoulli_pos :
    ?log1mp:float -> t -> Prng.Rng.t -> p:float -> (int -> int -> unit) -> unit

  val remove_geo_pos : t -> Prng.Rng.Geo.sampler -> Prng.Rng.t -> (int -> int -> unit) -> unit
end
