(** Off-heap storage layer for the big per-run state.

    Everything whose size scales with the graph — sparse-set dense
    arrays and position indices, adjacency rows, informed bitsets,
    arrival and frontier arrays — can live here instead of on the OCaml
    heap: int32 Bigarrays (4 bytes per element, never scanned by the
    GC) for node ids and dense positions, native-int Bigarrays for pair
    indices that exceed 32 bits, and packed Bytes bitsets (1 bit per
    node, opaque to the GC scanner) for membership flags. A 10⁶–10⁷
    node run then carries near-zero GC tax: the major heap holds only
    the fixed-size control records, independent of [n].

    Node ids are bounded by {!max_nodes} (2³¹): an id must round-trip
    through an int32 cell. Pair indices (up to n(n-1)/2 ≈ 2³⁹ at
    n = 2²⁰) do not fit and use the native-int {!Ix} arrays instead.

    Accessors are tiny and [@inline]-annotated; even without flambda
    the compiler cancels the int32 box/unbox pair in a
    [get]-as-argument position, so reads and writes are
    allocation-free (verified by test/test_storage.ml). *)

val max_nodes : int
(** Exclusive upper bound on node ids representable in int32 cells
    (2³¹). *)

val offheap_nodes : int
(** Node-count threshold at which size-polymorphic consumers
    ({!Core.Adj_sync}, [Core.Flooding], [Edge_meg.Classic]) switch
    from heap arrays to this storage layer by default (2¹⁷). Small
    runs keep the exact heap code paths — and their goldens —
    untouched. *)

val chunk_shift : int
(** [chunk_nodes = 1 lsl chunk_shift]; kernels compute a node's tile
    as [v lsr chunk_shift]. *)

val chunk_nodes : int
(** Tile width, in node ids, of the chunked frontier kernels (2¹⁵
    nodes = 4 KiB of packed bitset per tile — comfortably
    cache-resident together with the staging buffers; see DESIGN.md
    section 9). *)

(** Growable int32 vector on a Bigarray. *)
module I32 : sig
  type raw = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t

  val create : int -> t
  (** [create len] is a zero-filled vector of [len] cells. *)

  val length : t -> int

  val get : t -> int -> int
  (** Bounds-checked by the Bigarray layer. Values are truncated to 32
      bits on write, so only ints in [\[-2³¹, 2³¹)] round-trip. *)

  val set : t -> int -> int -> unit

  val unsafe_get : t -> int -> int

  val unsafe_set : t -> int -> int -> unit

  val fill : t -> int -> int -> int -> unit
  (** [fill t pos len v] sets [len] cells starting at [pos] to [v]. *)

  val blit : t -> int -> t -> int -> int -> unit
  (** [blit src spos dst dpos len]. *)

  val ensure : t -> int -> unit
  (** [ensure t capacity] grows the vector to at least [capacity]
      cells, doubling and preserving contents; new cells are zero.
      Never shrinks. The explicit growth contract for buffers whose
      peak size is run-dependent (e.g. the flooding trajectory). *)

  val raw : t -> raw
  (** The underlying Bigarray, for hot loops that hoist the array out
      of an accessor chain. Invalidated by {!ensure}. *)

  val raw_get : raw -> int -> int

  val raw_set : raw -> int -> int -> unit
end

(** Growable native-int vector on a Bigarray — 8 bytes per cell, for
    values (pair indices) that exceed the int32 range. *)
module Ix : sig
  type raw = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t

  val create : int -> t

  val length : t -> int

  val get : t -> int -> int

  val set : t -> int -> int -> unit

  val unsafe_get : t -> int -> int

  val unsafe_set : t -> int -> int -> unit

  val fill : t -> int -> int -> int -> unit

  val ensure : t -> int -> unit
end

(** Packed bitset: one bit per element in a Bytes block. The GC never
    scans Bytes contents, and the packing keeps the informed set of a
    2²⁰-node run in 128 KiB — L2-resident, which is what makes the
    chunked frontier scan's tiles pay off. *)
module Bitset : sig
  type t

  val create : int -> t
  (** [create n] is [n] clear bits. *)

  val length : t -> int

  val get : t -> int -> bool

  val set : t -> int -> unit

  val clear : t -> int -> unit

  val unsafe_get : t -> int -> bool

  val unsafe_set : t -> int -> unit

  val unsafe_clear : t -> int -> unit

  val clear_all : t -> unit
  (** Clear every bit. O(n/8). *)
end

(** Open-addressing hash index from non-negative int keys to
    non-negative int values, both stored in native-int Bigarrays:
    allocation-free lookups and updates, off-heap buckets. Linear
    probing with backward-shift deletion; capacity doubles at 50%
    load. This is the position index behind {!Sparse_set.Big}, where
    the pair-index universe (n(n-1)/2) is far too large for the
    array-backed index. Deterministic: the hash is a fixed integer
    mix, no per-process seeding. *)
module Hash : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int

  val find : t -> int -> int
  (** [find t k] is the value bound to [k], or [-1] if absent. *)

  val mem : t -> int -> bool

  val replace : t -> int -> int -> unit
  (** Bind [k] to [v], overwriting any previous binding. *)

  val remove : t -> int -> unit
  (** Remove [k]'s binding; no-op if absent. *)

  val clear : t -> unit
  (** Forget all bindings, keeping the bucket storage. O(capacity). *)
end
