(** Bijection between unordered vertex pairs {u, v} on [n] vertices and
    indices [0 .. n(n-1)/2 - 1], enumerating pairs in lexicographic
    order of (u, v) with u < v. Lets per-edge processes store one cell
    per potential edge and sample sparse edge sets with geometric
    jumps. *)

val total : int -> int
(** Number of unordered pairs: n(n-1)/2. *)

val encode : int -> int -> int -> int
(** [encode n u v] for [u <> v], both in [\[0, n)]. Order-insensitive. *)

val decode : int -> int -> int * int
(** [decode n idx] is the pair [(u, v)] with [u < v]. O(1) via the
    quadratic formula (with a safety adjustment for rounding). *)

val decode_with : int -> int -> (int -> int -> 'a) -> 'a
(** [decode_with n idx k] is [k u v] for the decoded pair — the same
    computation as {!decode} without boxing the result, for edge
    enumeration loops that run once per present edge. *)
