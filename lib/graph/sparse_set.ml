type t = {
  dense : int array;  (* the members, compact in [0, len) *)
  pos : int array;    (* pos.(x) = index of x in dense, if x is a member *)
  mutable len : int;
  universe : int;
}

(* Validity of a membership claim is [pos.(x) < len && dense.(pos.(x)) = x],
   so [clear] is O(1) and stale [pos] entries are harmless. *)

let create universe =
  if universe < 0 then invalid_arg "Sparse_set.create: negative universe";
  { dense = Array.make (max 1 universe) 0; pos = Array.make (max 1 universe) 0; len = 0; universe }

let universe t = t.universe

let length t = t.len

let mem t x =
  let p = Array.unsafe_get t.pos x in
  p < t.len && Array.unsafe_get t.dense p = x

let add t x =
  if not (mem t x) then begin
    Array.unsafe_set t.dense t.len x;
    Array.unsafe_set t.pos x t.len;
    t.len <- t.len + 1
  end

(* For callers that have already established [not (mem t x)] — e.g. a
   birth scan that only reports absent elements — skipping the
   membership re-check saves three dependent loads per insertion. *)
let add_unchecked t x =
  Array.unsafe_set t.dense t.len x;
  Array.unsafe_set t.pos x t.len;
  t.len <- t.len + 1

let remove t x =
  if mem t x then begin
    let p = Array.unsafe_get t.pos x in
    let last = t.len - 1 in
    let y = Array.unsafe_get t.dense last in
    Array.unsafe_set t.dense p y;
    Array.unsafe_set t.pos y p;
    t.len <- last
  end

let clear t = t.len <- 0

let fill_all t =
  for i = 0 to t.universe - 1 do
    Array.unsafe_set t.dense i i;
    Array.unsafe_set t.pos i i
  done;
  t.len <- t.universe

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sparse_set.get: index out of range";
  t.dense.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.dense i)
  done

let find t x =
  if not (mem t x) then invalid_arg "Sparse_set.find: not a member";
  Array.unsafe_get t.pos x

let check_prob name p =
  if not (p >= 0. && p <= 1.) then invalid_arg (name ^ ": probability outside [0, 1]")

(* Both skip scans branch on [log1mp] once and run a specialised loop
   with direct sampler calls: [geometric_log1mp] draws the same stream
   as [geometric] for log1mp = log (1 - p) (identical float expression
   inside), so the two arms differ only in cost, never in output. *)
let iter_bernoulli ?log1mp t rng ~p f =
  check_prob "Sparse_set.iter_bernoulli" p;
  if p >= 1. then iter t f
  else if p > 0. then
    match log1mp with
    | Some l ->
        (* Direct sampler calls instead of a [geo] closure: the skip
           loops run once per surviving event, so the indirect call
           would be paid on the hot path. *)
        let i = ref (Prng.Rng.geometric_log1mp rng ~log1mp:l) in
        while !i < t.len do
          f (Array.unsafe_get t.dense !i);
          i := !i + 1 + Prng.Rng.geometric_log1mp rng ~log1mp:l
        done
    | None ->
        let i = ref (Prng.Rng.geometric rng p) in
        while !i < t.len do
          f (Array.unsafe_get t.dense !i);
          i := !i + 1 + Prng.Rng.geometric rng p
        done

let remove_at t i =
  let x = Array.unsafe_get t.dense i in
  let last = t.len - 1 in
  let y = Array.unsafe_get t.dense last in
  Array.unsafe_set t.dense i y;
  Array.unsafe_set t.pos y i;
  t.len <- last;
  x

let remove_bernoulli_pos ?log1mp t rng ~p f =
  check_prob "Sparse_set.remove_bernoulli" p;
  if p >= 1. then begin
    for i = t.len - 1 downto 0 do
      f (Array.unsafe_get t.dense i) i;
      t.len <- i
    done
  end
  else if p > 0. then begin
    (* Top-down geometric skips: a visited slot's element dies; the
       survivor swapped in from the (already passed) end is never
       revisited, so every element gets exactly one Bernoulli(p) fate.
       [f x i] runs after the swap-remove, so a payload mirror can read
       the dying element's slot [i] (not yet overwritten on its side)
       and then copy slot [length t] — the swapped-in survivor — over
       it. *)
    match log1mp with
    | Some l ->
        let i = ref (t.len - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l) in
        while !i >= 0 do
          let x = remove_at t !i in
          f x !i;
          i := !i - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l
        done
    | None ->
        let i = ref (t.len - 1 - Prng.Rng.geometric rng p) in
        while !i >= 0 do
          let x = remove_at t !i in
          f x !i;
          i := !i - 1 - Prng.Rng.geometric rng p
        done
  end

(* [remove_bernoulli_pos]'s top-down skip walk with the geometric
   draws taken from a tabulated sampler instead of inversion — the
   survivor-swap invariant is identical (see above). Distinct stream:
   switching a model between the two is a golden-regenerating
   change. *)
let remove_geo_pos t geo rng f =
  let i = ref (t.len - 1 - Prng.Rng.Geo.draw geo rng) in
  while !i >= 0 do
    let x = remove_at t !i in
    f x !i;
    i := !i - 1 - Prng.Rng.Geo.draw geo rng
  done

let remove_bernoulli ?log1mp t rng ~p f =
  remove_bernoulli_pos ?log1mp t rng ~p (fun x _ -> f x)
