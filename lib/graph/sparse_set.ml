type t = {
  dense : int array;  (* the members, compact in [0, len) *)
  pos : int array;    (* pos.(x) = index of x in dense, if x is a member *)
  mutable len : int;
  universe : int;
}

(* Validity of a membership claim is [pos.(x) < len && dense.(pos.(x)) = x],
   so [clear] is O(1) and stale [pos] entries are harmless. *)

let create universe =
  if universe < 0 then invalid_arg "Sparse_set.create: negative universe";
  { dense = Array.make (max 1 universe) 0; pos = Array.make (max 1 universe) 0; len = 0; universe }

let universe t = t.universe

let length t = t.len

let mem t x =
  let p = Array.unsafe_get t.pos x in
  p < t.len && Array.unsafe_get t.dense p = x

let add t x =
  if not (mem t x) then begin
    Array.unsafe_set t.dense t.len x;
    Array.unsafe_set t.pos x t.len;
    t.len <- t.len + 1
  end

let remove t x =
  if mem t x then begin
    let p = Array.unsafe_get t.pos x in
    let last = t.len - 1 in
    let y = Array.unsafe_get t.dense last in
    Array.unsafe_set t.dense p y;
    Array.unsafe_set t.pos y p;
    t.len <- last
  end

let clear t = t.len <- 0

let fill_all t =
  for i = 0 to t.universe - 1 do
    Array.unsafe_set t.dense i i;
    Array.unsafe_set t.pos i i
  done;
  t.len <- t.universe

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sparse_set.get: index out of range";
  t.dense.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.dense i)
  done

let check_prob name p =
  if not (p >= 0. && p <= 1.) then invalid_arg (name ^ ": probability outside [0, 1]")

let iter_bernoulli t rng ~p f =
  check_prob "Sparse_set.iter_bernoulli" p;
  if p >= 1. then iter t f
  else if p > 0. then begin
    let i = ref (Prng.Rng.geometric rng p) in
    while !i < t.len do
      f (Array.unsafe_get t.dense !i);
      i := !i + 1 + Prng.Rng.geometric rng p
    done
  end

let remove_at t i =
  let x = Array.unsafe_get t.dense i in
  let last = t.len - 1 in
  let y = Array.unsafe_get t.dense last in
  Array.unsafe_set t.dense i y;
  Array.unsafe_set t.pos y i;
  t.len <- last;
  x

let remove_bernoulli t rng ~p f =
  check_prob "Sparse_set.remove_bernoulli" p;
  if p >= 1. then begin
    for i = t.len - 1 downto 0 do
      f (Array.unsafe_get t.dense i)
    done;
    t.len <- 0
  end
  else if p > 0. then begin
    (* Top-down geometric skips: a visited slot's element dies; the
       survivor swapped in from the (already passed) end is never
       revisited, so every element gets exactly one Bernoulli(p) fate. *)
    let i = ref (t.len - 1 - Prng.Rng.geometric rng p) in
    while !i >= 0 do
      f (remove_at t !i);
      i := !i - 1 - Prng.Rng.geometric rng p
    done
  end
