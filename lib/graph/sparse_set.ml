type t = {
  dense : int array;  (* the members, compact in [0, len) *)
  pos : int array;    (* pos.(x) = index of x in dense, if x is a member *)
  mutable len : int;
  universe : int;
}

(* Validity of a membership claim is [pos.(x) < len && dense.(pos.(x)) = x],
   so [clear] is O(1) and stale [pos] entries are harmless. *)

let create universe =
  if universe < 0 then invalid_arg "Sparse_set.create: negative universe";
  { dense = Array.make (max 1 universe) 0; pos = Array.make (max 1 universe) 0; len = 0; universe }

let universe t = t.universe

let length t = t.len

let mem t x =
  let p = Array.unsafe_get t.pos x in
  p < t.len && Array.unsafe_get t.dense p = x

let add t x =
  if not (mem t x) then begin
    Array.unsafe_set t.dense t.len x;
    Array.unsafe_set t.pos x t.len;
    t.len <- t.len + 1
  end

(* For callers that have already established [not (mem t x)] — e.g. a
   birth scan that only reports absent elements — skipping the
   membership re-check saves three dependent loads per insertion. *)
let add_unchecked t x =
  Array.unsafe_set t.dense t.len x;
  Array.unsafe_set t.pos x t.len;
  t.len <- t.len + 1

let remove t x =
  if mem t x then begin
    let p = Array.unsafe_get t.pos x in
    let last = t.len - 1 in
    let y = Array.unsafe_get t.dense last in
    Array.unsafe_set t.dense p y;
    Array.unsafe_set t.pos y p;
    t.len <- last
  end

let clear t = t.len <- 0

let fill_all t =
  for i = 0 to t.universe - 1 do
    Array.unsafe_set t.dense i i;
    Array.unsafe_set t.pos i i
  done;
  t.len <- t.universe

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sparse_set.get: index out of range";
  t.dense.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.dense i)
  done

let find t x =
  if not (mem t x) then invalid_arg "Sparse_set.find: not a member";
  Array.unsafe_get t.pos x

let check_prob name p =
  if not (p >= 0. && p <= 1.) then invalid_arg (name ^ ": probability outside [0, 1]")

(* Both skip scans branch on [log1mp] once and run a specialised loop
   with direct sampler calls: [geometric_log1mp] draws the same stream
   as [geometric] for log1mp = log (1 - p) (identical float expression
   inside), so the two arms differ only in cost, never in output. *)
let iter_bernoulli ?log1mp t rng ~p f =
  check_prob "Sparse_set.iter_bernoulli" p;
  if p >= 1. then iter t f
  else if p > 0. then
    match log1mp with
    | Some l ->
        (* Direct sampler calls instead of a [geo] closure: the skip
           loops run once per surviving event, so the indirect call
           would be paid on the hot path. *)
        let i = ref (Prng.Rng.geometric_log1mp rng ~log1mp:l) in
        while !i < t.len do
          f (Array.unsafe_get t.dense !i);
          i := !i + 1 + Prng.Rng.geometric_log1mp rng ~log1mp:l
        done
    | None ->
        let i = ref (Prng.Rng.geometric rng p) in
        while !i < t.len do
          f (Array.unsafe_get t.dense !i);
          i := !i + 1 + Prng.Rng.geometric rng p
        done

let remove_at t i =
  let x = Array.unsafe_get t.dense i in
  let last = t.len - 1 in
  let y = Array.unsafe_get t.dense last in
  Array.unsafe_set t.dense i y;
  Array.unsafe_set t.pos y i;
  t.len <- last;
  x

let remove_bernoulli_pos ?log1mp t rng ~p f =
  check_prob "Sparse_set.remove_bernoulli" p;
  if p >= 1. then begin
    for i = t.len - 1 downto 0 do
      f (Array.unsafe_get t.dense i) i;
      t.len <- i
    done
  end
  else if p > 0. then begin
    (* Top-down geometric skips: a visited slot's element dies; the
       survivor swapped in from the (already passed) end is never
       revisited, so every element gets exactly one Bernoulli(p) fate.
       [f x i] runs after the swap-remove, so a payload mirror can read
       the dying element's slot [i] (not yet overwritten on its side)
       and then copy slot [length t] — the swapped-in survivor — over
       it. *)
    match log1mp with
    | Some l ->
        let i = ref (t.len - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l) in
        while !i >= 0 do
          let x = remove_at t !i in
          f x !i;
          i := !i - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l
        done
    | None ->
        let i = ref (t.len - 1 - Prng.Rng.geometric rng p) in
        while !i >= 0 do
          let x = remove_at t !i in
          f x !i;
          i := !i - 1 - Prng.Rng.geometric rng p
        done
  end

(* [remove_bernoulli_pos]'s top-down skip walk with the geometric
   draws taken from a tabulated sampler instead of inversion — the
   survivor-swap invariant is identical (see above). Distinct stream:
   switching a model between the two is a golden-regenerating
   change. *)
let remove_geo_pos t geo rng f =
  let i = ref (t.len - 1 - Prng.Rng.Geo.draw geo rng) in
  while !i >= 0 do
    let x = remove_at t !i in
    f x !i;
    i := !i - 1 - Prng.Rng.Geo.draw geo rng
  done

let remove_bernoulli ?log1mp t rng ~p f =
  remove_bernoulli_pos ?log1mp t rng ~p (fun x _ -> f x)

(* The same dense-array-plus-position-index design with both arrays in
   int32 Bigarray storage: 8 bytes per universe slot instead of 16,
   nothing for the GC to scan. Operation-for-operation identical to
   the heap implementation above (property-tested in
   test/test_sparse_set.ml), so swapping a model between the two never
   changes a draw stream. Members must fit an int32 cell
   (universe <= Storage.max_nodes). *)
module I32 = struct
  type t = {
    dense : Storage.I32.t;
    pos : Storage.I32.t;
    mutable len : int;
    universe : int;
  }

  let create universe =
    if universe < 0 then invalid_arg "Sparse_set.I32.create: negative universe";
    if universe > Storage.max_nodes then
      invalid_arg "Sparse_set.I32.create: universe exceeds the int32 id range";
    {
      dense = Storage.I32.create (max 1 universe);
      pos = Storage.I32.create (max 1 universe);
      len = 0;
      universe;
    }

  let universe t = t.universe

  let length t = t.len

  let[@inline] mem t x =
    let p = Storage.I32.unsafe_get t.pos x in
    p < t.len && Storage.I32.unsafe_get t.dense p = x

  let add t x =
    if not (mem t x) then begin
      Storage.I32.unsafe_set t.dense t.len x;
      Storage.I32.unsafe_set t.pos x t.len;
      t.len <- t.len + 1
    end

  let add_unchecked t x =
    Storage.I32.unsafe_set t.dense t.len x;
    Storage.I32.unsafe_set t.pos x t.len;
    t.len <- t.len + 1

  let remove t x =
    if mem t x then begin
      let p = Storage.I32.unsafe_get t.pos x in
      let last = t.len - 1 in
      let y = Storage.I32.unsafe_get t.dense last in
      Storage.I32.unsafe_set t.dense p y;
      Storage.I32.unsafe_set t.pos y p;
      t.len <- last
    end

  let clear t = t.len <- 0

  let fill_all t =
    for i = 0 to t.universe - 1 do
      Storage.I32.unsafe_set t.dense i i;
      Storage.I32.unsafe_set t.pos i i
    done;
    t.len <- t.universe

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Sparse_set.I32.get: index out of range";
    Storage.I32.unsafe_get t.dense i

  let iter t f =
    for i = 0 to t.len - 1 do
      f (Storage.I32.unsafe_get t.dense i)
    done

  let find t x =
    if not (mem t x) then invalid_arg "Sparse_set.I32.find: not a member";
    Storage.I32.unsafe_get t.pos x

  let iter_bernoulli ?log1mp t rng ~p f =
    check_prob "Sparse_set.I32.iter_bernoulli" p;
    if p >= 1. then iter t f
    else if p > 0. then
      match log1mp with
      | Some l ->
          let i = ref (Prng.Rng.geometric_log1mp rng ~log1mp:l) in
          while !i < t.len do
            f (Storage.I32.unsafe_get t.dense !i);
            i := !i + 1 + Prng.Rng.geometric_log1mp rng ~log1mp:l
          done
      | None ->
          let i = ref (Prng.Rng.geometric rng p) in
          while !i < t.len do
            f (Storage.I32.unsafe_get t.dense !i);
            i := !i + 1 + Prng.Rng.geometric rng p
          done

  let remove_at t i =
    let x = Storage.I32.unsafe_get t.dense i in
    let last = t.len - 1 in
    let y = Storage.I32.unsafe_get t.dense last in
    Storage.I32.unsafe_set t.dense i y;
    Storage.I32.unsafe_set t.pos y i;
    t.len <- last;
    x

  let remove_bernoulli_pos ?log1mp t rng ~p f =
    check_prob "Sparse_set.I32.remove_bernoulli" p;
    if p >= 1. then begin
      for i = t.len - 1 downto 0 do
        f (Storage.I32.unsafe_get t.dense i) i;
        t.len <- i
      done
    end
    else if p > 0. then begin
      match log1mp with
      | Some l ->
          let i = ref (t.len - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l) in
          while !i >= 0 do
            let x = remove_at t !i in
            f x !i;
            i := !i - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l
          done
      | None ->
          let i = ref (t.len - 1 - Prng.Rng.geometric rng p) in
          while !i >= 0 do
            let x = remove_at t !i in
            f x !i;
            i := !i - 1 - Prng.Rng.geometric rng p
          done
    end

  let remove_geo_pos t geo rng f =
    let i = ref (t.len - 1 - Prng.Rng.Geo.draw geo rng) in
    while !i >= 0 do
      let x = remove_at t !i in
      f x !i;
      i := !i - 1 - Prng.Rng.Geo.draw geo rng
    done

  let remove_bernoulli ?log1mp t rng ~p f =
    remove_bernoulli_pos ?log1mp t rng ~p (fun x _ -> f x)
end

(* Sparse set over a universe far too large for a position array: the
   dense array grows on demand (native-int cells — pair indices at
   n = 2^20 exceed 32 bits) and the position index is an off-heap
   open-addressing hash keyed by member. Memory is O(peak membership),
   never O(universe): this is what lets an edge-MEG at 10^6 nodes keep
   its ~n(n-1)/2-sized pair universe while storing only the live
   edges. The dense array evolves exactly as in the array-indexed
   implementations (append + swap-remove), so a given operation
   sequence produces the same dense order and the same draw streams. *)
module Big = struct
  type t = {
    dense : Storage.Ix.t;
    idx : Storage.Hash.t;
    mutable len : int;
    universe : int;
  }

  let create ?(capacity = 64) universe =
    if universe < 0 then invalid_arg "Sparse_set.Big.create: negative universe";
    {
      dense = Storage.Ix.create (max 1 capacity);
      idx = Storage.Hash.create ~capacity ();
      len = 0;
      universe;
    }

  let universe t = t.universe

  let length t = t.len

  let mem t x = Storage.Hash.mem t.idx x

  let add_unchecked t x =
    Storage.Ix.ensure t.dense (t.len + 1);
    Storage.Ix.unsafe_set t.dense t.len x;
    Storage.Hash.replace t.idx x t.len;
    t.len <- t.len + 1

  let add t x = if not (mem t x) then add_unchecked t x

  let remove t x =
    match Storage.Hash.find t.idx x with
    | -1 -> ()
    | p ->
        let last = t.len - 1 in
        let y = Storage.Ix.unsafe_get t.dense last in
        Storage.Ix.unsafe_set t.dense p y;
        if y <> x then Storage.Hash.replace t.idx y p;
        Storage.Hash.remove t.idx x;
        t.len <- last

  let clear t =
    Storage.Hash.clear t.idx;
    t.len <- 0

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Sparse_set.Big.get: index out of range";
    Storage.Ix.unsafe_get t.dense i

  let find t x =
    match Storage.Hash.find t.idx x with
    | -1 -> invalid_arg "Sparse_set.Big.find: not a member"
    | p -> p

  let iter t f =
    for i = 0 to t.len - 1 do
      f (Storage.Ix.unsafe_get t.dense i)
    done

  let remove_at t i =
    let x = Storage.Ix.unsafe_get t.dense i in
    let last = t.len - 1 in
    let y = Storage.Ix.unsafe_get t.dense last in
    Storage.Ix.unsafe_set t.dense i y;
    if y <> x then Storage.Hash.replace t.idx y i;
    Storage.Hash.remove t.idx x;
    t.len <- last;
    x

  let remove_bernoulli_pos ?log1mp t rng ~p f =
    check_prob "Sparse_set.Big.remove_bernoulli" p;
    if p >= 1. then begin
      for i = t.len - 1 downto 0 do
        let x = Storage.Ix.unsafe_get t.dense i in
        f x i;
        Storage.Hash.remove t.idx x;
        t.len <- i
      done
    end
    else if p > 0. then begin
      match log1mp with
      | Some l ->
          let i = ref (t.len - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l) in
          while !i >= 0 do
            let x = remove_at t !i in
            f x !i;
            i := !i - 1 - Prng.Rng.geometric_log1mp rng ~log1mp:l
          done
      | None ->
          let i = ref (t.len - 1 - Prng.Rng.geometric rng p) in
          while !i >= 0 do
            let x = remove_at t !i in
            f x !i;
            i := !i - 1 - Prng.Rng.geometric rng p
          done
    end

  let remove_geo_pos t geo rng f =
    let i = ref (t.len - 1 - Prng.Rng.Geo.draw geo rng) in
    while !i >= 0 do
      let x = remove_at t !i in
      f x !i;
      i := !i - 1 - Prng.Rng.Geo.draw geo rng
    done

  let remove_bernoulli ?log1mp t rng ~p f =
    remove_bernoulli_pos ?log1mp t rng ~p (fun x _ -> f x)
end
