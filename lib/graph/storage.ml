let max_nodes = 1 lsl 31

let offheap_nodes = 1 lsl 17

let chunk_shift = 15

let chunk_nodes = 1 lsl chunk_shift

module I32 = struct
  type raw = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = { mutable data : raw }

  let alloc len : raw =
    let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max 1 len) in
    Bigarray.Array1.fill a 0l;
    a

  let create len =
    if len < 0 then invalid_arg "Storage.I32.create: negative length";
    { data = alloc len }

  let[@inline] length t = Bigarray.Array1.dim t.data

  let[@inline] get t i = Int32.to_int (Bigarray.Array1.get t.data i)

  let[@inline] set t i v = Bigarray.Array1.set t.data i (Int32.of_int v)

  let[@inline] unsafe_get t i = Int32.to_int (Bigarray.Array1.unsafe_get t.data i)

  let[@inline] unsafe_set t i v = Bigarray.Array1.unsafe_set t.data i (Int32.of_int v)

  let fill t pos len v =
    if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Storage.I32.fill";
    Bigarray.Array1.fill (Bigarray.Array1.sub t.data pos len) (Int32.of_int v)

  let blit src spos dst dpos len =
    if
      spos < 0 || dpos < 0 || len < 0
      || spos + len > length src
      || dpos + len > length dst
    then invalid_arg "Storage.I32.blit";
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src.data spos len)
      (Bigarray.Array1.sub dst.data dpos len)

  let ensure t capacity =
    let cur = length t in
    if capacity > cur then begin
      let cap = ref (max 1 cur) in
      while !cap < capacity do
        cap := 2 * !cap
      done;
      let bigger = alloc !cap in
      Bigarray.Array1.blit t.data (Bigarray.Array1.sub bigger 0 cur);
      t.data <- bigger
    end

  let[@inline] raw t = t.data

  let[@inline] raw_get (a : raw) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

  let[@inline] raw_set (a : raw) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)
end

module Ix = struct
  type raw = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = { mutable data : raw }

  let alloc len : raw =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len) in
    Bigarray.Array1.fill a 0;
    a

  let create len =
    if len < 0 then invalid_arg "Storage.Ix.create: negative length";
    { data = alloc len }

  let[@inline] length t = Bigarray.Array1.dim t.data

  let[@inline] get t i = Bigarray.Array1.get t.data i

  let[@inline] set t i v = Bigarray.Array1.set t.data i v

  let[@inline] unsafe_get t i = Bigarray.Array1.unsafe_get t.data i

  let[@inline] unsafe_set t i v = Bigarray.Array1.unsafe_set t.data i v

  let fill t pos len v =
    if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Storage.Ix.fill";
    Bigarray.Array1.fill (Bigarray.Array1.sub t.data pos len) v

  let ensure t capacity =
    let cur = length t in
    if capacity > cur then begin
      let cap = ref (max 1 cur) in
      while !cap < capacity do
        cap := 2 * !cap
      done;
      let bigger = alloc !cap in
      Bigarray.Array1.blit t.data (Bigarray.Array1.sub bigger 0 cur);
      t.data <- bigger
    end
end

module Bitset = struct
  type t = { bits : Bytes.t; n : int }

  let create n =
    if n < 0 then invalid_arg "Storage.Bitset.create: negative length";
    { bits = Bytes.make ((n + 7) lsr 3) '\000'; n }

  let[@inline] length t = t.n

  let[@inline] unsafe_get t i =
    Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let[@inline] unsafe_set t i =
    let byte = i lsr 3 in
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

  let[@inline] unsafe_clear t i =
    let byte = i lsr 3 in
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7))))

  let get t i =
    if i < 0 || i >= t.n then invalid_arg "Storage.Bitset.get";
    unsafe_get t i

  let set t i =
    if i < 0 || i >= t.n then invalid_arg "Storage.Bitset.set";
    unsafe_set t i

  let clear t i =
    if i < 0 || i >= t.n then invalid_arg "Storage.Bitset.clear";
    unsafe_clear t i

  let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'
end

module Hash = struct
  (* Linear probing over two parallel native-int Bigarrays; an empty
     bucket holds key -1. Capacity is a power of two and load is kept
     at or below 1/2, so probe sequences stay short. Removal
     backward-shifts the displaced suffix of the probe cluster instead
     of leaving tombstones, keeping [find] O(cluster) forever. *)
  type t = {
    mutable keys : Ix.raw;
    mutable vals : Ix.raw;
    mutable mask : int;
    mutable len : int;
  }

  let alloc cap : Ix.raw =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
    Bigarray.Array1.fill a (-1);
    a

  let create ?(capacity = 16) () =
    let cap = ref 16 in
    while !cap < capacity do
      cap := 2 * !cap
    done;
    { keys = alloc !cap; vals = alloc !cap; mask = !cap - 1; len = 0 }

  let length t = t.len

  (* Multiplicative hashing: one wrap-around multiply by a fixed odd
     62-bit constant (the splitmix64 mixer's, truncated to OCaml's
     63-bit int); [lsr 21] keeps the well-mixed middle-high bits and
     still leaves 42 of them, far above any realistic capacity.
     Deterministic across processes — no per-run seeding. *)
  let[@inline] slot t k = (k * 0x2545F4914F6CDD1D) lsr 21 land t.mask

  let find t k =
    let keys = t.keys in
    let mask = t.mask in
    let i = ref (slot t k) in
    let res = ref (-2) in
    while !res = -2 do
      let kk = Bigarray.Array1.unsafe_get keys !i in
      if kk = k then res := Bigarray.Array1.unsafe_get t.vals !i
      else if kk = -1 then res := -1
      else i := (!i + 1) land mask
    done;
    !res

  let mem t k = find t k >= 0

  let rec replace t k v =
    if 2 * (t.len + 1) > t.mask + 1 then grow t;
    let keys = t.keys in
    let mask = t.mask in
    let i = ref (slot t k) in
    let placed = ref false in
    while not !placed do
      let kk = Bigarray.Array1.unsafe_get keys !i in
      if kk = k then begin
        Bigarray.Array1.unsafe_set t.vals !i v;
        placed := true
      end
      else if kk = -1 then begin
        Bigarray.Array1.unsafe_set keys !i k;
        Bigarray.Array1.unsafe_set t.vals !i v;
        t.len <- t.len + 1;
        placed := true
      end
      else i := (!i + 1) land mask
    done

  and grow t =
    let old_keys = t.keys and old_vals = t.vals in
    let old_cap = t.mask + 1 in
    let cap = 2 * old_cap in
    t.keys <- alloc cap;
    t.vals <- alloc cap;
    t.mask <- cap - 1;
    t.len <- 0;
    for i = 0 to old_cap - 1 do
      let k = Bigarray.Array1.unsafe_get old_keys i in
      if k >= 0 then replace t k (Bigarray.Array1.unsafe_get old_vals i)
    done

  let remove t k =
    let keys = t.keys and vals = t.vals in
    let mask = t.mask in
    let i = ref (slot t k) in
    let found = ref false and stop = ref false in
    while not !stop do
      let kk = Bigarray.Array1.unsafe_get keys !i in
      if kk = k then begin
        found := true;
        stop := true
      end
      else if kk = -1 then stop := true
      else i := (!i + 1) land mask
    done;
    if !found then begin
      (* Backward shift: walk the rest of the cluster and pull back any
         entry whose home slot lies at or before the hole (cyclically),
         then clear the final hole. *)
      let hole = ref !i in
      let j = ref ((!i + 1) land mask) in
      let continue_ = ref true in
      while !continue_ do
        let kk = Bigarray.Array1.unsafe_get keys !j in
        if kk = -1 then continue_ := false
        else begin
          let home = slot t kk in
          (* kk may move back to [hole] iff hole lies cyclically within
             [home, j). *)
          let between =
            if !hole <= !j then home <= !hole || home > !j
            else home <= !hole && home > !j
          in
          if between then begin
            Bigarray.Array1.unsafe_set keys !hole kk;
            Bigarray.Array1.unsafe_set vals !hole (Bigarray.Array1.unsafe_get vals !j);
            hole := !j
          end;
          j := (!j + 1) land mask
        end
      done;
      Bigarray.Array1.unsafe_set keys !hole (-1);
      t.len <- t.len - 1
    end

  let clear t =
    Bigarray.Array1.fill t.keys (-1);
    t.len <- 0
end
