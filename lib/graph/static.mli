(** Immutable undirected graphs in compressed sparse row (CSR) form.

    Vertices are [0 .. n-1]. Parallel edges are collapsed and self-loops
    rejected at construction. Neighbour lists are sorted, so membership
    queries are O(log deg). *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] vertices. Edges may be
    given in either orientation and with duplicates. Raises on self-loops
    or out-of-range endpoints. *)

val of_edge_array : n:int -> (int * int) array -> t
(** Array variant of {!of_edges}. Sorting and deduplication happen in
    place on an int-array edge buffer; no intermediate lists are
    built. *)

val of_buffer : n:int -> Edge_buffer.t -> t
(** Build the CSR form straight from an {!Edge_buffer}, with no
    intermediate lists or tuple arrays. Same contract as {!of_edges}
    (either orientation, duplicates collapsed, self-loops rejected).
    The buffer is sorted and deduplicated {e in place} as a side
    effect; its storage is not retained by the graph. *)

val to_buffer : t -> Edge_buffer.t -> unit
(** Append every edge to the buffer, with [u < v], in the order of
    {!iter_edges}. Does not clear the buffer first. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency. O(log deg). *)

val neighbors : t -> int -> int array
(** Sorted neighbour array of a vertex. The returned array must not be
    mutated (it aliases internal storage). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each undirected edge once, with [u < v]. *)

val edges : t -> (int * int) list
(** All edges with [u < v], in lexicographic order. *)

val max_degree : t -> int
val min_degree : t -> int

val degree_regularity : t -> float
(** [max_degree / min_degree] as a float; the δ of Corollary 6 when the
    graph is used as a mobility space. [infinity] if some vertex is
    isolated, [nan] on the empty graph. *)

val is_symmetric : t -> bool
(** Internal consistency check: every arc has its reverse. Always true
    for graphs built by this module; exposed for property tests. *)

(** The same CSR snapshot with off-heap row storage: offsets in a
    native-int Bigarray (they count entries, which can exceed the int32
    range), targets (node ids) in int32 — two flat blocks the GC never
    scans, regardless of [n]. Construction goes through a heap
    {!Edge_buffer} (sorted and deduplicated in place, same contract as
    {!of_buffer}); the transient build storage is released, only the
    Bigarrays are retained. Requires [n <= Storage.max_nodes]. *)
module I32 : sig
  type t

  val of_buffer : n:int -> Edge_buffer.t -> t

  val n : t -> int

  val m : t -> int

  val degree : t -> int -> int

  val mem_edge : t -> int -> int -> bool
  (** O(log deg), like the heap CSR's. *)

  val iter_neighbors : t -> int -> (int -> unit) -> unit

  val iter_edges : t -> (int -> int -> unit) -> unit
  (** Each undirected edge once, with [u < v]. *)
end
