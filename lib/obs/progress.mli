(** Optional progress reporting for long sweeps.

    When enabled, {!Exec.run} registers each root-level plan with
    {!begin_plan} and calls {!tick} as its jobs complete (on whichever
    domain finished them). By default a throttled [\r label: k/n jobs]
    line goes to stderr; stdout is never touched, so progress can be
    enabled without perturbing byte-identical result output. Timestamps
    come from {!Clock}, so install a real wall clock for useful
    throttling.

    The renderer is pluggable: fleet worker processes replace it with
    one that forwards updates over the framed pipe protocol (so the
    parent renders one coherent stream instead of shards tearing each
    other's stderr lines), and the serve daemon replaces it with one
    that emits per-request JSON progress frames. *)

type update = {
  label : string;  (** the plan label passed to {!enable} *)
  completed : int;
  total : int;
  final : bool;  (** true for the end-of-plan update *)
  sub : (string * int * int) option;
      (** finer-grained [(label, completed, total)] progress inside the
          current job, e.g. a fleet shard's own ticks *)
}

type renderer = update -> unit

val set_renderer : renderer option -> unit
(** Install a custom renderer, or [None] to restore the default stderr
    line. Updates are delivered under the module's mutex, one at a
    time. *)

val enable : ?label:string -> unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val begin_plan : jobs:int -> unit
(** Called by the execution engine when a root plan starts. *)

val tick : unit -> unit
(** Called by the execution engine as each root-plan job completes.
    Clears any {!sub} state (the job it described just finished). *)

val sub : label:string -> completed:int -> total:int -> unit
(** Report finer-grained progress inside the currently running job —
    used by the fleet parent when a worker forwards its shard's own
    ticks. Rendered as a suffix of the main line by the default
    renderer. *)

val end_plan : unit -> unit
(** Called by the execution engine when a root plan finishes; renders a
    final update (newline-terminated on the default renderer). *)
