(** Optional stderr progress reporting for long sweeps.

    When enabled, {!Exec.run} registers each root-level plan with
    {!begin_plan} and calls {!tick} as its jobs complete (on whichever
    domain finished them); a throttled [\r label: k/n jobs] line goes to
    stderr. Stdout is never touched, so progress can be enabled without
    perturbing byte-identical result output. Timestamps come from
    {!Clock}, so install a real clock for useful throttling. *)

val enable : ?label:string -> unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val begin_plan : jobs:int -> unit
(** Called by the execution engine when a root plan starts. *)

val tick : unit -> unit
(** Called by the execution engine as each root-plan job completes. *)

val end_plan : unit -> unit
(** Called by the execution engine when a root plan finishes; prints the
    final count with a newline. *)
