(** Domain-local observability context, and its propagation across the
    execution engine's worker domains.

    An ambient value bundles what a job inherits from the code that
    planned it: the metrics attribution sink currently installed (see
    {!Metrics.with_scope}) and the trace coordinate path of the
    enclosing frame. [Exec.run] captures the ambient once per plan on
    the submitting domain and re-installs it around every job — on the
    submitting domain under the sequential scheduler, on worker domains
    under a pool — which is what makes metric attribution and trace
    coordinates independent of the scheduler.

    Only the execution engine should need this module; instrumentation
    call sites use {!Metrics} and {!Trace} directly. *)

type sink = int Atomic.t array
(** Scope-local counter cells indexed by counter id; atomic because all
    domains working under one scope share the same sink. *)

type frame = {
  path : int array;
  mutable next_plan : int;
  mutable seq : int;
}
(** The per-domain trace frame: [path] is the job's coordinate
    (alternating plan ordinal / job index from the root), [next_plan]
    numbers the plans this frame starts, [seq] numbers the events it
    emits. All three depend only on program structure, never on
    scheduling. *)

val frame : unit -> frame
(** This domain's current frame (a root frame when outside any job). *)

val current_sink : unit -> sink option
(** The metrics sink installed on this domain, if any. *)

val set_sink : sink option -> unit
(** Install / remove this domain's metrics sink (used by
    {!Metrics.with_scope}). *)

val tracing : bool Atomic.t
(** Whether tracing is enabled; owned here, flipped by {!Trace}. *)

type t = Inactive | Active of { sink : sink option; path : int array }
(** A captured ambient. [Inactive] (no sink, tracing off) makes
    {!with_job} a direct call — the instrumentation-off fast path. *)

val capture : unit -> t
(** Capture the calling domain's ambient for later {!with_job} calls. *)

val next_plan : unit -> int
(** Ordinal for a plan about to start under the current frame.
    Increments the frame's counter only while tracing (the ordinal is a
    trace coordinate; when tracing is off it is a constant 0). *)

val with_job : t -> plan:int -> job:int -> (unit -> 'a) -> 'a
(** [with_job amb ~plan ~job f] runs [f] with [amb]'s sink installed and
    a fresh frame at path [amb.path @ [plan; job]], restoring the
    domain's previous context afterwards (exception-safe). *)
