(** Wall-clock source for timers, heartbeats and trace timestamps.

    Defaults to a constant [0.] so the library stays zero-dependency and
    trace output is bit-reproducible out of the box; executables that
    want real timestamps install one (e.g.
    [Obs.Clock.set Unix.gettimeofday]). Timestamps are annotations only:
    no deterministic output may depend on them. *)

val set : (unit -> float) -> unit
(** Install a clock. Safe to call from any domain; takes effect for
    subsequent {!now} calls. *)

val now : unit -> float
(** Current time according to the installed clock (seconds). *)
