(** Clock sources for the observability layer.

    {b Wall clock} — timers, heartbeats and trace timestamps. Defaults
    to a constant [0.] so the library stays zero-dependency and trace
    output is bit-reproducible out of the box; executables that want
    real timestamps install one (e.g. [Obs.Clock.set Unix.gettimeofday]).
    Timestamps are annotations only: no deterministic output may depend
    on them.

    {b Monotonic clock} — deadline/timeout arithmetic (worker
    hang-detection, service latency measurement). Defaults to a real
    [CLOCK_MONOTONIC] reading via a C stub, because timeouts must not
    fire (or fail to fire) when NTP steps the wall clock or the host
    suspends. Tests may inject a fake with {!set_monotonic}; restore
    with [set_monotonic Obs.Clock.monotonic_raw]. *)

val set : (unit -> float) -> unit
(** Install a wall clock. Safe to call from any domain; takes effect for
    subsequent {!now} calls. *)

val now : unit -> float
(** Current time according to the installed wall clock (seconds). *)

val set_monotonic : (unit -> float) -> unit
(** Install a monotonic-clock source (tests only, normally). *)

val monotonic : unit -> float
(** Seconds on the installed monotonic clock. Only differences are
    meaningful; the epoch is arbitrary (typically host boot). *)

val monotonic_raw : unit -> float
(** The real [CLOCK_MONOTONIC] reading, bypassing any injected source —
    the default source for {!monotonic}. *)
