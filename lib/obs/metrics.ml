(* Metrics registry: counters, gauges and monotonic timers.

   Counters are the deterministic kind: they count work items
   (snapshots, rounds, RNG splits, jobs), so their totals depend only on
   what was computed, never on scheduling — which is what lets `--jobs 1`
   and `--jobs 4` runs print identical metrics. Writes go to one of 64
   striped atomic cells selected by the writing domain's id, so hot-path
   increments are wait-free and (almost always) uncontended; reads merge
   the stripes. Gauges and timers carry wall-clock content and are
   therefore *not* deterministic; they are kept out of {!snapshot} and
   surfaced separately.

   Attribution: a scope ({!with_scope}) installs a per-scope sink of
   atomic cells in domain-local storage; Exec propagates the sink to
   worker domains (see {!Ambient}), so everything computed under the
   scope — wherever it ran — is charged to it. *)

let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

let stripes = 64

let stripe_mask = stripes - 1

type counter = { name : string; id : int; cells : int Atomic.t array }

type gauge = { g_name : string; g_cell : float Atomic.t }

type timer = { t_name : string; t_cells : int Atomic.t array (* microseconds *) }

(* Registration is rare (module initialisation) and guarded by one
   mutex; the hot path never takes it. *)
let registry_mutex = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let timers_tbl : (string, timer) Hashtbl.t = Hashtbl.create 16

let next_id = ref 0

let registered : counter list ref = ref []

let fresh_cells () = Array.init stripes (fun _ -> Atomic.make 0)

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { name; id = !next_id; cells = fresh_cells () } in
        incr next_id;
        Hashtbl.add counters name c;
        registered := c :: !registered;
        c
  in
  Mutex.unlock registry_mutex;
  c

let gauge name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt gauges_tbl name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_cell = Atomic.make nan } in
        Hashtbl.add gauges_tbl name g;
        g
  in
  Mutex.unlock registry_mutex;
  g

let timer name =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt timers_tbl name with
    | Some t -> t
    | None ->
        let t = { t_name = name; t_cells = fresh_cells () } in
        Hashtbl.add timers_tbl name t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let registry_size () =
  Mutex.lock registry_mutex;
  let n = !next_id in
  Mutex.unlock registry_mutex;
  n

let stripe () = (Domain.self () :> int) land stripe_mask

let add c k =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add c.cells.(stripe ()) k);
    match Ambient.current_sink () with
    | Some sink when c.id < Array.length sink ->
        ignore (Atomic.fetch_and_add sink.(c.id) k)
    | Some _ | None -> ()
  end

let incr c = add c 1

let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let set_gauge g v = if Atomic.get on then Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

let add_elapsed t dt =
  if dt > 0. then
    ignore (Atomic.fetch_and_add t.t_cells.(stripe ()) (int_of_float (dt *. 1e6)))

let time t f =
  if Atomic.get on then begin
    let started = Clock.now () in
    Fun.protect ~finally:(fun () -> add_elapsed t (Clock.now () -. started)) f
  end
  else f ()

let timer_seconds t =
  float_of_int (Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 t.t_cells)
  /. 1e6

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let snapshot () =
  Mutex.lock registry_mutex;
  let cs = !registered in
  Mutex.unlock registry_mutex;
  by_name fst
    (List.filter_map
       (fun c ->
         let v = value c in
         if v = 0 then None else Some (c.name, v))
       cs)

let gauges () =
  Mutex.lock registry_mutex;
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges_tbl [] in
  Mutex.unlock registry_mutex;
  by_name fst
    (List.filter_map
       (fun g ->
         let v = gauge_value g in
         if Float.is_nan v then None else Some (g.g_name, v))
       gs)

let timers () =
  Mutex.lock registry_mutex;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) timers_tbl [] in
  Mutex.unlock registry_mutex;
  by_name fst
    (List.filter_map
       (fun t ->
         let v = timer_seconds t in
         if v = 0. then None else Some (t.t_name, v))
       ts)

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells) !registered;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_cell nan) gauges_tbl;
  Hashtbl.iter (fun _ t -> Array.iter (fun cell -> Atomic.set cell 0) t.t_cells) timers_tbl;
  Mutex.unlock registry_mutex

(* Cross-process merge: interning is cold (one mutex hit per name) and
   [add] handles the enabled gate and scope attribution, so absorbed
   worker deltas behave exactly like local increments. *)
let absorb deltas =
  List.iter (fun (name, v) -> if v <> 0 then add (counter name) v) deltas

let with_scope f =
  if not (Atomic.get on) then (f (), [])
  else begin
    let sink = Array.init (registry_size ()) (fun _ -> Atomic.make 0) in
    let saved = Ambient.current_sink () in
    Ambient.set_sink (Some sink);
    let result =
      Fun.protect ~finally:(fun () -> Ambient.set_sink saved) f
    in
    Mutex.lock registry_mutex;
    let cs = !registered in
    Mutex.unlock registry_mutex;
    let collected =
      List.filter_map
        (fun c ->
          if c.id < Array.length sink then
            let v = Atomic.get sink.(c.id) in
            if v = 0 then None else Some (c.name, v)
          else None)
        cs
    in
    (result, by_name fst collected)
  end
