(** Metrics registry: counters, gauges and monotonic timers, safe under
    {!Exec.pool} worker domains, allocation-free on the hot paths.

    Two kinds of content with different guarantees:

    - {b Counters} count work items — snapshots generated, flooding
      rounds, RNG splits, jobs. Their totals depend only on what was
      computed, so for a deterministic computation they are identical
      for every scheduler and worker count. {!snapshot} (and per-scope
      {!with_scope} collection) exposes only counters.
    - {b Gauges and timers} carry wall-clock content (heartbeats,
      accumulated elapsed time). They are intrinsically nondeterministic
      and are surfaced separately ({!gauges}, {!timers}); deterministic
      output must never include them.

    All instrumentation is gated on a global switch ({!enable}): while
    disabled, every recording operation is a single atomic load and a
    branch. Counter writes are striped over 64 atomic cells selected by
    the writing domain's id (wait-free, no lost updates even when two
    domains collide on a stripe); reads merge the stripes. *)

val enable : unit -> unit
(** Turn recording on. Enable before starting the run to be measured:
    work done while disabled is simply not counted. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and timer, clear every gauge. Call between
    independent measured runs of one process. *)

type counter

val counter : string -> counter
(** Intern a counter by name (same name, same counter). Registration
    takes a mutex — do it once at module initialisation, not per call. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int
(** Merged total. Reading concurrently with writers may miss the very
    latest increments (each stripe is read atomically, the sum is not a
    snapshot); totals read after the work completes are exact. *)

type gauge

val gauge : string -> gauge
(** Intern a gauge by name. A gauge holds one float (last write wins);
    unset gauges read as [nan]. *)

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

type timer

val timer : string -> timer
(** Intern a timer by name. Timers accumulate elapsed seconds measured
    with {!Clock.now} (microsecond resolution internally). *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f], charging its elapsed time to [t] (when
    enabled). Exception-safe. *)

val timer_seconds : timer -> float

val snapshot : unit -> (string * int) list
(** All counters with nonzero totals, sorted by name. Deterministic for
    a deterministic computation, whatever the scheduler. *)

val gauges : unit -> (string * float) list
(** All set gauges, sorted by name. Nondeterministic content. *)

val timers : unit -> (string * float) list
(** All timers with nonzero accumulation, sorted by name (seconds).
    Nondeterministic content. *)

val absorb : (string * int) list -> unit
(** [absorb deltas] adds each named delta to the counter of that name
    (interning it if needed). The merge path for cross-process
    execution: a worker process reports its per-job counter deltas (a
    {!snapshot}-shaped list) and the parent absorbs them, so merged
    totals match a single-process run exactly. Deltas are charged to the
    calling domain's current attribution scope, like any other
    increment. No-op while disabled. *)

val with_scope : (unit -> 'a) -> 'a * (string * int) list
(** [with_scope f] runs [f] with a fresh attribution sink installed on
    the calling domain — inherited by any pool workers [f] fans out to
    (see {!Ambient}) — and returns [f]'s result with the nonzero
    counter deltas recorded under the scope, sorted by name. Returns
    [[]] while disabled. Scopes may nest syntactically but do not
    accumulate outwards: an inner scope temporarily shadows the outer
    one. Counters registered after the scope started are not
    attributed to it. *)
