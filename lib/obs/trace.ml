(* Structured trace emitter: a bounded in-memory ring of events, flushed
   as JSONL.

   Determinism: an event's identity is (path, seq, name, fields) — its
   coordinates in the plan/job tree maintained by Ambient plus a
   per-frame sequence number — all of which depend only on program
   structure. The wall timestamp is an annotation. Flushing sorts by
   (path, seq), so as long as the ring did not overflow, two runs of the
   same seeded computation produce identical JSONL modulo the "wall"
   field, whatever the worker count.

   The ring is guarded by one mutex. Events are deliberately coarse
   (trial boundaries, flooding milestones, cap hits — not per-edge or
   per-step), so the lock is cold; the disabled path is a single atomic
   load in {!enabled}, and call sites guard field-list construction
   behind it. *)

type field = Int of int | Float of float | Str of string

type event = {
  name : string;
  path : int array;
  seq : int;
  wall : float;
  fields : (string * field) list;
}

let default_capacity = 1 lsl 16

let mutex = Mutex.create ()

let ring : event option array ref = ref [||]

let head = ref 0 (* next write position *)

let count = ref 0 (* events currently stored *)

let dropped = ref 0

let enabled () = Atomic.get Ambient.tracing

let clear () =
  Mutex.lock mutex;
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  count := 0;
  dropped := 0;
  Mutex.unlock mutex

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Obs.Trace.enable: capacity must be >= 1";
  Mutex.lock mutex;
  ring := Array.make capacity None;
  head := 0;
  count := 0;
  dropped := 0;
  Mutex.unlock mutex;
  Atomic.set Ambient.tracing true

let disable () = Atomic.set Ambient.tracing false

let emit name fields =
  if enabled () then begin
    let frame = Ambient.frame () in
    let seq = frame.seq in
    frame.seq <- seq + 1;
    let ev = { name; path = frame.path; seq; wall = Clock.now (); fields } in
    Mutex.lock mutex;
    let cap = Array.length !ring in
    if cap > 0 then begin
      if !count = cap then Stdlib.incr dropped else Stdlib.incr count;
      !ring.(!head) <- Some ev;
      head := (!head + 1) mod cap
    end
    else Stdlib.incr dropped;
    Mutex.unlock mutex
  end

(* Push an event that already carries its coordinates (same ring
   discipline as [emit], without assigning a frame/seq). *)
let push ev =
  Mutex.lock mutex;
  let cap = Array.length !ring in
  if cap > 0 then begin
    if !count = cap then Stdlib.incr dropped else Stdlib.incr count;
    !ring.(!head) <- Some ev;
    head := (!head + 1) mod cap
  end
  else Stdlib.incr dropped;
  Mutex.unlock mutex

let absorb ?dropped:(extra = 0) evs =
  if enabled () then begin
    List.iter push evs;
    if extra > 0 then begin
      Mutex.lock mutex;
      dropped := !dropped + extra;
      Mutex.unlock mutex
    end
  end

let dropped_events () =
  Mutex.lock mutex;
  let d = !dropped in
  Mutex.unlock mutex;
  d

let compare_path a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let compare_event a b =
  let c = compare_path a.path b.path in
  if c <> 0 then c else compare a.seq b.seq

let events () =
  Mutex.lock mutex;
  let collected = Array.to_list !ring in
  Mutex.unlock mutex;
  List.sort compare_event (List.filter_map Fun.id collected)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_lit x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let ctx_string path =
  String.concat "." (List.map string_of_int (Array.to_list path))

let event_line buf ev =
  Buffer.add_string buf
    (Printf.sprintf "{\"ev\":\"%s\",\"ctx\":\"%s\",\"seq\":%d,\"wall\":%s" (escape ev.name)
       (ctx_string ev.path) ev.seq (float_lit ev.wall));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":" (escape k));
      Buffer.add_string buf
        (match v with
        | Int i -> string_of_int i
        | Float f -> float_lit f
        | Str s -> Printf.sprintf "\"%s\"" (escape s)))
    ev.fields;
  Buffer.add_string buf "}\n"

let render_jsonl () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  List.iter (event_line buf) evs;
  let d = dropped_events () in
  if d > 0 then
    Buffer.add_string buf
      (Printf.sprintf "{\"ev\":\"trace.dropped\",\"ctx\":\"\",\"seq\":0,\"wall\":0,\"count\":%d}\n" d);
  Buffer.contents buf

let write_jsonl oc = output_string oc (render_jsonl ())
