(** Structured trace emitter: bounded in-memory event ring, flushed as
    JSONL (one JSON object per line).

    Event vocabulary (who emits what) is documented in DESIGN.md §7.
    Every line carries [ev] (event name), [ctx] (dotted plan/job path,
    see {!Ambient}), [seq] (per-frame sequence number), [wall]
    (timestamp from {!Clock}, an annotation only) and the emitter's
    fields.

    Determinism: as long as the ring did not overflow, flushed output is
    identical modulo the [wall] field for every scheduler and worker
    count, because events are sorted by their structural coordinates
    [(ctx, seq)] rather than arrival order. An overflow drops oldest
    events (arrival order, hence scheduler-dependent) and is reported
    both by {!dropped_events} and by a final [trace.dropped] line. *)

type field = Int of int | Float of float | Str of string

type event = {
  name : string;
  path : int array;
  seq : int;
  wall : float;
  fields : (string * field) list;
}

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on with a fresh ring of [capacity] events (default
    65536). Enable before the traced run starts: plan ordinals are only
    assigned while tracing is on, so flipping it mid-computation yields
    unstable coordinates. *)

val disable : unit -> unit
(** Stop recording. The ring keeps its contents for flushing. *)

val enabled : unit -> bool
(** Single atomic load — guard any per-event field construction with
    this at instrumentation sites. *)

val emit : string -> (string * field) list -> unit
(** Record an event at the current frame's coordinates. No-op while
    disabled. *)

val events : unit -> event list
(** Recorded events sorted by [(ctx, seq)]. *)

val absorb : ?dropped:int -> event list -> unit
(** [absorb ~dropped evs] appends already-coordinatised events to the
    ring — the merge path for cross-process execution, where a worker
    process ships the events of one job (with their structural [path] /
    [seq] coordinates assigned worker-side) back to the parent. Because
    flushing sorts by [(ctx, seq)], a merged flush is identical to a
    single-process flush modulo [wall]. [dropped] (default 0) adds the
    worker ring's own overflow count to {!dropped_events}. No-op while
    disabled. *)

val render_jsonl : unit -> string
(** The sorted events as JSONL, plus a trailing [trace.dropped] line
    when the ring overflowed. *)

val write_jsonl : out_channel -> unit

val dropped_events : unit -> int

val clear : unit -> unit
(** Empty the ring (keeps the enabled state and capacity). *)
