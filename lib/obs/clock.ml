(* The one wall-clock source of the observability layer. The library
   itself takes no clock dependency: the default source returns 0., so
   timestamps are inert (and trace output is bit-reproducible) until an
   executable installs a real clock. *)

let source : (unit -> float) Atomic.t = Atomic.make (fun () -> 0.)

let set f = Atomic.set source f

let now () = (Atomic.get source) ()
