(* The clock sources of the observability layer.

   Wall clock: the library itself takes no clock dependency — the
   default source returns 0., so timestamps are inert (and trace output
   is bit-reproducible) until an executable installs a real clock.

   Monotonic clock: deadline and timeout arithmetic must not move when
   NTP steps the wall clock or the host suspends/resumes, so it gets a
   separate source backed by CLOCK_MONOTONIC via a tiny C stub. Tests
   inject a fake with [set_monotonic] and restore [monotonic_raw]. *)

let source : (unit -> float) Atomic.t = Atomic.make (fun () -> 0.)

let set f = Atomic.set source f

let now () = (Atomic.get source) ()

external monotonic_raw : unit -> float = "dyngraph_clock_monotonic"

let monotonic_source : (unit -> float) Atomic.t = Atomic.make monotonic_raw

let set_monotonic f = Atomic.set monotonic_source f

let monotonic () = (Atomic.get monotonic_source) ()
