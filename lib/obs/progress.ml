(* Optional progress reporting for long sweeps, ticked by the
   execution engine as root-plan jobs complete. The default renderer
   writes a throttled single line to stderr (never stdout), so enabling
   progress cannot perturb byte-identical result output. A custom
   renderer can be installed to reroute updates — fleet workers forward
   them as framed pipe messages, the serve daemon as per-request JSON
   frames. Throttled to at most ~10 updates a second. *)

type update = {
  label : string;
  completed : int;
  total : int;
  final : bool;
  sub : (string * int * int) option;
}

type renderer = update -> unit

let mutex = Mutex.create ()

let active = Atomic.make false

let current_label = ref "jobs"

let total = ref 0

let completed = ref 0

(* Finer-grained progress inside the job currently being worked on —
   e.g. a fleet shard forwarding its own trial ticks. *)
let current_sub : (string * int * int) option ref = ref None

let last_printed = ref neg_infinity

let min_interval = 0.1

let custom_renderer : renderer option ref = ref None

let set_renderer r =
  Mutex.lock mutex;
  custom_renderer := r;
  Mutex.unlock mutex

let enabled () = Atomic.get active

let enable ?(label = "jobs") () =
  Mutex.lock mutex;
  current_label := label;
  total := 0;
  completed := 0;
  current_sub := None;
  last_printed := neg_infinity;
  Mutex.unlock mutex;
  Atomic.set active true

let disable () = Atomic.set active false

let default_render u =
  let subtxt =
    match u.sub with
    | Some (l, c, t) -> Printf.sprintf " [%s %d/%d]" l c t
    | None -> ""
  in
  Printf.eprintf "\r%s: %d/%d jobs%s%s%!" u.label u.completed u.total subtxt
    (if u.final then "\n" else "")

(* Callers hold [mutex]. *)
let render final =
  let u =
    {
      label = !current_label;
      completed = !completed;
      total = !total;
      final;
      sub = !current_sub;
    }
  in
  match !custom_renderer with Some r -> r u | None -> default_render u

(* Callers hold [mutex]. Final updates always render; intermediate ones
   are throttled on the wall clock. *)
let render_throttled final =
  if final then render true
  else begin
    let now = Clock.now () in
    if now -. !last_printed >= min_interval then begin
      last_printed := now;
      render false
    end
  end

let begin_plan ~jobs =
  if enabled () then begin
    Mutex.lock mutex;
    total := jobs;
    completed := 0;
    current_sub := None;
    last_printed := neg_infinity;
    Mutex.unlock mutex
  end

let tick () =
  if enabled () then begin
    Mutex.lock mutex;
    incr completed;
    (* The job whose sub-progress we were showing just finished. *)
    current_sub := None;
    render_throttled false;
    Mutex.unlock mutex
  end

let sub ~label ~completed:c ~total:t =
  if enabled () then begin
    Mutex.lock mutex;
    current_sub := Some (label, c, t);
    render_throttled false;
    Mutex.unlock mutex
  end

let end_plan () =
  if enabled () then begin
    Mutex.lock mutex;
    current_sub := None;
    if !total > 0 then render_throttled true;
    Mutex.unlock mutex
  end
