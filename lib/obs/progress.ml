(* Optional stderr progress line for long sweeps, ticked by the
   execution engine as root-plan jobs complete. Writes only to stderr
   (never stdout), so enabling it cannot perturb byte-identical result
   output. Throttled to at most ~10 lines a second. *)

let mutex = Mutex.create ()

let active = Atomic.make false

let current_label = ref "jobs"

let total = ref 0

let completed = ref 0

let last_printed = ref neg_infinity

let min_interval = 0.1

let enabled () = Atomic.get active

let enable ?(label = "jobs") () =
  Mutex.lock mutex;
  current_label := label;
  total := 0;
  completed := 0;
  last_printed := neg_infinity;
  Mutex.unlock mutex;
  Atomic.set active true

let disable () = Atomic.set active false

let print_line final =
  Printf.eprintf "\r%s: %d/%d jobs%s%!" !current_label !completed !total
    (if final then "\n" else "")

let begin_plan ~jobs =
  if enabled () then begin
    Mutex.lock mutex;
    total := jobs;
    completed := 0;
    last_printed := neg_infinity;
    Mutex.unlock mutex
  end

let tick () =
  if enabled () then begin
    Mutex.lock mutex;
    incr completed;
    let now = Clock.now () in
    if now -. !last_printed >= min_interval then begin
      last_printed := now;
      print_line false
    end;
    Mutex.unlock mutex
  end

let end_plan () =
  if enabled () then begin
    Mutex.lock mutex;
    if !total > 0 then print_line true;
    Mutex.unlock mutex
  end
