/* Monotonic clock for deadline arithmetic. CLOCK_MONOTONIC is immune
   to NTP steps and wall-clock adjustments, which is exactly what
   timeout math needs; see Obs.Clock.monotonic. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value dyngraph_clock_monotonic(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
