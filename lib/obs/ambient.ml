(* Domain-local execution context shared by Metrics (attribution sinks)
   and Trace (deterministic event coordinates), and propagated across
   Exec pool workers by the execution engine.

   The trace-determinism scheme: every Exec plan executed while tracing
   is on receives an ordinal from its enclosing frame (deterministic,
   because the code that *starts* plans runs sequentially within one
   frame), and every job of that plan runs under a child frame whose
   path extends the parent's with [ordinal; job index]. Events carry
   (path, per-frame sequence number), which depends only on the program
   structure — never on which worker domain ran the job or in what
   order — so a flushed trace sorted by (path, seq) is identical for
   every scheduler. *)

type sink = int Atomic.t array
(* Per-scope counter cells, indexed by counter id (see Metrics). Shared
   by every domain working under the scope, hence atomic. *)

type frame = {
  path : int array;        (* alternating plan ordinal / job index *)
  mutable next_plan : int; (* ordinals handed to plans started under this frame *)
  mutable seq : int;       (* trace events emitted under this frame *)
}

let root_frame () = { path = [||]; next_plan = 0; seq = 0 }

let frame_key = Domain.DLS.new_key root_frame

let sink_key : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Owned here (not in Trace) so that [capture] needs no dependency on
   the trace module; Trace flips it on enable/disable. *)
let tracing = Atomic.make false

let frame () = Domain.DLS.get frame_key

let current_sink () = Domain.DLS.get sink_key

let set_sink s = Domain.DLS.set sink_key s

type t = Inactive | Active of { sink : sink option; path : int array }

let capture () =
  match (current_sink (), Atomic.get tracing) with
  | None, false -> Inactive
  | sink, _ -> Active { sink; path = (frame ()).path }

let next_plan () =
  if Atomic.get tracing then begin
    let f = frame () in
    let ord = f.next_plan in
    f.next_plan <- ord + 1;
    ord
  end
  else 0

let with_job amb ~plan ~job f =
  match amb with
  | Inactive -> f ()
  | Active { sink; path } ->
      let saved_frame = Domain.DLS.get frame_key in
      let saved_sink = Domain.DLS.get sink_key in
      let child_path = Array.append path [| plan; job |] in
      Domain.DLS.set frame_key { path = child_path; next_plan = 0; seq = 0 };
      Domain.DLS.set sink_key sink;
      Fun.protect
        ~finally:(fun () ->
          Domain.DLS.set frame_key saved_frame;
          Domain.DLS.set sink_key saved_sink)
        f
