type init = Stationary | Point of int

let stationary_sampler family =
  (* Path h carries ℓ(h) - 1 states. *)
  lazy
    (Prng.Discrete.of_weights
       (Array.init (Family.n_paths family) (fun h ->
            float_of_int (Family.length family h - 1))))

let make_observable ?(init = Stationary) ?(hold = 0.) ~n ~family () =
  if not (hold >= 0. && hold < 1.) then invalid_arg "Rp_model: hold outside [0, 1)";
  let n_points = Graph.Static.n (Family.graph family) in
  let path = Array.make n 0 in
  let pos = Array.make n 1 in
  let rng = ref (Prng.Rng.of_seed 0) in
  let sampler = stationary_sampler family in
  let reset r =
    rng := r;
    for i = 0 to n - 1 do
      match init with
      | Point p ->
          path.(i) <- Family.sample_path_from family !rng p;
          pos.(i) <- 1
      | Stationary ->
          let h = Prng.Discrete.draw (Lazy.force sampler) !rng in
          path.(i) <- h;
          pos.(i) <- 1 + Prng.Rng.int !rng (Family.length family h - 1)
    done
  in
  let step () =
    for i = 0 to n - 1 do
      if hold = 0. || not (Prng.Rng.bernoulli !rng hold) then
        if pos.(i) < Family.length family path.(i) - 1 then pos.(i) <- pos.(i) + 1
        else begin
          let endpoint = Family.point_at family path.(i) pos.(i) in
          path.(i) <- Family.sample_path_from family !rng endpoint;
          pos.(i) <- 1
        end
    done
  in
  let current_point i = Family.point_at family path.(i) pos.(i) in
  (* Co-located nodes form a clique. Nodes are bucketed by point with a
     counting sort into scratch arrays reused across snapshots — points
     ascending, nodes ascending within a point, the order the old
     per-call list buckets emitted. *)
  let bucket_start = Array.make (n_points + 1) 0 in
  let bucket_cursor = Array.make n_points 0 in
  let members = Array.make n 0 in
  let emit_edges f =
    Array.fill bucket_cursor 0 n_points 0;
    for i = 0 to n - 1 do
      let p = current_point i in
      bucket_cursor.(p) <- bucket_cursor.(p) + 1
    done;
    bucket_start.(0) <- 0;
    for p = 0 to n_points - 1 do
      bucket_start.(p + 1) <- bucket_start.(p) + bucket_cursor.(p);
      bucket_cursor.(p) <- bucket_start.(p)
    done;
    for i = 0 to n - 1 do
      let p = current_point i in
      members.(bucket_cursor.(p)) <- i;
      bucket_cursor.(p) <- bucket_cursor.(p) + 1
    done;
    for p = 0 to n_points - 1 do
      for a = bucket_start.(p) to bucket_start.(p + 1) - 1 do
        for b = a + 1 to bucket_start.(p + 1) - 1 do
          f members.(a) members.(b)
        done
      done
    done
  in
  let iter_edges f = emit_edges f in
  let fill_edges buf = emit_edges (fun u v -> Graph.Edge_buffer.push buf u v) in
  let dyn = Core.Dynamic.make ~fill_edges ~n ~reset ~step ~iter_edges () in
  (dyn, fun () -> Array.init n current_point)

let make ?init ?hold ~n ~family () = fst (make_observable ?init ?hold ~n ~family ())

let random_walk ?init ?(hold = 0.5) ~n g =
  make ?init ~hold ~n ~family:(Family.edges_family g) ()
