type init = Stationary | All_in of int | Uniform_states

let connection_table chain connect =
  let s = Markov.Chain.n_states chain in
  let table = Array.make (s * s) false in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      let c = connect x y in
      if c <> connect y x then invalid_arg "Node_meg.make: connection map is not symmetric";
      table.((x * s) + y) <- c
    done
  done;
  table

let make_observable ?(init = Stationary) ~n ~chain ~connect () =
  let s = Markov.Chain.n_states chain in
  let table = connection_table chain connect in
  let states = Array.make n 0 in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler = lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain)) in
  (* Delta support: a step only moves edges incident to nodes whose
     chain state actually changed, so the step records which nodes
     moved (plus a full copy of the pre-step states) and the delta hook
     reconstructs the edge changes by comparing connection-table rows.
     Cost is n_changed * n lookups; when that exceeds a small multiple
     of the full-rebuild cost the hook declines and lets the consumer
     re-enumerate. *)
  let old_states = Array.make n 0 in
  let changed = Array.make n 0 in
  let n_changed = ref 0 in
  let is_changed = Bytes.make n '\000' in
  let deltas_valid = ref false in
  (* Edge-count estimate from the connection map's density — a sizing
     hint and decline budget, nothing correctness-bearing. *)
  let m_est =
    let on = ref 0 in
    Array.iter (fun c -> if c then incr on) table;
    let frac = float_of_int !on /. float_of_int (s * s) in
    int_of_float (ceil (frac *. float_of_int (Graph.Pairs.total n)))
  in
  let delta_budget = 2 * (n + m_est) in
  let reset r =
    rng := r;
    deltas_valid := false;
    match init with
    | All_in x ->
        if x < 0 || x >= s then invalid_arg "Node_meg.make: initial state out of range";
        Array.fill states 0 n x
    | Uniform_states ->
        for i = 0 to n - 1 do
          states.(i) <- Prng.Rng.int !rng s
        done
    | Stationary ->
        let sampler = Lazy.force stationary_sampler in
        for i = 0 to n - 1 do
          states.(i) <- Prng.Discrete.draw sampler !rng
        done
  in
  let step () =
    Array.blit states 0 old_states 0 n;
    Bytes.fill is_changed 0 n '\000';
    n_changed := 0;
    for i = 0 to n - 1 do
      let s' = Markov.Chain.step chain !rng states.(i) in
      if s' <> states.(i) then begin
        states.(i) <- s';
        changed.(!n_changed) <- i;
        incr n_changed;
        Bytes.unsafe_set is_changed i '\001'
      end
    done;
    deltas_valid := true
  in
  let deltas ~birth ~death =
    !deltas_valid
    && !n_changed * n <= delta_budget
    && begin
         for k = 0 to !n_changed - 1 do
           let i = changed.(k) in
           let old_row = old_states.(i) * s and new_row = states.(i) * s in
           for j = 0 to n - 1 do
             (* Pairs of two changed nodes are handled once, by the
                larger endpoint (whose scan sees the smaller one). *)
             if j <> i && not (Bytes.unsafe_get is_changed j = '\001' && j > i) then begin
               let was = table.(old_row + old_states.(j)) in
               let now = table.(new_row + states.(j)) in
               if was <> now then
                 if now then birth (min i j) (max i j) else death (min i j) (max i j)
             end
           done
         done;
         true
       end
  in
  (* Bucket nodes by state with a counting sort into reused scratch
     arrays, then emit cross products for connected state pairs (and
     within-bucket pairs for self-connected states). Buckets are in
     ascending state order and ascending node order within a bucket —
     the same emission order the old per-call list buckets produced,
     now without any per-snapshot allocation. *)
  let bucket_start = Array.make (s + 1) 0 in
  let bucket_cursor = Array.make s 0 in
  let members = Array.make n 0 in
  let emit_edges f =
    Array.fill bucket_cursor 0 s 0;
    for i = 0 to n - 1 do
      bucket_cursor.(states.(i)) <- bucket_cursor.(states.(i)) + 1
    done;
    bucket_start.(0) <- 0;
    for x = 0 to s - 1 do
      bucket_start.(x + 1) <- bucket_start.(x) + bucket_cursor.(x);
      bucket_cursor.(x) <- bucket_start.(x)
    done;
    for i = 0 to n - 1 do
      members.(bucket_cursor.(states.(i))) <- i;
      bucket_cursor.(states.(i)) <- bucket_cursor.(states.(i)) + 1
    done;
    for x = 0 to s - 1 do
      let lo_x = bucket_start.(x) and hi_x = bucket_start.(x + 1) in
      if hi_x > lo_x then begin
        if table.((x * s) + x) then
          for a = lo_x to hi_x - 1 do
            for b = a + 1 to hi_x - 1 do
              f members.(a) members.(b)
            done
          done;
        for y = x + 1 to s - 1 do
          if table.((x * s) + y) then
            for a = lo_x to hi_x - 1 do
              for b = bucket_start.(y) to bucket_start.(y + 1) - 1 do
                f members.(a) members.(b)
              done
            done
        done
      end
    done
  in
  let iter_edges f = emit_edges f in
  let fill_edges buf = emit_edges (fun u v -> Graph.Edge_buffer.push buf u v) in
  let dyn = Core.Dynamic.make ~fill_edges ~deltas ~expected_edges:m_est ~n ~reset ~step ~iter_edges () in
  (dyn, fun () -> Array.copy states)

let make ?init ~n ~chain ~connect () = fst (make_observable ?init ~n ~chain ~connect ())

let q_of_state ~chain ~connect =
  let s = Markov.Chain.n_states chain in
  let pi = Markov.Chain.stationary chain in
  Array.init s (fun x ->
      let acc = ref 0. in
      for y = 0 to s - 1 do
        if connect x y then acc := !acc +. pi.(y)
      done;
      !acc)

let p_nm ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x))) pi;
  !acc

let p_nm2 ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x) *. q.(x))) pi;
  !acc

let eta ~chain ~connect =
  let p = p_nm ~chain ~connect in
  if p <= 0. then invalid_arg "Node_meg.eta: P_NM is zero";
  p_nm2 ~chain ~connect /. (p *. p)

let theorem3_bound ~chain ~connect ~n ?t_mix () =
  let t_mix =
    match t_mix with
    | Some t -> t
    | None -> (
        match Markov.Chain.mixing_time chain with
        | Some 0 | None -> 1.
        | Some t -> float_of_int t)
  in
  Theory.Bounds.theorem3 ~t_mix ~p_nm:(p_nm ~chain ~connect) ~eta:(eta ~chain ~connect) ~n
