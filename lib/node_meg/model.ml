type init = Stationary | All_in of int | Uniform_states

let connection_table chain connect =
  let s = Markov.Chain.n_states chain in
  let table = Array.make (s * s) false in
  for x = 0 to s - 1 do
    for y = 0 to s - 1 do
      let c = connect x y in
      if c <> connect y x then invalid_arg "Node_meg.make: connection map is not symmetric";
      table.((x * s) + y) <- c
    done
  done;
  table

let make_observable ?(init = Stationary) ~n ~chain ~connect () =
  let s = Markov.Chain.n_states chain in
  let table = connection_table chain connect in
  let states = Array.make n 0 in
  let rng = ref (Prng.Rng.of_seed 0) in
  let stationary_sampler = lazy (Prng.Discrete.of_weights (Markov.Chain.stationary chain)) in
  let reset r =
    rng := r;
    match init with
    | All_in x ->
        if x < 0 || x >= s then invalid_arg "Node_meg.make: initial state out of range";
        Array.fill states 0 n x
    | Uniform_states ->
        for i = 0 to n - 1 do
          states.(i) <- Prng.Rng.int !rng s
        done
    | Stationary ->
        let sampler = Lazy.force stationary_sampler in
        for i = 0 to n - 1 do
          states.(i) <- Prng.Discrete.draw sampler !rng
        done
  in
  let step () =
    for i = 0 to n - 1 do
      states.(i) <- Markov.Chain.step chain !rng states.(i)
    done
  in
  (* Bucket nodes by state with a counting sort into reused scratch
     arrays, then emit cross products for connected state pairs (and
     within-bucket pairs for self-connected states). Buckets are in
     ascending state order and ascending node order within a bucket —
     the same emission order the old per-call list buckets produced,
     now without any per-snapshot allocation. *)
  let bucket_start = Array.make (s + 1) 0 in
  let bucket_cursor = Array.make s 0 in
  let members = Array.make n 0 in
  let emit_edges f =
    Array.fill bucket_cursor 0 s 0;
    for i = 0 to n - 1 do
      bucket_cursor.(states.(i)) <- bucket_cursor.(states.(i)) + 1
    done;
    bucket_start.(0) <- 0;
    for x = 0 to s - 1 do
      bucket_start.(x + 1) <- bucket_start.(x) + bucket_cursor.(x);
      bucket_cursor.(x) <- bucket_start.(x)
    done;
    for i = 0 to n - 1 do
      members.(bucket_cursor.(states.(i))) <- i;
      bucket_cursor.(states.(i)) <- bucket_cursor.(states.(i)) + 1
    done;
    for x = 0 to s - 1 do
      let lo_x = bucket_start.(x) and hi_x = bucket_start.(x + 1) in
      if hi_x > lo_x then begin
        if table.((x * s) + x) then
          for a = lo_x to hi_x - 1 do
            for b = a + 1 to hi_x - 1 do
              f members.(a) members.(b)
            done
          done;
        for y = x + 1 to s - 1 do
          if table.((x * s) + y) then
            for a = lo_x to hi_x - 1 do
              for b = bucket_start.(y) to bucket_start.(y + 1) - 1 do
                f members.(a) members.(b)
              done
            done
        done
      end
    done
  in
  let iter_edges f = emit_edges f in
  let fill_edges buf = emit_edges (fun u v -> Graph.Edge_buffer.push buf u v) in
  let dyn = Core.Dynamic.make ~fill_edges ~n ~reset ~step ~iter_edges () in
  (dyn, fun () -> Array.copy states)

let make ?init ~n ~chain ~connect () = fst (make_observable ?init ~n ~chain ~connect ())

let q_of_state ~chain ~connect =
  let s = Markov.Chain.n_states chain in
  let pi = Markov.Chain.stationary chain in
  Array.init s (fun x ->
      let acc = ref 0. in
      for y = 0 to s - 1 do
        if connect x y then acc := !acc +. pi.(y)
      done;
      !acc)

let p_nm ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x))) pi;
  !acc

let p_nm2 ~chain ~connect =
  let pi = Markov.Chain.stationary chain in
  let q = q_of_state ~chain ~connect in
  let acc = ref 0. in
  Array.iteri (fun x px -> acc := !acc +. (px *. q.(x) *. q.(x))) pi;
  !acc

let eta ~chain ~connect =
  let p = p_nm ~chain ~connect in
  if p <= 0. then invalid_arg "Node_meg.eta: P_NM is zero";
  p_nm2 ~chain ~connect /. (p *. p)

let theorem3_bound ~chain ~connect ~n ?t_mix () =
  let t_mix =
    match t_mix with
    | Some t -> t
    | None -> (
        match Markov.Chain.mixing_time chain with
        | Some 0 | None -> 1.
        | Some t -> float_of_int t)
  in
  Theory.Bounds.theorem3 ~t_mix ~p_nm:(p_nm ~chain ~connect) ~eta:(eta ~chain ~connect) ~n
