type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Stafford's Mix13 finaliser: avalanches all 64 bits of [z]. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Mix used to derive a new gamma when splitting; must yield an odd value. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  (* Reject gammas too close to a sparse bit pattern, as in the SplitMix paper. *)
  let bit_diff = Int64.logxor z (Int64.shift_right_logical z 1) in
  let popcount v =
    let rec go v acc = if Int64.equal v 0L then acc else go (Int64.logand v (Int64.sub v 1L)) (acc + 1) in
    go v 0
  in
  if popcount bit_diff < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = seed; gamma = golden_gamma }

let of_seed s = { state = mix64 (Int64.of_int s); gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

let next_raw t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let int64 t = mix64 (next_raw t)

(* Stream derivations are the natural unit of "how much independent
   randomness did this run consume" — one per trial, model reset, or
   sweep cell — so they are the one thing the PRNG meters. *)
let c_splits = Obs.Metrics.counter "rng.splits"

let split t =
  Obs.Metrics.incr c_splits;
  let s = next_raw t in
  let s' = next_raw t in
  { state = mix64 s; gamma = mix_gamma s' }

let substream t i =
  Obs.Metrics.incr c_splits;
  let s = mix64 (Int64.logxor t.state (mix64 (Int64.of_int i))) in
  { state = s; gamma = mix_gamma (Int64.add s golden_gamma) }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits to avoid modulo bias. *)
    let mask_bits = 1 lsl 30 in
    let limit = mask_bits - (mask_bits mod bound) in
    let rec draw () =
      let v = bits30 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end else begin
    let bits62 () = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let range = 1 lsl 62 in
    let limit = range - (range mod bound) in
    let rec draw () =
      let v = bits62 () in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_incl t lo hi =
  if lo > hi then invalid_arg "Rng.int_incl: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let float t b = unit_float t *. b

let float_range t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of (0, 1]";
  if p >= 1. then 0
  else
    let u = 1. -. unit_float t in
    (* u is uniform in (0, 1]; inversion of the geometric CDF. *)
    int_of_float (floor (log u /. log (1. -. p)))

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. unit_float t) /. rate

let gaussian t =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let perm t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then begin
    let a = perm t n in
    Array.sub a 0 k
  end else begin
    (* Rejection with a hash set: fast when k << n. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
