type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Stafford's Mix13 finaliser: avalanches all 64 bits of [z]. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Mix used to derive a new gamma when splitting; must yield an odd value. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  (* Reject gammas too close to a sparse bit pattern, as in the SplitMix paper. *)
  let bit_diff = Int64.logxor z (Int64.shift_right_logical z 1) in
  let popcount v =
    let rec go v acc = if Int64.equal v 0L then acc else go (Int64.logand v (Int64.sub v 1L)) (acc + 1) in
    go v 0
  in
  if popcount bit_diff < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = seed; gamma = golden_gamma }

let of_seed s = { state = mix64 (Int64.of_int s); gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

(* The whole generator is two words, which is what makes trial plans
   serialisable: a worker process rebuilds an experiment's generator
   from these bits and derives the exact same substreams. Not a draw
   and not a stream derivation, so neither function meters anything. *)
let state_bits t = (t.state, t.gamma)

let of_state_bits (state, gamma) = { state; gamma = Int64.logor gamma 1L }

let next_raw t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let int64 t = mix64 (next_raw t)

(* The scalar draws below hand-inline [mix64 (next_raw t)] instead of
   calling it. Without flambda, an [int64]-returning call boxes its
   result on every draw; fusing the pipeline into each function body
   keeps the whole mix in registers and only materialises the final
   [int]/[float]. The expressions are identical to [int64]'s, so every
   derived stream is bit-for-bit unchanged. *)

let[@inline] mixed_bits t =
  let s = Int64.add t.state t.gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Stream derivations are the natural unit of "how much independent
   randomness did this run consume" — one per trial, model reset, or
   sweep cell — so they are the one thing the PRNG meters. *)
let c_splits = Obs.Metrics.counter "rng.splits"

let split t =
  Obs.Metrics.incr c_splits;
  let s = next_raw t in
  let s' = next_raw t in
  { state = mix64 s; gamma = mix_gamma s' }

let substream t i =
  Obs.Metrics.incr c_splits;
  let s = mix64 (Int64.logxor t.state (mix64 (Int64.of_int i))) in
  { state = s; gamma = mix_gamma (Int64.add s golden_gamma) }

let bits30 t =
  let s = Int64.add t.state t.gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits to avoid modulo bias. *)
    let mask_bits = 1 lsl 30 in
    let limit = mask_bits - (mask_bits mod bound) in
    let rec draw () =
      let v = bits30 t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end else begin
    let bits62 () = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    let range = 1 lsl 62 in
    let limit = range - (range mod bound) in
    let rec draw () =
      let v = bits62 () in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_incl t lo hi =
  if lo > hi then invalid_arg "Rng.int_incl: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled into [0, 1). *)
  let s = Int64.add t.state t.gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let v = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int v *. 0x1.0p-53

let float t b = unit_float t *. b

let float_range t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (mixed_bits t) 1L = 1L

(* [unit53 t] is [unit_float t] fused for local use: annotated for
   inlining so [bernoulli] and the geometric samplers see the float in
   a register instead of a fresh box per draw. *)
let[@inline always] unit53 t =
  let s = Int64.add t.state t.gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  float_of_int (Int64.to_int (Int64.shift_right_logical z 11)) *. 0x1.0p-53

let bernoulli t p = unit53 t < p

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of (0, 1]";
  if p >= 1. then 0
  else
    let u = 1. -. unit53 t in
    (* u is uniform in (0, 1]; inversion of the geometric CDF. The
       ratio is non-negative (both logs are <= 0), where truncation
       equals floor, so [int_of_float] alone rounds identically to the
       historical [floor]-then-truncate. *)
    int_of_float (log u /. log (1. -. p))

let geometric_log1mp t ~log1mp =
  if not (log1mp < 0.) then invalid_arg "Rng.geometric_log1mp: log1mp must be negative";
  let u = 1. -. unit53 t in
  (* Same inversion as [geometric], with log (1 - p) hoisted out by the
     caller. The division is the identical float expression, so for
     log1mp = log (1. -. p) the two samplers are bit-for-bit equal
     (non-negative ratio: truncation = floor, as in [geometric]). *)
  int_of_float (log u /. log1mp)

(* Tabulated geometric sampling for scan loops that draw millions of
   skips from one fixed success probability. Inversion pays a [log]
   per draw (~10ns, the dominant term); Vose's alias method replaces
   it with two table reads off a single mixed word. The support is
   truncated at the first power of two K with (1-p)^K <= 2^-60 — the
   last bucket absorbs the tail, a perturbation below the resolution
   of a 53-bit uniform draw — and probabilities too small to tabulate
   within [max_table] buckets fall back to inversion, so [draw] is
   total on (0, 1). The stream differs from [geometric]'s (one word
   per draw instead of one 53-bit uniform), which is why switching a
   model to [Geo] is a golden-regenerating change. *)
module Geo = struct
  type sampler =
    | Alias of { mask : int; prob : float array; alias : int array }
    | Inversion of float  (* log (1 - p): p too small for a table *)

  let max_table = 8192

  let make ~p =
    if not (p > 0. && p < 1.) then invalid_arg "Rng.Geo.make: p outside (0, 1)";
    let l = log (1. -. p) in
    let needed = int_of_float (ceil (60. *. log 2. /. -.l)) in
    if needed > max_table then Inversion l
    else begin
      let k = ref 2 in
      while !k < needed do
        k := !k * 2
      done;
      let k = !k in
      (* w.(i) = P(X = i) = p (1-p)^i, except the last bucket holds the
         whole tail P(X >= k-1) = (1-p)^(k-1). *)
      let w =
        Array.init k (fun i ->
            let s = (1. -. p) ** float_of_int i in
            if i = k - 1 then s else p *. s)
      in
      (* Vose's construction: pair each under-full bucket with an
         over-full donor. Leftover buckets keep probability 1 (their
         scaled weight is 1 up to rounding), which absorbs the float
         error harmlessly. *)
      let prob = Array.make k 1. in
      let alias = Array.init k (fun i -> i) in
      let scaled = Array.map (fun x -> x *. float_of_int k) w in
      let small = Array.make k 0 and large = Array.make k 0 in
      let ns = ref 0 and nl = ref 0 in
      Array.iteri
        (fun i s ->
          if s < 1. then begin
            small.(!ns) <- i;
            incr ns
          end
          else begin
            large.(!nl) <- i;
            incr nl
          end)
        scaled;
      while !ns > 0 && !nl > 0 do
        decr ns;
        let s = small.(!ns) in
        let g = large.(!nl - 1) in
        prob.(s) <- scaled.(s);
        alias.(s) <- g;
        scaled.(g) <- scaled.(g) -. (1. -. scaled.(s));
        if scaled.(g) < 1. then begin
          decr nl;
          small.(!ns) <- g;
          incr ns
        end
      done;
      Alias { mask = k - 1; prob; alias }
    end

  let draw s t =
    match s with
    | Inversion l -> geometric_log1mp t ~log1mp:l
    | Alias { mask; prob; alias } ->
        (* One fused word per draw: low bits pick the bucket, the top
           41 bits form the bucket-local uniform. *)
        let s64 = Int64.add t.state t.gamma in
        t.state <- s64;
        let z =
          Int64.mul (Int64.logxor s64 (Int64.shift_right_logical s64 30)) 0xBF58476D1CE4E5B9L
        in
        let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
        let z = Int64.logxor z (Int64.shift_right_logical z 31) in
        let i = Int64.to_int z land mask in
        let frac = float_of_int (Int64.to_int (Int64.shift_right_logical z 23)) *. 0x1.0p-41 in
        if frac < Array.unsafe_get prob i then i else Array.unsafe_get alias i
end

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1. -. unit_float t) /. rate

let gaussian t =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let perm t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then begin
    let a = perm t n in
    Array.sub a 0 k
  end else begin
    (* Rejection with a hash set: fast when k << n. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
