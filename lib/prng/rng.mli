(** Deterministic, splittable pseudo-random number generator.

    The generator is a SplitMix64 stream: a 64-bit counter advanced by a
    fixed odd constant, whose output is finalised by an avalanche function.
    Splitting derives statistically independent substreams, which gives
    every node / edge / trial of a simulation its own reproducible source
    of randomness, independent of scheduling order. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val of_seed : int -> t
(** [of_seed s] is [create] applied to a mixed version of [s]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state_bits : t -> int64 * int64
(** [state_bits t] is the generator's complete state (counter, gamma) —
    two words, suitable for a serialisable job spec. Pure observation:
    nothing advances and nothing is metered. *)

val of_state_bits : int64 * int64 -> t
(** Rebuild a generator from {!state_bits}. The round trip is exact, so
    a process that receives the bits derives the same substreams as the
    sender. The gamma word is forced odd (the SplitMix invariant), which
    is the identity on any genuine [state_bits] output. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val substream : t -> int -> t
(** [substream t i] is the [i]-th derived stream of [t]'s current state.
    Unlike {!split} it does not advance [t]: calling it twice with the
    same [i] yields identical streams. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val float : t -> float -> float
(** [float t b] is uniform in [\[0, b)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success in
    Bernoulli([p]) trials, i.e. supported on [0, 1, 2, ...]. Requires
    [0 < p <= 1]. Sampled by inversion, O(1). *)

val geometric_log1mp : t -> log1mp:float -> int
(** [geometric_log1mp t ~log1mp] is {!geometric} with the success
    probability supplied as a precomputed [log (1. -. p)] (must be
    negative; [neg_infinity], i.e. p = 1, yields 0). Hoisting the
    logarithm out of a scan halves the float work per draw; the stream
    is bit-for-bit identical to [geometric t p]. *)

(** Tabulated geometric sampling for hot scan loops with a fixed
    success probability. {!Geo.draw} replaces inversion's per-draw
    logarithm with two table reads (Vose's alias method) off one mixed
    word — roughly half the cost at scan rates — at the price of a
    different (still deterministic) stream: one raw word per draw
    instead of one 53-bit uniform, and a support truncated where the
    tail mass drops below 2^-60. Probabilities too small to tabulate
    fall back to inversion internally. *)
module Geo : sig
  type sampler
  (** Immutable sampling tables for one success probability. Safe to
      share across generators and domains. *)

  val make : p:float -> sampler
  (** [make ~p] tabulates Geometric([p]) (failures before the first
      success). Requires [0 < p < 1] — callers handle the degenerate
      endpoints, as they already must for scan setup. *)

  val draw : sampler -> t -> int
end

val exponential : t -> float -> float
(** [exponential t rate] samples Exp([rate]). *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val perm : t -> int -> int array
(** [perm t n] is a uniform permutation of [0 .. n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)], in uniform random order. Requires [0 <= k <= n]. *)
