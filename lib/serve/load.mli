(** Synthetic many-client load generator for the serve daemon — the
    measurement half of the service story ([dyngraph load] and the
    bench service tier).

    [clients] threads each open one connection via [connect] and issue
    [per_client] run requests back-to-back, walking the [ids] list from
    offset = client index (so the fleet collectively covers every id).
    Per-request latency is measured on the monotonic clock from request
    write to result frame; progress frames are counted along the way. *)

type summary = {
  clients : int;
  per_client : int;
  completed : int;
  errors : int;
  cached : int;  (** results served from the daemon's warm cache *)
  progress_frames : int;
  seconds : float;  (** wall duration of the whole load *)
  rps : float;  (** completed / seconds *)
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
}

val p99_low_sample : summary -> bool
(** Whether too few requests completed (< 100) for the p99 to describe
    a tail rather than the single slowest request. *)

val p99_to_string : summary -> string
(** The p99 rendered for display: ["12.3ms"], or
    ["12.3ms (low sample: n=24 < 100)"] when {!p99_low_sample}. *)

val run :
  connect:(unit -> Unix.file_descr) ->
  clients:int ->
  per_client:int ->
  ids:string list ->
  seed:int ->
  scale:Simulate.Runner.scale ->
  render:Simulate.Registry.render ->
  ?vary_seed:bool ->
  ?dump:string ->
  unit ->
  summary
(** [vary_seed] (default false) gives every request a distinct seed
    ([seed] + global request index) so repeated ids miss the server's
    result cache — use it when measuring execution throughput. [dump]
    writes each result's output verbatim to
    [<dump>/c<client>_r<k>_<id>.out] (creating the directory), the
    hook the serve smoke uses to check byte identity against the batch
    CLI. Raises [Invalid_argument] on [clients < 1] or empty [ids];
    connection failures propagate from [connect]. *)
