(** Minimal JSON values: the wire format of the serve protocol.

    The parser is strict — truncated input, unterminated strings, bad
    escapes, raw control characters and trailing garbage are all
    rejected with a positioned error — because it reads bytes off
    sockets. The renderer is compact and newline-free (control
    characters are escaped), so one rendered value is always exactly
    one NDJSON line. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val to_string : t -> string
(** Compact single-line rendering; [parse (to_string v)] round-trips
    for every [v] whose strings are valid UTF-8. Integral numbers
    render without a decimal point. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val str_opt : t -> string option

val num_opt : t -> float option

val int_opt : t -> int option
(** [Some] only for integral [Num]s within exact-float range. *)

val bool_opt : t -> bool option
