(* Synthetic many-client load generator for the serve daemon
   (`dyngraph load`, and the bench service tier). Spawns [clients]
   threads, each with its own connection, each issuing [per_client]
   requests back-to-back over a mixed id list (client i starts at
   offset i, so the fleet collectively covers every id). Latency is
   measured per request on the monotonic clock, first byte of the
   request line to the result frame; the summary reports throughput
   and p50/p99 over the merged latencies.

   With [dump] set, every result's output field is written verbatim to
   "<dump>/c<client>_r<k>_<id>.out" — the byte-identity hook the serve
   smoke compares against batch CLI output. [vary_seed] gives every
   request a distinct seed (seed + global request index), defeating
   the server's result cache when the point is to measure execution
   throughput rather than cache hits. *)

type summary = {
  clients : int;
  per_client : int;
  completed : int;
  errors : int;
  cached : int;
  progress_frames : int;
  seconds : float;
  rps : float;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
}

(* A p99 interpolated from fewer than 100 samples is dominated by the
   single slowest request, not the tail shape — flag it rather than
   print a bare number that reads like a measured tail. *)
let p99_low_sample s = s.completed < 100

let p99_to_string s =
  if Float.is_nan s.p99_ms then "nan"
  else if p99_low_sample s then
    Printf.sprintf "%.1fms (low sample: n=%d < 100)" s.p99_ms s.completed
  else Printf.sprintf "%.1fms" s.p99_ms

type client_stats = {
  mutable c_completed : int;
  mutable c_errors : int;
  mutable c_cached : int;
  mutable c_progress : int;
  mutable c_latencies : float list;  (* seconds *)
}

let run ~connect ~clients ~per_client ~ids ~seed ~scale ~render ?(vary_seed = false)
    ?dump () =
  if clients < 1 then invalid_arg "Load.run: clients must be >= 1";
  if ids = [] then invalid_arg "Load.run: ids must be non-empty";
  (match dump with
  | Some dir -> (
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  let ids = Array.of_list ids in
  let nids = Array.length ids in
  let stats =
    Array.init clients (fun _ ->
        { c_completed = 0; c_errors = 0; c_cached = 0; c_progress = 0; c_latencies = [] })
  in
  let client ci () =
    let st = stats.(ci) in
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        for k = 0 to per_client - 1 do
          let id = ids.((ci + k) mod nids) in
          let req_seed = if vary_seed then seed + (ci * per_client) + k else seed in
          let line =
            Protocol.encode_request ~req:k
              (Protocol.Run { id; seed = req_seed; scale; render })
            ^ "\n"
          in
          let t0 = Obs.Clock.monotonic () in
          let data = Bytes.of_string line in
          let len = Bytes.length data in
          let off = ref 0 in
          while !off < len do
            let n = Unix.write fd data !off (len - !off) in
            off := !off + n
          done;
          (* Drain frames until this request's result (or error). *)
          let rec await () =
            let reply = input_line ic in
            match Protocol.decode_msg reply with
            | Ok (Protocol.Progress p) when p.req = k ->
                st.c_progress <- st.c_progress + 1;
                await ()
            | Ok (Protocol.Result r) when r.req = k ->
                let dt = Obs.Clock.monotonic () -. t0 in
                st.c_completed <- st.c_completed + 1;
                if r.cached then st.c_cached <- st.c_cached + 1;
                st.c_latencies <- dt :: st.c_latencies;
                (match dump with
                | Some dir ->
                    let path = Filename.concat dir (Printf.sprintf "c%d_r%d_%s.out" ci k id) in
                    let oc = open_out_bin path in
                    output_string oc r.output;
                    close_out oc
                | None -> ())
            | Ok (Protocol.Error _) -> st.c_errors <- st.c_errors + 1
            | Ok _ -> await ()
            | Result.Error _ -> st.c_errors <- st.c_errors + 1
          in
          try await () with End_of_file | Sys_error _ -> st.c_errors <- st.c_errors + 1
        done)
  in
  let t0 = Obs.Clock.monotonic () in
  let threads = List.init clients (fun ci -> Thread.create (client ci) ()) in
  List.iter Thread.join threads;
  let seconds = Obs.Clock.monotonic () -. t0 in
  let completed = Array.fold_left (fun a s -> a + s.c_completed) 0 stats in
  let errors = Array.fold_left (fun a s -> a + s.c_errors) 0 stats in
  let cached = Array.fold_left (fun a s -> a + s.c_cached) 0 stats in
  let progress_frames = Array.fold_left (fun a s -> a + s.c_progress) 0 stats in
  let latencies =
    Array.of_list (List.concat_map (fun s -> s.c_latencies) (Array.to_list stats))
  in
  let ms x = x *. 1000. in
  let p q = if Array.length latencies = 0 then Float.nan else Stats.Quantile.quantile latencies q in
  let mean =
    if Array.length latencies = 0 then Float.nan
    else Array.fold_left ( +. ) 0. latencies /. float_of_int (Array.length latencies)
  in
  {
    clients;
    per_client;
    completed;
    errors;
    cached;
    progress_frames;
    seconds;
    rps = (if seconds > 0. then float_of_int completed /. seconds else Float.nan);
    p50_ms = ms (p 0.5);
    p99_ms = ms (p 0.99);
    mean_ms = ms mean;
  }
