(** The long-lived simulation daemon behind [dyngraph serve].

    Accepts concurrent clients on a Unix socket (and optionally
    loopback TCP) speaking the NDJSON {!Protocol}. One reader thread
    per connection answers [list]/[ping] inline and enqueues [run]
    requests per connection; [executors] executor threads drain the
    queues round-robin across connections — fair scheduling — while
    parallelism also lives {e inside} each request (the trial plans run
    on the in-process Domain pool sized by [jobs], or shard across a
    [procs]-sized worker fleet, and the persistent {!Exec.Pool} tile
    workers, per-domain scratch and interned alias tables stay warm
    across requests). A bounded cost-weighted result cache keyed by
    [(id, seed, scale, render)] answers repeats instantly with
    [cached = true].

    A [run] request's [output] is byte-identical to the batch CLI
    [dyngraph run <id> --seed S] stdout for the same parameters (both
    execute {!Simulate.Registry.single_outcome}).

    Concurrent executors share the process-global observability state:
    per-request progress frames are only emitted when [executors = 1]
    (the renderer slot is single-user), and metric *attribution* (the
    [degraded] field) can blur between concurrently-executing requests
    — totals stay correct, outputs stay deterministic.

    The hosting executable should install a real wall clock and enable
    metrics before {!create}; [serve.requests], [serve.cache_hits] and
    [serve.errors] count traffic. With [procs > 0] it must also have
    configured {!Exec.set_worker_command}. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** bound on loopback when set *)
  jobs : int;  (** in-process Domain pool size per request *)
  executors : int;  (** concurrent executor threads (>= 1) *)
  procs : int;  (** worker-fleet size per request; 0 = in-process *)
  cache_capacity : int;  (** warm result-cache entries; 0 disables *)
}

val default_config : config
(** [dyngraph.sock], no TCP, 1 job, 1 executor, no fleet, 64 cache
    entries. *)

(** The daemon's result cache: cost-weighted LRU (GreedyDual ageing).
    Every entry carries its measured compute seconds as its cost; a hit
    or insert sets the entry's credit to [level + cost], where [level]
    rises to the evicted credit on each eviction — so one expensive
    [full]/[large]-scale result survives hundreds of cheap [quick]
    insertions instead of being pushed out FIFO-style. Thread-safe.
    Exposed for the eviction tests. *)
module Cache : sig
  type t

  val create : int -> t
  (** [create capacity]; capacity 0 disables storage. *)

  val length : t -> int

  val find : t -> string -> (string * bool) option
  (** Lookup; a hit refreshes the entry's credit. *)

  val store : t -> string -> output:string -> ok:bool -> seconds:float -> unit
  (** Insert or refresh, evicting minimum-credit entries as needed.
      [seconds] is floored at 1ms so even "free" entries age out. *)
end

type t

val create : config -> t
(** Bind the sockets (unlinking a stale socket file first), start the
    accept and executor threads, and return immediately. Raises
    [Unix.Unix_error] if a socket cannot be bound. Ignores SIGPIPE. *)

val request_stop : t -> unit
(** Begin shutdown; safe to call from a signal handler (one atomic
    store plus a self-pipe write). Idempotent. *)

val wait : t -> unit
(** Block until the server has shut down: the executors finish their
    current requests, queued requests are failed with
    ["server shutting down"], client sockets are shut down, listener
    fds are closed and the Unix socket path is unlinked. *)

val stop : t -> unit
(** [request_stop] then [wait] — for in-process servers (tests,
    bench). *)

val run : config -> unit
(** [create] then [wait]: the daemon main loop. Install signal
    handlers around this (see [dyngraph serve]). *)
