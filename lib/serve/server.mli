(** The long-lived simulation daemon behind [dyngraph serve].

    Accepts concurrent clients on a Unix socket (and optionally
    loopback TCP) speaking the NDJSON {!Protocol}. One reader thread
    per connection answers [list]/[ping] inline and enqueues [run]
    requests per connection; a single executor thread drains the
    queues round-robin across connections — fair scheduling — while
    parallelism lives {e inside} each request (the trial plans run on
    the in-process Domain pool sized by [jobs], and the persistent
    {!Exec.Pool} tile workers, per-domain scratch and interned alias
    tables stay warm across requests). A bounded result cache keyed by
    [(id, seed, scale, render)] answers repeats instantly with
    [cached = true].

    A [run] request's [output] is byte-identical to the batch CLI
    [dyngraph run <id> --seed S] stdout for the same parameters (both
    execute {!Simulate.Registry.single_outcome}).

    The hosting executable should install a real wall clock and enable
    metrics before {!create}; [serve.requests], [serve.cache_hits] and
    [serve.errors] count traffic, and each result frame carries the
    request-scoped [exec.procs_degraded] count. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** bound on loopback when set *)
  jobs : int;  (** in-process Domain pool size per request *)
  cache_capacity : int;  (** warm result-cache entries; 0 disables *)
}

val default_config : config
(** [dyngraph.sock], no TCP, 1 job, 64 cache entries. *)

type t

val create : config -> t
(** Bind the sockets (unlinking a stale socket file first), start the
    accept and executor threads, and return immediately. Raises
    [Unix.Unix_error] if a socket cannot be bound. Ignores SIGPIPE. *)

val request_stop : t -> unit
(** Begin shutdown; safe to call from a signal handler (one atomic
    store plus a self-pipe write). Idempotent. *)

val wait : t -> unit
(** Block until the server has shut down: the executor finishes its
    current request, queued requests are failed with
    ["server shutting down"], client sockets are shut down, listener
    fds are closed and the Unix socket path is unlinked. *)

val stop : t -> unit
(** [request_stop] then [wait] — for in-process servers (tests,
    bench). *)

val run : config -> unit
(** [create] then [wait]: the daemon main loop. Install signal
    handlers around this (see [dyngraph serve]). *)
