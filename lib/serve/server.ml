(* The long-lived simulation daemon behind `dyngraph serve`.

   Concurrency model: one reader thread per connection parses request
   lines and answers the cheap ops (list/ping) inline; run requests are
   enqueued per connection and drained by [executors] executor threads
   that pick connections round-robin, so one greedy client cannot
   starve the rest. Parallelism also comes from *inside* each request —
   the trial plans run on the in-process Domain pool (or, with [procs],
   shard across a fleet of worker processes now that single experiments
   have serialisable trial plans), and the persistent Exec.Pool tile
   workers (plus per-domain DLS scratch and the Rng.Geo alias tables
   interned by the kernels) stay warm across requests. That warm state,
   plus a bounded result cache keyed by the full request parameters, is
   the daemon's reason to exist over re-execing the batch CLI.

   Byte identity: a run request executes through
   Registry.single_outcome, the same seeding scheme as the batch
   `dyngraph run <id> --seed S`, so the [output] field of a result
   frame is byte-identical to that CLI invocation's stdout.

   Shutdown: request_stop (called from a SIGTERM/SIGINT handler) sets a
   flag and pokes a self-pipe; the accept loop wakes, the executors
   finish their current requests and fail the rest, sockets are shut
   down so reader threads see EOF, and the Unix socket path is
   unlinked. *)

type config = {
  socket_path : string;
  tcp_port : int option;
  jobs : int;
  executors : int;
  procs : int;
  cache_capacity : int;
}

let default_config =
  {
    socket_path = "dyngraph.sock";
    tcp_port = None;
    jobs = 1;
    executors = 1;
    procs = 0;
    cache_capacity = 64;
  }

(* Cost-weighted LRU (the GreedyDual-style ageing scheme): every entry
   carries its measured compute cost in seconds, and the cache keeps a
   rising level L — the credit of the last evicted entry. A hit or
   insert sets the entry's credit to L + cost, so recency raises
   everyone equally while cost decides how many rounds of eviction an
   idle entry survives: one `full`-scale result worth tens of seconds
   outlives hundreds of millisecond `quick` entries, instead of being
   pushed out by them as under plain FIFO. Eviction is an O(n) scan for
   the minimum credit — fine at the default capacity of 64. *)
module Cache = struct
  type entry = { output : string; ok : bool; cost : float; mutable credit : float }

  type t = {
    capacity : int;
    m : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    mutable level : float;
  }

  (* Floor on an entry's cost: even a cache hit served in "zero"
     measured seconds must age out eventually, not instantly. *)
  let min_cost = 0.001

  let create capacity = { capacity; m = Mutex.create (); tbl = Hashtbl.create 64; level = 0. }

  let length t = Hashtbl.length t.tbl

  let find t key =
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some e ->
            e.credit <- t.level +. e.cost;
            Some (e.output, e.ok))

  (* Called under t.m. *)
  let evict_min t =
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, c) when c <= e.credit -> ()
        | _ -> victim := Some (k, e.credit))
      t.tbl;
    match !victim with
    | None -> ()
    | Some (k, credit) ->
        Hashtbl.remove t.tbl k;
        if credit > t.level then t.level <- credit

  let store t key ~output ~ok ~seconds =
    if t.capacity > 0 then begin
      Mutex.lock t.m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.m)
        (fun () ->
          let cost = Float.max seconds min_cost in
          if not (Hashtbl.mem t.tbl key) then
            while Hashtbl.length t.tbl >= t.capacity do
              evict_min t
            done;
          Hashtbl.replace t.tbl key { output; ok; cost; credit = t.level +. cost })
    end
end

let c_requests = Obs.Metrics.counter "serve.requests"

let c_cache_hits = Obs.Metrics.counter "serve.cache_hits"

let c_errors = Obs.Metrics.counter "serve.errors"

type job = {
  req : int;
  exp : Simulate.Registry.experiment;
  seed : int;
  scale : Simulate.Runner.scale;
  render : Simulate.Registry.render;
}

type conn = {
  fd : Unix.file_descr;
  out_mutex : Mutex.t;
  mutable alive : bool;
  mutable next_req : int;  (* server-assigned tags for untagged requests *)
  queue : job Queue.t;  (* guarded by the scheduler mutex *)
}

type t = {
  config : config;
  sched : Exec.scheduler;
  stop : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  m : Mutex.t;  (* guards conns, every conn.queue, rr *)
  cv : Condition.t;
  mutable conns : conn list;
  mutable rr : int;  (* round-robin cursor over conns *)
  mutable listeners : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
  mutable executor_threads : Thread.t list;
  mutable reader_threads : Thread.t list;
  cache : Cache.t;
}

(* --- connection output --- *)

let send_line conn line =
  Mutex.lock conn.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.out_mutex)
    (fun () ->
      if conn.alive then begin
        let data = Bytes.of_string (line ^ "\n") in
        let len = Bytes.length data in
        let off = ref 0 in
        try
          while !off < len do
            let k = Unix.write conn.fd data !off (len - !off) in
            if k = 0 then raise Exit;
            off := !off + k
          done
        with Unix.Unix_error _ | Exit -> conn.alive <- false
      end)

let send_msg conn m = send_line conn (Protocol.encode_msg m)

(* --- the scheduler --- *)

let enqueue t conn job =
  Mutex.lock t.m;
  Queue.add job conn.queue;
  Condition.signal t.cv;
  Mutex.unlock t.m

(* Round-robin over connections with pending work; called under t.m. *)
let take_job t =
  let cs = Array.of_list t.conns in
  let k = Array.length cs in
  if k = 0 then None
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < k do
      let c = cs.((t.rr + !i) mod k) in
      if not (Queue.is_empty c.queue) then begin
        t.rr <- (t.rr + !i + 1) mod k;
        found := Some (c, Queue.take c.queue)
      end;
      incr i
    done;
    !found
  end

let cache_key (job : job) =
  Printf.sprintf "%s|%d|%s|%s" job.exp.Simulate.Registry.id job.seed
    (Protocol.scale_to_string job.scale)
    (Protocol.render_to_string job.render)

(* Execute one run request and stream its frames. Per-request progress
   frames require installing a renderer in the process-global
   Obs.Progress state, which is only single-user when there is exactly
   one executor thread — with more, progress is left alone (a
   concurrent executor's frames would be attributed to the wrong
   request). *)
let execute t conn (job : job) =
  Obs.Metrics.incr c_requests;
  let id = job.exp.Simulate.Registry.id in
  let key = cache_key job in
  match Cache.find t.cache key with
  | Some (output, ok) ->
      Obs.Metrics.incr c_cache_hits;
      send_msg conn
        (Result { req = job.req; id; ok; cached = true; seconds = 0.; degraded = 0; output })
  | None ->
      let progress = t.config.executors <= 1 in
      if progress then begin
        let renderer (u : Obs.Progress.update) =
          send_msg conn
            (Progress
               {
                 req = job.req;
                 id;
                 completed = u.Obs.Progress.completed;
                 total = u.Obs.Progress.total;
                 sub = u.Obs.Progress.sub;
               })
        in
        Obs.Progress.set_renderer (Some renderer);
        Obs.Progress.enable ()
      end;
      let finish () =
        if progress then begin
          Obs.Progress.disable ();
          Obs.Progress.set_renderer None
        end
      in
      (match
         Simulate.Registry.single_outcome ~clock:Obs.Clock.monotonic ~render:job.render
           ~sched:t.sched ~seed:job.seed ~scale:job.scale job.exp
       with
      | output, ok, seconds, metrics ->
          finish ();
          let degraded =
            match List.assoc_opt "exec.procs_degraded" metrics with Some k -> k | None -> 0
          in
          Cache.store t.cache key ~output ~ok ~seconds;
          send_msg conn
            (Result { req = job.req; id; ok; cached = false; seconds; degraded; output })
      | exception e ->
          finish ();
          Obs.Metrics.incr c_errors;
          send_msg conn
            (Error { req = job.req; message = "experiment raised: " ^ Printexc.to_string e }))

let executor t () =
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    let rec next () =
      match take_job t with
      | Some (conn, job) -> Some (conn, job)
      | None ->
          if Atomic.get t.stop then None
          else begin
            Condition.wait t.cv t.m;
            next ()
          end
    in
    let picked = next () in
    Mutex.unlock t.m;
    match picked with
    | None -> continue := false
    | Some (conn, job) -> if conn.alive then execute t conn job
  done

(* --- connection reader --- *)

let handle_line t conn line =
  match Protocol.decode_request line with
  | Result.Error msg ->
      Obs.Metrics.incr c_errors;
      send_msg conn (Error { req = -1; message = "bad request: " ^ msg })
  | Ok (tag, request) -> (
      let req =
        match tag with
        | Some r -> r
        | None ->
            let r = conn.next_req in
            conn.next_req <- r + 1;
            r
      in
      match request with
      | Protocol.Ping -> send_msg conn (Pong { req })
      | Protocol.List ->
          send_msg conn
            (Listing
               {
                 req;
                 experiments =
                   List.map
                     (fun (e : Simulate.Registry.experiment) ->
                       (e.Simulate.Registry.id, e.Simulate.Registry.title))
                     Simulate.Registry.all;
               })
      | Protocol.Run { id; seed; scale; render } -> (
          match Simulate.Registry.find id with
          | None ->
              Obs.Metrics.incr c_errors;
              send_msg conn (Error { req; message = Printf.sprintf "unknown experiment %S" id })
          | Some exp -> enqueue t conn { req; exp; seed; scale; render }))

let reader t conn () =
  let ic = Unix.in_channel_of_descr conn.fd in
  (try
     while conn.alive && not (Atomic.get t.stop) do
       let line = input_line ic in
       if String.trim line <> "" then handle_line t conn line
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  (* Retire the connection: stop writers first, then unregister. *)
  Mutex.lock conn.out_mutex;
  conn.alive <- false;
  Mutex.unlock conn.out_mutex;
  Mutex.lock t.m;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.m;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* --- listeners and lifecycle --- *)

let accept_loop t () =
  let continue = ref true in
  while !continue do
    match Unix.select (t.stop_r :: t.listeners) [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.stop_r ready || Atomic.get t.stop then continue := false
        else
          List.iter
            (fun lfd ->
              if List.mem lfd ready then begin
                match Unix.accept lfd with
                | exception Unix.Unix_error _ -> ()
                | fd, _ ->
                    let conn =
                      {
                        fd;
                        out_mutex = Mutex.create ();
                        alive = true;
                        next_req = 0;
                        queue = Queue.create ();
                      }
                    in
                    Mutex.lock t.m;
                    t.conns <- t.conns @ [ conn ];
                    t.reader_threads <- Thread.create (reader t conn) () :: t.reader_threads;
                    Mutex.unlock t.m
              end)
            t.listeners
  done

let create config =
  (* A stale socket file from a crashed daemon would make bind fail. *)
  (match Unix.lstat config.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink config.socket_path with _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen unix_fd 64;
  let listeners = ref [ unix_fd ] in
  (match config.tcp_port with
  | None -> ()
  | Some port ->
      let tcp_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt tcp_fd Unix.SO_REUSEADDR true;
      Unix.bind tcp_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen tcp_fd 64;
      listeners := tcp_fd :: !listeners);
  let stop_r, stop_w = Unix.pipe () in
  (* A dead client mid-write must cost EPIPE, not process death. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  Exec.Pool.set_workers (max 1 config.jobs);
  let t =
    {
      config;
      (* With [procs] the request's trial plan shards across a worker
         fleet (the hosting executable must have called
         Exec.set_worker_command); otherwise the in-process pool. *)
      sched =
        (if config.procs > 0 then Exec.procs config.procs
         else Exec.of_int (max 1 config.jobs));
      stop = Atomic.make false;
      stop_r;
      stop_w;
      m = Mutex.create ();
      cv = Condition.create ();
      conns = [];
      rr = 0;
      listeners = !listeners;
      accept_thread = None;
      executor_threads = [];
      reader_threads = [];
      cache = Cache.create config.cache_capacity;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.executor_threads <-
    List.init (max 1 config.executors) (fun _ -> Thread.create (executor t) ());
  t

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    (* Poke the accept loop's select. Async-signal-safe enough: one
       write to a private pipe. *)
    try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ()

let wait t =
  (* Poll rather than join outright: a thread blocked in [Thread.join]
     never reaches a safe point, so an OCaml signal handler (the
     SIGTERM path) would never run. [Thread.delay] wakes the main
     thread every 200ms to process pending signal actions. *)
  while not (Atomic.get t.stop) do
    Thread.delay 0.2
  done;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Wake the executors (the accept loop is gone, so conns is stable
     modulo reader-thread retirement). *)
  Mutex.lock t.m;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  List.iter Thread.join t.executor_threads;
  (* Fail whatever is still queued, then push EOF at the readers:
     shutdown (not close) interrupts their blocking reads. *)
  Mutex.lock t.m;
  let conns = t.conns in
  Mutex.unlock t.m;
  List.iter
    (fun conn ->
      Queue.iter
        (fun (job : job) ->
          send_msg conn (Error { req = job.req; message = "server shutting down" }))
        conn.queue;
      Queue.clear conn.queue;
      try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun th -> try Thread.join th with _ -> ()) t.reader_threads;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ());
  if Obs.Metrics.enabled () then
    Printf.eprintf "dyngraph serve: %d requests, %d cache hits, %d errors\n%!"
      (Obs.Metrics.value c_requests) (Obs.Metrics.value c_cache_hits)
      (Obs.Metrics.value c_errors)

let stop t =
  request_stop t;
  wait t

let run config =
  let t = create config in
  wait t
