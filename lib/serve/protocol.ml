(* The serve wire protocol: newline-delimited JSON, one value per line,
   in both directions.

   Client -> server (requests):
     {"op":"run","req":R,"id":"E1","seed":42,"scale":"full","render":"full"}
     {"op":"list","req":R}
     {"op":"ping","req":R}
   [req] is an optional client-chosen tag echoed on every frame that
   answers the request, so clients may pipeline; omitted, the server
   assigns consecutive tags per connection.

   Server -> client (frames):
     {"frame":"progress","req":R,"id":I,"completed":C,"total":T,
      "sub":{"label":L,"completed":c,"total":t}?}   zero or more, then
     {"frame":"result","req":R,"id":I,"ok":B,"cached":B,"seconds":S,
      "degraded":D,"output":O}                      exactly one; or
     {"frame":"listing","req":R,"experiments":[{"id":I,"title":T},..]}
     {"frame":"pong","req":R}
     {"frame":"error","req":R,"message":M}
   [degraded] counts root plans of the request that asked for process
   sharding but ran on the in-process pool (the exec.procs_degraded
   metric scoped to the request). *)

type request =
  | Run of {
      id : string;
      seed : int;
      scale : Simulate.Runner.scale;
      render : Simulate.Registry.render;
    }
  | List
  | Ping

type msg =
  | Progress of {
      req : int;
      id : string;
      completed : int;
      total : int;
      sub : (string * int * int) option;
    }
  | Result of {
      req : int;
      id : string;
      ok : bool;
      cached : bool;
      seconds : float;
      degraded : int;
      output : string;
    }
  | Listing of { req : int; experiments : (string * string) list }
  | Pong of { req : int }
  | Error of { req : int; message : string }

let scale_to_string = function
  | Simulate.Runner.Quick -> "quick"
  | Simulate.Runner.Full -> "full"
  | Simulate.Runner.Large -> "large"

let scale_of_string = function
  | "quick" -> Ok Simulate.Runner.Quick
  | "full" -> Ok Simulate.Runner.Full
  | "large" -> Ok Simulate.Runner.Large
  | s -> Result.Error (Printf.sprintf "unknown scale %S (expected quick|full|large)" s)

let render_to_string = function
  | Simulate.Registry.Full -> "full"
  | Simulate.Registry.Scorecard -> "scorecard"

let render_of_string = function
  | "full" -> Ok Simulate.Registry.Full
  | "scorecard" -> Ok Simulate.Registry.Scorecard
  | s -> Result.Error (Printf.sprintf "unknown render %S (expected full|scorecard)" s)

(* --- encoding --- *)

let num i = Jsonx.Num (float_of_int i)

let encode_request ?req r =
  let tag = match req with Some r -> [ ("req", num r) ] | None -> [] in
  let fields =
    match r with
    | Run { id; seed; scale; render } ->
        [ ("op", Jsonx.Str "run") ] @ tag
        @ [
            ("id", Jsonx.Str id);
            ("seed", num seed);
            ("scale", Jsonx.Str (scale_to_string scale));
            ("render", Jsonx.Str (render_to_string render));
          ]
    | List -> [ ("op", Jsonx.Str "list") ] @ tag
    | Ping -> [ ("op", Jsonx.Str "ping") ] @ tag
  in
  Jsonx.to_string (Jsonx.Obj fields)

let encode_msg m =
  let fields =
    match m with
    | Progress { req; id; completed; total; sub } ->
        [
          ("frame", Jsonx.Str "progress");
          ("req", num req);
          ("id", Jsonx.Str id);
          ("completed", num completed);
          ("total", num total);
        ]
        @ (match sub with
          | None -> []
          | Some (label, c, t) ->
              [
                ( "sub",
                  Jsonx.Obj
                    [ ("label", Jsonx.Str label); ("completed", num c); ("total", num t) ] );
              ])
    | Result { req; id; ok; cached; seconds; degraded; output } ->
        [
          ("frame", Jsonx.Str "result");
          ("req", num req);
          ("id", Jsonx.Str id);
          ("ok", Jsonx.Bool ok);
          ("cached", Jsonx.Bool cached);
          ("seconds", Jsonx.Num seconds);
          ("degraded", num degraded);
          ("output", Jsonx.Str output);
        ]
    | Listing { req; experiments } ->
        [
          ("frame", Jsonx.Str "listing");
          ("req", num req);
          ( "experiments",
            Jsonx.Arr
              (List.map
                 (fun (id, title) ->
                   Jsonx.Obj [ ("id", Jsonx.Str id); ("title", Jsonx.Str title) ])
                 experiments) );
        ]
    | Pong { req } -> [ ("frame", Jsonx.Str "pong"); ("req", num req) ]
    | Error { req; message } ->
        [ ("frame", Jsonx.Str "error"); ("req", num req); ("message", Jsonx.Str message) ]
  in
  Jsonx.to_string (Jsonx.Obj fields)

(* --- decoding --- *)

let ( let* ) = Result.bind

let field_str j k =
  match Option.bind (Jsonx.member k j) Jsonx.str_opt with
  | Some s -> Ok s
  | None -> Result.Error (Printf.sprintf "missing or non-string field %S" k)

let field_int j k =
  match Option.bind (Jsonx.member k j) Jsonx.int_opt with
  | Some i -> Ok i
  | None -> Result.Error (Printf.sprintf "missing or non-integer field %S" k)

let field_num j k =
  match Option.bind (Jsonx.member k j) Jsonx.num_opt with
  | Some f -> Ok f
  | None -> Result.Error (Printf.sprintf "missing or non-number field %S" k)

let field_bool j k =
  match Option.bind (Jsonx.member k j) Jsonx.bool_opt with
  | Some b -> Ok b
  | None -> Result.Error (Printf.sprintf "missing or non-boolean field %S" k)

let opt_field_int j k =
  match Jsonx.member k j with
  | None -> Ok None
  | Some v -> (
      match Jsonx.int_opt v with
      | Some i -> Ok (Some i)
      | None -> Result.Error (Printf.sprintf "non-integer field %S" k))

let opt_field_str_default j k default =
  match Jsonx.member k j with
  | None -> Ok default
  | Some v -> (
      match Jsonx.str_opt v with
      | Some s -> Ok s
      | None -> Result.Error (Printf.sprintf "non-string field %S" k))

let decode_request line =
  let* j = Jsonx.parse line in
  let* op = field_str j "op" in
  let* req = opt_field_int j "req" in
  let* r =
    match op with
    | "run" ->
        let* id = field_str j "id" in
        let* seed =
          match Jsonx.member "seed" j with
          | None -> Ok 42
          | Some v -> (
              match Jsonx.int_opt v with
              | Some i -> Ok i
              | None -> Result.Error "non-integer field \"seed\"")
        in
        let* scale_s = opt_field_str_default j "scale" "full" in
        let* scale = scale_of_string scale_s in
        let* render_s = opt_field_str_default j "render" "full" in
        let* render = render_of_string render_s in
        Ok (Run { id; seed; scale; render })
    | "list" -> Ok List
    | "ping" -> Ok Ping
    | s -> Result.Error (Printf.sprintf "unknown op %S (expected run|list|ping)" s)
  in
  Ok (req, r)

let decode_msg line =
  let* j = Jsonx.parse line in
  let* frame = field_str j "frame" in
  let* req = field_int j "req" in
  match frame with
  | "progress" ->
      let* id = field_str j "id" in
      let* completed = field_int j "completed" in
      let* total = field_int j "total" in
      let* sub =
        match Jsonx.member "sub" j with
        | None -> Ok None
        | Some s ->
            let* label = field_str s "label" in
            let* c = field_int s "completed" in
            let* t = field_int s "total" in
            Ok (Some (label, c, t))
      in
      Ok (Progress { req; id; completed; total; sub })
  | "result" ->
      let* id = field_str j "id" in
      let* ok = field_bool j "ok" in
      let* cached = field_bool j "cached" in
      let* seconds = field_num j "seconds" in
      let* degraded = field_int j "degraded" in
      let* output = field_str j "output" in
      Ok (Result { req; id; ok; cached; seconds; degraded; output })
  | "listing" ->
      let* exps =
        match Jsonx.member "experiments" j with
        | Some (Jsonx.Arr items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* id = field_str item "id" in
                let* title = field_str item "title" in
                Ok ((id, title) :: acc))
              (Ok []) items
            |> Result.map List.rev
        | _ -> Result.Error "missing or non-array field \"experiments\""
      in
      Ok (Listing { req; experiments = exps })
  | "pong" -> Ok (Pong { req })
  | "error" ->
      let* message = field_str j "message" in
      Ok (Error { req; message })
  | s -> Result.Error (Printf.sprintf "unknown frame %S" s)
