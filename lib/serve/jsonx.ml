(* A minimal JSON value type with a strict parser and a compact
   renderer — the wire format of the serve protocol. Hand-rolled for
   the same reason bench_diff's reader is: the protocol is tiny and the
   repo takes no external dependencies. Strictness matters here more
   than in bench_diff (we parse bytes from untrusted sockets): the
   parser rejects truncated input, trailing garbage, bad escapes and
   malformed numbers with a positioned error instead of guessing. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* Combine a surrogate pair when one follows. *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else cp
              in
              (* A surrogate half that never combined is not a scalar
                 value; encoding it would emit ill-formed UTF-8. *)
              if cp >= 0xD800 && cp <= 0xDFFF then fail "unpaired surrogate";
              add_utf8 buf cp
          | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let k = string_body () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* Compact, newline-free rendering: every control character is escaped,
   so a rendered value is always exactly one NDJSON line. *)
let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  let add_escaped s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s -> add_escaped s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped k;
            Buffer.add_char buf ':';
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors --- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str_opt = function Str s -> Some s | _ -> None

let num_opt = function Num f -> Some f | _ -> None

let int_opt = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 -> Some (int_of_float f)
  | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None
