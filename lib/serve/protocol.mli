(** The serve wire protocol: newline-delimited JSON, one value per
    line, in both directions.

    Requests carry an optional client-chosen [req] tag, echoed on every
    frame that answers them so clients may pipeline; when omitted the
    server assigns consecutive tags per connection. A [run] request is
    answered by zero or more [Progress] frames followed by exactly one
    [Result] (or [Error]); [list] by one [Listing]; [ping] by one
    [Pong]. Decoders reject malformed or truncated lines with a
    descriptive error — the peer is a socket, not a trusted caller. *)

type request =
  | Run of {
      id : string;  (** registry experiment id, e.g. "E7" *)
      seed : int;  (** defaults to 42 on the wire, like the CLI *)
      scale : Simulate.Runner.scale;  (** wire default: full *)
      render : Simulate.Registry.render;  (** wire default: full *)
    }
  | List
  | Ping

type msg =
  | Progress of {
      req : int;
      id : string;
      completed : int;
      total : int;
      sub : (string * int * int) option;
          (** finer-grained [(label, completed, total)], mirroring
              {!Obs.Progress.update}[.sub] *)
    }
  | Result of {
      req : int;
      id : string;
      ok : bool;  (** all assessments passed *)
      cached : bool;  (** served from the warm result cache *)
      seconds : float;  (** execution time (monotonic); 0. when cached *)
      degraded : int;
          (** root plans that requested process sharding but ran on the
              in-process pool (request-scoped [exec.procs_degraded]) *)
      output : string;
          (** rendered experiment output — byte-identical to the batch
              CLI [run <id> --seed S] stdout for the same parameters *)
    }
  | Listing of { req : int; experiments : (string * string) list }  (** (id, title) pairs *)
  | Pong of { req : int }
  | Error of { req : int; message : string }

val scale_to_string : Simulate.Runner.scale -> string

val scale_of_string : string -> (Simulate.Runner.scale, string) result

val render_to_string : Simulate.Registry.render -> string

val render_of_string : string -> (Simulate.Registry.render, string) result

val encode_request : ?req:int -> request -> string
(** One JSON line, without the trailing newline. *)

val encode_msg : msg -> string
(** One JSON line, without the trailing newline. Multi-line [output]
    strings are escaped, never split. *)

val decode_request : string -> (int option * request, string) result
(** Parse one request line; returns the optional [req] tag alongside. *)

val decode_msg : string -> (msg, string) result
