(** E8 — Corollary 5 on the paper's basic instance: random paths over a
    grid with the canonical shortest-path family. The family is simple,
    reversible and δ-regular with small δ, so flooding is O(D polylog n)
    where D is the grid diameter — within polylog of the trivial Ω(D)
    lower bound. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
