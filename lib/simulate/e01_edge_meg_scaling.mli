(** E1 — Classic edge-MEG(p, q): measured flooding time vs. the
    almost-tight bound O(log n / log(1 + np)) of [10] (paper Eq. 2),
    sweeping n at p = c/n. The claim reproduced: the measured/bound
    ratio stays bounded (the bound's shape is right), across densities
    c and death rates q. *)

val id : string
val title : string
val claim : string

val plan : rng:Prng.Rng.t -> scale:Runner.scale -> Trial_plan.t
(** The experiment's trial bags as data (sweep bags in (config, n)
    order, then the exact-anchor bags — the historical rng-split
    order), so a single E1 run can shard across a fleet — see
    {!Trial_plan}. *)

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by the plan's render. *)
