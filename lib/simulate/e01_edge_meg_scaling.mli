(** E1 — Classic edge-MEG(p, q): measured flooding time vs. the
    almost-tight bound O(log n / log(1 + np)) of [10] (paper Eq. 2),
    sweeping n at p = c/n. The claim reproduced: the measured/bound
    ratio stays bounded (the bound's shape is right), across densities
    c and death rates q. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
