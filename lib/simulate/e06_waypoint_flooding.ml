let id = "E6"

let title = "random waypoint flooding: sqrt(n)/v scaling in the sparse regime"

let claim =
  "With L = sqrt(n), r and v constant, waypoint flooding grows as sqrt(n) up \
   to polylog (bound O((L/v)(L^2/(n r^2)+1)^2 log^3 n), lower bound \
   Omega(sqrt(n)/v)); at fixed n it scales as 1/v; Manhattan trajectories \
   behave alike."

let size_sweep ~sched ~rng ~scale =
  let ns = Runner.pick scale [ 64; 128 ] [ 64; 128; 256; 512 ] in
  let trials = Runner.trials scale in
  let r = 1.5 and v = 1.0 in
  let table =
    Stats.Table.create ~title:"E6a size sweep (L = sqrt n, r = 1.5, v = 1)"
      ~columns:
        [ "n"; "L"; "flood mean"; "flood sd"; "bound"; "meas/bound"; "lower"; "meas/lower" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let l = sqrt (float_of_int n) in
      let dyn () = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let bound = Theory.Bounds.waypoint ~l ~v_max:(1.25 *. v) ~r ~n in
      let lower = Theory.Bounds.lower_bound_propagation ~l ~r ~v:(1.25 *. v) in
      points := (float_of_int n, stats.mean) :: !points;
      Stats.Table.add_row table
        [
          Int n;
          Runner.cell l;
          Runner.cell stats.mean;
          Runner.cell stats.stddev;
          Runner.cell bound;
          Runner.ratio_cell stats.mean bound;
          Runner.cell lower;
          Runner.ratio_cell stats.mean lower;
        ])
    ns;
  let fit = Stats.Regression.loglog !points in
  let verdict =
    Stats.Table.create ~title:"E6a scaling check"
      ~columns:[ "quantity"; "value"; "expectation" ]
  in
  Stats.Table.add_row verdict
    [
      Text "loglog slope of flood vs n";
      Fixed (fit.slope, 3);
      Text "~0.5 (sqrt n, plus polylog drift)";
    ];
  Stats.Table.add_row verdict [ Text "R^2"; Fixed (fit.r2, 3); Text "-" ];
  if fit.dropped > 0 then
    Stats.Table.add_row verdict
      [ Text "dropped points"; Int fit.dropped; Text "non-positive, excluded from fit" ];
  [ table; verdict ]

let speed_sweep ~sched ~rng ~scale =
  let n = Runner.pick scale 96 256 in
  let l = sqrt (float_of_int n) in
  let r = 1.5 in
  let vs = Runner.pick scale [ 0.5; 1.0; 2.0 ] [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let trials = Runner.trials scale in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E6b speed sweep (n = %d, L = %.1f)" n l)
      ~columns:[ "v"; "flood mean"; "flood * v"; "Manhattan mean"; "Manhattan * v" ]
  in
  List.iter
    (fun v ->
      let wp () = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
      let mh () = Mobility.Manhattan.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
      let swp = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials wp in
      let smh = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials mh in
      Stats.Table.add_row table
        [
          Runner.cell v;
          Runner.cell swp.mean;
          Runner.cell (swp.mean *. v);
          Runner.cell smh.mean;
          Runner.cell (smh.mean *. v);
        ])
    vs;
  [ table ]

let run ~sched ~rng ~scale =
  size_sweep ~sched ~rng ~scale @ speed_sweep ~sched ~rng ~scale

let assess = function
  | [ size; verdict; speed ] ->
      let slope =
        match Stats.Table.column_floats verdict "value" with [||] -> nan | v -> v.(0)
      in
      let wp_floods = Array.to_list (Stats.Table.column_floats speed "flood mean") in
      [
        Assess.value_in ~label:"flooding-vs-n exponent near 1/2" ~lo:0.3 ~hi:0.8 slope;
        Assess.column_range size ~column:"meas/lower"
          ~label:"within polylog of the trivial lower bound" ~lo:0.5 ~hi:20.;
        Assess.ordered ~label:"flooding decreases with speed" wp_floods;
      ]
  | _ -> [ Assess.check ~label:"expected 3 tables" false ]
