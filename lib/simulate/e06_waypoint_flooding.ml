let id = "E6"

let title = "random waypoint flooding: sqrt(n)/v scaling in the sparse regime"

let claim =
  "With L = sqrt(n), r and v constant, waypoint flooding grows as sqrt(n) up \
   to polylog (bound O((L/v)(L^2/(n r^2)+1)^2 log^3 n), lower bound \
   Omega(sqrt(n)/v)); at fixed n it scales as 1/v; Manhattan trajectories \
   behave alike."

(* The experiment as a trial plan (see Trial_plan): bags carry the
   seeded trial batches, [render] rebuilds the tables from the per-bag
   times. Bag construction preserves the rng-split order of the
   pre-plan closures — [size_sweep @ speed_sweep] evaluated its right
   operand first, so the speed bags draw their generators before the
   size bags. *)
let plan ~rng ~scale =
  let trials = Runner.trials scale in
  let r = 1.5 in
  (* E6b speed sweep: waypoint and Manhattan bags per speed. *)
  let n_speed = Runner.pick scale 96 256 in
  let l_speed = sqrt (float_of_int n_speed) in
  let vs = Runner.pick scale [ 0.5; 1.0; 2.0 ] [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let speed_bags = ref [] in
  List.iter
    (fun v ->
      let wp () =
        Mobility.Waypoint.dynamic ~n:n_speed ~l:l_speed ~r ~v_min:v ~v_max:(1.25 *. v) ()
      in
      let mh () =
        Mobility.Manhattan.dynamic ~n:n_speed ~l:l_speed ~r ~v_min:v ~v_max:(1.25 *. v) ()
      in
      let bag_wp, stats_wp =
        Runner.flood_bag
          ~label:(Printf.sprintf "speed v=%g waypoint" v)
          ~rng:(Prng.Rng.split rng) ~trials wp
      in
      let bag_mh, stats_mh =
        Runner.flood_bag
          ~label:(Printf.sprintf "speed v=%g manhattan" v)
          ~rng:(Prng.Rng.split rng) ~trials mh
      in
      speed_bags := (v, bag_wp, stats_wp, bag_mh, stats_mh) :: !speed_bags)
    vs;
  let speed_bags = List.rev !speed_bags in
  (* E6a size sweep at v = 1. *)
  let ns = Runner.pick scale [ 64; 128 ] [ 64; 128; 256; 512 ] in
  let v = 1.0 in
  let size_bags = ref [] in
  List.iter
    (fun n ->
      let l = sqrt (float_of_int n) in
      let dyn () = Mobility.Waypoint.dynamic ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
      let bag, stats_of =
        Runner.flood_bag
          ~label:(Printf.sprintf "size n=%d" n)
          ~rng:(Prng.Rng.split rng) ~trials dyn
      in
      size_bags := (n, l, bag, stats_of) :: !size_bags)
    ns;
  let size_bags = List.rev !size_bags in
  let bags =
    Array.of_list
      (List.concat_map (fun (_, bwp, _, bmh, _) -> [ bwp; bmh ]) speed_bags
      @ List.map (fun (_, _, b, _) -> b) size_bags)
  in
  let size_offset = 2 * List.length speed_bags in
  let render results =
    let table =
      Stats.Table.create ~title:"E6a size sweep (L = sqrt n, r = 1.5, v = 1)"
        ~columns:
          [ "n"; "L"; "flood mean"; "flood sd"; "bound"; "meas/bound"; "lower"; "meas/lower" ]
    in
    let points = ref [] in
    List.iteri
      (fun i (n, l, _, stats_of) ->
        let stats = stats_of results.(size_offset + i) in
        let bound = Theory.Bounds.waypoint ~l ~v_max:(1.25 *. v) ~r ~n in
        let lower = Theory.Bounds.lower_bound_propagation ~l ~r ~v:(1.25 *. v) in
        points := (float_of_int n, stats.Runner.mean) :: !points;
        Stats.Table.add_row table
          [
            Int n;
            Runner.cell l;
            Runner.cell stats.Runner.mean;
            Runner.cell stats.Runner.stddev;
            Runner.cell bound;
            Runner.ratio_cell stats.Runner.mean bound;
            Runner.cell lower;
            Runner.ratio_cell stats.Runner.mean lower;
          ])
      size_bags;
    let fit = Stats.Regression.loglog !points in
    let verdict =
      Stats.Table.create ~title:"E6a scaling check"
        ~columns:[ "quantity"; "value"; "expectation" ]
    in
    Stats.Table.add_row verdict
      [
        Text "loglog slope of flood vs n";
        Fixed (fit.slope, 3);
        Text "~0.5 (sqrt n, plus polylog drift)";
      ];
    Stats.Table.add_row verdict [ Text "R^2"; Fixed (fit.r2, 3); Text "-" ];
    if fit.dropped > 0 then
      Stats.Table.add_row verdict
        [ Text "dropped points"; Int fit.dropped; Text "non-positive, excluded from fit" ];
    let speed =
      Stats.Table.create
        ~title:(Printf.sprintf "E6b speed sweep (n = %d, L = %.1f)" n_speed l_speed)
        ~columns:[ "v"; "flood mean"; "flood * v"; "Manhattan mean"; "Manhattan * v" ]
    in
    List.iteri
      (fun i (v, _, stats_wp, _, stats_mh) ->
        let swp = stats_wp results.(2 * i) in
        let smh = stats_mh results.((2 * i) + 1) in
        Stats.Table.add_row speed
          [
            Runner.cell v;
            Runner.cell swp.Runner.mean;
            Runner.cell (swp.Runner.mean *. v);
            Runner.cell smh.Runner.mean;
            Runner.cell (smh.Runner.mean *. v);
          ])
      speed_bags;
    [ table; verdict; speed ]
  in
  { Trial_plan.bags; render }

let assess = function
  | [ size; verdict; speed ] ->
      let slope =
        match Stats.Table.column_floats verdict "value" with [||] -> nan | v -> v.(0)
      in
      let wp_floods = Array.to_list (Stats.Table.column_floats speed "flood mean") in
      [
        Assess.value_in ~label:"flooding-vs-n exponent near 1/2" ~lo:0.3 ~hi:0.8 slope;
        Assess.column_range size ~column:"meas/lower"
          ~label:"within polylog of the trivial lower bound" ~lo:0.5 ~hi:20.;
        Assess.ordered ~label:"flooding decreases with speed" wp_floods;
      ]
  | _ -> [ Assess.check ~label:"expected 3 tables" false ]
