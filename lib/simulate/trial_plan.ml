(* A trial plan is an experiment's bag structure made first-class: each
   bag is an independent batch of seeded trials producing one float per
   trial, and rendering is a pure function of the per-bag result arrays.
   Expressing the bags as data instead of closed-over loops is what lets
   one experiment shard across worker processes — a worker rebuilds the
   same plan from (experiment id, rng state bits, scale) and runs just
   its shard, and the parent merges by (bag, trial) index so the bytes
   are identical at every --jobs / --procs setting.

   Shard geometry is a function of the plan alone (never of the worker
   count): shards split bags into runs of at most [max_shard_trials]
   consecutive trials and never cross a bag boundary, so the shard list
   the parent enumerates is exactly the shard list any worker derives. *)

type bag = {
  label : string;  (** names the bag in shard spec ids and errors *)
  trials : int;
  rng : Prng.Rng.t;
  run_trial : Prng.Rng.t -> float;
}

type t = {
  bags : bag array;
  render : float array array -> Stats.Table.t list;
}

type shard = { bag : int; lo : int; hi : int }

let max_shard_trials = 8

let shards p =
  let acc = ref [] in
  Array.iteri
    (fun bi b ->
      if b.trials < 1 then
        invalid_arg (Printf.sprintf "Trial_plan: bag %S has %d trials" b.label b.trials);
      let lo = ref 0 in
      while !lo < b.trials do
        let hi = min b.trials (!lo + max_shard_trials) in
        acc := { bag = bi; lo = !lo; hi } :: !acc;
        lo := hi
      done)
    p.bags;
  Array.of_list (List.rev !acc)

(* Trial [i] of a bag always draws from substream [i] of the bag's
   generator — the same derivation Flooding.mean_time uses — so a
   trial's randomness depends only on its index, never on which shard,
   domain or process runs it. *)
let run_shard p s =
  let b = p.bags.(s.bag) in
  Array.init (s.hi - s.lo) (fun k -> b.run_trial (Prng.Rng.substream b.rng (s.lo + k)))

module B = Exec.Spec.Buf

let encode_result values =
  let b = Buffer.create (8 + (8 * Array.length values)) in
  B.add_int b (Array.length values);
  Array.iter (B.add_float b) values;
  Buffer.contents b

let decode_result data =
  let r = B.reader data in
  let n = B.int r in
  if n < 0 then raise (B.Corrupt "trial result: negative count");
  let values = Array.init n (fun _ -> B.float r) in
  if not (B.at_end r) then raise (B.Corrupt "trial result: trailing bytes");
  values

let execute ?spec ~sched p =
  let ss = shards p in
  let jobs = Array.length ss in
  let job i = run_shard p ss.(i) in
  let reduce parts =
    let per_bag = Array.map (fun b -> Array.make b.trials 0.) p.bags in
    Array.iteri
      (fun i part ->
        let s = ss.(i) in
        if Array.length part <> s.hi - s.lo then
          failwith
            (Printf.sprintf "Trial_plan: shard %d returned %d results, expected %d" i
               (Array.length part) (s.hi - s.lo));
        Array.blit part 0 per_bag.(s.bag) s.lo (s.hi - s.lo))
      parts;
    p.render per_bag
  in
  match spec with
  | None -> Exec.run sched (Exec.plan ~jobs ~job ~reduce)
  | Some spec -> Exec.run sched (Exec.plan_spec ~jobs ~job ~spec ~reduce)
