(** Batch CSV export: run experiments and write every table as a CSV
    file, for offline plotting. File names are derived from the
    experiment id and the table's position and title
    (e.g. [E6-2-e6a-scaling-check.csv]). *)

val slug : string -> string
(** Lowercase, non-alphanumerics collapsed to single dashes, trimmed;
    at most 48 characters. *)

val export_experiment :
  ?sched:Exec.scheduler ->
  dir:string ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  Registry.experiment ->
  string list
(** Run one experiment and write its tables under [dir] (created if
    missing). Returns the paths written. *)

val export_all :
  ?sched:Exec.scheduler ->
  dir:string ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  unit ->
  string list
(** Export every registered experiment, concurrently under a pool
    scheduler (each experiment writes its own disjoint files; the
    returned path list is always in registry order). Per-experiment
    substreams come from {!Registry.experiment_rng}, matching
    {!Registry.run_all}'s seeding, so exported numbers equal the
    printed ones for the same seed and any worker count. *)
