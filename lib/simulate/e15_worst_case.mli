(** E15 — What stationarity buys: worst-case dynamic graphs ([21]) vs
    the paper's Markovian models at matched snapshot density. The
    rotating star is always connected with diameter 2 and carries the
    same n-1 edges per snapshot as a density-matched edge-MEG, yet
    flooding takes exactly n-1 rounds; the memoryless random matching
    and the edge-MEG flood in Θ(log n). T-interval connectivity is
    measured for each, showing the paper's models flood fast *without*
    any interval-connectivity guarantee. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
