let id = "E17"

let title = "epoch-granularity slack: flooding per step vs per epoch"

let claim =
  "Flooding measured on the epoch-subsampled process (times M) dominates real \
   per-step flooding, and the gap — the slack Theorem 1's epoch argument \
   gives away — grows with the epoch length M."

let run ~sched ~rng ~scale =
  let trials = Runner.trials scale in
  let n = Runner.pick scale 128 256 in
  (* A slowly-mixing edge-MEG: small p + q means long epochs. *)
  let p = 0.4 /. float_of_int n in
  let qs = Runner.pick scale [ 0.05; 0.2 ] [ 0.02; 0.05; 0.1; 0.2; 0.5 ] in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "%s (edge-MEG, n = %d, np = 0.4)" title n)
      ~columns:
        [
          "q";
          "M (epoch)";
          "per-step flood";
          "epoch floods";
          "epoch x M";
          "slack (xM / step)";
        ]
  in
  List.iter
    (fun q ->
      let m = Markov.Two_state.mixing_time (Markov.Two_state.make ~p ~q) in
      let m = max 1 m in
      let fine () = Edge_meg.Classic.make ~n ~p ~q () in
      let coarse () = Core.Dynamic.subsample ~every:m (Edge_meg.Classic.make ~n ~p ~q ()) in
      let fine_stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials fine in
      let coarse_stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials coarse in
      let epoch_steps = coarse_stats.mean *. float_of_int m in
      Stats.Table.add_row table
        [
          Runner.cell q;
          Int m;
          Runner.cell fine_stats.mean;
          Runner.cell coarse_stats.mean;
          Runner.cell epoch_steps;
          Fixed (epoch_steps /. fine_stats.mean, 2);
        ])
    qs;
  [ table ]

let assess = function
  | [ table ] ->
      let fine = Stats.Table.column_floats table "per-step flood" in
      let scaled = Stats.Table.column_floats table "epoch x M" in
      let dominates =
        Array.length fine = Array.length scaled
        && Array.for_all2 (fun f s -> s >= f *. 0.9) fine scaled
      in
      [
        Assess.check ~label:"epoch-scaled flooding dominates per-step flooding" dominates;
        Assess.all_column table ~column:"slack (xM / step)"
          ~label:"slack is a real, bounded factor" (fun v -> v >= 0.9 && v <= 300.);
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
