let id = "E1"

let title = "edge-MEG(p,q): flooding vs O(log n / log(1+np)) (Eq. 2)"

let claim =
  "Measured flooding time of the classic edge-MEG stays within a constant \
   factor of log n / log(1+np) across n, for p = c/n."

(* The experiment as a trial plan (see Trial_plan): sweep bags in
   (config, n) order, then the exact-anchor bags — the same rng-split
   order as the pre-plan closure, so no rendered byte changes. *)
let plan ~rng ~scale =
  let ns = Runner.pick scale [ 64; 128; 256 ] [ 64; 128; 256; 512; 1024 ] in
  let configs = [ (4.0, 0.5); (1.0, 0.5); (4.0, 0.1) ] in
  let trials = Runner.trials scale in
  let sweep_bags = ref [] in
  List.iter
    (fun (c, q) ->
      List.iter
        (fun n ->
          let p = c /. float_of_int n in
          let dyn () = Edge_meg.Classic.make ~n ~p ~q () in
          let bag, stats_of =
            Runner.flood_bag
              ~label:(Printf.sprintf "sweep c=%g q=%g n=%d" c q n)
              ~rng:(Prng.Rng.split rng) ~trials dyn
          in
          sweep_bags := (c, q, n, bag, stats_of) :: !sweep_bags)
        ns)
    configs;
  let sweep_bags = List.rev !sweep_bags in
  let anchor_bags = ref [] in
  List.iter
    (fun n ->
      let alpha = 3. /. float_of_int n in
      let dyn () = Edge_meg.Classic.make ~n ~p:alpha ~q:(1. -. alpha) () in
      let bag, stats_of =
        Runner.flood_bag
          ~label:(Printf.sprintf "anchor n=%d" n)
          ~rng:(Prng.Rng.split rng) ~trials:(trials * 4) dyn
      in
      anchor_bags := (n, alpha, bag, stats_of) :: !anchor_bags)
    ns;
  let anchor_bags = List.rev !anchor_bags in
  let bags =
    Array.of_list
      (List.map (fun (_, _, _, b, _) -> b) sweep_bags
      @ List.map (fun (_, _, b, _) -> b) anchor_bags)
  in
  let anchor_offset = List.length sweep_bags in
  let render results =
    let table =
      Stats.Table.create ~title
        ~columns:[ "n"; "c (np)"; "q"; "flood mean"; "flood sd"; "Eq.2 bound"; "ratio" ]
    in
    let points = ref [] in
    List.iteri
      (fun i (c, q, n, _, stats_of) ->
        let stats = stats_of results.(i) in
        let bound = Theory.Bounds.edge_meg_eq2 ~n ~p:(c /. float_of_int n) in
        if c = 4.0 && q = 0.5 then points := (float_of_int n, stats.Runner.mean) :: !points;
        Stats.Table.add_row table
          [
            Int n;
            Runner.cell c;
            Runner.cell q;
            Runner.cell stats.Runner.mean;
            Runner.cell stats.Runner.stddev;
            Runner.cell bound;
            Runner.ratio_cell stats.Runner.mean bound;
          ])
      sweep_bags;
    (* The bound predicts O(log n) growth at fixed c: the empirical
       scaling exponent of flooding vs n should be near zero. *)
    let fit = Stats.Regression.loglog !points in
    let verdict =
      Stats.Table.create ~title:"E1 scaling check (c=4, q=0.5)"
        ~columns:[ "quantity"; "value"; "expectation" ]
    in
    Stats.Table.add_row verdict
      [ Text "loglog slope of flood vs n"; Fixed (fit.slope, 3); Text "near 0 (polylog growth)" ];
    Stats.Table.add_row verdict [ Text "R^2"; Fixed (fit.r2, 3); Text "-" ];
    if fit.dropped > 0 then
      Stats.Table.add_row verdict
        [ Text "dropped points"; Int fit.dropped; Text "non-positive, excluded from fit" ];
    (* Calibration anchor: with q = 1 - p the snapshots are i.i.d.
       G(n, p) and the expected flooding time is computable exactly
       (absorbing-chain analysis); measured means must match to within
       sampling noise — this validates the whole simulation pipeline,
       not just a bound's shape. *)
    let anchor =
      Stats.Table.create ~title:"E1 exact anchor (iid snapshots: q = 1 - p)"
        ~columns:[ "n"; "alpha*n"; "measured mean"; "exact expectation"; "measured/exact" ]
    in
    List.iteri
      (fun i (n, alpha, _, stats_of) ->
        let stats = stats_of results.(anchor_offset + i) in
        let exact = Theory.Iid_flooding.expected_time ~n ~alpha in
        Stats.Table.add_row anchor
          [
            Int n;
            Runner.cell 3.;
            Runner.cell stats.Runner.mean;
            Runner.cell exact;
            Fixed (stats.Runner.mean /. exact, 3);
          ])
      anchor_bags;
    [ table; verdict; anchor ]
  in
  { Trial_plan.bags; render }

let assess = function
  | [ main; verdict; anchor ] ->
      let slope =
        match Stats.Table.column_floats verdict "value" with
        | [||] -> nan
        | values -> values.(0)
      in
      [
        Assess.column_range main ~column:"ratio"
          ~label:"measured/Eq.2 bounded across n, c, q" ~lo:0.05 ~hi:3.;
        Assess.value_in ~label:"flooding-vs-n exponent is polylog-small" ~lo:(-0.2) ~hi:0.5
          slope;
        Assess.column_range anchor ~column:"measured/exact"
          ~label:"iid anchor: simulation matches exact expectation" ~lo:0.85 ~hi:1.15;
      ]
  | _ -> [ Assess.check ~label:"expected 3 tables" false ]
