(** E7 — The waypoint positional mixing time is Θ(L/v_max) (the paper's
    quoted result [1, 29], the M of its epochs). Measured via TV decay
    of the empirical occupancy of replicas started in a corner, across
    an (L, v) grid; the reported t_mix should scale linearly in L/v. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
