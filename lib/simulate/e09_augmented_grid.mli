(** E9 — Corollary 6 vs. the baseline of [15] on k-augmented grids: as
    k grows, the walk's mixing time (and hence our bound, and the
    measured flooding time) drops roughly as k², while the two-walk
    meeting time T* — the quantity controlling the baseline bound
    O(T* log n) — stays near Θ(s log s). This is the paper's concrete
    "our bound improves on [15]" example. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
