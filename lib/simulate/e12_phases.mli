(** E12 — The phase structure behind Theorem 1's proof: during the
    spreading phase the informed set doubles within a bounded number of
    steps (Lemma 13) until n/2; the saturation phase then informs the
    rest within a comparable budget (Lemma 14). Measured on an
    edge-MEG, a waypoint network and a random-path grid. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
