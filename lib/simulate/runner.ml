type scale = Quick | Full | Large

let trials = function Quick | Large -> 5 | Full -> 20

(* Large keeps the registry sweeps at their Quick size: the tier's
   budget belongs to the million-node off-heap extras the bench driver
   layers on top (see bench/main.ml), not to bigger paper sweeps. *)
let pick scale quick full = match scale with Quick | Large -> quick | Full -> full

(* Wire codec for a scale, used by the trial-plan payloads (Registry)
   and kept in sync with Fleet's copy by the round-trip tests. *)
let scale_to_int = function Quick -> 0 | Full -> 1 | Large -> 2

let scale_of_int = function
  | 0 -> Quick
  | 1 -> Full
  | 2 -> Large
  | n -> invalid_arg (Printf.sprintf "Runner.scale_of_int: %d" n)

type flood_stats = { mean : float; stddev : float; max : float; capped : bool }

let flood ?(sched = Exec.sequential) ~rng ~trials ?cap ?protocol ?source build =
  let n = Core.Dynamic.n (build ()) in
  let cap_value = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  let summary =
    Core.Flooding.mean_time ~cap:cap_value ?protocol ~sched ~rng ~trials ?source build
  in
  let max = Stats.Summary.max summary in
  {
    mean = Stats.Summary.mean summary;
    stddev = (if trials > 1 then Stats.Summary.stddev summary else 0.);
    max;
    capped = max >= float_of_int cap_value;
  }

(* [flood] as a trial-plan bag: the same cap derivation, the same
   per-trial substream indexing (Trial_plan.run_shard mirrors
   Flooding.mean_time's [substream rng i]), and a stats renderer that
   reduces the trial times exactly as [flood] does — so converting an
   experiment from [flood] to bags changes no rendered byte. *)
let flood_bag ~label ~rng ~trials ?cap ?protocol ?(source = 0) build =
  let n = Core.Dynamic.n (build ()) in
  let cap_value = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  let run_trial trng =
    float_of_int
      (Core.Flooding.trial_time ~cap:cap_value ?protocol ~rng:trng ~source (build ()))
  in
  let stats_of times =
    let summary = Stats.Summary.of_array times in
    let max = Stats.Summary.max summary in
    {
      mean = Stats.Summary.mean summary;
      stddev = (if trials > 1 then Stats.Summary.stddev summary else 0.);
      max;
      capped = max >= float_of_int cap_value;
    }
  in
  ({ Trial_plan.label; trials; rng; run_trial }, stats_of)

let cell f = Stats.Table.Float f

let ratio_cell measured bound =
  if Float.is_finite bound && bound > 0. then Stats.Table.Fixed (measured /. bound, 3)
  else Stats.Table.Missing
