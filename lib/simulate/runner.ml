type scale = Quick | Full | Large

let trials = function Quick | Large -> 5 | Full -> 20

(* Large keeps the registry sweeps at their Quick size: the tier's
   budget belongs to the million-node off-heap extras the bench driver
   layers on top (see bench/main.ml), not to bigger paper sweeps. *)
let pick scale quick full = match scale with Quick | Large -> quick | Full -> full

type flood_stats = { mean : float; stddev : float; max : float; capped : bool }

let flood ?(sched = Exec.sequential) ~rng ~trials ?cap ?protocol ?source build =
  let n = Core.Dynamic.n (build ()) in
  let cap_value = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  let summary =
    Core.Flooding.mean_time ~cap:cap_value ?protocol ~sched ~rng ~trials ?source build
  in
  let max = Stats.Summary.max summary in
  {
    mean = Stats.Summary.mean summary;
    stddev = (if trials > 1 then Stats.Summary.stddev summary else 0.);
    max;
    capped = max >= float_of_int cap_value;
  }

let cell f = Stats.Table.Float f

let ratio_cell measured bound =
  if Float.is_finite bound && bound > 0. then Stats.Table.Fixed (measured /. bound, 3)
  else Stats.Table.Missing
