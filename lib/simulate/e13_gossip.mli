(** E13 — The conclusion's protocol extension, beyond the push-subset
    reduction of E11: single-contact gossip (push / pull / push-pull)
    on dynamic graphs. Flooding is the message-heavy baseline (every
    informed node uses every incident edge); gossip bounds per-node
    communication to one contact per round. The shape reproduced:
    push-pull completes within a small factor of flooding at a
    fraction of the message cost, and all variants inherit the
    dynamic-graph behaviour (they are floods on a sparser virtual
    process, exactly as Section 5 argues). *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
