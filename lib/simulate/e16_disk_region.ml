let id = "E16"

let title = "Corollary 4 over a disk region: same constants, same flooding"

let claim =
  "The waypoint over the disk inscribed in the square satisfies conditions \
   (a),(b) of Corollary 4 with O(1) delta and lambda, and floods within a \
   constant factor of the square-region waypoint at equal node density."

let run ~sched ~rng ~scale =
  let n = Runner.pick scale 96 256 in
  let trials = Runner.trials scale in
  let bins = 8 in
  let samples = Runner.pick scale 300 1200 in
  let r = 1.5 and v = 1.0 in
  let table =
    Stats.Table.create ~title
      ~columns:
        [ "region"; "L"; "delta"; "lambda"; "center bias"; "flood mean"; "flood sd" ]
  in
  let row name region =
    (* Equal node density: the disk has pi/4 of the square's area, so
       its side is scaled up to hold n nodes at one node per unit. *)
    let area_factor =
      match region with Mobility.Waypoint.Square -> 1. | Disk -> 4. /. Float.pi
    in
    let l = sqrt (float_of_int n *. area_factor) in
    let geo = Mobility.Waypoint.create ~region ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) () in
    let profile = Mobility.Density.estimate ~geo ~rng:(Prng.Rng.split rng) ~bins ~samples () in
    let mask = Mobility.Waypoint.region_contains region ~l in
    let u = Mobility.Density.uniformity ~mask profile in
    let dyn () =
      Mobility.Waypoint.dynamic ~region ~n ~l ~r ~v_min:v ~v_max:(1.25 *. v) ()
    in
    let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
    Stats.Table.add_row table
      [
        Text name;
        Fixed (l, 1);
        Fixed (u.delta, 3);
        Fixed (u.lambda, 3);
        Fixed (u.center_to_corner, 2);
        Runner.cell stats.mean;
        Runner.cell stats.stddev;
      ]
  in
  row "square" Mobility.Waypoint.Square;
  row "disk" Mobility.Waypoint.Disk;
  [ table ]

let assess = function
  | [ table ] ->
      let deltas = Stats.Table.column_floats table "delta" in
      let lambdas = Stats.Table.column_floats table "lambda" in
      let floods = Stats.Table.column_floats table "flood mean" in
      if Array.length deltas < 2 then [ Assess.check ~label:"expected 2 rows" false ]
      else
        [
          Assess.value_in ~label:"disk delta is an O(1) constant" ~lo:1. ~hi:4. deltas.(1);
          Assess.value_in ~label:"disk lambda bounded below" ~lo:0.3 ~hi:1. lambdas.(1);
          Assess.check ~label:"disk flooding within 3x of square flooding"
            (floods.(1) /. floods.(0) >= 1. /. 3. && floods.(1) /. floods.(0) <= 3.);
        ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
