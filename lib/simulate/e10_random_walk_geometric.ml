let id = "E10"

let title = "random-walk mobility on a grid: radius sweep"

let claim =
  "Flooding time of the random-walk model decreases sharply with the \
   transmission radius even while most snapshots remain disconnected; the \
   sparse regime is still only polylog away from the mobility scale."

let run ~sched ~rng ~scale =
  let m = Runner.pick scale 16 32 in
  let n = Runner.pick scale 64 128 in
  let rs = Runner.pick scale [ 1.0; 2.0; 4.0 ] [ 1.0; 1.5; 2.0; 4.0; 8.0 ] in
  let trials = Runner.trials scale in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "%s (m = %d, n = %d)" title m n)
      ~columns:
        [ "r"; "flood mean"; "flood sd"; "isolated frac"; "snapshot components" ]
  in
  List.iter
    (fun r ->
      let dyn () = Mobility.Random_walk_model.dynamic ~n ~m ~r () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      (* Snapshot structure in (approximate) steady state. *)
      let probe = dyn () in
      Core.Dynamic.reset probe (Prng.Rng.split rng);
      for _ = 1 to 5 * m do
        Core.Dynamic.step probe
      done;
      let snap = Core.Dynamic.snapshot_graph probe in
      Stats.Table.add_row table
        [
          Runner.cell r;
          Runner.cell stats.mean;
          Runner.cell stats.stddev;
          Fixed (Core.Dynamic.isolated_fraction probe, 3);
          Int (Graph.Traverse.n_components snap);
        ])
    rs;
  [ table ]

let assess = function
  | [ table ] ->
      let floods = Array.to_list (Stats.Table.column_floats table "flood mean") in
      let isolated = Array.to_list (Stats.Table.column_floats table "isolated frac") in
      [
        Assess.ordered ~label:"flooding decreases with radius" floods;
        Assess.ordered ~label:"isolation decreases with radius" isolated;
        Assess.check ~label:"sparse regime has substantial isolation"
          (match isolated with v :: _ -> v > 0.1 | [] -> false);
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
