let slug s =
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          Buffer.add_char buf c;
          last_dash := false
      | 'A' .. 'Z' ->
          Buffer.add_char buf (Char.lowercase_ascii c);
          last_dash := false
      | _ ->
          if not !last_dash then begin
            Buffer.add_char buf '-';
            last_dash := true
          end)
    s;
  let s = Buffer.contents buf in
  let s = if String.length s > 0 && s.[String.length s - 1] = '-' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if String.length s > 48 then String.sub s 0 48 else s

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Export: %s exists and is not a directory" dir)

let export_experiment ?(sched = Exec.sequential) ~dir ~rng ~scale
    (e : Registry.experiment) =
  ensure_dir dir;
  let tables = e.run ~sched ~rng ~scale in
  List.mapi
    (fun i table ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%d-%s.csv" (String.lowercase_ascii e.id) (i + 1)
             (slug (Stats.Table.title table)))
      in
      let oc = open_out path in
      output_string oc (Stats.Table.to_csv table);
      close_out oc;
      path)
    tables

let export_all ?(sched = Exec.sequential) ~dir ~rng ~scale () =
  (* Create the directory before fanning out: worker domains write
     disjoint files but must not race on mkdir. *)
  ensure_dir dir;
  let exps = Array.of_list Registry.all in
  let rngs = Array.init (Array.length exps) (Registry.experiment_rng rng) in
  let job i = export_experiment ~sched ~dir ~rng:rngs.(i) ~scale exps.(i) in
  let paths =
    Exec.run sched (Exec.plan ~jobs:(Array.length exps) ~job ~reduce:Array.to_list)
  in
  List.concat paths
