let id = "E15"

let title = "worst-case vs Markovian dynamic graphs at equal density"

let claim =
  "An always-connected adversarial dynamic graph (rotating star) floods in \
   Theta(n) while Markovian models of the same snapshot density flood in \
   O(polylog n); interval connectivity is neither necessary nor sufficient \
   for fast flooding."

let run ~sched ~rng ~scale =
  let n = Runner.pick scale 64 256 in
  let trials = Runner.trials scale in
  let window = 12 in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "%s (n = %d)" title n)
      ~columns:
        [
          "model";
          "edges/snapshot";
          "snapshot connected";
          "max T-interval";
          "flood mean";
          "flood / log2 n";
        ]
  in
  let log2n = log (float_of_int n) /. log 2. in
  let add name mk =
    let snapshots = Adversarial.Interval.record (mk ()) ~rng:(Prng.Rng.split rng) ~steps:window in
    let first_connected =
      Graph.Traverse.is_connected (Graph.Static.of_edges ~n (List.hd snapshots))
    in
    let t_interval = Adversarial.Interval.max_interval ~n snapshots in
    let m_mean =
      List.fold_left (fun acc s -> acc +. float_of_int (List.length s)) 0. snapshots
      /. float_of_int window
    in
    let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials ~cap:(20 * n) mk in
    Stats.Table.add_row table
      [
        Text name;
        Runner.cell m_mean;
        Text (if first_connected then "yes" else "no");
        Int t_interval;
        Runner.cell stats.mean;
        Fixed (stats.mean /. log2n, 2);
      ]
  in
  add "rotating star (adversarial)" (fun () -> Adversarial.Model.rotating_star ~n);
  add "random matching (memoryless)" (fun () -> Adversarial.Model.random_matching ~rng_hint:() ~n);
  (* Density-matched edge-MEG: stationary edge count = n - 1. *)
  let alpha = float_of_int (n - 1) /. float_of_int (Graph.Pairs.total n) in
  let q = 0.5 in
  let p = q *. alpha /. (1. -. alpha) in
  add "edge-MEG (same density)" (fun () -> Edge_meg.Classic.make ~n ~p ~q ());
  (* n is a power of two at both scales (64 / 256). *)
  add "rotating matching (hypercube dims)" (fun () -> Adversarial.Model.rotating_matching ~n);
  [ table ]

let assess = function
  | [ table ] ->
      let per_log = Stats.Table.column_floats table "flood / log2 n" in
      (* rows: rotating star, random matching, edge-MEG, rotating matching *)
      if Array.length per_log < 4 then [ Assess.check ~label:"expected 4 rows" false ]
      else
        [
          Assess.check ~label:"adversarial star floods in Theta(n), not polylog"
            (per_log.(0) > 3.);
          Assess.check ~label:"random matching floods in O(log n)" (per_log.(1) <= 2.5);
          Assess.check ~label:"edge-MEG floods in O(log n)" (per_log.(2) <= 2.5);
          Assess.check ~label:"rotating matching floods in exactly log2 n"
            (abs_float (per_log.(3) -. 1.) < 0.01);
        ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
