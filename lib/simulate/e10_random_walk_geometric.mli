(** E10 — The geometric random-walk mobility model of the introduction:
    n walkers on an m×m grid, connected within Euclidean radius r.
    Sweeping r through the connectivity threshold shows flooding
    falling from meeting-time-like scales (r small, must co-locate) to
    near-instant (r comparable to L), while per-snapshot isolation
    stays high in the sparse regime. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
