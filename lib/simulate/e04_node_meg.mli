(** E4 — Theorem 3 on synthetic node-MEGs with exactly computable
    P_NM, P_NM2 and η: nodes cycle through k "channels" with random
    restarts; two nodes are connected when their channels are within
    window w. Sweeping k moves the network from dense (nP_NM >> 1) to
    sparse (nP_NM ≈ 1); measured flooding tracks the Theorem 3
    expression. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
