(** E17 — The epoch argument's slack. Theorem 1's proof only looks at
    the dynamic graph at epoch boundaries (times τM, M = the mixing
    time) and discards everything that happens in between. Flooding on
    the epoch-subsampled process, times M, therefore upper-bounds real
    flooding, and the ratio between the two measures exactly how much
    the analysis gives away — the paper's own conclusion ("a more
    refined analysis might be able to bound the flooding time without
    having to wait for the process to achieve stationarity") predicts
    this gap is real. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
