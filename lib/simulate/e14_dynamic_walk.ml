let id = "E14"

let title = "random walks on dynamic graphs: hitting and cover times"

let claim =
  "A lazy walk on a sparse edge-MEG covers every node even though every \
   snapshot is disconnected (a static graph of equal density never does), and \
   cover time grows near-linearly in n at constant per-node density."

let run ~sched ~rng ~scale =
  let trials = Runner.trials scale in
  (* The scorecard's slope check needs more than the default quick
     budget: a two-point fit over 5-trial cover means wanders far
     outside the [0.7, 1.6] band on seed luck alone. Three sizes and
     15 cover trials keep the quick run cheap while the slope
     estimate's spread stays well inside the band. *)
  let cover_trials = Runner.pick scale 15 Runner.(trials Full) in
  let ns = Runner.pick scale [ 32; 64; 128 ] [ 32; 64; 128; 256 ] in
  let c = 2.0 in
  let table =
    Stats.Table.create ~title
      ~columns:
        [ "n"; "model"; "isolated frac"; "mean hitting"; "mean cover"; "cover/(n ln n)" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let p = c /. float_of_int n in
      let cap = 400 * n in
      let add name mk =
        let probe = mk () in
        Core.Dynamic.reset probe (Prng.Rng.split rng);
        let iso = Core.Dynamic.isolated_fraction probe in
        let hit =
          Core.Dyn_walk.mean_hitting_time ~cap ~sched ~rng:(Prng.Rng.split rng) ~trials mk
        in
        let cover =
          Core.Dyn_walk.mean_cover_time ~cap ~sched ~rng:(Prng.Rng.split rng)
            ~trials:cover_trials mk
        in
        let scale_ref = float_of_int n *. log (float_of_int n) in
        if name = "edge-MEG" then points := (float_of_int n, cover) :: !points;
        let capped = cover >= float_of_int cap in
        Stats.Table.add_row table
          [
            Int n;
            Text name;
            Fixed (iso, 3);
            Runner.cell hit;
            (if capped then Text (Printf.sprintf ">%d (never)" cap) else Runner.cell cover);
            (if capped then Missing else Fixed (cover /. scale_ref, 2));
          ]
      in
      add "edge-MEG" (fun () -> Edge_meg.Classic.make ~n ~p ~q:0.5 ());
      (* Static control at the same expected density: frozen G(n, p') with
         p' = the MEG's stationary alpha. The graph is sampled once, up
         front — the builder must return the same process every call. *)
      let alpha = p /. (p +. 0.5) in
      let frozen = Graph.Builders.erdos_renyi ~rng:(Prng.Rng.split rng) ~n ~p:alpha in
      add "static G(n,alpha)" (fun () -> Core.Dynamic.of_static frozen))
    ns;
  let fit = Stats.Regression.loglog !points in
  let verdict =
    Stats.Table.create ~title:"E14 scaling check (edge-MEG cover time)"
      ~columns:[ "quantity"; "value"; "expectation" ]
  in
  Stats.Table.add_row verdict
    [ Text "loglog slope of cover vs n"; Fixed (fit.slope, 3); Text "~1 (n polylog)" ];
  Stats.Table.add_row verdict [ Text "R^2"; Fixed (fit.r2, 3); Text "-" ];
  if fit.dropped > 0 then
    Stats.Table.add_row verdict
      [ Text "dropped points"; Int fit.dropped; Text "non-positive, excluded from fit" ];
  [ table; verdict ]

let assess = function
  | [ main; verdict ] ->
      let slope =
        match Stats.Table.column_floats verdict "value" with [||] -> nan | v -> v.(0)
      in
      [
        Assess.column_range main ~column:"cover/(n ln n)"
          ~label:"dynamic cover time ~ n log n (static rows excluded as capped)" ~lo:0.3
          ~hi:10.;
        Assess.value_in ~label:"cover-vs-n exponent near 1" ~lo:0.7 ~hi:1.6 slope;
      ]
  | _ -> [ Assess.check ~label:"expected 2 tables" false ]
