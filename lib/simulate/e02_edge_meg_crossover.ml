let id = "E2"

let title = "edge-MEG bounds crossover + generalised hidden-chain edges"

let claim =
  "The Theorem 1 instantiation for edge-MEGs matches the specialised Eq. 2 \
   bound up to polylog when q >= np and degrades below; the generalised \
   EM(n,M,chi) model obeys its Theorem 1 bound."

let crossover_table ~sched ~rng ~scale =
  let n = Runner.pick scale 128 512 in
  let c = 0.2 in
  let p = c /. float_of_int n in
  let qs = Runner.pick scale [ 0.05; 0.2; 0.8 ] [ 0.02; 0.05; 0.1; 0.2; 0.4; 0.8 ] in
  let trials = Runner.trials scale in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E2a crossover at np = %.2f (n = %d)" c n)
      ~columns:
        [ "q"; "q/np"; "flood mean"; "Eq.2 bound"; "Thm1 bound"; "Thm1/Eq.2"; "meas/Thm1" ]
  in
  List.iter
    (fun q ->
      let dyn () = Edge_meg.Classic.make ~n ~p ~q () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let eq2 = Theory.Bounds.edge_meg_eq2 ~n ~p in
      let thm1 = Theory.Bounds.edge_meg_general ~n ~p ~q in
      Stats.Table.add_row table
        [
          Runner.cell q;
          Runner.cell (q /. c);
          Runner.cell stats.mean;
          Runner.cell eq2;
          Runner.cell thm1;
          Fixed (thm1 /. eq2, 1);
          Runner.ratio_cell stats.mean thm1;
        ])
    qs;
  table

(* A 4-state hidden edge chain: a lazy cycle 0 -> 1 -> 2 -> 3 -> 0 where
   the edge exists in states 2 and 3. Stationarity is uniform, so
   alpha = 1/2, but dwell times make consecutive snapshots correlated —
   exactly what distinguishes it from per-step Bernoulli edges. *)
let hidden_chain move =
  Markov.Chain.of_rows
    (Array.init 4 (fun s -> [| (s, 1. -. move); ((s + 1) mod 4, move) |]))

let general_table ~sched ~rng ~scale =
  let ns = Runner.pick scale [ 32; 64 ] [ 32; 64; 128; 256 ] in
  let trials = Runner.trials scale in
  let move = 0.25 in
  let chain = hidden_chain move in
  let chi s = s >= 2 in
  let alpha = Edge_meg.General.stationary_alpha ~chain ~chi in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E2b generalised EM(n,M,chi), 4-state chain, alpha = %.2f" alpha)
      ~columns:[ "n"; "flood mean"; "flood sd"; "Thm1 bound"; "meas/bound" ]
  in
  List.iter
    (fun n ->
      let dyn () = Edge_meg.General.make ~n ~chain ~chi () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let bound = Edge_meg.General.bound ~chain ~chi ~n in
      Stats.Table.add_row table
        [
          Int n;
          Runner.cell stats.mean;
          Runner.cell stats.stddev;
          Runner.cell bound;
          Runner.ratio_cell stats.mean bound;
        ])
    ns;
  table

let run ~sched ~rng ~scale =
  [ crossover_table ~sched ~rng ~scale; general_table ~sched ~rng ~scale ]

let assess = function
  | [ crossover; general ] ->
      let ratios = Stats.Table.column_floats crossover "Thm1/Eq.2" in
      let qs = Stats.Table.column_floats crossover "q/np" in
      (* The Thm1/Eq.2 gap should be minimised at the q ~ np row. *)
      let interior_min =
        if Array.length ratios < 3 then false
        else begin
          let best = ref 0 in
          Array.iteri (fun i r -> if r < ratios.(!best) then best := i) ratios;
          qs.(!best) >= 0.4 && qs.(!best) <= 2.5
        end
      in
      [
        Assess.column_range crossover ~column:"meas/Thm1"
          ~label:"measured within the Theorem 1 bound" ~lo:0. ~hi:1.;
        Assess.check ~label:"Thm1/Eq.2 gap minimised near q = np" interior_min;
        Assess.column_range general ~column:"meas/bound"
          ~label:"generalised EM within its bound" ~lo:0. ~hi:1.;
      ]
  | _ -> [ Assess.check ~label:"expected 2 tables" false ]
