let id = "E4"

let title = "node-MEG channel model: Theorem 3 with exact P_NM, eta"

let claim =
  "For the k-channel node-MEG, flooding time stays within the Theorem 3 \
   budget T_mix (1/(n P_NM) + eta)^2 log^3 n across densities, with P_NM \
   and eta computed exactly from the chain."

(* A node's state is a channel 0..k-1; each step it advances to the next
   channel, but with probability eps it jumps to a uniform channel.
   The stationary distribution is uniform; after one jump the state is
   exactly stationary, so t_mix(1/4) <= ln 4 / eps. *)
let channel_chain ~k ~eps =
  let jump = eps /. float_of_int k in
  Markov.Chain.of_rows
    (Array.init k (fun s ->
         Array.append
           [| ((s + 1) mod k, 1. -. eps) |]
           (Array.init k (fun t -> (t, jump)))))

let run ~sched ~rng ~scale =
  let n = Runner.pick scale 96 256 in
  let eps = 0.1 in
  let w = 1 in
  let ks = Runner.pick scale [ 8; 32 ] [ 8; 16; 32; 64; 128 ] in
  let trials = Runner.trials scale in
  let t_mix = log 4. /. eps in
  let table =
    Stats.Table.create ~title
      ~columns:
        [ "k"; "P_NM"; "n*P_NM"; "eta"; "flood mean"; "flood sd"; "Thm3 budget"; "meas/budget" ]
  in
  List.iter
    (fun k ->
      let chain = channel_chain ~k ~eps in
      let connect x y =
        let d = abs (x - y) in
        min d (k - d) <= w
      in
      let p_nm = Node_meg.Model.p_nm ~chain ~connect in
      let eta = Node_meg.Model.eta ~chain ~connect in
      let dyn () = Node_meg.Model.make ~n ~chain ~connect () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let budget = Theory.Bounds.theorem3 ~t_mix ~p_nm ~eta ~n in
      Stats.Table.add_row table
        [
          Int k;
          Runner.cell p_nm;
          Runner.cell (p_nm *. float_of_int n);
          Fixed (eta, 3);
          Runner.cell stats.mean;
          Runner.cell stats.stddev;
          Runner.cell budget;
          Runner.ratio_cell stats.mean budget;
        ])
    ks;
  [ table ]

let assess = function
  | [ table ] ->
      let floods = Array.to_list (Stats.Table.column_floats table "flood mean") in
      [
        Assess.column_range table ~column:"meas/budget"
          ~label:"measured within the Theorem 3 budget" ~lo:0. ~hi:1.;
        Assess.column_range table ~column:"eta" ~label:"eta exactly 1 for the channel model"
          ~lo:0.999 ~hi:1.001;
        Assess.ordered ~label:"flooding grows as density shrinks (k up)" (List.rev floods);
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
