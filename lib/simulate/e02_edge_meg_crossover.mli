(** E2 — Appendix A's ablation: the generalised Theorem 1 bound for
    edge-MEGs, O(1/(p+q) ((p+q)/(np) + 1)² log² n), is almost tight
    precisely when q ≳ np. Sweeping q across the np threshold shows the
    crossover: above it the two bounds agree up to polylog; below it
    the general bound degrades. A second table exercises the
    generalised EM(n, M, χ) machinery with a 4-state hidden chain. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
