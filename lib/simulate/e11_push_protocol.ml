let id = "E11"

let title = "randomised push = flooding on the virtual dynamic graph (Sec. 5)"

let claim =
  "The push-p protocol and flooding on the p-filtered virtual dynamic graph \
   have the same completion-time distribution, and the slowdown over full \
   flooding is mild (O(1/p) at worst)."

let run ~sched ~rng ~scale =
  let trials = Runner.trials scale * 2 in
  let ps = Runner.pick scale [ 1.0; 0.5; 0.25 ] [ 1.0; 0.5; 0.25; 0.1 ] in
  let n_meg = Runner.pick scale 128 256 in
  let p_edge = 2. /. float_of_int n_meg and q_edge = 0.5 in
  let n_wp = Runner.pick scale 64 128 in
  let l = 12. in
  let specs =
    [
      ( "edge-MEG",
        fun () -> Edge_meg.Classic.make ~n:n_meg ~p:p_edge ~q:q_edge () );
      ( "waypoint",
        fun () -> Mobility.Waypoint.dynamic ~n:n_wp ~l ~r:2. ~v_min:1. ~v_max:1.25 () );
    ]
  in
  List.map
    (fun (name, make) ->
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "E11 %s: push protocol vs virtual graph" name)
          ~columns:
            [ "p"; "push mean"; "push sd"; "virtual mean"; "virtual sd"; "slowdown vs p=1" ]
      in
      let full = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials make in
      List.iter
        (fun p ->
          let push =
            Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials
              ~protocol:(Core.Flooding.Push p) make
          in
          let virt =
            Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials (fun () ->
                Core.Dynamic.filter_edges ~p_keep:p (make ()))
          in
          Stats.Table.add_row table
            [
              Runner.cell p;
              Runner.cell push.mean;
              Runner.cell push.stddev;
              Runner.cell virt.mean;
              Runner.cell virt.stddev;
              Fixed (push.mean /. full.mean, 2);
            ])
        ps;
      table)
    specs

let assess tables =
  match tables with
  | [ _; _ ] ->
      List.concat_map
        (fun table ->
          let push = Stats.Table.column_floats table "push mean" in
          let virt = Stats.Table.column_floats table "virtual mean" in
          let push_sd = Stats.Table.column_floats table "push sd" in
          let agree =
            Array.length push = Array.length virt
            && Array.length push > 0
            &&
            let ok = ref true in
            Array.iteri
              (fun i p ->
                let tolerance = Float.max 2. (3. *. Float.max push_sd.(i) 1.) in
                if abs_float (p -. virt.(i)) > tolerance then ok := false)
              push;
            !ok
          in
          [
            Assess.check
              ~label:(Printf.sprintf "%s: push = virtual graph within noise"
                        (Stats.Table.title table))
              agree;
            Assess.ordered
              ~label:(Printf.sprintf "%s: slowdown grows as p drops" (Stats.Table.title table))
              (List.rev (Array.to_list push));
          ])
        tables
  | _ -> [ Assess.check ~label:"expected 2 tables" false ]
