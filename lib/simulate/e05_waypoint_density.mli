(** E5 — Corollary 4's uniformity conditions for the random waypoint:
    the stationary positional density is bounded above by δ/vol(R)
    everywhere and below by 1/(δ·vol(R)) on a constant-fraction central
    region, with absolute-constant δ and λ — despite the strong center
    bias. The random-direction model serves as the near-uniform
    control, and the measured occupancy is compared against the
    analytic product-form waypoint density. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
