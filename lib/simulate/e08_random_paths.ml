let id = "E8"

let title = "random paths on grids (shortest-path family): flooding = O(D polylog)"

let claim =
  "The grid shortest-path family is delta-regular with small delta, and \
   measured flooding divided by the grid diameter D grows only \
   polylogarithmically across grid sizes."

let run ~sched ~rng ~scale =
  let sides = Runner.pick scale [ 6; 8 ] [ 6; 8; 12; 16; 24 ] in
  let trials = Runner.trials scale in
  let table =
    Stats.Table.create ~title
      ~columns:
        [ "grid"; "|V|"; "D"; "delta"; "n"; "flood mean"; "flood/D"; "flood/(D log^2 n)" ]
  in
  let points = ref [] in
  List.iter
    (fun side ->
      let family = Random_path.Family.grid_shortest ~rows:side ~cols:side in
      let s = side * side in
      let n = s in
      let d = 2 * (side - 1) in
      let delta = Random_path.Family.delta_regularity family in
      (* hold = 0.5: lazy stepping breaks the grid's bipartite parity,
         without which opposite-parity nodes never co-locate. *)
      let dyn () = Random_path.Rp_model.make ~hold:0.5 ~n ~family () in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let logn = log (float_of_int n) in
      points := (float_of_int d, stats.mean) :: !points;
      Stats.Table.add_row table
        [
          Text (Printf.sprintf "%dx%d" side side);
          Int s;
          Int d;
          Fixed (delta, 3);
          Int n;
          Runner.cell stats.mean;
          Fixed (stats.mean /. float_of_int d, 2);
          Fixed (stats.mean /. (float_of_int d *. logn *. logn), 3);
        ])
    sides;
  let fit = Stats.Regression.loglog !points in
  let verdict =
    Stats.Table.create ~title:"E8 scaling check"
      ~columns:[ "quantity"; "value"; "expectation" ]
  in
  Stats.Table.add_row verdict
    [
      Text "loglog slope of flood vs D";
      Fixed (fit.slope, 3);
      Text "~1 (linear in diameter, plus polylog)";
    ];
  Stats.Table.add_row verdict [ Text "R^2"; Fixed (fit.r2, 3); Text "-" ];
  if fit.dropped > 0 then
    Stats.Table.add_row verdict
      [ Text "dropped points"; Int fit.dropped; Text "non-positive, excluded from fit" ];
  [ table; verdict ]

let assess = function
  | [ main; verdict ] ->
      let slope =
        match Stats.Table.column_floats verdict "value" with [||] -> nan | v -> v.(0)
      in
      [
        Assess.column_range main ~column:"delta"
          ~label:"shortest-path family delta-regular with small delta" ~lo:1. ~hi:2.;
        Assess.column_range main ~column:"flood/D"
          ~label:"flooding within polylog of the diameter" ~lo:0.5 ~hi:6.;
        Assess.value_in ~label:"flooding-vs-D exponent near 1" ~lo:0.55 ~hi:1.3 slope;
      ]
  | _ -> [ Assess.check ~label:"expected 2 tables" false ]
