let id = "E3"

let title = "(M, alpha, beta)-stationarity measured on sparse models"

let claim =
  "Sparse disconnected snapshots (large isolated fraction) still satisfy the \
   density and beta-independence conditions, and measured flooding stays \
   within the Theorem 1 budget built from the measured parameters."

type model_spec = {
  name : string;
  n : int;
  dyn : unit -> Core.Dynamic.t;  (* fresh instance per call *)
  m_epochs : float;  (* epoch length: the model's mixing-time scale *)
}

let models ~scale =
  let n_meg = Runner.pick scale 128 256 in
  let p = 1.5 /. float_of_int n_meg and q = 0.5 in
  let meg =
    {
      name = "edge-MEG p=1.5/n q=.5";
      n = n_meg;
      dyn = (fun () -> Edge_meg.Classic.make ~n:n_meg ~p ~q ());
      m_epochs = float_of_int (Markov.Two_state.mixing_time (Markov.Two_state.make ~p ~q));
    }
  in
  let n_wp = Runner.pick scale 48 96 in
  let l = sqrt (float_of_int n_wp) *. 1.5 in
  let wp =
    {
      name = "waypoint sparse";
      n = n_wp;
      dyn = (fun () -> Mobility.Waypoint.dynamic ~n:n_wp ~l ~r:1.0 ~v_min:1.0 ~v_max:1.25 ());
      m_epochs = Mobility.Waypoint.mixing_time_formula ~l ~v_max:1.25;
    }
  in
  [ meg; wp ]

let run ~sched ~rng ~scale =
  let trials = Runner.trials scale in
  let snapshots = Runner.pick scale 200 600 in
  let table =
    Stats.Table.create ~title
      ~columns:
        [
          "model";
          "n";
          "alpha_hat*n";
          "beta_hat";
          "isolated frac";
          "flood mean";
          "Thm1 budget";
          "meas/budget";
        ]
  in
  List.iter
    (fun spec ->
      let est =
        Core.Stationarity.estimate ~rng:(Prng.Rng.split rng) ~snapshots (spec.dyn ())
      in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials spec.dyn in
      (* Guard against a zero alpha_hat (finite sample): fall back to the
         mean edge probability, which is exact for exchangeable models. *)
      let alpha = if est.alpha_hat > 0. then est.alpha_hat else est.alpha_mean in
      let beta = Float.max est.beta_hat 1. in
      let budget =
        Theory.Bounds.theorem1 ~m:spec.m_epochs ~alpha ~beta ~n:spec.n
      in
      Stats.Table.add_row table
        [
          Text spec.name;
          Int spec.n;
          Runner.cell (alpha *. float_of_int spec.n);
          Runner.cell beta;
          Fixed (est.isolated_mean, 3);
          Runner.cell stats.mean;
          Runner.cell budget;
          Runner.ratio_cell stats.mean budget;
        ])
    (models ~scale);
  [ table ]

let assess = function
  | [ table ] ->
      [
        Assess.column_range table ~column:"meas/budget"
          ~label:"measured within the Theorem 1 budget" ~lo:0. ~hi:1.;
        Assess.all_column table ~column:"isolated frac"
          ~label:"snapshots genuinely sparse (isolated nodes present)" (fun v -> v > 0.01);
        Assess.column_range table ~column:"beta_hat"
          ~label:"beta-independence holds with small constant" ~lo:0.5 ~hi:5.;
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
