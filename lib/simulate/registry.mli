(** The experiment registry: every claim-reproduction experiment of
    DESIGN.md, addressable by id, runnable from the CLI and from the
    benchmark harness, each with machine-checkable assessments.

    All entry points take an {!Exec.scheduler}. [run_all], [verify] and
    {!Export.export_all} distribute whole experiments over the pool
    (each with per-experiment output buffered and emitted in registry
    order), while a single experiment parallelises its own trial plans —
    either way the rendered bytes are identical for every worker count,
    because every trial's randomness is a substream indexed by its
    position, never by schedule (see {!Exec}). *)

type experiment = {
  id : string;           (** "E1" .. "E18" *)
  title : string;
  claim : string;
  run :
    sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list;
  plan : (rng:Prng.Rng.t -> scale:Runner.scale -> Trial_plan.t) option;
      (** the experiment's trial bags as data, when it has been
          converted ({!wrap_planned}); [run] is then derived from the
          plan and a single experiment can shard across an
          {!Exec.procs} fleet instead of degrading to the domain pool *)
  assess : Stats.Table.t list -> Assess.check list;
      (** shape checks over the tables produced by [run] *)
}

val all : experiment list
(** In id order. *)

val find : string -> experiment option
(** Case-insensitive lookup by id. *)

(** {2 Trial shards over the wire}

    A planned experiment's {!Trial_plan.t} executes as one spec'd
    {!Exec} plan over its shards. Each shard's job spec payload —
    tagged with a leading ['T'] so {!Fleet.dispatch} can route it —
    carries the experiment id, the experiment generator's
    {!Prng.Rng.state_bits} captured before plan construction, the
    scale, and the shard index; a worker rebuilds the identical plan
    and runs just that shard. Codec exposed for the round-trip tests. *)

val encode_trial_payload :
  id:string -> bits:int64 * int64 -> scale:Runner.scale -> shard:int -> string

val decode_trial_payload : string -> string * (int64 * int64) * Runner.scale * int
(** Inverse of {!encode_trial_payload}; raises [Exec.Spec.Buf.Corrupt]
    on truncated, tagless or oversized input. *)

val dispatch_trial : spec_id:string -> payload:string -> string
(** Worker side of one trial shard: decode the payload, rebuild the
    experiment's plan (with construction-time metrics suppressed — the
    parent already charged them once), run the shard, and encode its
    result with {!Trial_plan.encode_result}. [spec_id] must be the
    ["<id>.t<shard>"] name the parent generated. *)

val experiment_rng : Prng.Rng.t -> int -> Prng.Rng.t
(** [experiment_rng rng i] is the generator for the [i]-th registry
    entry: substream [1000 + i] of [rng]. The single seeding scheme
    behind [run_all], [verify] and CSV export — all of them produce the
    same numbers for the same seed. *)

type render =
  | Full       (** header, claim, tables, scorecard *)
  | Scorecard  (** scorecard only (the [verify] view) *)

val render_one :
  ?render:render ->
  sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  experiment ->
  string * bool
(** Run one experiment and render it to a string; returns whether all
    checks passed. The building block every printing entry point shares. *)

type outcome = {
  experiment : experiment;
  output : string;       (** rendered tables / scorecard *)
  ok : bool;             (** all assessments passed *)
  seconds : float;       (** wall-clock duration (0. without a clock) *)
  metrics : (string * int) list;
      (** counter deltas attributed to this experiment by
          {!Obs.Metrics.with_scope} — deterministic work totals like
          ["flood.rounds"], sorted by name; empty when metrics are
          disabled *)
}

val rendered_outcome :
  ?clock:(unit -> float) ->
  render:render ->
  sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  experiment ->
  string * bool * float * (string * int) list
(** The complete per-experiment job body shared by {!run_each} and by
    fleet workers ({!Fleet}): counts [sim.experiments], brackets the run
    with [exp.start] / [exp.end] trace events, renders under a
    {!Obs.Metrics.with_scope} attribution scope, and measures duration
    with [clock] (reported as [0.] without one). Returns
    [(output, ok, seconds, metrics)]. Running it worker-side is what
    keeps counters and trace output identical across process
    boundaries. *)

val single_outcome :
  ?clock:(unit -> float) ->
  ?render:render ->
  ?sched:Exec.scheduler ->
  seed:int ->
  scale:Runner.scale ->
  experiment ->
  string * bool * float * (string * int) list
(** {!rendered_outcome} with the single-experiment seeding scheme:
    the generator is [Prng.Rng.of_seed seed] directly, exactly as the
    CLI [run <id> --seed S] seeds it. The serve daemon executes [run]
    requests through this helper, which is what makes a service
    response byte-identical to the equivalent batch CLI invocation.
    [render] defaults to [Full], [sched] to [Exec.sequential]. *)

val run_each :
  ?render:render ->
  ?sched:Exec.scheduler ->
  ?clock:(unit -> float) ->
  ?spec:(int -> outcome Exec.Spec.t) ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  unit ->
  outcome list
(** Run every experiment (concurrently under a pool scheduler), each
    seeded with {!experiment_rng}; results are returned in registry
    order with their rendered output and wall-clock duration in
    seconds. Durations are measured with [clock] (e.g.
    [Unix.gettimeofday]); without one they are reported as [0.] —
    the library takes no clock dependency of its own. When tracing is
    enabled, each experiment is bracketed by [exp.start] / [exp.end]
    events carrying its id.

    [spec] (typically {!Fleet.specs}) makes the plan serializable so an
    {!Exec.procs} scheduler can shard experiments over worker processes;
    without it a [procs] scheduler degrades to the domain pool. *)

val run_one :
  ?out:out_channel ->
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  experiment ->
  bool
(** Run one experiment, print claim, tables and scorecard to [out]
    (default stdout); returns whether all checks passed. *)

val run_all :
  ?out:out_channel ->
  ?sched:Exec.scheduler ->
  ?spec:(int -> outcome Exec.Spec.t) ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  unit ->
  bool
(** Run every experiment, then print an overall reproduction summary;
    returns whether every check of every experiment passed. *)

val run_all_timed :
  ?out:out_channel ->
  ?sched:Exec.scheduler ->
  ?clock:(unit -> float) ->
  ?spec:(int -> outcome Exec.Spec.t) ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  unit ->
  bool * outcome list
(** [run_all] plus the per-experiment outcomes (see {!run_each} for the
    [clock] contract). The printed bytes are identical to {!run_all} at
    the same seed; the extra data feeds the benchmark harness's
    machine-readable baseline ([--json]). *)

val verify :
  ?out:out_channel ->
  ?sched:Exec.scheduler ->
  ?spec:(int -> outcome Exec.Spec.t) ->
  rng:Prng.Rng.t ->
  scale:Runner.scale ->
  unit ->
  int
(** Run every experiment but print only the scorecards; returns the
    number of experiments with failing checks. Shares [run_each] with
    [run_all], so its scorecards match a [run_all] at the same seed
    line for line. *)
