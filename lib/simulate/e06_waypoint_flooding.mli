(** E6 — The paper's headline application: flooding time of the random
    waypoint over a square. Two sweeps: (i) L = √n with constant r, v —
    the sparse, highly-disconnected MANET regime — where the bound
    O((√n/v) log³ n) predicts a near-√n growth; (ii) speed sweep at
    fixed n, where flooding should scale as 1/v. A Manhattan-trajectory
    ablation shows the bound is insensitive to trajectory shape
    (the paper's generality claim vs. the ad-hoc analysis of [13]). *)

val id : string
val title : string
val claim : string

val plan : rng:Prng.Rng.t -> scale:Runner.scale -> Trial_plan.t
(** The experiment's trial bags as data (speed-sweep bags first,
    matching the historical rng-split order), so a single E6 run can
    shard across a fleet — see {!Trial_plan}. *)

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by the plan's render. *)
