let id = "E18"

let title = "exact discretised waypoint: Theorem 3 premises verified, not estimated"

let claim =
  "For the paper's own Section 4.1 discretisation (an explicit (position, \
   destination) node chain), the exactly-computed eta is a small constant, \
   measured flooding sits inside the exact Theorem 3 budget, and the direct \
   eta is far smaller than Corollary 4's delta^6/lambda^2 route — the \
   corollary trades tightness for checkability."

let run ~sched ~rng ~scale =
  let ms = Runner.pick scale [ 4; 6 ] [ 4; 6; 8 ] in
  let trials = Runner.trials scale in
  let n = Runner.pick scale 48 96 in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "%s (n = %d nodes, r = 1.5)" title n)
      ~columns:
        [
          "m";
          "states";
          "P_NM";
          "eta (exact)";
          "Cor4 d^6/l^2";
          "T_mix (spectral)";
          "flood mean";
          "Thm3 budget";
          "meas/budget";
        ]
  in
  List.iter
    (fun m ->
      let dw = Mobility.Discrete_waypoint.build ~m ~r:1.5 in
      let p_nm = Mobility.Discrete_waypoint.p_nm dw in
      let eta = Mobility.Discrete_waypoint.eta dw in
      let cor4_eta = Mobility.Discrete_waypoint.corollary4_eta_bound dw in
      let t_mix =
        Markov.Spectral.mixing_time_upper (Mobility.Discrete_waypoint.chain dw)
      in
      let dyn () = Mobility.Discrete_waypoint.dynamic ~n dw in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let budget = Theory.Bounds.theorem3 ~t_mix ~p_nm ~eta ~n in
      Stats.Table.add_row table
        [
          Int m;
          Int (Mobility.Discrete_waypoint.n_states dw);
          Runner.cell p_nm;
          Fixed (eta, 3);
          Fixed (cor4_eta, 1);
          Runner.cell t_mix;
          Runner.cell stats.mean;
          Runner.cell budget;
          Runner.ratio_cell stats.mean budget;
        ])
    ms;
  [ table ]

let assess = function
  | [ table ] ->
      let etas = Stats.Table.column_floats table "eta (exact)" in
      let cor4 = Stats.Table.column_floats table "Cor4 d^6/l^2" in
      let dominated =
        Array.length etas = Array.length cor4
        && Array.for_all2 (fun e c -> c >= e) etas cor4
      in
      [
        Assess.column_range table ~column:"eta (exact)"
          ~label:"exact eta is a small constant" ~lo:0.9 ~hi:10.;
        Assess.column_range table ~column:"meas/budget"
          ~label:"measured flooding within the exact Theorem 3 budget" ~lo:0. ~hi:1.;
        Assess.check ~label:"Corollary 4's eta route upper-bounds the exact eta" dominated;
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
