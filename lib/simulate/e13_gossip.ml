let id = "E13"

let title = "gossip variants (push / pull / push-pull) vs flooding"

let claim =
  "Single-contact gossip protocols on dynamic graphs behave as flooding on a \
   sparser virtual process: push-pull finishes within a small factor of full \
   flooding at a fraction of the message cost."

let gossip_stats ~sched ~rng ~trials ~variant make =
  let n = Core.Dynamic.n (make ()) in
  let cap = 10_000 + (200 * n) in
  let times = Stats.Summary.create () in
  let msgs = Stats.Summary.create () in
  let trial_rngs = Array.init trials (Prng.Rng.substream rng) in
  let results =
    Exec.map sched ~jobs:trials (fun i ->
        Core.Gossip.run ~cap ~variant ~rng:trial_rngs.(i) ~source:0 (make ()))
  in
  Array.iter
    (fun (r : Core.Gossip.result) ->
      Stats.Summary.add times (float_of_int (match r.time with Some t -> t | None -> cap));
      Stats.Summary.add msgs (float_of_int r.contacts))
    results;
  (times, msgs)

let flood_messages ~rng dyn =
  (* Flooding's message cost per completed run: 2 messages per edge per
     step (both endpoints transmit). *)
  Core.Dynamic.reset dyn (Prng.Rng.split rng);
  let r = Core.Flooding.run ~rng ~source:0 dyn in
  match r.time with
  | None -> nan
  | Some t ->
      Core.Dynamic.reset dyn (Prng.Rng.split rng);
      let total = ref 0 in
      for _ = 1 to t do
        total := !total + (2 * Core.Dynamic.edge_count dyn);
        Core.Dynamic.step dyn
      done;
      float_of_int !total

let run ~sched ~rng ~scale =
  let trials = Runner.trials scale in
  let n_meg = Runner.pick scale 128 512 in
  let n_wp = Runner.pick scale 64 192 in
  let specs =
    [
      ( Printf.sprintf "edge-MEG n=%d c=8" n_meg,
        fun () -> Edge_meg.Classic.make ~n:n_meg ~p:(8. /. float_of_int n_meg) ~q:0.5 () );
      ( Printf.sprintf "waypoint n=%d" n_wp,
        fun () ->
          Mobility.Waypoint.dynamic ~n:n_wp
            ~l:(sqrt (float_of_int n_wp))
            ~r:1.5 ~v_min:1. ~v_max:1.25 () );
    ]
  in
  List.map
    (fun (name, make) ->
      let table =
        Stats.Table.create
          ~title:(Printf.sprintf "E13 %s" name)
          ~columns:[ "protocol"; "rounds mean"; "rounds sd"; "messages mean" ]
      in
      let flood = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials make in
      let flood_msg = flood_messages ~rng:(Prng.Rng.split rng) (make ()) in
      Stats.Table.add_row table
        [ Text "flooding"; Runner.cell flood.mean; Runner.cell flood.stddev;
          Runner.cell flood_msg ];
      List.iter
        (fun (pname, variant) ->
          let times, msgs =
            gossip_stats ~sched ~rng:(Prng.Rng.split rng) ~trials ~variant make
          in
          Stats.Table.add_row table
            [
              Text pname;
              Runner.cell (Stats.Summary.mean times);
              Runner.cell (Stats.Summary.stddev times);
              Runner.cell (Stats.Summary.mean msgs);
            ])
        [
          ("push", Core.Gossip.Push);
          ("pull", Core.Gossip.Pull);
          ("push-pull", Core.Gossip.Push_pull);
        ];
      table)
    specs

let assess tables =
  match tables with
  | [ _; _ ] ->
      List.concat_map
        (fun table ->
          let rounds = Stats.Table.column_floats table "rounds mean" in
          let messages = Stats.Table.column_floats table "messages mean" in
          let name = Stats.Table.title table in
          if Array.length rounds < 4 || Array.length messages < 4 then
            [ Assess.check ~label:(name ^ ": expected 4 rows") false ]
          else
            [
              (* rows: flooding, push, pull, push-pull *)
              Assess.check
                ~label:(name ^ ": push-pull within 5x of flooding rounds")
                (rounds.(3) <= 5. *. Float.max rounds.(0) 1.);
              Assess.check
                ~label:(name ^ ": gossip uses fewer messages than flooding")
                (messages.(1) < messages.(0) && messages.(3) < messages.(0));
              Assess.check
                ~label:(name ^ ": push-pull no slower than push")
                (rounds.(3) <= rounds.(1) +. 1.);
            ])
        tables
  | _ -> [ Assess.check ~label:"expected 2 tables" false ]
