(** E3 — Theorem 1's conditions measured in vivo: the empirical density
    α̂, independence β̂ and per-snapshot isolated-node fraction for a
    sparse edge-MEG and a sparse waypoint network. The reproduced
    claim: even with a large constant fraction of isolated nodes per
    snapshot (highly disconnected snapshots), flooding completes within
    the Theorem 1 budget computed from the measured (M, α̂, β̂). *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
