let id = "E9"

let title = "k-augmented grids: Corollary 6 beats the meeting-time baseline"

let claim =
  "On k-augmented grids, measured flooding and walk mixing decrease ~k^2 \
   while the two-walk meeting time stays flat, so the Cor. 6 bound improves \
   with k and the O(T* log n) baseline of [15] cannot."

let run ~sched ~rng ~scale =
  let side = Runner.pick scale 12 16 in
  let ks = Runner.pick scale [ 1; 2; 4 ] [ 1; 2; 3; 4; 6 ] in
  let trials = Runner.trials scale in
  let meeting_trials = Runner.pick scale 10 40 in
  let s = side * side in
  let n = s in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "%s (grid %dx%d, n = %d walkers)" title side side n)
      ~columns:
        [
          "k";
          "deg ratio";
          "T_mix (walk)";
          "flood mean";
          "flood k^2 (norm)";
          "meeting T*";
          "baseline T* ln n";
        ]
  in
  List.iter
    (fun k ->
      let h = Graph.Builders.augmented_grid ~rows:side ~cols:side ~k in
      let delta = Graph.Static.degree_regularity h in
      let t_mix =
        match Markov.Chain.mixing_time ~max_t:4000 (Markov.Walk.lazy_chain h) with
        | Some t -> float_of_int t
        | None -> nan
      in
      let dyn () = Random_path.Rp_model.random_walk ~n h in
      let stats = Runner.flood ~sched ~rng:(Prng.Rng.split rng) ~trials dyn in
      let meeting =
        Markov.Walk.mean_meeting_time ~rng:(Prng.Rng.split rng) ~trials:meeting_trials h
      in
      Stats.Table.add_row table
        [
          Int k;
          Fixed (delta, 2);
          Runner.cell t_mix;
          Runner.cell stats.mean;
          Runner.cell (stats.mean *. float_of_int (k * k));
          Runner.cell meeting;
          Runner.cell (Theory.Bounds.dimitriou_baseline ~meeting_time:meeting ~n);
        ])
    ks;
  [ table ]

let assess = function
  | [ table ] ->
      let t_mix = Array.to_list (Stats.Table.column_floats table "T_mix (walk)") in
      let floods = Stats.Table.column_floats table "flood mean" in
      let baselines = Stats.Table.column_floats table "baseline T* ln n" in
      let baseline_never_explains =
        Array.length floods = Array.length baselines
        && Array.for_all2 (fun f b -> b > 2. *. f) floods baselines
      in
      [
        Assess.ordered ~label:"mixing time strictly decreases with k" ~strict:true t_mix;
        Assess.ordered ~label:"measured flooding decreases with k"
          (Array.to_list floods);
        Assess.check ~label:"the [15] baseline stays far above measured flooding"
          baseline_never_explains;
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
