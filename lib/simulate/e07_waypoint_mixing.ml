let id = "E7"

let title = "waypoint mixing time is Theta(L/v)"

let claim =
  "The TV distance of the waypoint positional distribution from its \
   stationary profile drops below 1/4 after c * L/v steps with c constant \
   across L and v."

let run ~sched:_ ~rng ~scale =
  let configs =
    Runner.pick scale
      [ (8., 1.); (16., 1.); (16., 2.) ]
      [ (8., 1.); (16., 1.); (32., 1.); (16., 0.5); (16., 2.) ]
  in
  let replicas = Runner.pick scale 800 3000 in
  let table =
    Stats.Table.create ~title
      ~columns:[ "L"; "v"; "L/v"; "t_mix(1/4)"; "t_mix/(L/v)"; "TV at L/v"; "TV at 4L/v" ]
  in
  List.iter
    (fun (l, v) ->
      let scale_steps = l /. v in
      let checkpoints =
        List.map
          (fun mult -> int_of_float (ceil (mult *. scale_steps)))
          [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]
      in
      let make () =
        Mobility.Waypoint.create ~init:Corner ~n:1 ~l ~r:1. ~v_min:v ~v_max:(1.25 *. v) ()
      in
      let curve =
        Mobility.Mixing.measure ~make ~rng:(Prng.Rng.split rng) ~replicas ~checkpoints ()
      in
      let tv_at mult =
        let t = int_of_float (ceil (mult *. scale_steps)) in
        match List.assoc_opt t curve.checkpoints with Some tv -> tv | None -> nan
      in
      let t_mix_cell, ratio_cell =
        match curve.t_mix with
        | Some t ->
            (Stats.Table.Int t, Stats.Table.Fixed (float_of_int t /. scale_steps, 2))
        | None -> (Stats.Table.Text ">max", Stats.Table.Missing)
      in
      Stats.Table.add_row table
        [
          Runner.cell l;
          Runner.cell v;
          Runner.cell scale_steps;
          t_mix_cell;
          ratio_cell;
          Fixed (tv_at 1.0, 3);
          Fixed (tv_at 4.0, 3);
        ])
    configs;
  [ table ]

let assess = function
  | [ table ] ->
      [
        Assess.column_range table ~column:"t_mix/(L/v)"
          ~label:"mixing time linear in L/v with O(1) constant" ~lo:0.25 ~hi:4.;
        Assess.all_column table ~column:"TV at 4L/v"
          ~label:"well-mixed after a few L/v" (fun v -> v < 0.3);
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
