let id = "E12"

let title = "phase structure: doubling spreading phase, short saturation"

let claim =
  "Across models, |I_t| doubles in a bounded number of steps until n/2 \
   (Lemma 13) and the saturation tail is comparable to one doubling period \
   times log n (Lemma 14)."

let run ~sched ~rng ~scale =
  let trials = max 3 (Runner.trials scale / 2) in
  let n_meg = Runner.pick scale 256 1024 in
  let n_wp = Runner.pick scale 96 256 in
  let l = sqrt (float_of_int n_wp) in
  let side = Runner.pick scale 8 12 in
  let specs =
    [
      ( "edge-MEG p=1/n q=.3",
        n_meg,
        fun () ->
          Edge_meg.Classic.make ~n:n_meg ~p:(1. /. float_of_int n_meg) ~q:0.3 () );
      ( "waypoint sparse",
        n_wp,
        fun () -> Mobility.Waypoint.dynamic ~n:n_wp ~l ~r:1.5 ~v_min:1. ~v_max:1.25 () );
      ( "random paths grid",
        side * side,
        fun () ->
          Random_path.Rp_model.make ~hold:0.5 ~n:(side * side)
            ~family:(Random_path.Family.grid_shortest ~rows:side ~cols:side)
            () );
    ]
  in
  let table =
    Stats.Table.create ~title
      ~columns:
        [
          "model";
          "n";
          "total mean";
          "spread mean";
          "saturate mean";
          "max doubling gap";
          "saturate/spread";
        ]
  in
  List.iter
    (fun (name, n, make) ->
      let totals = Stats.Summary.create () in
      let spreads = Stats.Summary.create () in
      let saturates = Stats.Summary.create () in
      let gaps = Stats.Summary.create () in
      let trial_rngs = Array.init trials (Prng.Rng.substream rng) in
      let results =
        Exec.map sched ~jobs:trials (fun i ->
            Core.Flooding.run ~rng:trial_rngs.(i) ~source:0 (make ()))
      in
      Array.iter
        (fun (result : Core.Flooding.result) ->
          match result.time with
          | None -> ()
          | Some t ->
              let a = Core.Phases.analyze ~n result.trajectory in
              Stats.Summary.add totals (float_of_int t);
              Option.iter
                (fun s -> Stats.Summary.add spreads (float_of_int s))
                a.spreading_time;
              Option.iter
                (fun s -> Stats.Summary.add saturates (float_of_int s))
                a.saturation_time;
              Option.iter (fun g -> Stats.Summary.add gaps (float_of_int g)) a.max_doubling_gap)
        results;
      let mean s = Stats.Summary.mean s in
      Stats.Table.add_row table
        [
          Text name;
          Int n;
          Runner.cell (mean totals);
          Runner.cell (mean spreads);
          Runner.cell (mean saturates);
          Runner.cell (mean gaps);
          Fixed (mean saturates /. Float.max 1. (mean spreads), 2);
        ])
    specs;
  [ table ]

let assess = function
  | [ table ] ->
      [
        Assess.column_range table ~column:"saturate/spread"
          ~label:"saturation comparable to spreading (Lemma 14)" ~lo:0.1 ~hi:3.;
        Assess.all_column table ~column:"max doubling gap"
          ~label:"doubling gaps stay bounded (Lemma 13)" (fun v -> v <= 10.);
      ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
