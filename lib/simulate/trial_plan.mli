(** Serialisable trial plans: an experiment's trial bags as data.

    A plan is an array of {!bag}s — independent batches of seeded
    trials, each producing one float — plus a pure [render] function
    from the per-bag result arrays to the experiment's tables. Because
    the bags (and therefore the {!shards} cut from them) are a function
    of the plan alone, a worker process that rebuilds the plan from the
    experiment's id, rng state bits and scale derives exactly the shard
    list the parent enumerated, and the parent's merge by (bag, trial)
    index keeps rendered output byte-identical at every [--jobs] /
    [--procs] setting. See DESIGN.md §13. *)

type bag = {
  label : string;  (** names the bag in shard spec ids and errors *)
  trials : int;    (** must be >= 1 *)
  rng : Prng.Rng.t;
      (** the bag's generator; trial [i] draws from [substream rng i] *)
  run_trial : Prng.Rng.t -> float;  (** one seeded trial *)
}

type t = {
  bags : bag array;
  render : float array array -> Stats.Table.t list;
      (** pure function of the per-bag trial results, in bag order *)
}

type shard = { bag : int; lo : int; hi : int }
(** Trials [lo, hi) of bag [bag] — bag-local trial coordinates. *)

val max_shard_trials : int
(** Upper bound on trials per shard (8). *)

val shards : t -> shard array
(** The plan's shard list: every bag split into runs of at most
    {!max_shard_trials} consecutive trials, never crossing a bag
    boundary, in (bag, trial) order. Deterministic in the plan — never
    a function of worker count. Raises [Invalid_argument] on a bag
    with fewer than one trial. *)

val run_shard : t -> shard -> float array
(** Execute one shard's trials in index order. *)

val encode_result : float array -> string
(** Binary codec for a shard's result (length-prefixed IEEE-754 bit
    patterns, {!Exec.Spec.Buf} conventions). *)

val decode_result : string -> float array
(** Inverse of {!encode_result}. Raises [Exec.Spec.Buf.Corrupt] on
    truncated or oversized input. *)

val execute :
  ?spec:(int -> float array Exec.Spec.t) -> sched:Exec.scheduler -> t -> Stats.Table.t list
(** Run the whole plan as one {!Exec} plan over its shards and render.
    With [spec] (see {!Registry}) the plan is serialisable, so an
    {!Exec.procs} scheduler shards it across worker processes; every
    other scheduler runs the shards in-process. *)
