type experiment = {
  id : string;
  title : string;
  claim : string;
  run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list;
  plan : (rng:Prng.Rng.t -> scale:Runner.scale -> Trial_plan.t) option;
  assess : Stats.Table.t list -> Assess.check list;
}

module type EXPERIMENT = sig
  val id : string
  val title : string
  val claim : string
  val run :
    sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list
  val assess : Stats.Table.t list -> Assess.check list
end

module type PLANNED = sig
  val id : string
  val title : string
  val claim : string
  val plan : rng:Prng.Rng.t -> scale:Runner.scale -> Trial_plan.t
  val assess : Stats.Table.t list -> Assess.check list
end

let wrap (module E : EXPERIMENT) =
  { id = E.id; title = E.title; claim = E.claim; run = E.run; plan = None; assess = E.assess }

(* ---- trial shards over the wire ------------------------------------- *)

module B = Exec.Spec.Buf

(* A trial-shard payload carries what a worker needs to rebuild the
   plan and locate the shard: the experiment id, the experiment
   generator's state bits (captured *before* plan construction, so the
   worker's rebuilt generator performs the same splits), the scale, and
   the shard index into the deterministic [Trial_plan.shards] list.
   The leading 'T' distinguishes it from whole-experiment payloads
   (tagged 'X' by Fleet) on the shared worker dispatcher. *)
let encode_trial_payload ~id ~bits ~scale ~shard =
  let state, gamma = bits in
  let b = Buffer.create 48 in
  Buffer.add_char b 'T';
  B.add_string b id;
  B.add_int64 b state;
  B.add_int64 b gamma;
  B.add_int b (Runner.scale_to_int scale);
  B.add_int b shard;
  Buffer.contents b

let decode_trial_payload payload =
  let r = B.reader payload in
  (match B.char r with
  | 'T' -> ()
  | c -> raise (B.Corrupt (Printf.sprintf "trial payload: bad tag %C" c)));
  let id = B.string r in
  let state = B.int64 r in
  let gamma = B.int64 r in
  let scale =
    match B.int r with
    | 0 -> Runner.Quick
    | 1 -> Runner.Full
    | 2 -> Runner.Large
    | n -> raise (B.Corrupt (Printf.sprintf "trial payload: bad scale %d" n))
  in
  let shard = B.int r in
  if not (B.at_end r) then raise (B.Corrupt "trial payload: trailing bytes");
  (id, (state, gamma), scale, shard)

let trial_spec ~id ~bits ~scale shard =
  {
    Exec.Spec.id = Printf.sprintf "%s.t%d" id shard;
    payload = encode_trial_payload ~id ~bits ~scale ~shard;
    decode = Trial_plan.decode_result;
  }

(* Run [f] with the metric counters suppressed, restoring the previous
   state. Worker-side plan *reconstruction* runs under this: the parent
   already charged the construction-time work (rng splits, sizing
   builds) when it built the plan once, so charging it again in every
   worker would make --procs metrics diverge from --jobs. *)
let without_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.disable ();
  Fun.protect ~finally:(fun () -> if was then Obs.Metrics.enable ()) f

(* The run derived for a planned experiment: capture the generator's
   bits, build the plan (advancing the generator exactly as the
   closure-based run would), and execute it as one spec'd Exec plan
   over the shards — which is what lets a *single* experiment shard
   across a --procs fleet instead of degrading to the domain pool. *)
let planned_run ~id ~make_plan ~sched ~rng ~scale =
  let bits = Prng.Rng.state_bits rng in
  let p = make_plan ~rng ~scale in
  Trial_plan.execute ~spec:(trial_spec ~id ~bits ~scale) ~sched p

let wrap_planned (module P : PLANNED) =
  {
    id = P.id;
    title = P.title;
    claim = P.claim;
    run = (fun ~sched ~rng ~scale -> planned_run ~id:P.id ~make_plan:P.plan ~sched ~rng ~scale);
    plan = Some P.plan;
    assess = P.assess;
  }

let all =
  [
    wrap_planned (module E01_edge_meg_scaling);
    wrap (module E02_edge_meg_crossover);
    wrap (module E03_stationarity_conditions);
    wrap (module E04_node_meg);
    wrap (module E05_waypoint_density);
    wrap_planned (module E06_waypoint_flooding);
    wrap (module E07_waypoint_mixing);
    wrap (module E08_random_paths);
    wrap (module E09_augmented_grid);
    wrap (module E10_random_walk_geometric);
    wrap (module E11_push_protocol);
    wrap (module E12_phases);
    wrap (module E13_gossip);
    wrap (module E14_dynamic_walk);
    wrap (module E15_worst_case);
    wrap (module E16_disk_region);
    wrap (module E17_epoch_slack);
    wrap (module E18_discrete_waypoint);
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all

(* Worker side of a trial shard: rebuild the plan from the payload and
   run just the named shard. The trial work itself (substream
   derivations, flooding counters) runs with metrics live — those
   deltas are this shard's contribution, absorbed by the parent — while
   reconstruction is suppressed (see [without_metrics]). *)
let dispatch_trial ~spec_id ~payload =
  let id, bits, scale, shard = decode_trial_payload payload in
  let expected = Printf.sprintf "%s.t%d" id shard in
  if spec_id <> expected then
    failwith
      (Printf.sprintf "Registry.dispatch_trial: spec id %S names shard %S" spec_id expected);
  match find id with
  | None -> failwith (Printf.sprintf "Registry.dispatch_trial: unknown experiment %S" id)
  | Some { plan = None; _ } ->
      failwith (Printf.sprintf "Registry.dispatch_trial: %S has no trial plan" id)
  | Some { plan = Some make_plan; _ } ->
      let p =
        without_metrics (fun () -> make_plan ~rng:(Prng.Rng.of_state_bits bits) ~scale)
      in
      let shards = Trial_plan.shards p in
      if shard < 0 || shard >= Array.length shards then
        failwith
          (Printf.sprintf "Registry.dispatch_trial: shard %d out of range (%d shards)" shard
             (Array.length shards));
      Trial_plan.encode_result (Trial_plan.run_shard p shards.(shard))

(* The one experiment-seeding scheme, shared by [run_each] (hence
   run_all / verify / Export.export_all): experiment [i] always draws
   from substream 1000 + i of the top-level generator, so every entry
   point produces the same numbers for the same seed, whatever subset
   of experiments it runs and in whatever order. *)
let experiment_rng rng i = Prng.Rng.substream rng (1000 + i)

type render = Full | Scorecard

(* Render one experiment to a string. Parallel callers buffer rather
   than print so that concurrent experiments cannot interleave output:
   emission order (and therefore every byte) is decided by the caller,
   not the scheduler. *)
let render_one ?(render = Full) ~sched ~rng ~scale (e : experiment) =
  let buf = Buffer.create 4096 in
  let tables = e.run ~sched ~rng ~scale in
  (match render with
  | Full ->
      Buffer.add_string buf (Printf.sprintf "---- %s: %s ----\n" e.id e.title);
      Buffer.add_string buf (Printf.sprintf "claim: %s\n\n" e.claim);
      List.iter
        (fun t ->
          Buffer.add_string buf (Stats.Table.render t);
          Buffer.add_char buf '\n')
        tables
  | Scorecard -> ());
  let checks = e.assess tables in
  Buffer.add_string buf
    (Stats.Table.render (Assess.render ~title:(e.id ^ " scorecard") checks));
  Buffer.add_char buf '\n';
  (Buffer.contents buf, Assess.all_passed checks)

type outcome = {
  experiment : experiment;
  output : string;
  ok : bool;
  seconds : float;
  metrics : (string * int) list;
}

let c_experiments = Obs.Metrics.counter "sim.experiments"

(* The complete per-experiment job body, shared verbatim by the
   in-process schedulers (below) and by fleet workers
   (Fleet.dispatch): counting, exp.start / exp.end bracketing, and the
   attribution scope all happen wherever the experiment actually runs,
   so counters and trace events are identical at any [--jobs] or
   [--procs] setting. *)
let rendered_outcome ?clock ~render ~sched ~rng ~scale e =
  let now () = match clock with Some f -> f () | None -> 0. in
  Obs.Metrics.incr c_experiments;
  if Obs.Trace.enabled () then Obs.Trace.emit "exp.start" [ ("id", Str e.id) ];
  let started = now () in
  (* The scope sink rides the job's domain: nested trial plans run
     sequentially inside a pool job (see Exec), so every counter
     increment of this experiment — and only this experiment — lands
     in its [metrics]. *)
  let (output, ok), metrics =
    Obs.Metrics.with_scope (fun () -> render_one ~render ~sched ~rng ~scale e)
  in
  if Obs.Trace.enabled () then
    Obs.Trace.emit "exp.end" [ ("id", Str e.id); ("ok", Int (if ok then 1 else 0)) ];
  (output, ok, now () -. started, metrics)

(* The one seeding scheme for *single-experiment* entry points: the CLI
   [run <id> --seed S] seeds the generator as [Prng.Rng.of_seed seed]
   directly (no registry substream), and a serve [run] request must do
   exactly the same, or service responses would not be byte-identical
   to the batch CLI. Keeping both on this helper makes that contract a
   single point of truth. *)
let single_outcome ?clock ?(render = Full) ?(sched = Exec.sequential) ~seed ~scale e =
  rendered_outcome ?clock ~render ~sched ~rng:(Prng.Rng.of_seed seed) ~scale e

let run_each ?(render = Full) ?(sched = Exec.sequential) ?clock ?spec ~rng ~scale () =
  let exps = Array.of_list all in
  (* The substream split happens inside the job, not up front: on the
     fleet path the worker performs it instead (Fleet.dispatch), so the
     rng.splits total stays identical at every --procs setting. *)
  let job i =
    let e = exps.(i) in
    let output, ok, seconds, metrics =
      rendered_outcome ?clock ~render ~sched ~rng:(experiment_rng rng i) ~scale e
    in
    { experiment = e; output; ok; seconds; metrics }
  in
  let jobs = Array.length exps in
  let reduce = Array.to_list in
  match spec with
  | None -> Exec.run sched (Exec.plan ~jobs ~job ~reduce)
  | Some spec -> Exec.run sched (Exec.plan_spec ~jobs ~job ~spec ~reduce)

let run_one ?(out = stdout) ?(sched = Exec.sequential) ~rng ~scale e =
  let output, ok = render_one ~render:Full ~sched ~rng ~scale e in
  output_string out output;
  flush out;
  ok

let summary_table verdicts =
  let summary =
    Stats.Table.create ~title:"Reproduction summary"
      ~columns:[ "experiment"; "verdict"; "claim" ]
  in
  List.iter
    (fun ((e : experiment), ok) ->
      Stats.Table.add_row summary
        [ Text e.id; Text (if ok then "PASS" else "FAIL"); Text e.title ])
    verdicts;
  summary

let run_all_timed ?(out = stdout) ?sched ?clock ?spec ~rng ~scale () =
  let results = run_each ~render:Full ?sched ?clock ?spec ~rng ~scale () in
  List.iter (fun o -> output_string out o.output) results;
  let verdicts = List.map (fun o -> (o.experiment, o.ok)) results in
  Printf.fprintf out "%s\n" (Stats.Table.render (summary_table verdicts));
  flush out;
  (List.for_all snd verdicts, results)

let run_all ?out ?sched ?spec ~rng ~scale () =
  fst (run_all_timed ?out ?sched ?spec ~rng ~scale ())

let verify ?(out = stdout) ?sched ?spec ~rng ~scale () =
  let results = run_each ~render:Scorecard ?sched ?spec ~rng ~scale () in
  List.iter (fun o -> output_string out o.output) results;
  flush out;
  List.length (List.filter (fun o -> not o.ok) results)
