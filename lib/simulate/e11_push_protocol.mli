(** E11 — Section 5's reduction: a randomised protocol in which an
    informed node transmits to each neighbour independently with
    probability p is exactly flooding on a "virtual dynamic graph"
    where each snapshot edge is kept with probability p. Both sides of
    the reduction are run and should agree within noise; the slowdown
    relative to full flooding stays O(1/p · polylog). *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
