(** E18 — The §4.1 discretisation, exact: the waypoint realised as an
    explicit finite node-MEG (state = (position, destination), one grid
    hop per step). With the full chain in hand, P_NM, η and the
    positional distribution are computed with zero sampling error, so
    Theorem 3's premises are *verified*, not estimated; the measured
    flooding sits inside the exact budget; and the direct η is compared
    with the δ⁶/λ² detour Corollary 4 takes — quantifying how loose the
    corollary's uniformity route is relative to exact pairwise
    independence. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
