(* Serializable job specs for registry experiment plans, and the
   worker-side dispatcher that interprets them.

   A request payload carries exactly what [Registry.run_each] would have
   closed over for one job: the render mode, the top-level seed, the
   scale, the inner worker count, and the experiment's registry index.
   The worker rebuilds the experiment's generator from the seed with the
   one shared seeding scheme ([Registry.experiment_rng]), so the bytes
   it renders are the bytes the parent would have rendered in-process —
   the fleet is invisible in every deterministic output.

   The response payload carries [Registry.rendered_outcome]'s result:
   rendered output, verdict, duration (worker wall clock — the only
   nondeterministic field, and one that never reaches deterministic
   output), and the experiment's attributed counter deltas. *)

module B = Exec.Spec.Buf

let encode_render = function Registry.Full -> 0 | Registry.Scorecard -> 1

let decode_render = function
  | 0 -> Registry.Full
  | 1 -> Registry.Scorecard
  | _ -> raise (B.Corrupt "render")

let encode_scale = function Runner.Quick -> 0 | Runner.Full -> 1 | Runner.Large -> 2

let decode_scale = function
  | 0 -> Runner.Quick
  | 1 -> Runner.Full
  | 2 -> Runner.Large
  | _ -> raise (B.Corrupt "scale")

(* Whole-experiment payloads are tagged 'X' (trial-shard payloads from
   Registry are tagged 'T'); [dispatch] routes on the first byte. *)
let encode_request ~render ~seed ~scale ~jobs ~index =
  let b = Buffer.create 48 in
  Buffer.add_char b 'X';
  B.add_int b (encode_render render);
  B.add_int b seed;
  B.add_int b (encode_scale scale);
  B.add_int b jobs;
  B.add_int b index;
  Buffer.contents b

let decode_response raw =
  let r = B.reader raw in
  let output = B.string r in
  let ok = B.int r <> 0 in
  let seconds = B.float r in
  let metrics = B.pairs r in
  (output, ok, seconds, metrics)

let experiments = Array.of_list Registry.all

let specs ~render ~seed ~scale ~jobs i =
  let e = experiments.(i) in
  {
    Exec.Spec.id = e.Registry.id;
    payload = encode_request ~render ~seed ~scale ~jobs ~index:i;
    decode =
      (fun raw ->
        let output, ok, seconds, metrics = decode_response raw in
        { Registry.experiment = e; output; ok; seconds; metrics });
  }

let dispatch_experiment ~id ~payload =
  let r = B.reader payload in
  (match B.char r with
  | 'X' -> ()
  | c -> raise (B.Corrupt (Printf.sprintf "experiment payload: bad tag %C" c)));
  let render = decode_render (B.int r) in
  let seed = B.int r in
  let scale = decode_scale (B.int r) in
  let jobs = B.int r in
  let index = B.int r in
  if index < 0 || index >= Array.length experiments then
    failwith (Printf.sprintf "Fleet.dispatch: experiment index %d out of range" index);
  let e = experiments.(index) in
  if e.Registry.id <> id then
    failwith (Printf.sprintf "Fleet.dispatch: spec id %S names registry entry %S" id e.Registry.id);
  let rng = Registry.experiment_rng (Prng.Rng.of_seed seed) index in
  let sched = Exec.of_int jobs in
  let output, ok, seconds, metrics =
    Registry.rendered_outcome ~clock:Obs.Clock.now ~render ~sched ~rng ~scale e
  in
  let b = Buffer.create (String.length output + 64) in
  B.add_string b output;
  B.add_int b (if ok then 1 else 0);
  B.add_float b seconds;
  B.add_pairs b metrics;
  Buffer.contents b

(* One dispatcher serves both granularities: whole experiments (the
   run-all fleet path) and single-experiment trial shards. *)
let dispatch ~id ~payload =
  if String.length payload = 0 then failwith "Fleet.dispatch: empty payload";
  match payload.[0] with
  | 'X' -> dispatch_experiment ~id ~payload
  | 'T' -> Registry.dispatch_trial ~spec_id:id ~payload
  | c -> failwith (Printf.sprintf "Fleet.dispatch: unknown payload tag %C" c)

let serve ?forward_progress () = Exec.Worker.serve ?forward_progress ~dispatch ()
