(** Shared machinery for experiments: deterministic seeding, trial
    counts by scale, and flooding-measurement helpers used by most
    tables. *)

type scale =
  | Quick  (** CI-sized: small sweeps, few trials; finishes in seconds *)
  | Full   (** paper-sized: the sweeps recorded in EXPERIMENTS.md *)
  | Large
      (** Quick-sized registry sweeps plus the million-node off-heap
          tiers the bench driver layers on top (see bench/main.ml) —
          the tier's time budget belongs to the large extras, not to
          bigger paper sweeps. *)

val trials : scale -> int
(** Default number of flooding trials per configuration (5 / 20 / 5). *)

val pick : scale -> 'a -> 'a -> 'a
(** [pick scale quick full]; [Large] picks [quick] — its extra work is
    the bench driver's large tier, not bigger sweeps. *)

type flood_stats = {
  mean : float;
  stddev : float;
  max : float;
  capped : bool;  (** some trial hit the step cap — mean is a floor *)
}

val flood :
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  trials:int ->
  ?cap:int ->
  ?protocol:Core.Flooding.protocol ->
  ?source:int ->
  (unit -> Core.Dynamic.t) ->
  flood_stats
(** Flooding-time statistics over independent trials. Each trial runs
    on a fresh instance from the builder; under a parallel [sched]
    (default {!Exec.sequential}) trials are distributed over the worker
    pool without changing any statistic — see {!Core.Flooding.mean_time}
    for the determinism contract. *)

val scale_to_int : scale -> int
(** Wire codec for a scale (0/1/2), used by trial-shard payloads. *)

val scale_of_int : int -> scale
(** Inverse of {!scale_to_int}; raises [Invalid_argument] otherwise. *)

val flood_bag :
  label:string ->
  rng:Prng.Rng.t ->
  trials:int ->
  ?cap:int ->
  ?protocol:Core.Flooding.protocol ->
  ?source:int ->
  (unit -> Core.Dynamic.t) ->
  Trial_plan.bag * (float array -> flood_stats)
(** {!flood} decomposed for trial plans: the bag runs one flooding
    trial per index (same cap derivation and substream indexing as
    {!flood}), and the returned renderer reduces the bag's trial times
    to the same {!flood_stats} — converting an experiment from [flood]
    to bags changes no rendered byte. [source] defaults to node 0, as
    in {!Core.Flooding.mean_time}. *)

val cell : float -> Stats.Table.cell
(** Shorthand for a 4-significant-digit float cell. *)

val ratio_cell : float -> float -> Stats.Table.cell
(** [ratio_cell measured bound] renders measured/bound with 3 decimals,
    or "-" when the bound is not finite/positive. *)
