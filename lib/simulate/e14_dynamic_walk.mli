(** E14 — Exploring a fast-changing world [2]: hitting and cover times
    of a lazy random walk *on* the dynamic graphs, the other classic
    MEG question the paper builds on. The shape reproduced: on a sparse
    edge-MEG whose every snapshot is disconnected, the walk still
    covers all nodes (the dynamics re-connect it across time), whereas
    on the static graph of the same density cover time is infinite;
    and cover time scales near-linearly (with logs) in n once the
    dynamic density is a constant per node. *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
