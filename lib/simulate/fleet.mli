(** The registry's job-spec layer for cross-process execution: turns
    each experiment of a {!Registry.run_each} plan into a serializable
    {!Exec.Spec.t}, and provides the worker-side dispatcher that
    interprets those specs.

    A spec's payload carries (render mode, seed, scale, inner worker
    count, registry index); the worker rebuilds the experiment's
    generator from the seed via {!Registry.experiment_rng} and runs
    {!Registry.rendered_outcome}, so the bytes it returns are exactly
    the bytes the parent would have produced in-process. The [seconds]
    field of a decoded outcome is measured on the worker's
    {!Obs.Clock} (the only scheduler-dependent field; it never reaches
    deterministic output). *)

val specs :
  render:Registry.render ->
  seed:int ->
  scale:Runner.scale ->
  jobs:int ->
  int ->
  Registry.outcome Exec.Spec.t
(** [specs ~render ~seed ~scale ~jobs i] is the spec for registry entry
    [i] of the plan [Registry.run_each ~render ~rng:(of_seed seed)
    ~scale] with inner scheduler [Exec.of_int jobs]. Pass partially
    applied as the [?spec] argument of the registry entry points. *)

val dispatch : id:string -> payload:string -> string
(** Execute one spec payload (worker side) and encode its result.
    Routes on the payload's first byte: ['X'] whole-experiment requests
    (above), ['T'] trial-shard requests ({!Registry.dispatch_trial}) —
    one worker loop serves both granularities. *)

val serve : ?forward_progress:bool -> unit -> unit
(** Run the fleet worker loop ({!Exec.Worker.serve} with {!dispatch}).
    The hosting executable should install a real {!Obs.Clock} and mirror
    the parent's metrics/tracing enablement before calling this;
    [forward_progress] mirrors the parent's [--progress] (workers never
    write progress to stderr — see {!Exec.Worker.serve}). *)
