(** E16 — Corollary 4's region generality: the statement covers any
    bounded connected region R ⊆ ℝᵈ, not just the square. The waypoint
    over the inscribed disk satisfies the same (δ, λ)-uniformity
    conditions with O(1) constants, and its flooding time in the sparse
    regime matches the square's within a constant factor (once the
    disk's smaller area — π/4 of the square's — is accounted for). *)

val id : string
val title : string
val claim : string
val run : sched:Exec.scheduler -> rng:Prng.Rng.t -> scale:Runner.scale -> Stats.Table.t list

val assess : Stats.Table.t list -> Assess.check list
(** Shape checks over the tables produced by [run]. *)
