let id = "E5"

let title = "waypoint positional density: Corollary 4 conditions"

let claim =
  "The waypoint stationary density has constant delta and lambda (conditions \
   (a),(b) of Corollary 4) and a pronounced center bias; the random-direction \
   control is near-uniform; the analytic product form tracks the measurement."

let run ~sched:_ ~rng ~scale =
  let n = Runner.pick scale 100 300 in
  let l = 16. in
  let bins = 8 in
  let samples = Runner.pick scale 300 1500 in
  let wp = Mobility.Waypoint.create ~n ~l ~r:1. ~v_min:1. ~v_max:1.25 () in
  let dir = Mobility.Direction.create ~n ~l ~r:1. ~v:1. ~turn_every:8. () in
  let wp_profile =
    Mobility.Density.estimate ~geo:wp ~rng:(Prng.Rng.split rng) ~bins ~samples ()
  in
  let dir_profile =
    Mobility.Density.estimate ~geo:dir ~rng:(Prng.Rng.split rng) ~bins ~samples ()
  in
  let product =
    Mobility.Density.of_function ~l ~bins (Mobility.Waypoint.product_density ~l)
  in
  let exact = Mobility.Density.of_function ~l ~bins (Mobility.Waypoint.exact_density ~l) in
  let table =
    Stats.Table.create ~title
      ~columns:[ "model"; "delta"; "lambda"; "center/corner"; "TV vs measured" ]
  in
  let row name profile =
    let u = Mobility.Density.uniformity profile in
    Stats.Table.add_row table
      [
        Text name;
        Fixed (u.delta, 3);
        Fixed (u.lambda, 3);
        Fixed (u.center_to_corner, 2);
        Fixed (Mobility.Density.tv_between profile wp_profile, 4);
      ]
  in
  row "waypoint (measured)" wp_profile;
  row "waypoint (exact, Palm [25])" exact;
  row "waypoint (product f(x)f(y))" product;
  row "random direction (control)" dir_profile;
  [ table ]

let assess = function
  | [ table ] ->
      let deltas = Stats.Table.column_floats table "delta" in
      let lambdas = Stats.Table.column_floats table "lambda" in
      let biases = Stats.Table.column_floats table "center/corner" in
      let tvs = Stats.Table.column_floats table "TV vs measured" in
      (* rows: measured, exact, product, control *)
      if Array.length deltas < 4 then [ Assess.check ~label:"expected 4 rows" false ]
      else
        [
          Assess.value_in ~label:"waypoint delta is an O(1) constant" ~lo:1.2 ~hi:4.
            deltas.(0);
          Assess.value_in ~label:"waypoint lambda bounded below" ~lo:0.3 ~hi:1. lambdas.(0);
          Assess.value_in ~label:"waypoint center bias present" ~lo:2. ~hi:100. biases.(0);
          Assess.value_in ~label:"random-direction control near uniform" ~lo:1. ~hi:1.3
            deltas.(3);
          Assess.check ~label:"exact Palm density beats the product approximation"
            (tvs.(1) < tvs.(2));
          Assess.value_in ~label:"exact density matches measurement" ~lo:0. ~hi:0.05
            tvs.(1);
        ]
  | _ -> [ Assess.check ~label:"expected 1 table" false ]
