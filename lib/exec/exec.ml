type scheduler = Sequential | Pool of int | Procs of int

let sequential = Sequential

(* Never below 4: on single-core CI machines recommended_domain_count is
   1 and a hard clamp would silently turn every pool into Sequential,
   leaving the multi-domain path untested. Oversubscription by a few
   domains costs scheduling overhead only; determinism never depends on
   the worker count. *)
let max_workers = max 4 (Domain.recommended_domain_count ())

let pool w =
  if w < 1 then invalid_arg "Exec.pool: workers must be >= 1";
  if w = 1 then Sequential else Pool (min w max_workers)

let of_int w = if w <= 1 then Sequential else pool w

(* [procs 1] stays a fleet of one: a single worker process is still
   crash-isolated from the parent, which is the point of the scheduler. *)
let procs w =
  if w < 1 then invalid_arg "Exec.procs: workers must be >= 1";
  Procs (min w max_workers)

(* Warn-once bookkeeping for environment variables we refuse to guess
   about: an unparsable value is ignored, but silently ignoring it cost
   real debugging time, so say so (once per variable) on stderr. *)
let warned_env : (string, unit) Hashtbl.t = Hashtbl.create 4

let warn_env var value expected =
  if not (Hashtbl.mem warned_env var) then begin
    Hashtbl.add warned_env var ();
    Printf.eprintf "dyngraph: ignoring %s=%S (expected %s)\n%!" var value expected
  end

let default () =
  match Sys.getenv_opt "DYNGRAPH_JOBS" with
  | None -> Sequential
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> of_int w
      | Some _ -> Sequential
      | None ->
          warn_env "DYNGRAPH_JOBS" s "a positive integer";
          Sequential)

let default_procs () =
  match Sys.getenv_opt "DYNGRAPH_PROCS" with
  | None -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 0 -> w
      | Some _ -> 0
      | None ->
          warn_env "DYNGRAPH_PROCS" s "a non-negative integer";
          0)

let workers = function Sequential -> 1 | Pool w | Procs w -> w

(* --- serializable job specs --- *)

module Spec = struct
  type 'a t = { id : string; payload : string; decode : string -> 'a }

  module Buf = struct
    exception Corrupt of string

    let add_int64 b v =
      for i = 7 downto 0 do
        Buffer.add_char b
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
      done

    let add_int b n = add_int64 b (Int64.of_int n)

    let add_float b f = add_int64 b (Int64.bits_of_float f)

    let add_string b s =
      add_int b (String.length s);
      Buffer.add_string b s

    let add_pairs b l =
      add_int b (List.length l);
      List.iter
        (fun (k, v) ->
          add_string b k;
          add_int b v)
        l

    type reader = { data : string; mutable pos : int }

    let reader data = { data; pos = 0 }

    let need r n =
      if n < 0 || n > String.length r.data - r.pos then raise (Corrupt "truncated frame")

    let char r =
      need r 1;
      let c = r.data.[r.pos] in
      r.pos <- r.pos + 1;
      c

    let int64 r =
      need r 8;
      let v = ref 0L in
      for _ = 1 to 8 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos]));
        r.pos <- r.pos + 1
      done;
      !v

    let int r = Int64.to_int (int64 r)

    let float r = Int64.float_of_bits (int64 r)

    let string r =
      let n = int r in
      need r n;
      let s = String.sub r.data r.pos n in
      r.pos <- r.pos + n;
      s

    let pairs r =
      let n = int r in
      (* Explicit lets: tuple components would evaluate right-to-left,
         reading the int before the string. *)
      let rec go n acc =
        if n = 0 then List.rev acc
        else
          let k = string r in
          let v = int r in
          go (n - 1) ((k, v) :: acc)
      in
      go n []

    let at_end r = r.pos = String.length r.data
  end
end

exception Fleet_failure of string

(* --- length-prefixed framing over file descriptors --- *)

let max_frame = 1 lsl 28

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let rec write_all fd buf off len =
  if len > 0 then begin
    let k = retry_intr (fun () -> Unix.write fd buf off len) in
    write_all fd buf (off + k) (len - k)
  end

(* [false] on EOF before [len] bytes. *)
let rec read_all fd buf off len =
  if len = 0 then true
  else
    let k = retry_intr (fun () -> Unix.read fd buf off len) in
    if k = 0 then false else read_all fd buf (off + k) (len - k)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Exec: frame too large";
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (4 + len)

let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_all fd hdr 0 4) then None
  else begin
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then raise (Fleet_failure "oversized protocol frame");
    let buf = Bytes.create len in
    if not (read_all fd buf 0 len) then None else Some (Bytes.unsafe_to_string buf)
  end

(* --- trace-event wire codec (shares Spec.Buf primitives) --- *)

let add_event b (ev : Obs.Trace.event) =
  Spec.Buf.add_string b ev.name;
  Spec.Buf.add_int b (Array.length ev.path);
  Array.iter (Spec.Buf.add_int b) ev.path;
  Spec.Buf.add_int b ev.seq;
  Spec.Buf.add_float b ev.wall;
  Spec.Buf.add_int b (List.length ev.fields);
  List.iter
    (fun (k, (f : Obs.Trace.field)) ->
      Spec.Buf.add_string b k;
      match f with
      | Int i ->
          Buffer.add_char b 'i';
          Spec.Buf.add_int b i
      | Float x ->
          Buffer.add_char b 'f';
          Spec.Buf.add_float b x
      | Str s ->
          Buffer.add_char b 's';
          Spec.Buf.add_string b s)
    ev.fields

let read_event r : Obs.Trace.event =
  let name = Spec.Buf.string r in
  let np = Spec.Buf.int r in
  Spec.Buf.need r 0;
  if np < 0 || np > 1024 then raise (Spec.Buf.Corrupt "event path length");
  let path = Array.make np 0 in
  for i = 0 to np - 1 do
    path.(i) <- Spec.Buf.int r
  done;
  let seq = Spec.Buf.int r in
  let wall = Spec.Buf.float r in
  let nf = Spec.Buf.int r in
  let rec fields n acc =
    if n = 0 then List.rev acc
    else begin
      let k = Spec.Buf.string r in
      let f : Obs.Trace.field =
        match Spec.Buf.char r with
        | 'i' -> Int (Spec.Buf.int r)
        | 'f' -> Float (Spec.Buf.float r)
        | 's' -> Str (Spec.Buf.string r)
        | _ -> raise (Spec.Buf.Corrupt "event field tag")
      in
      fields (n - 1) ((k, f) :: acc)
    end
  in
  { name; path; seq; wall; fields = fields nf [] }

(* --- checkpoint journal --- *)

module Journal = struct
  type entry = { job : int; spec_id : string; data : string }

  type t = { fd : Unix.file_descr }

  let magic = "DGJL1"

  (* Cheap polynomial checksum: catches the torn tail record a SIGKILL
     mid-append leaves behind. Not cryptographic and not meant to be. *)
  let checksum s =
    let h = ref 0 in
    String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) s;
    !h

  let write_journal_frame fd payload =
    let b = Buffer.create (String.length payload + 16) in
    Spec.Buf.add_int b (String.length payload);
    Buffer.add_string b payload;
    Spec.Buf.add_int b (checksum payload);
    let s = Buffer.contents b in
    write_all fd (Bytes.unsafe_of_string s) 0 (String.length s);
    (* Make completed shards durable before the parent reports (or
       loses) them: a crashed parent must be able to trust every frame
       that parses. *)
    (try Unix.fsync fd with Unix.Unix_error _ -> ())

  (* Parse as many valid frames as the content holds; [good] is the
     offset just past the last valid frame — everything after it (a torn
     append) gets truncated away on resume. *)
  let parse_frames content =
    let r = Spec.Buf.reader content in
    let rec go acc good =
      if String.length content - r.Spec.Buf.pos < 16 then (List.rev acc, good)
      else
        match
          let len = Spec.Buf.int r in
          if len < 0 || len > max_frame || String.length content - r.Spec.Buf.pos < len + 8
          then raise Exit;
          let payload = String.sub content r.Spec.Buf.pos len in
          r.Spec.Buf.pos <- r.Spec.Buf.pos + len;
          if Spec.Buf.int r <> checksum payload then raise Exit;
          payload
        with
        | payload -> go (payload :: acc) r.Spec.Buf.pos
        | exception _ -> (List.rev acc, good)
    in
    go [] 0

  let header_payload ~jobs ~digest =
    let b = Buffer.create 64 in
    Spec.Buf.add_string b magic;
    Spec.Buf.add_int b jobs;
    Spec.Buf.add_string b digest;
    Buffer.contents b

  let parse_record payload =
    match
      let r = Spec.Buf.reader payload in
      match Spec.Buf.char r with
      | 'C' ->
          let job = Spec.Buf.int r in
          let spec_id = Spec.Buf.string r in
          let data = Spec.Buf.string r in
          if Spec.Buf.at_end r then Some { job; spec_id; data } else None
      | _ -> None
    with
    | v -> v
    | exception Spec.Buf.Corrupt _ -> None

  let c_compactions = Obs.Metrics.counter "exec.journal_compactions"

  let record_payload ~job ~spec_id ~data =
    let b = Buffer.create (String.length data + 32) in
    Buffer.add_char b 'C';
    Spec.Buf.add_int b job;
    Spec.Buf.add_string b spec_id;
    Spec.Buf.add_string b data;
    Buffer.contents b

  (* The live entries of a resumed journal: parseable 'C' records whose
     job is in the plan's range, first write per job wins (re-runs of a
     shard after a worker crash can append duplicates; the first one
     was already durable and is the one a resumed run would have
     used). *)
  let live_entries ~jobs payloads =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun e ->
        e.job >= 0 && e.job < jobs
        && not (Hashtbl.mem seen e.job)
        && (Hashtbl.add seen e.job (); true))
      (List.filter_map parse_record payloads)

  (* Rewrite the journal to exactly header + live entries: a long sweep
     resumed many times accumulates duplicate and torn frames without
     bound, and the rewrite is also what reclaims the truncated tail's
     disk. Written to a sibling temp file (checksummed frames, fsynced)
     and renamed over the original, so a crash mid-compaction leaves
     the old journal intact. *)
  let compact ~path ~header entries =
    let tmp = path ^ ".compact.tmp" in
    let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    write_journal_frame fd header;
    List.iter
      (fun e ->
        write_journal_frame fd (record_payload ~job:e.job ~spec_id:e.spec_id ~data:e.data))
      entries;
    Unix.close fd;
    Unix.rename tmp path;
    Obs.Metrics.incr c_compactions;
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    fd

  let open_ ~path ~jobs ~digest =
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    let buf = Bytes.create size in
    let content = if read_all fd buf 0 size then Bytes.unsafe_to_string buf else "" in
    let frames, good = parse_frames content in
    let header = header_payload ~jobs ~digest in
    match frames with
    | h :: rest when h = header ->
        let entries = live_entries ~jobs rest in
        (* Clean resume: compact when the file holds anything beyond
           the live frames — a torn tail, duplicate shards, malformed
           or out-of-range records. *)
        if good < size || List.length entries < List.length rest then begin
          Unix.close fd;
          ({ fd = compact ~path ~header entries }, entries)
        end
        else begin
          ignore (Unix.lseek fd good Unix.SEEK_SET);
          ({ fd }, entries)
        end
    | _ ->
        (* Fresh journal, or one for a different plan (other seed,
           scale, experiment set): start over rather than mix shards. *)
        Unix.ftruncate fd 0;
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        write_journal_frame fd header;
        ({ fd }, [])

  let append t ~job ~spec_id ~data =
    write_journal_frame t.fd (record_payload ~job ~spec_id ~data)

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* --- fleet configuration (set by the hosting executable) --- *)

let worker_command_ref : string array option ref = ref None

let set_worker_command c = worker_command_ref := c

let journal_ref : string option ref = ref None

let set_journal p = journal_ref := p

let worker_timeout_ref : float option ref = ref None

let worker_timeout_initialised = ref false

let worker_timeout () =
  if not !worker_timeout_initialised then begin
    worker_timeout_initialised := true;
    match Sys.getenv_opt "DYNGRAPH_PROC_TIMEOUT" with
    | None -> ()
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t when t > 0. -> worker_timeout_ref := Some t
        | Some _ | None -> warn_env "DYNGRAPH_PROC_TIMEOUT" s "a positive number of seconds")
  end;
  !worker_timeout_ref

let set_worker_timeout t =
  worker_timeout_initialised := true;
  worker_timeout_ref := t

let in_worker_flag = ref false

let in_worker () = !in_worker_flag

(* --- plans --- *)

type ('a, 'b) plan = {
  jobs : int;
  job : int -> 'a;
  spec : (int -> 'a Spec.t) option;
  reduce : 'a array -> 'b;
}

let plan ~jobs ~job ~reduce =
  if jobs < 0 then invalid_arg "Exec.plan: jobs must be >= 0";
  { jobs; job; spec = None; reduce }

let plan_spec ~jobs ~job ~spec ~reduce =
  if jobs < 0 then invalid_arg "Exec.plan_spec: jobs must be >= 0";
  { jobs; job; spec = Some spec; reduce }

(* Set while executing inside a pool worker (including the caller's own
   domain while it participates): nested [run]s then stay sequential
   rather than spawning domains recursively. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

(* Set on the calling domain for the duration of any [run]: together
   with [inside_pool] it identifies root-level plans, the ones progress
   reporting is scoped to. *)
let inside_run = Domain.DLS.new_key (fun () -> false)

(* --- observability --- *)

let c_plans = Obs.Metrics.counter "exec.plans"

let c_claimed = Obs.Metrics.counter "exec.jobs_claimed"

let c_completed = Obs.Metrics.counter "exec.jobs_completed"

let c_failed = Obs.Metrics.counter "exec.jobs_failed"

let c_shard_reruns = Obs.Metrics.counter "exec.shard_reruns"

let c_procs_degraded = Obs.Metrics.counter "exec.procs_degraded"

(* [Procs _] was requested but the plan is about to run on the
   in-process pool instead. Warn once per process (stderr, so batch
   output stays byte-identical) and count every occurrence, so service
   responses can surface the degradation per request. *)
let procs_degraded_warned = ref false

let last_degradation : string option ref = ref None

let last_procs_degradation () = !last_degradation

let note_procs_degraded reason =
  Obs.Metrics.incr c_procs_degraded;
  last_degradation := Some reason;
  if not !procs_degraded_warned then begin
    procs_degraded_warned := true;
    Printf.eprintf
      "dyngraph: warning: --procs requested but this plan runs on the in-process pool (%s)\n%!"
      reason
  end

(* Per-worker heartbeat gauges, interned lazily (racy stores are benign:
   interning is keyed by name, so both racers get the same gauge). *)
let heartbeats = Array.make 64 None

let heartbeat w =
  if w < Array.length heartbeats then begin
    let g =
      match heartbeats.(w) with
      | Some g -> g
      | None ->
          let g = Obs.Metrics.gauge (Printf.sprintf "exec.worker%d.heartbeat" w) in
          heartbeats.(w) <- Some g;
          g
    in
    Obs.Metrics.set_gauge g (Obs.Clock.now ())
  end

(* Wrap a plan's job with its observability envelope. The wrapper is
   identical on the sequential and pool paths — and is applied
   worker-side by {!Worker.serve} for the procs path — so counters,
   trace coordinates and progress ticks never depend on the scheduler.
   With everything disabled [Ambient.capture] is [Inactive] and the
   wrapper costs one match plus four no-op counter calls per job. *)
let instrument ~ambient ~plan_ord ~progress job i =
  Obs.Ambient.with_job ambient ~plan:plan_ord ~job:i (fun () ->
      Obs.Metrics.incr c_claimed;
      if Obs.Trace.enabled () then Obs.Trace.emit "exec.claim" [];
      match job i with
      | v ->
          Obs.Metrics.incr c_completed;
          if Obs.Trace.enabled () then Obs.Trace.emit "exec.finish" [];
          if progress then Obs.Progress.tick ();
          v
      | exception e ->
          Obs.Metrics.incr c_failed;
          if Obs.Trace.enabled () then Obs.Trace.emit "exec.fail" [];
          raise e)

let run_sequential p = Array.init p.jobs p.job

(* Fixed pool: [w] workers (w - 1 spawned domains plus the caller) pull
   contiguous chunks of job indices from a shared cursor. Each result
   slot is written by exactly one worker, and [Domain.join] publishes
   all writes to the caller. The first exception wins the [error] slot;
   every worker checks it before claiming another chunk, so a failing
   job drains the pool instead of hanging it. *)
let run_pool w p =
  let n = p.jobs in
  let results = Array.make n None in
  let error = Atomic.make None in
  let cursor = Atomic.make 0 in
  let chunk = max 1 (n / (8 * w)) in
  let worker wid () =
    let saved = Domain.DLS.get inside_pool in
    Domain.DLS.set inside_pool true;
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n || Atomic.get error <> None then continue := false
      else begin
        if Obs.Metrics.enabled () then heartbeat wid;
        let stop = min n (start + chunk) in
        let i = ref start in
        while !continue && !i < stop do
          (match p.job !i with
          | v -> results.(!i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set error None (Some (e, bt)));
              continue := false);
          incr i
        done
      end
    done;
    Domain.DLS.set inside_pool saved
  in
  let spawned = List.init (min w n - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

(* --- the worker side of the fleet protocol --- *)

(* Test-only fault injection, driven by environment variables of the
   form VAR="SPECID:MARKER_PATH". The first time a worker is asked to
   run SPECID and MARKER_PATH does not exist, it creates the marker and
   then crashes (DYNGRAPH_FLEET_CRASH, exit 70 without a response) or
   wedges (DYNGRAPH_FLEET_HANG, sleeps an hour). The marker makes the
   fault one-shot, so the re-run of the shard on a fresh worker
   succeeds — exactly the failure-isolation path the fleet smoke and
   unit tests need to drive deterministically. *)
let fault_hook var =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> (
      match String.index_opt s ':' with
      | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | None -> None)

let trip_fault hook id action =
  match hook with
  | Some (hid, marker) when hid = id && not (Sys.file_exists marker) ->
      let oc = open_out marker in
      close_out oc;
      action ()
  | _ -> ()

module Worker = struct
  let serve ?(forward_progress = false) ~dispatch () =
    in_worker_flag := true;
    let proto_in = Unix.dup Unix.stdin in
    let proto_out = Unix.dup Unix.stdout in
    (* Re-point fd 1 at stderr so a stray [print_string] anywhere in the
       experiment code cannot corrupt the framed protocol. *)
    Unix.dup2 Unix.stderr Unix.stdout;
    (* Workers never write progress to the (shared) stderr — concurrent
       shards would tear each other's \r lines. Either progress is off
       entirely, or the parent asked for it to be forwarded as 'P'
       frames over the pipe so it can render one coherent stream. *)
    let current_job = ref 0 in
    if forward_progress then begin
      Obs.Progress.set_renderer
        (Some
           (fun (u : Obs.Progress.update) ->
             let b = Buffer.create 32 in
             Buffer.add_char b 'P';
             Spec.Buf.add_int b !current_job;
             Spec.Buf.add_int b u.Obs.Progress.completed;
             Spec.Buf.add_int b u.Obs.Progress.total;
             try write_frame proto_out (Buffer.contents b)
             with Unix.Unix_error _ | Fleet_failure _ -> ()));
      Obs.Progress.enable ()
    end
    else Obs.Progress.disable ();
    let crash = fault_hook "DYNGRAPH_FLEET_CRASH" in
    let hang = fault_hook "DYNGRAPH_FLEET_HANG" in
    let continue = ref true in
    while !continue do
      match read_frame proto_in with
      | None -> continue := false
      | Some req -> (
          let r = Spec.Buf.reader req in
          match Spec.Buf.char r with
          | 'Q' -> continue := false
          | 'J' ->
              let job = Spec.Buf.int r in
              let plan_ord = Spec.Buf.int r in
              let np = Spec.Buf.int r in
              let path = Array.make (max np 0) 0 in
              for i = 0 to np - 1 do
                path.(i) <- Spec.Buf.int r
              done;
              let id = Spec.Buf.string r in
              let payload = Spec.Buf.string r in
              current_job := job;
              trip_fault crash id (fun () -> Stdlib.exit 70);
              trip_fault hang id (fun () -> Unix.sleep 3600);
              (* Per-job observability window: counters and trace ring
                 are cleared so the response carries exactly this job's
                 deltas for the parent to merge. *)
              Obs.Metrics.reset ();
              if Obs.Trace.enabled () then Obs.Trace.clear ();
              let ambient : Obs.Ambient.t =
                if Obs.Trace.enabled () then Active { sink = None; path } else Inactive
              in
              let response =
                match
                  instrument ~ambient ~plan_ord ~progress:false
                    (fun _ -> dispatch ~id ~payload)
                    job
                with
                | result ->
                    let b = Buffer.create (String.length result + 256) in
                    Buffer.add_char b 'R';
                    Spec.Buf.add_int b job;
                    Spec.Buf.add_string b result;
                    Spec.Buf.add_pairs b (Obs.Metrics.snapshot ());
                    let evs = if Obs.Trace.enabled () then Obs.Trace.events () else [] in
                    Spec.Buf.add_int b (Obs.Trace.dropped_events ());
                    Spec.Buf.add_int b (List.length evs);
                    List.iter (add_event b) evs;
                    Buffer.contents b
                | exception e ->
                    let bt = Printexc.get_backtrace () in
                    let b = Buffer.create 256 in
                    Buffer.add_char b 'E';
                    Spec.Buf.add_int b job;
                    Spec.Buf.add_string b
                      (Printexc.to_string e ^ if bt = "" then "" else "\n" ^ bt);
                    Buffer.contents b
              in
              write_frame proto_out response
          | _ -> Stdlib.exit 71)
    done
end

(* --- the parent side: a crash-isolated worker fleet --- *)

(* Hang-detection deadlines live on the monotonic clock
   ([Obs.Clock.monotonic]), never the wall clock: an NTP step or a
   suspend/resume must neither falsely SIGKILL a healthy shard nor let a
   wedged one run forever. A deadline is an absolute monotonic instant;
   [none] ([infinity]) means unarmed. *)
module Deadline = struct
  type t = float

  let none = infinity

  let arm seconds = Obs.Clock.monotonic () +. seconds

  let armed d = d < infinity

  let expired d = armed d && Obs.Clock.monotonic () >= d

  let seconds_left d = if armed d then d -. Obs.Clock.monotonic () else infinity
end

type worker_proc = {
  pid : int;
  req_fd : Unix.file_descr;
  resp_fd : Unix.file_descr;
  slot : int;
  mutable inflight : int option;
  mutable deadline : float;
}

let max_attempts = 3

let run_procs w ~(specs : _ Spec.t array) ~plan_ord ~path ~progress ~journal_path =
  let n = Array.length specs in
  let cmd =
    match !worker_command_ref with Some c -> c | None -> raise (Fleet_failure "no worker command")
  in
  let results = Array.make n None in
  let completed = ref 0 in
  (* Replay one successful response payload: merge its counter deltas
     and trace events into this process, decode the result into its
     slot. Used both for live responses and for journal replay, so a
     resumed run reaches the same final state as an uninterrupted one. *)
  let handle_success job raw =
    let r = Spec.Buf.reader raw in
    (match Spec.Buf.char r with
    | 'R' -> ()
    | _ -> raise (Fleet_failure "corrupt response payload"));
    let j = Spec.Buf.int r in
    if j <> job then raise (Fleet_failure "response job mismatch");
    let result = Spec.Buf.string r in
    let metrics = Spec.Buf.pairs r in
    let dropped = Spec.Buf.int r in
    let n_ev = Spec.Buf.int r in
    let rec events k acc = if k = 0 then List.rev acc else events (k - 1) (read_event r :: acc) in
    let evs = events n_ev [] in
    Obs.Metrics.absorb metrics;
    if Obs.Trace.enabled () then Obs.Trace.absorb ~dropped evs;
    results.(job) <- Some (specs.(job).Spec.decode result);
    incr completed;
    if progress then Obs.Progress.tick ()
  in
  (* Identity of the plan: resuming a journal only makes sense against
     byte-identical specs (same experiments, seed, scale, render). *)
  let digest =
    Digest.to_hex
      (Digest.string
         (string_of_int n ^ "\x00"
         ^ String.concat "\x00"
             (Array.to_list (Array.map (fun s -> s.Spec.id ^ "\x01" ^ s.Spec.payload) specs))))
  in
  let journal =
    match journal_path with
    | None -> None
    | Some path ->
        let t, entries = Journal.open_ ~path ~jobs:n ~digest in
        List.iter
          (fun (e : Journal.entry) ->
            if
              e.job >= 0 && e.job < n
              && e.spec_id = specs.(e.job).Spec.id
              && results.(e.job) = None
            then try handle_success e.job e.data with Spec.Buf.Corrupt _ | Fleet_failure _ -> ())
          entries;
        Some t
  in
  let pending = Queue.create () in
  for i = 0 to n - 1 do
    if results.(i) = None then Queue.add i pending
  done;
  let attempts = Array.make n 0 in
  let timeout = worker_timeout () in
  let live : worker_proc list ref = ref [] in
  let slot_counter = ref 0 in
  let spawn () =
    let req_r, req_w = Unix.pipe () in
    let resp_r, resp_w = Unix.pipe () in
    Unix.set_close_on_exec req_w;
    Unix.set_close_on_exec resp_r;
    let pid = Unix.create_process cmd.(0) cmd req_r resp_w Unix.stderr in
    Unix.close req_r;
    Unix.close resp_w;
    let wk =
      { pid; req_fd = req_w; resp_fd = resp_r; slot = !slot_counter; inflight = None;
        deadline = Deadline.none }
    in
    incr slot_counter;
    live := wk :: !live
  in
  let reap wk =
    live := List.filter (fun x -> x != wk) !live;
    (try Unix.close wk.req_fd with Unix.Unix_error _ -> ());
    (try Unix.close wk.resp_fd with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] wk.pid) with Unix.Unix_error _ -> ()
  in
  let kill_reap wk =
    (try Unix.kill wk.pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap wk
  in
  (* A worker died (or wedged past its deadline) while owning a shard:
     only that shard is requeued — completed shards are already merged
     (and journaled), and shards owned by other workers are untouched. *)
  let crash wk reason =
    (match wk.inflight with
    | Some job ->
        attempts.(job) <- attempts.(job) + 1;
        Obs.Metrics.incr c_shard_reruns;
        if attempts.(job) >= max_attempts then begin
          kill_reap wk;
          raise
            (Fleet_failure
               (Printf.sprintf "shard %d (%s) %s %d times; giving up" job specs.(job).Spec.id
                  reason attempts.(job)))
        end;
        Queue.add job pending
    | None -> ());
    kill_reap wk
  in
  let send wk job =
    let s = specs.(job) in
    let b = Buffer.create (String.length s.Spec.payload + String.length s.Spec.id + 64) in
    Buffer.add_char b 'J';
    Spec.Buf.add_int b job;
    Spec.Buf.add_int b plan_ord;
    Spec.Buf.add_int b (Array.length path);
    Array.iter (Spec.Buf.add_int b) path;
    Spec.Buf.add_string b s.Spec.id;
    Spec.Buf.add_string b s.Spec.payload;
    match write_frame wk.req_fd (Buffer.contents b) with
    | () ->
        wk.inflight <- Some job;
        (match timeout with
        | Some t -> wk.deadline <- Deadline.arm t
        | None -> wk.deadline <- Deadline.none)
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* Died before it ever saw the shard: not the shard's fault, so
           no attempt is charged — requeue and let the top-up respawn. *)
        Queue.add job pending;
        kill_reap wk
  in
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun wk -> (try Unix.kill wk.pid Sys.sigkill with Unix.Unix_error _ -> ())) !live;
      List.iter reap (List.filter (fun _ -> true) !live);
      live := [];
      (match journal with Some t -> Journal.close t | None -> ());
      Sys.set_signal Sys.sigpipe old_sigpipe)
    (fun () ->
      while !completed < n do
        (* Top up the fleet and hand shards to idle workers. *)
        let idle () = List.length (List.filter (fun wk -> wk.inflight = None) !live) in
        while List.length !live < min w n && Queue.length pending > idle () do
          spawn ()
        done;
        List.iter
          (fun wk ->
            if wk.inflight = None then
              match Queue.take_opt pending with Some job -> send wk job | None -> ())
          !live;
        if !completed < n then begin
          let fds = List.map (fun wk -> wk.resp_fd) !live in
          if fds = [] then raise (Fleet_failure "fleet drained with shards incomplete");
          let next_wait =
            List.fold_left
              (fun acc wk ->
                if wk.inflight <> None then min acc (Deadline.seconds_left wk.deadline) else acc)
              infinity !live
          in
          let tmo = if next_wait = infinity then -1. else max 0.01 next_wait in
          let ready, _, _ = retry_intr (fun () -> Unix.select fds [] [] tmo) in
          List.iter
            (fun fd ->
              match List.find_opt (fun wk -> wk.resp_fd = fd) !live with
              | None -> ()
              | Some wk -> (
                  match
                    try read_frame wk.resp_fd with Unix.Unix_error _ -> None
                  with
                  | None ->
                      if wk.inflight <> None then crash wk "crashed" else reap wk
                  | Some resp -> (
                      let r = Spec.Buf.reader resp in
                      match Spec.Buf.char r with
                      | 'R' ->
                          let job = Spec.Buf.int r in
                          if Obs.Metrics.enabled () then heartbeat wk.slot;
                          wk.inflight <- None;
                          wk.deadline <- Deadline.none;
                          (match journal with
                          | Some t ->
                              Journal.append t ~job ~spec_id:specs.(job).Spec.id ~data:resp
                          | None -> ());
                          handle_success job resp
                      | 'P' ->
                          (* A worker forwarding its shard's own progress
                             ticks. The shard is demonstrably alive, so
                             its hang-detection deadline restarts. *)
                          let job = Spec.Buf.int r in
                          let c = Spec.Buf.int r in
                          let t = Spec.Buf.int r in
                          (match timeout with
                          | Some secs when wk.inflight <> None ->
                              wk.deadline <- Deadline.arm secs
                          | _ -> ());
                          if progress && job >= 0 && job < n then
                            Obs.Progress.sub ~label:specs.(job).Spec.id ~completed:c ~total:t
                      | 'E' ->
                          let _job = Spec.Buf.int r in
                          let msg = Spec.Buf.string r in
                          wk.inflight <- None;
                          raise (Fleet_failure ("worker job raised: " ^ msg))
                      | _ -> raise (Fleet_failure "malformed response frame"))))
            ready;
          List.iter
            (fun wk ->
              if wk.inflight <> None && Deadline.expired wk.deadline then crash wk "timed out")
            (List.filter (fun _ -> true) !live)
        end
      done;
      (* Graceful shutdown: close the request side, collect exits. *)
      List.iter
        (fun wk ->
          (try write_frame wk.req_fd "Q" with Unix.Unix_error _ | Fleet_failure _ -> ()))
        !live;
      List.iter reap (List.filter (fun _ -> true) !live);
      live := []);
  Array.map (function Some v -> v | None -> raise (Fleet_failure "shard lost")) results

let run s p =
  Obs.Metrics.incr c_plans;
  let root =
    (not (Domain.DLS.get inside_run)) && not (Domain.DLS.get inside_pool)
  in
  let progress = root && Obs.Progress.enabled () in
  if progress then Obs.Progress.begin_plan ~jobs:p.jobs;
  let ambient = Obs.Ambient.capture () in
  let plan_ord = Obs.Ambient.next_plan () in
  let saved_inside = Domain.DLS.get inside_run in
  Domain.DLS.set inside_run true;
  let results =
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_run saved_inside;
        if progress then Obs.Progress.end_plan ())
      (fun () ->
        let fleet =
          match (s, p.spec) with
          | Procs _, Some spec
            when (not !in_worker_flag) && !worker_command_ref <> None && p.jobs > 1 ->
              Some spec
          | _ -> None
        in
        (* Satellite of the fleet contract: [Procs _] requested at the
           root of a parent process but not honoured — say so once and
           count it, instead of silently running in-process. Workers
           degrade by design (the parent already sharded), and nested
           plans degrade as part of whatever their root chose. *)
        (if fleet = None && root && not !in_worker_flag then
           match (s, p.spec) with
           | Procs _, None -> note_procs_degraded "the plan has no serialisable job spec"
           | Procs _, Some _ when !worker_command_ref = None ->
               note_procs_degraded "no worker command is configured"
           | Procs _, Some _ when p.jobs <= 1 ->
               note_procs_degraded "the plan has a single job"
           | _ -> ());
        match fleet with
        | Some spec ->
            let path = (Obs.Ambient.frame ()).Obs.Ambient.path in
            let journal_path = if root then !journal_ref else None in
            run_procs (workers s) ~specs:(Array.init p.jobs spec) ~plan_ord ~path ~progress
              ~journal_path
        | None -> (
            let q = { p with job = instrument ~ambient ~plan_ord ~progress p.job } in
            match s with
            | Sequential -> run_sequential q
            | Pool w | Procs w ->
                if q.jobs <= 1 || Domain.DLS.get inside_pool then run_sequential q
                else run_pool w q))
  in
  p.reduce results

let map s ~jobs f = run s (plan ~jobs ~job:f ~reduce:Fun.id)

(* --- intra-run tile parallelism --- *)

(* A persistent pool of worker domains that kernels borrow for the
   duration of one fan-out call ([Pool.run_tiles]). Unlike [run_pool]
   above — which spawns domains per plan because plans are long — tile
   tasks are issued once per kernel phase per round, so domain spawn
   cost (~100µs) would swamp the work. Workers therefore persist: they
   sleep on a condition variable between tasks, wake when a new task
   generation is published, claim tile indices from an atomic cursor,
   and go back to sleep. The caller participates too, so [run_tiles]
   never blocks on a sleeping pool.

   Determinism contract: [run_tiles n f] has exactly the semantics of
   [for i = 0 to n - 1 do f i done] provided the [f i] are pairwise
   independent (disjoint writes). Which domain runs which tile — and
   whether fan-out engages at all — is unobservable; kernels built on
   this (flooding's tiled scan, the partitioned edge-MEG engines)
   additionally arrange their own output merges in tile-index order so
   their results are byte-identical at any worker count. *)
module Pool = struct
  let c_tile_plans = Obs.Metrics.counter "exec.tile_plans"

  let c_tiles = Obs.Metrics.counter "exec.tiles"

  (* Worker count: set explicitly by the hosting executable (--jobs),
     else taken from DYNGRAPH_JOBS like [default ()]. *)
  let requested = ref None

  let set_workers w =
    if w < 1 then invalid_arg "Exec.Pool.set_workers: workers must be >= 1";
    requested := Some (min w max_workers)

  let env_workers () = workers (default ())

  let workers () = match !requested with Some w -> w | None -> env_workers ()

  (* Minimum tiles per worker before fan-out engages: below it, the
     per-task handoff (one mutex round-trip per tile) is not worth
     waking the pool. Same warn-once env contract as DYNGRAPH_JOBS. *)
  let tile_min_default = 2

  let tile_min_env () =
    match Sys.getenv_opt "DYNGRAPH_TILE_MIN" with
    | None -> tile_min_default
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some m when m >= 1 -> m
        | Some _ -> tile_min_default
        | None ->
            warn_env "DYNGRAPH_TILE_MIN" s "a positive integer";
            tile_min_default)

  let tile_min_override = ref None

  let set_tile_min = function
    | Some m when m < 1 -> invalid_arg "Exec.Pool.set_tile_min: must be >= 1"
    | o -> tile_min_override := o

  let tile_min () =
    match !tile_min_override with Some m -> m | None -> tile_min_env ()

  let fan_out ntiles =
    ntiles > 0
    && (not (Domain.DLS.get inside_pool))
    &&
    let w = workers () in
    w > 1 && ntiles >= tile_min () * w

  type task = {
    tf : int -> unit;
    ntiles : int;
    cursor : int Atomic.t;
    inflight : int Atomic.t;
    failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  let lock = Mutex.create ()

  let work_cond = Condition.create ()

  let done_cond = Condition.create ()

  let current : task option ref = ref None

  let generation = ref 0

  let quit = ref false

  let domains : unit Domain.t list ref = ref []

  (* Claim-and-run loop shared by workers and the caller. [inflight] is
     raised before the cursor claim, so the completion predicate
     (cursor exhausted AND inflight zero) can never observe a tile that
     is claimed but not yet counted. The first exception wins [failure];
     everyone stops claiming once it is set, extending the pool-drain
     contract of [run] to tile tasks: a failing tile leaves the pool
     idle and immediately reusable. *)
  let drain t =
    let continue = ref true in
    while !continue do
      if Atomic.get t.failure <> None then continue := false
      else begin
        Atomic.incr t.inflight;
        let i = Atomic.fetch_and_add t.cursor 1 in
        if i >= t.ntiles then begin
          ignore (Atomic.fetch_and_add t.inflight (-1));
          continue := false
        end
        else begin
          (match t.tf i with
          | () -> ()
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set t.failure None (Some (e, bt))));
          ignore (Atomic.fetch_and_add t.inflight (-1))
        end
      end
    done

  let finished t =
    (Atomic.get t.cursor >= t.ntiles || Atomic.get t.failure <> None)
    && Atomic.get t.inflight = 0

  let rec worker_loop seen =
    Mutex.lock lock;
    while !generation = seen && not !quit do
      Condition.wait work_cond lock
    done;
    let g = !generation and t = !current and q = !quit in
    Mutex.unlock lock;
    if not q then begin
      (match t with
      | Some t ->
          drain t;
          (* The broadcast is taken only after this worker's final
             inflight decrement, and the caller checks the completion
             predicate under the same lock before waiting — so the
             wakeup cannot be missed. *)
          Mutex.lock lock;
          Condition.broadcast done_cond;
          Mutex.unlock lock
      | None -> ());
      worker_loop g
    end

  (* Workers are joined at process exit so a program that merely used a
     kernel never exits with domains blocked in [Condition.wait]. *)
  let shutdown () =
    Mutex.lock lock;
    quit := true;
    Condition.broadcast work_cond;
    Mutex.unlock lock;
    List.iter Domain.join !domains;
    domains := []

  let ensure_spawned w =
    let have = List.length !domains in
    if have < w - 1 then begin
      if have = 0 then at_exit shutdown;
      Mutex.lock lock;
      let g0 = !generation in
      Mutex.unlock lock;
      for _ = have + 1 to w - 1 do
        domains :=
          Domain.spawn (fun () ->
              Domain.DLS.set inside_pool true;
              worker_loop g0)
          :: !domains
      done
    end

  let run_tiles ntiles tf =
    if ntiles < 0 then invalid_arg "Exec.Pool.run_tiles: ntiles must be >= 0";
    (* Counters are charged before the engage decision, so metric
       totals never depend on worker count or calling context. *)
    Obs.Metrics.incr c_tile_plans;
    Obs.Metrics.add c_tiles ntiles;
    if ntiles > 0 then
      if not (fan_out ntiles) then
        for i = 0 to ntiles - 1 do
          tf i
        done
      else begin
        ensure_spawned (workers ());
        let t =
          {
            tf;
            ntiles;
            cursor = Atomic.make 0;
            inflight = Atomic.make 0;
            failure = Atomic.make None;
          }
        in
        Mutex.lock lock;
        current := Some t;
        incr generation;
        Condition.broadcast work_cond;
        Mutex.unlock lock;
        (* Participate from the calling domain, marked [inside_pool] so
           anything the tiles call degrades to sequential. *)
        let saved = Domain.DLS.get inside_pool in
        Domain.DLS.set inside_pool true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set inside_pool saved)
          (fun () -> drain t);
        Mutex.lock lock;
        while not (finished t) do
          Condition.wait done_cond lock
        done;
        current := None;
        Mutex.unlock lock;
        match Atomic.get t.failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
end
