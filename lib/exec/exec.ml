type scheduler = Sequential | Pool of int

let sequential = Sequential

(* Never below 4: on single-core CI machines recommended_domain_count is
   1 and a hard clamp would silently turn every pool into Sequential,
   leaving the multi-domain path untested. Oversubscription by a few
   domains costs scheduling overhead only; determinism never depends on
   the worker count. *)
let max_workers = max 4 (Domain.recommended_domain_count ())

let pool w =
  if w < 1 then invalid_arg "Exec.pool: workers must be >= 1";
  if w = 1 then Sequential else Pool (min w max_workers)

let of_int w = if w <= 1 then Sequential else pool w

let default () =
  match Sys.getenv_opt "DYNGRAPH_JOBS" with
  | None -> Sequential
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> of_int w
      | Some _ | None -> Sequential)

let workers = function Sequential -> 1 | Pool w -> w

type ('a, 'b) plan = { jobs : int; job : int -> 'a; reduce : 'a array -> 'b }

let plan ~jobs ~job ~reduce =
  if jobs < 0 then invalid_arg "Exec.plan: jobs must be >= 0";
  { jobs; job; reduce }

(* Set while executing inside a pool worker (including the caller's own
   domain while it participates): nested [run]s then stay sequential
   rather than spawning domains recursively. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

let run_sequential p = Array.init p.jobs p.job

(* Fixed pool: [w] workers (w - 1 spawned domains plus the caller) pull
   contiguous chunks of job indices from a shared cursor. Each result
   slot is written by exactly one worker, and [Domain.join] publishes
   all writes to the caller. The first exception wins the [error] slot;
   every worker checks it before claiming another chunk, so a failing
   job drains the pool instead of hanging it. *)
let run_pool w p =
  let n = p.jobs in
  let results = Array.make n None in
  let error = Atomic.make None in
  let cursor = Atomic.make 0 in
  let chunk = max 1 (n / (8 * w)) in
  let worker () =
    let saved = Domain.DLS.get inside_pool in
    Domain.DLS.set inside_pool true;
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n || Atomic.get error <> None then continue := false
      else
        let stop = min n (start + chunk) in
        let i = ref start in
        while !continue && !i < stop do
          (match p.job !i with
          | v -> results.(!i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set error None (Some (e, bt)));
              continue := false);
          incr i
        done
    done;
    Domain.DLS.set inside_pool saved
  in
  let spawned = List.init (min w n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let run s p =
  let results =
    match s with
    | Sequential -> run_sequential p
    | Pool w ->
        if p.jobs <= 1 || Domain.DLS.get inside_pool then run_sequential p
        else run_pool w p
  in
  p.reduce results

let map s ~jobs f = run s (plan ~jobs ~job:f ~reduce:Fun.id)
