type scheduler = Sequential | Pool of int

let sequential = Sequential

(* Never below 4: on single-core CI machines recommended_domain_count is
   1 and a hard clamp would silently turn every pool into Sequential,
   leaving the multi-domain path untested. Oversubscription by a few
   domains costs scheduling overhead only; determinism never depends on
   the worker count. *)
let max_workers = max 4 (Domain.recommended_domain_count ())

let pool w =
  if w < 1 then invalid_arg "Exec.pool: workers must be >= 1";
  if w = 1 then Sequential else Pool (min w max_workers)

let of_int w = if w <= 1 then Sequential else pool w

let default () =
  match Sys.getenv_opt "DYNGRAPH_JOBS" with
  | None -> Sequential
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> of_int w
      | Some _ | None -> Sequential)

let workers = function Sequential -> 1 | Pool w -> w

type ('a, 'b) plan = { jobs : int; job : int -> 'a; reduce : 'a array -> 'b }

let plan ~jobs ~job ~reduce =
  if jobs < 0 then invalid_arg "Exec.plan: jobs must be >= 0";
  { jobs; job; reduce }

(* Set while executing inside a pool worker (including the caller's own
   domain while it participates): nested [run]s then stay sequential
   rather than spawning domains recursively. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

(* Set on the calling domain for the duration of any [run]: together
   with [inside_pool] it identifies root-level plans, the ones progress
   reporting is scoped to. *)
let inside_run = Domain.DLS.new_key (fun () -> false)

(* --- observability --- *)

let c_plans = Obs.Metrics.counter "exec.plans"

let c_claimed = Obs.Metrics.counter "exec.jobs_claimed"

let c_completed = Obs.Metrics.counter "exec.jobs_completed"

let c_failed = Obs.Metrics.counter "exec.jobs_failed"

(* Per-worker heartbeat gauges, interned lazily (racy stores are benign:
   interning is keyed by name, so both racers get the same gauge). *)
let heartbeats = Array.make 64 None

let heartbeat w =
  if w < Array.length heartbeats then begin
    let g =
      match heartbeats.(w) with
      | Some g -> g
      | None ->
          let g = Obs.Metrics.gauge (Printf.sprintf "exec.worker%d.heartbeat" w) in
          heartbeats.(w) <- Some g;
          g
    in
    Obs.Metrics.set_gauge g (Obs.Clock.now ())
  end

(* Wrap a plan's job with its observability envelope. The wrapper is
   identical on the sequential and pool paths, so counters, trace
   coordinates and progress ticks never depend on the scheduler. With
   everything disabled [Ambient.capture] is [Inactive] and the wrapper
   costs one match plus four no-op counter calls per job. *)
let instrument ~ambient ~plan_ord ~progress job i =
  Obs.Ambient.with_job ambient ~plan:plan_ord ~job:i (fun () ->
      Obs.Metrics.incr c_claimed;
      if Obs.Trace.enabled () then Obs.Trace.emit "exec.claim" [];
      match job i with
      | v ->
          Obs.Metrics.incr c_completed;
          if Obs.Trace.enabled () then Obs.Trace.emit "exec.finish" [];
          if progress then Obs.Progress.tick ();
          v
      | exception e ->
          Obs.Metrics.incr c_failed;
          if Obs.Trace.enabled () then Obs.Trace.emit "exec.fail" [];
          raise e)

let run_sequential p = Array.init p.jobs p.job

(* Fixed pool: [w] workers (w - 1 spawned domains plus the caller) pull
   contiguous chunks of job indices from a shared cursor. Each result
   slot is written by exactly one worker, and [Domain.join] publishes
   all writes to the caller. The first exception wins the [error] slot;
   every worker checks it before claiming another chunk, so a failing
   job drains the pool instead of hanging it. *)
let run_pool w p =
  let n = p.jobs in
  let results = Array.make n None in
  let error = Atomic.make None in
  let cursor = Atomic.make 0 in
  let chunk = max 1 (n / (8 * w)) in
  let worker wid () =
    let saved = Domain.DLS.get inside_pool in
    Domain.DLS.set inside_pool true;
    let continue = ref true in
    while !continue do
      let start = Atomic.fetch_and_add cursor chunk in
      if start >= n || Atomic.get error <> None then continue := false
      else begin
        if Obs.Metrics.enabled () then heartbeat wid;
        let stop = min n (start + chunk) in
        let i = ref start in
        while !continue && !i < stop do
          (match p.job !i with
          | v -> results.(!i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set error None (Some (e, bt)));
              continue := false);
          incr i
        done
      end
    done;
    Domain.DLS.set inside_pool saved
  in
  let spawned = List.init (min w n - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  (match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let run s p =
  Obs.Metrics.incr c_plans;
  let root =
    (not (Domain.DLS.get inside_run)) && not (Domain.DLS.get inside_pool)
  in
  let progress = root && Obs.Progress.enabled () in
  if progress then Obs.Progress.begin_plan ~jobs:p.jobs;
  let ambient = Obs.Ambient.capture () in
  let plan_ord = Obs.Ambient.next_plan () in
  let p = { p with job = instrument ~ambient ~plan_ord ~progress p.job } in
  let saved_inside = Domain.DLS.get inside_run in
  Domain.DLS.set inside_run true;
  let results =
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_run saved_inside;
        if progress then Obs.Progress.end_plan ())
      (fun () ->
        match s with
        | Sequential -> run_sequential p
        | Pool w ->
            if p.jobs <= 1 || Domain.DLS.get inside_pool then run_sequential p
            else run_pool w p)
  in
  p.reduce results

let map s ~jobs f = run s (plan ~jobs ~job:f ~reduce:Fun.id)
