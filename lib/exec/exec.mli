(** Deterministic parallel execution of independent jobs.

    A {!plan} is an array of independent jobs — thunks indexed by a job
    number, each deterministically seeded by its caller — plus a reducer
    that folds the job results, in index order, into one value. A
    {!scheduler} decides how the jobs run: strictly in order on the
    calling domain ({!sequential}), or distributed over a fixed pool of
    worker domains ({!pool}).

    The determinism contract: because every job receives its randomness
    through its own index (e.g. [Prng.Rng.substream rng i]) and results
    are reduced in index order, the reducer sees the exact same array
    whatever the scheduler — [run sequential p] and [run (pool w) p] are
    equal for every [w]. Schedulers change wall-clock time, never
    results.

    Jobs must not share mutable state: a job that needs a stateful model
    instance must construct its own (take a builder, not an instance).

    Observability: every job runs inside an {!Obs.Ambient.with_job}
    envelope — identical on both schedulers — that charges the
    [exec.plans] / [exec.jobs_claimed] / [exec.jobs_completed] /
    [exec.jobs_failed] counters, emits [exec.claim] / [exec.finish] /
    [exec.fail] trace events at deterministic plan/job coordinates,
    ticks {!Obs.Progress} for root-level plans, and propagates the
    caller's metric-attribution scope to pool workers. Pool workers
    additionally stamp an [exec.worker<k>.heartbeat] gauge each time
    they claim a chunk. With metrics, tracing and progress all disabled
    the envelope is a handful of atomic loads per job. *)

type scheduler
(** How the jobs of a plan are executed. *)

val sequential : scheduler
(** Run jobs in index order on the calling domain. *)

val pool : int -> scheduler
(** [pool w] runs jobs on a fixed pool of [w] worker domains (the caller
    counts as one), distributing jobs in contiguous chunks through a
    shared atomic cursor. [w] is clamped to
    [max 4 (Domain.recommended_domain_count ())] — the lower bound keeps
    the multi-domain path exercisable on single-core CI machines, where
    extra workers cost only scheduling overhead, never determinism.
    [pool 1] is {!sequential}. Raises [Invalid_argument] when [w < 1]. *)

val of_int : int -> scheduler
(** [of_int w] is {!sequential} when [w <= 1], else [pool w]. The shape
    expected by a [--jobs N] command-line flag. *)

val default : unit -> scheduler
(** [of_int] applied to the [DYNGRAPH_JOBS] environment variable;
    {!sequential} when unset or unparsable. *)

val workers : scheduler -> int
(** Worker count: 1 for {!sequential}, the (clamped) pool size
    otherwise. *)

type ('a, 'b) plan
(** [jobs] independent computations producing ['a], reduced to a ['b]. *)

val plan : jobs:int -> job:(int -> 'a) -> reduce:('a array -> 'b) -> ('a, 'b) plan
(** [plan ~jobs ~job ~reduce]: [job i] for [i] in [0 .. jobs - 1];
    [reduce] receives [[| job 0; ...; job (jobs - 1) |]]. Raises
    [Invalid_argument] when [jobs < 0]. *)

val run : scheduler -> ('a, 'b) plan -> 'b
(** Execute a plan. Results reach the reducer in job-index order
    regardless of the scheduler. If a job raises, the pool drains
    (no worker is left running), the remaining unclaimed jobs are
    skipped, and the first exception observed is re-raised with its
    backtrace — [run] never hangs on a failing job.

    A [pool] run started from inside another pool's worker runs
    sequentially instead of spawning nested domains, so one scheduler
    value can be threaded through every layer of a computation without
    oversubscribing the machine. *)

val map : scheduler -> jobs:int -> (int -> 'a) -> 'a array
(** [map s ~jobs f] is [run s (plan ~jobs ~job:f ~reduce:Fun.id)]. *)
