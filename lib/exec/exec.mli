(** Deterministic parallel execution of independent jobs.

    A {!plan} is an array of independent jobs — thunks indexed by a job
    number, each deterministically seeded by its caller — plus a reducer
    that folds the job results, in index order, into one value. A
    {!scheduler} decides how the jobs run: strictly in order on the
    calling domain ({!sequential}), distributed over a fixed pool of
    worker domains ({!pool}), or sharded across a fleet of forked worker
    {e processes} ({!procs}).

    The determinism contract: because every job receives its randomness
    through its own index (e.g. [Prng.Rng.substream rng i]) and results
    are reduced in index order, the reducer sees the exact same array
    whatever the scheduler — [run sequential p], [run (pool w) p] and
    [run (procs w) p] are equal for every [w]. Schedulers change
    wall-clock time, never results.

    Jobs must not share mutable state: a job that needs a stateful model
    instance must construct its own (take a builder, not an instance).

    Observability: every job runs inside an {!Obs.Ambient.with_job}
    envelope — identical on every scheduler — that charges the
    [exec.plans] / [exec.jobs_claimed] / [exec.jobs_completed] /
    [exec.jobs_failed] counters, emits [exec.claim] / [exec.finish] /
    [exec.fail] trace events at deterministic plan/job coordinates,
    ticks {!Obs.Progress} for root-level plans, and propagates the
    caller's metric-attribution scope to pool workers. Pool workers
    additionally stamp an [exec.worker<k>.heartbeat] gauge each time
    they claim a chunk. Under {!procs} the envelope runs worker-side and
    its counter deltas and trace events are merged back into the parent
    ({!Obs.Metrics.absorb}, {!Obs.Trace.absorb}), so a merged metrics or
    trace flush is identical to a single-process one modulo wall times.
    With metrics, tracing and progress all disabled the envelope is a
    handful of atomic loads per job. *)

type scheduler
(** How the jobs of a plan are executed. *)

val sequential : scheduler
(** Run jobs in index order on the calling domain. *)

val pool : int -> scheduler
(** [pool w] runs jobs on a fixed pool of [w] worker domains (the caller
    counts as one), distributing jobs in contiguous chunks through a
    shared atomic cursor. [w] is clamped to
    [max 4 (Domain.recommended_domain_count ())] — the lower bound keeps
    the multi-domain path exercisable on single-core CI machines, where
    extra workers cost only scheduling overhead, never determinism.
    [pool 1] is {!sequential}. Raises [Invalid_argument] when [w < 1]. *)

val procs : int -> scheduler
(** [procs w] runs the jobs of a {!plan_spec} plan on a fleet of [w]
    forked worker processes (clamped like {!pool}). Unlike {!pool},
    [procs 1] is {e not} {!sequential}: a single worker process is still
    crash-isolated from the parent. Plans without a spec (or nested
    plans inside a fleet run) degrade to the {!pool} path with the same
    worker count. Requires {!set_worker_command} to have been called;
    see {!Worker.serve} for the worker side. Raises [Invalid_argument]
    when [w < 1]. *)

val of_int : int -> scheduler
(** [of_int w] is {!sequential} when [w <= 1], else [pool w]. The shape
    expected by a [--jobs N] command-line flag. *)

val default : unit -> scheduler
(** [of_int] applied to the [DYNGRAPH_JOBS] environment variable;
    {!sequential} when unset or unparsable. An unparsable value is
    reported once on stderr rather than silently ignored. *)

val default_procs : unit -> int
(** The [DYNGRAPH_PROCS] environment variable as a fleet size; [0]
    (fleet disabled) when unset, negative or unparsable. An unparsable
    value is reported once on stderr. *)

val workers : scheduler -> int
(** Worker count: 1 for {!sequential}, the (clamped) pool or fleet size
    otherwise. *)

exception Fleet_failure of string
(** Raised by {!run} on the {!procs} path when the fleet cannot deliver:
    a worker reported a job exception (the message carries the worker's
    rendered exception and backtrace), a shard kept crashing workers
    past the retry budget, or the framed protocol was violated. *)

(** Serializable job specifications: the data a worker process needs to
    reconstruct and execute one job, plus the codec for its result.

    A spec is [{id; payload; decode}]: [id] names the job for journal
    matching and error messages, [payload] is an opaque binary request
    the worker-side dispatcher interprets, and [decode] turns the
    worker's binary response back into the job's result value. {!Buf}
    provides the length-prefixed binary primitives both sides share
    (8-byte big-endian integers, IEEE-754 bit-pattern floats,
    length-prefixed strings). *)
module Spec : sig
  type 'a t = { id : string; payload : string; decode : string -> 'a }

  module Buf : sig
    exception Corrupt of string
    (** Raised by readers on truncated or malformed input. *)

    val add_int : Buffer.t -> int -> unit

    val add_int64 : Buffer.t -> int64 -> unit

    val add_float : Buffer.t -> float -> unit

    val add_string : Buffer.t -> string -> unit

    val add_pairs : Buffer.t -> (string * int) list -> unit

    type reader = { data : string; mutable pos : int }

    val reader : string -> reader

    val need : reader -> int -> unit
    (** [need r n] raises {!Corrupt} unless [n >= 0] and at least [n]
        bytes remain. *)

    val char : reader -> char

    val int : reader -> int

    val int64 : reader -> int64

    val float : reader -> float

    val string : reader -> string

    val pairs : reader -> (string * int) list

    val at_end : reader -> bool
  end
end

(** The resumable checkpoint journal used by [run --procs --journal].

    On-disk format (DESIGN.md §10): a sequence of frames, each
    [8-byte length | payload | 8-byte checksum]. The first frame is a
    header identifying the plan (magic, job count, spec digest); each
    subsequent frame records one completed shard's raw response payload.
    Appends are fsynced, so every frame that parses is trustworthy; a
    torn tail frame (parent killed mid-append) is detected by length or
    checksum and truncated away on resume. A header that does not match
    the current plan discards the journal and starts fresh.

    Clean resume also compacts: when the file holds anything beyond the
    live frames — a torn tail, duplicate shards re-run after a worker
    crash, malformed or out-of-range records — it is rewritten as
    header + first-write-wins live entries (checksummed frames, fsynced)
    to a sibling temp file and atomically renamed over the original, so
    a long sweep's journal cannot grow without bound across resumes and
    a crash mid-compaction leaves the old journal intact. Compactions
    are counted by the [exec.journal_compactions] metric.

    Exposed for the test-suite; {!run} drives it via {!set_journal}. *)
module Journal : sig
  type entry = { job : int; spec_id : string; data : string }

  type t

  val open_ : path:string -> jobs:int -> digest:string -> t * entry list
  (** Open (creating or resuming) the journal at [path] for a plan of
      [jobs] shards identified by [digest]. Returns the journal plus the
      live completed-shard entries already on disk — in-range, first
      write per job — empty after a fresh create or a header mismatch.
      A resume that found any dead bytes (torn tail, duplicates,
      malformed records) compacts the file first; see above.*)

  val append : t -> job:int -> spec_id:string -> data:string -> unit
  (** Record a completed shard (durable before return). *)

  val close : t -> unit
end

(** Fleet configuration, set by the hosting executable before running
    {!procs} plans. *)

val set_worker_command : string array option -> unit
(** The argv (program first) to spawn for each fleet worker — typically
    the current executable with a subcommand that calls {!Worker.serve}.
    [None] (the initial state) disables the fleet path: {!procs} plans
    degrade to {!pool}. *)

val set_journal : string option -> unit
(** Checkpoint journal path for root-level {!procs} plans ([None]
    disables checkpointing, the initial state). Nested plans are never
    journaled. *)

val set_worker_timeout : float option -> unit
(** Per-shard budget in seconds, measured on the {e monotonic} clock
    ({!Obs.Clock.monotonic}) so NTP steps and suspend/resume cannot
    falsely fire — or indefinitely defer — hang detection. A worker that
    holds one shard past the budget without signs of life is SIGKILLed
    and its shard re-run on a fresh worker; a forwarded progress frame
    ('P') counts as a sign of life and restarts the shard's deadline.
    Defaults to the [DYNGRAPH_PROC_TIMEOUT] environment variable when
    set and parsable (warned once otherwise), else no timeout. *)

(** Deadline arithmetic for hang detection, on {!Obs.Clock.monotonic}.
    Exposed so the conversion is unit-testable with an injected clock
    (no real sleeps). *)
module Deadline : sig
  type t

  val none : t
  (** Unarmed: never {!expired}, waits forever. *)

  val arm : float -> t
  (** [arm seconds] is the deadline [seconds] from now on the monotonic
      clock. *)

  val armed : t -> bool

  val expired : t -> bool
  (** Whether the monotonic clock has reached an armed deadline.
      [expired none] is always [false]. *)

  val seconds_left : t -> float
  (** Monotonic seconds until expiry ([infinity] when unarmed; may be
      negative once expired). *)
end

val last_procs_degradation : unit -> string option
(** The reason the most recent root-level [Procs _] plan in this process
    degraded to the in-process pool, if any ever has. Each occurrence
    also increments the [exec.procs_degraded] counter and the first one
    warns on stderr. *)

val in_worker : unit -> bool
(** Whether this process is a fleet worker ({!Worker.serve} was
    entered). Inside a worker, {!procs} plans degrade to {!pool} —
    workers never fork grandchildren. *)

(** The worker side of the fleet protocol. *)
module Worker : sig
  val serve :
    ?forward_progress:bool -> dispatch:(id:string -> payload:string -> string) -> unit -> unit
  (** Serve framed job requests from stdin, writing framed responses to
      stdout, until EOF or an explicit shutdown frame.

      Workers never render progress to the shared stderr (concurrent
      shards would tear each other's lines): {!Obs.Progress} is disabled
      on entry unless [forward_progress] is set (the parent passed
      [--progress-pipe]), in which case progress updates from the jobs
      this worker runs are forwarded as framed 'P' messages for the
      parent to render as one coherent stream — and to treat as liveness
      for hang detection.

      For each request,
      [dispatch ~id ~payload] executes the job and returns its encoded
      result; it runs inside the standard observability envelope with
      the parent-assigned plan/job coordinates, after resetting this
      process's metrics and trace ring so the response carries exactly
      this job's counter deltas and trace events for the parent to
      merge. A [dispatch] exception becomes an error response carrying
      the rendered exception and backtrace (the parent then fails the
      whole plan, matching in-process semantics).

      File descriptor 1 is re-pointed at stderr on entry so stray prints
      from experiment code cannot corrupt the protocol stream.

      Test instrumentation: [DYNGRAPH_FLEET_CRASH="ID:MARKER"] makes the
      worker exit (code 70) the first time it is asked to run spec [ID]
      while [MARKER] does not exist, creating [MARKER] first so the
      fault is one-shot; [DYNGRAPH_FLEET_HANG] wedges it instead. Both
      exist to drive the crash-isolation and timeout paths
      deterministically from tests. *)
end

type ('a, 'b) plan
(** [jobs] independent computations producing ['a], reduced to a ['b]. *)

val plan : jobs:int -> job:(int -> 'a) -> reduce:('a array -> 'b) -> ('a, 'b) plan
(** [plan ~jobs ~job ~reduce]: [job i] for [i] in [0 .. jobs - 1];
    [reduce] receives [[| job 0; ...; job (jobs - 1) |]]. Raises
    [Invalid_argument] when [jobs < 0]. *)

val plan_spec :
  jobs:int ->
  job:(int -> 'a) ->
  spec:(int -> 'a Spec.t) ->
  reduce:('a array -> 'b) ->
  ('a, 'b) plan
(** Like {!plan}, with a serializable spec per job so the plan can run
    on a {!procs} fleet. Contract: [(spec i).decode] applied to the
    worker's response for [spec i] must equal [job i] — the fleet path
    runs the spec, every other scheduler runs [job]. *)

val run : scheduler -> ('a, 'b) plan -> 'b
(** Execute a plan. Results reach the reducer in job-index order
    regardless of the scheduler. If a job raises, the pool drains
    (no worker is left running), the remaining unclaimed jobs are
    skipped, and the first exception observed is re-raised with its
    backtrace — [run] never hangs on a failing job.

    A [pool] run started from inside another pool's worker runs
    sequentially instead of spawning nested domains, so one scheduler
    value can be threaded through every layer of a computation without
    oversubscribing the machine.

    The [procs] fleet path (spec'd plan, worker command set, more than
    one job, not already inside a worker) shards jobs over worker
    processes in index order. A worker that crashes or exceeds the shard
    timeout loses only its own shard, which is re-run on a fresh worker
    (up to 3 attempts, counted by [exec.shard_reruns]); completed shards
    are kept, and checkpointed to the {!set_journal} journal when one is
    configured, so a killed parent resumes instead of recomputing. A
    shard that keeps killing workers, or a job exception reported by a
    worker, fails the plan with {!Fleet_failure}. *)

val map : scheduler -> jobs:int -> (int -> 'a) -> 'a array
(** [map s ~jobs f] is [run s (plan ~jobs ~job:f ~reduce:Fun.id)]. *)

(** Intra-run tile parallelism: a persistent pool of worker domains
    that kernels borrow for one fan-out call at a time.

    {!run} parallelizes {e across} independent trials; [Pool] is the
    complementary axis — it splits the inside of one large run
    (flooding's tiled frontier scan, the partitioned off-heap edge-MEG
    step) into independent tiles. Workers persist between calls,
    sleeping on a condition variable, because tile tasks are issued per
    kernel phase per round and per-call domain spawns would swamp the
    work; they are joined automatically at process exit.

    Determinism contract: [run_tiles n f] is semantically
    [for i = 0 to n - 1 do f i done] provided the [f i] have disjoint
    effects. Whether fan-out engages, and which domain runs which tile,
    is unobservable — callers that merge per-tile output do so in
    tile-index order, keeping results byte-identical at any worker
    count. Calls made from inside a pool worker (either this pool or a
    {!run} pool) always degrade to the sequential loop, so kernels can
    be used freely under trial-level parallelism without
    oversubscribing the machine. *)
module Pool : sig
  val set_workers : int -> unit
  (** Target worker count for subsequent fan-outs, clamped like {!pool}.
      Typically wired to [--jobs] by the hosting executable. Raises
      [Invalid_argument] when [w < 1]. *)

  val workers : unit -> int
  (** The current target: the last {!set_workers} value, else
      [DYNGRAPH_JOBS] (via {!default}), else 1. *)

  val tile_min : unit -> int
  (** Minimum tiles per worker before {!run_tiles} fans out (default 2):
      below [tile_min () * workers ()] tiles, the call runs inline. From
      the [DYNGRAPH_TILE_MIN] environment variable when set and
      parsable (warned once otherwise), unless overridden by
      {!set_tile_min}. *)

  val set_tile_min : int option -> unit
  (** Override {!tile_min} ([None] returns to the environment/default
      value). Raises [Invalid_argument] on [Some m] with [m < 1]. *)

  val fan_out : int -> bool
  (** [fan_out ntiles] is whether [run_tiles ntiles f] would engage the
      worker pool rather than run inline: more than one worker, at
      least [tile_min () * workers ()] tiles, and the caller is not
      itself a pool worker. Exposed so kernels with a cheaper fused
      sequential path can branch before paying the parallel pipeline's
      extra passes — the choice must never be observable in results. *)

  val run_tiles : int -> (int -> unit) -> unit
  (** [run_tiles ntiles f] runs [f 0 .. f (ntiles - 1)], possibly in
      parallel on the persistent pool with the caller participating.
      The [f i] must have pairwise-disjoint effects. If some [f i]
      raises, remaining unclaimed tiles are skipped, the pool drains to
      idle (and stays reusable), and the first exception observed is
      re-raised with its backtrace. Charges [exec.tile_plans] /
      [exec.tiles] counters identically whether or not fan-out
      engages. Raises [Invalid_argument] when [ntiles < 0]. *)
end
