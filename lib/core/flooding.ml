type protocol = Flood | Push of float | Parsimonious of int

type result = { time : int option; trajectory : int array; arrivals : int array }

let default_cap n = 10_000 + (200 * n)

let run ?cap ?(protocol = Flood) ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Flooding.run: source out of range";
  (match protocol with
  | Push p when not (p > 0. && p <= 1.) ->
      invalid_arg "Flooding.run: push probability outside (0, 1]"
  | Parsimonious k when k < 1 -> invalid_arg "Flooding.run: parsimonious window must be >= 1"
  | Flood | Push _ | Parsimonious _ -> ());
  let cap = match cap with Some c -> c | None -> default_cap n in
  Dynamic.reset g (Prng.Rng.split rng);
  let informed = Array.make n false in
  let informed_at = Array.make n max_int in
  informed.(source) <- true;
  informed_at.(source) <- 0;
  let n_informed = ref 1 in
  let trajectory = ref [ 1 ] in
  let fresh = ref [] in
  let t = ref 0 in
  let active u =
    match protocol with
    | Flood | Push _ -> informed.(u)
    | Parsimonious k -> informed.(u) && !t - informed_at.(u) < k
  in
  let transmits () =
    match protocol with Push p -> Prng.Rng.bernoulli rng p | Flood | Parsimonious _ -> true
  in
  let consider sender receiver =
    if active sender && (not informed.(receiver)) && transmits () then
      fresh := receiver :: !fresh
  in
  while !n_informed < n && !t < cap do
    (* Edges of E_t determine I_{t+1}. *)
    fresh := [];
    Dynamic.iter_edges g (fun u v ->
        consider u v;
        consider v u);
    incr t;
    List.iter
      (fun v ->
        if not informed.(v) then begin
          informed.(v) <- true;
          informed_at.(v) <- !t;
          incr n_informed
        end)
      !fresh;
    trajectory := !n_informed :: !trajectory;
    Dynamic.step g
  done;
  {
    time = (if !n_informed = n then Some !t else None);
    trajectory = Array.of_list (List.rev !trajectory);
    arrivals = Array.map (fun at -> if at = max_int then -1 else at) informed_at;
  }

let time ?cap ?protocol ~rng ~source g = (run ?cap ?protocol ~rng ~source g).time

let trial_time ?cap ?protocol ~rng ~source g =
  let cap_value = match cap with Some c -> c | None -> default_cap (Dynamic.n g) in
  match time ~cap:cap_value ?protocol ~rng ~source g with
  | Some t -> t
  | None -> cap_value

let mean_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ~trials ?(source = 0) build =
  if trials < 1 then invalid_arg "Flooding.mean_time: trials must be >= 1";
  (* Substreams are derived up front, on the calling domain: trial [i]'s
     randomness depends only on [rng]'s current state and [i], never on
     which worker runs it or in what order. *)
  let rngs = Array.init trials (Prng.Rng.substream rng) in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source (build ()) in
  let reduce times =
    let summary = Stats.Summary.create () in
    Array.iter (fun t -> Stats.Summary.add summary (float_of_int t)) times;
    summary
  in
  Exec.run sched (Exec.plan ~jobs:trials ~job ~reduce)

let characteristic_time result =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun a ->
      if a > 0 then begin
        total := !total + a;
        incr count
      end)
    result.arrivals;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count

let worst_source_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ?sources build =
  let sources =
    match sources with
    | Some l -> Array.of_list l
    | None -> Array.init (Dynamic.n (build ())) (fun i -> i)
  in
  (* Seeded by source id, not job index, so the result is independent of
     the sources list's order as well as of the scheduler. *)
  let rngs = Array.map (Prng.Rng.substream rng) sources in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source:sources.(i) (build ()) in
  Exec.run sched
    (Exec.plan ~jobs:(Array.length sources) ~job ~reduce:(Array.fold_left max 0))
