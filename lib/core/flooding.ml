module St = Graph.Storage

type protocol = Flood | Push of float | Parsimonious of int

type result = { time : int option; trajectory : int array; arrivals : int array }

let default_cap n = 10_000 + (200 * n)

(* Observability. Counters total deterministic work items (rounds,
   snapshots, scanned edges), so their values are scheduler- and
   worker-count-independent; trace events are coarse (run boundaries,
   quarter milestones, cap hits — never per edge). Disabled, each hook
   is one atomic load. [flood.edges] counts edge slots the kernel
   actually scanned: full snapshot lengths on the enumeration path,
   Σ deg(active) on the frontier path — so the counter itself shows the
   frontier kernel touching less of the graph. [flood.delta_edges]
   totals the births + deaths applied incrementally instead of being
   re-enumerated. *)
let c_runs = Obs.Metrics.counter "flood.runs"

let c_rounds = Obs.Metrics.counter "flood.rounds"

let c_snapshots = Obs.Metrics.counter "flood.snapshots"

let c_edges = Obs.Metrics.counter "flood.edges"

let c_delta_edges = Obs.Metrics.counter "flood.delta_edges"

let c_cap_hits = Obs.Metrics.counter "flood.cap_hits"

(* The kernel allocates its working set once per domain, not per run:
   the informed/queued bitsets, the arrival-order and frontier arrays,
   the trajectory buffer, the legacy path's edge buffer and the delta
   path's {!Adj_sync} all live in a domain-local scratch,
   re-initialised (O(n)) and reused whenever consecutive runs agree on
   [n] — which is every iteration of a trial loop. The whole scratch
   lives in the {!Graph.Storage} layer — packed bitsets and int32
   Bigarray vectors — so its major-heap footprint is a handful of
   control records, independent of [n]. Domain-local state never
   crosses workers, so parallel determinism is untouched; the adjacency
   view is re-keyed by physical model identity (and storage layout) and
   invalidated per run, so only its grown row storage survives, never
   stale topology.

   Two scan strategies, chosen once per run:

   - Delta-capable models ({!Dynamic.has_deltas}) keep an incremental
     adjacency in sync through {!Adj_sync} (which itself chooses
     between O(Δ) patching and an O(n + m) rebuild per round — see its
     docs) and scan rows instead of whole snapshots. Plain flooding
     draws no coins, so it may scan whichever side of the cut is
     smaller: the active rows, or — once most nodes are informed — the
     remaining uninformed rows with early exit on the first informed
     neighbour. Push and Parsimonious scan the active rows in arrival
     order; arrival times are nondecreasing along [order], so the
     Parsimonious window's expired nodes form a prefix and one
     monotone pointer maintains the active suffix.

   - Everything else takes the original path: enumerate the snapshot
     into a reused Edge_buffer and consider both directions of every
     edge. Observable behaviour on this path is identical to the
     original kernel (same sets, same coin order).

   On an arena-backed (off-heap) adjacency, the plain-flooding
   informed-side scan additionally runs {e tiled}: candidate receivers
   are staged per active row, partitioned by counting sort into
   [St.chunk_nodes]-wide node tiles, and only then tested against the
   informed/queued bitsets — so the random bit traffic of a round is
   confined to one 4 KiB bitset window at a time instead of roaming an
   [n/8]-byte array (DESIGN.md section 9). Flooding draws no coins and
   its outputs are scan-order-independent, so the tiled scan is
   observationally identical to the in-order one; Push and
   Parsimonious coins are pinned to arrival-then-row order by the
   goldens, which is exactly the order a tiled scan destroys — they
   keep the in-order scan on every layout.

   The two paths reach the same informed sets at the same times; they
   differ only in the order protocol coins are drawn (frontier scans by
   arriving sender, enumeration by edge), which is why Push goldens on
   delta-capable models were regenerated when the frontier path
   landed — see DESIGN.md section 8. *)
type scratch = {
  mutable s_n : int;  (* node count the arrays are sized for; -1 initially *)
  mutable informed : St.Bitset.t;
  mutable queued : St.Bitset.t;
  mutable informed_at : St.I32.t;  (* -1 while uninformed *)
  mutable order : St.I32.t;
  mutable frontier : St.I32.t;
  mutable unf : St.I32.t;      (* uninformed nodes, compact *)
  mutable unf_pos : St.I32.t;  (* position of node v in [unf] while uninformed *)
  traj : St.I32.t;             (* grows via the explicit ensure contract *)
  stage : St.I32.t;            (* tiled scan: candidates in row order *)
  bins : St.I32.t;             (* tiled scan: candidates in tile order *)
  mutable tile_cnt : int array;
  mutable tile_cur : int array;
  (* Parallel tiled scan (DESIGN.md section 11): per-slice/per-tile
     bookkeeping for the fanned-out pipeline. [par_cnt]/[par_cur] are
     slice-major S x T matrices (candidate counts and scatter cursors),
     [par_sl] holds S + 1 slice offsets into [stage], [par_scan] the
     per-slice scanned-entry counts, [par_tile] T + 1 tile offsets into
     [bins], [par_out] the per-tile newly-queued counts. Sized on
     demand: S tracks the worker count, T the node-tile count. *)
  mutable par_cnt : int array;
  mutable par_cur : int array;
  mutable par_sl : int array;
  mutable par_scan : int array;
  mutable par_tile : int array;
  mutable par_out : int array;
  mutable edges : Graph.Edge_buffer.t;
  mutable sync_for : Dynamic.t option;  (* physical key for [sync] *)
  mutable sync_off : bool;              (* layout the cached sync was built with *)
  mutable sync : Adj_sync.t option;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        s_n = -1;
        informed = St.Bitset.create 0;
        queued = St.Bitset.create 0;
        informed_at = St.I32.create 1;
        order = St.I32.create 1;
        frontier = St.I32.create 1;
        unf = St.I32.create 1;
        unf_pos = St.I32.create 1;
        traj = St.I32.create 256;
        stage = St.I32.create 16;
        bins = St.I32.create 16;
        tile_cnt = [| 0 |];
        tile_cur = [| 0 |];
        par_cnt = [||];
        par_cur = [||];
        par_sl = [||];
        par_scan = [||];
        par_tile = [||];
        par_out = [||];
        edges = Graph.Edge_buffer.create ~capacity:16 ();
        sync_for = None;
        sync_off = false;
        sync = None;
      })

(* The full execution, leaving its results in the domain-local scratch:
   [run] materialises trajectory and arrivals from it, while [time]
   reads only the completion step — so a trial loop at n = 10⁶ never
   allocates the two O(n) result arrays it would throw away. *)
let run_raw ?cap ?(protocol = Flood) ?storage ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Flooding.run: source out of range";
  if n > St.max_nodes then invalid_arg "Flooding.run: n exceeds the int32 id range";
  (match protocol with
  | Push p when not (p > 0. && p <= 1.) ->
      invalid_arg "Flooding.run: push probability outside (0, 1]"
  | Parsimonious k when k < 1 -> invalid_arg "Flooding.run: parsimonious window must be >= 1"
  | Flood | Push _ | Parsimonious _ -> ());
  let cap = match cap with Some c -> c | None -> default_cap n in
  Obs.Metrics.incr c_runs;
  let tracing = Obs.Trace.enabled () in
  if tracing then Obs.Trace.emit "flood.start" [ ("n", Int n); ("source", Int source) ];
  (* Quarter milestones |I_t| >= ceil(k n / 4): thresholds the initial
     informed set already meets (tiny n) are skipped silently. *)
  let milestones = [| ((n + 3) / 4, 1); ((n + 1) / 2, 2); (((3 * n) + 3) / 4, 3); (n, 4) |] in
  let next_milestone = ref 0 in
  while !next_milestone < 4 && fst milestones.(!next_milestone) <= 1 do
    incr next_milestone
  done;
  Dynamic.reset g (Prng.Rng.split rng);
  let sc = Domain.DLS.get scratch_key in
  if sc.s_n <> n then begin
    sc.s_n <- n;
    sc.informed <- St.Bitset.create n;
    sc.queued <- St.Bitset.create n;
    sc.informed_at <- St.I32.create n;
    sc.order <- St.I32.create n;
    sc.frontier <- St.I32.create n;
    sc.unf <- St.I32.create n;
    sc.unf_pos <- St.I32.create n;
    let ntiles = ((n - 1) lsr St.chunk_shift) + 1 in
    sc.tile_cnt <- Array.make ntiles 0;
    sc.tile_cur <- Array.make ntiles 0
  end
  else begin
    St.Bitset.clear_all sc.informed;
    St.Bitset.clear_all sc.queued
  end;
  St.I32.fill sc.informed_at 0 n (-1);
  let informed = sc.informed in
  let queued = sc.queued in
  let informed_at = sc.informed_at in
  St.Bitset.unsafe_set informed source;
  St.I32.unsafe_set informed_at source 0;
  let n_informed = ref 1 in
  (* Informed nodes in arrival order; length is [n_informed]. *)
  let order = sc.order in
  St.I32.unsafe_set order 0 source;
  let traj_len = ref 0 in
  let push_traj v =
    St.I32.ensure sc.traj (!traj_len + 1);
    St.I32.unsafe_set sc.traj !traj_len v;
    incr traj_len
  in
  push_traj 1;
  let frontier = sc.frontier in
  let frontier_len = ref 0 in
  let t = ref 0 in
  (* Uninformed-node list for plain flooding's min-side scan; compact
     with swap-remove, mirrored by [unf_pos]. Only maintained when
     [track_unf] is on (Flood on the delta path). *)
  let unf = sc.unf in
  let unf_pos = sc.unf_pos in
  let unf_len = ref 0 in
  let track_unf = ref false in
  let remove_unf v =
    let p = St.I32.unsafe_get unf_pos v in
    let last = !unf_len - 1 in
    let w = St.I32.unsafe_get unf last in
    St.I32.unsafe_set unf p w;
    St.I32.unsafe_set unf_pos w p;
    unf_len := last
  in
  let active u =
    match protocol with
    | Flood | Push _ -> St.Bitset.unsafe_get informed u
    | Parsimonious k ->
        St.Bitset.unsafe_get informed u && !t - St.I32.unsafe_get informed_at u < k
  in
  let transmits () =
    match protocol with Push p -> Prng.Rng.bernoulli rng p | Flood | Parsimonious _ -> true
  in
  let enqueue v =
    if not (St.Bitset.unsafe_get queued v) then begin
      St.Bitset.unsafe_set queued v;
      St.I32.unsafe_set frontier !frontier_len v;
      incr frontier_len
    end
  in
  let consider sender receiver =
    if active sender && (not (St.Bitset.unsafe_get informed receiver)) && transmits () then
      enqueue receiver
  in
  (* Close the round: I_{t+1} = I_t ∪ frontier. *)
  let commit () =
    incr t;
    for i = 0 to !frontier_len - 1 do
      let v = St.I32.unsafe_get frontier i in
      St.Bitset.unsafe_clear queued v;
      St.Bitset.unsafe_set informed v;
      St.I32.unsafe_set informed_at v !t;
      St.I32.unsafe_set order !n_informed v;
      incr n_informed;
      if !track_unf then remove_unf v
    done;
    push_traj !n_informed;
    Obs.Metrics.incr c_rounds;
    if tracing then
      while !next_milestone < 4 && !n_informed >= fst milestones.(!next_milestone) do
        let _, quarter = milestones.(!next_milestone) in
        Obs.Trace.emit "flood.milestone"
          [ ("quarter", Int quarter); ("t", Int !t); ("informed", Int !n_informed) ];
        incr next_milestone
      done
  in
  if not (Dynamic.has_deltas g) then begin
    let edges = sc.edges in
    while !n_informed < n && !t < cap do
      (* Edges of E_t determine I_{t+1}. *)
      frontier_len := 0;
      Dynamic.fill_edges g edges;
      Obs.Metrics.incr c_snapshots;
      Obs.Metrics.add c_edges (Graph.Edge_buffer.length edges);
      for i = 0 to Graph.Edge_buffer.length edges - 1 do
        let u = Graph.Edge_buffer.src edges i and v = Graph.Edge_buffer.dst edges i in
        consider u v;
        consider v u
      done;
      commit ();
      Dynamic.step g
    done
  end
  else begin
    let want_off =
      match storage with
      | Some `Offheap -> true
      | Some `Heap -> false
      | None -> n >= St.offheap_nodes
    in
    let sync =
      match (sc.sync_for, sc.sync) with
      | Some g', Some s when g' == g && sc.sync_off = want_off -> s
      | _ ->
          let s = Adj_sync.create ~storage:(if want_off then `Offheap else `Heap) g in
          sc.sync_for <- Some g;
          sc.sync_off <- want_off;
          sc.sync <- Some s;
          s
    in
    (* The reused view's topology belongs to the previous trajectory. *)
    Adj_sync.invalidate sync;
    let refreshes0 = Adj_sync.refreshes sync in
    let delta_ops0 = Adj_sync.delta_ops sync in
    let scanned = ref 0 in
    (match protocol with
    | Flood ->
        (* Coin-free, so scan whichever side of the informed/uninformed
           cut is smaller. Uninformed-side scans exit a row at the first
           informed neighbour; [scanned] counts entries actually read,
           so the counter reflects the real work either way. *)
        track_unf := true;
        for i = 0 to n - 1 do
          St.I32.unsafe_set unf i i;
          St.I32.unsafe_set unf_pos i i
        done;
        unf_len := n;
        remove_unf source;
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          if not (Graph.Mutable_adj.offheap adj) then begin
            if !unf_len < !n_informed then
              for ui = 0 to !unf_len - 1 do
                let v = St.I32.unsafe_get unf ui in
                let d = Graph.Mutable_adj.degree adj v in
                let row = Graph.Mutable_adj.row adj v in
                let j = ref 0 in
                let hit = ref false in
                while (not !hit) && !j < d do
                  if St.Bitset.unsafe_get informed (Array.unsafe_get row !j) then hit := true;
                  incr j
                done;
                scanned := !scanned + !j;
                if !hit then enqueue v
              done
            else
              for oi = 0 to !n_informed - 1 do
                let u = St.I32.unsafe_get order oi in
                let d = Graph.Mutable_adj.degree adj u in
                let row = Graph.Mutable_adj.row adj u in
                scanned := !scanned + d;
                for j = 0 to d - 1 do
                  let v = Array.unsafe_get row j in
                  if not (St.Bitset.unsafe_get informed v) then enqueue v
                done
              done
          end
          else begin
            let ({ v_deg; v_off; v_data } : Graph.Mutable_adj.view) =
              Graph.Mutable_adj.view adj
            in
            (* Fan-out geometry for the parallel pipeline: S contiguous
               slices of whichever side is scanned, T node tiles. Any
               contiguous slicing yields byte-identical output (the
               counting sort is stable and merges are slice- then
               tile-ordered), so S may track the worker count freely.
               When the pool would not engage we keep the fused
               sequential loops — same bytes, fewer passes. *)
            let ntiles = Array.length sc.tile_cnt in
            let s_cnt = Exec.Pool.tile_min () * Exec.Pool.workers () in
            let par = Exec.Pool.fan_out s_cnt in
            if par then begin
              if Array.length sc.par_cnt < s_cnt * ntiles then begin
                sc.par_cnt <- Array.make (s_cnt * ntiles) 0;
                sc.par_cur <- Array.make (s_cnt * ntiles) 0
              end;
              if Array.length sc.par_sl < s_cnt + 1 then begin
                sc.par_sl <- Array.make (s_cnt + 1) 0;
                sc.par_scan <- Array.make s_cnt 0
              end;
              if Array.length sc.par_tile < ntiles + 1 then begin
                sc.par_tile <- Array.make (ntiles + 1) 0;
                sc.par_out <- Array.make ntiles 0
              end
            end;
            if !unf_len < !n_informed then begin
              if not par then
                for ui = 0 to !unf_len - 1 do
                  let v = St.I32.unsafe_get unf ui in
                  let d = St.I32.raw_get v_deg v in
                  let off = St.I32.raw_get v_off v in
                  let j = ref 0 in
                  let hit = ref false in
                  while (not !hit) && !j < d do
                    if St.Bitset.unsafe_get informed (St.I32.raw_get v_data (off + !j)) then
                      hit := true;
                    incr j
                  done;
                  scanned := !scanned + !j;
                  if !hit then enqueue v
                done
              else begin
                (* Parallel uninformed-side scan: each slice early-exit
                   scans its own range of [unf] and writes hits into
                   [bins] at the slice's base offset; the slice-order
                   merge reproduces the sequential frontier exactly
                   ([unf] entries are distinct, so the [queued] dedup
                   the sequential path runs through [enqueue] is
                   vacuous here and [commit]'s clear is a no-op). *)
                let m = !unf_len in
                St.I32.ensure sc.bins m;
                let braw = St.I32.raw sc.bins in
                let par_sl = sc.par_sl and par_scan = sc.par_scan in
                Exec.Pool.run_tiles s_cnt (fun s ->
                    let lo = s * m / s_cnt and hi = (s + 1) * m / s_cnt in
                    let out = ref lo in
                    let sl_scanned = ref 0 in
                    for ui = lo to hi - 1 do
                      let v = St.I32.unsafe_get unf ui in
                      let d = St.I32.raw_get v_deg v in
                      let off = St.I32.raw_get v_off v in
                      let j = ref 0 in
                      let hit = ref false in
                      while (not !hit) && !j < d do
                        if St.Bitset.unsafe_get informed (St.I32.raw_get v_data (off + !j))
                        then hit := true;
                        incr j
                      done;
                      sl_scanned := !sl_scanned + !j;
                      if !hit then begin
                        St.I32.raw_set braw !out v;
                        incr out
                      end
                    done;
                    Array.unsafe_set par_sl s (!out - lo);
                    Array.unsafe_set par_scan s !sl_scanned);
                for s = 0 to s_cnt - 1 do
                  let c = Array.unsafe_get par_sl s in
                  St.I32.blit sc.bins (s * m / s_cnt) frontier !frontier_len c;
                  frontier_len := !frontier_len + c;
                  scanned := !scanned + Array.unsafe_get par_scan s
                done
              end
            end
            else if not par then begin
              (* Tiled informed-side scan: stage every candidate in row
                 order, counting-sort them into chunk_nodes-wide tiles,
                 then do all bitset tests tile by tile. *)
              let stage_len = ref 0 in
              let tile_cnt = sc.tile_cnt in
              Array.fill tile_cnt 0 (Array.length tile_cnt) 0;
              for oi = 0 to !n_informed - 1 do
                let u = St.I32.unsafe_get order oi in
                let d = St.I32.raw_get v_deg u in
                let off = St.I32.raw_get v_off u in
                scanned := !scanned + d;
                St.I32.ensure sc.stage (!stage_len + d);
                let sraw = St.I32.raw sc.stage in
                for j = off to off + d - 1 do
                  let v = St.I32.raw_get v_data j in
                  St.I32.raw_set sraw !stage_len v;
                  incr stage_len;
                  let k = v lsr St.chunk_shift in
                  Array.unsafe_set tile_cnt k (Array.unsafe_get tile_cnt k + 1)
                done
              done;
              let tile_cur = sc.tile_cur in
              let acc = ref 0 in
              for k = 0 to Array.length tile_cnt - 1 do
                Array.unsafe_set tile_cur k !acc;
                acc := !acc + Array.unsafe_get tile_cnt k
              done;
              St.I32.ensure sc.bins !stage_len;
              let braw = St.I32.raw sc.bins in
              let sraw = St.I32.raw sc.stage in
              for i = 0 to !stage_len - 1 do
                let v = St.I32.raw_get sraw i in
                let k = v lsr St.chunk_shift in
                let p = Array.unsafe_get tile_cur k in
                St.I32.raw_set braw p v;
                Array.unsafe_set tile_cur k (p + 1)
              done;
              (* [bins] is now tile-ordered, so one linear walk keeps
                 each round's random bit traffic inside a single 4 KiB
                 bitset window at a time. *)
              for i = 0 to !stage_len - 1 do
                let v = St.I32.raw_get braw i in
                if not (St.Bitset.unsafe_get informed v) then enqueue v
              done
            end
            else begin
              (* Parallel tiled informed-side scan, five phases with the
                 tile pool (DESIGN.md section 11). The counting sort is
                 stable per slice and scatter offsets are laid out
                 slice-major within each tile, so [bins] — and therefore
                 the frontier — comes out byte-identical to the
                 sequential tiled scan for any S. *)
              let m = !n_informed in
              let par_cnt = sc.par_cnt
              and par_cur = sc.par_cur
              and par_sl = sc.par_sl
              and par_tile = sc.par_tile
              and par_out = sc.par_out in
              (* Phase 1: per-slice candidate counts (row headers only). *)
              Exec.Pool.run_tiles s_cnt (fun s ->
                  let lo = s * m / s_cnt and hi = (s + 1) * m / s_cnt in
                  let sum = ref 0 in
                  for oi = lo to hi - 1 do
                    sum := !sum + St.I32.raw_get v_deg (St.I32.unsafe_get order oi)
                  done;
                  Array.unsafe_set par_sl s !sum);
              let total = ref 0 in
              for s = 0 to s_cnt - 1 do
                let c = par_sl.(s) in
                par_sl.(s) <- !total;
                total := !total + c
              done;
              par_sl.(s_cnt) <- !total;
              let total = !total in
              scanned := !scanned + total;
              St.I32.ensure sc.stage total;
              St.I32.ensure sc.bins total;
              Array.fill par_cnt 0 (s_cnt * ntiles) 0;
              let sraw = St.I32.raw sc.stage in
              let braw = St.I32.raw sc.bins in
              (* Phase 2: stage candidates at slice offsets, counting
                 per-slice-per-tile. *)
              Exec.Pool.run_tiles s_cnt (fun s ->
                  let lo = s * m / s_cnt and hi = (s + 1) * m / s_cnt in
                  let pos = ref (Array.unsafe_get par_sl s) in
                  let base = s * ntiles in
                  for oi = lo to hi - 1 do
                    let u = St.I32.unsafe_get order oi in
                    let d = St.I32.raw_get v_deg u in
                    let off = St.I32.raw_get v_off u in
                    for j = off to off + d - 1 do
                      let v = St.I32.raw_get v_data j in
                      St.I32.raw_set sraw !pos v;
                      incr pos;
                      let k = base + (v lsr St.chunk_shift) in
                      Array.unsafe_set par_cnt k (Array.unsafe_get par_cnt k + 1)
                    done
                  done);
              (* Tile starts and slice-major scatter cursors. *)
              let pos = ref 0 in
              for k = 0 to ntiles - 1 do
                par_tile.(k) <- !pos;
                for s = 0 to s_cnt - 1 do
                  par_cur.((s * ntiles) + k) <- !pos;
                  pos := !pos + par_cnt.((s * ntiles) + k)
                done
              done;
              par_tile.(ntiles) <- !pos;
              (* Phase 3: scatter each slice's stage segment into its
                 private per-tile cursor ranges of [bins]. *)
              Exec.Pool.run_tiles s_cnt (fun s ->
                  let base = s * ntiles in
                  for i = Array.unsafe_get par_sl s to Array.unsafe_get par_sl (s + 1) - 1 do
                    let v = St.I32.raw_get sraw i in
                    let k = base + (v lsr St.chunk_shift) in
                    let p = Array.unsafe_get par_cur k in
                    St.I32.raw_set braw p v;
                    Array.unsafe_set par_cur k (p + 1)
                  done);
              (* Phase 4: per-tile bitset tests. A tile's bitset window
                 is an aligned chunk_nodes/8-byte range, so [queued]
                 writes from different tiles never share a byte; the
                 compacted survivors go back into the tile's own stage
                 segment. *)
              Exec.Pool.run_tiles ntiles (fun k ->
                  let lo = Array.unsafe_get par_tile k in
                  let hi = Array.unsafe_get par_tile (k + 1) in
                  let out = ref lo in
                  for i = lo to hi - 1 do
                    let v = St.I32.raw_get braw i in
                    if
                      (not (St.Bitset.unsafe_get informed v))
                      && not (St.Bitset.unsafe_get queued v)
                    then begin
                      St.Bitset.unsafe_set queued v;
                      St.I32.raw_set sraw !out v;
                      incr out
                    end
                  done;
                  Array.unsafe_set par_out k (!out - lo));
              (* Phase 5: tile-order merge into the frontier. *)
              for k = 0 to ntiles - 1 do
                let c = Array.unsafe_get par_out k in
                St.I32.blit sc.stage (Array.unsafe_get par_tile k) frontier !frontier_len c;
                frontier_len := !frontier_len + c
              done
            end
          end;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done
    | Push p ->
        (* Every informed node is active; coins are drawn in arrival-
           then-row order, exactly the sequence the goldens pin — on
           either storage layout. *)
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          if not (Graph.Mutable_adj.offheap adj) then
            for oi = 0 to !n_informed - 1 do
              let u = St.I32.unsafe_get order oi in
              let d = Graph.Mutable_adj.degree adj u in
              let row = Graph.Mutable_adj.row adj u in
              scanned := !scanned + d;
              for j = 0 to d - 1 do
                let v = Array.unsafe_get row j in
                if (not (St.Bitset.unsafe_get informed v)) && Prng.Rng.bernoulli rng p then
                  enqueue v
              done
            done
          else begin
            let ({ v_deg; v_off; v_data } : Graph.Mutable_adj.view) =
              Graph.Mutable_adj.view adj
            in
            for oi = 0 to !n_informed - 1 do
              let u = St.I32.unsafe_get order oi in
              let d = St.I32.raw_get v_deg u in
              let off = St.I32.raw_get v_off u in
              scanned := !scanned + d;
              for j = off to off + d - 1 do
                let v = St.I32.raw_get v_data j in
                if (not (St.Bitset.unsafe_get informed v)) && Prng.Rng.bernoulli rng p then
                  enqueue v
              done
            done
          end;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done
    | Parsimonious k ->
        let lo = ref 0 in
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          while
            !lo < !n_informed
            && !t - St.I32.unsafe_get informed_at (St.I32.unsafe_get order !lo) >= k
          do
            incr lo
          done;
          if not (Graph.Mutable_adj.offheap adj) then
            for oi = !lo to !n_informed - 1 do
              let u = St.I32.unsafe_get order oi in
              let d = Graph.Mutable_adj.degree adj u in
              let row = Graph.Mutable_adj.row adj u in
              scanned := !scanned + d;
              for j = 0 to d - 1 do
                let v = Array.unsafe_get row j in
                if not (St.Bitset.unsafe_get informed v) then enqueue v
              done
            done
          else begin
            let ({ v_deg; v_off; v_data } : Graph.Mutable_adj.view) =
              Graph.Mutable_adj.view adj
            in
            for oi = !lo to !n_informed - 1 do
              let u = St.I32.unsafe_get order oi in
              let d = St.I32.raw_get v_deg u in
              let off = St.I32.raw_get v_off u in
              scanned := !scanned + d;
              for j = off to off + d - 1 do
                let v = St.I32.raw_get v_data j in
                if not (St.Bitset.unsafe_get informed v) then enqueue v
              done
            done
          end;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done);
    Obs.Metrics.add c_edges !scanned;
    Obs.Metrics.add c_snapshots (Adj_sync.refreshes sync - refreshes0);
    Obs.Metrics.add c_delta_edges (Adj_sync.delta_ops sync - delta_ops0)
  end;
  if !n_informed < n then begin
    Obs.Metrics.incr c_cap_hits;
    if tracing then
      Obs.Trace.emit "flood.cap" [ ("t", Int !t); ("informed", Int !n_informed) ]
  end;
  if tracing then
    Obs.Trace.emit "flood.end" [ ("t", Int !t); ("informed", Int !n_informed) ];
  (sc, (if !n_informed = n then Some !t else None), !traj_len)

let run ?cap ?protocol ?storage ~rng ~source g =
  let sc, time, traj_len = run_raw ?cap ?protocol ?storage ~rng ~source g in
  {
    time;
    trajectory = Array.init traj_len (fun i -> St.I32.get sc.traj i);
    arrivals = Array.init sc.s_n (fun v -> St.I32.get sc.informed_at v);
  }

let time ?cap ?protocol ?storage ~rng ~source g =
  let _, time, _ = run_raw ?cap ?protocol ?storage ~rng ~source g in
  time

let trial_time ?cap ?protocol ?storage ~rng ~source g =
  let cap_value = match cap with Some c -> c | None -> default_cap (Dynamic.n g) in
  match time ~cap:cap_value ?protocol ?storage ~rng ~source g with
  | Some t -> t
  | None -> cap_value

let mean_time ?cap ?protocol ?storage ?(sched = Exec.sequential) ~rng ~trials ?(source = 0)
    build =
  if trials < 1 then invalid_arg "Flooding.mean_time: trials must be >= 1";
  (* Substreams are derived up front, on the calling domain: trial [i]'s
     randomness depends only on [rng]'s current state and [i], never on
     which worker runs it or in what order. *)
  let rngs = Array.init trials (Prng.Rng.substream rng) in
  let job i = trial_time ?cap ?protocol ?storage ~rng:rngs.(i) ~source (build ()) in
  let reduce times =
    let summary = Stats.Summary.create () in
    Array.iter (fun t -> Stats.Summary.add summary (float_of_int t)) times;
    summary
  in
  Exec.run sched (Exec.plan ~jobs:trials ~job ~reduce)

let characteristic_time result =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun a ->
      if a > 0 then begin
        total := !total + a;
        incr count
      end)
    result.arrivals;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count

let worst_source_time ?cap ?protocol ?storage ?(sched = Exec.sequential) ~rng ?sources build =
  let sources =
    match sources with
    | Some l -> Array.of_list l
    | None -> Array.init (Dynamic.n (build ())) (fun i -> i)
  in
  (* Seeded by source id, not job index, so the result is independent of
     the sources list's order as well as of the scheduler. *)
  let rngs = Array.map (Prng.Rng.substream rng) sources in
  let job i =
    trial_time ?cap ?protocol ?storage ~rng:rngs.(i) ~source:sources.(i) (build ())
  in
  Exec.run sched
    (Exec.plan ~jobs:(Array.length sources) ~job ~reduce:(Array.fold_left max 0))
