type protocol = Flood | Push of float | Parsimonious of int

type result = { time : int option; trajectory : int array; arrivals : int array }

let default_cap n = 10_000 + (200 * n)

(* Observability. Counters total deterministic work items (rounds,
   snapshots, enumerated edges), so their values are scheduler- and
   worker-count-independent; trace events are coarse (run boundaries,
   quarter milestones, cap hits — never per edge). Disabled, each hook
   is one atomic load. *)
let c_runs = Obs.Metrics.counter "flood.runs"

let c_rounds = Obs.Metrics.counter "flood.rounds"

let c_snapshots = Obs.Metrics.counter "flood.snapshots"

let c_edges = Obs.Metrics.counter "flood.edges"

let c_cap_hits = Obs.Metrics.counter "flood.cap_hits"

(* The kernel allocates its working set once per run and nothing per
   round: the informed set is a byte-per-node bitset, newly reached
   nodes go into an int-array frontier (deduplicated through [queued],
   so its capacity [n] suffices), the trajectory grows into a reused
   int buffer, and each snapshot is enumerated out of one Edge_buffer
   refilled in place. Observable behaviour is identical to the original
   list-based kernel: the frontier holds the same node set the [fresh]
   list held, and the protocol's coins ([transmits]) are drawn at the
   same point of the same edge enumeration order. *)
let run ?cap ?(protocol = Flood) ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Flooding.run: source out of range";
  (match protocol with
  | Push p when not (p > 0. && p <= 1.) ->
      invalid_arg "Flooding.run: push probability outside (0, 1]"
  | Parsimonious k when k < 1 -> invalid_arg "Flooding.run: parsimonious window must be >= 1"
  | Flood | Push _ | Parsimonious _ -> ());
  let cap = match cap with Some c -> c | None -> default_cap n in
  Obs.Metrics.incr c_runs;
  let tracing = Obs.Trace.enabled () in
  if tracing then Obs.Trace.emit "flood.start" [ ("n", Int n); ("source", Int source) ];
  (* Quarter milestones |I_t| >= ceil(k n / 4): thresholds the initial
     informed set already meets (tiny n) are skipped silently. *)
  let milestones = [| ((n + 3) / 4, 1); ((n + 1) / 2, 2); (((3 * n) + 3) / 4, 3); (n, 4) |] in
  let next_milestone = ref 0 in
  while !next_milestone < 4 && fst milestones.(!next_milestone) <= 1 do
    incr next_milestone
  done;
  Dynamic.reset g (Prng.Rng.split rng);
  let informed = Bytes.make n '\000' in
  let queued = Bytes.make n '\000' in
  let informed_at = Array.make n max_int in
  Bytes.unsafe_set informed source '\001';
  informed_at.(source) <- 0;
  let n_informed = ref 1 in
  let traj = ref (Array.make 256 0) in
  let traj_len = ref 0 in
  let push_traj v =
    if !traj_len = Array.length !traj then begin
      let bigger = Array.make (2 * !traj_len) 0 in
      Array.blit !traj 0 bigger 0 !traj_len;
      traj := bigger
    end;
    !traj.(!traj_len) <- v;
    incr traj_len
  in
  push_traj 1;
  let frontier = Array.make n 0 in
  let frontier_len = ref 0 in
  let edges = Graph.Edge_buffer.create ~capacity:(4 * n) () in
  let t = ref 0 in
  let active u =
    match protocol with
    | Flood | Push _ -> Bytes.unsafe_get informed u <> '\000'
    | Parsimonious k -> Bytes.unsafe_get informed u <> '\000' && !t - informed_at.(u) < k
  in
  let transmits () =
    match protocol with Push p -> Prng.Rng.bernoulli rng p | Flood | Parsimonious _ -> true
  in
  let consider sender receiver =
    if active sender && Bytes.unsafe_get informed receiver = '\000' && transmits () then
      if Bytes.unsafe_get queued receiver = '\000' then begin
        Bytes.unsafe_set queued receiver '\001';
        Array.unsafe_set frontier !frontier_len receiver;
        incr frontier_len
      end
  in
  while !n_informed < n && !t < cap do
    (* Edges of E_t determine I_{t+1}. *)
    frontier_len := 0;
    Dynamic.fill_edges g edges;
    Obs.Metrics.incr c_snapshots;
    Obs.Metrics.add c_edges (Graph.Edge_buffer.length edges);
    for i = 0 to Graph.Edge_buffer.length edges - 1 do
      let u = Graph.Edge_buffer.src edges i and v = Graph.Edge_buffer.dst edges i in
      consider u v;
      consider v u
    done;
    incr t;
    for i = 0 to !frontier_len - 1 do
      let v = Array.unsafe_get frontier i in
      Bytes.unsafe_set queued v '\000';
      Bytes.unsafe_set informed v '\001';
      informed_at.(v) <- !t;
      incr n_informed
    done;
    push_traj !n_informed;
    Obs.Metrics.incr c_rounds;
    if tracing then
      while !next_milestone < 4 && !n_informed >= fst milestones.(!next_milestone) do
        let _, quarter = milestones.(!next_milestone) in
        Obs.Trace.emit "flood.milestone"
          [ ("quarter", Int quarter); ("t", Int !t); ("informed", Int !n_informed) ];
        incr next_milestone
      done;
    Dynamic.step g
  done;
  if !n_informed < n then begin
    Obs.Metrics.incr c_cap_hits;
    if tracing then
      Obs.Trace.emit "flood.cap" [ ("t", Int !t); ("informed", Int !n_informed) ]
  end;
  if tracing then
    (* One snapshot is enumerated per round, so [t] doubles as the
       snapshots-consumed count of this run. *)
    Obs.Trace.emit "flood.end" [ ("t", Int !t); ("informed", Int !n_informed) ];
  {
    time = (if !n_informed = n then Some !t else None);
    trajectory = Array.sub !traj 0 !traj_len;
    arrivals = Array.map (fun at -> if at = max_int then -1 else at) informed_at;
  }

let time ?cap ?protocol ~rng ~source g = (run ?cap ?protocol ~rng ~source g).time

let trial_time ?cap ?protocol ~rng ~source g =
  let cap_value = match cap with Some c -> c | None -> default_cap (Dynamic.n g) in
  match time ~cap:cap_value ?protocol ~rng ~source g with
  | Some t -> t
  | None -> cap_value

let mean_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ~trials ?(source = 0) build =
  if trials < 1 then invalid_arg "Flooding.mean_time: trials must be >= 1";
  (* Substreams are derived up front, on the calling domain: trial [i]'s
     randomness depends only on [rng]'s current state and [i], never on
     which worker runs it or in what order. *)
  let rngs = Array.init trials (Prng.Rng.substream rng) in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source (build ()) in
  let reduce times =
    let summary = Stats.Summary.create () in
    Array.iter (fun t -> Stats.Summary.add summary (float_of_int t)) times;
    summary
  in
  Exec.run sched (Exec.plan ~jobs:trials ~job ~reduce)

let characteristic_time result =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun a ->
      if a > 0 then begin
        total := !total + a;
        incr count
      end)
    result.arrivals;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count

let worst_source_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ?sources build =
  let sources =
    match sources with
    | Some l -> Array.of_list l
    | None -> Array.init (Dynamic.n (build ())) (fun i -> i)
  in
  (* Seeded by source id, not job index, so the result is independent of
     the sources list's order as well as of the scheduler. *)
  let rngs = Array.map (Prng.Rng.substream rng) sources in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source:sources.(i) (build ()) in
  Exec.run sched
    (Exec.plan ~jobs:(Array.length sources) ~job ~reduce:(Array.fold_left max 0))
