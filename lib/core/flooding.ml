type protocol = Flood | Push of float | Parsimonious of int

type result = { time : int option; trajectory : int array; arrivals : int array }

let default_cap n = 10_000 + (200 * n)

(* Observability. Counters total deterministic work items (rounds,
   snapshots, scanned edges), so their values are scheduler- and
   worker-count-independent; trace events are coarse (run boundaries,
   quarter milestones, cap hits — never per edge). Disabled, each hook
   is one atomic load. [flood.edges] counts edge slots the kernel
   actually scanned: full snapshot lengths on the enumeration path,
   Σ deg(active) on the frontier path — so the counter itself shows the
   frontier kernel touching less of the graph. [flood.delta_edges]
   totals the births + deaths applied incrementally instead of being
   re-enumerated. *)
let c_runs = Obs.Metrics.counter "flood.runs"

let c_rounds = Obs.Metrics.counter "flood.rounds"

let c_snapshots = Obs.Metrics.counter "flood.snapshots"

let c_edges = Obs.Metrics.counter "flood.edges"

let c_delta_edges = Obs.Metrics.counter "flood.delta_edges"

let c_cap_hits = Obs.Metrics.counter "flood.cap_hits"

(* The kernel allocates its working set once per domain, not per run:
   the byte-per-node informed/queued bitsets, the arrival-order and
   frontier arrays, the trajectory buffer, the legacy path's edge
   buffer and the delta path's {!Adj_sync} all live in a domain-local
   scratch, re-initialised (O(n)) and reused whenever consecutive runs
   agree on [n] — which is every iteration of a trial loop. Domain-
   local state never crosses workers, so parallel determinism is
   untouched; the adjacency view is re-keyed by physical model
   identity and invalidated per run, so only its grown row storage
   survives, never stale topology.

   Two scan strategies, chosen once per run:

   - Delta-capable models ({!Dynamic.has_deltas}) keep an incremental
     adjacency in sync through {!Adj_sync} (which itself chooses
     between O(Δ) patching and an O(n + m) rebuild per round — see its
     docs) and scan rows instead of whole snapshots. Plain flooding
     draws no coins, so it may scan whichever side of the cut is
     smaller: the active rows, or — once most nodes are informed — the
     remaining uninformed rows with early exit on the first informed
     neighbour. Push and Parsimonious scan the active rows in arrival
     order; arrival times are nondecreasing along [order], so the
     Parsimonious window's expired nodes form a prefix and one
     monotone pointer maintains the active suffix.

   - Everything else takes the original path: enumerate the snapshot
     into a reused Edge_buffer and consider both directions of every
     edge. Observable behaviour on this path is identical to the
     original kernel (same sets, same coin order).

   The two paths reach the same informed sets at the same times; they
   differ only in the order protocol coins are drawn (frontier scans by
   arriving sender, enumeration by edge), which is why Push goldens on
   delta-capable models were regenerated when the frontier path
   landed — see DESIGN.md section 8. *)
type scratch = {
  mutable s_n : int;  (* node count the arrays are sized for; -1 initially *)
  mutable informed : Bytes.t;
  mutable queued : Bytes.t;
  mutable informed_at : int array;
  mutable order : int array;
  mutable frontier : int array;
  mutable unf : int array;      (* uninformed nodes, compact *)
  mutable unf_pos : int array;  (* position of node v in [unf] while uninformed *)
  mutable traj : int array;
  mutable edges : Graph.Edge_buffer.t;
  mutable sync_for : Dynamic.t option;  (* physical key for [sync] *)
  mutable sync : Adj_sync.t option;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        s_n = -1;
        informed = Bytes.empty;
        queued = Bytes.empty;
        informed_at = [||];
        order = [||];
        frontier = [||];
        unf = [||];
        unf_pos = [||];
        traj = Array.make 256 0;
        edges = Graph.Edge_buffer.create ~capacity:16 ();
        sync_for = None;
        sync = None;
      })
let run ?cap ?(protocol = Flood) ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Flooding.run: source out of range";
  (match protocol with
  | Push p when not (p > 0. && p <= 1.) ->
      invalid_arg "Flooding.run: push probability outside (0, 1]"
  | Parsimonious k when k < 1 -> invalid_arg "Flooding.run: parsimonious window must be >= 1"
  | Flood | Push _ | Parsimonious _ -> ());
  let cap = match cap with Some c -> c | None -> default_cap n in
  Obs.Metrics.incr c_runs;
  let tracing = Obs.Trace.enabled () in
  if tracing then Obs.Trace.emit "flood.start" [ ("n", Int n); ("source", Int source) ];
  (* Quarter milestones |I_t| >= ceil(k n / 4): thresholds the initial
     informed set already meets (tiny n) are skipped silently. *)
  let milestones = [| ((n + 3) / 4, 1); ((n + 1) / 2, 2); (((3 * n) + 3) / 4, 3); (n, 4) |] in
  let next_milestone = ref 0 in
  while !next_milestone < 4 && fst milestones.(!next_milestone) <= 1 do
    incr next_milestone
  done;
  Dynamic.reset g (Prng.Rng.split rng);
  let sc = Domain.DLS.get scratch_key in
  if sc.s_n <> n then begin
    sc.s_n <- n;
    sc.informed <- Bytes.make n '\000';
    sc.queued <- Bytes.make n '\000';
    sc.informed_at <- Array.make n max_int;
    sc.order <- Array.make n 0;
    sc.frontier <- Array.make n 0;
    sc.unf <- Array.make n 0;
    sc.unf_pos <- Array.make n 0
  end
  else begin
    Bytes.fill sc.informed 0 n '\000';
    Bytes.fill sc.queued 0 n '\000';
    Array.fill sc.informed_at 0 n max_int
  end;
  let informed = sc.informed in
  let queued = sc.queued in
  let informed_at = sc.informed_at in
  Bytes.unsafe_set informed source '\001';
  informed_at.(source) <- 0;
  let n_informed = ref 1 in
  (* Informed nodes in arrival order; length is [n_informed]. *)
  let order = sc.order in
  order.(0) <- source;
  let traj_len = ref 0 in
  let push_traj v =
    if !traj_len = Array.length sc.traj then begin
      let bigger = Array.make (2 * !traj_len) 0 in
      Array.blit sc.traj 0 bigger 0 !traj_len;
      sc.traj <- bigger
    end;
    sc.traj.(!traj_len) <- v;
    incr traj_len
  in
  push_traj 1;
  let frontier = sc.frontier in
  let frontier_len = ref 0 in
  let t = ref 0 in
  (* Uninformed-node list for plain flooding's min-side scan; compact
     with swap-remove, mirrored by [unf_pos]. Only maintained when
     [track_unf] is on (Flood on the delta path). *)
  let unf = sc.unf in
  let unf_pos = sc.unf_pos in
  let unf_len = ref 0 in
  let track_unf = ref false in
  let remove_unf v =
    let p = Array.unsafe_get unf_pos v in
    let last = !unf_len - 1 in
    let w = Array.unsafe_get unf last in
    Array.unsafe_set unf p w;
    Array.unsafe_set unf_pos w p;
    unf_len := last
  in
  let active u =
    match protocol with
    | Flood | Push _ -> Bytes.unsafe_get informed u <> '\000'
    | Parsimonious k -> Bytes.unsafe_get informed u <> '\000' && !t - informed_at.(u) < k
  in
  let transmits () =
    match protocol with Push p -> Prng.Rng.bernoulli rng p | Flood | Parsimonious _ -> true
  in
  let enqueue v =
    if Bytes.unsafe_get queued v = '\000' then begin
      Bytes.unsafe_set queued v '\001';
      Array.unsafe_set frontier !frontier_len v;
      incr frontier_len
    end
  in
  let consider sender receiver =
    if active sender && Bytes.unsafe_get informed receiver = '\000' && transmits () then
      enqueue receiver
  in
  (* Close the round: I_{t+1} = I_t ∪ frontier. *)
  let commit () =
    incr t;
    for i = 0 to !frontier_len - 1 do
      let v = Array.unsafe_get frontier i in
      Bytes.unsafe_set queued v '\000';
      Bytes.unsafe_set informed v '\001';
      informed_at.(v) <- !t;
      Array.unsafe_set order !n_informed v;
      incr n_informed;
      if !track_unf then remove_unf v
    done;
    push_traj !n_informed;
    Obs.Metrics.incr c_rounds;
    if tracing then
      while !next_milestone < 4 && !n_informed >= fst milestones.(!next_milestone) do
        let _, quarter = milestones.(!next_milestone) in
        Obs.Trace.emit "flood.milestone"
          [ ("quarter", Int quarter); ("t", Int !t); ("informed", Int !n_informed) ];
        incr next_milestone
      done
  in
  if not (Dynamic.has_deltas g) then begin
    let edges = sc.edges in
    while !n_informed < n && !t < cap do
      (* Edges of E_t determine I_{t+1}. *)
      frontier_len := 0;
      Dynamic.fill_edges g edges;
      Obs.Metrics.incr c_snapshots;
      Obs.Metrics.add c_edges (Graph.Edge_buffer.length edges);
      for i = 0 to Graph.Edge_buffer.length edges - 1 do
        let u = Graph.Edge_buffer.src edges i and v = Graph.Edge_buffer.dst edges i in
        consider u v;
        consider v u
      done;
      commit ();
      Dynamic.step g
    done
  end
  else begin
    let sync =
      match (sc.sync_for, sc.sync) with
      | Some g', Some s when g' == g -> s
      | _ ->
          let s = Adj_sync.create g in
          sc.sync_for <- Some g;
          sc.sync <- Some s;
          s
    in
    (* The reused view's topology belongs to the previous trajectory. *)
    Adj_sync.invalidate sync;
    let refreshes0 = Adj_sync.refreshes sync in
    let delta_ops0 = Adj_sync.delta_ops sync in
    let scanned = ref 0 in
    (match protocol with
    | Flood ->
        (* Coin-free, so scan whichever side of the informed/uninformed
           cut is smaller. Uninformed-side scans exit a row at the first
           informed neighbour; [scanned] counts entries actually read,
           so the counter reflects the real work either way. *)
        track_unf := true;
        for i = 0 to n - 1 do
          Array.unsafe_set unf i i;
          Array.unsafe_set unf_pos i i
        done;
        unf_len := n;
        remove_unf source;
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          if !unf_len < !n_informed then
            for ui = 0 to !unf_len - 1 do
              let v = Array.unsafe_get unf ui in
              let d = Graph.Mutable_adj.degree adj v in
              let row = Graph.Mutable_adj.row adj v in
              let j = ref 0 in
              let hit = ref false in
              while (not !hit) && !j < d do
                if Bytes.unsafe_get informed (Array.unsafe_get row !j) <> '\000' then
                  hit := true;
                incr j
              done;
              scanned := !scanned + !j;
              if !hit then enqueue v
            done
          else
            for oi = 0 to !n_informed - 1 do
              let u = Array.unsafe_get order oi in
              let d = Graph.Mutable_adj.degree adj u in
              let row = Graph.Mutable_adj.row adj u in
              scanned := !scanned + d;
              for j = 0 to d - 1 do
                let v = Array.unsafe_get row j in
                if Bytes.unsafe_get informed v = '\000' then enqueue v
              done
            done;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done
    | Push p ->
        (* Every informed node is active; coins are drawn in arrival-
           then-row order, exactly the sequence the goldens pin. *)
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          for oi = 0 to !n_informed - 1 do
            let u = Array.unsafe_get order oi in
            let d = Graph.Mutable_adj.degree adj u in
            let row = Graph.Mutable_adj.row adj u in
            scanned := !scanned + d;
            for j = 0 to d - 1 do
              let v = Array.unsafe_get row j in
              if Bytes.unsafe_get informed v = '\000' && Prng.Rng.bernoulli rng p then
                enqueue v
            done
          done;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done
    | Parsimonious k ->
        let lo = ref 0 in
        while !n_informed < n && !t < cap do
          frontier_len := 0;
          Adj_sync.ensure sync;
          let adj = Adj_sync.adj sync in
          while !lo < !n_informed && !t - informed_at.(Array.unsafe_get order !lo) >= k do
            incr lo
          done;
          for oi = !lo to !n_informed - 1 do
            let u = Array.unsafe_get order oi in
            let d = Graph.Mutable_adj.degree adj u in
            let row = Graph.Mutable_adj.row adj u in
            scanned := !scanned + d;
            for j = 0 to d - 1 do
              let v = Array.unsafe_get row j in
              if Bytes.unsafe_get informed v = '\000' then enqueue v
            done
          done;
          commit ();
          Dynamic.step g;
          Adj_sync.advance sync
        done);
    Obs.Metrics.add c_edges !scanned;
    Obs.Metrics.add c_snapshots (Adj_sync.refreshes sync - refreshes0);
    Obs.Metrics.add c_delta_edges (Adj_sync.delta_ops sync - delta_ops0)
  end;
  if !n_informed < n then begin
    Obs.Metrics.incr c_cap_hits;
    if tracing then
      Obs.Trace.emit "flood.cap" [ ("t", Int !t); ("informed", Int !n_informed) ]
  end;
  if tracing then
    Obs.Trace.emit "flood.end" [ ("t", Int !t); ("informed", Int !n_informed) ];
  {
    time = (if !n_informed = n then Some !t else None);
    trajectory = Array.sub sc.traj 0 !traj_len;
    arrivals = Array.map (fun at -> if at = max_int then -1 else at) informed_at;
  }

let time ?cap ?protocol ~rng ~source g = (run ?cap ?protocol ~rng ~source g).time

let trial_time ?cap ?protocol ~rng ~source g =
  let cap_value = match cap with Some c -> c | None -> default_cap (Dynamic.n g) in
  match time ~cap:cap_value ?protocol ~rng ~source g with
  | Some t -> t
  | None -> cap_value

let mean_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ~trials ?(source = 0) build =
  if trials < 1 then invalid_arg "Flooding.mean_time: trials must be >= 1";
  (* Substreams are derived up front, on the calling domain: trial [i]'s
     randomness depends only on [rng]'s current state and [i], never on
     which worker runs it or in what order. *)
  let rngs = Array.init trials (Prng.Rng.substream rng) in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source (build ()) in
  let reduce times =
    let summary = Stats.Summary.create () in
    Array.iter (fun t -> Stats.Summary.add summary (float_of_int t)) times;
    summary
  in
  Exec.run sched (Exec.plan ~jobs:trials ~job ~reduce)

let characteristic_time result =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun a ->
      if a > 0 then begin
        total := !total + a;
        incr count
      end)
    result.arrivals;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count

let worst_source_time ?cap ?protocol ?(sched = Exec.sequential) ~rng ?sources build =
  let sources =
    match sources with
    | Some l -> Array.of_list l
    | None -> Array.init (Dynamic.n (build ())) (fun i -> i)
  in
  (* Seeded by source id, not job index, so the result is independent of
     the sources list's order as well as of the scheduler. *)
  let rngs = Array.map (Prng.Rng.substream rng) sources in
  let job i = trial_time ?cap ?protocol ~rng:rngs.(i) ~source:sources.(i) (build ()) in
  Exec.run sched
    (Exec.plan ~jobs:(Array.length sources) ~job ~reduce:(Array.fold_left max 0))
