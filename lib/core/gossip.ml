type variant = Push | Pull | Push_pull

type result = { time : int option; trajectory : int array; contacts : int }

let c_runs = Obs.Metrics.counter "gossip.runs"

let c_rounds = Obs.Metrics.counter "gossip.rounds"

let c_contacts = Obs.Metrics.counter "gossip.contacts"

let c_cap_hits = Obs.Metrics.counter "gossip.cap_hits"

let run ?cap ~variant ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Gossip.run: source out of range";
  let cap = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  Obs.Metrics.incr c_runs;
  Dynamic.reset g (Prng.Rng.split rng);
  let informed = Array.make n false in
  informed.(source) <- true;
  let n_informed = ref 1 in
  let trajectory = ref [ 1 ] in
  let contacts = ref 0 in
  let t = ref 0 in
  (* Neighbour picks read the maintained adjacency's rows directly: a
     pick is one bounds-free array index instead of a List.nth walk,
     and delta-capable models keep the rows fresh in O(Δ) per round
     (others rebuild — still cheaper than the int-list adjacency the
     loop used to allocate every round). *)
  let sync = Adj_sync.create g in
  while !n_informed < n && !t < cap do
    Adj_sync.ensure sync;
    let adj = Adj_sync.adj sync in
    let fresh = ref [] in
    for u = 0 to n - 1 do
      let d = Graph.Mutable_adj.degree adj u in
      if d > 0 then begin
        let row = Graph.Mutable_adj.row adj u in
        let pick () =
          incr contacts;
          Array.unsafe_get row (Prng.Rng.int rng d)
        in
        (match variant with
        | Push | Push_pull ->
            if informed.(u) then begin
              let v = pick () in
              if not informed.(v) then fresh := v :: !fresh
            end
        | Pull -> ());
        match variant with
        | Pull | Push_pull ->
            if not informed.(u) then begin
              let v = pick () in
              if informed.(v) then fresh := u :: !fresh
            end
        | Push -> ()
      end
    done;
    incr t;
    List.iter
      (fun v ->
        if not informed.(v) then begin
          informed.(v) <- true;
          incr n_informed
        end)
      !fresh;
    trajectory := !n_informed :: !trajectory;
    Obs.Metrics.incr c_rounds;
    Dynamic.step g;
    Adj_sync.advance sync
  done;
  Obs.Metrics.add c_contacts !contacts;
  if !n_informed < n then Obs.Metrics.incr c_cap_hits;
  {
    time = (if !n_informed = n then Some !t else None);
    trajectory = Array.of_list (List.rev !trajectory);
    contacts = !contacts;
  }

let mean_time ?cap ~variant ~rng ~trials ?(source = 0) g =
  if trials < 1 then invalid_arg "Gossip.mean_time: trials must be >= 1";
  let n = Dynamic.n g in
  let cap_value = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    let r = run ~cap:cap_value ~variant ~rng:(Prng.Rng.substream rng i) ~source g in
    let value = match r.time with Some t -> t | None -> cap_value in
    Stats.Summary.add summary (float_of_int value)
  done;
  summary
