module St = Graph.Storage

type variant = Push | Pull | Push_pull

type result = { time : int option; trajectory : int array; contacts : int }

let c_runs = Obs.Metrics.counter "gossip.runs"

let c_rounds = Obs.Metrics.counter "gossip.rounds"

let c_contacts = Obs.Metrics.counter "gossip.contacts"

let c_cap_hits = Obs.Metrics.counter "gossip.cap_hits"

(* Domain-local scratch in {!Graph.Storage}: the informed bitset, the
   round's freshly-informed list and the trajectory all live off the
   OCaml heap and are reused across runs that agree on [n] (same
   pattern as the flooding scratch; see flooding.ml). *)
type scratch = {
  mutable s_n : int;
  mutable informed : St.Bitset.t;
  fresh : St.I32.t;
  traj : St.I32.t;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s_n = -1; informed = St.Bitset.create 0; fresh = St.I32.create 16; traj = St.I32.create 256 })

let run ?cap ~variant ~rng ~source g =
  let n = Dynamic.n g in
  if source < 0 || source >= n then invalid_arg "Gossip.run: source out of range";
  if n > St.max_nodes then invalid_arg "Gossip.run: n exceeds the int32 id range";
  let cap = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  Obs.Metrics.incr c_runs;
  Dynamic.reset g (Prng.Rng.split rng);
  let sc = Domain.DLS.get scratch_key in
  if sc.s_n <> n then begin
    sc.s_n <- n;
    sc.informed <- St.Bitset.create n
  end
  else St.Bitset.clear_all sc.informed;
  let informed = sc.informed in
  St.Bitset.unsafe_set informed source;
  let n_informed = ref 1 in
  let traj_len = ref 0 in
  let push_traj v =
    St.I32.ensure sc.traj (!traj_len + 1);
    St.I32.unsafe_set sc.traj !traj_len v;
    incr traj_len
  in
  push_traj 1;
  let contacts = ref 0 in
  let t = ref 0 in
  (* Neighbour picks read the maintained adjacency's rows directly: a
     pick is one bounds-free index into the row storage (either
     layout — {!Graph.Mutable_adj.unsafe_nth} dispatches) instead of a
     List.nth walk, and delta-capable models keep the rows fresh in
     O(Δ) per round (others rebuild — still cheaper than the int-list
     adjacency the loop used to allocate every round). *)
  let sync = Adj_sync.create g in
  while !n_informed < n && !t < cap do
    Adj_sync.ensure sync;
    let adj = Adj_sync.adj sync in
    let fresh_len = ref 0 in
    let push_fresh v =
      St.I32.ensure sc.fresh (!fresh_len + 1);
      St.I32.unsafe_set sc.fresh !fresh_len v;
      incr fresh_len
    in
    for u = 0 to n - 1 do
      let d = Graph.Mutable_adj.degree adj u in
      if d > 0 then begin
        let pick () =
          incr contacts;
          Graph.Mutable_adj.unsafe_nth adj u (Prng.Rng.int rng d)
        in
        (match variant with
        | Push | Push_pull ->
            if St.Bitset.unsafe_get informed u then begin
              let v = pick () in
              if not (St.Bitset.unsafe_get informed v) then push_fresh v
            end
        | Pull -> ());
        match variant with
        | Pull | Push_pull ->
            if not (St.Bitset.unsafe_get informed u) then begin
              let v = pick () in
              if St.Bitset.unsafe_get informed v then push_fresh u
            end
        | Push -> ()
      end
    done;
    incr t;
    for i = 0 to !fresh_len - 1 do
      let v = St.I32.unsafe_get sc.fresh i in
      if not (St.Bitset.unsafe_get informed v) then begin
        St.Bitset.unsafe_set informed v;
        incr n_informed
      end
    done;
    push_traj !n_informed;
    Obs.Metrics.incr c_rounds;
    Dynamic.step g;
    Adj_sync.advance sync
  done;
  Obs.Metrics.add c_contacts !contacts;
  if !n_informed < n then Obs.Metrics.incr c_cap_hits;
  {
    time = (if !n_informed = n then Some !t else None);
    trajectory = Array.init !traj_len (fun i -> St.I32.get sc.traj i);
    contacts = !contacts;
  }

let mean_time ?cap ~variant ~rng ~trials ?(source = 0) g =
  if trials < 1 then invalid_arg "Gossip.mean_time: trials must be >= 1";
  let n = Dynamic.n g in
  let cap_value = match cap with Some c -> c | None -> 10_000 + (200 * n) in
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    let r = run ~cap:cap_value ~variant ~rng:(Prng.Rng.substream rng i) ~source g in
    let value = match r.time with Some t -> t | None -> cap_value in
    Stats.Summary.add summary (float_of_int value)
  done;
  summary
