(** The flooding process of the paper (Section 2) and the protocol
    variants discussed in its conclusions.

    Flooding with source [s]: I_0 = {s}; a node joins I_{t+1} iff some
    edge of E_t connects it to a node of I_t. The flooding time with
    source [s] is min {t : I_t = [n]}, and the flooding time of the
    process is the maximum over sources. *)

type protocol =
  | Flood
      (** Deterministic flooding: every informed node transmits on every
          incident edge, every step. *)
  | Push of float
      (** [Push p]: each informed node transmits over each incident edge
          independently with probability [p] per step — equivalent to
          flooding on the "virtual dynamic graph" of Section 5 in which
          a random subset of edges is removed. *)
  | Parsimonious of int
      (** [Parsimonious k]: a node transmits only during the [k] steps
          after it becomes informed (the model of Baumann et al. [4]). *)

type result = {
  time : int option;
      (** Flooding time: steps until every node is informed; [None] if
          the cap was reached first. *)
  trajectory : int array;
      (** [trajectory.(t)] = |I_t|, for t = 0 .. completion (or cap). *)
  arrivals : int array;
      (** [arrivals.(v)] = the step at which node [v] became informed
          (0 for the source), or -1 if it never did. These are the
          "temporal distances" from the source: on a static graph they
          equal BFS distances. *)
}

val run :
  ?cap:int ->
  ?protocol:protocol ->
  ?storage:[ `Heap | `Offheap ] ->
  rng:Prng.Rng.t ->
  source:int ->
  Dynamic.t ->
  result
(** Run one flooding execution. Resets the process with a split of
    [rng]; the remainder of [rng] drives the protocol's own coins (for
    [Push]). [cap] defaults to [10_000 + 200 * n] steps.

    [storage] picks the layout of the delta path's incremental
    adjacency (see {!Adj_sync.create}): by default off-heap from
    [Graph.Storage.offheap_nodes] nodes up, heap rows below. The
    informed sets, arrival times and trajectory are identical in both
    layouts (the equivalence tests in test/test_flooding.ml force each
    in turn); requires [n <= Graph.Storage.max_nodes] either way, as
    the kernel's own scratch is int32-backed. *)

val time :
  ?cap:int ->
  ?protocol:protocol ->
  ?storage:[ `Heap | `Offheap ] ->
  rng:Prng.Rng.t ->
  source:int ->
  Dynamic.t ->
  int option
(** Flooding time only — skips materialising the O(n) trajectory and
    arrival arrays, so a trial loop at large [n] allocates nothing per
    run. *)

val trial_time :
  ?cap:int ->
  ?protocol:protocol ->
  ?storage:[ `Heap | `Offheap ] ->
  rng:Prng.Rng.t ->
  source:int ->
  Dynamic.t ->
  int
(** One flooding trial as a total function: the flooding time, or the
    cap when the run did not complete. The per-trial job that
    {!mean_time} and {!worst_source_time} distribute over a
    scheduler. *)

val mean_time :
  ?cap:int ->
  ?protocol:protocol ->
  ?storage:[ `Heap | `Offheap ] ->
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  trials:int ->
  ?source:int ->
  (unit -> Dynamic.t) ->
  Stats.Summary.t
(** Flooding-time summary over [trials] independent runs, each on a
    fresh instance from the builder, seeded with [Prng.Rng.substream rng
    i] — so the summary is a deterministic function of [rng]'s state,
    identical for every scheduler ([sched] defaults to
    {!Exec.sequential}). Capped runs are recorded at the cap value, so
    means are conservative underestimates; check [max] against the cap.
    [source] defaults to node 0 (models here are node-symmetric).

    The builder must be safe to call from any domain; under a parallel
    scheduler it must return a fresh instance per call (a builder
    closing over one shared [Dynamic.t] is only safe sequentially). *)

val characteristic_time : result -> float
(** Mean arrival time over the informed nodes (the average broadcast
    latency, as opposed to [time], the worst-case one). [nan] when only
    the source was informed. *)

val worst_source_time :
  ?cap:int ->
  ?protocol:protocol ->
  ?storage:[ `Heap | `Offheap ] ->
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  ?sources:int list ->
  (unit -> Dynamic.t) ->
  int
(** max over sources of one flooding run each (all nodes by default);
    capped runs count as the cap. The F(G) = max_s F(G, s) of the
    paper, estimated with one run per source. Each source's run is
    seeded by [Prng.Rng.substream rng s] on a fresh instance from the
    builder, so the result is scheduler-independent (same contract as
    {!mean_time}). *)
