(** Random walks *on* dynamic graphs — the exploration problem of Avin,
    Koucký and Lotker [2], the paper that introduced MEGs. A token at
    node u moves, at time t, to a uniformly random neighbour of u in
    the snapshot E_t (staying put when isolated); with probability
    [hold] it stays regardless ([2] shows laziness is essential: the
    non-lazy walk can take exponential time on adversarial dynamic
    graphs).

    Complements {!Flooding}: flooding measures how fast information
    *spreads everywhere*; hitting and cover times measure how fast a
    single token *finds* nodes. *)

val hitting_time :
  ?cap:int -> ?hold:float -> rng:Prng.Rng.t -> start:int -> target:int ->
  Dynamic.t -> int option
(** Steps for a walk from [start] to first occupy [target]; [None] if
    [cap] (default [10_000 + 500 n]) is exceeded. [hold] defaults to
    1/2. *)

val cover_time :
  ?cap:int -> ?hold:float -> rng:Prng.Rng.t -> start:int -> Dynamic.t -> int option
(** Steps for the walk to visit every node at least once. *)

val mean_hitting_time :
  ?cap:int ->
  ?hold:float ->
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  trials:int ->
  (unit -> Dynamic.t) ->
  float
(** Average over [trials] runs with uniformly random (start, target)
    pairs; capped runs count as the cap. Trial [i] runs on a fresh
    instance from the builder, seeded with [Prng.Rng.substream rng i],
    so the mean is identical for every scheduler (see
    {!Flooding.mean_time} for the contract). *)

val mean_cover_time :
  ?cap:int ->
  ?hold:float ->
  ?sched:Exec.scheduler ->
  rng:Prng.Rng.t ->
  trials:int ->
  (unit -> Dynamic.t) ->
  float
(** Average cover time from uniformly random starts; same trial scheme
    as {!mean_hitting_time}. *)
