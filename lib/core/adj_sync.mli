(** Keep a {!Graph.Mutable_adj} in sync with a {!Dynamic} process —
    incrementally through the model's delta stream when it cooperates,
    by full re-enumeration when it does not.

    The one loop shape all delta-driven kernels share:
    {[
      let sync = Adj_sync.create g in          (* after Dynamic.reset *)
      while running do
        Adj_sync.ensure sync;                  (* rebuild iff out of sync *)
        ... scan (Adj_sync.adj sync) ...
        Dynamic.step g;
        Adj_sync.advance sync                  (* apply deltas or mark stale *)
      done
    ]}

    [advance] must run immediately after [Dynamic.step] (deltas are
    only valid there) and the structure must be this consumer's only
    delta reader — a step's report can be consumed once. *)

type t

val create : ?storage:[ `Heap | `Offheap ] -> Dynamic.t -> t
(** A fresh, unsynced view of the process (no snapshot is read until
    the first {!ensure}). Call after [Dynamic.reset]; to reuse a view
    across resets of the same process (keeping its grown row storage
    warm), call {!invalidate} at the start of each run instead of
    allocating a new one.

    [storage] picks the {!Graph.Mutable_adj} layout; by default graphs
    with at least [Graph.Storage.offheap_nodes] nodes get the off-heap
    arena and smaller ones the heap rows, so small runs keep the exact
    historical code paths. *)

val invalidate : t -> unit
(** Mark the view stale so the next {!ensure} rebuilds. Required when
    reusing one view across [Dynamic.reset]s: the old adjacency is
    garbage for the new trajectory, but the row capacities it grew are
    worth keeping. *)

val adj : t -> Graph.Mutable_adj.t
(** The maintained adjacency. Only valid after {!ensure} in the current
    round. Callers must not mutate it. *)

val synced : t -> bool
(** Whether the adjacency currently mirrors the model's snapshot
    (false initially and after a declined {!advance}). *)

val ensure : t -> unit
(** Bring the adjacency up to date: no-op when {!synced}, otherwise a
    full rebuild from [Dynamic.iter_edges] — O(n + m). *)

val advance : t -> unit
(** Consume the step's delta report into the adjacency (O(Δ)). If the
    model declines — or was never delta-capable — the view is marked
    stale and the next {!ensure} rebuilds. When the model's
    {!Dynamic.delta_size} hint says the report is large enough that a
    rebuild is cheaper than applying it (roughly Δ ≳ (2m + n)/5), the
    report is skipped unconsumed and the view marked stale instead —
    the crossover where four row operations per event overtake a
    linear rebuild. Call exactly once, right after [Dynamic.step];
    skip it only if the next round starts with a rebuild anyway. *)

val refreshes : t -> int
(** Number of full rebuilds so far ({!ensure} calls that did work). *)

val delta_ops : t -> int
(** Cumulative births + deaths applied incrementally — the kernels'
    per-round Δ, observable for work counters. *)
