type t = {
  n : int;
  reset : Prng.Rng.t -> unit;
  step : unit -> unit;
  iter_edges : (int -> int -> unit) -> unit;
  fill_edges : Graph.Edge_buffer.t -> unit;
      (* Appends the current snapshot's edges to the buffer, in exactly
         the order [iter_edges] visits them (consumers draw per-edge
         randomness in enumeration order, so the two paths must agree).
         Append — not fill — so that combinators compose; the public
         [fill_edges] clears first. *)
  deltas : (birth:(int -> int -> unit) -> death:(int -> int -> unit) -> bool) option;
      (* Reports the edge changes of the most recent [step] (births and
         deaths relative to the previous snapshot, as a multiset) or
         returns false to decline, in which case the consumer must
         re-enumerate the snapshot. See dynamic.mli for the full
         contract. *)
  expected_edges : int option;
      (* Model-supplied guess of a typical snapshot's edge count, used
         to size buffers. *)
  delta_size : (unit -> int) option;
      (* O(1) estimate of how many birth/death events the pending
         [deltas] report would emit, so a consumer can decide between
         applying the deltas and rebuilding from the snapshot without
         consuming anything. Advisory: approximate values are fine,
         correctness never depends on it. *)
}

let make ?fill_edges ?deltas ?delta_size ?expected_edges ~n ~reset ~step ~iter_edges () =
  if n < 1 then invalid_arg "Dynamic.make: n must be >= 1";
  let fill_edges =
    match fill_edges with
    | Some fill -> fill
    | None -> fun buf -> iter_edges (fun u v -> Graph.Edge_buffer.push buf u v)
  in
  { n; reset; step; iter_edges; fill_edges; deltas; delta_size; expected_edges }

let n t = t.n

let reset t rng = t.reset rng

let step t = t.step ()

let iter_edges t f = t.iter_edges f

let fill_edges t buf =
  Graph.Edge_buffer.clear buf;
  t.fill_edges buf

let has_deltas t = Option.is_some t.deltas

let deltas t ~birth ~death =
  match t.deltas with None -> false | Some report -> report ~birth ~death

let delta_size t = match t.delta_size with None -> None | Some f -> Some (f ())

let expected_edges t = match t.expected_edges with Some e -> max 1 e | None -> 4 * t.n

(* Explicit int-pair comparator: [compare] on (int * int) would walk
   the polymorphic-comparison interpreter per element. *)
let cmp_edge (a1, b1) (a2, b2) =
  if (a1 : int) <> a2 then compare (a1 : int) a2 else compare (b1 : int) b2

let snapshot_edges t =
  let acc = ref [] in
  t.iter_edges (fun u v -> acc := (min u v, max u v) :: !acc);
  List.sort_uniq cmp_edge !acc

let snapshot_graph t =
  let buf = Graph.Edge_buffer.create ~capacity:(max 16 (expected_edges t)) () in
  t.fill_edges buf;
  Graph.Static.of_buffer ~n:t.n buf

let adjacency t =
  let adj = Array.make t.n [] in
  t.iter_edges (fun u v ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v));
  adj

let edge_count t =
  let c = ref 0 in
  t.iter_edges (fun _ _ -> incr c);
  !c

let isolated_fraction t =
  let touched = Array.make t.n false in
  t.iter_edges (fun u v ->
      touched.(u) <- true;
      touched.(v) <- true);
  let isolated = ref 0 in
  Array.iter (fun b -> if not b then incr isolated) touched;
  float_of_int !isolated /. float_of_int t.n

let of_static g =
  make
    ~n:(Graph.Static.n g)
    ~reset:(fun _ -> ())
    ~step:(fun () -> ())
    ~iter_edges:(fun f -> Graph.Static.iter_edges g f)
    ~fill_edges:(fun buf -> Graph.Static.to_buffer g buf)
      (* The constant process: every step is a no-op, so the delta
         stream is trivially empty. *)
    ~deltas:(fun ~birth:_ ~death:_ -> true)
    ~delta_size:(fun () -> 0)
    ~expected_edges:(Graph.Static.m g) ()

let of_snapshots ~n snapshots =
  if Array.length snapshots = 0 then invalid_arg "Dynamic.of_snapshots: empty sequence";
  let k = Array.length snapshots in
  (* Precompute the per-transition deltas once: canonical sorted
     multisets per snapshot, then a merge-walk difference between each
     snapshot and its cyclic successor. *)
  let canon l =
    let a = Array.of_list (List.map (fun (u, v) -> (min u v, max u v)) l) in
    Array.sort cmp_edge a;
    a
  in
  let canonical = Array.map canon snapshots in
  let diff old_a new_a =
    let births = ref [] and deaths = ref [] in
    let i = ref 0 and j = ref 0 in
    let no = Array.length old_a and nn = Array.length new_a in
    while !i < no || !j < nn do
      if !i >= no then begin
        births := new_a.(!j) :: !births;
        incr j
      end
      else if !j >= nn then begin
        deaths := old_a.(!i) :: !deaths;
        incr i
      end
      else
        let c = cmp_edge old_a.(!i) new_a.(!j) in
        if c = 0 then begin
          incr i;
          incr j
        end
        else if c < 0 then begin
          deaths := old_a.(!i) :: !deaths;
          incr i
        end
        else begin
          births := new_a.(!j) :: !births;
          incr j
        end
    done;
    (Array.of_list (List.rev !births), Array.of_list (List.rev !deaths))
  in
  let diffs = Array.init k (fun i -> diff canonical.(i) canonical.((i + 1) mod k)) in
  let max_m = Array.fold_left (fun acc a -> max acc (Array.length a)) 1 canonical in
  let idx = ref 0 in
  let stepped = ref false in
  make ~n
    ~reset:(fun _ ->
      idx := 0;
      stepped := false)
    ~step:(fun () ->
      idx := (!idx + 1) mod k;
      stepped := true)
    ~iter_edges:(fun f -> List.iter (fun (u, v) -> f u v) snapshots.(!idx))
    ~fill_edges:(fun buf ->
      List.iter (fun (u, v) -> Graph.Edge_buffer.push buf u v) snapshots.(!idx))
    ~deltas:(fun ~birth ~death ->
      !stepped
      && begin
           let births, deaths = diffs.((!idx + k - 1) mod k) in
           Array.iter (fun (u, v) -> birth u v) births;
           Array.iter (fun (u, v) -> death u v) deaths;
           true
         end)
    ~delta_size:(fun () ->
      if not !stepped then 0
      else
        let births, deaths = diffs.((!idx + k - 1) mod k) in
        Array.length births + Array.length deaths)
    ~expected_edges:max_m ()

let filter_edges ~p_keep inner =
  if not (p_keep >= 0. && p_keep <= 1.) then
    invalid_arg "Dynamic.filter_edges: p_keep outside [0, 1]";
  let n = inner.n in
  (* No RNG exists until the first [reset]: enumerating edges before one
     is a contract violation and raises, rather than silently drawing
     from a fixed fallback stream (see dynamic.mli). *)
  let rng = ref None in
  (* The filter decision for an edge must be stable within one snapshot
     (iter_edges may be called several times between steps), so decisions
     are cached per step, keyed by the edge's Pairs index (no tuple
     allocation or polymorphic hashing per query). The cached value
     packs the coin with the edge's multiplicity in the first full
     enumeration of the step — [mult] if kept, [-mult] if dropped —
     which is what lets the delta hook diff two steps' caches without
     consulting the inner model. *)
  let cur = ref (Hashtbl.create 256) in
  let prev = ref (Hashtbl.create 256) in
  let cur_complete = ref false in
  let prev_complete = ref false in
  let keep u v =
    let key = Graph.Pairs.encode n u v in
    match Hashtbl.find_opt !cur key with
    | Some c ->
        if not !cur_complete then Hashtbl.replace !cur key (if c > 0 then c + 1 else c - 1);
        c > 0
    | None ->
        let r =
          match !rng with
          | Some r -> r
          | None -> invalid_arg "Dynamic.filter_edges: snapshot read before first reset"
        in
        let b = Prng.Rng.bernoulli r p_keep in
        Hashtbl.add !cur key (if b then 1 else -1);
        b
  in
  let kept_mult c = if c > 0 then c else 0 in
  let scratch = Graph.Edge_buffer.create ~capacity:(max 16 (expected_edges inner)) () in
  make ~n
    ~reset:(fun r ->
      inner.reset (Prng.Rng.split r);
      rng := Some (Prng.Rng.split r);
      Hashtbl.reset !cur;
      Hashtbl.reset !prev;
      cur_complete := false;
      prev_complete := false)
    ~step:(fun () ->
      inner.step ();
      let stale = !prev in
      prev := !cur;
      cur := stale;
      Hashtbl.clear !cur;
      prev_complete := !cur_complete;
      cur_complete := false)
    ~iter_edges:(fun f ->
      inner.iter_edges (fun u v -> if keep u v then f u v);
      cur_complete := true)
    ~fill_edges:(fun buf ->
      Graph.Edge_buffer.clear scratch;
      inner.fill_edges scratch;
      Graph.Edge_buffer.iter scratch (fun u v ->
          if keep u v then Graph.Edge_buffer.push buf u v);
      cur_complete := true)
      (* Fresh coins every step mean the filtered deltas are not the
         inner deltas: they are the difference between this step's and
         the previous step's keep decisions. Both live in the caches,
         so the hook enumerates the inner snapshot once (drawing this
         step's coins in exactly the enumeration order the plain paths
         use — the coin stream is unchanged) and then diffs the two
         caches; the inner model needs no delta support of its own. It
         declines whenever the previous step was never fully
         enumerated, since then the old decisions are unknowable. *)
    ~deltas:(fun ~birth ~death ->
      !prev_complete
      && begin
           if not !cur_complete then begin
             inner.iter_edges (fun u v -> ignore (keep u v));
             cur_complete := true
           end;
           Hashtbl.iter
             (fun key c ->
               let o =
                 match Hashtbl.find_opt !prev key with Some o -> kept_mult o | None -> 0
               in
               let d = kept_mult c - o in
               if d <> 0 then
                 Graph.Pairs.decode_with n key (fun u v ->
                     if d > 0 then
                       for _ = 1 to d do
                         birth u v
                       done
                     else
                       for _ = 1 to -d do
                         death u v
                       done))
             !cur;
           Hashtbl.iter
             (fun key o ->
               if not (Hashtbl.mem !cur key) then
                 let o = kept_mult o in
                 if o > 0 then
                   Graph.Pairs.decode_with n key (fun u v ->
                       for _ = 1 to o do
                         death u v
                       done))
             !prev;
           true
         end)
    ~expected_edges:
      (int_of_float (ceil (p_keep *. float_of_int (expected_edges inner))))
    ()

let subsample ~every inner =
  if every < 1 then invalid_arg "Dynamic.subsample: every must be >= 1";
  if every = 1 then
    (* Pure passthrough: one observed step is one inner step, so the
       inner delta stream (if any) is already the right one. *)
    make ~n:inner.n ~reset:inner.reset ~step:inner.step ~iter_edges:inner.iter_edges
      ~fill_edges:inner.fill_edges ?deltas:inner.deltas ?delta_size:inner.delta_size
      ?expected_edges:inner.expected_edges ()
  else
    match inner.deltas with
    | None ->
        make ~n:inner.n ~reset:inner.reset
          ~step:(fun () ->
            for _ = 1 to every do
              inner.step ()
            done)
          ~iter_edges:inner.iter_edges ~fill_edges:inner.fill_edges
          ?expected_edges:inner.expected_edges ()
    | Some inner_deltas ->
        (* Net the inner sub-steps' churn per edge across one observed
           step: an edge that flaps within the window cancels out. *)
        let net = Hashtbl.create 64 in
        let bump key d =
          let c = match Hashtbl.find_opt net key with Some c -> c | None -> 0 in
          let c = c + d in
          if c = 0 then Hashtbl.remove net key else Hashtbl.replace net key c
        in
        let acc_birth u v = bump (Graph.Pairs.encode inner.n u v) 1 in
        let acc_death u v = bump (Graph.Pairs.encode inner.n u v) (-1) in
        let pending_valid = ref false in
        make ~n:inner.n
          ~reset:(fun r ->
            inner.reset r;
            Hashtbl.reset net;
            pending_valid := false)
          ~step:(fun () ->
            Hashtbl.clear net;
            pending_valid := true;
            for _ = 1 to every do
              inner.step ();
              if !pending_valid then
                if not (inner_deltas ~birth:acc_birth ~death:acc_death) then
                  pending_valid := false
            done)
          ~iter_edges:inner.iter_edges ~fill_edges:inner.fill_edges
          ~deltas:(fun ~birth ~death ->
            !pending_valid
            && begin
                 Hashtbl.iter
                   (fun key c ->
                     Graph.Pairs.decode_with inner.n key (fun u v ->
                         if c > 0 then
                           for _ = 1 to c do
                             birth u v
                           done
                         else
                           for _ = 1 to -c do
                             death u v
                           done))
                   net;
                 true
               end)
            (* Netted multiplicities are almost always +-1, so the key
               count is a good event-count estimate. *)
          ~delta_size:(fun () -> if !pending_valid then Hashtbl.length net else 0)
          ?expected_edges:inner.expected_edges ()

let union a b =
  if a.n <> b.n then invalid_arg "Dynamic.union: node-count mismatch";
  let deltas =
    match (a.deltas, b.deltas) with
    | Some da, Some db ->
        (* The union snapshot is the multiset sum of the operands (an
           edge present in both is reported twice), so forwarding both
           operands' births and deaths verbatim keeps a multiset
           consumer exact — each operand adds or removes its own copy.
           Both hooks run even if the first declines, so neither
           operand's per-step delta state is left half-consumed; on
           decline the consumer refreshes, which subsumes anything
           already applied. *)
        Some
          (fun ~birth ~death ->
            let ok_a = da ~birth ~death in
            let ok_b = db ~birth ~death in
            ok_a && ok_b)
    | _ -> None
  in
  let delta_size =
    match (a.delta_size, b.delta_size) with
    | Some sa, Some sb -> Some (fun () -> sa () + sb ())
    | _ -> None
  in
  let expected_edges =
    match (a.expected_edges, b.expected_edges) with
    | Some ea, Some eb -> Some (ea + eb)
    | _ -> None
  in
  make ~n:a.n
    ~reset:(fun r ->
      a.reset (Prng.Rng.split r);
      b.reset (Prng.Rng.split r))
    ~step:(fun () ->
      a.step ();
      b.step ())
    ~iter_edges:(fun f ->
      a.iter_edges f;
      b.iter_edges f)
    ~fill_edges:(fun buf ->
      a.fill_edges buf;
      b.fill_edges buf)
    ?deltas ?delta_size ?expected_edges ()
