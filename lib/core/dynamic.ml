type t = {
  n : int;
  reset : Prng.Rng.t -> unit;
  step : unit -> unit;
  iter_edges : (int -> int -> unit) -> unit;
  fill_edges : Graph.Edge_buffer.t -> unit;
      (* Appends the current snapshot's edges to the buffer, in exactly
         the order [iter_edges] visits them (consumers draw per-edge
         randomness in enumeration order, so the two paths must agree).
         Append — not fill — so that combinators compose; the public
         [fill_edges] clears first. *)
}

let make ?fill_edges ~n ~reset ~step ~iter_edges () =
  if n < 1 then invalid_arg "Dynamic.make: n must be >= 1";
  let fill_edges =
    match fill_edges with
    | Some fill -> fill
    | None -> fun buf -> iter_edges (fun u v -> Graph.Edge_buffer.push buf u v)
  in
  { n; reset; step; iter_edges; fill_edges }

let n t = t.n

let reset t rng = t.reset rng

let step t = t.step ()

let iter_edges t f = t.iter_edges f

let fill_edges t buf =
  Graph.Edge_buffer.clear buf;
  t.fill_edges buf

let snapshot_edges t =
  let acc = ref [] in
  t.iter_edges (fun u v -> acc := (min u v, max u v) :: !acc);
  List.sort_uniq compare !acc

let snapshot_graph t =
  let buf = Graph.Edge_buffer.create ~capacity:256 () in
  t.fill_edges buf;
  Graph.Static.of_buffer ~n:t.n buf

let adjacency t =
  let adj = Array.make t.n [] in
  t.iter_edges (fun u v ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v));
  adj

let edge_count t =
  let c = ref 0 in
  t.iter_edges (fun _ _ -> incr c);
  !c

let isolated_fraction t =
  let touched = Array.make t.n false in
  t.iter_edges (fun u v ->
      touched.(u) <- true;
      touched.(v) <- true);
  let isolated = ref 0 in
  Array.iter (fun b -> if not b then incr isolated) touched;
  float_of_int !isolated /. float_of_int t.n

let of_static g =
  make
    ~n:(Graph.Static.n g)
    ~reset:(fun _ -> ())
    ~step:(fun () -> ())
    ~iter_edges:(fun f -> Graph.Static.iter_edges g f)
    ~fill_edges:(fun buf -> Graph.Static.to_buffer g buf)
    ()

let of_snapshots ~n snapshots =
  if Array.length snapshots = 0 then invalid_arg "Dynamic.of_snapshots: empty sequence";
  let idx = ref 0 in
  make ~n
    ~reset:(fun _ -> idx := 0)
    ~step:(fun () -> idx := (!idx + 1) mod Array.length snapshots)
    ~iter_edges:(fun f -> List.iter (fun (u, v) -> f u v) snapshots.(!idx))
    ~fill_edges:(fun buf ->
      List.iter (fun (u, v) -> Graph.Edge_buffer.push buf u v) snapshots.(!idx))
    ()

let filter_edges ~p_keep inner =
  if not (p_keep >= 0. && p_keep <= 1.) then
    invalid_arg "Dynamic.filter_edges: p_keep outside [0, 1]";
  (* No RNG exists until the first [reset]: enumerating edges before one
     is a contract violation and raises, rather than silently drawing
     from a fixed fallback stream (see dynamic.mli). *)
  let rng = ref None in
  (* The filter decision for an edge must be stable within one snapshot
     (iter_edges may be called several times between steps), so decisions
     are cached per step and invalidated on step/reset. *)
  let cache = Hashtbl.create 256 in
  let invalidate () = Hashtbl.reset cache in
  let keep u v =
    let key = (min u v, max u v) in
    match Hashtbl.find_opt cache key with
    | Some b -> b
    | None ->
        let r =
          match !rng with
          | Some r -> r
          | None -> invalid_arg "Dynamic.filter_edges: snapshot read before first reset"
        in
        let b = Prng.Rng.bernoulli r p_keep in
        Hashtbl.add cache key b;
        b
  in
  let scratch = Graph.Edge_buffer.create ~capacity:256 () in
  make ~n:inner.n
    ~reset:(fun r ->
      inner.reset (Prng.Rng.split r);
      rng := Some (Prng.Rng.split r);
      invalidate ())
    ~step:(fun () ->
      inner.step ();
      invalidate ())
    ~iter_edges:(fun f -> inner.iter_edges (fun u v -> if keep u v then f u v))
    ~fill_edges:(fun buf ->
      Graph.Edge_buffer.clear scratch;
      inner.fill_edges scratch;
      Graph.Edge_buffer.iter scratch (fun u v ->
          if keep u v then Graph.Edge_buffer.push buf u v))
    ()

let subsample ~every inner =
  if every < 1 then invalid_arg "Dynamic.subsample: every must be >= 1";
  make ~n:inner.n ~reset:inner.reset
    ~step:(fun () ->
      for _ = 1 to every do
        inner.step ()
      done)
    ~iter_edges:inner.iter_edges ~fill_edges:inner.fill_edges ()

let union a b =
  if a.n <> b.n then invalid_arg "Dynamic.union: node-count mismatch";
  make ~n:a.n
    ~reset:(fun r ->
      a.reset (Prng.Rng.split r);
      b.reset (Prng.Rng.split r))
    ~step:(fun () ->
      a.step ();
      b.step ())
    ~iter_edges:(fun f ->
      a.iter_edges f;
      b.iter_edges f)
    ~fill_edges:(fun buf ->
      a.fill_edges buf;
      b.fill_edges buf)
    ()
