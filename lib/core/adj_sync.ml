type t = {
  g : Dynamic.t;
  adj : Graph.Mutable_adj.t;
  mutable synced : bool;
  mutable refreshes : int;
  ops : int ref;
  birth : int -> int -> unit;
  death : int -> int -> unit;
}

let create ?storage g =
  let n = Dynamic.n g in
  (* Auto routing: big graphs go to the arena layout so the adjacency
     is GC-invisible; small ones keep the heap rows (and the exact code
     paths every golden was pinned on). *)
  let storage =
    match storage with
    | Some s -> s
    | None -> if n >= Graph.Storage.offheap_nodes then `Offheap else `Heap
  in
  let adj = Graph.Mutable_adj.create ~n ~storage () in
  let ops = ref 0 in
  let birth u v =
    incr ops;
    Graph.Mutable_adj.add adj u v
  in
  let death u v =
    incr ops;
    Graph.Mutable_adj.remove adj u v
  in
  { g; adj; synced = false; refreshes = 0; ops; birth; death }

let adj t = t.adj

let synced t = t.synced

let refreshes t = t.refreshes

let delta_ops t = !(t.ops)

let invalidate t = t.synced <- false

let ensure t =
  if not t.synced then begin
    Graph.Mutable_adj.clear t.adj;
    (* Straight from the model's enumeration into the rows — no
       intermediate edge buffer to fill and re-walk. Deliberately not
       fanned over Exec.Pool (DESIGN.md section 11): each edge appends
       to both endpoints' rows, so writes are not partitionable by
       tile without a counting-sort pre-pass the flood kernels already
       do better downstream — and the rebuild is O(n + m) against the
       O(rounds * m) scans it feeds. *)
    Dynamic.iter_edges t.g (fun u v -> Graph.Mutable_adj.add t.adj u v);
    t.refreshes <- t.refreshes + 1;
    t.synced <- true
  end

(* Applying a delta report costs roughly four row operations per event
   (two appends per birth, two scan-and-swap removals per death), which
   measures ~4x the per-entry cost of rebuilding the whole adjacency
   from a snapshot enumeration. So when the model can say up front that
   the report is large relative to the structure — about a fifth of
   (entries + n), where the rebuild cost crosses the apply cost — skip
   consuming it and let the next [ensure] rebuild. High-churn regimes
   (delta comparable to the edge count) then pay the cheap O(n + m)
   rebuild instead of an O(delta) patch with a worse constant, while
   low-churn regimes keep the pure incremental path. *)
let advance t =
  if t.synced then
    let stale =
      match Dynamic.delta_size t.g with
      | Some d when 5 * d >= Graph.Mutable_adj.entries t.adj + Dynamic.n t.g -> true
      | _ -> not (Dynamic.deltas t.g ~birth:t.birth ~death:t.death)
    in
    if stale then t.synced <- false
