(** Dynamic graphs: stochastic processes G([n], {E_t}).

    A value of type {!t} owns hidden mutable state (node positions, edge
    chain states, ...). [reset rng] (re)initialises that state — drawing
    the initial configuration from the model's initial distribution using
    [rng] — and produces the snapshot E_0. Each [step ()] advances the
    process one time unit to the next snapshot. [iter_edges f] visits
    every edge of the *current* snapshot exactly once (in either
    orientation).

    All concrete models in this repository (edge-MEGs, node-MEGs,
    mobility models, random-path models) are exposed through this one
    interface, which is what lets the flooding analysis run unchanged
    over all of them — the code-level counterpart of the paper's claim
    of generality. *)

type t

val make :
  ?fill_edges:(Graph.Edge_buffer.t -> unit) ->
  n:int ->
  reset:(Prng.Rng.t -> unit) ->
  step:(unit -> unit) ->
  iter_edges:((int -> int -> unit) -> unit) ->
  unit ->
  t
(** Wrap a model. [n] is the (fixed) number of nodes.

    [fill_edges], when given, must {e append} the current snapshot's
    edges to the buffer — in exactly the order [iter_edges] visits them,
    because consumers (Push flooding, {!filter_edges}) draw per-edge
    randomness in enumeration order, so the two paths must be
    interchangeable. When omitted it is derived from [iter_edges];
    models provide a native implementation to skip the closure hop and
    any per-snapshot list building. *)

val n : t -> int
(** Number of nodes. *)

val reset : t -> Prng.Rng.t -> unit
(** Draw a fresh initial configuration; the current snapshot becomes
    E_0. The model must keep (a split of) [rng] for its own later use. *)

val step : t -> unit
(** Advance to the next snapshot. Undefined before the first {!reset}. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate the current snapshot's edges, each exactly once. *)

val fill_edges : t -> Graph.Edge_buffer.t -> unit
(** [fill_edges t buf] clears [buf] and writes the current snapshot's
    edges into it, in {!iter_edges} order. The allocation-free snapshot
    read: with a model-native implementation no intermediate list or
    closure chain is built, and a caller reusing one buffer across
    steps enumerates edges with zero steady-state allocation. *)

val snapshot_edges : t -> (int * int) list
(** Materialise the current snapshot as an edge list with [u < v]. *)

val snapshot_graph : t -> Graph.Static.t
(** Materialise the current snapshot as a static graph. *)

val adjacency : t -> int list array
(** Current snapshot as adjacency lists (both directions). *)

val edge_count : t -> int
(** Number of edges in the current snapshot. *)

val isolated_fraction : t -> float
(** Fraction of nodes with no incident edge in the current snapshot. *)

val of_static : Graph.Static.t -> t
(** The constant process: every snapshot is the given graph. *)

val of_snapshots : n:int -> (int * int) list array -> t
(** Deterministic process cycling through the given finite snapshot
    sequence; mainly for tests. [reset] restarts at index 0. *)

val filter_edges : p_keep:float -> t -> t
(** [filter_edges ~p_keep g] is the "virtual dynamic graph" of the
    paper's Section 5: each snapshot edge of [g] is kept independently
    with probability [p_keep], fresh randomness each step. Resetting the
    filtered process resets [g] with a split of the provided generator
    and re-seeds the filter with another split.

    The filter has no generator until the first {!reset}: enumerating
    the snapshot before one raises [Invalid_argument] (it used to draw
    silently from a fixed fallback stream seeded with 0). Within one
    snapshot, keep decisions are cached per edge, so repeated
    enumerations agree; the coins are drawn in first-enumeration
    order. *)

val union : t -> t -> t
(** Superposition of two processes on the same node set: an edge is
    present when present in either. Both advance in lock-step. Edges may
    be reported twice (consumers tolerate duplicates). *)

val subsample : every:int -> t -> t
(** [subsample ~every:m g] observes only every m-th snapshot of [g]:
    one [step] of the result advances [g] by [m] steps. This is the
    epoch-granularity view used throughout the paper's analysis (its
    lemmas only look at the graph at times τM); flooding on the
    subsampled process, multiplied by [m], upper-bounds flooding on
    [g], and the gap measures the slack the epoch argument gives
    away. *)
