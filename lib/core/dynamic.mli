(** Dynamic graphs: stochastic processes G([n], {E_t}).

    A value of type {!t} owns hidden mutable state (node positions, edge
    chain states, ...). [reset rng] (re)initialises that state — drawing
    the initial configuration from the model's initial distribution using
    [rng] — and produces the snapshot E_0. Each [step ()] advances the
    process one time unit to the next snapshot. [iter_edges f] visits
    every edge of the *current* snapshot exactly once (in either
    orientation).

    All concrete models in this repository (edge-MEGs, node-MEGs,
    mobility models, random-path models) are exposed through this one
    interface, which is what lets the flooding analysis run unchanged
    over all of them — the code-level counterpart of the paper's claim
    of generality. *)

type t

val make :
  ?fill_edges:(Graph.Edge_buffer.t -> unit) ->
  ?deltas:(birth:(int -> int -> unit) -> death:(int -> int -> unit) -> bool) ->
  ?delta_size:(unit -> int) ->
  ?expected_edges:int ->
  n:int ->
  reset:(Prng.Rng.t -> unit) ->
  step:(unit -> unit) ->
  iter_edges:((int -> int -> unit) -> unit) ->
  unit ->
  t
(** Wrap a model. [n] is the (fixed) number of nodes.

    [fill_edges], when given, must {e append} the current snapshot's
    edges to the buffer — in exactly the order [iter_edges] visits them,
    because consumers (Push flooding, {!filter_edges}) draw per-edge
    randomness in enumeration order, so the two paths must be
    interchangeable. When omitted it is derived from [iter_edges];
    models provide a native implementation to skip the closure hop and
    any per-snapshot list building.

    [deltas], when given, makes the model {e delta-capable}: after each
    [step] it reports the edge changes of that step — every born edge
    through [birth], every died edge through [death] — and returns
    [true], or returns [false] to decline (any callbacks already issued
    may then be discarded; the consumer must re-enumerate). The full
    contract is documented on the {!deltas} accessor and in DESIGN.md
    section 8.

    [delta_size], when given, must be O(1) and estimate how many
    birth/death events the pending [deltas] report would emit (0 when
    the report would decline). It is purely advisory — consumers use
    it to choose between applying deltas and rebuilding from the
    snapshot, so an approximate value only ever costs performance,
    never correctness.

    [expected_edges] is a hint — a typical snapshot's edge count — used
    to size snapshot buffers ({!snapshot_graph}, the kernels' working
    buffers). Purely a capacity guess; correctness never depends on
    it. *)

val n : t -> int
(** Number of nodes. *)

val reset : t -> Prng.Rng.t -> unit
(** Draw a fresh initial configuration; the current snapshot becomes
    E_0. The model must keep (a split of) [rng] for its own later use. *)

val step : t -> unit
(** Advance to the next snapshot. Undefined before the first {!reset}. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate the current snapshot's edges, each exactly once. *)

val fill_edges : t -> Graph.Edge_buffer.t -> unit
(** [fill_edges t buf] clears [buf] and writes the current snapshot's
    edges into it, in {!iter_edges} order. The allocation-free snapshot
    read: with a model-native implementation no intermediate list or
    closure chain is built, and a caller reusing one buffer across
    steps enumerates edges with zero steady-state allocation. *)

val delta_size : t -> int option
(** [delta_size t] is the model's O(1) estimate of how many birth/death
    events {!deltas} would currently emit, or [None] when the model
    offers no estimate. Advisory (see {!make}): consumers compare it
    against the cost of a snapshot rebuild and may skip consuming the
    report entirely when applying it would be slower. *)

val has_deltas : t -> bool
(** Whether the model carries a native delta hook. A static capability:
    it never changes over the life of the value, so consumers can pick
    their scan strategy once per run. Even a capable model may still
    {e decline} individual steps (see {!deltas}). *)

val deltas : t -> birth:(int -> int -> unit) -> death:(int -> int -> unit) -> bool
(** [deltas t ~birth ~death] reports the edge changes of the most
    recent {!step} and returns [true], or returns [false] — always, for
    a model without the hook ({!has_deltas}), and per-step when a
    capable model declines (e.g. right after {!reset}, or when the
    change set would be more expensive to emit than a re-enumeration).

    Contract, for implementors and consumers alike:
    {ul
    {- Valid only between a [step] and the next [reset]/[step], and
       must be consumed at most once per step: the reported changes
       turn the {e previous} snapshot's edge multiset into the current
       one, so a consumer that skips (or double-consumes) a step must
       re-enumerate instead.}
    {- Births and deaths are disjoint {e as multisets}: an edge is
       reported dead once per disappearing copy and born once per
       appearing copy (copies arise under {!union}). Order within the
       report is unspecified but deterministic.}
    {- On [false], callbacks may already have fired; the consumer must
       treat its incremental state as garbage and rebuild from
       {!iter_edges}/{!fill_edges}.}
    {- Combinators forward deltas when their operands support them
       ({!union}, {!subsample}); {!filter_edges} synthesises its own
       from its keep-decision caches. Enumerating a {!filter_edges}
       snapshot through this hook draws the same coins in the same
       order as {!iter_edges} would have, so golden results of
       enumeration-order-independent protocols are unaffected.}} *)

val expected_edges : t -> int
(** The model's {!make}-supplied edge-count hint, or a [4 * n]
    heuristic when absent. Always at least 1. A buffer-sizing guess,
    nothing more. *)

val snapshot_edges : t -> (int * int) list
(** Materialise the current snapshot as an edge list with [u < v]. *)

val snapshot_graph : t -> Graph.Static.t
(** Materialise the current snapshot as a static graph. *)

val adjacency : t -> int list array
(** Current snapshot as adjacency lists (both directions). *)

val edge_count : t -> int
(** Number of edges in the current snapshot. *)

val isolated_fraction : t -> float
(** Fraction of nodes with no incident edge in the current snapshot. *)

val of_static : Graph.Static.t -> t
(** The constant process: every snapshot is the given graph. *)

val of_snapshots : n:int -> (int * int) list array -> t
(** Deterministic process cycling through the given finite snapshot
    sequence; mainly for tests. [reset] restarts at index 0. *)

val filter_edges : p_keep:float -> t -> t
(** [filter_edges ~p_keep g] is the "virtual dynamic graph" of the
    paper's Section 5: each snapshot edge of [g] is kept independently
    with probability [p_keep], fresh randomness each step. Resetting the
    filtered process resets [g] with a split of the provided generator
    and re-seeds the filter with another split.

    The filter has no generator until the first {!reset}: enumerating
    the snapshot before one raises [Invalid_argument] (it used to draw
    silently from a fixed fallback stream seeded with 0). Within one
    snapshot, keep decisions are cached per edge (int-keyed by
    {!Graph.Pairs} index — no allocation per query), so repeated
    enumerations agree; the coins are drawn in first-enumeration
    order.

    Always delta-capable regardless of the inner model: the hook diffs
    this step's keep decisions against the previous step's, declining
    only when the previous snapshot was never fully enumerated. *)

val union : t -> t -> t
(** Superposition of two processes on the same node set: an edge is
    present when present in either. Both advance in lock-step. Edges may
    be reported twice (consumers tolerate duplicates — the delta
    protocol and {!Graph.Mutable_adj} treat snapshots as multisets for
    exactly this reason). Delta-capable iff both operands are: the
    operands' streams are forwarded verbatim. *)

val subsample : every:int -> t -> t
(** [subsample ~every:m g] observes only every m-th snapshot of [g]:
    one [step] of the result advances [g] by [m] steps. This is the
    epoch-granularity view used throughout the paper's analysis (its
    lemmas only look at the graph at times τM); flooding on the
    subsampled process, multiplied by [m], upper-bounds flooding on
    [g], and the gap measures the slack the epoch argument gives
    away.

    Delta-capable iff [g] is: one observed step nets [g]'s per-substep
    births and deaths per edge, so churn that cancels within the window
    is not reported. *)
