let default_cap n = 10_000 + (500 * n)

let c_runs = Obs.Metrics.counter "walk.runs"

let c_steps = Obs.Metrics.counter "walk.steps"

let c_cap_hits = Obs.Metrics.counter "walk.cap_hits"

let step_walk ~hold rng adj u =
  if hold > 0. && Prng.Rng.bernoulli rng hold then u
  else
    let d = Graph.Mutable_adj.degree adj u in
    if d = 0 then u else Graph.Mutable_adj.neighbor adj u (Prng.Rng.int rng d)

let walk_until ?cap ?(hold = 0.5) ~rng ~start ~stop g =
  let n = Dynamic.n g in
  if start < 0 || start >= n then invalid_arg "Dyn_walk: start out of range";
  if not (hold >= 0. && hold < 1.) then invalid_arg "Dyn_walk: hold outside [0, 1)";
  let cap = match cap with Some c -> c | None -> default_cap n in
  Obs.Metrics.incr c_runs;
  Dynamic.reset g (Prng.Rng.split rng);
  let position = ref start in
  let t = ref 0 in
  let finished = ref (stop ~position:!position ~time:0) in
  (* The walk only ever reads one node's row per step, but keeping the
     whole adjacency in delta-sync is still O(Δ) per step — against the
     O(n + m) list-array the loop used to build each step. *)
  let sync = Adj_sync.create g in
  while (not !finished) && !t < cap do
    Adj_sync.ensure sync;
    position := step_walk ~hold rng (Adj_sync.adj sync) !position;
    Dynamic.step g;
    Adj_sync.advance sync;
    incr t;
    finished := stop ~position:!position ~time:!t
  done;
  Obs.Metrics.add c_steps !t;
  if not !finished then Obs.Metrics.incr c_cap_hits;
  if !finished then Some !t else None

let hitting_time ?cap ?hold ~rng ~start ~target g =
  let n = Dynamic.n g in
  if target < 0 || target >= n then invalid_arg "Dyn_walk.hitting_time: target out of range";
  walk_until ?cap ?hold ~rng ~start ~stop:(fun ~position ~time:_ -> position = target) g

let cover_time ?cap ?hold ~rng ~start g =
  let n = Dynamic.n g in
  (* Packed off-heap bitset: n/8 bytes the GC never scans, instead of
     an n-word boolean array. *)
  let visited = Graph.Storage.Bitset.create n in
  let n_visited = ref 0 in
  let note u =
    if not (Graph.Storage.Bitset.unsafe_get visited u) then begin
      Graph.Storage.Bitset.unsafe_set visited u;
      incr n_visited
    end
  in
  walk_until ?cap ?hold ~rng ~start
    ~stop:(fun ~position ~time:_ ->
      note position;
      !n_visited = n)
    g

let averaged ?cap ?hold ?(sched = Exec.sequential) ~rng ~trials build one =
  if trials < 1 then invalid_arg "Dyn_walk: trials must be >= 1";
  let rngs = Array.init trials (Prng.Rng.substream rng) in
  let job i =
    let g = build () in
    let cap_value = match cap with Some c -> c | None -> default_cap (Dynamic.n g) in
    match one ~cap:cap_value ?hold ~rng:rngs.(i) g with
    | Some t -> float_of_int t
    | None -> float_of_int cap_value
  in
  let reduce times = Array.fold_left ( +. ) 0. times /. float_of_int trials in
  Exec.run sched (Exec.plan ~jobs:trials ~job ~reduce)

let mean_hitting_time ?cap ?hold ?sched ~rng ~trials build =
  averaged ?cap ?hold ?sched ~rng ~trials build (fun ~cap ?hold ~rng g ->
      let n = Dynamic.n g in
      let start = Prng.Rng.int rng n and target = Prng.Rng.int rng n in
      hitting_time ~cap ?hold ~rng ~start ~target g)

let mean_cover_time ?cap ?hold ?sched ~rng ~trials build =
  averaged ?cap ?hold ?sched ~rng ~trials build (fun ~cap ?hold ~rng g ->
      cover_time ~cap ?hold ~rng ~start:(Prng.Rng.int rng (Dynamic.n g)) g)
