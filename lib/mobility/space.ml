let clamp l x = if x < 0. then 0. else if x > l then l else x

let dist2 x1 y1 x2 y2 =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  (dx *. dx) +. (dy *. dy)

(* Reusable storage for the counting-sort grid: cell start offsets
   (CSR row pointers), a fill cursor per cell, each point's cell id and
   the points ordered by cell. Grown on demand, never shrunk, so a
   mobility process doing one sweep per step allocates nothing in
   steady state. *)
type scratch = {
  mutable start : int array;   (* ncells + 1 prefix offsets into order *)
  mutable cursor : int array;  (* ncells fill cursors *)
  mutable cell_id : int array; (* cell of point i *)
  mutable order : int array;   (* point ids, grouped by cell, ascending within *)
  mutable xo : float array;    (* coordinates of order.(s), contiguous per cell *)
  mutable yo : float array;
}

let scratch () =
  { start = [||]; cursor = [||]; cell_id = [||]; order = [||]; xo = [||]; yo = [||] }

let ensure a len = if Array.length a < len then Array.make len 0 else a
let ensure_f a len = if Array.length a < len then Array.make len 0. else a

let iter_close_pairs ?scratch:sc ~l ~r ~xs ~ys f =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Space.iter_close_pairs: length mismatch";
  if r < 0. then invalid_arg "Space.iter_close_pairs: negative radius";
  let sc = match sc with Some sc -> sc | None -> scratch () in
  let cell = Float.max r (Float.max (l /. 1024.) 1e-9) in
  let side = max 1 (int_of_float (ceil (l /. cell))) in
  let ncells = side * side in
  sc.start <- ensure sc.start (ncells + 1);
  sc.cursor <- ensure sc.cursor ncells;
  sc.cell_id <- ensure sc.cell_id n;
  sc.order <- ensure sc.order n;
  sc.xo <- ensure_f sc.xo n;
  sc.yo <- ensure_f sc.yo n;
  let start = sc.start and cursor = sc.cursor and cell_id = sc.cell_id and order = sc.order in
  let xo = sc.xo and yo = sc.yo in
  (* Counting sort by cell: count (offset by one) -> prefix sum ->
     ascending fill, so each cell's slice of [order] lists its points in
     increasing id. Coordinates are scattered alongside the ids so the
     candidate loops below stream two contiguous unboxed float arrays
     instead of gathering through [order]. *)
  Array.fill start 0 (ncells + 1) 0;
  for i = 0 to n - 1 do
    let cx = int_of_float (Array.unsafe_get xs i /. cell) in
    let cx = if cx >= side then side - 1 else cx in
    let cy = int_of_float (Array.unsafe_get ys i /. cell) in
    let cy = if cy >= side then side - 1 else cy in
    let c = (cx * side) + cy in
    Array.unsafe_set cell_id i c;
    start.(c + 1) <- start.(c + 1) + 1
  done;
  for c = 1 to ncells do
    start.(c) <- start.(c) + start.(c - 1)
  done;
  Array.blit start 0 cursor 0 ncells;
  for i = 0 to n - 1 do
    let c = Array.unsafe_get cell_id i in
    let slot = Array.unsafe_get cursor c in
    Array.unsafe_set order slot i;
    Array.unsafe_set xo slot (Array.unsafe_get xs i);
    Array.unsafe_set yo slot (Array.unsafe_get ys i);
    Array.unsafe_set cursor c (slot + 1)
  done;
  let r2 = r *. r in
  (* Emit each unordered pair once: within-cell pairs over the flat
     slice, then half the 8-neighbourhood so each cell pair is scanned
     from exactly one side. The outer point's coordinates are hoisted
     out of the inner loop, and the i/j ordering is an explicit branch
     (polymorphic min/max would cost a C call per emitted pair). *)
  for c = 0 to ncells - 1 do
    let s0 = Array.unsafe_get start c and e0 = Array.unsafe_get start (c + 1) in
    if e0 > s0 then begin
      for a = s0 to e0 - 1 do
        let xa = Array.unsafe_get xo a and ya = Array.unsafe_get yo a in
        let i = Array.unsafe_get order a in
        for b = a + 1 to e0 - 1 do
          let dx = xa -. Array.unsafe_get xo b and dy = ya -. Array.unsafe_get yo b in
          (* within a cell the slice is ascending, so i < j *)
          if (dx *. dx) +. (dy *. dy) <= r2 then f i (Array.unsafe_get order b)
        done
      done;
      let cx = c / side and cy = c mod side in
      let cross dx dy =
        let cx' = cx + dx and cy' = cy + dy in
        if cx' >= 0 && cx' < side && cy' >= 0 && cy' < side then begin
          let c' = (cx' * side) + cy' in
          let s1 = Array.unsafe_get start c' and e1 = Array.unsafe_get start (c' + 1) in
          for a = s0 to e0 - 1 do
            let xa = Array.unsafe_get xo a and ya = Array.unsafe_get yo a in
            let i = Array.unsafe_get order a in
            for b = s1 to e1 - 1 do
              let dx = xa -. Array.unsafe_get xo b and dy = ya -. Array.unsafe_get yo b in
              if (dx *. dx) +. (dy *. dy) <= r2 then begin
                let j = Array.unsafe_get order b in
                if i < j then f i j else f j i
              end
            done
          done
        end
      in
      cross 1 (-1);
      cross 1 0;
      cross 1 1;
      cross 0 1
    end
  done

let cell_index ~l ~bins x y =
  let at v =
    let i = int_of_float (float_of_int bins *. v /. l) in
    if i < 0 then 0 else if i >= bins then bins - 1 else i
  in
  (at x * bins) + at y
