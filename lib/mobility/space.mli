(** Geometry of the mobility region: an L×L square with a uniform-cell
    spatial index for enumerating all node pairs within the
    transmission radius in expected O(n + #pairs) time. *)

val clamp : float -> float -> float
(** [clamp l x] clips [x] into [\[0, l\]]. *)

val dist2 : float -> float -> float -> float -> float
(** Squared Euclidean distance between (x1, y1) and (x2, y2). *)

type scratch
(** Reusable storage for the counting-sort grid (CSR cell offsets plus
    a point ordering). One sweep per step with a persistent scratch
    allocates nothing in steady state. A scratch must not be shared
    across domains. *)

val scratch : unit -> scratch
(** A fresh, empty scratch; grown on demand by {!iter_close_pairs}. *)

val iter_close_pairs :
  ?scratch:scratch ->
  l:float ->
  r:float ->
  xs:float array ->
  ys:float array ->
  (int -> int -> unit) ->
  unit
(** Call [f i j] (with [i < j]) for every pair of points at Euclidean
    distance at most [r]. Positions must lie in [\[0, l\]²]. Correct for
    any [r >= 0] (cells are at least [r] wide, neighbours ±1 cell are
    scanned, and the exact distance test filters candidates). The grid
    is a counting-sort CSR index: cells are scanned in row-major order,
    within-cell pairs in ascending id order, then the four
    half-neighbourhood cells — a deterministic enumeration order pinned
    by the golden tests. Without [?scratch] a temporary one is
    allocated per call. *)

val cell_index : l:float -> bins:int -> float -> float -> int
(** Index of the [bins]×[bins] coarse cell containing a point; used for
    occupancy histograms. Row-major, in [\[0, bins²)]. *)
