type init = Uniform | Corner | Steady

type region = Square | Disk

let region_contains region ~l x y =
  match region with
  | Square -> x >= 0. && x <= l && y >= 0. && y <= l
  | Disk ->
      let c = l /. 2. in
      Space.dist2 x y c c <= c *. c

let create ?(init = Uniform) ?(region = Square) ?(pause = 0) ~n ~l ~r ~v_min ~v_max () =
  if not (v_min > 0. && v_min <= v_max) then
    invalid_arg "Waypoint.create: need 0 < v_min <= v_max";
  if pause < 0 then invalid_arg "Waypoint.create: pause must be >= 0";
  let xs = Array.make n 0. and ys = Array.make n 0. in
  let dest_x = Array.make n 0. and dest_y = Array.make n 0. in
  let speed = Array.make n v_min in
  let resting = Array.make n 0 in
  let sample_point rng =
    match region with
    | Square -> (Prng.Rng.float rng l, Prng.Rng.float rng l)
    | Disk ->
        (* Rejection from the bounding square; acceptance pi/4. *)
        let rec draw () =
          let x = Prng.Rng.float rng l and y = Prng.Rng.float rng l in
          if region_contains Disk ~l x y then (x, y) else draw ()
        in
        draw ()
  in
  let corner_point = match region with Square -> (0., 0.) | Disk -> (0., l /. 2.) in
  let new_trip rng i =
    let x, y = sample_point rng in
    dest_x.(i) <- x;
    dest_y.(i) <- y;
    speed.(i) <- Prng.Rng.float_range rng v_min v_max
  in
  (* Steady-state sampling: a trip observed "at a random instant" is
     length-biased (probability ∝ trip duration = length / speed), so
     draw endpoints by rejection against |P1P2|/diag and the speed by
     inverting the 1/v density: v = v_min (v_max/v_min)^U. *)
  let steady_trip rng i =
    let diag = l *. sqrt 2. in
    let rec draw () =
      let x1, y1 = sample_point rng in
      let x2, y2 = sample_point rng in
      let d = sqrt (Space.dist2 x1 y1 x2 y2) in
      if Prng.Rng.unit_float rng < d /. diag then (x1, y1, x2, y2) else draw ()
    in
    let x1, y1, x2, y2 = draw () in
    let u = Prng.Rng.unit_float rng in
    xs.(i) <- x1 +. (u *. (x2 -. x1));
    ys.(i) <- y1 +. (u *. (y2 -. y1));
    dest_x.(i) <- x2;
    dest_y.(i) <- y2;
    speed.(i) <-
      (if v_max = v_min then v_min
       else v_min *. ((v_max /. v_min) ** Prng.Rng.unit_float rng))
  in
  let reset_node rng i =
    resting.(i) <- 0;
    match init with
    | Corner ->
        let x, y = corner_point in
        xs.(i) <- x;
        ys.(i) <- y;
        new_trip rng i
    | Uniform ->
        let x, y = sample_point rng in
        xs.(i) <- x;
        ys.(i) <- y;
        new_trip rng i
    | Steady -> steady_trip rng i
  in
  let move_node rng i =
    if resting.(i) > 0 then resting.(i) <- resting.(i) - 1
    else begin
      let dx = dest_x.(i) -. xs.(i) and dy = dest_y.(i) -. ys.(i) in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      if dist <= speed.(i) then begin
        xs.(i) <- dest_x.(i);
        ys.(i) <- dest_y.(i);
        if pause > 0 then resting.(i) <- Prng.Rng.int_incl rng 0 pause;
        new_trip rng i
      end
      else begin
        let scale = speed.(i) /. dist in
        xs.(i) <- xs.(i) +. (dx *. scale);
        ys.(i) <- ys.(i) +. (dy *. scale)
      end
    end
  in
  Geo.make ~n ~l ~r ~xs ~ys ~reset_node ~move_node

let dynamic ?init ?region ?pause ~n ~l ~r ~v_min ~v_max () =
  Geo.dynamic (create ?init ?region ?pause ~n ~l ~r ~v_min ~v_max ())

let marginal_density ~l x =
  if x < 0. || x > l then 0. else 6. *. x *. (l -. x) /. (l ** 3.)

let product_density ~l x y = marginal_density ~l x *. marginal_density ~l y

let mixing_time_formula ~l ~v_max = l /. v_max

(* Distance from (x, y) to the region boundary along direction theta. *)
let boundary_distance region ~l x y theta =
  let c = cos theta and s = sin theta in
  match region with
  | Square ->
      let along delta rate =
        if rate > 1e-12 then delta /. rate
        else if rate < -1e-12 then (delta -. l) /. rate
        else infinity
      in
      (* Positive travel distances to the x = l / x = 0 and y = l / y = 0
         walls, whichever the ray hits. *)
      Float.min (along (l -. x) c) (along (l -. y) s)
  | Disk ->
      let r = l /. 2. in
      let px = x -. r and py = y -. r in
      let b = (px *. c) +. (py *. s) in
      let disc = (b *. b) -. ((px *. px) +. (py *. py) -. (r *. r)) in
      if disc <= 0. then 0. else -.b +. sqrt disc

let unnormalised_density ~angular_steps ~region ~l x y =
  if not (region_contains region ~l x y) then 0.
  else begin
    let dt = Float.pi /. float_of_int angular_steps in
    let acc = ref 0. in
    for k = 0 to angular_steps - 1 do
      let theta = (float_of_int k +. 0.5) *. dt in
      let a1 = boundary_distance region ~l x y theta in
      let a2 = boundary_distance region ~l x y (theta +. Float.pi) in
      acc := !acc +. (a1 *. a2 *. (a1 +. a2) *. dt)
    done;
    !acc
  end

(* Normalisation constants are memoised per (region, l, steps): the 2-D
   quadrature is ~4k density evaluations. The cache is module-level
   shared state, so it is mutex-guarded: experiments may evaluate
   densities concurrently from different domains (Exec pool). A missed
   hit recomputes a pure value, so holding the lock only around table
   access (not the quadrature) is enough. *)
let normalisation_cache : (bool * float * int, float) Hashtbl.t = Hashtbl.create 8
let normalisation_lock = Mutex.create ()

let cache_find key =
  Mutex.lock normalisation_lock;
  let found = Hashtbl.find_opt normalisation_cache key in
  Mutex.unlock normalisation_lock;
  found

let cache_store key z =
  Mutex.lock normalisation_lock;
  Hashtbl.replace normalisation_cache key z;
  Mutex.unlock normalisation_lock

let normalisation ~angular_steps ~region ~l =
  let key = ((match region with Square -> true | Disk -> false), l, angular_steps) in
  match cache_find key with
  | Some z -> z
  | None ->
      let grid = 64 in
      let cell = l /. float_of_int grid in
      let total = ref 0. in
      for ix = 0 to grid - 1 do
        for iy = 0 to grid - 1 do
          let x = (float_of_int ix +. 0.5) *. cell in
          let y = (float_of_int iy +. 0.5) *. cell in
          total := !total +. (unnormalised_density ~angular_steps ~region ~l x y *. cell *. cell)
        done
      done;
      cache_store key !total;
      !total

let exact_density ?(angular_steps = 180) ?(region = Square) ~l x y =
  if angular_steps < 8 then invalid_arg "Waypoint.exact_density: angular_steps too small";
  let z = normalisation ~angular_steps ~region ~l in
  unnormalised_density ~angular_steps ~region ~l x y /. z
