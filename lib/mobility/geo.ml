type t = {
  n : int;
  l : float;
  r : float;
  xs : float array;
  ys : float array;
  reset_node : Prng.Rng.t -> int -> unit;
  move_node : Prng.Rng.t -> int -> unit;
  mutable node_rngs : Prng.Rng.t array;
  edges : Graph.Edge_buffer.t;
  grid : Space.scratch;
  mutable edges_valid : bool;
}

let make ~n ~l ~r ~xs ~ys ~reset_node ~move_node =
  if n < 1 then invalid_arg "Geo.make: n must be >= 1";
  if Array.length xs <> n || Array.length ys <> n then
    invalid_arg "Geo.make: position array length mismatch";
  if l <= 0. || r < 0. then invalid_arg "Geo.make: bad dimensions";
  {
    n;
    l;
    r;
    xs;
    ys;
    reset_node;
    move_node;
    node_rngs = Array.init n (fun i -> Prng.Rng.of_seed i);
    edges = Graph.Edge_buffer.create ~capacity:(4 * n) ();
    grid = Space.scratch ();
    edges_valid = false;
  }

let n t = t.n

let l t = t.l

let r t = t.r

let position t i = (t.xs.(i), t.ys.(i))

let positions t = Array.init t.n (fun i -> (t.xs.(i), t.ys.(i)))

let reset t rng =
  t.node_rngs <- Array.init t.n (fun i -> Prng.Rng.substream rng i);
  for i = 0 to t.n - 1 do
    t.reset_node t.node_rngs.(i) i
  done;
  t.edges_valid <- false

let step t =
  for i = 0 to t.n - 1 do
    t.move_node t.node_rngs.(i) i
  done;
  t.edges_valid <- false

let refresh_edges t =
  if not t.edges_valid then begin
    Graph.Edge_buffer.clear t.edges;
    (* Enumeration order feeds RNG-coupled consumers (Push coins, edge
       filters), so it is the grid's deterministic sweep order, pinned
       by the golden tests regenerated with the CSR grid. *)
    Space.iter_close_pairs ~scratch:t.grid ~l:t.l ~r:t.r ~xs:t.xs ~ys:t.ys (fun i j ->
        Graph.Edge_buffer.push t.edges i j);
    t.edges_valid <- true
  end

let dynamic t =
  Core.Dynamic.make ~n:t.n
    ~reset:(fun rng -> reset t rng)
    ~step:(fun () -> step t)
    ~iter_edges:(fun f ->
      refresh_edges t;
      Graph.Edge_buffer.iter t.edges f)
    ~fill_edges:(fun buf ->
      refresh_edges t;
      Graph.Edge_buffer.append t.edges ~into:buf)
    ()
