open Helpers

(* Trial-level sharding: the shard geometry and result/payload codecs
   of Simulate.Trial_plan / Simulate.Registry, and end-to-end byte
   identity of a single planned experiment sharded across a real
   worker fleet (--procs) versus the sequential scheduler. *)

module TP = Simulate.Trial_plan
module B = Exec.Spec.Buf

let worker_command = [| "../bin/dyngraph_cli.exe"; "worker" |]

let with_fleet f =
  Exec.set_worker_command (Some worker_command);
  Fun.protect ~finally:(fun () -> Exec.set_worker_command None) f

(* --- shard geometry --- *)

(* A synthetic plan whose trial i of bag b deterministically returns
   b * 1000 + i, so merged results reveal exactly which (bag, trial)
   coordinates ran. *)
let synthetic_plan bag_sizes =
  let rng = rng_of_seed 99 in
  let bags =
    Array.of_list
      (List.mapi
         (fun b trials ->
           {
             TP.label = Printf.sprintf "bag%d" b;
             trials;
             rng = Prng.Rng.split rng;
             run_trial = (fun _ -> float_of_int ((b * 1000) + trials));
           })
         bag_sizes)
  in
  { TP.bags; render = (fun _ -> []) }

let test_shard_geometry () =
  let p = synthetic_plan [ 5; 20; 8; 1 ] in
  let shards = Array.to_list (TP.shards p) in
  let expected =
    [
      (* bag 0: 5 trials, one shard *)
      { TP.bag = 0; lo = 0; hi = 5 };
      (* bag 1: 20 trials -> 8 + 8 + 4, never crossing the bag *)
      { TP.bag = 1; lo = 0; hi = 8 };
      { TP.bag = 1; lo = 8; hi = 16 };
      { TP.bag = 1; lo = 16; hi = 20 };
      (* bag 2: exactly max_shard_trials *)
      { TP.bag = 2; lo = 0; hi = 8 };
      (* bag 3: a single trial *)
      { TP.bag = 3; lo = 0; hi = 1 };
    ]
  in
  Alcotest.(check int) "shard count" (List.length expected) (List.length shards);
  List.iter2
    (fun e s ->
      Alcotest.(check (triple int int int))
        "shard coordinates" (e.TP.bag, e.lo, e.hi)
        (s.TP.bag, s.lo, s.hi))
    expected shards;
  List.iter
    (fun s -> check_true "shard within bound" (s.TP.hi - s.lo <= TP.max_shard_trials))
    shards

let test_shard_geometry_invalid () =
  let p = synthetic_plan [ 3; 0 ] in
  check_true "empty bag rejected"
    (try
       ignore (TP.shards p);
       false
     with Invalid_argument _ -> true)

(* Sharded execution must cover each bag's trial indices exactly once,
   in order: concatenating run_shard over the shard list equals running
   the bag's trials directly. *)
let test_shard_covers_bag () =
  let rng = rng_of_seed 4 in
  let bag =
    {
      TP.label = "draws";
      trials = 19;
      rng;
      run_trial = (fun trng -> Prng.Rng.float trng 1.0);
    }
  in
  let p = { TP.bags = [| bag |]; render = (fun _ -> []) } in
  let direct =
    Array.init bag.TP.trials (fun i -> bag.TP.run_trial (Prng.Rng.substream bag.TP.rng i))
  in
  let merged =
    Array.concat (List.map (TP.run_shard p) (Array.to_list (TP.shards p)))
  in
  Alcotest.(check int) "length" (Array.length direct) (Array.length merged);
  Array.iteri (fun i v -> check_close "trial value" v merged.(i)) direct

(* --- result codec --- *)

let test_result_roundtrip () =
  let cases =
    [ [||]; [| 0. |]; [| 1.5; -3.25e10; infinity; neg_infinity; 1e-300; -0. |] ]
  in
  List.iter
    (fun a ->
      let back = TP.decode_result (TP.encode_result a) in
      Alcotest.(check int) "length" (Array.length a) (Array.length back);
      Array.iteri
        (fun i v ->
          Alcotest.(check int64) "float bits" (Int64.bits_of_float v)
            (Int64.bits_of_float back.(i)))
        a)
    cases

let result_roundtrip_prop =
  qtest ~count:200 "result codec round-trip" float_array_gen (fun a ->
      let back = TP.decode_result (TP.encode_result a) in
      Array.length back = Array.length a
      && Array.for_all2
           (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
           a back)

let rejects f =
  try
    ignore (f ());
    false
  with B.Corrupt _ -> true

let test_result_corrupt () =
  let raw = TP.encode_result [| 1.0; 2.0; 3.0 |] in
  check_true "truncated frame rejected"
    (rejects (fun () -> TP.decode_result (String.sub raw 0 (String.length raw - 3))));
  check_true "trailing bytes rejected" (rejects (fun () -> TP.decode_result (raw ^ "x")));
  (* A count that promises more floats than the frame carries. *)
  let b = Buffer.create 16 in
  B.add_int b 1000;
  B.add_float b 1.0;
  check_true "oversized count rejected"
    (rejects (fun () -> TP.decode_result (Buffer.contents b)))

(* --- trial payload codec --- *)

let test_payload_roundtrip () =
  let cases =
    [
      ("E6", (42L, 7L), Simulate.Runner.Quick, 0);
      ("E1", (-1L, Int64.min_int), Simulate.Runner.Full, 17);
      ("E11", (Int64.max_int, 1L), Simulate.Runner.Large, 3);
    ]
  in
  List.iter
    (fun (id, bits, scale, shard) ->
      let payload = Simulate.Registry.encode_trial_payload ~id ~bits ~scale ~shard in
      let id', bits', scale', shard' = Simulate.Registry.decode_trial_payload payload in
      Alcotest.(check string) "id" id id';
      Alcotest.(check (pair int64 int64)) "rng bits" bits bits';
      check_true "scale" (scale = scale');
      Alcotest.(check int) "shard" shard shard')
    cases

let test_payload_corrupt () =
  let payload =
    Simulate.Registry.encode_trial_payload ~id:"E6" ~bits:(42L, 7L)
      ~scale:Simulate.Runner.Quick ~shard:2
  in
  let decode s = fun () -> Simulate.Registry.decode_trial_payload s in
  check_true "truncated payload rejected"
    (rejects (decode (String.sub payload 0 (String.length payload - 1))));
  check_true "trailing bytes rejected" (rejects (decode (payload ^ "z")));
  check_true "empty payload rejected" (rejects (decode ""));
  check_true "wrong tag rejected" (rejects (decode ("X" ^ String.sub payload 1 (String.length payload - 1))))

(* --- worker-side dispatch --- *)

(* dispatch_trial must rebuild the identical plan from (id, bits,
   scale) and return exactly the bytes the parent-side run_shard would
   encode. *)
let test_dispatch_matches_local () =
  let e = Option.get (Simulate.Registry.find "E6") in
  let make_plan = Option.get e.Simulate.Registry.plan in
  let rng = rng_of_seed 42 in
  let bits = Prng.Rng.state_bits rng in
  let p = make_plan ~rng ~scale:Simulate.Runner.Quick in
  let shards = TP.shards p in
  check_true "E6 quick has several shards" (Array.length shards >= 4);
  Array.iteri
    (fun shard s ->
      let payload =
        Simulate.Registry.encode_trial_payload ~id:"E6" ~bits ~scale:Simulate.Runner.Quick
          ~shard
      in
      let spec_id = Printf.sprintf "E6.t%d" shard in
      Alcotest.(check string)
        (Printf.sprintf "shard %d bytes" shard)
        (TP.encode_result (TP.run_shard p s))
        (Simulate.Registry.dispatch_trial ~spec_id ~payload))
    shards

let test_dispatch_rejects () =
  let payload =
    Simulate.Registry.encode_trial_payload ~id:"E6" ~bits:(Prng.Rng.state_bits (rng_of_seed 1))
      ~scale:Simulate.Runner.Quick ~shard:0
  in
  let fails spec_id payload =
    try
      ignore (Simulate.Registry.dispatch_trial ~spec_id ~payload);
      false
    with Failure _ -> true
  in
  check_true "mismatched spec id rejected" (fails "E6.t5" payload);
  let out_of_range =
    Simulate.Registry.encode_trial_payload ~id:"E6" ~bits:(Prng.Rng.state_bits (rng_of_seed 1))
      ~scale:Simulate.Runner.Quick ~shard:10_000
  in
  check_true "out-of-range shard rejected" (fails "E6.t10000" out_of_range)

(* --- end-to-end: single planned experiment across a real fleet --- *)

(* The acceptance criterion of DESIGN.md §13: a planned experiment's
   rendered bytes are identical at --procs 1 and --procs 4 (and match
   the sequential scheduler), with no degradation event, because its
   trial bag genuinely shards over the worker fleet. *)
let single_bytes ~sched ~seed id =
  let e = Option.get (Simulate.Registry.find id) in
  let output, _, _, _ =
    Simulate.Registry.single_outcome ~sched ~seed ~scale:Simulate.Runner.Quick e
  in
  output

let test_single_experiment_identity id =
  with_fleet @@ fun () ->
  List.iter
    (fun seed ->
      let seq = single_bytes ~sched:Exec.sequential ~seed id in
      check_true "rendered something" (String.length seq > 200);
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: procs 1 = sequential" id seed)
        seq
        (single_bytes ~sched:(Exec.procs 1) ~seed id);
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: procs 4 = sequential" id seed)
        seq
        (single_bytes ~sched:(Exec.procs 4) ~seed id))
    [ 42; 7 ]

let test_single_experiment_not_degraded () =
  with_fleet @@ fun () ->
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    (fun () ->
      ignore (single_bytes ~sched:(Exec.procs 4) ~seed:42 "E6");
      Alcotest.(check int) "exec.procs_degraded stays zero" 0
        (Obs.Metrics.value (Obs.Metrics.counter "exec.procs_degraded")))

let suites =
  [
    ( "trial_plan.shards",
      [
        Alcotest.test_case "geometry" `Quick test_shard_geometry;
        Alcotest.test_case "empty bag rejected" `Quick test_shard_geometry_invalid;
        Alcotest.test_case "shards cover each bag exactly" `Quick test_shard_covers_bag;
      ] );
    ( "trial_plan.codec",
      [
        Alcotest.test_case "result round-trip" `Quick test_result_roundtrip;
        result_roundtrip_prop;
        Alcotest.test_case "result corruption rejected" `Quick test_result_corrupt;
        Alcotest.test_case "payload round-trip" `Quick test_payload_roundtrip;
        Alcotest.test_case "payload corruption rejected" `Quick test_payload_corrupt;
      ] );
    ( "trial_plan.dispatch",
      [
        Alcotest.test_case "worker dispatch = local run" `Quick test_dispatch_matches_local;
        Alcotest.test_case "bad spec id / shard rejected" `Quick test_dispatch_rejects;
      ] );
    ( "trial_plan.fleet",
      [
        Alcotest.test_case "E6 byte identity, procs 1/4, seeds 42/7" `Slow (fun () ->
            test_single_experiment_identity "E6");
        Alcotest.test_case "E1 byte identity, procs 1/4, seeds 42/7" `Slow (fun () ->
            test_single_experiment_identity "E1");
        Alcotest.test_case "no degradation on the planned path" `Slow
          test_single_experiment_not_degraded;
      ] );
  ]
