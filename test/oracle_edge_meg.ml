(* Test-only reference oracle: the pre-sparse-set classic edge-MEG,
   verbatim from lib/edge_meg/classic.ml before PR 3 — present edges in
   a Hashtbl, deaths as one Bernoulli per present edge. The rewrite
   changed the RNG draw sequence, so the two implementations cannot be
   compared trajectory for trajectory; test_edge_meg.ml instead checks
   statistical equivalence (stationary edge counts, flooding means
   within confidence intervals) against this oracle. *)

type state = { mutable rng : Prng.Rng.t; present : (int, unit) Hashtbl.t }

let sample_pairs_bernoulli rng n prob f =
  if prob > 0. then begin
    let total = Graph.Pairs.total n in
    let idx = ref (Prng.Rng.geometric rng prob) in
    while !idx < total do
      f !idx;
      idx := !idx + 1 + Prng.Rng.geometric rng prob
    done
  end

let make ~n ~p ~q () =
  let chain = Markov.Two_state.make ~p ~q in
  let st = { rng = Prng.Rng.of_seed 0; present = Hashtbl.create 1024 } in
  let reset rng =
    st.rng <- rng;
    Hashtbl.reset st.present;
    let alpha = Markov.Two_state.stationary_on chain in
    if alpha >= 1. then
      for idx = 0 to Graph.Pairs.total n - 1 do
        Hashtbl.replace st.present idx ()
      done
    else sample_pairs_bernoulli st.rng n alpha (fun idx -> Hashtbl.replace st.present idx ())
  in
  let step () =
    let births = ref [] in
    sample_pairs_bernoulli st.rng n p (fun idx ->
        if not (Hashtbl.mem st.present idx) then births := idx :: !births);
    if q > 0. then begin
      let deaths = ref [] in
      Hashtbl.iter
        (fun idx () -> if Prng.Rng.bernoulli st.rng q then deaths := idx :: !deaths)
        st.present;
      List.iter (Hashtbl.remove st.present) !deaths
    end;
    List.iter (fun idx -> Hashtbl.replace st.present idx ()) !births
  in
  let iter_edges f =
    Hashtbl.iter
      (fun idx () ->
        let u, v = Graph.Pairs.decode n idx in
        f u v)
      st.present
  in
  Core.Dynamic.make ~n ~reset ~step ~iter_edges ()
