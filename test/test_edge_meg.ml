open Helpers

(* --- Classic --- *)

let test_classic_stationary_density () =
  let n = 64 and p = 0.2 and q = 0.2 in
  let dyn = Edge_meg.Classic.make ~n ~p ~q () in
  let s = Stats.Summary.create () in
  for i = 0 to 19 do
    Core.Dynamic.reset dyn (Prng.Rng.substream (rng_of_seed 1) i);
    Stats.Summary.add s (float_of_int (Core.Dynamic.edge_count dyn))
  done;
  check_close_rel ~rel:0.1 "stationary init density"
    (Edge_meg.Classic.expected_stationary_edges ~n ~p ~q)
    (Stats.Summary.mean s)

let test_classic_density_preserved_by_steps () =
  let n = 64 and p = 0.1 and q = 0.3 in
  let dyn = Edge_meg.Classic.make ~n ~p ~q () in
  let s = Stats.Summary.create () in
  Core.Dynamic.reset dyn (rng_of_seed 2);
  for _ = 1 to 300 do
    Core.Dynamic.step dyn;
    Stats.Summary.add s (float_of_int (Core.Dynamic.edge_count dyn))
  done;
  check_close_rel ~rel:0.1 "density stable under stepping"
    (Edge_meg.Classic.expected_stationary_edges ~n ~p ~q)
    (Stats.Summary.mean s)

let test_classic_empty_init () =
  let dyn = Edge_meg.Classic.make ~init:Empty ~n:20 ~p:0.1 ~q:0.1 () in
  Core.Dynamic.reset dyn (rng_of_seed 3);
  Alcotest.(check int) "empty start" 0 (Core.Dynamic.edge_count dyn)

let test_classic_full_init () =
  let dyn = Edge_meg.Classic.make ~init:Full ~n:20 ~p:0.1 ~q:0.1 () in
  Core.Dynamic.reset dyn (rng_of_seed 4);
  Alcotest.(check int) "full start" 190 (Core.Dynamic.edge_count dyn)

let test_classic_q0_monotone_growth () =
  let dyn = Edge_meg.Classic.make ~init:Empty ~n:24 ~p:0.05 ~q:0. () in
  Core.Dynamic.reset dyn (rng_of_seed 5);
  let prev = ref 0 in
  for _ = 1 to 30 do
    Core.Dynamic.step dyn;
    let m = Core.Dynamic.edge_count dyn in
    check_true "q=0 never loses edges" (m >= !prev);
    prev := m
  done;
  check_true "some edges appeared" (!prev > 0)

let test_classic_p0_monotone_decay () =
  let dyn = Edge_meg.Classic.make ~init:Full ~n:24 ~p:0. ~q:0.3 () in
  Core.Dynamic.reset dyn (rng_of_seed 6);
  let prev = ref 276 in
  for _ = 1 to 30 do
    Core.Dynamic.step dyn;
    let m = Core.Dynamic.edge_count dyn in
    check_true "p=0 never gains edges" (m <= !prev);
    prev := m
  done;
  Alcotest.(check int) "all edges die eventually" 0 !prev

let test_classic_deterministic_per_seed () =
  let mk () = Edge_meg.Classic.make ~n:32 ~p:0.1 ~q:0.2 () in
  let run dyn =
    Core.Dynamic.reset dyn (rng_of_seed 7);
    for _ = 1 to 10 do
      Core.Dynamic.step dyn
    done;
    Core.Dynamic.snapshot_edges dyn
  in
  Alcotest.(check (list (pair int int))) "bit-reproducible" (run (mk ())) (run (mk ()))

let q_classic_edges_valid =
  qtest ~count:50 "emitted edges are valid distinct pairs"
    QCheck2.Gen.(pair seed_gen (int_range 2 40))
    (fun (seed, n) ->
      let dyn = Edge_meg.Classic.make ~n ~p:0.3 ~q:0.3 () in
      Core.Dynamic.reset dyn (Prng.Rng.of_seed seed);
      Core.Dynamic.step dyn;
      let edges = Core.Dynamic.snapshot_edges dyn in
      List.for_all (fun (u, v) -> u >= 0 && u < v && v < n) edges
      && List.length (List.sort_uniq compare edges) = List.length edges)

let test_classic_validation () =
  check_true "p out of range"
    (try
       ignore (Edge_meg.Classic.make ~n:4 ~p:1.5 ~q:0.1 ());
       false
     with Invalid_argument _ -> true)

(* Regression: Full init and Stationary init with alpha >= 1 (q = 0)
   used to loop Hashtbl.replace over all Pairs.total n entries; both now
   route through the sparse set's bulk fill. The observable contract at
   small n: the first snapshot is the complete graph. *)
let test_classic_saturated_inits_bulk_fill () =
  let n = 20 in
  let total = Graph.Pairs.total n in
  let full = Edge_meg.Classic.make ~init:Full ~n ~p:0.1 ~q:0.1 () in
  Core.Dynamic.reset full (rng_of_seed 21);
  Alcotest.(check int) "Full starts complete" total (Core.Dynamic.edge_count full);
  let saturated = Edge_meg.Classic.make ~n ~p:0.3 ~q:0. () in
  Core.Dynamic.reset saturated (rng_of_seed 22);
  Alcotest.(check int) "Stationary with alpha >= 1 starts complete" total
    (Core.Dynamic.edge_count saturated);
  (* q = 0: saturation is absorbing, and the step must draw nothing
     that perturbs determinism — the snapshot stays complete. *)
  Core.Dynamic.step saturated;
  Alcotest.(check int) "still complete after a step" total (Core.Dynamic.edge_count saturated)

(* --- statistical equivalence against the pre-rewrite oracle --- *)

(* The sparse-set rewrite changed the RNG draw sequence (geometric death
   skips instead of per-edge Bernoullis), so trajectories differ by
   design; the process law must not. Compare Monte-Carlo estimates from
   the new implementation and the Hashtbl oracle within a 3-sigma
   confidence band at fixed seeds. *)

let check_within_ci name s_new s_old =
  let k_new = float_of_int (Stats.Summary.count s_new)
  and k_old = float_of_int (Stats.Summary.count s_old) in
  let var s = Stats.Summary.stddev s ** 2. in
  let se = sqrt ((var s_new /. k_new) +. (var s_old /. k_old)) in
  let diff = abs_float (Stats.Summary.mean s_new -. Stats.Summary.mean s_old) in
  if diff > (3. *. se) +. 1e-9 then
    Alcotest.failf "%s: |%.4g - %.4g| = %.4g exceeds 3 se = %.4g" name
      (Stats.Summary.mean s_new) (Stats.Summary.mean s_old) diff (3. *. se)

let test_classic_oracle_stationary_edges () =
  let n = 48 and p = 3. /. 48. and q = 0.4 in
  let sample build seed =
    let s = Stats.Summary.create () in
    let dyn = build () in
    for i = 0 to 39 do
      Core.Dynamic.reset dyn (Prng.Rng.substream (rng_of_seed seed) i);
      (* A few steps leave the exactly-sampled stationary init and
         exercise the birth/death scans. *)
      for _ = 1 to 5 do
        Core.Dynamic.step dyn
      done;
      Stats.Summary.add s (float_of_int (Core.Dynamic.edge_count dyn))
    done;
    s
  in
  check_within_ci "stationary edge count, new vs oracle"
    (sample (fun () -> Edge_meg.Classic.make ~n ~p ~q ()) 31)
    (sample (fun () -> Oracle_edge_meg.make ~n ~p ~q ()) 32)

let test_classic_oracle_flooding_mean () =
  let n = 32 and p = 0.15 and q = 0.3 in
  let mean build seed =
    Core.Flooding.mean_time ~rng:(rng_of_seed seed) ~trials:60 build
  in
  check_within_ci "flooding mean, new vs oracle"
    (mean (fun () -> Edge_meg.Classic.make ~n ~p ~q ()) 33)
    (mean (fun () -> Oracle_edge_meg.make ~n ~p ~q ()) 34)

(* --- General --- *)

let on_chain move =
  Markov.Chain.of_rows
    (Array.init 4 (fun s -> [| (s, 1. -. move); ((s + 1) mod 4, move) |]))

let test_general_alpha () =
  let chain = on_chain 0.3 in
  let chi s = s >= 2 in
  check_close ~eps:1e-6 "alpha = pi(on states)" 0.5
    (Edge_meg.General.stationary_alpha ~chain ~chi)

let test_general_matches_two_state () =
  (* A 2-state hidden chain with chi = identity must reproduce the
     classic model's stationary density. *)
  let p = 0.2 and q = 0.4 in
  let chain = Markov.Two_state.chain (Markov.Two_state.make ~p ~q) in
  let chi s = s = 1 in
  check_close ~eps:1e-9 "alpha = p/(p+q)" (p /. (p +. q))
    (Edge_meg.General.stationary_alpha ~chain ~chi)

let test_general_stationary_density () =
  let n = 32 in
  let chain = on_chain 0.3 in
  let chi s = s >= 2 in
  let dyn = Edge_meg.General.make ~n ~chain ~chi () in
  let s = Stats.Summary.create () in
  for i = 0 to 19 do
    Core.Dynamic.reset dyn (Prng.Rng.substream (rng_of_seed 8) i);
    Stats.Summary.add s (float_of_int (Core.Dynamic.edge_count dyn))
  done;
  let expected = 0.5 *. float_of_int (Graph.Pairs.total n) in
  check_close_rel ~rel:0.1 "stationary density" expected (Stats.Summary.mean s)

let test_general_state_init () =
  let chain = on_chain 0.5 in
  let chi s = s >= 2 in
  let dyn = Edge_meg.General.make ~init:(`State 0) ~n:10 ~chain ~chi () in
  Core.Dynamic.reset dyn (rng_of_seed 9);
  Alcotest.(check int) "state 0 is off" 0 (Core.Dynamic.edge_count dyn);
  let dyn_on = Edge_meg.General.make ~init:(`State 2) ~n:10 ~chain ~chi () in
  Core.Dynamic.reset dyn_on (rng_of_seed 9);
  Alcotest.(check int) "state 2 is on" 45 (Core.Dynamic.edge_count dyn_on)

let test_general_dwell_correlation () =
  (* With a slow 4-state cycle, an on edge tends to stay on: measure
     one-step persistence and compare with the 2-state chain of equal
     stationary density, which has persistence 1 - q. *)
  let chain = on_chain 0.05 in
  let chi s = s >= 2 in
  let dyn = Edge_meg.General.make ~n:24 ~chain ~chi () in
  Core.Dynamic.reset dyn (rng_of_seed 10);
  let persist = ref 0 and on_count = ref 0 in
  let prev = ref [] in
  for _ = 1 to 200 do
    let now = Core.Dynamic.snapshot_edges dyn in
    List.iter
      (fun e ->
        incr on_count;
        if List.mem e now then incr persist)
      !prev;
    prev := now;
    Core.Dynamic.step dyn
  done;
  let persistence = float_of_int !persist /. float_of_int !on_count in
  check_true "slow chain gives sticky edges (persistence > 0.9)" (persistence > 0.9)

let test_general_bound_positive () =
  let chain = on_chain 0.25 in
  let chi s = s >= 2 in
  let b = Edge_meg.General.bound ~chain ~chi ~n:64 in
  check_true "bound finite positive" (Float.is_finite b && b > 0.)

let test_general_state_validation () =
  let chain = on_chain 0.25 in
  let dyn = Edge_meg.General.make ~init:(`State 9) ~n:5 ~chain ~chi:(fun _ -> true) () in
  check_true "bad initial state raises"
    (try
       Core.Dynamic.reset dyn (rng_of_seed 11);
       false
     with Invalid_argument _ -> true)

(* --- Opportunistic --- *)

let opp_params =
  {
    Edge_meg.Opportunistic.off_short = 2.;
    off_long = 20.;
    off_mix = 0.7;
    on_short = 1.;
    on_long = 5.;
    on_mix = 0.5;
  }

let test_opportunistic_alpha_consistency () =
  (* Closed-form renewal alpha must agree with the generic chain
     computation. *)
  let closed = Edge_meg.Opportunistic.stationary_alpha opp_params in
  let generic =
    Edge_meg.General.stationary_alpha
      ~chain:(Edge_meg.Opportunistic.chain opp_params)
      ~chi:Edge_meg.Opportunistic.chi
  in
  check_close ~eps:1e-9 "renewal = chain stationary" closed generic;
  let expected = 3. /. (3. +. (0.7 *. 2.) +. (0.3 *. 20.)) in
  check_close ~eps:1e-9 "hand value" expected closed

let test_opportunistic_means () =
  check_close ~eps:1e-12 "mean off" 7.4 (Edge_meg.Opportunistic.mean_off opp_params);
  check_close ~eps:1e-12 "mean on" 3. (Edge_meg.Opportunistic.mean_on opp_params)

let test_opportunistic_validation () =
  check_true "mean < 1 rejected"
    (try
       ignore (Edge_meg.Opportunistic.chain { opp_params with on_short = 0.5 });
       false
     with Invalid_argument _ -> true)

let test_opportunistic_dwell_times () =
  (* Long contacts should produce measurably longer on-runs than a
     memoryless chain of the same alpha would. *)
  let chain = Edge_meg.Opportunistic.chain opp_params in
  let rng = rng_of_seed 12 in
  let run_lengths = Stats.Summary.create () in
  let state = ref 0 and current_run = ref 0 in
  for _ = 1 to 50_000 do
    state := Markov.Chain.step chain rng !state;
    if Edge_meg.Opportunistic.chi !state then incr current_run
    else if !current_run > 0 then begin
      Stats.Summary.add run_lengths (float_of_int !current_run);
      current_run := 0
    end
  done;
  (* Mean contact duration is on_mix*on_short + (1-on_mix)*on_long = 3. *)
  check_close_rel ~rel:0.15 "mean contact duration" 3. (Stats.Summary.mean run_lengths)

let test_opportunistic_floods () =
  let dyn = Edge_meg.Opportunistic.make ~n:48 opp_params in
  match Core.Flooding.time ~cap:3000 ~rng:(rng_of_seed 13) ~source:0 dyn with
  | Some t -> check_true "floods" (t < 3000)
  | None -> Alcotest.fail "opportunistic model did not flood"

(* The off-heap backing promises bit-identical draw streams: same
   seed, same snapshots, step after step, and the same flooding
   observables end to end. *)
let test_classic_storage_layouts_agree () =
  let n = 96 and p = 0.03 and q = 0.4 in
  let mk storage = Edge_meg.Classic.make ~storage ~n ~p ~q () in
  let h = mk `Heap and o = mk `Offheap in
  Core.Dynamic.reset h (rng_of_seed 21);
  Core.Dynamic.reset o (rng_of_seed 21);
  let edges g = List.sort compare (Core.Dynamic.snapshot_edges g) in
  for step = 0 to 24 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "step %d edges" step)
      (edges h) (edges o);
    Core.Dynamic.step h;
    Core.Dynamic.step o
  done;
  let rh = Core.Flooding.run ~rng:(rng_of_seed 22) ~source:0 (mk `Heap) in
  let ro = Core.Flooding.run ~rng:(rng_of_seed 22) ~source:0 (mk `Offheap) in
  Alcotest.(check (option int)) "flood time" rh.Core.Flooding.time ro.Core.Flooding.time;
  Alcotest.(check (array int)) "arrivals" rh.Core.Flooding.arrivals ro.Core.Flooding.arrivals

let test_classic_offheap_rejects_saturated () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_true "Full init rejected off-heap"
    (raises (fun () ->
         ignore (Edge_meg.Classic.make ~init:Edge_meg.Classic.Full ~storage:`Offheap ~n:32 ~p:0.1 ~q:0.1 ())));
  check_true "saturated stationary rejected off-heap"
    (raises (fun () ->
         ignore (Edge_meg.Classic.make ~storage:`Offheap ~n:32 ~p:0.1 ~q:0. ())))

let suites =
  [
    ( "edge_meg.classic",
      [
        Alcotest.test_case "stationary density at init" `Quick test_classic_stationary_density;
        Alcotest.test_case "density stable under steps" `Quick
          test_classic_density_preserved_by_steps;
        Alcotest.test_case "empty init" `Quick test_classic_empty_init;
        Alcotest.test_case "full init" `Quick test_classic_full_init;
        Alcotest.test_case "q=0 monotone growth" `Quick test_classic_q0_monotone_growth;
        Alcotest.test_case "p=0 monotone decay" `Quick test_classic_p0_monotone_decay;
        Alcotest.test_case "deterministic per seed" `Quick test_classic_deterministic_per_seed;
        Alcotest.test_case "validation" `Quick test_classic_validation;
        Alcotest.test_case "saturated inits use bulk fill" `Quick
          test_classic_saturated_inits_bulk_fill;
        Alcotest.test_case "oracle: stationary edges within CI" `Quick
          test_classic_oracle_stationary_edges;
        Alcotest.test_case "oracle: flooding mean within CI" `Quick
          test_classic_oracle_flooding_mean;
        Alcotest.test_case "storage layouts agree" `Quick test_classic_storage_layouts_agree;
        Alcotest.test_case "offheap rejects saturated inits" `Quick
          test_classic_offheap_rejects_saturated;
        q_classic_edges_valid;
      ] );
    ( "edge_meg.general",
      [
        Alcotest.test_case "alpha from chi" `Quick test_general_alpha;
        Alcotest.test_case "matches two-state" `Quick test_general_matches_two_state;
        Alcotest.test_case "stationary density" `Quick test_general_stationary_density;
        Alcotest.test_case "state init" `Quick test_general_state_init;
        Alcotest.test_case "dwell correlation" `Quick test_general_dwell_correlation;
        Alcotest.test_case "bound positive" `Quick test_general_bound_positive;
        Alcotest.test_case "state validation" `Quick test_general_state_validation;
      ] );
    ( "edge_meg.opportunistic",
      [
        Alcotest.test_case "alpha consistency" `Quick test_opportunistic_alpha_consistency;
        Alcotest.test_case "means" `Quick test_opportunistic_means;
        Alcotest.test_case "validation" `Quick test_opportunistic_validation;
        Alcotest.test_case "dwell times" `Quick test_opportunistic_dwell_times;
        Alcotest.test_case "floods" `Quick test_opportunistic_floods;
      ] );
  ]
