open Helpers

(* --- Dynamic --- *)

let test_of_static_constant () =
  let g = Graph.Builders.cycle 5 in
  let dyn = Core.Dynamic.of_static g in
  Core.Dynamic.reset dyn (rng_of_seed 0);
  let before = Core.Dynamic.snapshot_edges dyn in
  Core.Dynamic.step dyn;
  Alcotest.(check (list (pair int int))) "constant" before (Core.Dynamic.snapshot_edges dyn);
  Alcotest.(check int) "edge count" 5 (Core.Dynamic.edge_count dyn)

let test_of_snapshots_cycles () =
  let dyn = Core.Dynamic.of_snapshots ~n:3 [| [ (0, 1) ]; [ (1, 2) ] |] in
  Core.Dynamic.reset dyn (rng_of_seed 0);
  Alcotest.(check (list (pair int int))) "t0" [ (0, 1) ] (Core.Dynamic.snapshot_edges dyn);
  Core.Dynamic.step dyn;
  Alcotest.(check (list (pair int int))) "t1" [ (1, 2) ] (Core.Dynamic.snapshot_edges dyn);
  Core.Dynamic.step dyn;
  Alcotest.(check (list (pair int int))) "wraps" [ (0, 1) ] (Core.Dynamic.snapshot_edges dyn);
  Core.Dynamic.reset dyn (rng_of_seed 0);
  Alcotest.(check (list (pair int int))) "reset restarts" [ (0, 1) ]
    (Core.Dynamic.snapshot_edges dyn)

let test_isolated_fraction () =
  let dyn = Core.Dynamic.of_snapshots ~n:4 [| [ (0, 1) ] |] in
  Core.Dynamic.reset dyn (rng_of_seed 0);
  check_close "half isolated" 0.5 (Core.Dynamic.isolated_fraction dyn)

let test_adjacency_symmetric () =
  let dyn = Core.Dynamic.of_static (Graph.Builders.star 4) in
  Core.Dynamic.reset dyn (rng_of_seed 0);
  let adj = Core.Dynamic.adjacency dyn in
  Alcotest.(check int) "centre degree" 3 (List.length adj.(0));
  Alcotest.(check (list int)) "leaf sees centre" [ 0 ] adj.(1)

let test_snapshot_graph () =
  let dyn = Core.Dynamic.of_static (Graph.Builders.complete 4) in
  Core.Dynamic.reset dyn (rng_of_seed 0);
  Alcotest.(check int) "materialised m" 6 (Graph.Static.m (Core.Dynamic.snapshot_graph dyn))

let test_filter_extremes () =
  let inner () = Core.Dynamic.of_static (Graph.Builders.complete 6) in
  let keep_all = Core.Dynamic.filter_edges ~p_keep:1. (inner ()) in
  Core.Dynamic.reset keep_all (rng_of_seed 1);
  Alcotest.(check int) "p=1 keeps all" 15 (Core.Dynamic.edge_count keep_all);
  let keep_none = Core.Dynamic.filter_edges ~p_keep:0. (inner ()) in
  Core.Dynamic.reset keep_none (rng_of_seed 1);
  Alcotest.(check int) "p=0 drops all" 0 (Core.Dynamic.edge_count keep_none)

let test_filter_stable_within_step () =
  let dyn = Core.Dynamic.filter_edges ~p_keep:0.5 (Core.Dynamic.of_static (Graph.Builders.complete 10)) in
  Core.Dynamic.reset dyn (rng_of_seed 2);
  let a = Core.Dynamic.snapshot_edges dyn in
  let b = Core.Dynamic.snapshot_edges dyn in
  Alcotest.(check (list (pair int int))) "two reads agree" a b;
  Core.Dynamic.step dyn;
  let c = Core.Dynamic.snapshot_edges dyn in
  check_true "fresh coins after step" (a <> c || a = c)

let test_filter_fresh_randomness_across_steps () =
  let dyn =
    Core.Dynamic.filter_edges ~p_keep:0.5 (Core.Dynamic.of_static (Graph.Builders.complete 12))
  in
  Core.Dynamic.reset dyn (rng_of_seed 3);
  let snaps = Array.init 6 (fun _ ->
      let s = Core.Dynamic.snapshot_edges dyn in
      Core.Dynamic.step dyn;
      s)
  in
  let all_equal = Array.for_all (fun s -> s = snaps.(0)) snaps in
  check_true "snapshots vary across steps" (not all_equal)

let test_subsample () =
  let dyn =
    Core.Dynamic.of_snapshots ~n:3 [| [ (0, 1) ]; [ (1, 2) ]; [ (0, 2) ]; [] |]
  in
  let coarse = Core.Dynamic.subsample ~every:2 dyn in
  Core.Dynamic.reset coarse (rng_of_seed 20);
  Alcotest.(check (list (pair int int))) "epoch 0" [ (0, 1) ] (Core.Dynamic.snapshot_edges coarse);
  Core.Dynamic.step coarse;
  Alcotest.(check (list (pair int int))) "epoch 1 skips one" [ (0, 2) ]
    (Core.Dynamic.snapshot_edges coarse)

let test_subsample_validation () =
  let dyn = Core.Dynamic.of_static (Graph.Builders.cycle 4) in
  check_true "every = 0 rejected"
    (try
       ignore (Core.Dynamic.subsample ~every:0 dyn);
       false
     with Invalid_argument _ -> true)

let test_subsample_flooding_dominates () =
  (* Epoch-sampled flooding (in steps) upper-bounds per-step flooding. *)
  let m = 4 in
  let make () = Edge_meg.Classic.make ~n:48 ~p:(2. /. 48.) ~q:0.4 () in
  let fine = Core.Flooding.mean_time ~rng:(rng_of_seed 21) ~trials:10 make in
  let coarse =
    Core.Flooding.mean_time ~rng:(rng_of_seed 22) ~trials:10 (fun () ->
        Core.Dynamic.subsample ~every:m (make ()))
  in
  check_true "coarse * m >= fine (statistically)"
    (Stats.Summary.mean coarse *. float_of_int m
    >= Stats.Summary.mean fine -. Stats.Summary.stddev fine)

let test_union () =
  let a = Core.Dynamic.of_snapshots ~n:4 [| [ (0, 1) ] |] in
  let b = Core.Dynamic.of_snapshots ~n:4 [| [ (2, 3) ] |] in
  let u = Core.Dynamic.union a b in
  Core.Dynamic.reset u (rng_of_seed 4);
  Alcotest.(check (list (pair int int))) "union edges" [ (0, 1); (2, 3) ]
    (Core.Dynamic.snapshot_edges u)

let test_union_mismatch () =
  let a = Core.Dynamic.of_snapshots ~n:3 [| [] |] in
  let b = Core.Dynamic.of_snapshots ~n:4 [| [] |] in
  check_true "node-count mismatch raises"
    (try
       ignore (Core.Dynamic.union a b);
       false
     with Invalid_argument _ -> true)

(* --- Flooding --- *)

let flood_static ?protocol ?cap g source =
  Core.Flooding.run ?cap ?protocol ~rng:(rng_of_seed 5) ~source (Core.Dynamic.of_static g)

let test_flood_complete_one_step () =
  let r = flood_static (Graph.Builders.complete 10) 0 in
  Alcotest.(check (option int)) "one step" (Some 1) r.time

let test_flood_path_takes_eccentricity () =
  let r = flood_static (Graph.Builders.path_graph 7) 0 in
  Alcotest.(check (option int)) "6 steps from end" (Some 6) r.time;
  let r_mid = flood_static (Graph.Builders.path_graph 7) 3 in
  Alcotest.(check (option int)) "3 steps from middle" (Some 3) r_mid.time

let test_flood_trajectory_shape () =
  let r = flood_static (Graph.Builders.path_graph 5) 0 in
  Alcotest.(check (array int)) "trajectory" [| 1; 2; 3; 4; 5 |] r.trajectory

let test_flood_single_node () =
  let g = Graph.Static.of_edges ~n:1 [] in
  let r = flood_static g 0 in
  Alcotest.(check (option int)) "already done" (Some 0) r.time

let test_flood_cap () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  let r = flood_static ~cap:50 g 0 in
  Alcotest.(check (option int)) "unreachable gives None" None r.time;
  Alcotest.(check int) "stuck at 2" 2 r.trajectory.(Array.length r.trajectory - 1)

let test_flood_source_validation () =
  check_true "bad source raises"
    (try
       ignore (flood_static (Graph.Builders.cycle 4) 9);
       false
     with Invalid_argument _ -> true)

let test_flood_uses_current_snapshot () =
  (* Edge (0,1) exists only at t=0, (1,2) only at t=1: flooding must ride
     the schedule and finish in exactly 2 steps. *)
  let dyn = Core.Dynamic.of_snapshots ~n:3 [| [ (0, 1) ]; [ (1, 2) ]; [] |] in
  let r = Core.Flooding.run ~rng:(rng_of_seed 6) ~source:0 dyn in
  Alcotest.(check (option int)) "rides the schedule" (Some 2) r.time

let test_flood_misses_expired_edge () =
  (* The (1,2) edge exists at t=0, before node 1 knows anything; node 2
     is only reached when the cyclic schedule brings the edge back at
     t=3 — one hop per snapshot, no retroactive use of past edges. *)
  let dyn = Core.Dynamic.of_snapshots ~n:3 [| [ (1, 2) ]; [ (0, 1) ]; [] |] in
  let r = Core.Flooding.run ~cap:30 ~rng:(rng_of_seed 7) ~source:0 dyn in
  Alcotest.(check (option int)) "needs the next cycle" (Some 4) r.time

let test_arrivals_are_bfs_on_static () =
  (* On a static graph, arrival times are exactly BFS distances. *)
  let g = Graph.Builders.grid ~rows:3 ~cols:4 in
  let r = flood_static g 5 in
  Alcotest.(check (array int)) "arrivals = BFS" (Graph.Traverse.bfs_distances g 5) r.arrivals

let test_arrivals_unreachable () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  let r = flood_static ~cap:20 g 0 in
  Alcotest.(check int) "source at 0" 0 r.arrivals.(0);
  Alcotest.(check int) "neighbour at 1" 1 r.arrivals.(1);
  Alcotest.(check int) "never informed is -1" (-1) r.arrivals.(2)

let test_characteristic_time () =
  let g = Graph.Builders.path_graph 5 in
  let r = flood_static g 0 in
  (* Arrivals 0,1,2,3,4: mean over non-source = 2.5. *)
  check_close "mean latency on path" 2.5 (Core.Flooding.characteristic_time r);
  check_true "characteristic <= worst case"
    (Core.Flooding.characteristic_time r <= float_of_int (Option.get r.time))

let test_arrivals_consistent_with_trajectory () =
  let dyn = Edge_meg.Classic.make ~n:40 ~p:0.08 ~q:0.3 () in
  let r = Core.Flooding.run ~rng:(rng_of_seed 16) ~source:0 dyn in
  (* |I_t| must equal the number of arrivals <= t. *)
  Array.iteri
    (fun t size ->
      let by_t =
        Array.fold_left (fun acc a -> if a >= 0 && a <= t then acc + 1 else acc) 0 r.arrivals
      in
      Alcotest.(check int) (Printf.sprintf "census at t=%d" t) size by_t)
    r.trajectory

let q_trajectory_monotone =
  qtest ~count:50 "trajectory is monotone, starts at 1"
    QCheck2.Gen.(pair seed_gen (int_range 2 20))
    (fun (seed, n) ->
      let rng = Prng.Rng.of_seed seed in
      let p = Float.min 1. (2.5 /. float_of_int n) in
      let dyn = Edge_meg.Classic.make ~n ~p ~q:0.4 () in
      let r = Core.Flooding.run ~cap:500 ~rng ~source:0 dyn in
      r.trajectory.(0) = 1
      &&
      let mono = ref true in
      Array.iteri
        (fun i v ->
          if i > 0 && v < r.trajectory.(i - 1) then mono := false;
          if v < 1 || v > n then mono := false)
        r.trajectory;
      !mono)

let q_flood_time_is_eccentricity =
  qtest ~count:60 "static flooding time = source eccentricity"
    QCheck2.Gen.(pair seed_gen (int_range 2 25))
    (fun (seed, n) ->
      let rng = Prng.Rng.of_seed seed in
      let rec connected_graph () =
        let g = Graph.Builders.erdos_renyi ~rng ~n ~p:0.3 in
        if Graph.Traverse.is_connected g then g else connected_graph ()
      in
      let g = connected_graph () in
      let source = Prng.Rng.int rng n in
      let r = Core.Flooding.run ~rng ~source (Core.Dynamic.of_static g) in
      r.time = Some (Graph.Traverse.eccentricity g source))

let q_adjacency_consistent_with_edge_count =
  qtest ~count:40 "adjacency degree sum = 2 * edge count"
    QCheck2.Gen.(pair seed_gen (int_range 2 30))
    (fun (seed, n) ->
      let dyn = Edge_meg.Classic.make ~n ~p:0.2 ~q:0.3 () in
      Core.Dynamic.reset dyn (Prng.Rng.of_seed seed);
      Core.Dynamic.step dyn;
      let adj = Core.Dynamic.adjacency dyn in
      let degree_sum = Array.fold_left (fun acc l -> acc + List.length l) 0 adj in
      degree_sum = 2 * Core.Dynamic.edge_count dyn)

let q_time_matches_trajectory =
  qtest ~count:50 "completion time = trajectory length - 1"
    QCheck2.Gen.(pair seed_gen (int_range 2 16))
    (fun (seed, n) ->
      let rng = Prng.Rng.of_seed seed in
      let dyn = Core.Dynamic.of_static (Graph.Builders.complete n) in
      let r = Core.Flooding.run ~rng ~source:0 dyn in
      match r.time with
      | Some t ->
          Array.length r.trajectory = t + 1 && r.trajectory.(t) = n
      | None -> false)

let test_push_p1_equals_flood () =
  let g = Graph.Builders.path_graph 6 in
  let full = flood_static g 0 in
  let push = flood_static ~protocol:(Core.Flooding.Push 1.) g 0 in
  Alcotest.(check (option int)) "push 1.0 = flood" full.time push.time

let test_push_validation () =
  check_true "p=0 rejected"
    (try
       ignore (flood_static ~protocol:(Core.Flooding.Push 0.) (Graph.Builders.cycle 4) 0);
       false
     with Invalid_argument _ -> true)

let test_push_slower_on_average () =
  let n = 40 in
  let dyn () = Core.Dynamic.of_static (Graph.Builders.complete n) in
  let full = Core.Flooding.mean_time ~rng:(rng_of_seed 8) ~trials:20 dyn in
  let push =
    Core.Flooding.mean_time ~protocol:(Core.Flooding.Push 0.1) ~rng:(rng_of_seed 9) ~trials:20 dyn
  in
  check_true "push 0.1 slower" (Stats.Summary.mean push > Stats.Summary.mean full)

let test_parsimonious_window () =
  (* On a path with window 1, each node forwards only on the step right
     after it learns; on a static path that is exactly enough. *)
  let g = Graph.Builders.path_graph 5 in
  let r = flood_static ~protocol:(Core.Flooding.Parsimonious 1) g 0 in
  Alcotest.(check (option int)) "parsimonious on path" (Some 4) r.time

let test_parsimonious_expires () =
  (* Snapshot schedule: nothing at t=1..2, edge (1,2) at t=3. With window
     1, node 1 (informed at t=1) is inactive by then. *)
  let dyn =
    Core.Dynamic.of_snapshots ~n:3 [| [ (0, 1) ]; []; []; [ (1, 2) ]; [] |]
  in
  let r =
    Core.Flooding.run ~cap:20 ~protocol:(Core.Flooding.Parsimonious 1) ~rng:(rng_of_seed 10)
      ~source:0 dyn
  in
  Alcotest.(check (option int)) "expired sender" None r.time;
  let r_full = Core.Flooding.run ~cap:20 ~rng:(rng_of_seed 10) ~source:0 dyn in
  Alcotest.(check (option int)) "plain flooding succeeds" (Some 4) r_full.time

let test_parsimonious_validation () =
  check_true "window 0 rejected"
    (try
       ignore (flood_static ~protocol:(Core.Flooding.Parsimonious 0) (Graph.Builders.cycle 4) 0);
       false
     with Invalid_argument _ -> true)

let test_mean_time_deterministic () =
  let dyn () = Edge_meg.Classic.make ~n:32 ~p:0.1 ~q:0.3 () in
  let a = Core.Flooding.mean_time ~rng:(rng_of_seed 11) ~trials:5 dyn in
  let b = Core.Flooding.mean_time ~rng:(rng_of_seed 11) ~trials:5 dyn in
  check_close "same seed, same mean" (Stats.Summary.mean a) (Stats.Summary.mean b)

let test_worst_source_path () =
  let dyn () = Core.Dynamic.of_static (Graph.Builders.path_graph 6) in
  Alcotest.(check int) "worst source on path" 5
    (Core.Flooding.worst_source_time ~rng:(rng_of_seed 12) dyn);
  Alcotest.(check int) "restricted sources" 3
    (Core.Flooding.worst_source_time ~rng:(rng_of_seed 12) ~sources:[ 2; 3 ] dyn)

(* --- Stationarity --- *)

let test_stationarity_complete () =
  let dyn = Core.Dynamic.of_static (Graph.Builders.complete 12) in
  let est =
    Core.Stationarity.estimate ~rng:(rng_of_seed 13) ~burn_in:5 ~snapshots:40 ~gap:1 ~pairs:10
      ~triples:5 ~set_size:3 dyn
  in
  check_close "alpha on complete" 1. est.alpha_hat;
  check_close "beta on complete" 1. est.beta_hat;
  check_close "no isolation" 0. est.isolated_mean

let test_stationarity_edge_meg_alpha () =
  let n = 64 in
  let p = 0.1 and q = 0.1 in
  let dyn = Edge_meg.Classic.make ~n ~p ~q () in
  let est =
    Core.Stationarity.estimate ~rng:(rng_of_seed 14) ~burn_in:50 ~snapshots:400 ~gap:11
      ~pairs:20 ~triples:10 ~set_size:6 dyn
  in
  (* Independent edges: alpha = p/(p+q) = 1/2, beta = 1. *)
  check_close_rel ~rel:0.25 "alpha near 1/2" 0.5 est.alpha_mean;
  check_true "beta near 1" (est.beta_hat < 1.5)

let test_stationarity_set_size_validation () =
  let dyn = Core.Dynamic.of_static (Graph.Builders.complete 5) in
  check_true "set size too large raises"
    (try
       ignore (Core.Stationarity.estimate ~rng:(rng_of_seed 15) ~set_size:5 dyn);
       false
     with Invalid_argument _ -> true)

let test_check_theorem1_bound () =
  let r = Core.Stationarity.check_theorem1_bound ~measured:10. ~m:1 ~alpha:0.5 ~beta:1. ~n:100 in
  check_true "ratio positive and finite" (r > 0. && Float.is_finite r)

(* --- Phases --- *)

let test_time_to_reach () =
  let tr = [| 1; 1; 3; 8; 8; 16 |] in
  Alcotest.(check (option int)) "reach 3" (Some 2) (Core.Phases.time_to_reach tr 3);
  Alcotest.(check (option int)) "reach 4" (Some 3) (Core.Phases.time_to_reach tr 4);
  Alcotest.(check (option int)) "unreached" None (Core.Phases.time_to_reach tr 17)

let test_phases_analysis () =
  let n = 16 in
  let tr = [| 1; 2; 4; 8; 12; 15; 16 |] in
  let a = Core.Phases.analyze ~n tr in
  Alcotest.(check (option int)) "spreading to n/2" (Some 3) a.spreading_time;
  Alcotest.(check (option int)) "saturation" (Some 3) a.saturation_time;
  Alcotest.(check (option int)) "doubling gap" (Some 1) a.max_doubling_gap;
  Alcotest.(check int) "doubling count" 5 (List.length a.doubling_times)

let test_phases_incomplete () =
  let a = Core.Phases.analyze ~n:10 [| 1; 2; 3 |] in
  Alcotest.(check (option int)) "no spread" None a.spreading_time;
  Alcotest.(check (option int)) "no saturation" None a.saturation_time

(* --- storage-layer regressions --- *)

(* The trajectory buffer must grow past its initial 256 cells (a fixed
   Array.make 256 once made >256-round runs impossible to record). A
   2-node process whose only edge appears every 301st snapshot floods
   well past round 256. *)
let test_flood_trajectory_growth () =
  let snaps = Array.init 301 (fun t -> if t = 300 then [ (0, 1) ] else []) in
  let g = Core.Dynamic.of_snapshots ~n:2 snaps in
  let r = Core.Flooding.run ~rng:(rng_of_seed 3) ~source:0 g in
  match r.Core.Flooding.time with
  | None -> Alcotest.fail "flood never completed"
  | Some t ->
      check_true "ran past the old 256-cell cap" (t > 256);
      Alcotest.(check int) "trajectory records every round" (t + 1)
        (Array.length r.Core.Flooding.trajectory);
      Alcotest.(check int) "final census" 2 r.Core.Flooding.trajectory.(t);
      Alcotest.(check int) "source alone before the edge" 1 r.Core.Flooding.trajectory.(t - 1)

(* n = 0 is rejected at construction (Dynamic.make), so flooding can
   never receive an empty node set; a negative/overflowing source on
   the smallest legal graph is rejected by the flooding guard. *)
let test_flood_empty_graph () =
  check_true "n = 0 rejected at construction"
    (try
       ignore (Core.Dynamic.of_snapshots ~n:0 [| [] |]);
       false
     with Invalid_argument _ -> true);
  let g = Core.Dynamic.of_snapshots ~n:1 [| [] |] in
  check_true "source beyond n rejected"
    (try
       ignore (Core.Flooding.run ~rng:(rng_of_seed 1) ~source:1 g);
       false
     with Invalid_argument _ -> true);
  check_true "negative source rejected"
    (try
       ignore (Core.Flooding.run ~rng:(rng_of_seed 1) ~source:(-1) g);
       false
     with Invalid_argument _ -> true)

(* Forcing the off-heap scratch + arena adjacency at a size that would
   normally stay on the heap must not change any observable: the tiled
   Flood scan is order-independent, and Push / Parsimonious draw their
   coins in the same pinned order on both layouts. *)
let test_flood_storage_layouts_agree () =
  let build () = Edge_meg.Classic.make ~n:96 ~p:0.04 ~q:0.3 () in
  List.iter
    (fun protocol ->
      let go storage =
        Core.Flooding.run ~protocol ~storage ~rng:(rng_of_seed 17) ~source:3 (build ())
      in
      let h = go `Heap and o = go `Offheap in
      Alcotest.(check (option int)) "time" h.Core.Flooding.time o.Core.Flooding.time;
      Alcotest.(check (array int)) "trajectory" h.Core.Flooding.trajectory
        o.Core.Flooding.trajectory;
      Alcotest.(check (array int)) "arrivals" h.Core.Flooding.arrivals o.Core.Flooding.arrivals)
    [ Core.Flooding.Flood; Core.Flooding.Push 0.4; Core.Flooding.Parsimonious 2 ]

let suites =
  [
    ( "core.dynamic",
      [
        Alcotest.test_case "of_static constant" `Quick test_of_static_constant;
        Alcotest.test_case "of_snapshots cycles" `Quick test_of_snapshots_cycles;
        Alcotest.test_case "isolated fraction" `Quick test_isolated_fraction;
        Alcotest.test_case "adjacency" `Quick test_adjacency_symmetric;
        Alcotest.test_case "snapshot graph" `Quick test_snapshot_graph;
        Alcotest.test_case "filter extremes" `Quick test_filter_extremes;
        Alcotest.test_case "filter stable within step" `Quick test_filter_stable_within_step;
        Alcotest.test_case "filter varies across steps" `Quick
          test_filter_fresh_randomness_across_steps;
        Alcotest.test_case "union" `Quick test_union;
        Alcotest.test_case "union mismatch" `Quick test_union_mismatch;
        Alcotest.test_case "subsample" `Quick test_subsample;
        Alcotest.test_case "subsample validation" `Quick test_subsample_validation;
        Alcotest.test_case "subsample flooding dominates" `Quick
          test_subsample_flooding_dominates;
      ] );
    ( "core.flooding",
      [
        Alcotest.test_case "complete in one step" `Quick test_flood_complete_one_step;
        Alcotest.test_case "path eccentricity" `Quick test_flood_path_takes_eccentricity;
        Alcotest.test_case "trajectory shape" `Quick test_flood_trajectory_shape;
        Alcotest.test_case "single node" `Quick test_flood_single_node;
        Alcotest.test_case "cap" `Quick test_flood_cap;
        Alcotest.test_case "source validation" `Quick test_flood_source_validation;
        Alcotest.test_case "rides snapshot schedule" `Quick test_flood_uses_current_snapshot;
        Alcotest.test_case "misses expired edge" `Quick test_flood_misses_expired_edge;
        Alcotest.test_case "push p=1 equals flood" `Quick test_push_p1_equals_flood;
        Alcotest.test_case "push validation" `Quick test_push_validation;
        Alcotest.test_case "push slower" `Quick test_push_slower_on_average;
        Alcotest.test_case "parsimonious on path" `Quick test_parsimonious_window;
        Alcotest.test_case "parsimonious expiry" `Quick test_parsimonious_expires;
        Alcotest.test_case "parsimonious validation" `Quick test_parsimonious_validation;
        Alcotest.test_case "mean_time deterministic" `Quick test_mean_time_deterministic;
        Alcotest.test_case "worst source" `Quick test_worst_source_path;
        Alcotest.test_case "characteristic time" `Quick test_characteristic_time;
        Alcotest.test_case "arrivals = BFS on static" `Quick test_arrivals_are_bfs_on_static;
        Alcotest.test_case "arrivals unreachable" `Quick test_arrivals_unreachable;
        Alcotest.test_case "trajectory grows past 256 rounds" `Quick
          test_flood_trajectory_growth;
        Alcotest.test_case "empty graph rejected" `Quick test_flood_empty_graph;
        Alcotest.test_case "storage layouts agree" `Quick test_flood_storage_layouts_agree;
        Alcotest.test_case "arrivals vs trajectory census" `Quick
          test_arrivals_consistent_with_trajectory;
        q_trajectory_monotone;
        q_time_matches_trajectory;
        q_flood_time_is_eccentricity;
        q_adjacency_consistent_with_edge_count;
      ] );
    ( "core.stationarity",
      [
        Alcotest.test_case "complete graph" `Quick test_stationarity_complete;
        Alcotest.test_case "edge-MEG alpha" `Quick test_stationarity_edge_meg_alpha;
        Alcotest.test_case "set size validation" `Quick test_stationarity_set_size_validation;
        Alcotest.test_case "theorem1 ratio" `Quick test_check_theorem1_bound;
      ] );
    ( "core.phases",
      [
        Alcotest.test_case "time_to_reach" `Quick test_time_to_reach;
        Alcotest.test_case "analysis" `Quick test_phases_analysis;
        Alcotest.test_case "incomplete run" `Quick test_phases_incomplete;
      ] );
  ]
